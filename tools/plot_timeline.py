#!/usr/bin/env python3
"""Render a ufotm-timeline document in a terminal (or as CSV).

  plot_timeline.py TIMELINE.json                  overview
  plot_timeline.py TIMELINE.json -c tm.commits.hw -c ustm.aborts
  plot_timeline.py TIMELINE.json --threads        per-thread table
  plot_timeline.py TIMELINE.json --conflicts      forensics tables
  plot_timeline.py TIMELINE.json --csv            machine-readable CSV

The overview prints one sparkline row per plotted counter (default:
the commit and abort families that are non-zero in the document), a
per-window commit/abort/conflict table, and the watchdog verdict.
Windows flagged by the stall watchdog are marked with '!' in every
view.  Stdlib only; pairs with `--timeline` on tmsim, bench_svc and
tmtorture (see docs/OBSERVABILITY.md).
"""

import argparse
import json
import signal
import sys

# Eight-level bar glyphs; index 0 is a baseline dot so zero-valued
# windows stay visible in the sparkline.
TICKS = "·▁▂▃▄▅▆▇█"

DEFAULT_COUNTERS = [
    "tm.commits.hw", "tm.commits.sw", "tm.commits.raw",
    "tm.failovers", "ustm.aborts", "tl2.aborts",
    "conflict.edges", "svc.served", "batch.batches",
]


def die(msg):
    print(f"plot_timeline: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if doc.get("schema") != "ufotm-timeline":
        die(f"{path}: schema is {doc.get('schema')!r}, "
            "want 'ufotm-timeline'")
    return doc


def window_value(w, counter):
    """One window's delta for @counter.  "btm.aborts" rolls up the
    reason family; the conflict.edges family reads the per-window
    conflicts block (the counters of that name are only finalized at
    end of run, so their deltas land entirely in the last window)."""
    if counter == "btm.aborts":
        return sum(v for n, v in w.get("counters", {}).items()
                   if n.startswith("btm.aborts."))
    edge_keys = {"conflict.edges": "edges",
                 "conflict.edges.btm": "edges_btm",
                 "conflict.edges.ustm": "edges_ustm"}
    if counter in edge_keys:
        return w.get("conflicts", {}).get(edge_keys[counter], 0)
    return w.get("counters", {}).get(counter, 0)


def series(doc, counter):
    """Per-window delta series for one counter (absent delta = 0)."""
    return [window_value(w, counter) for w in doc.get("windows", [])]


def sparkline(values):
    peak = max(values) if values else 0
    if peak == 0:
        return TICKS[0] * len(values)
    # ceil-scale so any non-zero delta gets at least the lowest bar
    # and only the peak reaches the tallest one.
    bars = len(TICKS) - 1
    return "".join(TICKS[0] if v == 0 else
                   TICKS[1 + (v * bars - 1) // peak]
                   for v in values)


def stall_marks(doc):
    """Set of window ids carrying a watchdog record."""
    return {w.get("window") for w in doc.get("windows", [])
            if "watchdog" in w}


def pick_counters(doc, requested):
    if requested:
        return requested
    totals = doc.get("totals", {})
    picked = [c for c in DEFAULT_COUNTERS if totals.get(c, 0)]
    if sum(1 for n, v in totals.items()
           if n.startswith("btm.aborts.") and v):
        picked.append("btm.aborts")
    return picked or ["tm.commits.hw"]


def print_overview(doc, counters):
    windows = doc.get("windows", [])
    marks = stall_marks(doc)
    wc = doc.get("window_cycles", 0)
    print(f"{len(windows)} windows x {wc} cycles "
          f"({windows[-1]['end_cycle'] + 1 if windows else 0} cycles "
          "total)")
    width = max((len(c) for c in counters), default=0)
    for c in counters:
        vals = series(doc, c)
        total = sum(vals)
        print(f"  {c:<{width}}  {sparkline(vals)}  "
              f"sum={total} peak={max(vals) if vals else 0}")
    if marks:
        ruler = "".join("!" if w.get("window") in marks else " "
                        for w in windows)
        print(f"  {'stall windows':<{width}}  {ruler}")

    print()
    print(f"{'win':>4} {'cycles':>10} {'commits':>8} {'aborts':>8} "
          f"{'edges':>6} {'hot line':>18}")
    for w in windows:
        threads = w.get("threads", [])
        commits = sum(t.get("commits", 0) for t in threads)
        aborts = sum(t.get("aborts", 0) for t in threads)
        c = w.get("conflicts", {})
        hot = c.get("hot_lines", [])
        hot_s = (f"0x{hot[0]['line']:x}:{hot[0]['count']}"
                 if hot else "-")
        mark = "!" if w.get("window") in marks else " "
        print(f"{w.get('window'):>4} {w.get('end_cycle', 0):>10} "
              f"{commits:>8} {aborts:>8} {c.get('edges', 0):>6} "
              f"{hot_s:>18} {mark}")

    wd = doc.get("watchdog", {})
    print()
    if wd.get("stalled"):
        print(f"WATCHDOG: STALLED — {wd.get('why', '')}")
        for e in wd.get("episodes", []):
            who = ("global" if e.get("thread") == -1
                   else f"thread {e.get('thread')}")
            print(f"  episode: {who} at window {e.get('window')}")
    else:
        print(f"watchdog: quiet "
              f"(threshold {wd.get('threshold_windows', '?')} "
              "windows)")


def print_threads(doc):
    windows = doc.get("windows", [])
    marks = stall_marks(doc)
    n = max((len(w.get("threads", [])) for w in windows), default=0)
    hdr = " ".join(f"{'t' + str(t):>12}" for t in range(n))
    print(f"{'win':>4} {hdr}   (commits/aborts per thread)")
    for w in windows:
        cells = []
        for t in w.get("threads", []):
            starved = t.get("id") in \
                w.get("watchdog", {}).get("starved_threads", [])
            cell = f"{t.get('commits', 0)}/{t.get('aborts', 0)}" + \
                ("!" if starved else "")
            cells.append(f"{cell:>12}")
        mark = "!" if w.get("window") in marks else " "
        print(f"{w.get('window'):>4} {' '.join(cells)} {mark}")


def print_conflicts(doc):
    by_line = {}
    by_sites = {}
    for w in doc.get("windows", []):
        c = w.get("conflicts", {})
        for e in c.get("hot_lines", []):
            by_line[e["line"]] = by_line.get(e["line"], 0) + \
                e["count"]
        for e in c.get("sites", []):
            key = (e["aggressor_site"], e["victim_site"])
            by_sites[key] = by_sites.get(key, 0) + e["count"]
    print("hot lines (summed over windows; Misra-Gries lower "
          "bounds):")
    for line, count in sorted(by_line.items(),
                              key=lambda kv: -kv[1]):
        print(f"  {'0x%x' % line:>14} {count:>8}")
    if not by_line:
        print("  (no conflict edges)")
    print("aggressor site -> victim site:")
    for (agg, vic), count in sorted(by_sites.items(),
                                    key=lambda kv: -kv[1]):
        print(f"  {agg:>6} -> {vic:<6} {count:>8}")
    if not by_sites:
        print("  (no site attribution)")


def print_csv(doc, counters):
    marks = stall_marks(doc)
    cols = ["window", "start_cycle", "end_cycle", "commits",
            "aborts", "edges", "stalled"] + counters
    print(",".join(cols))
    for w in doc.get("windows", []):
        threads = w.get("threads", [])
        row = [w.get("window"), w.get("start_cycle"),
               w.get("end_cycle"),
               sum(t.get("commits", 0) for t in threads),
               sum(t.get("aborts", 0) for t in threads),
               w.get("conflicts", {}).get("edges", 0),
               int(w.get("window") in marks)]
        row += [window_value(w, c) for c in counters]
        print(",".join(str(v) for v in row))


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("file", help="ufotm-timeline JSON document")
    ap.add_argument("-c", "--counter", action="append", default=[],
                    help="counter to plot (repeatable; 'btm.aborts' "
                    "rolls up the reason family)")
    ap.add_argument("--threads", action="store_true",
                    help="per-window per-thread commit/abort table")
    ap.add_argument("--conflicts", action="store_true",
                    help="aggregated conflict forensics tables")
    ap.add_argument("--csv", action="store_true",
                    help="emit per-window CSV instead of ASCII")
    args = ap.parse_args()

    doc = load(args.file)
    counters = pick_counters(doc, args.counter)
    if args.csv:
        print_csv(doc, counters)
    elif args.threads:
        print_threads(doc)
    elif args.conflicts:
        print_conflicts(doc)
    else:
        print_overview(doc, counters)


if __name__ == "__main__":
    # Die quietly when the output pipe closes (e.g. `... | head`).
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    main()
