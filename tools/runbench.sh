#!/usr/bin/env bash
# Regenerate the committed benchmark baselines (bench/baselines/) at
# the pinned smoke scale, or produce a fresh set for benchdiff.py.
#
#   tools/runbench.sh [--build-dir DIR] [--out DIR]
#
# Runs the eight benches that back the regression gate
# (figure5_speedup, figure6_aborts, figure7_failover, and bench_svc in
# its service-latency, scaling-curve, predictor-A/B, batching-A/B, and
# durability-A/B modes) with --quick (the pinned smoke scale:
# figure5/6 at scale 0.5, figure7 at 96 tx/thread, svc at 24
# requests/client, scaling at 12 requests/client) and writes
# BENCH_<name>.json into --out (default bench/baselines/, i.e. refresh
# the committed baselines in place).
#
# The simulator is deterministic, so two runs of the same tree produce
# byte-identical rows; CI diffs a fresh --out against the committed
# baselines with tools/benchdiff.py.

set -euo pipefail

repo_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_dir/build"
out_dir="$repo_dir/bench/baselines"

while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir) build_dir="$2"; shift 2 ;;
        --out) out_dir="$2"; shift 2 ;;
        *) echo "usage: $0 [--build-dir DIR] [--out DIR]" >&2; exit 2 ;;
    esac
done

mkdir -p "$out_dir"

# binary:bench-name[:extra-arg] triples (bench_svc reports as
# "svc_latency" by default, "svc_scaling" with --scaling,
# "svc_predictor" with --predictor, "svc_batching" with --batching,
# and "svc_durable" with --durable).
for spec in figure5_speedup:figure5_speedup figure6_aborts:figure6_aborts \
            figure7_failover:figure7_failover bench_svc:svc_latency \
            bench_svc:svc_scaling:--scaling \
            bench_svc:svc_predictor:--predictor \
            bench_svc:svc_batching:--batching \
            bench_svc:svc_durable:--durable; do
    rest="${spec#*:}"
    bin="$build_dir/bench/${spec%%:*}"
    bench="${rest%%:*}"
    extra=""
    case "$rest" in *:*) extra="${rest#*:}" ;; esac
    if [ ! -x "$bin" ]; then
        echo "runbench: $bin not built (cmake --build $build_dir)" >&2
        exit 2
    fi
    echo "runbench: ${spec%%:*} --quick $extra -> $out_dir/BENCH_$bench.json" >&2
    # shellcheck disable=SC2086
    "$bin" --quick $extra "--json=$out_dir/BENCH_$bench.json" > /dev/null
done
echo "runbench: done" >&2
