/**
 * @file
 * tmtorture CLI: sweep seeds x scheduler policies x TM backends over
 * the torture workload (src/torture), with invariant oracles enabled,
 * and emit a "ufotm-torture" JSON report (docs/OBSERVABILITY.md).
 *
 *   tmtorture --seeds 50 --policies minclock,random,pct --backends all
 *
 * Every failing run's recorded schedule is replayed and greedily
 * minimized; the report carries both the original and the minimized
 * trace in the "ufotm-sched v1" format, so
 *
 *   tmtorture --backend ufo-hybrid --seed 7 --replay failing.sched
 *
 * reproduces it bit-identically.  Exit status is nonzero when any run
 * violates an oracle or fails end-of-run validation.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/tx_system.hh"
#include "sim/json.hh"
#include "sim/scheduler.hh"
#include "sim/stats_json.hh"
#include "torture/torture.hh"

namespace {

using namespace utm;

struct Options
{
    int seeds = 10;            ///< Number of seeds to sweep.
    std::uint64_t seed = 1;    ///< First sweep seed / replay seed.
    std::vector<SchedPolicy> policies{SchedPolicy::MinClock,
                                      SchedPolicy::RandomWalk,
                                      SchedPolicy::Pct};
    std::vector<TxSystemKind> backends;
    std::vector<torture::TortureWorkload> workloads{
        torture::TortureWorkload::Cells};
    int threads = 4;
    int ops = 60;
    int cells = 48;
    bool crash = false;          ///< Crash-torture mode (durable runs).
    std::uint64_t crashStep = 0; ///< Pin the crash step (0 = derive).
    unsigned kvShards = 1;
    bool kvBatch = false; ///< Coalesce batchable kv ops (kv workload).
    unsigned otableBuckets = 4;
    std::uint64_t oracleInterval = 1;
    std::uint64_t pctSteps = 1u << 12; ///< ~ observed steps per run.
    int minimizeBudget = 200;
    bool predictor = false; ///< Torture with the path predictor on.
    bool injectLockstepBug = false;
    bool injectReleaseStarvation = false; ///< Starve USTM releaseEntry.
    bool injectPctBoundBug = false;     ///< PCT fixed starvation bound.
    bool timeline = false;   ///< Telemetry on; dump failing timelines.
    Cycles timelineWindow = 0;
    bool watchdog = false;   ///< Arm the stall-watchdog oracle.
    unsigned watchdogWindows = 0;
    std::string timelineOut = "tmtorture-timeline.json";
    std::string out = "tmtorture.json";
    std::string replayPath; ///< Replay mode when non-empty.
    TxSystemKind replayBackend = TxSystemKind::UfoHybrid;
};

const std::vector<TxSystemKind> kAllBackends = {
    TxSystemKind::UnboundedHtm, TxSystemKind::UfoHybrid,
    TxSystemKind::HyTm,         TxSystemKind::PhTm,
    TxSystemKind::Ustm,         TxSystemKind::UstmStrong,
    TxSystemKind::Tl2,
};

bool
parseBackend(std::string name, TxSystemKind *out)
{
    for (auto &c : name)
        if (c == '_')
            c = '-';
    if (name == "btm") { // Paper's name for the unbounded-HTM config.
        *out = TxSystemKind::UnboundedHtm;
        return true;
    }
    for (TxSystemKind k :
         {TxSystemKind::NoTm, TxSystemKind::UnboundedHtm,
          TxSystemKind::UfoHybrid, TxSystemKind::HyTm,
          TxSystemKind::PhTm, TxSystemKind::Ustm,
          TxSystemKind::UstmStrong, TxSystemKind::Tl2}) {
        if (name == txSystemKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

bool
parseWorkload(const std::string &name, torture::TortureWorkload *out)
{
    if (name == "cells") {
        *out = torture::TortureWorkload::Cells;
        return true;
    }
    if (name == "kv") {
        *out = torture::TortureWorkload::Kv;
        return true;
    }
    return false;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --seeds N            sweep N machine seeds from --seed\n"
        "                       (default 10, i.e. seeds 1..10)\n"
        "  --policies LIST      csv of minclock,maxclock,random,pct,\n"
        "                       roundrobin, or 'all'\n"
        "  --backends LIST      csv of btm,ufo-hybrid,hytm,phtm,ustm,\n"
        "                       ustm-ufo,tl2,no-tm, or 'all'\n"
        "  --workloads LIST     csv of cells,kv, or 'all' (default\n"
        "                       cells; kv = tmserve KV store with raw\n"
        "                       non-transactional GETs)\n"
        "  --threads N          workload threads (default 4)\n"
        "  --ops N              transactions per thread (default 60)\n"
        "  --cells N            contended 8-byte cells (default 48)\n"
        "  --crash              crash-torture mode: run every config\n"
        "                       durable, kill the machine at a\n"
        "                       seed-derived scheduling step, recover\n"
        "                       from the surviving persistent image,\n"
        "                       and check prefix consistency (every\n"
        "                       fence-completed commit recovered, no\n"
        "                       uncommitted write visible, recovery\n"
        "                       idempotent).  Non-durable backends\n"
        "                       (tl2, no-tm) are skipped\n"
        "  --crash-step N       pin the crash step instead of deriving\n"
        "                       it from the seed (implies --crash)\n"
        "  --shards N           kv-workload store shards (default 1;\n"
        "                       > 1 adds cross-shard transfers to the\n"
        "                       op mix and shards the otable)\n"
        "  --batch              kv workload: coalesce consecutive\n"
        "                       batchable ops into one transaction\n"
        "                       (the tmserve coalescer, adaptive K,\n"
        "                       split-on-abort; all oracles armed)\n"
        "  --otable-buckets N   otable buckets; small values force\n"
        "                       bucket collisions (default 4)\n"
        "  --oracle-interval N  check oracles every N steps (default 1)\n"
        "  --pct-steps N        PCT change-point range (default 4096)\n"
        "  --minimize-budget N  replay runs for minimization (default 200)\n"
        "  --predictor          enable the adaptive path predictor\n"
        "                       (hybrid backends; ops carry per-class\n"
        "                       transaction sites)\n"
        "  --inject-lockstep-bug  mutation self-test: break installUfo\n"
        "  --inject-release-starvation  stall injection: USTM\n"
        "                       releaseEntry() never wins its row lock\n"
        "                       (the ReleaseStarvation livelock's\n"
        "                       steady state)\n"
        "  --inject-pct-bound-bug  mutation self-test: fix the PCT\n"
        "                       starvation bound (the\n"
        "                       PctDemotionPhaseLock livelock)\n"
        "  --timeline           enable timeline telemetry; a failing\n"
        "                       run's ufotm-timeline document goes to\n"
        "                       --timeline-out\n"
        "  --timeline-out PATH  failing-run timeline path (default\n"
        "                       tmtorture-timeline.json)\n"
        "  --timeline-window N  timeline window width in cycles\n"
        "  --watchdog           arm the stall-watchdog oracle (flags\n"
        "                       livelock/starvation as a violation)\n"
        "  --watchdog-windows N watchdog threshold in consecutive\n"
        "                       commitless windows\n"
        "  --out PATH           JSON report path ('-' = stdout;\n"
        "                       default tmtorture.json)\n"
        "  --replay FILE        replay one recorded schedule (with\n"
        "                       --backend and --seed); a v2 trace\n"
        "                       carrying crash=<K> re-runs the whole\n"
        "                       crash-recover-check cycle\n"
        "  --backend NAME       backend for --replay\n"
        "  --seed N             first sweep seed / replay seed "
        "(default 1)\n",
        argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--seeds") {
            opt.seeds = std::atoi(need(i));
        } else if (a == "--seed") {
            opt.seed = std::strtoull(need(i), nullptr, 0);
        } else if (a == "--policies") {
            const std::string v = need(i);
            opt.policies.clear();
            if (v == "all") {
                opt.policies = {SchedPolicy::MinClock,
                                SchedPolicy::MaxClock,
                                SchedPolicy::RandomWalk,
                                SchedPolicy::Pct,
                                SchedPolicy::RoundRobin};
            } else {
                for (const auto &name : splitCsv(v)) {
                    SchedPolicy p;
                    if (!parseSchedPolicy(name, &p)) {
                        std::fprintf(stderr,
                                     "unknown policy '%s'\n",
                                     name.c_str());
                        usage(argv[0]);
                    }
                    opt.policies.push_back(p);
                }
            }
        } else if (a == "--backends") {
            const std::string v = need(i);
            opt.backends.clear();
            if (v == "all") {
                opt.backends = kAllBackends;
            } else {
                for (const auto &name : splitCsv(v)) {
                    TxSystemKind k;
                    if (!parseBackend(name, &k)) {
                        std::fprintf(stderr,
                                     "unknown backend '%s'\n",
                                     name.c_str());
                        usage(argv[0]);
                    }
                    opt.backends.push_back(k);
                }
            }
        } else if (a == "--backend") {
            if (!parseBackend(need(i), &opt.replayBackend))
                usage(argv[0]);
        } else if (a == "--workloads" || a == "--workload") {
            const std::string v = need(i);
            opt.workloads.clear();
            if (v == "all") {
                opt.workloads = {torture::TortureWorkload::Cells,
                                 torture::TortureWorkload::Kv};
            } else {
                for (const auto &name : splitCsv(v)) {
                    torture::TortureWorkload wl;
                    if (!parseWorkload(name, &wl)) {
                        std::fprintf(stderr,
                                     "unknown workload '%s'\n",
                                     name.c_str());
                        usage(argv[0]);
                    }
                    opt.workloads.push_back(wl);
                }
            }
        } else if (a == "--threads") {
            opt.threads = std::atoi(need(i));
        } else if (a == "--ops") {
            opt.ops = std::atoi(need(i));
        } else if (a == "--cells") {
            opt.cells = std::atoi(need(i));
        } else if (a == "--crash") {
            opt.crash = true;
        } else if (a == "--crash-step") {
            opt.crashStep = std::strtoull(need(i), nullptr, 0);
            opt.crash = true;
        } else if (a == "--shards") {
            opt.kvShards = unsigned(std::atoi(need(i)));
        } else if (a == "--batch") {
            opt.kvBatch = true;
        } else if (a == "--otable-buckets") {
            opt.otableBuckets = unsigned(std::atoi(need(i)));
        } else if (a == "--oracle-interval") {
            opt.oracleInterval = std::strtoull(need(i), nullptr, 0);
        } else if (a == "--pct-steps") {
            opt.pctSteps = std::strtoull(need(i), nullptr, 0);
        } else if (a == "--minimize-budget") {
            opt.minimizeBudget = std::atoi(need(i));
        } else if (a == "--predictor") {
            opt.predictor = true;
        } else if (a == "--inject-lockstep-bug") {
            opt.injectLockstepBug = true;
        } else if (a == "--inject-release-starvation") {
            opt.injectReleaseStarvation = true;
        } else if (a == "--inject-pct-bound-bug") {
            opt.injectPctBoundBug = true;
        } else if (a == "--timeline") {
            opt.timeline = true;
        } else if (a == "--timeline-out") {
            opt.timelineOut = need(i);
        } else if (a == "--timeline-window") {
            opt.timelineWindow = std::strtoull(need(i), nullptr, 0);
        } else if (a == "--watchdog") {
            opt.watchdog = true;
        } else if (a == "--watchdog-windows") {
            opt.watchdogWindows = unsigned(std::atoi(need(i)));
        } else if (a == "--out") {
            opt.out = need(i);
        } else if (a == "--replay") {
            opt.replayPath = need(i);
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(argv[0]);
        }
    }
    if (opt.backends.empty())
        opt.backends = kAllBackends;
    return opt;
}

torture::TortureConfig
makeConfig(const Options &opt, torture::TortureWorkload workload,
           TxSystemKind kind, SchedPolicy policy, std::uint64_t seed)
{
    torture::TortureConfig cfg;
    cfg.kind = kind;
    cfg.workload = workload;
    cfg.threads = opt.threads;
    cfg.opsPerThread = opt.ops;
    cfg.cells = opt.cells;
    cfg.kvShards = opt.kvShards;
    cfg.kvBatch = opt.kvBatch;
    cfg.otableBuckets = opt.otableBuckets;
    cfg.seed = seed;
    cfg.sched.policy = policy;
    cfg.sched.pctExpectedSteps = opt.pctSteps;
    cfg.oracleInterval = opt.oracleInterval;
    cfg.record = true;
    cfg.policy.predictor.enable = opt.predictor;
    cfg.injectLockstepBug = opt.injectLockstepBug;
    cfg.policy.ustm.testOnlyStarveReleaseEntry =
        opt.injectReleaseStarvation;
    cfg.sched.testOnlyFixedPctBound = opt.injectPctBoundBug;
    cfg.timeline = opt.timeline;
    cfg.timelineWindow = opt.timelineWindow;
    cfg.watchdog = opt.watchdog;
    cfg.watchdogWindows = opt.watchdogWindows;
    return cfg;
}

void
writeRun(json::Writer &w, const torture::TortureConfig &cfg,
         const torture::TortureResult &res,
         const torture::MinimizeResult *minimized)
{
    w.beginObject();
    w.kv("backend", txSystemKindName(cfg.kind));
    w.kv("workload", torture::tortureWorkloadName(cfg.workload));
    if (cfg.workload == torture::TortureWorkload::Kv &&
        cfg.kvShards > 1)
        w.kv("shards", std::uint64_t(cfg.kvShards));
    if (cfg.workload == torture::TortureWorkload::Kv && cfg.kvBatch)
        w.kv("batch", true);
    w.kv("policy", schedPolicyName(cfg.sched.policy));
    w.kv("seed", cfg.seed);
    w.kv("ok", res.ok());
    w.kv("steps", res.steps);
    w.kv("cycles", res.cycles);
    w.kv("commits", res.commits);
    w.kv("raw_reads", res.rawReads);
    auto it = res.stats.find("torture.oracle_checks");
    w.kv("oracle_checks",
         it == res.stats.end() ? std::uint64_t(0) : it->second);
    if (!res.ok()) {
        w.key("violation").beginObject();
        w.kv("oracle", res.oracle);
        w.kv("why", res.why);
        w.kv("step", res.violationStep);
        w.endObject();
        w.kv("schedule", res.schedule.serialize());
        if (minimized) {
            w.kv("minimized", minimized->reproduced);
            w.kv("minimized_schedule",
                 minimized->schedule.serialize());
            w.kv("minimized_steps", minimized->schedule.steps());
            w.kv("minimize_runs", minimized->runs);
        }
    }
    w.endObject();
}

/** One crash-torture run's JSON report entry. */
void
writeCrashRun(json::Writer &w, const torture::TortureConfig &cfg,
              const torture::CrashTortureResult &res)
{
    w.beginObject();
    w.kv("backend", txSystemKindName(cfg.kind));
    w.kv("workload", torture::tortureWorkloadName(cfg.workload));
    w.kv("policy", schedPolicyName(cfg.sched.policy));
    w.kv("seed", cfg.seed);
    w.kv("ok", res.ok);
    w.kv("crash_step", res.crashStep);
    w.kv("probe_steps", res.probeSteps);
    w.kv("committed", res.committedTx);
    w.kv("fenced", res.fencedTx);
    w.kv("recovered", res.recoveredTx);
    w.kv("discarded", res.discardedRecords);
    if (!res.recoverJson.empty())
        w.key("recover").raw(res.recoverJson);
    if (!res.ok) {
        w.kv("why", res.why);
        w.kv("schedule", res.schedule.serialize());
    }
    w.endObject();
}

int
replayMode(const Options &opt)
{
    ScheduleTrace trace;
    if (!ScheduleTrace::loadFile(opt.replayPath, &trace)) {
        std::fprintf(stderr, "cannot load schedule '%s'\n",
                     opt.replayPath.c_str());
        return 2;
    }
    torture::TortureConfig cfg =
        makeConfig(opt, opt.workloads.front(), opt.replayBackend,
                   SchedPolicy::MinClock, opt.seed);
    cfg.replay = &trace;
    if (trace.crashStep() != 0 || opt.crash) {
        // A crash trace replays the whole crash-recover-check cycle.
        const torture::CrashTortureResult res =
            torture::runCrashTorture(cfg, opt.crashStep);
        if (res.ok) {
            std::printf(
                "crash replay OK: %s seed %llu, crash at step %llu, "
                "%llu committed / %llu fenced / %llu recovered\n",
                txSystemKindName(cfg.kind),
                (unsigned long long)cfg.seed,
                (unsigned long long)res.crashStep,
                (unsigned long long)res.committedTx,
                (unsigned long long)res.fencedTx,
                (unsigned long long)res.recoveredTx);
            return 0;
        }
        std::printf("crash replay FAILED: %s\n", res.why.c_str());
        return 1;
    }
    const torture::TortureResult res = torture::runTorture(cfg);
    if (res.ok()) {
        std::printf("replay OK: %s seed %llu, %llu steps, "
                    "%llu commits\n",
                    txSystemKindName(cfg.kind),
                    (unsigned long long)cfg.seed,
                    (unsigned long long)res.steps,
                    (unsigned long long)res.commits);
        return 0;
    }
    std::printf("replay FAILED: oracle '%s' at step %llu: %s\n",
                res.oracle.c_str(),
                (unsigned long long)res.violationStep,
                res.why.c_str());
    return 1;
}

/**
 * Crash-torture sweep: every (workload, durable backend, policy, seed)
 * runs the full crash-recover-check cycle of torture::runCrashTorture.
 */
int
crashSweepMode(const Options &opt)
{
    json::Writer w;
    w.beginObject();
    w.kv("schema", "ufotm-torture");
    w.kv("schema_version", 1);
    w.key("config").beginObject();
    w.kv("crash", true);
    w.kv("seeds", opt.seeds);
    w.kv("threads", opt.threads);
    w.kv("ops_per_thread", opt.ops);
    w.kv("cells", opt.cells);
    w.kv("kv_batch", opt.kvBatch);
    w.kv("otable_buckets", opt.otableBuckets);
    w.kv("oracle_interval", opt.oracleInterval);
    w.kv("crash_step", opt.crashStep);
    w.kv("timeline", opt.timeline);
    w.kv("watchdog", opt.watchdog);
    w.endObject();
    w.key("runs").beginArray();

    int total = 0, failures = 0, skipped = 0;
    bool timelineWritten = false;
    for (torture::TortureWorkload workload : opt.workloads) {
        for (TxSystemKind kind : opt.backends) {
            if (!txSystemKindDurable(kind)) {
                std::fprintf(stderr,
                             "skipping %s: no durable commits\n",
                             txSystemKindName(kind));
                ++skipped;
                continue;
            }
            for (SchedPolicy policy : opt.policies) {
                for (int i = 0; i < opt.seeds; ++i) {
                    const std::uint64_t s = opt.seed + std::uint64_t(i);
                    torture::TortureConfig cfg =
                        makeConfig(opt, workload, kind, policy, s);
                    const torture::CrashTortureResult res =
                        torture::runCrashTorture(cfg, opt.crashStep);
                    ++total;
                    writeCrashRun(w, cfg, res);
                    if (res.ok)
                        continue;
                    ++failures;
                    std::fprintf(
                        stderr,
                        "FAIL %s/%s/%s seed %llu crash@%llu: %s\n",
                        torture::tortureWorkloadName(workload),
                        txSystemKindName(kind),
                        schedPolicyName(policy), (unsigned long long)s,
                        (unsigned long long)res.crashStep,
                        res.why.c_str());
                    std::fprintf(stderr, "  schedule: %s\n",
                                 res.schedule.serialize().c_str());
                    if (!timelineWritten && !res.timeline.empty()) {
                        if (stats::writeFile(opt.timelineOut,
                                             res.timeline + "\n")) {
                            timelineWritten = true;
                            std::fprintf(stderr, "  timeline -> %s\n",
                                         opt.timelineOut.c_str());
                        }
                    }
                }
            }
            std::fprintf(
                stderr,
                "crash %s/%-13s done (%d policies x %d seeds)\n",
                torture::tortureWorkloadName(workload),
                txSystemKindName(kind), int(opt.policies.size()),
                opt.seeds);
        }
    }

    w.endArray();
    w.key("summary").beginObject();
    w.kv("runs", total);
    w.kv("failures", failures);
    w.kv("skipped_backends", skipped);
    w.endObject();
    w.endObject();

    if (!stats::writeFile(opt.out, w.str() + "\n")) {
        std::fprintf(stderr, "cannot write report '%s'\n",
                     opt.out.c_str());
        return 2;
    }
    std::fprintf(stderr,
                 "tmtorture --crash: %d runs, %d failures -> %s\n",
                 total, failures, opt.out.c_str());
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    if (!opt.replayPath.empty())
        return replayMode(opt);
    if (opt.crash)
        return crashSweepMode(opt);

    json::Writer w;
    w.beginObject();
    w.kv("schema", "ufotm-torture");
    w.kv("schema_version", 1);
    w.key("config").beginObject();
    w.kv("seeds", opt.seeds);
    w.kv("threads", opt.threads);
    w.kv("ops_per_thread", opt.ops);
    w.kv("cells", opt.cells);
    w.kv("kv_batch", opt.kvBatch);
    w.kv("otable_buckets", opt.otableBuckets);
    w.kv("oracle_interval", opt.oracleInterval);
    w.kv("predictor", opt.predictor);
    w.kv("inject_lockstep_bug", opt.injectLockstepBug);
    w.kv("inject_release_starvation", opt.injectReleaseStarvation);
    w.kv("inject_pct_bound_bug", opt.injectPctBoundBug);
    w.kv("timeline", opt.timeline);
    w.kv("watchdog", opt.watchdog);
    w.endObject();
    w.key("runs").beginArray();

    int total = 0, failures = 0;
    bool timelineWritten = false;
    for (torture::TortureWorkload workload : opt.workloads) {
        for (TxSystemKind kind : opt.backends) {
            for (SchedPolicy policy : opt.policies) {
                for (int i = 0; i < opt.seeds; ++i) {
                    const std::uint64_t s = opt.seed + std::uint64_t(i);
                    torture::TortureConfig cfg =
                        makeConfig(opt, workload, kind, policy, s);
                    const torture::TortureResult res =
                        torture::runTorture(cfg);
                    ++total;
                    if (res.ok()) {
                        writeRun(w, cfg, res, nullptr);
                        continue;
                    }
                    ++failures;
                    std::fprintf(
                        stderr,
                        "FAIL %s/%s/%s seed %llu: %s at step %llu: "
                        "%s\n",
                        torture::tortureWorkloadName(workload),
                        txSystemKindName(kind),
                        schedPolicyName(policy), (unsigned long long)s,
                        res.oracle.c_str(),
                        (unsigned long long)res.violationStep,
                        res.why.c_str());
                    // Forensics: keep the first failing run's timeline
                    // (windowed counters, conflict edges, watchdog).
                    if (!timelineWritten && !res.timeline.empty()) {
                        if (stats::writeFile(opt.timelineOut,
                                             res.timeline + "\n")) {
                            timelineWritten = true;
                            std::fprintf(stderr,
                                         "  timeline -> %s\n",
                                         opt.timelineOut.c_str());
                        }
                    }
                    torture::MinimizeResult min =
                        torture::minimizeSchedule(cfg, res.schedule,
                                                  res.oracle,
                                                  res.violationStep,
                                                  opt.minimizeBudget);
                    std::fprintf(
                        stderr,
                        "  minimized %llu -> %llu steps (%d replays)\n",
                        (unsigned long long)res.schedule.steps(),
                        (unsigned long long)min.schedule.steps(),
                        min.runs);
                    writeRun(w, cfg, res, &min);
                }
            }
            std::fprintf(
                stderr, "%s/%-13s done (%d policies x %d seeds)\n",
                torture::tortureWorkloadName(workload),
                txSystemKindName(kind), int(opt.policies.size()),
                opt.seeds);
        }
    }

    w.endArray();
    w.key("summary").beginObject();
    w.kv("runs", total);
    w.kv("failures", failures);
    w.endObject();
    w.endObject();

    if (!stats::writeFile(opt.out, w.str() + "\n")) {
        std::fprintf(stderr, "cannot write report '%s'\n",
                     opt.out.c_str());
        return 2;
    }
    std::fprintf(stderr, "tmtorture: %d runs, %d failures -> %s\n",
                 total, failures, opt.out.c_str());
    return failures ? 1 : 0;
}
