#!/usr/bin/env python3
"""Validate ufotm observability artifacts.

Six modes:

  check_stats_json.py FILE            validate a ufotm-stats document
  check_stats_json.py --bench FILE    validate a ufotm-bench document
  check_stats_json.py --svc FILE      validate a ufotm-svc document
                                      (bench_svc --json output)
  check_stats_json.py --timeline FILE validate a ufotm-timeline
                                      document (--timeline output of
                                      tmsim/bench_svc/tmtorture),
                                      including the core invariant
                                      that per-window counter deltas
                                      sum exactly to the end-of-run
                                      totals
  check_stats_json.py --recover FILE  validate a ufotm-recover
                                      document (dur::recover's
                                      report, embedded in tmtorture
                                      --crash run rows)
  check_stats_json.py --check-docs    every counter emitted by src/
                                      must appear in
                                      docs/OBSERVABILITY.md

Used by CI (.github/workflows/ci.yml) and usable standalone.  Exits
non-zero with a list of problems on any failure.
"""

import argparse
import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Reason vocabularies for dynamically-composed counter names
# (`inc(std::string("PREFIX") + reason)` sites).  Keep in sync with
# abortReasonName() in src/mem/memory_system.cc and the unwind/abort
# call sites in src/ustm/ustm.cc and src/tl2/tl2.cc.
ABORT_REASONS = [
    "none", "conflict", "set_overflow", "explicit", "interrupt",
    "exception", "syscall", "io", "uncacheable", "page_fault",
    "nesting_overflow", "ufo_fault", "ufo_bit_set", "nont_conflict",
]
# Keep in sync with profCompName()/profPhaseName() in src/sim/prof.cc.
PROF_COMPONENTS = ["ustm", "btm", "tl2", "hytm", "phtm", "sle", "tm"]
PROF_PHASES = [
    "begin", "barrier_read", "barrier_write", "commit",
    "abort_unwind", "stall", "backoff", "retry_wait", "ufo_handler",
    "otable_walk", "nontx", "persist",
]
PROF_CYCLE_NAMES = [f"{c}.{p}" for c in PROF_COMPONENTS
                    for p in PROF_PHASES] + ["app"]

# Keep in sync with reqTypeName() in src/svc/load_gen.cc.
SVC_REQ_TYPES = ["get", "put", "scan", "rmw", "xfer", "raw_get"]

# Per-shard counter families are suffixed with the decimal shard
# index; kMaxThreads (64) bounds the shard count a machine can use.
SHARD_IDS = [str(i) for i in range(64)]

REASON_FAMILIES = {
    "btm.aborts.": ABORT_REASONS,
    "tm.failovers.hard.": ABORT_REASONS,
    "ustm.aborts.": ["killed", "retry_wakeup"],
    "tl2.aborts.": ["read_validation", "lock_busy",
                    "commit_validation"],
    "prof.cycles.": PROF_CYCLE_NAMES,
    "svc.requests.": SVC_REQ_TYPES,
    "svc.shed.": SVC_REQ_TYPES,
    "svc.latency.": SVC_REQ_TYPES,
    # A dirty batch is counted once, keyed by its *first* abort's
    # hardware reason — or the "sw" pseudo-reason for a software-path
    # kill (src/svc/service.cc, threadBodyBatched).
    "batch.aborts.": ABORT_REASONS + ["sw"],
    "batch.members.": SVC_REQ_TYPES,
    # Per-shard redo-log families (src/mem/persist.cc, durable runs).
    "dur.log_records.": SHARD_IDS,
    "dur.log_bytes.": SHARD_IDS,
    "shard.acquires.": SHARD_IDS,
    "shard.chain_inserts.": SHARD_IDS,
    "shard.chain_len.": SHARD_IDS,
    "shard.row_lock_wait.": SHARD_IDS,
    "shard.requests.": SHARD_IDS,
    "shard.shed.": SHARD_IDS,
    "shard.queue_depth.": SHARD_IDS,
}
# Families whose docs coverage is via a structured placeholder rather
# than the generic "<prefix><reason>" form or full enumeration.
FAMILY_PLACEHOLDERS = {
    "prof.cycles.": "prof.cycles.<component>.<phase>",
    "svc.requests.": "svc.requests.<type>",
    "svc.shed.": "svc.shed.<type>",
    "svc.latency.": "svc.latency.<type>",
    "batch.aborts.": "batch.aborts.<reason>",
    "batch.members.": "batch.members.<type>",
    "dur.log_records.": "dur.log_records.<shard>",
    "dur.log_bytes.": "dur.log_bytes.<shard>",
    "shard.acquires.": "shard.acquires.<shard>",
    "shard.chain_inserts.": "shard.chain_inserts.<shard>",
    "shard.chain_len.": "shard.chain_len.<shard>",
    "shard.row_lock_wait.": "shard.row_lock_wait.<shard>",
    "shard.requests.": "shard.requests.<shard>",
    "shard.shed.": "shard.shed.<shard>",
    "shard.queue_depth.": "shard.queue_depth.<shard>",
}

STATS_TOTALS_KEYS = {
    "cycles", "valid", "commits_hw", "commits_sw", "commits_raw",
    "failovers", "aborts_hw", "aborts_sw",
}
MACHINE_KEYS = {
    "num_cores", "l1_sets", "l1_ways", "l1_bytes", "l2_sets",
    "l2_ways", "l1_hit_latency", "l2_hit_latency", "mem_latency",
    "timer_quantum", "otable_buckets", "otable_shards", "seed",
}
HIST_KEYS = {"samples", "sum", "min", "max", "mean", "p50", "p90",
             "p99", "buckets"}


def fail(problems):
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    sys.exit(1)


def check_bucket_geometry(name, buckets, expect):
    """Sparse-bucket geometry: every bucket carries its inclusive
    [lo, le] value range, ranges are well-formed, and consecutive
    buckets are disjoint and ascending."""
    prev_le = -1
    for b in buckets:
        expect("lo" in b, f"histogram {name}: bucket missing 'lo'")
        lo, le = b.get("lo", 0), b.get("le", 0)
        expect(lo <= le,
               f"histogram {name}: bucket lo={lo} > le={le}")
        expect(lo > prev_le,
               f"histogram {name}: bucket lo={lo} overlaps previous "
               f"le={prev_le}")
        prev_le = le


def check_stats_doc(doc):
    problems = []

    def expect(cond, msg):
        if not cond:
            problems.append(msg)

    expect(doc.get("schema") == "ufotm-stats",
           f"schema is {doc.get('schema')!r}, want 'ufotm-stats'")
    version = doc.get("schema_version")
    expect(version in (1, 2),
           f"schema_version is {version!r}, want 1 or 2")
    v2 = version == 2

    rc = doc.get("run_config", {})
    for k in ("workload", "system", "threads", "seed", "scale"):
        expect(k in rc, f"run_config.{k} missing")
    machine = rc.get("machine", {})
    missing = MACHINE_KEYS - machine.keys()
    expect(not missing, f"run_config.machine missing {sorted(missing)}")

    totals = doc.get("totals", {})
    missing = STATS_TOTALS_KEYS - totals.keys()
    expect(not missing, f"totals missing {sorted(missing)}")

    counters = doc.get("counters")
    expect(isinstance(counters, dict), "counters missing")
    counters = counters or {}
    for name, v in counters.items():
        expect(isinstance(v, int) and v >= 0,
               f"counter {name} is not a non-negative integer: {v!r}")
        expect(re.fullmatch(r"[a-z0-9_]+(\.[a-z0-9_]+)+", name),
               f"counter name {name!r} violates the naming convention")

    # The headline attribution invariant: hardware aborts are exactly
    # the sum of the btm.aborts.<reason> family.
    aborts_hw = sum(v for n, v in counters.items()
                    if n.startswith("btm.aborts."))
    expect(totals.get("aborts_hw") == aborts_hw,
           f"totals.aborts_hw={totals.get('aborts_hw')} != "
           f"sum(btm.aborts.*)={aborts_hw}")
    aborts_sw = counters.get("ustm.aborts", 0) + \
        counters.get("tl2.aborts", 0)
    expect(totals.get("aborts_sw") == aborts_sw,
           f"totals.aborts_sw={totals.get('aborts_sw')} != "
           f"ustm.aborts+tl2.aborts={aborts_sw}")
    # Reason families must sum to their aggregate where one exists.
    # The shard.* rows enforce the per-shard -> aggregate identity of
    # docs/OBSERVABILITY.md ("Sharded stores"): per-shard counters are
    # only emitted on sharded configurations, and then must account
    # for every aggregate event (shard.cross sums its commit/abort
    # attribution).
    for prefix, agg in (("ustm.aborts.", "ustm.aborts"),
                        ("tl2.aborts.", "tl2.aborts"),
                        ("tm.failovers.hard.", "tm.failovers.hard"),
                        ("pred.predictions.", "pred.predictions"),
                        ("svc.requests.", "svc.requests"),
                        ("svc.shed.", "svc.shed"),
                        ("svc.request_aborts.", "svc.request_aborts"),
                        ("batch.aborts.", "batch.aborts"),
                        ("batch.members.", "batch.members"),
                        ("dur.log_records.", "dur.log_records"),
                        ("dur.log_bytes.", "dur.log_bytes"),
                        ("shard.acquires.", "shard.acquires"),
                        ("shard.chain_inserts.", "shard.chain_inserts"),
                        ("shard.requests.", "shard.requests"),
                        ("shard.shed.", "shard.shed"),
                        ("shard.cross.", "shard.cross"),
                        ("conflict.edges.", "conflict.edges"),
                        ("watchdog.episodes.", "watchdog.episodes")):
        fam = sum(v for n, v in counters.items()
                  if n.startswith(prefix))
        if agg in counters or fam:
            expect(counters.get(agg, 0) == fam,
                   f"{agg}={counters.get(agg, 0)} != "
                   f"sum({prefix}*)={fam}")

    for name, h in doc.get("histograms", {}).items():
        missing = HIST_KEYS - h.keys()
        expect(not missing, f"histogram {name} missing {sorted(missing)}")
        buckets = h.get("buckets", [])
        expect(sum(b.get("count", 0) for b in buckets) ==
               h.get("samples"),
               f"histogram {name}: bucket counts do not sum to samples")
        bounds = [b.get("le", 0) for b in buckets]
        expect(bounds == sorted(set(bounds)),
               f"histogram {name}: bucket bounds not strictly "
               "increasing")
        check_bucket_geometry(name, buckets, expect)
        expect(h.get("p50", 0) <= h.get("p90", 0) <= h.get("p99", 0),
               f"histogram {name}: quantiles not monotone")

    # Path-predictor accounting: every prediction resolves to at most
    # one verdict (transactions that abort out of the machine resolve
    # neither way), and predicted software starts are exactly the
    # tm.failovers.predicted attribution.
    if counters.get("pred.predictions", 0):
        expect(counters.get("pred.hits", 0) +
               counters.get("pred.mispredicts", 0) <=
               counters.get("pred.predictions", 0),
               f"pred.hits+pred.mispredicts="
               f"{counters.get('pred.hits', 0) + counters.get('pred.mispredicts', 0)}"
               f" > pred.predictions={counters.get('pred.predictions', 0)}")
        expect(counters.get("tm.failovers.predicted", 0) ==
               counters.get("pred.predictions.sw", 0),
               f"tm.failovers.predicted="
               f"{counters.get('tm.failovers.predicted', 0)} != "
               f"pred.predictions.sw="
               f"{counters.get('pred.predictions.sw', 0)}")

    # Request-coalescing accounting: every batch resolves to exactly
    # one of commit/abort, splits only happen on aborts, each batch
    # carries at least one member, and the K histogram samples each
    # batch's planned size exactly once.
    if counters.get("batch.batches", 0):
        batches = counters.get("batch.batches", 0)
        expect(counters.get("batch.commits", 0) +
               counters.get("batch.aborts", 0) == batches,
               f"batch.commits+batch.aborts="
               f"{counters.get('batch.commits', 0) + counters.get('batch.aborts', 0)}"
               f" != batch.batches={batches}")
        expect(counters.get("batch.members", 0) >= batches,
               f"batch.members={counters.get('batch.members', 0)} < "
               f"batch.batches={batches}")
        expect(counters.get("batch.splits", 0) <=
               counters.get("batch.aborts", 0),
               f"batch.splits={counters.get('batch.splits', 0)} > "
               f"batch.aborts={counters.get('batch.aborts', 0)}")
        bk = doc.get("histograms", {}).get("batch.k")
        expect(isinstance(bk, dict) and bk.get("samples") == batches,
               f"batch.k histogram samples != batch.batches={batches}")

    # Durability accounting (docs/OBSERVABILITY.md "Durability &
    # recovery"): the dur.* family only exists on durable runs, every
    # logged commit is exactly one redo record sealed by exactly one
    # fence, write-backs cover at least the record bytes, and the log
    # grows monotonically with the record count (>= 56 bytes each —
    # header + txid/ts/count + one write triple).
    dur_counters = [n for n in counters if n.startswith("dur.")]
    if counters.get("dur.active", 0):
        records = counters.get("dur.log_records", 0)
        expect(counters.get("dur.commits.logged", 0) == records,
               f"dur.commits.logged="
               f"{counters.get('dur.commits.logged', 0)} != "
               f"dur.log_records={records}")
        expect(counters.get("dur.sfence", 0) == records,
               f"dur.sfence={counters.get('dur.sfence', 0)} != "
               f"dur.log_records={records}")
        clwb = counters.get("dur.clwb.dirty", 0) + \
            counters.get("dur.clwb.clean", 0)
        expect(clwb >= records,
               f"dur.clwb.dirty+clean={clwb} < "
               f"dur.log_records={records}")
        expect(counters.get("dur.log_bytes", 0) >= 56 * records,
               f"dur.log_bytes={counters.get('dur.log_bytes', 0)} < "
               f"56 * dur.log_records={56 * records}")
    else:
        expect(not dur_counters,
               f"dur.* counters on a non-durable run: "
               f"{sorted(dur_counters)[:4]}")

    # Recovery accounting (dur::recover on a recovered machine): every
    # scanned record is either applied or discarded as a torn tail,
    # and each applied record carries at least one write.
    if "rec.records.scanned" in counters:
        scanned = counters.get("rec.records.scanned", 0)
        applied = counters.get("rec.records.applied", 0)
        expect(applied + counters.get("rec.records.discarded", 0) ==
               scanned,
               f"rec.records.applied+discarded != "
               f"rec.records.scanned={scanned}")
        expect(counters.get("rec.writes_applied", 0) >= applied,
               f"rec.writes_applied="
               f"{counters.get('rec.writes_applied', 0)} < "
               f"rec.records.applied={applied}")
        expect(counters.get("rec.bytes_scanned", 0) >= 56 * applied,
               f"rec.bytes_scanned="
               f"{counters.get('rec.bytes_scanned', 0)} < "
               f"56 * rec.records.applied={56 * applied}")

    # svc latency histograms: per-type samples sum to the aggregate,
    # which counts exactly the served requests.
    hists = doc.get("histograms", {})
    if "svc.latency" in hists:
        agg = hists["svc.latency"].get("samples")
        per_type = sum(h.get("samples", 0) for n, h in hists.items()
                       if n.startswith("svc.latency."))
        expect(per_type == agg,
               f"sum(svc.latency.<type> samples)={per_type} != "
               f"svc.latency samples={agg}")
        expect(counters.get("svc.requests", 0) == agg,
               f"svc.requests={counters.get('svc.requests', 0)} != "
               f"svc.latency samples={agg}")

    # per_backend must re-group exactly the counters map.
    per_backend = doc.get("per_backend")
    if isinstance(per_backend, dict):
        regrouped = {f"{be}.{rest}": v
                     for be, sub in per_backend.items()
                     for rest, v in sub.items()}
        expect(regrouped == counters,
               "per_backend does not regroup the counters map")

    per_thread = doc.get("per_thread", [])
    for t in per_thread:
        for k in ("id", "cycles", "events"):
            expect(k in t, f"per_thread entry missing {k}")

    if v2:
        problems += check_stats_v2(doc, counters, per_thread)

    return problems


def check_stats_v2(doc, counters, per_thread):
    """Schema-v2 sections: profile, contention, phase_cycles."""
    problems = []

    def expect(cond, msg):
        if not cond:
            problems.append(msg)

    # The profile section mirrors the prof.cycles.* counters exactly
    # (both are empty in a UTM_PROFILING=0 build).
    profile = doc.get("profile")
    expect(isinstance(profile, dict), "profile section missing")
    profile = profile if isinstance(profile, dict) else {}
    mirrored = {n[len("prof.cycles."):]: v
                for n, v in counters.items()
                if n.startswith("prof.cycles.")}
    expect(profile == mirrored,
           "profile section does not mirror the prof.cycles.* "
           "counters")
    for name in profile:
        expect(name in PROF_CYCLE_NAMES,
               f"profile entry {name!r} is not a known "
               "component.phase")

    # Per-thread phase cycles must sum exactly to the thread's total.
    profiling = bool(profile)
    for t in per_thread:
        pc = t.get("phase_cycles")
        expect(isinstance(pc, dict),
               f"per_thread entry {t.get('id')} missing phase_cycles")
        if not isinstance(pc, dict) or not profiling:
            continue
        total = sum(pc.values())
        expect(total == t.get("cycles"),
               f"per_thread[{t.get('id')}]: sum(phase_cycles)={total} "
               f"!= cycles={t.get('cycles')}")
        expect("app" in pc,
               f"per_thread[{t.get('id')}]: phase_cycles missing the "
               "app residual")
    if profiling:
        agg = sum(profile.values())
        thread_total = sum(t.get("cycles", 0) for t in per_thread)
        expect(agg == thread_total,
               f"sum(profile.*)={agg} != sum(per_thread.cycles)="
               f"{thread_total}")

    # Contention: hot-line counts are Misra–Gries lower bounds, so
    # each backend's sum may not exceed its conflict counter.
    cont = doc.get("contention")
    expect(isinstance(cont, dict), "contention section missing")
    cont = cont if isinstance(cont, dict) else {}
    limits = {
        "ustm": counters.get("ustm.conflicts", 0),
        "btm": counters.get("btm.wounds", 0),
    }
    for backend, entries in cont.get("hot_lines", {}).items():
        expect(backend in limits,
               f"contention.hot_lines has unknown backend "
               f"{backend!r}")
        total = sum(e.get("count", 0) for e in entries)
        expect(total <= limits.get(backend, 0),
               f"contention.hot_lines.{backend}: counts sum to "
               f"{total} > {limits.get(backend, 0)} conflicts")
        got = [e.get("count", 0) for e in entries]
        expect(got == sorted(got, reverse=True),
               f"contention.hot_lines.{backend} not count-sorted")
    for name, h in cont.get("otable", {}).items():
        missing = HIST_KEYS - h.keys()
        expect(not missing,
               f"contention.otable.{name} missing {sorted(missing)}")
        buckets = h.get("buckets", [])
        expect(sum(b.get("count", 0) for b in buckets) ==
               h.get("samples"),
               f"contention.otable.{name}: bucket counts do not sum "
               "to samples")
        check_bucket_geometry(f"contention.otable.{name}", buckets,
                              expect)

    return problems


def check_timeline_doc(doc):
    """Validate a ufotm-timeline v1 document (sim/telemetry.cc).

    The load-bearing invariant: the timeline is a lossless
    decomposition of the run — for every counter, the per-window
    deltas sum *exactly* to the end-of-run totals."""
    problems = []

    def expect(cond, msg):
        if not cond:
            problems.append(msg)

    expect(doc.get("schema") == "ufotm-timeline",
           f"schema is {doc.get('schema')!r}, want 'ufotm-timeline'")
    expect(doc.get("schema_version") == 1,
           f"schema_version is {doc.get('schema_version')!r}, want 1")
    window_cycles = doc.get("window_cycles", 0)
    expect(isinstance(window_cycles, int) and window_cycles > 0,
           f"window_cycles is {window_cycles!r}, want a positive int")

    windows = doc.get("windows")
    expect(isinstance(windows, list), "windows missing")
    windows = windows or []
    totals = doc.get("totals")
    expect(isinstance(totals, dict), "totals missing")
    totals = totals or {}

    deltas = {}
    prev_id = -1
    for w in windows:
        wid = w.get("window")
        expect(isinstance(wid, int) and wid > prev_id,
               f"window id {wid!r} not strictly increasing "
               f"(previous {prev_id})")
        prev_id = wid if isinstance(wid, int) else prev_id
        expect(w.get("start_cycle", 0) <= w.get("end_cycle", 0),
               f"window {wid}: start_cycle > end_cycle")

        for name, v in w.get("counters", {}).items():
            expect(isinstance(v, int) and v > 0,
                   f"window {wid}: counter {name} delta is not a "
                   f"positive integer: {v!r}")
            deltas[name] = deltas.get(name, 0) + v
            expect(name in totals,
                   f"window {wid}: counter {name} absent from totals")

        for name, h in w.get("histograms", {}).items():
            expect(h.get("samples", 0) > 0,
                   f"window {wid}: histogram {name} has no samples")
            expect(h.get("p50", 0) <= h.get("p90", 0) <=
                   h.get("p99", 0),
                   f"window {wid}: histogram {name} quantiles not "
                   "monotone")

        for t in w.get("threads", []):
            for k in ("id", "steps", "commits", "aborts"):
                expect(k in t, f"window {wid}: thread entry missing "
                       f"{k!r}")

        c = w.get("conflicts", {})
        edges = c.get("edges", 0)
        expect(edges == c.get("edges_btm", 0) +
               c.get("edges_ustm", 0),
               f"window {wid}: conflicts.edges={edges} != "
               f"edges_btm+edges_ustm")
        for table, key in (("hot_lines", "line"),
                           ("sites", "victim_site")):
            entries = c.get(table, [])
            got = [e.get("count", 0) for e in entries]
            expect(got == sorted(got, reverse=True),
                   f"window {wid}: conflicts.{table} not "
                   "count-sorted")
            expect(sum(got) <= edges,
                   f"window {wid}: conflicts.{table} counts sum to "
                   f"{sum(got)} > {edges} edges")
            for e in entries:
                expect(key in e and "count" in e,
                       f"window {wid}: conflicts.{table} entry "
                       f"missing {key!r}/count")

    # The tentpole invariant: window deltas decompose the final
    # aggregates exactly — nothing lost, nothing double-counted.
    for name, total in sorted(totals.items()):
        expect(deltas.get(name, 0) == total,
               f"counter {name}: window deltas sum to "
               f"{deltas.get(name, 0)} != totals {total}")
    for name in sorted(deltas.keys() - totals.keys()):
        problems.append(f"counter {name} appears in windows but not "
                        "in totals")

    # Forensics cross-checks against the aggregate counters.
    edges_btm = totals.get("conflict.edges.btm", 0)
    edges_ustm = totals.get("conflict.edges.ustm", 0)
    if "conflict.edges" in totals:
        expect(totals["conflict.edges"] == edges_btm + edges_ustm,
               f"totals conflict.edges={totals['conflict.edges']} != "
               f"btm+ustm={edges_btm + edges_ustm}")
    aborts_hw = sum(v for n, v in totals.items()
                    if n.startswith("btm.aborts."))
    expect(edges_btm <= aborts_hw,
           f"conflict.edges.btm={edges_btm} > "
           f"sum(btm.aborts.*)={aborts_hw}")
    expect(edges_ustm <= totals.get("ustm.aborts", 0),
           f"conflict.edges.ustm={edges_ustm} > "
           f"ustm.aborts={totals.get('ustm.aborts', 0)}")

    # Watchdog consistency: the sticky verdict, the episode list, and
    # the per-window flags must tell the same story.
    wd = doc.get("watchdog")
    expect(isinstance(wd, dict), "watchdog missing")
    wd = wd or {}
    expect(wd.get("threshold_windows", 0) > 0,
           "watchdog.threshold_windows missing or zero")
    episodes = wd.get("episodes", [])
    stalled = wd.get("stalled")
    expect(stalled == bool(episodes),
           f"watchdog.stalled={stalled!r} inconsistent with "
           f"{len(episodes)} episode(s)")
    if stalled:
        expect(bool(wd.get("why")), "watchdog stalled without a why")
    flagged = {w.get("window"): w["watchdog"] for w in windows
               if "watchdog" in w}
    for e in episodes:
        wid, tid = e.get("window"), e.get("thread")
        expect(wid in flagged,
               f"watchdog episode at window {wid} has no per-window "
               "watchdog record")
        if wid not in flagged:
            continue
        if tid == -1:
            expect(flagged[wid].get("global_stall"),
                   f"global episode at window {wid} but "
                   "global_stall is false")
        else:
            expect(tid in flagged[wid].get("starved_threads", []),
                   f"episode thread {tid} at window {wid} not in "
                   "starved_threads")
    episode_windows = {e.get("window") for e in episodes}
    for wid in sorted(flagged.keys() - episode_windows):
        problems.append(f"window {wid} carries a watchdog record but "
                        "no episode mentions it")

    expect(int(totals.get("watchdog.episodes", 0)) == len(episodes),
           f"totals watchdog.episodes={totals.get('watchdog.episodes', 0)}"
           f" != {len(episodes)} episode(s)")

    return problems


def check_recover_doc(doc):
    """Validate a ufotm-recover document (src/dur/recovery.cc
    RecoveryReport::toJson; also embedded as the `recover` object of
    every tmtorture --crash run row).

    The scan invariant: every scanned record is either applied or
    discarded as a torn tail, each applied record carries at least one
    write, and the byte count covers at least the 56-byte minimum
    record (header + txid/ts/count + one write triple) per applied
    record.

    Also accepts a whole tmtorture --crash report (ufotm-torture with
    config.crash): every run row's embedded `recover` object is
    validated, and the run's recovered/discarded summary counts must
    match it."""
    problems = []

    def expect(cond, msg):
        if not cond:
            problems.append(msg)

    if doc.get("schema") == "ufotm-torture":
        expect(doc.get("config", {}).get("crash"),
               "ufotm-torture document is not a --crash report")
        runs = doc.get("runs", [])
        expect(bool(runs), "no runs in the --crash report")
        for i, run in enumerate(runs):
            rec = run.get("recover")
            if not isinstance(rec, dict):
                problems.append(f"runs[{i}]: recover object missing")
                continue
            problems += [f"runs[{i}]: {p}"
                         for p in check_recover_doc(rec)]
            records = rec.get("records", {})
            expect(run.get("recovered") == records.get("applied"),
                   f"runs[{i}]: recovered={run.get('recovered')!r} != "
                   f"recover.records.applied="
                   f"{records.get('applied')!r}")
            expect(run.get("discarded") == records.get("discarded"),
                   f"runs[{i}]: discarded={run.get('discarded')!r} != "
                   f"recover.records.discarded="
                   f"{records.get('discarded')!r}")
        return problems

    expect(doc.get("schema") == "ufotm-recover",
           f"schema is {doc.get('schema')!r}, want 'ufotm-recover'")
    expect(doc.get("version") == 1,
           f"version is {doc.get('version')!r}, want 1")
    for k in ("shards_scanned", "lines_loaded", "writes_applied",
              "bytes_scanned", "ufo_lines_scrubbed", "max_commit_ts",
              "recovery_cycles"):
        expect(isinstance(doc.get(k), int) and doc.get(k, -1) >= 0,
               f"{k} is {doc.get(k)!r}, want a non-negative integer")
    records = doc.get("records")
    expect(isinstance(records, dict), "records object missing")
    records = records if isinstance(records, dict) else {}
    for k in ("scanned", "applied", "discarded"):
        expect(isinstance(records.get(k), int) and
               records.get(k, -1) >= 0,
               f"records.{k} is {records.get(k)!r}, want a "
               "non-negative integer")
    scanned = records.get("scanned", 0)
    applied = records.get("applied", 0)
    expect(applied + records.get("discarded", 0) == scanned,
           f"records.applied+discarded != records.scanned={scanned}")
    expect(doc.get("shards_scanned", 0) >= 1,
           "shards_scanned must be >= 1")
    expect(doc.get("writes_applied", 0) >= applied,
           f"writes_applied={doc.get('writes_applied', 0)} < "
           f"records.applied={applied}")
    expect(doc.get("bytes_scanned", 0) >= 56 * applied,
           f"bytes_scanned={doc.get('bytes_scanned', 0)} < "
           f"56 * records.applied={56 * applied}")
    if applied == 0:
        expect(doc.get("max_commit_ts", 0) == 0,
               "max_commit_ts nonzero with no applied records")
    return problems


def check_bench_doc(doc):
    problems = []
    if doc.get("schema") != "ufotm-bench":
        problems.append(f"schema is {doc.get('schema')!r}, "
                        "want 'ufotm-bench'")
    if doc.get("schema_version") != 1:
        problems.append("schema_version != 1")
    if not doc.get("bench"):
        problems.append("bench name missing")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows missing or empty")
        return problems
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"rows[{i}] is not an object")
            continue
        # figure6 rows embed the abort breakdown; verify the sum.
        if "aborts" in row and "aborts_total" in row:
            s = sum(row["aborts"].values())
            if s != row["aborts_total"]:
                problems.append(
                    f"rows[{i}]: aborts_total={row['aborts_total']} "
                    f"!= sum(aborts)={s}")
        if "counters" in row:
            hw = sum(v for n, v in row["counters"].items()
                     if n.startswith("btm.aborts."))
            if "aborts_total" in row and hw != row["aborts_total"]:
                problems.append(
                    f"rows[{i}]: aborts_total != sum of the "
                    f"btm.aborts.* counters ({hw})")
    return problems


def check_svc_doc(doc):
    """Validate a ufotm-svc document (bench_svc --json output)."""
    problems = []

    def expect(cond, msg):
        if not cond:
            problems.append(msg)

    expect(doc.get("schema") == "ufotm-svc",
           f"schema is {doc.get('schema')!r}, want 'ufotm-svc'")
    # v1: the original svc_latency document.  v2 adds the xfer request
    # verb and the svc_scaling row family.  v3 adds the svc_predictor
    # A/B document: a `series` row key ("predictor-off"/"predictor-on")
    # plus pred.* fields on throughput rows.  v4 adds the svc_batching
    # A/B document: a `batch_k` row-identity field (0 on the
    # batching-off arm) plus batch.* fields on throughput rows.  v5
    # adds the svc_durable A/B document: "durable-off"/"durable-on"
    # series plus the persistence fields (dur_records, dur_log_bytes,
    # dur_sfence, dur_clwb, persist_cycles_per_req) on throughput rows
    # (docs/OBSERVABILITY.md has the migration notes).
    version = doc.get("schema_version")
    expect(version in (1, 2, 3, 4, 5),
           f"schema_version is {version!r}, want 1-5")
    expect(doc.get("bench") in ("svc_latency", "svc_scaling",
                                "svc_predictor", "svc_batching",
                                "svc_durable"),
           f"bench is {doc.get('bench')!r}, want 'svc_latency', "
           "'svc_scaling', 'svc_predictor', 'svc_batching' or "
           "'svc_durable'")
    if doc.get("bench") == "svc_predictor":
        expect(version == 3, "svc_predictor requires schema_version 3")
    if doc.get("bench") == "svc_batching":
        expect(version == 4, "svc_batching requires schema_version 4")
    if doc.get("bench") == "svc_durable":
        expect(version == 5, "svc_durable requires schema_version 5")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows missing or empty")
        return problems
    if doc.get("bench") == "svc_scaling":
        expect(version == 2, "svc_scaling requires schema_version 2")
        seen = set()
        for i, row in enumerate(rows):
            for k in ("benchmark", "system", "mode", "threads",
                      "shards", "requests", "abort_rate",
                      "throughput_req_per_mcycle"):
                expect(k in row, f"rows[{i}] missing {k!r}")
            expect(row.get("mode") == "scaling",
                   f"rows[{i}]: mode is {row.get('mode')!r}, want "
                   "'scaling'")
            expect(isinstance(row.get("shards"), int) and
                   row.get("shards", 0) >= 1,
                   f"rows[{i}]: shards must be a positive integer")
            expect(row.get("p50_cycles", 0) <= row.get("p99_cycles", 0)
                   <= row.get("p999_cycles", 0),
                   f"rows[{i}]: latency quantiles not monotone")
            key = (row.get("system"), row.get("threads"),
                   row.get("shards"))
            expect(key not in seen, f"rows[{i}]: duplicate row {key}")
            seen.add(key)
        return problems

    # Split into throughput rows (no "request" key) and per-request
    # latency rows; every (system, mode[, series]) needs one of the
    # former and one per request verb of the latter whose request
    # counts sum to the aggregate.  The series key disambiguates the
    # svc_predictor A/B arms; svc_latency rows carry no series.
    predictor = doc.get("bench") == "svc_predictor"
    batching = doc.get("bench") == "svc_batching"
    durable = doc.get("bench") == "svc_durable"
    agg = {}
    per_req = {}
    for i, row in enumerate(rows):
        for k in ("benchmark", "system", "mode", "threads"):
            expect(k in row, f"rows[{i}] missing {k!r}")
        if predictor:
            expect(row.get("series") in ("predictor-off",
                                         "predictor-on"),
                   f"rows[{i}]: series is {row.get('series')!r}, want "
                   "'predictor-off' or 'predictor-on'")
        if batching:
            expect(row.get("series") in ("batching-off",
                                         "batching-on"),
                   f"rows[{i}]: series is {row.get('series')!r}, want "
                   "'batching-off' or 'batching-on'")
            expect("batch_k" in row, f"rows[{i}] missing 'batch_k'")
            if row.get("series") == "batching-off":
                expect(row.get("batch_k") == 0,
                       f"rows[{i}]: batching-off arm has batch_k="
                       f"{row.get('batch_k')!r}, want 0")
            else:
                expect(row.get("batch_k", 0) >= 1,
                       f"rows[{i}]: batching-on arm has batch_k="
                       f"{row.get('batch_k')!r}, want >= 1")
        if durable:
            expect(row.get("series") in ("durable-off", "durable-on"),
                   f"rows[{i}]: series is {row.get('series')!r}, want "
                   "'durable-off' or 'durable-on'")
        group = (row.get("system"), row.get("mode"),
                 row.get("series"))
        if "request" in row:
            expect(row["request"] in SVC_REQ_TYPES,
                   f"rows[{i}]: unknown request type "
                   f"{row['request']!r}")
            expect(row.get("p50_cycles", 0) <= row.get("p99_cycles", 0)
                   <= row.get("p999_cycles", 0),
                   f"rows[{i}] ({group[0]}/{group[1]}/"
                   f"{row.get('request')}): latency quantiles not "
                   "monotone")
            per_req.setdefault(group, 0)
            per_req[group] += row.get("requests", 0)
        else:
            expect("throughput_req_per_mcycle" in row,
                   f"rows[{i}]: throughput row missing "
                   "throughput_req_per_mcycle")
            expect(group not in agg,
                   f"rows[{i}]: duplicate throughput row for {group}")
            agg[group] = row.get("requests", 0)
            if predictor:
                for k in ("predictions", "predicted_sw", "hits",
                          "mispredicts"):
                    expect(k in row, f"rows[{i}] missing {k!r}")
                preds = row.get("predictions", 0)
                expect(row.get("hits", 0) + row.get("mispredicts", 0)
                       <= preds,
                       f"rows[{i}]: hits+mispredicts > predictions")
                expect(row.get("predicted_sw", 0) <= preds,
                       f"rows[{i}]: predicted_sw > predictions")
                if row.get("series") == "predictor-off":
                    expect(preds == 0,
                           f"rows[{i}]: predictor-off arm reports "
                           f"{preds} predictions")
            if batching:
                for k in ("batches", "batch_members", "batch_splits",
                          "batch_aborts",
                          "begin_commit_cycles_per_req"):
                    expect(k in row, f"rows[{i}] missing {k!r}")
                batches = row.get("batches", 0)
                if row.get("series") == "batching-off":
                    expect(batches == 0,
                           f"rows[{i}]: batching-off arm reports "
                           f"{batches} batches")
                else:
                    expect(batches >= 1,
                           f"rows[{i}]: batching-on arm reports no "
                           "batches")
                    expect(row.get("batch_members", 0) >= batches,
                           f"rows[{i}]: batch_members < batches")
                expect(row.get("batch_splits", 0) <=
                       row.get("batch_aborts", 0),
                       f"rows[{i}]: batch_splits > batch_aborts")
            if durable:
                for k in ("dur_records", "dur_log_bytes",
                          "dur_sfence", "dur_clwb",
                          "persist_cycles_per_req"):
                    expect(k in row, f"rows[{i}] missing {k!r}")
                recs = row.get("dur_records", 0)
                if row.get("series") == "durable-off":
                    expect(recs == 0 and
                           row.get("dur_log_bytes", 0) == 0 and
                           row.get("persist_cycles_per_req", 0) == 0,
                           f"rows[{i}]: durable-off arm carries "
                           "persistence fields")
                else:
                    expect(recs >= 1,
                           f"rows[{i}]: durable-on arm logged no "
                           "records")
                    expect(row.get("dur_sfence", 0) == recs,
                           f"rows[{i}]: dur_sfence != dur_records")
                    expect(row.get("dur_clwb", 0) >= recs,
                           f"rows[{i}]: dur_clwb < dur_records")
                    expect(row.get("dur_log_bytes", 0) >= 56 * recs,
                           f"rows[{i}]: dur_log_bytes < 56 * "
                           "dur_records")

    expect(set(agg) == set(per_req),
           f"throughput/latency row groups differ: "
           f"{sorted(set(agg) ^ set(per_req))}")
    for group in agg:
        expect(agg[group] == per_req.get(group, 0),
               f"{group[0]}/{group[1]}: per-request counts sum to "
               f"{per_req.get(group, 0)} != aggregate {agg[group]}")
    return problems


# Matches both single-line inc("x")/set("x", ...)/observe("x", ...)
# and the argument spilling to the next line.
LITERAL_RE = re.compile(
    r'\b(?:inc|set|observe|get|histogram)\s*\(\s*\n?\s*"([a-z0-9_.]+)"')
TERNARY_RE = re.compile(r'"([a-z0-9_.]+\.[a-z0-9_.]+)"')
DYNAMIC_RE = re.compile(r'std::string\("([a-z0-9_.]+\.)"\)\s*\+')


def emitted_counters():
    """All counter names (and dynamic prefixes) emitted by src/."""
    names, prefixes = set(), set()
    for path in sorted((REPO / "src").rglob("*.[ch][ch]")):
        text = path.read_text()
        for m in LITERAL_RE.finditer(text):
            names.add(m.group(1))
        for m in DYNAMIC_RE.finditer(text):
            prefixes.add(m.group(1))
        # inc(cond ? "a" : "b") — grab quoted dotted names near incs.
        for stmt in re.findall(r'inc\s*\(([^;]*?)\)\s*;', text,
                               re.DOTALL):
            if '?' in stmt:
                names.update(TERNARY_RE.findall(stmt))
    return names, prefixes


def check_docs():
    problems = []
    doc_text = (REPO / "docs" / "OBSERVABILITY.md").read_text()
    names, prefixes = emitted_counters()
    def family_documented(prefix):
        # Either the family's placeholder or every name in the
        # family's vocabulary, enumerated explicitly.
        placeholder = FAMILY_PLACEHOLDERS.get(prefix,
                                              f"{prefix}<reason>")
        if placeholder in doc_text:
            return True
        vocab = REASON_FAMILIES.get(prefix)
        return bool(vocab) and all(f"{prefix}{r}" in doc_text
                                   for r in vocab
                                   if r != "none")

    for name in sorted(names):
        covered = name in doc_text or any(
            name.startswith(p) and family_documented(p)
            for p in prefixes)
        if not covered:
            problems.append(
                f"counter {name!r} is emitted by src/ but not "
                "documented in docs/OBSERVABILITY.md")
    for prefix in sorted(prefixes):
        if not family_documented(prefix):
            problems.append(
                f"dynamic counter family {prefix!r}<reason> is "
                "emitted by src/ but not documented in "
                "docs/OBSERVABILITY.md")
        if prefix not in REASON_FAMILIES:
            problems.append(
                f"dynamic counter family {prefix!r} has no reason "
                "vocabulary in tools/check_stats_json.py")
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*", help="JSON documents to check")
    ap.add_argument("--bench", action="store_true",
                    help="validate ufotm-bench documents")
    ap.add_argument("--svc", action="store_true",
                    help="validate ufotm-svc documents")
    ap.add_argument("--timeline", action="store_true",
                    help="validate ufotm-timeline documents")
    ap.add_argument("--recover", action="store_true",
                    help="validate ufotm-recover documents")
    ap.add_argument("--check-docs", action="store_true",
                    help="check docs/OBSERVABILITY.md counter coverage")
    args = ap.parse_args()

    problems = []
    if args.check_docs:
        problems += check_docs()
    for f in args.files:
        doc = json.load(open(f))
        check = check_timeline_doc if args.timeline else \
            check_recover_doc if args.recover else \
            check_svc_doc if args.svc else \
            check_bench_doc if args.bench else check_stats_doc
        problems += [f"{f}: {p}" for p in check(doc)]
    if problems:
        fail(problems)
    checked = len(args.files) + (1 if args.check_docs else 0)
    print(f"OK ({checked} check(s) passed)")


if __name__ == "__main__":
    main()
