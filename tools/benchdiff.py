#!/usr/bin/env python3
"""Diff two ufotm-bench (or ufotm-svc) documents for regressions.

  benchdiff.py BASELINE CURRENT [--threshold 0.10] [--report PATH]

Rows are matched by their identity fields (benchmark/system/threads/
series/failover_rate/tx_per_thread, plus mode/request/shards/batch_k
for svc rows);
the compared metric is `cycles` where a row has one (figure5/figure6
rows, lower is better), `p99_cycles` (svc latency rows, lower is
better), else `throughput_tx_per_mcycle` / `throughput_req_per_mcycle`
(figure7 / svc throughput rows, higher is better).  The simulator is
deterministic, so on an unchanged tree every delta is exactly zero;
any per-row change worse than --threshold (relative) fails the diff.

Exit status: 0 = no regression, 1 = regression or row mismatch,
2 = unusable input.  --report writes a machine-readable JSON diff
(uploaded as a CI artifact on failure).
"""

import argparse
import json
import sys

KEY_FIELDS = ("benchmark", "system", "threads", "series",
              "failover_rate", "tx_per_thread", "mode", "request",
              "shards", "batch_k")

# (metric, direction): +1 means larger-is-worse, -1 larger-is-better.
METRICS = (("cycles", 1), ("p99_cycles", 1),
           ("throughput_tx_per_mcycle", -1),
           ("throughput_req_per_mcycle", -1))

SCHEMAS = ("ufotm-bench", "ufotm-svc")


def row_key(row):
    return tuple((k, row[k]) for k in KEY_FIELDS if k in row)


def key_str(key):
    return " ".join(f"{k}={v}" for k, v in key)


def pick_metric(base_row, cur_row):
    for metric, direction in METRICS:
        if metric in base_row and metric in cur_row:
            return metric, direction
    return None, 0


def load_doc(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"benchdiff: cannot read {path}: {e}")
    if doc.get("schema") not in SCHEMAS:
        sys.exit(f"benchdiff: {path}: schema is {doc.get('schema')!r},"
                 f" want one of {SCHEMAS}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"benchdiff: {path}: no rows")
    return doc


def diff(base_doc, cur_doc, threshold):
    base = {row_key(r): r for r in base_doc["rows"]}
    cur = {row_key(r): r for r in cur_doc["rows"]}
    rows, problems = [], []

    for key, brow in base.items():
        crow = cur.get(key)
        if crow is None:
            problems.append(f"row missing from current: {key_str(key)}")
            continue
        metric, direction = pick_metric(brow, crow)
        if metric is None:
            problems.append(f"no comparable metric: {key_str(key)}")
            continue
        bval, cval = brow[metric], crow[metric]
        delta = 0.0 if bval == cval else \
            (cval - bval) / bval if bval else float("inf")
        regressed = delta * direction > threshold
        rows.append({
            "key": dict(key),
            "metric": metric,
            "baseline": bval,
            "current": cval,
            "delta": delta,
            "regressed": regressed,
        })
        if regressed:
            problems.append(
                f"{key_str(key)}: {metric} {bval} -> {cval} "
                f"({delta:+.1%}, threshold {threshold:.0%})")
    for key in cur:
        if key not in base:
            rows.append({"key": dict(key), "new_row": True})
    return rows, problems


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative per-row regression threshold "
                         "(default 0.10)")
    ap.add_argument("--report", metavar="PATH",
                    help="write the JSON diff here")
    args = ap.parse_args()

    base_doc = load_doc(args.baseline)
    cur_doc = load_doc(args.current)
    if base_doc.get("schema") != cur_doc.get("schema"):
        sys.exit(f"benchdiff: schema mismatch: "
                 f"{base_doc.get('schema')!r} vs "
                 f"{cur_doc.get('schema')!r}")
    if base_doc.get("bench") != cur_doc.get("bench"):
        sys.exit(f"benchdiff: bench mismatch: "
                 f"{base_doc.get('bench')!r} vs {cur_doc.get('bench')!r}")

    rows, problems = diff(base_doc, cur_doc, args.threshold)

    if args.report:
        report = {
            "schema": "ufotm-benchdiff",
            "schema_version": 1,
            "bench": base_doc.get("bench"),
            "baseline": args.baseline,
            "current": args.current,
            "threshold": args.threshold,
            "regressions": sum(1 for r in rows if r.get("regressed")),
            "problems": problems,
            "rows": rows,
        }
        with open(args.report, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")

    compared = [r for r in rows if "delta" in r]
    direction = dict(METRICS)
    worst = max((r["delta"] * direction.get(r["metric"], 1)
                 for r in compared), default=0.0)
    print(f"benchdiff: {base_doc.get('bench')}: {len(compared)} rows "
          f"compared, worst delta {worst:+.2%}")
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        sys.exit(1)
    print("OK (no regression)")


if __name__ == "__main__":
    main()
