/**
 * @file
 * End-to-end smoke tests: a shared counter incremented concurrently
 * must be exact under every TM system, for several thread counts.
 */

#include <gtest/gtest.h>

#include "core/tx_system.hh"
#include "mem/memory_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

struct SmokeCase
{
    TxSystemKind kind;
    int threads;
};

class SmokeCounter : public ::testing::TestWithParam<SmokeCase>
{
};

TEST_P(SmokeCounter, SharedCounterIsExact)
{
    const SmokeCase c = GetParam();
    MachineConfig mc;
    mc.numCores = c.threads;
    Machine machine(mc);
    TxHeap heap(machine);
    auto sys = TxSystem::create(c.kind, machine);
    sys->setup();

    ThreadContext &init = machine.initContext();
    const Addr counter = heap.allocZeroed(init, 8, true);
    constexpr int kIncrementsPerThread = 200;

    for (int t = 0; t < c.threads; ++t) {
        machine.addThread([&, t](ThreadContext &tc) {
            (void)t;
            for (int i = 0; i < kIncrementsPerThread; ++i) {
                sys->atomic(tc, [&](TxHandle &h) {
                    h.write(counter, h.read(counter, 8) + 1, 8);
                });
                tc.advance(20);
            }
        });
    }
    machine.run();

    EXPECT_EQ(machine.memory().read(counter, 8),
              std::uint64_t(c.threads) * kIncrementsPerThread)
        << "system=" << txSystemKindName(c.kind)
        << " threads=" << c.threads;
    EXPECT_GT(machine.completionTime(), 0u);
}

std::vector<SmokeCase>
smokeCases()
{
    std::vector<SmokeCase> cases;
    for (TxSystemKind k :
         {TxSystemKind::UnboundedHtm, TxSystemKind::UfoHybrid,
          TxSystemKind::HyTm, TxSystemKind::PhTm, TxSystemKind::Ustm,
          TxSystemKind::UstmStrong, TxSystemKind::Tl2}) {
        for (int threads : {1, 2, 4, 8})
            cases.push_back({k, threads});
    }
    cases.push_back({TxSystemKind::NoTm, 1}); // Sequential only.
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, SmokeCounter, ::testing::ValuesIn(smokeCases()),
    [](const ::testing::TestParamInfo<SmokeCase> &info) {
        std::string name = txSystemKindName(info.param.kind);
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name + "_t" + std::to_string(info.param.threads);
    });

} // namespace
} // namespace utm
