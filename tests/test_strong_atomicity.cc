/**
 * @file
 * The paper's Figure 2 pathologies, as executable tests.
 *
 * Figure 2a (privatization): a transaction privatizes a node by
 * unlinking it; the now-private data is then accessed without
 * synchronization.  With weak atomicity, a doomed concurrent
 * transaction's rollback can clobber the private update ("lost
 * update").  Strongly-atomic systems must never lose it.
 *
 * Figure 2b (granularity / containment): a non-transactional write to
 * a byte that shares a cache line with transactionally-written data
 * can be swallowed by the transaction's rollback when conflicts with
 * non-transactional code are not detected.  Strongly-atomic systems
 * must serialize the nonT write against the transaction.
 *
 * These run on every strongly-atomic configuration (UFO hybrid,
 * USTM+UFO, HTM-based systems — coherence makes HTMs strongly atomic).
 */

#include <gtest/gtest.h>

#include "core/tx_system.hh"
#include "mem/memory_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

MachineConfig
quiet(int cores)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

class StrongAtomicity : public ::testing::TestWithParam<TxSystemKind>
{
};

TEST_P(StrongAtomicity, GranularityNonTWriteNotLost)
{
    // Figure 2b: thread 0 transactionally writes byte A of a line and
    // aborts/retries; thread 1 writes byte B of the same line outside
    // any transaction.  The nonT write must survive.
    Machine m(quiet(2));
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    const Addr line = heap.allocZeroed(m.initContext(), 64, true);
    const Addr byte_a = line + 0;
    const Addr byte_b = line + 32;

    m.addThread([&](ThreadContext &tc) {
        for (int i = 0; i < 10; ++i) {
            sys->atomic(tc, [&](TxHandle &h) {
                h.write(byte_a, h.read(byte_a, 1) + 1, 1);
                h.ctx().advance(150); // Widen the window.
            });
        }
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(120);
        tc.store(byte_b, 0x55, 1); // Non-transactional.
    });
    m.run();

    EXPECT_EQ(m.memory().read(byte_b, 1), 0x55u)
        << "non-transactional write was lost";
    EXPECT_EQ(m.memory().read(byte_a, 1), 10u);
}

TEST_P(StrongAtomicity, PrivatizationSafe)
{
    // Figure 2a: a shared "box" holds a pointer to a node.  Thread 0
    // privatizes the node (transactionally nulls the pointer), then
    // updates the node WITHOUT synchronization.  Thread 1's
    // transactions read the box and, if non-null, update the node.
    // After the run, the private update must be intact: node == 1000.
    Machine m(quiet(2));
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    ThreadContext &init = m.initContext();
    const Addr box = heap.allocZeroed(init, 8, true);
    const Addr node = heap.allocZeroed(init, 8, true);
    init.store(box, node, 8);

    m.addThread([&](ThreadContext &tc) {
        tc.advance(300); // Let thread 1 start transacting.
        sys->atomic(tc, [&](TxHandle &h) {
            h.write(box, 0, 8); // Privatize.
        });
        // Now private: plain, non-transactional update.
        tc.store(node, 1000, 8);
    });
    m.addThread([&](ThreadContext &tc) {
        for (int i = 0; i < 30; ++i) {
            sys->atomic(tc, [&](TxHandle &h) {
                Addr p = h.read(box, 8);
                if (p != 0) {
                    std::uint64_t v = h.read(p, 8);
                    h.ctx().advance(100);
                    h.write(p, v + 1, 8);
                }
            });
            tc.advance(40);
        }
    });
    m.run();

    EXPECT_EQ(m.memory().read(node, 8), 1000u)
        << "privatized update lost to a doomed transaction";
    EXPECT_EQ(m.memory().read(box, 8), 0u);
}

TEST_P(StrongAtomicity, NonTReadNeverSeesSpeculativeState)
{
    // A transaction maintains the invariant x == y by updating both;
    // a non-transactional reader samples them and must never observe
    // a half-done update (containment of speculative state).
    Machine m(quiet(2));
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    ThreadContext &init = m.initContext();
    const Addr x = heap.allocZeroed(init, 8, true);
    const Addr y = heap.allocZeroed(init, 8, true);

    bool torn = false;
    m.addThread([&](ThreadContext &tc) {
        for (int i = 0; i < 25; ++i) {
            sys->atomic(tc, [&](TxHandle &h) {
                std::uint64_t v = h.read(x, 8);
                h.write(x, v + 1, 8);
                h.ctx().advance(120);
                h.write(y, v + 1, 8);
            });
            tc.advance(30);
        }
    });
    m.addThread([&](ThreadContext &tc) {
        for (int i = 0; i < 25; ++i) {
            std::uint64_t a = tc.load(x, 8);
            std::uint64_t b = tc.load(y, 8);
            // The reader's two loads are not atomic together, so
            // a == b+1 is legal (an update committed in between);
            // but b > a (y ahead of x) or a > b+1 would mean we saw
            // uncommitted/rolled-back state.
            if (b > a || a > b + 1)
                torn = true;
            tc.advance(90);
        }
    });
    m.run();
    EXPECT_FALSE(torn);
    EXPECT_EQ(m.memory().read(x, 8), 25u);
    EXPECT_EQ(m.memory().read(y, 8), 25u);
}

INSTANTIATE_TEST_SUITE_P(
    StronglyAtomicSystems, StrongAtomicity,
    ::testing::Values(TxSystemKind::UfoHybrid,
                      TxSystemKind::UstmStrong,
                      TxSystemKind::UnboundedHtm),
    [](const ::testing::TestParamInfo<TxSystemKind> &info) {
        std::string n = txSystemKindName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace utm
