/**
 * @file
 * Tests for the cycle-accounting profiler and contention attribution
 * (src/sim/prof.hh): the CycleProfiler's push/pop arithmetic and its
 * hard invariant (a thread's phase cycles sum exactly to its total
 * cycles, with `app` as the residual), the Misra–Gries hot-line
 * table's guarantees, and the invariant holding end-to-end on a real
 * workload for every TM system under every scheduler policy.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/tx_system.hh"
#include "sim/machine.hh"
#include "sim/prof.hh"
#include "sim/stats_json.hh"
#include "stamp/failover_ubench.hh"
#include "stamp/workload.hh"

namespace utm {
namespace {

#if UTM_PROFILING

// ------------------------------------------------ CycleProfiler unit

// Exclusive attribution: while a nested scope is open, the enclosing
// phase is NOT charged; time outside any scope lands in `app`.
TEST(CycleProfiler, NestedScopesAttributeExclusively)
{
    CycleProfiler prof;
    prof.push(0, 10, ProfComp::Ustm, ProfPhase::BarrierRead);
    prof.push(0, 15, ProfComp::Ustm, ProfPhase::Stall);
    prof.pop(0, 25); // stall charged 25-15 = 10
    prof.pop(0, 30); // barrier_read charged (15-10) + (30-25) = 10

    const CycleProfiler::Snapshot snap = prof.snapshot(0, 42);
    const int read_slot = CycleProfiler::slot(ProfComp::Ustm,
                                              ProfPhase::BarrierRead);
    const int stall_slot =
        CycleProfiler::slot(ProfComp::Ustm, ProfPhase::Stall);
    EXPECT_EQ(snap.cycles[read_slot], 10u);
    EXPECT_EQ(snap.cycles[stall_slot], 10u);
    // app residual: [0,10) before the first push and [30,42) after
    // the last pop.
    EXPECT_EQ(snap.app, 22u);

    const std::uint64_t total =
        std::accumulate(snap.cycles.begin(), snap.cycles.end(),
                        snap.app);
    EXPECT_EQ(total, 42u);
}

TEST(CycleProfiler, SnapshotIsConstAndRepeatable)
{
    CycleProfiler prof;
    prof.push(1, 5, ProfComp::Btm, ProfPhase::Commit);
    prof.pop(1, 9);
    const auto a = prof.snapshot(1, 20);
    const auto b = prof.snapshot(1, 20);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.app, 16u);
}

TEST(CycleProfiler, SlotNamesCoverEveryComponentAndPhase)
{
    for (int s = 0; s < CycleProfiler::kNumSlots; ++s) {
        const std::string name = profSlotName(s);
        // "<component>.<phase>", both non-empty.
        const auto dot = name.find('.');
        ASSERT_NE(dot, std::string::npos) << name;
        EXPECT_GT(dot, 0u) << name;
        EXPECT_LT(dot + 1, name.size()) << name;
    }
}

// ------------------------------------------------- HotLineTable unit

TEST(HotLineTable, FindsTheHeavyHitter)
{
    HotLineTable table;
    // Skewed stream: line 7 appears 100 times among 64 distractors.
    for (int i = 0; i < 100; ++i) {
        table.observe(LineAddr(7));
        table.observe(LineAddr(1000 + (i % 64)));
    }
    ASSERT_FALSE(table.top().empty());
    EXPECT_EQ(table.top()[0].line, LineAddr(7));
    EXPECT_EQ(table.observed(), 200u);
}

TEST(HotLineTable, StoredCountsLowerBoundObservedTotal)
{
    HotLineTable table;
    std::uint64_t fed = 0;
    for (int i = 0; i < 500; ++i) {
        table.observe(LineAddr(i % 37));
        ++fed;
    }
    EXPECT_EQ(table.observed(), fed);
    std::uint64_t stored = 0;
    for (const auto &e : table.top())
        stored += e.count;
    // Misra–Gries decrements can only under-count.
    EXPECT_LE(stored, fed);
    // Capped at K entries, sorted count-descending.
    EXPECT_LE(table.top().size(), std::size_t(HotLineTable::kDefaultK));
    for (std::size_t i = 1; i < table.top().size(); ++i)
        EXPECT_GE(table.top()[i - 1].count, table.top()[i].count);
}

// -------------------------------- end-to-end phase-sum invariant

// Run the failover microbenchmark (it exercises the hybrid paths:
// hardware commits, forced failovers, software commits, conflicts)
// under every TM system and every scheduler policy, and check the
// tentpole invariant on the real machine: for every thread,
// sum(phase_cycles) + app == that thread's final clock, and the
// aggregate prof.cycles.* counters sum to the sum of thread clocks.
class ProfInvariant
    : public ::testing::TestWithParam<
          std::tuple<TxSystemKind, SchedPolicy>>
{
};

TEST_P(ProfInvariant, PhaseCyclesSumToThreadClock)
{
    const auto [kind, policy] = GetParam();

    FailoverParams p;
    p.txPerThread = 48;
    p.failoverRate = 0.3;
    FailoverUbench w(p);

    MachineConfig mc;
    mc.numCores = 4;
    mc.sched.policy = policy;
    Machine m(mc);
    TxHeap heap(m);
    auto sys = TxSystem::create(kind, m);
    sys->setup();

    w.setup(m.initContext(), heap, mc.numCores);
    for (int t = 0; t < mc.numCores; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            w.threadBody(tc, *sys, t, mc.numCores);
        });
    }
    m.run();
    ASSERT_TRUE(w.validate(m.initContext()));

    std::uint64_t clock_sum = 0;
    for (int t = 0; t < m.numThreads(); ++t) {
        const Cycles now = m.thread(static_cast<ThreadId>(t)).now();
        const auto snap =
            m.profiler().snapshot(static_cast<ThreadId>(t), now);
        const std::uint64_t total =
            std::accumulate(snap.cycles.begin(), snap.cycles.end(),
                            snap.app);
        EXPECT_EQ(total, now) << "thread " << t;
        clock_sum += now;
    }

    // finalize() exported the aggregates as prof.cycles.* counters.
    EXPECT_EQ(m.stats().sumWithPrefix("prof.cycles."), clock_sum);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystemsAllSchedulers, ProfInvariant,
    ::testing::Combine(
        ::testing::Values(TxSystemKind::NoTm,
                          TxSystemKind::UnboundedHtm,
                          TxSystemKind::UfoHybrid, TxSystemKind::HyTm,
                          TxSystemKind::PhTm, TxSystemKind::Ustm,
                          TxSystemKind::UstmStrong, TxSystemKind::Tl2),
        ::testing::Values(SchedPolicy::MinClock, SchedPolicy::MaxClock,
                          SchedPolicy::RandomWalk, SchedPolicy::Pct,
                          SchedPolicy::RoundRobin)),
    [](const auto &info) {
        std::string name =
            std::string(txSystemKindName(std::get<0>(info.param))) +
            "_" + schedPolicyName(std::get<1>(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ------------------------------------------------------- determinism

// Two identical runs produce byte-identical stats documents —
// including the profile and contention sections.  This is what makes
// committed baselines and the benchdiff gate exact.
TEST(Profiler, DoubleRunIsByteIdentical)
{
    auto run = [] {
        FailoverParams p;
        p.txPerThread = 64;
        p.failoverRate = 0.25;
        FailoverUbench w(p);
        RunConfig cfg;
        cfg.kind = TxSystemKind::UfoHybrid;
        cfg.threads = 4;
        cfg.machine.seed = 42;
        cfg.statsJsonPath =
            ::testing::TempDir() + "/utm_prof_det.json";
        RunResult r = runWorkload(w, cfg);
        EXPECT_TRUE(r.valid);
        std::string doc;
        if (std::FILE *f = std::fopen(cfg.statsJsonPath.c_str(), "r")) {
            char buf[4096];
            std::size_t n;
            while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
                doc.append(buf, n);
            std::fclose(f);
        }
        return doc;
    };
    const std::string a = run();
    const std::string b = run();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"profile\":{"), std::string::npos);
    EXPECT_NE(a.find("\"contention\":{"), std::string::npos);
}

#else // !UTM_PROFILING

// Profiling compiled out: the schema keeps its v2 shape, but the
// profile and per-thread phase_cycles objects are empty, and no
// prof.cycles.* counters exist.
TEST(Profiler, CompiledOutLeavesEmptySections)
{
    FailoverParams p;
    p.txPerThread = 24;
    p.failoverRate = 0.25;
    FailoverUbench w(p);
    RunConfig cfg;
    cfg.kind = TxSystemKind::UfoHybrid;
    cfg.threads = 2;
    cfg.statsJsonPath = ::testing::TempDir() + "/utm_prof_off.json";
    RunResult r = runWorkload(w, cfg);
    ASSERT_TRUE(r.valid);

    std::string doc;
    if (std::FILE *f = std::fopen(cfg.statsJsonPath.c_str(), "r")) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            doc.append(buf, n);
        std::fclose(f);
    }
    EXPECT_NE(doc.find("\"profile\":{}"), std::string::npos);
    EXPECT_NE(doc.find("\"phase_cycles\":{}"), std::string::npos);
    for (const auto &[name, value] : r.stats)
        EXPECT_NE(name.rfind("prof.cycles.", 0), 0u) << name;
    // Contention attribution is always compiled (it is cheap and the
    // schema stays stable): the section is still populated.
    EXPECT_NE(doc.find("\"contention\":{"), std::string::npos);
    EXPECT_NE(doc.find("\"hot_lines\""), std::string::npos);
}

#endif // UTM_PROFILING

} // namespace
} // namespace utm
