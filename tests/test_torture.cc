/**
 * @file
 * Torture / property tests:
 *
 *  - bit-level determinism: identical seeds produce identical
 *    simulated timing and statistics;
 *  - a randomized mixed-structure stress in which threads mutate
 *    disjoint logical key stripes that nevertheless collide
 *    physically (shared map buckets, shared otable rows, shared cache
 *    sets); per-thread shadow models must match the final simulated
 *    state exactly under every TM system;
 *  - a read-modify-write sweep across transaction footprints that
 *    straddle the BTM capacity boundary, so the same run mixes
 *    hardware commits, failovers, and contention.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "rt/tx_map.hh"
#include "sim/machine.hh"
#include "sim/scheduler.hh"
#include "stamp/genome.hh"
#include "stamp/workload.hh"

namespace utm {
namespace {

MachineConfig
quiet(int cores, std::uint64_t seed = 42)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    mc.seed = seed;
    return mc;
}

// ------------------------------------------------------- Determinism

TEST(Determinism, SameSeedSameCyclesAndStats)
{
    auto run = [](std::uint64_t seed) {
        GenomeParams p;
        p.segments = 256;
        p.uniquePool = 128;
        GenomeWorkload w(p);
        RunConfig cfg;
        cfg.kind = TxSystemKind::UfoHybrid;
        cfg.threads = 4;
        cfg.machine.seed = seed;
        return runWorkload(w, cfg);
    };
    RunResult a = run(7);
    RunResult b = run(7);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_TRUE(a.valid && b.valid);
}

TEST(Determinism, DifferentSeedDifferentSchedule)
{
    auto run = [](std::uint64_t seed) {
        GenomeParams p;
        p.segments = 256;
        p.uniquePool = 128;
        p.seed = seed; // Different streams AND machine seed below.
        GenomeWorkload w(p);
        RunConfig cfg;
        cfg.kind = TxSystemKind::UfoHybrid;
        cfg.threads = 4;
        cfg.machine.seed = seed;
        return runWorkload(w, cfg);
    };
    EXPECT_NE(run(1).cycles, run(2).cycles);
}

TEST(Determinism, StatsJsonByteIdenticalEveryKind)
{
    // Same seed => byte-identical --stats-json output, twice, for
    // every TxSystemKind.  Guards the whole export path (counters,
    // histograms, run_config) against hidden nondeterminism.
    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    for (TxSystemKind kind :
         {TxSystemKind::NoTm, TxSystemKind::UnboundedHtm,
          TxSystemKind::UfoHybrid, TxSystemKind::HyTm,
          TxSystemKind::PhTm, TxSystemKind::Ustm,
          TxSystemKind::UstmStrong, TxSystemKind::Tl2}) {
        auto run = [&](const std::string &path) {
            GenomeParams p;
            p.segments = 128;
            p.uniquePool = 64;
            GenomeWorkload w(p);
            RunConfig cfg;
            cfg.kind = kind;
            cfg.threads = kind == TxSystemKind::NoTm ? 1 : 4;
            cfg.machine.seed = 13;
            cfg.statsJsonPath = path;
            return runWorkload(w, cfg);
        };
        const std::string pa = "det_stats_a.json";
        const std::string pb = "det_stats_b.json";
        RunResult a = run(pa);
        RunResult b = run(pb);
        EXPECT_TRUE(a.valid && b.valid) << txSystemKindName(kind);
        const std::string ja = slurp(pa);
        const std::string jb = slurp(pb);
        ASSERT_FALSE(ja.empty()) << txSystemKindName(kind);
        EXPECT_EQ(ja, jb) << txSystemKindName(kind);
        std::remove(pa.c_str());
        std::remove(pb.c_str());
    }
}

// ------------------------------------- Scheduler-policy workload sweep

class PolicySweep : public ::testing::TestWithParam<SchedPolicy>
{
};

TEST_P(PolicySweep, GenomeValidAndDeterministic)
{
    // The Genome workload must stay serializable under every
    // scheduler policy, and each policy must itself be a
    // deterministic function of the seed.
    auto run = [&](std::uint64_t seed) {
        GenomeParams p;
        p.segments = 192;
        p.uniquePool = 96;
        GenomeWorkload w(p);
        RunConfig cfg;
        cfg.kind = TxSystemKind::UfoHybrid;
        cfg.threads = 4;
        cfg.machine.seed = seed;
        cfg.machine.sched.policy = GetParam();
        cfg.machine.sched.pctExpectedSteps = 1u << 13;
        return runWorkload(w, cfg);
    };
    RunResult a = run(5);
    RunResult b = run(5);
    EXPECT_TRUE(a.valid);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats, b.stats);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    ::testing::Values(SchedPolicy::MinClock, SchedPolicy::MaxClock,
                      SchedPolicy::RandomWalk, SchedPolicy::Pct,
                      SchedPolicy::RoundRobin),
    [](const ::testing::TestParamInfo<SchedPolicy> &info) {
        return std::string(schedPolicyName(info.param));
    });

// ------------------------------------------- Shadow-model map stress

struct TortureParam
{
    TxSystemKind kind;
    int threads;
    std::uint64_t seed;
};

class MapTorture : public ::testing::TestWithParam<TortureParam>
{
};

TEST_P(MapTorture, ShadowModelMatches)
{
    const TortureParam p = GetParam();
    Machine m(quiet(p.threads, p.seed));
    TxHeap heap(m);
    auto sys = TxSystem::create(p.kind, m);
    sys->setup();
    // Few buckets: every thread's keys share chains with every other
    // thread's -- maximal physical contention, zero logical overlap.
    TxMap map = TxMap::create(m.initContext(), heap, 8);

    constexpr int kOpsPerThread = 120;
    std::vector<std::map<std::uint64_t, std::uint64_t>> shadow(
        p.threads);

    for (int t = 0; t < p.threads; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            auto &mine = shadow[t];
            for (int i = 0; i < kOpsPerThread; ++i) {
                // Key stripe: key % threads == t.
                const std::uint64_t key =
                    1 + t +
                    tc.rng().nextBounded(40) *
                        std::uint64_t(p.threads);
                const int op = static_cast<int>(
                    tc.rng().nextBounded(3));
                const std::uint64_t val = tc.rng().next() | 1;
                bool applied = false;
                sys->atomic(tc, [&](TxHandle &h) {
                    switch (op) {
                      case 0:
                        applied = map.insert(h, key, val);
                        break;
                      case 1:
                        applied = map.update(h, key, val);
                        break;
                      default:
                        applied = map.remove(h, key);
                        break;
                    }
                });
                // The op must succeed exactly when the shadow says it
                // should (no other thread touches this stripe).
                const bool expect_applied =
                    op == 0 ? !mine.count(key) : mine.count(key) != 0;
                EXPECT_EQ(applied, expect_applied)
                    << "op " << op << " key " << key;
                // Mirror into the shadow (post-commit).
                if (applied) {
                    if (op == 2)
                        mine.erase(key);
                    else
                        mine[key] = val;
                }
                tc.advance(25);
            }
        });
    }
    m.run();

    // Merge shadows and compare against the simulated map.
    std::map<std::uint64_t, std::uint64_t> expect;
    for (auto &s : shadow)
        expect.insert(s.begin(), s.end());

    auto no_tm = TxSystem::create(TxSystemKind::NoTm, m);
    no_tm->atomic(m.initContext(), [&](TxHandle &h) {
        EXPECT_EQ(map.size(h), expect.size());
        for (const auto &[k, v] : expect) {
            std::uint64_t got = 0;
            ASSERT_TRUE(map.lookup(h, k, &got)) << "missing key " << k;
            EXPECT_EQ(got, v) << "wrong value for key " << k;
        }
    });
}

INSTANTIATE_TEST_SUITE_P(
    Systems, MapTorture,
    ::testing::Values(TortureParam{TxSystemKind::UfoHybrid, 4, 1},
                      TortureParam{TxSystemKind::UfoHybrid, 8, 2},
                      TortureParam{TxSystemKind::HyTm, 4, 3},
                      TortureParam{TxSystemKind::PhTm, 4, 4},
                      TortureParam{TxSystemKind::UstmStrong, 4, 5},
                      TortureParam{TxSystemKind::Tl2, 4, 6},
                      TortureParam{TxSystemKind::UnboundedHtm, 8, 7}),
    [](const ::testing::TestParamInfo<TortureParam> &info) {
        std::string n = txSystemKindName(info.param.kind);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n + "_t" + std::to_string(info.param.threads) + "_s" +
               std::to_string(info.param.seed);
    });

// ------------------------------ Footprint sweep across the HW bound

class FootprintSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FootprintSweep, MixedFootprintsStayExact)
{
    // Transactions alternate between tiny and huge footprints; the
    // huge ones exceed one L1 set's associativity and must fail over
    // (on the hybrid) without breaking the counters.
    const int lines = GetParam();
    MachineConfig mc = quiet(4);
    Machine m(mc);
    TxHeap heap(m);
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();

    // All lines in ONE set: footprint > ways forces overflow.
    const Addr stride = std::uint64_t(mc.l1Sets) * kLineSize;
    const Addr base = 0x20000000;
    for (int i = 0; i < lines; ++i)
        m.memory().materializePage(base + i * stride);

    constexpr int kRounds = 40;
    for (int t = 0; t < 4; ++t) {
        m.addThread([&](ThreadContext &tc) {
            for (int r = 0; r < kRounds; ++r) {
                const int span = (r % 2 == 0) ? 1 : lines;
                sys->atomic(tc, [&](TxHandle &h) {
                    for (int i = 0; i < span; ++i) {
                        const Addr a = base + Addr(i) * stride;
                        h.write(a, h.read(a, 8) + 1, 8);
                    }
                });
                tc.advance(30);
            }
        });
    }
    m.run();

    // Line 0 is touched by every transaction; line i>0 only by the
    // big ones.
    EXPECT_EQ(m.memory().read(base, 8), 4u * kRounds);
    for (int i = 1; i < lines; ++i)
        EXPECT_EQ(m.memory().read(base + Addr(i) * stride, 8),
                  4u * kRounds / 2);
    if (lines > int(mc.l1Ways)) {
        EXPECT_GT(m.stats().get("tm.failovers"), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Footprints, FootprintSweep,
                         ::testing::Values(1, 4, 8, 9, 12, 16));

} // namespace
} // namespace utm
