/**
 * @file
 * Tests for transactional waiting (paper Section 6's `retry`).
 */

#include <gtest/gtest.h>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

MachineConfig
quiet(int cores)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

class RetryWait : public ::testing::TestWithParam<TxSystemKind>
{
};

TEST_P(RetryWait, ConsumerWakesOnProduce)
{
    Machine m(quiet(2));
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    const Addr flag = heap.allocZeroed(m.initContext(), 8, true);
    const Addr data = heap.allocZeroed(m.initContext(), 8, true);

    std::uint64_t consumed = 0;
    m.addThread([&](ThreadContext &tc) {
        // Consumer: waits transactionally until the flag is set.
        sys->atomic(tc, [&](TxHandle &h) {
            if (h.read<std::uint64_t>(flag) == 0)
                h.retryWait(); // Parks; re-runs on wakeup.
            consumed = h.read<std::uint64_t>(data);
            h.write<std::uint64_t>(flag, 0);
        });
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(2000); // Let the consumer park first.
        sys->atomic(tc, [&](TxHandle &h) {
            h.write<std::uint64_t>(data, 1234);
            h.write<std::uint64_t>(flag, 1);
        });
    });
    m.run();

    EXPECT_EQ(consumed, 1234u);
    EXPECT_EQ(m.memory().read(flag, 8), 0u);
    EXPECT_GT(m.stats().get("ustm.retries"), 0u);
    EXPECT_GT(m.stats().get("ustm.retry_wakeups"), 0u);
}

TEST_P(RetryWait, BoundedBufferHandoff)
{
    // Producer fills a 1-slot buffer N times; consumer drains it N
    // times; both block with retryWait when the buffer is in the
    // wrong state.  No lost wakeups, no lost items.
    Machine m(quiet(2));
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    const Addr full = heap.allocZeroed(m.initContext(), 8, true);
    const Addr slot = heap.allocZeroed(m.initContext(), 8, true);
    constexpr int kItems = 12;

    std::vector<std::uint64_t> received;
    m.addThread([&](ThreadContext &tc) { // Producer.
        for (int i = 1; i <= kItems; ++i) {
            sys->atomic(tc, [&](TxHandle &h) {
                if (h.read<std::uint64_t>(full) != 0)
                    h.retryWait();
                h.write<std::uint64_t>(slot, std::uint64_t(i));
                h.write<std::uint64_t>(full, 1);
            });
            tc.advance(50);
        }
    });
    m.addThread([&](ThreadContext &tc) { // Consumer.
        for (int i = 0; i < kItems; ++i) {
            std::uint64_t item = 0;
            sys->atomic(tc, [&](TxHandle &h) {
                if (h.read<std::uint64_t>(full) == 0)
                    h.retryWait();
                item = h.read<std::uint64_t>(slot);
                h.write<std::uint64_t>(full, 0);
            });
            received.push_back(item);
            tc.advance(120);
        }
    });
    m.run();

    ASSERT_EQ(received.size(), std::size_t(kItems));
    for (int i = 0; i < kItems; ++i)
        EXPECT_EQ(received[i], std::uint64_t(i + 1));
}

// Hardware-failover behaviour exists only on hybrid systems, so this
// case gets its own suite instantiated with UfoHybrid alone.
// Pure-software systems (ustm, ustm-ufo) are deliberately filtered out
// at instantiation rather than GTEST_SKIPped at runtime: they have no
// hardware path to fail over from (tm.failovers.forced is structurally
// 0), and the wait itself is covered for them by
// RetryWait.ConsumerWakesOnProduce and RetryWait.BoundedBufferHandoff
// (see DESIGN.md, "Transactional retry").  Keeping them out of the
// parameter list keeps clean ctest runs at 0 skipped tests.
class RetryWaitHardware : public ::testing::TestWithParam<TxSystemKind>
{
};

TEST_P(RetryWaitHardware, HardwarePathFailsOverToWait)
{
    // On the hybrid, the first attempt runs in hardware; retryWait
    // must translate to an explicit abort + software failover rather
    // than wedging the hardware transaction.
    Machine m(quiet(2));
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    const Addr flag = heap.allocZeroed(m.initContext(), 8, true);

    bool woke = false;
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            if (h.read<std::uint64_t>(flag) == 0)
                h.retryWait();
            woke = true;
        });
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(3000);
        sys->atomic(tc, [&](TxHandle &h) {
            h.write<std::uint64_t>(flag, 1);
        });
    });
    m.run();
    EXPECT_TRUE(woke);
    EXPECT_GT(m.stats().get("tm.failovers.forced"), 0u);
}

std::string
kindTestName(const ::testing::TestParamInfo<TxSystemKind> &info)
{
    std::string n = txSystemKindName(info.param);
    for (auto &c : n)
        if (c == '-')
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(Systems, RetryWait,
                         ::testing::Values(TxSystemKind::UfoHybrid,
                                           TxSystemKind::Ustm,
                                           TxSystemKind::UstmStrong),
                         kindTestName);

INSTANTIATE_TEST_SUITE_P(Systems, RetryWaitHardware,
                         ::testing::Values(TxSystemKind::UfoHybrid),
                         kindTestName);

} // namespace
} // namespace utm
