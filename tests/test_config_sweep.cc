/**
 * @file
 * Property sweeps over machine configurations and seeds:
 *
 *  - timing-model sanity across cache geometries (hits cheaper than
 *    transfers cheaper than memory; BTM capacity tracks the geometry);
 *  - workload validation holds across a batch of seeds on the UFO
 *    hybrid (schedule fuzzing);
 *  - the whole TM stack works on unusual-but-legal configurations
 *    (direct-mapped L1, tiny otable, single core).
 */

#include <gtest/gtest.h>

#include "btm/btm.hh"
#include "core/tx_system.hh"
#include "mem/memory_system.hh"
#include "sim/machine.hh"
#include "stamp/genome.hh"
#include "stamp/vacation.hh"
#include "stamp/workload.hh"

namespace utm {
namespace {

// --------------------------------------------------- Geometry sweeps

struct Geometry
{
    unsigned sets;
    unsigned ways;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheGeometry, TimingOrderHolds)
{
    const Geometry g = GetParam();
    MachineConfig mc;
    mc.numCores = 2;
    mc.timerQuantum = 0;
    mc.l1Sets = g.sets;
    mc.l1Ways = g.ways;
    Machine m(mc);
    ThreadContext &tc = m.initContext();

    Cycles t0 = tc.now();
    tc.load(0x9000, 8); // Cold miss.
    const Cycles miss = tc.now() - t0;
    t0 = tc.now();
    tc.load(0x9000, 8); // Hit.
    const Cycles hit = tc.now() - t0;
    EXPECT_EQ(hit, mc.l1HitLatency);
    EXPECT_GE(miss, mc.memLatency);
    EXPECT_GT(miss, hit * 10);
}

TEST_P(CacheGeometry, BtmCapacityMatchesGeometry)
{
    const Geometry g = GetParam();
    MachineConfig mc;
    mc.numCores = 1;
    mc.timerQuantum = 0;
    mc.l1Sets = g.sets;
    mc.l1Ways = g.ways;
    Machine m(mc);
    ThreadContext &tc = m.initContext();
    const Addr stride = std::uint64_t(g.sets) * kLineSize;
    for (unsigned i = 0; i <= g.ways; ++i)
        m.memory().materializePage(0x400000 + i * stride);

    BtmUnit btm(tc);
    // Exactly `ways` same-set lines fit...
    btm.txBegin();
    for (unsigned i = 0; i < g.ways; ++i)
        tc.store(0x400000 + i * stride, i, 8);
    btm.txEnd();
    // ...and ways+1 overflows.
    bool overflowed = false;
    try {
        btm.txBegin();
        for (unsigned i = 0; i <= g.ways; ++i)
            tc.store(0x400000 + i * stride, i, 8);
        btm.txEnd();
    } catch (const BtmAbortException &e) {
        overflowed = e.reason == AbortReason::SetOverflow;
    }
    EXPECT_TRUE(overflowed);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{64, 8}, Geometry{32, 4},
                      Geometry{128, 2}, Geometry{16, 1},
                      Geometry{256, 16}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "s" + std::to_string(info.param.sets) + "w" +
               std::to_string(info.param.ways);
    });

// ------------------------------------------------------- Seed sweeps

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, GenomeValidatesUnderScheduleFuzzing)
{
    GenomeParams p;
    p.segments = 192;
    p.uniquePool = 96;
    p.seed = GetParam() * 31 + 1;
    GenomeWorkload w(p);
    RunConfig cfg;
    cfg.kind = TxSystemKind::UfoHybrid;
    cfg.threads = 6;
    cfg.machine.seed = GetParam();
    RunResult r = runWorkload(w, cfg);
    EXPECT_TRUE(r.valid) << "seed " << GetParam();
}

TEST_P(SeedSweep, VacationValidatesUnderScheduleFuzzing)
{
    VacationParams p = VacationParams::contention(true);
    p.totalTasks = 48;
    p.seed = GetParam() * 17 + 3;
    VacationWorkload w(p);
    RunConfig cfg;
    cfg.kind = TxSystemKind::UfoHybrid;
    cfg.threads = 6;
    cfg.machine.seed = GetParam();
    RunResult r = runWorkload(w, cfg);
    EXPECT_TRUE(r.valid) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// --------------------------------------------- Odd-but-legal configs

TEST(OddConfigs, TinyOtableStillCorrect)
{
    VacationParams p = VacationParams::contention(false);
    p.totalTasks = 32;
    VacationWorkload w(p);
    RunConfig cfg;
    cfg.kind = TxSystemKind::UfoHybrid;
    cfg.threads = 4;
    cfg.machine.seed = 42;
    cfg.machine.otableBuckets = 16; // Massive aliasing.
    RunResult r = runWorkload(w, cfg);
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.stat("ustm.chain_inserts"), 0u);
}

TEST(OddConfigs, DirectMappedL1StillCorrect)
{
    // vacation's chain-walking transactions collide constantly in a
    // direct-mapped L1 and must fail over.
    VacationParams p = VacationParams::contention(false);
    p.totalTasks = 24;
    VacationWorkload w(p);
    RunConfig cfg;
    cfg.kind = TxSystemKind::UfoHybrid;
    cfg.threads = 4;
    cfg.machine.seed = 42;
    cfg.machine.l1Sets = 128;
    cfg.machine.l1Ways = 1; // Direct-mapped: constant overflow.
    RunResult r = runWorkload(w, cfg);
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.failovers, 0u);
}

TEST(OddConfigs, SingleCoreRunsEverySystem)
{
    for (TxSystemKind k :
         {TxSystemKind::UfoHybrid, TxSystemKind::HyTm,
          TxSystemKind::PhTm, TxSystemKind::Tl2}) {
        GenomeParams p;
        p.segments = 64;
        p.uniquePool = 32;
        GenomeWorkload w(p);
        RunConfig cfg;
        cfg.kind = k;
        cfg.threads = 1;
        cfg.machine.seed = 42;
        RunResult r = runWorkload(w, cfg);
        EXPECT_TRUE(r.valid) << txSystemKindName(k);
    }
}

} // namespace
} // namespace utm
