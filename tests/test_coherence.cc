/**
 * @file
 * Adversarial coherence and contention-management tests: deadlock
 * shapes, RMW atomicity inside transactions, speculative-state
 * consistency, and unbounded-mode conflict tracking across evictions.
 */

#include <gtest/gtest.h>

#include "btm/btm.hh"
#include "core/tx_system.hh"
#include "mem/memory_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

MachineConfig
quiet(int cores)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

TEST(CoherenceCm, OpposingLockOrderCannotDeadlock)
{
    // The classic AB/BA deadlock shape: T0 writes X then Y, T1 writes
    // Y then X, both holding their first line while requesting the
    // second.  Age-ordered CM (wound younger / NACK younger) must
    // resolve it without deadlock; both eventually commit.
    Machine m(quiet(2));
    m.memory().materializePage(0x1000);
    const Addr X = 0x1000, Y = 0x1040;
    int commits = 0;
    for (int t = 0; t < 2; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            const Addr first = t == 0 ? X : Y;
            const Addr second = t == 0 ? Y : X;
            BtmUnit btm(tc);
            for (;;) {
                try {
                    btm.txBegin();
                    tc.store(first, tc.load(first, 8) + 1, 8);
                    tc.advance(300); // Overlap the other thread.
                    tc.store(second, tc.load(second, 8) + 1, 8);
                    btm.txEnd();
                    ++commits;
                    return;
                } catch (const BtmAbortException &) {
                    tc.advance(50 + tc.rng().nextBounded(100));
                    tc.yield();
                }
            }
        });
    }
    m.run();
    EXPECT_EQ(commits, 2);
    EXPECT_EQ(m.memory().read(X, 8), 2u);
    EXPECT_EQ(m.memory().read(Y, 8), 2u);
}

TEST(CoherenceCm, CasInsideTransactionIsAtomicAndRolledBack)
{
    Machine m(quiet(1));
    m.memory().materializePage(0x2000);
    m.memory().write(0x2000, 5, 8);
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        try {
            btm.txBegin();
            EXPECT_TRUE(tc.cas(0x2000, 8, 5, 9));
            EXPECT_EQ(tc.load(0x2000, 8), 9u);
            EXPECT_EQ(tc.fetchAdd(0x2000, 8, 3), 9u);
            btm.txAbort();
        } catch (const BtmAbortException &) {
        }
        EXPECT_EQ(tc.load(0x2000, 8), 5u); // Both RMWs rolled back.
    });
    m.run();
}

TEST(CoherenceCm, ConcurrentCasOnSharedCounterIsExact)
{
    Machine m(quiet(4));
    m.memory().materializePage(0x3000);
    for (int t = 0; t < 4; ++t) {
        m.addThread([&](ThreadContext &tc) {
            for (int i = 0; i < 100; ++i) {
                for (;;) {
                    std::uint64_t old = tc.load(0x3000, 8);
                    if (tc.cas(0x3000, 8, old, old + 1))
                        break;
                    tc.advance(10);
                }
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(0x3000, 8), 400u);
}

TEST(CoherenceCm, ReadersShareWithoutConflict)
{
    Machine m(quiet(4));
    m.memory().materializePage(0x4000);
    m.memory().write(0x4000, 77, 8);
    int commits = 0;
    for (int t = 0; t < 4; ++t) {
        m.addThread([&](ThreadContext &tc) {
            BtmUnit btm(tc);
            btm.txBegin();
            EXPECT_EQ(tc.load(0x4000, 8), 77u);
            tc.advance(400); // All four hold the read concurrently.
            EXPECT_EQ(tc.load(0x4000, 8), 77u);
            btm.txEnd();
            ++commits;
        });
    }
    m.run();
    EXPECT_EQ(commits, 4);
    EXPECT_EQ(m.stats().get("btm.wounds"), 0u);
}

TEST(CoherenceCm, SpecTableCleanAfterEveryOutcome)
{
    Machine m(quiet(2));
    m.memory().materializePage(0x5000);
    MemorySystem &ms = m.memsys();
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        // Commit path.
        btm.txBegin();
        tc.store(0x5000, 1, 8);
        tc.load(0x5040, 8);
        btm.txEnd();
        EXPECT_FALSE(ms.lineHasSpecWriter(0x5000));
        EXPECT_EQ(ms.specReaders(0x5040), 0u);
        // Abort path.
        try {
            btm.txBegin();
            tc.store(0x5080, 2, 8);
            btm.txAbort();
        } catch (const BtmAbortException &) {
        }
        EXPECT_FALSE(ms.lineHasSpecWriter(0x5080));
    });
    m.addThread([&](ThreadContext &) {});
    m.run();
}

TEST(CoherenceCm, UnboundedConflictSurvivesEviction)
{
    // In unbounded mode a speculative line may be evicted from the
    // L1; the spec table must still catch a later remote conflict.
    MachineConfig mc = quiet(2);
    Machine m(mc);
    const Addr stride = std::uint64_t(mc.l1Sets) * kLineSize;
    const Addr target = 0x6000000;
    for (unsigned i = 0; i <= 2 * mc.l1Ways; ++i)
        m.memory().materializePage(target + i * stride);
    AbortReason reason = AbortReason::None;
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc, /*is_unbounded=*/true);
        try {
            btm.txBegin();
            // Write the target, then flood its set so it is evicted.
            tc.store(target, 1, 8);
            for (unsigned i = 1; i <= 2 * mc.l1Ways; ++i)
                tc.store(target + i * stride, i, 8);
            tc.advance(500);
            tc.load(target, 8); // Observe the wound.
            btm.txEnd();
        } catch (const BtmAbortException &e) {
            reason = e.reason;
        }
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(3000); // After the flood.
        tc.store(target, 99, 8); // NonT access: must wound the tx.
    });
    m.run();
    EXPECT_EQ(reason, AbortReason::NonTConflict);
    EXPECT_EQ(m.memory().read(target, 8), 99u);
    // The transaction's other speculative writes were rolled back.
    EXPECT_EQ(m.memory().read(target + stride, 8), 0u);
}

TEST(CoherenceCm, MachinesAreIsolated)
{
    Machine a(quiet(1)), b(quiet(1));
    a.initContext().store(0x100, 1, 8);
    EXPECT_EQ(b.memory().read(0x100, 8), 0u);
    EXPECT_EQ(a.memory().read(0x100, 8), 1u);
}

TEST(CoherenceCmDeath, CrossLineAccessAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine m(quiet(1));
    ThreadContext &tc = m.initContext();
    EXPECT_DEATH(tc.load(kLineSize - 4, 8), "assertion");
}

TEST(CoherenceCm, SixteenThreadHybridStress)
{
    // Upper-end thread count across mixed footprints.
    Machine m(quiet(16));
    TxHeap heap(m);
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    const Addr counters =
        heap.allocZeroed(m.initContext(), 16 * kLineSize, true);
    for (int t = 0; t < 16; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            for (int i = 0; i < 50; ++i) {
                // Each tx bumps its own counter and a neighbour's.
                const Addr mine = counters + Addr(t) * kLineSize;
                const Addr other =
                    counters + Addr((t + 1) % 16) * kLineSize;
                sys->atomic(tc, [&](TxHandle &h) {
                    h.write(mine, h.read(mine, 8) + 1, 8);
                    h.write(other, h.read(other, 8) + 1, 8);
                });
                tc.advance(30);
            }
        });
    }
    m.run();
    std::uint64_t total = 0;
    for (int t = 0; t < 16; ++t)
        total += m.memory().read(counters + Addr(t) * kLineSize, 8);
    EXPECT_EQ(total, 16u * 50 * 2);
}

} // namespace
} // namespace utm
