/**
 * @file
 * Unit tests for the memory system: SimMemory, Cache, Directory,
 * coherence timing, UFO protection checks, and RMW atomicity.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/memory_system.hh"
#include "mem/sim_memory.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

// ------------------------------------------------------------ SimMemory

TEST(SimMemory, ZeroInitialized)
{
    SimMemory mem;
    EXPECT_EQ(mem.read(0x123456, 8), 0u);
    EXPECT_EQ(mem.pageCount(), 0u); // Reads don't materialize.
}

TEST(SimMemory, WriteMaterializesPage)
{
    SimMemory mem;
    mem.write(0x10000, 0xff, 1);
    EXPECT_TRUE(mem.pageExists(0x10000));
    EXPECT_FALSE(mem.pageExists(0x30000));
    EXPECT_EQ(mem.pageCount(), 1u);
}

TEST(SimMemory, SizesAndOffsets)
{
    SimMemory mem;
    mem.write(0x100, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.read(0x100, 1), 0x88u);
    EXPECT_EQ(mem.read(0x101, 1), 0x77u);
    EXPECT_EQ(mem.read(0x102, 2), 0x5566u);
    EXPECT_EQ(mem.read(0x104, 4), 0x11223344u);
    mem.write(0x102, 0xaaaa, 2);
    EXPECT_EQ(mem.read(0x100, 8), 0x11223344aaaa7788ull);
}

TEST(SimMemory, UfoBitsPerLine)
{
    SimMemory mem;
    const LineAddr line = 0x40;
    EXPECT_EQ(mem.ufoBits(line), kUfoNone);
    mem.setUfoBits(line, kUfoWriteOnly);
    EXPECT_EQ(mem.ufoBits(line), kUfoWriteOnly);
    EXPECT_EQ(mem.ufoBits(0x80), kUfoNone); // Neighbour unaffected.
    mem.addUfoBits(line, UfoBits{true, false});
    EXPECT_EQ(mem.ufoBits(line), kUfoBoth);
    mem.setUfoBits(line, kUfoNone);
    EXPECT_EQ(mem.ufoBits(line), kUfoNone);
}

TEST(SimMemory, PageHasUfoBitsTracksCount)
{
    SimMemory mem;
    EXPECT_FALSE(mem.pageHasUfoBits(0x0));
    mem.setUfoBits(0x40, kUfoBoth);
    mem.setUfoBits(0x80, kUfoWriteOnly);
    EXPECT_TRUE(mem.pageHasUfoBits(0x0));
    mem.setUfoBits(0x40, kUfoNone);
    EXPECT_TRUE(mem.pageHasUfoBits(0x0));
    mem.setUfoBits(0x80, kUfoNone);
    EXPECT_FALSE(mem.pageHasUfoBits(0x0));
}

TEST(SimMemory, UfoFaultPredicate)
{
    EXPECT_TRUE(kUfoBoth.faults(AccessType::Read));
    EXPECT_TRUE(kUfoBoth.faults(AccessType::Write));
    EXPECT_FALSE(kUfoWriteOnly.faults(AccessType::Read));
    EXPECT_TRUE(kUfoWriteOnly.faults(AccessType::Write));
    EXPECT_FALSE(kUfoNone.any());
}

// ---------------------------------------------------------------- Cache

TEST(Cache, FindAfterInsert)
{
    Cache c(4, 2);
    EXPECT_EQ(c.find(0x100), nullptr);
    auto r = c.insert(0x100, false);
    ASSERT_NE(r.line, nullptr);
    EXPECT_FALSE(r.evicted);
    EXPECT_EQ(c.find(0x100), r.line);
}

TEST(Cache, LruEviction)
{
    Cache c(1, 2); // One set, two ways.
    c.insert(0x000, false);
    c.insert(0x040, false);
    c.touch(c.find(0x000)); // 0x040 becomes LRU.
    auto r = c.insert(0x080, false);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedAddr, 0x040u);
    EXPECT_NE(c.find(0x000), nullptr);
    EXPECT_EQ(c.find(0x040), nullptr);
}

TEST(Cache, SpecLinesArePinned)
{
    Cache c(1, 2);
    c.insert(0x000, false).line->spec = true;
    c.insert(0x040, false).line->spec = true;
    auto r = c.insert(0x080, false);
    EXPECT_TRUE(r.overflowed);
    EXPECT_EQ(r.line, nullptr);
    // Unbounded mode may evict a speculative line.
    auto r2 = c.insert(0x080, true);
    EXPECT_FALSE(r2.overflowed);
    EXPECT_TRUE(r2.evictedSpec);
}

TEST(Cache, ClearAllSpec)
{
    Cache c(4, 2);
    c.insert(0x000, false).line->spec = true;
    c.insert(0x040, false).line->spec = true;
    EXPECT_EQ(c.specLineCount(), 2u);
    c.clearAllSpec();
    EXPECT_EQ(c.specLineCount(), 0u);
    EXPECT_NE(c.find(0x000), nullptr); // Lines stay valid.
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(4, 2);
    c.insert(0x100, false);
    c.invalidate(0x100);
    EXPECT_EQ(c.find(0x100), nullptr);
    c.invalidate(0x200); // Absent: no-op.
}

TEST(Cache, SetIndexingSeparatesSets)
{
    Cache c(2, 1); // Two sets, direct-mapped.
    c.insert(0x000, false); // set 0
    auto r = c.insert(0x040, false); // set 1
    EXPECT_FALSE(r.evicted);
    EXPECT_NE(c.find(0x000), nullptr);
    EXPECT_NE(c.find(0x040), nullptr);
}

// ------------------------------------------------------------ Directory

TEST(Directory, SharersAndOwner)
{
    Directory d;
    EXPECT_EQ(d.find(0x40), nullptr);
    d.addSharer(0x40, 1);
    d.addSharer(0x40, 3);
    EXPECT_EQ(d.othersMask(0x40, 1), 1ull << 3);
    d.setOwner(0x40, 2);
    EXPECT_EQ(d.find(0x40)->owner, 2);
    d.clearOwner(0x40);
    EXPECT_EQ(d.find(0x40)->owner, -1);
    d.removeSharer(0x40, 1);
    d.removeSharer(0x40, 2);
    d.removeSharer(0x40, 3);
    EXPECT_EQ(d.find(0x40), nullptr); // Entry reclaimed when empty.
}

// ------------------------------------------- MemorySystem: coherence

class MemTimingTest : public ::testing::Test
{
  protected:
    MemTimingTest()
    {
        cfg_.numCores = 2;
        cfg_.timerQuantum = 0;
        machine_ = std::make_unique<Machine>(cfg_);
    }

    MachineConfig cfg_;
    std::unique_ptr<Machine> machine_;
};

TEST_F(MemTimingTest, DirtyRemoteTransfer)
{
    // Thread 0 writes a line, thread 1 then reads it: the read should
    // pay a cache-to-cache transfer, not a full memory miss.
    Cycles t1_read_cost = 0;
    machine_->addThread([&](ThreadContext &tc) {
        tc.store(0x9000, 1, 8);
        tc.advance(5);
        tc.yield();
        tc.advance(1000); // Stay out of the way.
    });
    machine_->addThread([&](ThreadContext &tc) {
        tc.advance(100); // Let thread 0 write first.
        Cycles t0 = tc.now();
        tc.load(0x9000, 8);
        t1_read_cost = tc.now() - t0;
    });
    machine_->run();
    EXPECT_EQ(t1_read_cost, cfg_.l1HitLatency + cfg_.transferLatency);
    EXPECT_GE(machine_->stats().get("mem.cache_transfers"), 1u);
}

TEST_F(MemTimingTest, WriteInvalidatesRemoteCopies)
{
    // Both threads cache the line; a write by thread 0 invalidates
    // thread 1's copy, whose next read misses again.
    Cycles reread = 0;
    machine_->addThread([&](ThreadContext &tc) {
        tc.load(0xa000, 8);
        tc.advance(200);
        tc.store(0xa000, 7, 8); // Invalidate the other copy.
        tc.advance(2000);
    });
    machine_->addThread([&](ThreadContext &tc) {
        tc.load(0xa000, 8);
        tc.advance(1000); // After thread 0's store.
        Cycles t0 = tc.now();
        tc.load(0xa000, 8);
        reread = tc.now() - t0;
    });
    machine_->run();
    EXPECT_GT(reread, cfg_.l1HitLatency); // Not a plain L1 hit.
}

TEST_F(MemTimingTest, L2HitCheaperThanMemory)
{
    machine_ = std::make_unique<Machine>(cfg_);
    ThreadContext &tc = machine_->initContext();
    tc.load(0xb000, 8); // Miss to memory; fills L2 + L1.
    // Evict from tiny L1? Instead use a second core's context: the
    // line is now in the shared L2, so another core's first access
    // should be an L2 hit.
    machine_->addThread([&](ThreadContext &t1) {
        Cycles t0 = t1.now();
        t1.load(0xb000, 8);
        EXPECT_EQ(t1.now() - t0, cfg_.l1HitLatency + cfg_.l2HitLatency);
    });
    machine_->run();
}

TEST_F(MemTimingTest, UfoFaultInvokesHandler)
{
    int faults = 0;
    machine_->memsys().setUfoFaultHandler(
        [&](ThreadContext &tc, Addr a, AccessType t) {
            ++faults;
            EXPECT_EQ(lineOf(a), 0xc000u);
            EXPECT_EQ(t, AccessType::Write);
            // Resolve the fault so the access can retry.
            tc.machine().memory().setUfoBits(lineOf(a), kUfoNone);
        });
    machine_->addThread([&](ThreadContext &tc) {
        tc.machine().memory().setUfoBits(0xc000, kUfoWriteOnly);
        EXPECT_EQ(tc.load(0xc000, 8), 0u); // Reads don't fault.
        tc.store(0xc000, 5, 8);            // Faults once, then retries.
        EXPECT_EQ(tc.load(0xc000, 8), 5u);
    });
    machine_->run();
    EXPECT_EQ(faults, 1);
}

TEST_F(MemTimingTest, UfoDisabledSkipsCheck)
{
    machine_->memsys().setUfoFaultHandler(
        [&](ThreadContext &, Addr, AccessType) {
            FAIL() << "handler must not run with UFO disabled";
        });
    machine_->addThread([&](ThreadContext &tc) {
        tc.machine().memory().setUfoBits(0xd000, kUfoBoth);
        tc.disableUfo();
        tc.store(0xd000, 9, 8);
        EXPECT_EQ(tc.load(0xd000, 8), 9u);
        tc.enableUfo();
    });
    machine_->run();
}

TEST_F(MemTimingTest, UfoIsaOps)
{
    machine_->addThread([&](ThreadContext &tc) {
        tc.setUfoBits(0xe010, kUfoWriteOnly); // Any addr in the line.
        EXPECT_EQ(tc.readUfoBits(0xe020), kUfoWriteOnly);
        tc.addUfoBits(0xe000, UfoBits{true, false});
        EXPECT_EQ(tc.readUfoBits(0xe000), kUfoBoth);
        tc.setUfoBits(0xe000, kUfoNone);
        EXPECT_EQ(tc.readUfoBits(0xe000), kUfoNone);
    });
    machine_->run();
}

} // namespace
} // namespace utm
