/**
 * @file
 * Tests for the timeline telemetry bus (src/sim/telemetry.{hh,cc})
 * via the torture harness:
 *
 *  - double-run byte-identity of the `ufotm-timeline` document for
 *    every TxSystemKind x scheduler policy (the same determinism
 *    gate every other stats surface has);
 *  - zero-cost-off: with telemetry disabled the run emits no
 *    conflict.* / watchdog.* counters and no timeline, and enabling
 *    it perturbs neither timing nor any shared counter;
 *  - conflict forensics: the conflict.edges counters obey the
 *    documented identities (edges = btm + ustm; each side bounded by
 *    its backend's abort/wound counters);
 *  - stall watchdog: fires on both pinned livelock schedules with
 *    the historical pathologies re-injected (ReleaseStarvation via
 *    UstmPolicy::testOnlyStarveReleaseEntry, PctDemotionPhaseLock
 *    via SchedulerConfig::testOnlyFixedPctBound), and stays silent
 *    on the same schedules healthy — at identical thresholds;
 *  - histogram JSON buckets carry their inclusive lower bound.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/tx_system.hh"
#include "sim/scheduler.hh"
#include "sim/stats.hh"
#include "sim/stats_json.hh"
#include "torture/torture.hh"

namespace utm {
namespace {

using torture::TortureConfig;
using torture::TortureResult;

/** Small-but-contended config that keeps each run under a second. */
TortureConfig
smallConfig(TxSystemKind kind, SchedPolicy policy, std::uint64_t seed)
{
    TortureConfig cfg;
    cfg.kind = kind;
    cfg.threads = 4;
    cfg.opsPerThread = 20;
    cfg.cells = 24;
    cfg.seed = seed;
    cfg.sched.policy = policy;
    cfg.sched.pctExpectedSteps = 1u << 11;
    return cfg;
}

constexpr TxSystemKind kAllKinds[] = {
    TxSystemKind::NoTm,       TxSystemKind::UnboundedHtm,
    TxSystemKind::UfoHybrid,  TxSystemKind::HyTm,
    TxSystemKind::PhTm,       TxSystemKind::Ustm,
    TxSystemKind::UstmStrong, TxSystemKind::Tl2,
};

constexpr SchedPolicy kAllPolicies[] = {
    SchedPolicy::MinClock, SchedPolicy::MaxClock,
    SchedPolicy::RandomWalk, SchedPolicy::Pct, SchedPolicy::RoundRobin,
};

/** The exact TmTorture.ReleaseStarvation reproducer config. */
TortureConfig
releaseStarvationConfig()
{
    TortureConfig cfg;
    cfg.kind = TxSystemKind::Ustm;
    cfg.threads = 4;
    cfg.opsPerThread = 60;
    cfg.cells = 48;
    cfg.otableBuckets = 4;
    cfg.seed = 4;
    cfg.sched.policy = SchedPolicy::MinClock;
    return cfg;
}

/** The exact TmTorture.PctDemotionPhaseLock reproducer config. */
TortureConfig
pctDemotionConfig()
{
    TortureConfig cfg;
    cfg.kind = TxSystemKind::UstmStrong;
    cfg.workload = torture::TortureWorkload::Kv;
    cfg.kvBatch = true;
    cfg.threads = 4;
    cfg.opsPerThread = 50;
    cfg.seed = 12;
    cfg.sched.policy = SchedPolicy::Pct;
    cfg.sched.pctExpectedSteps = 4096;
    return cfg;
}

/** Tight watchdog so stall tests fire (or prove silence) quickly. */
void
armWatchdog(TortureConfig &cfg)
{
    cfg.watchdog = true;
    cfg.timeline = true;
    cfg.timelineWindow = 20000;
    cfg.watchdogWindows = 4;
}

// ------------------------------------------ Timeline determinism

TEST(Telemetry, TimelineDoubleRunByteIdentityEveryBackendEveryPolicy)
{
    // The timeline document is part of the determinism contract:
    // the same TortureConfig must produce a byte-identical document
    // twice, for every backend under every scheduler policy.
    for (TxSystemKind kind : kAllKinds) {
        for (SchedPolicy policy : kAllPolicies) {
            TortureConfig cfg = smallConfig(kind, policy, 7);
            cfg.timeline = true;
            cfg.timelineWindow = 4096; // Several windows per run.
            TortureResult a = torture::runTorture(cfg);
            TortureResult b = torture::runTorture(cfg);
            ASSERT_TRUE(a.ok())
                << txSystemKindName(kind) << "/"
                << schedPolicyName(policy) << ": " << a.why;
            EXPECT_FALSE(a.timeline.empty())
                << txSystemKindName(kind) << "/"
                << schedPolicyName(policy);
            EXPECT_NE(a.timeline.find("\"schema\":\"ufotm-timeline\""),
                      std::string::npos)
                << txSystemKindName(kind) << "/"
                << schedPolicyName(policy);
            EXPECT_EQ(a.timeline, b.timeline)
                << txSystemKindName(kind) << "/"
                << schedPolicyName(policy);
        }
    }
}

// ------------------------------------------------- Zero-cost off

TEST(Telemetry, DisabledEmitsNothingAndEnablingPerturbsNothing)
{
    TortureConfig cfg = smallConfig(TxSystemKind::UfoHybrid,
                                    SchedPolicy::RandomWalk, 11);
    TortureResult off = torture::runTorture(cfg);
    ASSERT_TRUE(off.ok()) << off.why;
    EXPECT_TRUE(off.timeline.empty());
    for (const auto &[name, value] : off.stats) {
        EXPECT_EQ(name.rfind("conflict.", 0), std::string::npos)
            << name << "=" << value << " emitted with telemetry off";
        EXPECT_EQ(name.rfind("watchdog.", 0), std::string::npos)
            << name << "=" << value << " emitted with telemetry off";
    }

    cfg.timeline = true;
    TortureResult on = torture::runTorture(cfg);
    ASSERT_TRUE(on.ok()) << on.why;
    EXPECT_FALSE(on.timeline.empty());
    // Telemetry is an observer: identical timing, and identical
    // counters apart from its own conflict.*/watchdog.* additions.
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.steps, on.steps);
    EXPECT_EQ(off.commits, on.commits);
    std::map<std::string, std::uint64_t> shared = on.stats;
    for (auto it = shared.begin(); it != shared.end();) {
        if (it->first.rfind("conflict.", 0) == 0 ||
            it->first.rfind("watchdog.", 0) == 0)
            it = shared.erase(it);
        else
            ++it;
    }
    EXPECT_EQ(off.stats, shared);
}

// -------------------------------------------- Conflict forensics

TEST(Telemetry, ConflictEdgeCountersObeyAbortBounds)
{
    // A contended USTM run: every recorded aborter->victim edge is a
    // kill, so conflict.edges.ustm is bounded by ustm.aborts and the
    // family sums exactly.
    TortureConfig cfg = releaseStarvationConfig();
    cfg.timeline = true;
    TortureResult res = torture::runTorture(cfg);
    ASSERT_TRUE(res.ok()) << res.why;

    const auto get = [&](const char *name) {
        auto it = res.stats.find(name);
        return it == res.stats.end() ? std::uint64_t(0) : it->second;
    };
    ASSERT_TRUE(res.stats.count("conflict.edges"));
    EXPECT_EQ(get("conflict.edges"),
              get("conflict.edges.btm") + get("conflict.edges.ustm"));
    EXPECT_GT(get("conflict.edges.ustm"), 0u);
    EXPECT_LE(get("conflict.edges.ustm"), get("ustm.aborts"));
    std::uint64_t aborts_hw = 0;
    for (const auto &[name, value] : res.stats)
        if (name.rfind("btm.aborts.", 0) == 0)
            aborts_hw += value;
    EXPECT_LE(get("conflict.edges.btm"), aborts_hw);
    EXPECT_EQ(get("watchdog.episodes"),
              get("watchdog.episodes.thread") +
                  get("watchdog.episodes.global"));
}

// ---------------------------------------------- Stall watchdog

TEST(Telemetry, WatchdogFlagsReleaseStarvationLivelock)
{
    // The pinned ReleaseStarvation schedule with the livelock's
    // steady state re-injected (releaseEntry never wins its row
    // lock): the watchdog must cut the run short and name itself.
    TortureConfig cfg = releaseStarvationConfig();
    cfg.policy.ustm.testOnlyStarveReleaseEntry = true;
    armWatchdog(cfg);
    TortureResult res = torture::runTorture(cfg);
    EXPECT_TRUE(res.violated);
    EXPECT_EQ(res.oracle, "stall-watchdog") << res.why;
    // The timeline of the cut-short run is still captured, and
    // carries the verdict.
    EXPECT_NE(res.timeline.find("\"stalled\":true"),
              std::string::npos);
}

TEST(Telemetry, WatchdogFlagsPctDemotionPhaseLockLivelock)
{
    // Same for the pinned PctDemotionPhaseLock schedule with PCT's
    // historical fixed starvation bound re-injected — the silent
    // livelock (no aborts, threads parked inside atomic) that only
    // the global criterion catches.
    TortureConfig cfg = pctDemotionConfig();
    cfg.sched.testOnlyFixedPctBound = true;
    armWatchdog(cfg);
    TortureResult res = torture::runTorture(cfg);
    EXPECT_TRUE(res.violated);
    EXPECT_EQ(res.oracle, "stall-watchdog") << res.why;
    EXPECT_NE(res.timeline.find("\"stalled\":true"),
              std::string::npos);
}

TEST(Telemetry, WatchdogSilentOnHealthyPinnedSchedules)
{
    // The control: the same two schedules, same tight thresholds, no
    // injection — the watchdog must stay quiet and the runs finish.
    for (TortureConfig cfg : {releaseStarvationConfig(),
                              pctDemotionConfig()}) {
        armWatchdog(cfg);
        TortureResult res = torture::runTorture(cfg);
        EXPECT_TRUE(res.ok())
            << res.oracle << ": " << res.why;
        auto it = res.stats.find("watchdog.episodes");
        ASSERT_NE(it, res.stats.end());
        EXPECT_EQ(it->second, 0u);
        EXPECT_NE(res.timeline.find("\"stalled\":false"),
                  std::string::npos);
    }
}

// ------------------------------------- Histogram lower bounds

TEST(Telemetry, HistogramJsonBucketsCarryLowerBound)
{
    StatsRegistry reg;
    reg.observe("h", 0);
    reg.observe("h", 5);
    const std::string json = stats::dumpJson(reg);
    // Value 0 lands in bucket 0 ([0, 0]); value 5 in [4, 7].
    EXPECT_NE(json.find("{\"lo\":0,\"le\":0,\"count\":1}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("{\"lo\":4,\"le\":7,\"count\":1}"),
              std::string::npos)
        << json;
    EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
    EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketLowerBound(3), 4u);
    EXPECT_EQ(Histogram::bucketUpperBound(3), 7u);
}

} // namespace
} // namespace utm
