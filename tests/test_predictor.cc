/**
 * @file
 * Tests for the adaptive path predictor (src/hybrid/path_predictor):
 *
 *  - disabled by default: no pred.* counters, no behaviour change;
 *  - a deterministically-overflowing site is learned after one hard
 *    failover and predicted straight to software;
 *  - periodic decay walks a poisoned site back to hardware, and
 *    hardware commits confirm it (pred.hits);
 *  - transactions without a site (kTxSiteNone) are never predicted;
 *  - contention feedback weighs lighter than hard-failover feedback;
 *  - the pred.* counter invariants hold
 *    (predictions = hw + sw, hits + mispredicts <= predictions);
 *  - predictor-on service runs export byte-identical stats-JSON
 *    across identical double runs (the determinism contract).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/tx_system.hh"
#include "hybrid/path_predictor.hh"
#include "sim/machine.hh"
#include "svc/service.hh"

namespace utm {
namespace {

using svc::SvcParams;

MachineConfig
quiet(int cores = 1)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

std::string
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return {};
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/**
 * Run @p count transactions at @p site on @p sys, each writing
 * @p lines same-set lines (stride = one full L1 sweep), so footprints
 * beyond the associativity deterministically SetOverflow.
 */
void
runSiteTxs(Machine &m, TxSystem &sys, TxSiteId site, int count,
           unsigned lines)
{
    const MachineConfig &mc = m.config();
    const Addr stride = std::uint64_t(mc.l1Sets) * kLineSize;
    for (unsigned i = 0; i < lines; ++i)
        m.memory().materializePage(0x300000 + i * stride);
    m.addThread([&m, &sys, site, count, lines, stride](ThreadContext &tc) {
        for (int n = 0; n < count; ++n) {
            sys.atomic(tc, site, [&](TxHandle &h) {
                for (unsigned i = 0; i < lines; ++i)
                    h.write(0x300000 + i * stride, i + 1, 8);
            });
        }
    });
    m.run();
}

TEST(Predictor, OffByDefaultEmitsNoCounters)
{
    Machine m(quiet(1));
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    // Overflowing site: plenty of failovers to (not) learn from.
    runSiteTxs(m, *sys, /*site=*/7, /*count=*/4,
               m.config().l1Ways + 2);
    EXPECT_GT(m.stats().get("tm.failovers.hard.set_overflow"), 0u);
    for (const auto &[name, value] : m.stats().counters()) {
        EXPECT_NE(name.rfind("pred.", 0), 0u)
            << "predictor-off run emitted " << name << "=" << value;
    }
    EXPECT_EQ(m.stats().get("tm.failovers.predicted"), 0u);
}

TEST(Predictor, LearnsDeterministicallyOverflowingSite)
{
    Machine m(quiet(1));
    TmPolicy policy;
    policy.predictor.enable = true; // startBias 4, hardWeight 4.
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m, policy);
    sys->setup();
    runSiteTxs(m, *sys, /*site=*/7, /*count=*/3,
               m.config().l1Ways + 2);

    // Tx 1: predicted hardware, overflows, hard failover
    // (score 0 -> 4 = startBias).  Tx 2, 3: predicted software.
    EXPECT_EQ(m.stats().get("pred.predictions"), 3u);
    EXPECT_EQ(m.stats().get("pred.predictions.hw"), 1u);
    EXPECT_EQ(m.stats().get("pred.predictions.sw"), 2u);
    EXPECT_EQ(m.stats().get("pred.mispredicts"), 1u);
    EXPECT_EQ(m.stats().get("pred.hits"), 0u);
    EXPECT_EQ(m.stats().get("pred.sites"), 1u);
    EXPECT_EQ(m.stats().get("tm.failovers.predicted"), 2u);
    EXPECT_EQ(m.stats().get("tm.failovers.hard.set_overflow"), 1u);
    EXPECT_EQ(m.stats().get("tm.commits.sw"), 3u);
}

TEST(Predictor, DecayWalksSiteBackToHardware)
{
    Machine m(quiet(1));
    TmPolicy policy;
    policy.predictor.enable = true;
    policy.predictor.decayInterval = 4;
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m, policy);
    sys->setup();
    // One overflow poisons the site to the start bias; after that the
    // transactions shrink to a single line, so once decay drops the
    // score below the bias the site commits in hardware again (and
    // each hardware commit walks the score further down).
    const MachineConfig &mc = m.config();
    const Addr stride = std::uint64_t(mc.l1Sets) * kLineSize;
    for (unsigned i = 0; i < mc.l1Ways + 2; ++i)
        m.memory().materializePage(0x300000 + i * stride);
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, TxSiteId(7), [&](TxHandle &h) {
            for (unsigned i = 0; i < mc.l1Ways + 2; ++i)
                h.write(0x300000 + i * stride, i + 1, 8);
        });
        for (int n = 0; n < 12; ++n) {
            sys->atomic(tc, TxSiteId(7), [&](TxHandle &h) {
                h.write(0x300000, std::uint64_t(n), 8);
            });
        }
    });
    m.run();
    EXPECT_GT(m.stats().get("pred.decays"), 0u);
    EXPECT_GT(m.stats().get("pred.hits"), 0u);
    EXPECT_GT(m.stats().get("tm.commits.hw"), 0u);
}

TEST(Predictor, SiteNoneIsNeverPredicted)
{
    Machine m(quiet(1));
    TmPolicy policy;
    policy.predictor.enable = true;
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m, policy);
    sys->setup();
    // No site: the site-less atomic() overload forwards kTxSiteNone.
    m.memory().materializePage(0x400000);
    m.addThread([&](ThreadContext &tc) {
        for (int n = 0; n < 8; ++n)
            sys->atomic(tc, [&](TxHandle &h) {
                h.write(0x400000, std::uint64_t(n), 8);
            });
    });
    m.run();
    EXPECT_EQ(m.stats().get("pred.predictions"), 0u);
    EXPECT_EQ(m.stats().get("pred.sites"), 0u);
}

TEST(Predictor, ContentionWeighsLighterThanHardFailover)
{
    Machine m(quiet(1));
    PredictorPolicy policy;
    policy.enable = true;
    PathPredictor pred(m, policy);
    m.addThread([&](ThreadContext &tc) {
        using P = PathPredictor::Prediction;
        // One hard failover reaches the bias...
        EXPECT_EQ(pred.predict(tc, 1), P::Hardware);
        pred.onFailover(tc, 1, P::Hardware, /*hard=*/true);
        EXPECT_EQ(pred.predict(tc, 1), P::Software);
        // ...while contention failovers need hardWeight of them.
        for (int i = 0; i < policy.hardWeight; ++i) {
            EXPECT_EQ(pred.predict(tc, 2), P::Hardware);
            pred.onFailover(tc, 2, P::Hardware, /*hard=*/false);
        }
        EXPECT_EQ(pred.predict(tc, 2), P::Software);
        // Scores are per thread and saturate at maxScore.
        EXPECT_EQ(pred.score(tc.id(), 1), policy.hardWeight);
        for (int i = 0; i < 40; ++i)
            pred.onFailover(tc, 1, P::None, /*hard=*/true);
        EXPECT_EQ(pred.score(tc.id(), 1), policy.maxScore);
    });
    m.run();
}

TEST(Predictor, CounterInvariantsHoldOnEveryHybrid)
{
    for (TxSystemKind kind :
         {TxSystemKind::UfoHybrid, TxSystemKind::HyTm,
          TxSystemKind::PhTm}) {
        SvcParams p;
        p.load.keyspace = 32;
        p.load.requestsPerClient = 24;
        p.load.seed = 3;
        p.mapBuckets = 8;
        RunConfig cfg;
        cfg.kind = kind;
        cfg.threads = 3;
        cfg.machine.seed = 11;
        cfg.machine.timerQuantum = 0;
        cfg.policy.predictor.enable = true;
        const RunResult res = svc::runService(p, cfg);
        ASSERT_TRUE(res.valid) << txSystemKindName(kind);
        const std::uint64_t total = res.stat("pred.predictions");
        EXPECT_GT(total, 0u) << txSystemKindName(kind);
        EXPECT_EQ(res.stat("pred.predictions.hw") +
                      res.stat("pred.predictions.sw"),
                  total)
            << txSystemKindName(kind);
        EXPECT_LE(res.stat("pred.hits") + res.stat("pred.mispredicts"),
                  total)
            << txSystemKindName(kind);
        EXPECT_EQ(res.stat("tm.failovers.predicted"),
                  res.stat("pred.predictions.sw"))
            << txSystemKindName(kind);
    }
}

TEST(Predictor, ServiceDoubleRunStatsJsonByteIdentical)
{
    for (bool by_key_range : {false, true}) {
        SvcParams p;
        p.load.keyspace = 32;
        p.load.requestsPerClient = 10;
        p.load.seed = 3;
        p.mapBuckets = 8;
        p.siteByKeyRange = by_key_range;
        std::string text[2];
        for (int run = 0; run < 2; ++run) {
            RunConfig cfg;
            cfg.kind = TxSystemKind::UfoHybrid;
            cfg.threads = 3;
            cfg.machine.seed = 11;
            cfg.machine.timerQuantum = 0;
            cfg.policy.predictor.enable = true;
            cfg.statsJsonPath = ::testing::TempDir() +
                                "/utm_pred_det_" + std::to_string(run) +
                                ".json";
            const RunResult res = svc::runService(p, cfg);
            ASSERT_TRUE(res.valid);
            text[run] = readWholeFile(cfg.statsJsonPath);
        }
        ASSERT_FALSE(text[0].empty());
        EXPECT_EQ(text[0], text[1])
            << "predictor-on stats-JSON diverged (siteByKeyRange="
            << by_key_range << ")";
    }
}

} // namespace
} // namespace utm
