/**
 * @file
 * Tests for the observability layer: the JSON writer, the stats-JSON
 * serializer (counters + histograms + full machine schema), the
 * transaction event tracer (ring wraparound, chrome trace), and the
 * abort/failover attribution counters each backend emits
 * (docs/OBSERVABILITY.md is the inventory these tests pin down).
 */

#include <gtest/gtest.h>

#include "core/tx_system.hh"
#include "sim/json.hh"
#include "sim/machine.hh"
#include "sim/stats_json.hh"
#include "sim/trace.hh"
#include "stamp/failover_ubench.hh"
#include "stamp/workload.hh"

namespace utm {
namespace {

[[maybe_unused]] MachineConfig
quiet(int cores = 2)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

// -------------------------------------------------------- JSON writer

TEST(JsonWriter, NestedContainersAndCommas)
{
    json::Writer w;
    w.beginObject();
    w.kv("a", 1);
    w.key("b").beginArray().value("x").value(2).endArray();
    w.key("c").beginObject().kv("d", true).endObject();
    w.endObject();
    EXPECT_EQ(w.str(), R"({"a":1,"b":["x",2],"c":{"d":true}})");
}

TEST(JsonWriter, EscapesStrings)
{
    json::Writer w;
    w.beginObject();
    w.kv("k", std::string("a\"b\\c\n\t\x01"));
    w.endObject();
    EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
}

TEST(JsonWriter, NumbersAndRaw)
{
    json::Writer w;
    w.beginArray();
    w.value(std::uint64_t(1) << 63);
    w.value(-5);
    w.value(0.5);
    w.raw("{\"pre\":1}");
    w.endArray();
    EXPECT_EQ(w.str(), "[9223372036854775808,-5,0.5,{\"pre\":1}]");
}

// --------------------------------------------------- stats-JSON dump

TEST(StatsJson, CountersRoundTrip)
{
    StatsRegistry reg;
    reg.inc("b.two", 2);
    reg.inc("a.one");
    const std::string doc = stats::dumpJson(reg);
    // Sorted by name, exact layout.
    EXPECT_EQ(doc, "{\"counters\":{\"a.one\":1,\"b.two\":2},"
                   "\"histograms\":{}}");
}

TEST(StatsJson, HistogramQuantilesAndBuckets)
{
    StatsRegistry reg;
    // Bucket layout: 0 -> bucket 0; 1 -> bucket 1; 3 -> bucket 2;
    // 100 -> bucket 7 (le 127).
    reg.observe("h", 1);
    reg.observe("h", 3);
    reg.observe("h", 100);
    const Histogram &h = reg.histogram("h");
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.sum(), 104u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    // Quantiles are rank-based (target rank floor(q*(n-1))+1), so
    // with 3 samples every q < 1 lands on the 1st or 2nd sample; the
    // bucket holding 100 is only reached at q = 1.
    EXPECT_EQ(h.quantile(0.50), 3u);   // upper bound of bucket 2
    EXPECT_EQ(h.quantile(0.99), 3u);   // rank 2 of 3 -> still bucket 2
    EXPECT_EQ(h.quantile(1.0), 127u);  // upper bound of bucket 7

    const std::string doc = stats::dumpJson(reg);
    EXPECT_NE(doc.find("\"samples\":3"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"sum\":104"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"p50\":3"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"p99\":3"), std::string::npos) << doc;
    // Only non-empty buckets are emitted, each carrying its
    // inclusive [lo, le] range.
    EXPECT_NE(doc.find("{\"lo\":1,\"le\":1,\"count\":1}"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("{\"lo\":2,\"le\":3,\"count\":1}"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("{\"lo\":64,\"le\":127,\"count\":1}"),
              std::string::npos)
        << doc;
    EXPECT_EQ(doc.find("\"le\":0,"), std::string::npos) << doc;
}

// --------------------------------------------------------- TxTracer

TEST(Tracer, RingWrapsKeepingNewestAndCountsDrops)
{
    TxTracer tracer;
    tracer.setCapacity(8);
    for (int i = 0; i < 20; ++i) {
        tracer.record(0, Cycles(i), TraceEvent::TxBegin,
                      TracePath::Hardware, AbortReason::None);
    }
    EXPECT_EQ(tracer.size(0), 8u);
    EXPECT_EQ(tracer.dropped(0), 12u);
    EXPECT_EQ(tracer.count(0, TraceEvent::TxBegin), 20u);
    EXPECT_EQ(tracer.total(TraceEvent::TxBegin), 20u);

    // Snapshot is oldest-first: cycles 12..19.
    auto snap = tracer.snapshot(0);
    ASSERT_EQ(snap.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(snap[i].cycle, Cycles(12 + i));
}

TEST(Tracer, ZeroCapacityDisablesRingButKeepsCounts)
{
    TxTracer tracer;
    tracer.setCapacity(0);
    tracer.record(1, 5, TraceEvent::TxCommit, TracePath::Software,
                  AbortReason::None);
    EXPECT_EQ(tracer.size(1), 0u);
    EXPECT_EQ(tracer.count(1, TraceEvent::TxCommit), 1u);
}

TEST(Tracer, ChromeTraceBalancesSlicesAcrossWrap)
{
    TxTracer tracer;
    tracer.setCapacity(4);
    // begin/commit pairs; the wrap leaves a dangling commit first in
    // the ring, which the exporter must skip to keep B/E balanced.
    for (int i = 0; i < 3; ++i) {
        tracer.record(0, Cycles(10 * i), TraceEvent::TxBegin,
                      TracePath::Hardware, AbortReason::None);
        tracer.record(0, Cycles(10 * i + 5), TraceEvent::TxCommit,
                      TracePath::Hardware, AbortReason::None);
    }
    const std::string doc = tracer.dumpChromeTrace();
    std::size_t begins = 0, ends = 0, pos = 0;
    while ((pos = doc.find("\"ph\":\"B\"", pos)) != std::string::npos)
        ++begins, ++pos;
    pos = 0;
    while ((pos = doc.find("\"ph\":\"E\"", pos)) != std::string::npos)
        ++ends, ++pos;
    EXPECT_EQ(begins, ends) << doc;
    EXPECT_GT(begins, 0u) << doc;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
}

// ----------------------------------- per-backend abort attribution

#if UTM_TRACING

TEST(Attribution, ForcedFailoverOnUfoHybrid)
{
    Machine m(quiet(1));
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    m.memory().materializePage(0x300);
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.requireSoftware();
            h.write(0x300, 7, 8);
        });
    });
    m.run();
    // Exactly one hardware abort, attributed as explicit; one forced
    // failover; the trace saw hw begin+abort, failover, sw
    // begin+commit.
    EXPECT_EQ(m.stats().get("btm.aborts.explicit"), 1u);
    EXPECT_EQ(m.stats().sumWithPrefix("btm.aborts."), 1u);
    EXPECT_EQ(m.stats().get("tm.failovers.forced"), 1u);
    EXPECT_EQ(m.stats().get("tm.failovers"), 1u);
    EXPECT_EQ(m.tracer().total(TraceEvent::TxBegin), 2u);
    EXPECT_EQ(m.tracer().total(TraceEvent::TxAbort), 1u);
    EXPECT_EQ(m.tracer().total(TraceEvent::TxCommit), 1u);
    EXPECT_EQ(m.tracer().total(TraceEvent::Failover), 1u);
}

TEST(Attribution, SyscallIsAHardFailoverWithReasonDetail)
{
    Machine m(quiet(1));
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    m.memory().materializePage(0x300);
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.syscall();
            h.write(0x300, 9, 8);
        });
    });
    m.run();
    EXPECT_EQ(m.stats().get("btm.aborts.syscall"), 1u);
    EXPECT_EQ(m.stats().get("tm.failovers.hard"), 1u);
    EXPECT_EQ(m.stats().get("tm.failovers.hard.syscall"), 1u);
    // The detail counters partition the aggregate.
    EXPECT_EQ(m.stats().sumWithPrefix("tm.failovers.hard."),
              m.stats().get("tm.failovers.hard"));
}

TEST(Attribution, UstmAbortsPartitionIntoKilledAndRetryWakeup)
{
    // Thread 0 begins first (older age); thread 1's transaction then
    // takes write ownership of X and keeps issuing timed reads so it
    // is observably Active when thread 0's delayed write conflicts.
    // The older transaction kills the younger owner, whose next poll
    // point unwinds with reason "killed".
    Machine m(quiet(2));
    auto sys = TxSystem::create(TxSystemKind::Ustm, m);
    sys->setup();
    m.memory().materializePage(0x500);
    m.memory().materializePage(0x600);
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.ctx().advance(600);
            h.write(0x500, 1, 8);
        });
    });
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.write(0x500, 2, 8);
            for (int i = 0; i < 10; ++i) {
                h.ctx().advance(200);
                (void)h.read<std::uint64_t>(0x600);
            }
        });
    });
    m.run();
    EXPECT_GT(m.stats().get("ustm.kills"), 0u);
    EXPECT_GT(m.stats().get("ustm.aborts.killed"), 0u);
    EXPECT_EQ(m.stats().get("ustm.aborts"),
              m.stats().get("ustm.aborts.killed") +
                  m.stats().get("ustm.aborts.retry_wakeup"));
    EXPECT_EQ(m.stats().get("ustm.aborts"),
              m.stats().sumWithPrefix("ustm.aborts."));
}

TEST(Attribution, RetryWakeupIsAttributed)
{
    Machine m(quiet(2));
    auto sys = TxSystem::create(TxSystemKind::Ustm, m);
    sys->setup();
    m.memory().materializePage(0x600);
    bool woke = false;
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            if (h.read<std::uint64_t>(0x600) == 0)
                h.retryWait();
            woke = true;
        });
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(3000);
        sys->atomic(tc,
                    [&](TxHandle &h) { h.write(0x600, 1, 8); });
    });
    m.run();
    EXPECT_TRUE(woke);
    EXPECT_GT(m.stats().get("ustm.aborts.retry_wakeup"), 0u);
    EXPECT_EQ(m.stats().get("ustm.aborts"),
              m.stats().sumWithPrefix("ustm.aborts."));
    EXPECT_GT(m.tracer().total(TraceEvent::TxRetry), 0u);
}

TEST(Attribution, Tl2AbortsSumAcrossReasons)
{
    // Two overlapping read-modify-writes of the same word: whichever
    // commits second fails validation and retries.
    Machine m(quiet(2));
    auto sys = TxSystem::create(TxSystemKind::Tl2, m);
    sys->setup();
    m.memory().materializePage(0x700);
    for (int t = 0; t < 2; ++t) {
        m.addThread([&](ThreadContext &tc) {
            sys->atomic(tc, [&](TxHandle &h) {
                const std::uint64_t v =
                    h.read<std::uint64_t>(0x700);
                h.ctx().advance(2000);
                h.write(0x700, v + 1, 8);
            });
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(0x700, 8), 2u);
    EXPECT_GT(m.stats().get("tl2.aborts"), 0u);
    EXPECT_EQ(m.stats().get("tl2.aborts"),
              m.stats().sumWithPrefix("tl2.aborts."));
}

#endif // UTM_TRACING

// ------------------------------------------- full-schema file export

TEST(StatsJson, RunWorkloadWritesSchemaValidDocument)
{
    FailoverParams p;
    p.txPerThread = 24;
    p.failoverRate = 0.25;
    FailoverUbench w(p);
    RunConfig cfg;
    cfg.kind = TxSystemKind::UfoHybrid;
    cfg.threads = 2;
    cfg.machine.seed = 7;
    cfg.statsJsonPath =
        ::testing::TempDir() + "/utm_stats_test.json";
    cfg.tracePath = ::testing::TempDir() + "/utm_trace_test.json";
    RunResult r = runWorkload(w, cfg);
    ASSERT_TRUE(r.valid);

    std::FILE *f = std::fopen(cfg.statsJsonPath.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string doc;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        doc.append(buf, n);
    std::fclose(f);

    for (const char *key :
         {"\"schema\":\"ufotm-stats\"", "\"schema_version\":2",
          "\"run_config\"", "\"totals\"", "\"counters\"",
          "\"histograms\"", "\"profile\"", "\"contention\"",
          "\"hot_lines\"", "\"chain_len\"", "\"row_lock_wait\"",
          "\"phase_cycles\"", "\"per_backend\"", "\"per_thread\"",
          "\"workload\":\"failover-ubench\""}) {
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    }
    // totals.aborts_hw is the sum of the per-reason counters by
    // construction; cross-check against the RunResult's counter map.
    std::uint64_t sum = 0;
    for (const auto &[name, value] : r.stats)
        if (name.rfind("btm.aborts.", 0) == 0)
            sum += value;
    const std::string expect =
        "\"aborts_hw\":" + std::to_string(sum);
    EXPECT_NE(doc.find(expect), std::string::npos) << expect;

    std::FILE *tf = std::fopen(cfg.tracePath.c_str(), "r");
    ASSERT_NE(tf, nullptr);
    std::string trace;
    while ((n = std::fread(buf, 1, sizeof buf, tf)) > 0)
        trace.append(buf, n);
    std::fclose(tf);
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
}

// The committed example document stays in lockstep with the emitter:
// re-running the exact configuration that produced it (see
// docs/OBSERVABILITY.md: `tmsim -w ubench -s ufo-hybrid -t 2
// --failover-rate 0.25 --durable --stats-json ...`; durable, so the
// dur.* family and the persist profile phase are part of the pinned
// bytes) must reproduce the file byte for byte.  Only meaningful in
// the default build — the example was generated with tracing and
// profiling compiled in.
#if UTM_TRACING && UTM_PROFILING

namespace {

std::string
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return {};
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

} // namespace

TEST(StatsJson, CommittedExampleDocumentIsReproducible)
{
    FailoverParams p;
    p.failoverRate = 0.25;
    p.seed = 42;
    FailoverUbench w(p);
    RunConfig cfg;
    cfg.kind = TxSystemKind::UfoHybrid;
    cfg.threads = 2;
    cfg.machine.seed = 42;
    cfg.policy.durable = true;
    cfg.statsJsonPath =
        ::testing::TempDir() + "/utm_stats_example_test.json";
    RunResult r = runWorkload(w, cfg);
    ASSERT_TRUE(r.valid);

    const std::string fresh = readWholeFile(cfg.statsJsonPath);
    const std::string committed = readWholeFile(
        std::string(UFOTM_REPO_DIR) +
        "/docs/examples/stats.example.json");
    ASSERT_FALSE(fresh.empty());
    ASSERT_FALSE(committed.empty())
        << "docs/examples/stats.example.json missing";
    EXPECT_EQ(fresh, committed)
        << "docs/examples/stats.example.json is stale; regenerate it "
           "with the command in docs/OBSERVABILITY.md";
}

#endif // UTM_TRACING && UTM_PROFILING

} // namespace
} // namespace utm
