/**
 * @file
 * Tests for speculative lock elision (btm/sle.hh): lock semantics are
 * preserved, uncontended sections elide, conflicting sections
 * serialize, and the fallback interoperates with concurrent
 * speculators.
 */

#include <gtest/gtest.h>

#include "btm/sle.hh"
#include "mem/memory_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

MachineConfig
quiet(int cores)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

TEST(Sle, UncontendedSectionsElide)
{
    Machine m(quiet(4));
    TxHeap heap(m);
    ThreadContext &init = m.initContext();
    SimSpinLock lock(heap.allocZeroed(init, 8, true));
    const Addr slots = heap.allocZeroed(init, 4 * kLineSize, true);

    for (int t = 0; t < 4; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            BtmUnit btm(tc);
            for (int i = 0; i < 40; ++i) {
                const Addr a = slots + Addr(t) * kLineSize;
                EXPECT_TRUE(elideLock(tc, btm, lock, [&] {
                    tc.store(a, tc.load(a, 8) + 1, 8);
                }));
                tc.advance(30);
            }
        });
    }
    m.run();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(m.memory().read(slots + Addr(t) * kLineSize, 8), 40u);
    EXPECT_EQ(m.stats().get("sle.elided"), 160u);
    EXPECT_EQ(m.stats().get("sle.acquired"), 0u);
}

TEST(Sle, ConflictingSectionsStayExact)
{
    // All threads hammer one counter: heavy speculation failure, some
    // fallbacks -- but never a lost update.
    Machine m(quiet(8));
    TxHeap heap(m);
    ThreadContext &init = m.initContext();
    SimSpinLock lock(heap.allocZeroed(init, 8, true));
    const Addr counter = heap.allocZeroed(init, 8, true);

    for (int t = 0; t < 8; ++t) {
        m.addThread([&](ThreadContext &tc) {
            BtmUnit btm(tc);
            for (int i = 0; i < 50; ++i) {
                elideLock(tc, btm, lock, [&] {
                    tc.store(counter, tc.load(counter, 8) + 1, 8);
                });
                tc.advance(20);
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(counter, 8), 400u);
}

TEST(Sle, RealAcquisitionAbortsSpeculators)
{
    // One thread takes the lock for real and sits in the critical
    // section; a speculator starting meanwhile must abort (it read
    // the lock word) and eventually serialize behind the holder.
    Machine m(quiet(2));
    TxHeap heap(m);
    ThreadContext &init = m.initContext();
    SimSpinLock lock(heap.allocZeroed(init, 8, true));
    const Addr data = heap.allocZeroed(init, 8, true);
    std::vector<int> order;

    m.addThread([&](ThreadContext &tc) {
        lock.acquire(tc);
        tc.store(data, 1, 8);
        tc.advance(2000); // Long real critical section.
        tc.store(data, 2, 8);
        lock.release(tc);
        order.push_back(0);
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(300); // Start while the lock is held.
        BtmUnit btm(tc);
        elideLock(tc, btm, lock, [&] {
            std::uint64_t v = tc.load(data, 8);
            EXPECT_NE(v, 1u); // Never sees the intermediate state.
            tc.store(data, v + 10, 8);
        });
        order.push_back(1);
    });
    m.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(m.memory().read(data, 8), 12u);
}

TEST(Sle, FallbackAfterRepeatedFailures)
{
    // Force max_attempts=1 with constant conflicts: the fallback path
    // must engage and still produce exact results.
    Machine m(quiet(4));
    TxHeap heap(m);
    ThreadContext &init = m.initContext();
    SimSpinLock lock(heap.allocZeroed(init, 8, true));
    const Addr counter = heap.allocZeroed(init, 8, true);

    for (int t = 0; t < 4; ++t) {
        m.addThread([&](ThreadContext &tc) {
            BtmUnit btm(tc);
            for (int i = 0; i < 30; ++i) {
                elideLock(
                    tc, btm, lock,
                    [&] {
                        tc.store(counter, tc.load(counter, 8) + 1, 8);
                        tc.advance(100);
                    },
                    /*max_attempts=*/1);
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(counter, 8), 120u);
    EXPECT_GT(m.stats().get("sle.acquired"), 0u);
}

} // namespace
} // namespace utm
