/**
 * @file
 * Unit tests for the simulation kernel: fibers, RNG, stats,
 * configuration, scheduling, and the ThreadContext access primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "sim/fiber.hh"
#include "sim/machine.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace utm {
namespace {

// ---------------------------------------------------------------- Fiber

TEST(Fiber, RunsToCompletion)
{
    Fiber f;
    int x = 0;
    f.reset([&] { x = 42; });
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldRoundTrips)
{
    Fiber f;
    std::vector<int> order;
    f.reset([&] {
        order.push_back(1);
        f.yield();
        order.push_back(3);
        f.yield();
        order.push_back(5);
    });
    f.resume();
    order.push_back(2);
    f.resume();
    order.push_back(4);
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, ManyFibersInterleave)
{
    constexpr int kN = 16;
    std::vector<std::unique_ptr<Fiber>> fibers;
    int counter = 0;
    for (int i = 0; i < kN; ++i) {
        fibers.push_back(std::make_unique<Fiber>());
        Fiber *f = fibers.back().get();
        fibers.back()->reset([f, &counter] {
            for (int j = 0; j < 10; ++j) {
                ++counter;
                f->yield();
            }
        });
    }
    bool any = true;
    while (any) {
        any = false;
        for (auto &f : fibers) {
            if (!f->finished()) {
                f->resume();
                any = true;
            }
        }
    }
    EXPECT_EQ(counter, kN * 10);
}

TEST(Fiber, ExceptionsStayInsideFiber)
{
    Fiber f;
    bool caught = false;
    f.reset([&] {
        try {
            throw std::runtime_error("boom");
        } catch (const std::runtime_error &) {
            caught = true;
        }
    });
    f.resume();
    EXPECT_TRUE(caught);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, ReuseAfterFinish)
{
    Fiber f;
    int runs = 0;
    for (int i = 0; i < 3; ++i) {
        f.reset([&] { ++runs; });
        f.resume();
        ASSERT_TRUE(f.finished());
    }
    EXPECT_EQ(runs, 3);
}

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.nextBounded(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = r.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.nextBool(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// -------------------------------------------------------------- Zipfian

TEST(Zipfian, InRangeAndDeterministic)
{
    const Zipfian z(100, 0.9);
    Rng a(21), b(21);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t va = z.sample(a);
        ASSERT_LT(va, 100u);
        ASSERT_EQ(va, z.sample(b));
    }
}

TEST(Zipfian, ThetaZeroIsUniformByChiSquare)
{
    // theta=0 degenerates to the uniform distribution; a chi-square
    // statistic over n=16 bins with N=32000 draws should sit far
    // below the df=15 critical value at alpha=0.001 (37.7).
    constexpr std::uint64_t n = 16;
    constexpr int draws = 32000;
    const Zipfian z(n, 0.0);
    Rng r(7);
    std::uint64_t counts[n] = {};
    for (int i = 0; i < draws; ++i)
        ++counts[z.sample(r)];
    const double expected = double(draws) / double(n);
    double chi2 = 0;
    for (std::uint64_t c : counts)
        chi2 += (double(c) - expected) * (double(c) - expected) /
                expected;
    EXPECT_LT(chi2, 37.7);
}

TEST(Zipfian, SkewMatchesZipfFrequencies)
{
    // Bin frequencies for theta=0.8 must match the Zipf pmf
    // p(k) ~ 1/(k+1)^theta.  The sampler is the Gray et al. analytic
    // approximation, whose per-rank bias a large-N chi-square would
    // detect, so bound the per-bin relative error instead (observed
    // bias is ~4%; a broken alpha/eta derivation is off by far more).
    constexpr std::uint64_t n = 8;
    constexpr int draws = 40000;
    const double theta = 0.8;
    const Zipfian z(n, theta);
    Rng r(17);
    std::uint64_t counts[n] = {};
    for (int i = 0; i < draws; ++i)
        ++counts[z.sample(r)];

    double zeta = 0;
    for (std::uint64_t k = 1; k <= n; ++k)
        zeta += 1.0 / std::pow(double(k), theta);
    for (std::uint64_t k = 0; k < n; ++k) {
        const double expected =
            draws / (std::pow(double(k + 1), theta) * zeta);
        EXPECT_NEAR(double(counts[k]), expected, 0.10 * expected)
            << "rank " << k;
    }
    // Rank 0 is the hottest key and ranks decay monotonically in
    // expectation; check the coarse ordering across halves.
    std::uint64_t lo = 0, hi = 0;
    for (std::uint64_t k = 0; k < n / 2; ++k)
        lo += counts[k];
    for (std::uint64_t k = n / 2; k < n; ++k)
        hi += counts[k];
    EXPECT_GT(lo, hi);
    EXPECT_GT(counts[0], counts[n - 1]);
}

TEST(Zipfian, SingletonRangeAlwaysZero)
{
    const Zipfian z(1, 0.5);
    Rng r(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(r), 0u);
}

// ---------------------------------------------------------------- Stats

TEST(Stats, IncrementAndGet)
{
    StatsRegistry s;
    EXPECT_EQ(s.get("a"), 0u);
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.get("a"), 5u);
    s.set("a", 2);
    EXPECT_EQ(s.get("a"), 2u);
}

TEST(Stats, PrefixQuery)
{
    StatsRegistry s;
    s.inc("btm.aborts.conflict", 3);
    s.inc("btm.aborts.overflow", 1);
    s.inc("btm.commits", 9);
    s.inc("ustm.commits", 2);
    auto aborts = s.withPrefix("btm.aborts.");
    ASSERT_EQ(aborts.size(), 2u);
    EXPECT_EQ(aborts[0].first, "btm.aborts.conflict");
    EXPECT_EQ(aborts[0].second, 3u);
}

TEST(Stats, ClearKeepsNames)
{
    StatsRegistry s;
    s.inc("x", 7);
    s.clear();
    EXPECT_EQ(s.get("x"), 0u);
    EXPECT_EQ(s.withPrefix("x").size(), 1u);
}

// --------------------------------------------------------------- Config

TEST(Config, DescribeMentionsGeometry)
{
    MachineConfig cfg;
    std::string d = cfg.describe();
    EXPECT_NE(d.find("32 KiB"), std::string::npos);
    EXPECT_NE(d.find("64 B lines"), std::string::npos);
    EXPECT_EQ(cfg.l1Bytes(), 32u * 1024);
}

// -------------------------------------------------------------- Machine

TEST(Machine, SchedulerRunsAllThreads)
{
    MachineConfig mc;
    mc.numCores = 4;
    Machine m(mc);
    std::vector<int> done;
    for (int i = 0; i < 4; ++i) {
        m.addThread([&, i](ThreadContext &tc) {
            tc.advance(10 * (i + 1));
            done.push_back(i);
        });
    }
    m.run();
    EXPECT_EQ(done.size(), 4u);
    EXPECT_GE(m.completionTime(), 40u);
}

TEST(Machine, MinClockSchedulingInterleavesFairly)
{
    MachineConfig mc;
    mc.numCores = 2;
    Machine m(mc);
    std::vector<int> trace;
    for (int i = 0; i < 2; ++i) {
        m.addThread([&, i](ThreadContext &tc) {
            for (int j = 0; j < 5; ++j) {
                trace.push_back(i);
                tc.advance(10);
                tc.yield();
            }
        });
    }
    m.run();
    // Equal-cost threads must alternate, not run back to back.
    ASSERT_EQ(trace.size(), 10u);
    for (int j = 0; j + 2 < 10; j += 2)
        EXPECT_NE(trace[j], trace[j + 1]);
}

TEST(Machine, TooManyThreadsIsFatal)
{
    MachineConfig mc;
    mc.numCores = 1;
    Machine m(mc);
    m.addThread([](ThreadContext &) {});
    EXPECT_EXIT(m.addThread([](ThreadContext &) {}),
                ::testing::ExitedWithCode(1), "more threads");
}

TEST(Machine, TxSeqMonotonic)
{
    Machine m;
    std::uint64_t a = m.nextTxSeq();
    std::uint64_t b = m.nextTxSeq();
    EXPECT_LT(a, b);
}

// -------------------------------------------------------- ThreadContext

TEST(ThreadContext, LoadStoreRoundTrip)
{
    Machine m;
    ThreadContext &tc = m.initContext();
    tc.store(0x1000, 0xdeadbeefcafef00dull, 8);
    EXPECT_EQ(tc.load(0x1000, 8), 0xdeadbeefcafef00dull);
    EXPECT_EQ(tc.load(0x1000, 4), 0xcafef00dull);
    EXPECT_EQ(tc.load(0x1004, 4), 0xdeadbeefull);
    tc.storeT<std::uint16_t>(0x1010, 0x1234);
    EXPECT_EQ(tc.loadT<std::uint16_t>(0x1010), 0x1234);
}

TEST(ThreadContext, CasSemantics)
{
    Machine m;
    ThreadContext &tc = m.initContext();
    tc.store(0x2000, 5, 8);
    std::uint64_t old = 0;
    EXPECT_FALSE(tc.cas(0x2000, 8, 4, 9, &old));
    EXPECT_EQ(old, 5u);
    EXPECT_EQ(tc.load(0x2000, 8), 5u);
    EXPECT_TRUE(tc.cas(0x2000, 8, 5, 9, &old));
    EXPECT_EQ(old, 5u);
    EXPECT_EQ(tc.load(0x2000, 8), 9u);
}

TEST(ThreadContext, FetchAdd)
{
    Machine m;
    ThreadContext &tc = m.initContext();
    EXPECT_EQ(tc.fetchAdd(0x3000, 8, 7), 0u);
    EXPECT_EQ(tc.fetchAdd(0x3000, 8, 3), 7u);
    EXPECT_EQ(tc.load(0x3000, 8), 10u);
}

TEST(ThreadContext, AdvanceMovesClock)
{
    Machine m;
    ThreadContext &tc = m.initContext();
    Cycles t0 = tc.now();
    tc.advance(123);
    EXPECT_EQ(tc.now(), t0 + 123);
}

TEST(ThreadContext, AccessChargesLatency)
{
    MachineConfig mc;
    mc.timerQuantum = 0;
    Machine m(mc);
    ThreadContext &tc = m.initContext();
    Cycles t0 = tc.now();
    tc.load(0x4000, 8); // Cold: L1 miss + L2 miss.
    Cycles miss = tc.now() - t0;
    EXPECT_GE(miss, mc.memLatency);
    t0 = tc.now();
    tc.load(0x4000, 8); // Hot: L1 hit.
    Cycles hit = tc.now() - t0;
    EXPECT_EQ(hit, mc.l1HitLatency);
}

TEST(ThreadContext, DeterministicAcrossRuns)
{
    auto run = [](std::uint64_t seed) {
        MachineConfig mc;
        mc.numCores = 4;
        mc.seed = seed;
        Machine m(mc);
        for (int i = 0; i < 4; ++i) {
            m.addThread([](ThreadContext &tc) {
                for (int j = 0; j < 100; ++j) {
                    Addr a = 0x1000 + tc.rng().nextBounded(32) * 64;
                    tc.store(a, tc.load(a, 8) + 1, 8);
                }
            });
        }
        m.run();
        return m.completionTime();
    };
    EXPECT_EQ(run(5), run(5));
}

} // namespace
} // namespace utm
