/**
 * @file
 * Tests for the tmtorture schedule-exploration harness (src/torture):
 *
 *  - clean runs: the torture workload passes its oracles on every
 *    backend under every scheduler policy;
 *  - double-run determinism: the same TortureConfig produces an
 *    identical result (cycles, steps, counters, schedule) twice, for
 *    every TxSystemKind;
 *  - record/replay bit-identity: replaying a recorded schedule
 *    reproduces the run exactly;
 *  - mutation self-test: breaking the Algorithm 2 otable<->UFO-bit
 *    lockstep (via the test-only hook) is caught by the
 *    backend-invariants oracle, and the failing schedule minimizes to
 *    a smaller reproducer;
 *  - regressions for the two organic bugs tmtorture found (the BTM
 *    inspect row-lock window and the releaseEntry starvation
 *    livelock).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/tx_system.hh"
#include "sim/scheduler.hh"
#include "torture/torture.hh"

namespace utm {
namespace {

using torture::MinimizeResult;
using torture::TortureConfig;
using torture::TortureResult;

/** Small-but-contended config that keeps each run under a second. */
TortureConfig
smallConfig(TxSystemKind kind, SchedPolicy policy, std::uint64_t seed)
{
    TortureConfig cfg;
    cfg.kind = kind;
    cfg.threads = 4;
    cfg.opsPerThread = 20;
    cfg.cells = 24;
    cfg.seed = seed;
    cfg.sched.policy = policy;
    cfg.sched.pctExpectedSteps = 1u << 11;
    return cfg;
}

constexpr TxSystemKind kAllKinds[] = {
    TxSystemKind::NoTm,       TxSystemKind::UnboundedHtm,
    TxSystemKind::UfoHybrid,  TxSystemKind::HyTm,
    TxSystemKind::PhTm,       TxSystemKind::Ustm,
    TxSystemKind::UstmStrong, TxSystemKind::Tl2,
};

constexpr SchedPolicy kAllPolicies[] = {
    SchedPolicy::MinClock, SchedPolicy::MaxClock,
    SchedPolicy::RandomWalk, SchedPolicy::Pct, SchedPolicy::RoundRobin,
};

// ------------------------------------------------ Clean clean sweeps

TEST(TmTorture, EveryBackendEveryPolicyPassesOracles)
{
    for (TxSystemKind kind : kAllKinds) {
        for (SchedPolicy policy : kAllPolicies) {
            TortureConfig cfg = smallConfig(kind, policy, 3);
            TortureResult res = torture::runTorture(cfg);
            EXPECT_TRUE(res.ok())
                << txSystemKindName(kind) << "/"
                << schedPolicyName(policy) << ": oracle '" << res.oracle
                << "' at step " << res.violationStep << ": " << res.why;
            EXPECT_GT(res.commits, 0u)
                << txSystemKindName(kind) << "/"
                << schedPolicyName(policy);
        }
    }
}

// --------------------------------------- Double-run determinism

TEST(TmTorture, DoubleRunDeterminismEveryBackend)
{
    // Same config twice => identical timing, counters, and schedule,
    // for every TxSystemKind.  Catches hidden host-state leaks
    // (iteration over pointer-keyed containers, uninitialized
    // values, ...) that would make failing schedules unreplayable.
    for (TxSystemKind kind : kAllKinds) {
        TortureConfig cfg =
            smallConfig(kind, SchedPolicy::RandomWalk, 11);
        cfg.record = true;
        TortureResult a = torture::runTorture(cfg);
        TortureResult b = torture::runTorture(cfg);
        EXPECT_TRUE(a.ok()) << txSystemKindName(kind) << ": " << a.why;
        EXPECT_EQ(a.cycles, b.cycles) << txSystemKindName(kind);
        EXPECT_EQ(a.steps, b.steps) << txSystemKindName(kind);
        EXPECT_EQ(a.commits, b.commits) << txSystemKindName(kind);
        EXPECT_EQ(a.stats, b.stats) << txSystemKindName(kind);
        EXPECT_EQ(a.schedule.serialize(), b.schedule.serialize())
            << txSystemKindName(kind);
    }
}

TEST(TmTorture, PredictorOnPassesOraclesAndStaysDeterministic)
{
    // The path predictor must not perturb the determinism contract:
    // with it enabled (and per-op-class sites flowing through the kv
    // workload), every hybrid still passes all oracles, double runs
    // stay bit-identical, and a recorded schedule replays exactly.
    for (TxSystemKind kind : {TxSystemKind::UfoHybrid,
                              TxSystemKind::HyTm, TxSystemKind::PhTm}) {
        TortureConfig cfg =
            smallConfig(kind, SchedPolicy::RandomWalk, 11);
        cfg.workload = torture::TortureWorkload::Kv;
        cfg.policy.predictor.enable = true;
        cfg.policy.predictor.decayInterval = 8; // Exercise decay too.
        cfg.record = true;
        TortureResult a = torture::runTorture(cfg);
        TortureResult b = torture::runTorture(cfg);
        EXPECT_TRUE(a.ok()) << txSystemKindName(kind) << ": oracle '"
                            << a.oracle << "': " << a.why;
        EXPECT_EQ(a.stats, b.stats) << txSystemKindName(kind);
        EXPECT_EQ(a.schedule.serialize(), b.schedule.serialize())
            << txSystemKindName(kind);

        ScheduleTrace trace;
        ASSERT_TRUE(
            ScheduleTrace::parse(a.schedule.serialize(), &trace));
        TortureConfig replay_cfg = cfg;
        replay_cfg.record = false;
        replay_cfg.replay = &trace;
        TortureResult replayed = torture::runTorture(replay_cfg);
        EXPECT_TRUE(replayed.ok())
            << txSystemKindName(kind) << ": " << replayed.why;
        EXPECT_EQ(replayed.cycles, a.cycles) << txSystemKindName(kind);
        EXPECT_EQ(replayed.commits, a.commits)
            << txSystemKindName(kind);
    }
}

// ------------------------------------------- Record/replay identity

TEST(TmTorture, ReplayReproducesRunBitIdentically)
{
    TortureConfig cfg =
        smallConfig(TxSystemKind::UfoHybrid, SchedPolicy::RandomWalk, 9);
    cfg.record = true;
    TortureResult recorded = torture::runTorture(cfg);
    ASSERT_TRUE(recorded.ok()) << recorded.why;
    ASSERT_GT(recorded.schedule.steps(), 0u);

    // Round-trip the trace through its text format, then replay.
    ScheduleTrace trace;
    ASSERT_TRUE(
        ScheduleTrace::parse(recorded.schedule.serialize(), &trace));

    TortureConfig replay_cfg = cfg;
    replay_cfg.record = false;
    replay_cfg.replay = &trace;
    TortureResult replayed = torture::runTorture(replay_cfg);
    EXPECT_TRUE(replayed.ok()) << replayed.why;
    EXPECT_EQ(replayed.cycles, recorded.cycles);
    EXPECT_EQ(replayed.steps, recorded.steps);
    EXPECT_EQ(replayed.commits, recorded.commits);
    EXPECT_EQ(replayed.schedule.serialize(),
              recorded.schedule.serialize());

    // Bit-identity extends to every counter except the scheduler's
    // own (the replayed run uses ReplayScheduler, not RandomWalk).
    std::map<std::string, std::uint64_t> a = recorded.stats;
    std::map<std::string, std::uint64_t> b = replayed.stats;
    auto drop_sched = [](std::map<std::string, std::uint64_t> *m) {
        for (auto it = m->begin(); it != m->end();)
            it = it->first.rfind("sched.", 0) == 0 ? m->erase(it)
                                                   : std::next(it);
    };
    drop_sched(&a);
    drop_sched(&b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(replayed.stats.count("sched.replay_divergences"),
              std::size_t(0));
}

// --------------------------------------------- Mutation self-test

TEST(TmTorture, LockstepMutationIsCaughtAndMinimized)
{
    // Break installUfo via the test-only hook: the lockstep oracle
    // must fire, and the failing schedule must minimize to a (not
    // larger) reproducer that still fails the same oracle on replay.
    TortureConfig cfg =
        smallConfig(TxSystemKind::UstmStrong, SchedPolicy::MinClock, 1);
    cfg.record = true;
    cfg.injectLockstepBug = true;
    TortureResult res = torture::runTorture(cfg);
    ASSERT_TRUE(res.violated);
    EXPECT_EQ(res.oracle, "backend-invariants");
    EXPECT_NE(res.why.find("UFO bits"), std::string::npos) << res.why;

    MinimizeResult min = torture::minimizeSchedule(
        cfg, res.schedule, res.oracle, res.violationStep,
        /*budget=*/60);
    ASSERT_TRUE(min.reproduced);
    EXPECT_LE(min.schedule.steps(), res.schedule.steps());

    TortureConfig replay_cfg = cfg;
    replay_cfg.record = false;
    replay_cfg.replay = &min.schedule;
    TortureResult replayed = torture::runTorture(replay_cfg);
    EXPECT_TRUE(replayed.violated);
    EXPECT_EQ(replayed.oracle, res.oracle);
}

TEST(TmTorture, MutationNotInjectedPassesSameConfig)
{
    // Control for the self-test: identical config, hook off => green.
    TortureConfig cfg =
        smallConfig(TxSystemKind::UstmStrong, SchedPolicy::MinClock, 1);
    TortureResult res = torture::runTorture(cfg);
    EXPECT_TRUE(res.ok()) << res.oracle << ": " << res.why;
}

// ------------------------------------------------ Found-bug pinning

TEST(TmTorture, InspectRowLockWindow)
{
    // Regression for an organic tmtorture find: BTM's UFO-fault
    // inspect hook (Ustm::inspectForRetryers) used to trust
    // peekOwners() == 0 while the otable row lock was held.  The
    // chain-insert / tombstone-reclaim paths of lockedAcquire()
    // install UFO bits *before* publishing the entry at unlock, so the
    // hook could speculatively clear another transaction's protection
    // in that window, leaving a published entry unprotected (lockstep
    // oracle violation).  Needs bucket collisions: tiny otable, many
    // lines, hybrid backend, write-heavy interleavings.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        TortureConfig cfg = smallConfig(TxSystemKind::UfoHybrid,
                                        SchedPolicy::RandomWalk, seed);
        cfg.threads = 8;
        cfg.opsPerThread = 40;
        cfg.cells = 64;
        cfg.otableBuckets = 2;
        TortureResult res = torture::runTorture(cfg);
        EXPECT_TRUE(res.ok())
            << "seed " << seed << ": oracle '" << res.oracle
            << "' at step " << res.violationStep << ": " << res.why;
    }
}

TEST(TmTorture, ReleaseStarvation)
{
    // Regression for the second organic find: with a fixed re-probe
    // cadence in Ustm::acquire(), the deterministic MinClock schedule
    // phase-locked two acquirers' row-lock probes over an Aborting
    // thread's releaseEntry() load-to-CAS window.  The releaser never
    // won the row lock, and its killer spun forever in the
    // victim-unwind wait ("victim-unwind wait did not terminate").
    // Exact original reproducer: ustm (weak), minclock, seed 4,
    // 4 threads x 60 ops over 48 cells in 4 otable buckets.
    TortureConfig cfg;
    cfg.kind = TxSystemKind::Ustm;
    cfg.threads = 4;
    cfg.opsPerThread = 60;
    cfg.cells = 48;
    cfg.otableBuckets = 4;
    cfg.seed = 4;
    cfg.sched.policy = SchedPolicy::MinClock;
    TortureResult res = torture::runTorture(cfg);
    EXPECT_TRUE(res.ok()) << res.oracle << ": " << res.why;
}

TEST(TmTorture, PctDemotionPhaseLock)
{
    // Regression for the third organic find: PCT's starvation-bound
    // demotion had a *fixed* cadence, and priority scheduling ignores
    // clocks — so a thread whose otable lock-probe loop has a constant
    // event count was demoted at the same loop phase every time.
    // That phase landed inside its row-lock critical section: every
    // lower-priority thread then burned its whole scheduling window
    // probing a lock whose holder was parked, and the rotation
    // repeated forever (no commits, no aborts, no oracle violation —
    // a silent livelock).  The cycle-jitter fix for the analogous
    // MinClock phase-lock (ReleaseStarvation above) cannot help here,
    // because PCT never consults clocks; the fix re-draws the bound
    // from the policy's own seeded RNG after every demotion.  Exact
    // original reproducer: ustm-ufo, pct, seed 12, 4 threads x 50
    // batched kv ops, 4 otable buckets (tmtorture --batch defaults).
    TortureConfig cfg;
    cfg.kind = TxSystemKind::UstmStrong;
    cfg.workload = torture::TortureWorkload::Kv;
    cfg.kvBatch = true;
    cfg.threads = 4;
    cfg.opsPerThread = 50;
    cfg.seed = 12;
    cfg.sched.policy = SchedPolicy::Pct;
    cfg.sched.pctExpectedSteps = 4096;
    TortureResult res = torture::runTorture(cfg);
    EXPECT_TRUE(res.ok()) << res.oracle << ": " << res.why;
}

} // namespace
} // namespace utm
