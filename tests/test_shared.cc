/**
 * @file
 * Tests for the typed Shared<T>/SharedArray<T> views and the
 * statistics histogram.
 */

#include <gtest/gtest.h>

#include "core/shared.hh"
#include "sim/machine.hh"
#include "sim/stats.hh"

namespace utm {
namespace {

TEST(SharedCell, TypedRoundTrip)
{
    Machine m;
    TxHeap heap(m);
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    Shared<std::uint32_t> cell(
        heap.allocZeroed(m.initContext(), 4, true));

    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            cell.set(h, 41);
            EXPECT_EQ(cell.get(h), 41u);
            cell.update(h, [](std::uint32_t v) { return v + 1; });
        });
        EXPECT_EQ(cell.load(tc), 42u); // NonT read after commit.
        cell.store(tc, 7);
    });
    m.run();
    EXPECT_EQ(m.memory().read(cell.addr(), 4), 7u);
}

TEST(SharedCell, SignedTypes)
{
    Machine m;
    TxHeap heap(m);
    auto sys = TxSystem::create(TxSystemKind::UstmStrong, m);
    sys->setup();
    Shared<std::int16_t> cell(
        heap.allocZeroed(m.initContext(), 2, true));
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) { cell.set(h, -123); });
        EXPECT_EQ(cell.load(tc), -123);
    });
    m.run();
}

TEST(SharedArray, ElementsAreIndependentLines)
{
    Machine m;
    TxHeap heap(m);
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    auto arr = SharedArray<std::uint64_t>::create(
        m.initContext(), heap, 8);
    EXPECT_EQ(arr.size(), 8u);
    for (std::size_t i = 0; i + 1 < arr.size(); ++i)
        EXPECT_NE(lineOf(arr.addrOf(i)), lineOf(arr.addrOf(i + 1)));

    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            for (std::size_t i = 0; i < arr.size(); ++i)
                arr.set(h, i, i * i);
        });
    });
    m.run();
    for (std::size_t i = 0; i < arr.size(); ++i)
        EXPECT_EQ(m.memory().read(arr.addrOf(i), 8), i * i);
}

TEST(SharedArray, PackedStride)
{
    Machine m;
    TxHeap heap(m);
    auto sys = TxSystem::create(TxSystemKind::Tl2, m);
    sys->setup();
    auto arr = SharedArray<std::uint32_t>::create(
        m.initContext(), heap, 16, /*stride=*/4);
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            for (std::size_t i = 0; i < 16; ++i)
                arr.set(h, i, std::uint32_t(100 + i));
        });
    });
    m.run();
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(m.memory().read(arr.addrOf(i), 4), 100 + i);
}

// ------------------------------------------------------------ Histogram

TEST(HistogramStat, BasicMoments)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    for (std::uint64_t v : {1u, 2u, 4u, 8u, 100u})
        h.observe(v);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_NEAR(h.mean(), 23.0, 0.01);
}

TEST(HistogramStat, QuantilesBucketed)
{
    Histogram h;
    for (int i = 0; i < 90; ++i)
        h.observe(10); // bucket [8,16) -> upper bound 15
    for (int i = 0; i < 10; ++i)
        h.observe(1000); // bucket [512,1024) -> upper bound 1023
    EXPECT_EQ(h.quantile(0.5), 15u);
    EXPECT_EQ(h.quantile(0.99), 1023u);
    EXPECT_EQ(h.countAbove(255), 10u);
    EXPECT_EQ(h.countAbove(1023), 0u);
}

TEST(HistogramStat, RegistryIntegration)
{
    StatsRegistry s;
    EXPECT_EQ(s.histogram("never").samples(), 0u);
    s.observe("x", 5);
    s.observe("x", 6);
    EXPECT_EQ(s.histogram("x").samples(), 2u);
}

TEST(HistogramStat, ZeroAndHugeValues)
{
    Histogram h;
    h.observe(0);
    h.observe(~std::uint64_t(0));
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), ~std::uint64_t(0));
    EXPECT_EQ(h.samples(), 2u);
}

} // namespace
} // namespace utm
