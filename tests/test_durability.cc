/**
 * @file
 * Durable UFO-TM tests: the persistence domain (mem/persist.hh),
 * redo-log commits (TmPolicy::durable), crash recovery
 * (dur/recovery.hh), and the crash-torture harness
 * (torture::runCrashTorture).
 *
 *  - determinism: durable runs are bit-reproducible for every durable
 *    backend x scheduler policy, and the dur.* counter families obey
 *    their sum invariants;
 *  - durability off is inert (no dur.* counters), and requesting it
 *    on a non-durable backend is ignored with a warning;
 *  - recovery: full-log recovery equals the committed history and is
 *    idempotent; synthetic torn tails (checksum mismatch, invalid
 *    length) are truncated, zero headers stop the scan cleanly, and
 *    surviving UFO protection bits are scrubbed;
 *  - ScheduleTrace v2: crash-free traces keep the v1 byte format,
 *    crash traces round-trip "crash=<K>", and a recorded crash
 *    schedule replays the whole crash-recover-check cycle
 *    bit-identically;
 *  - the crash-torture gate: >= 64 (seed x policy) crash runs on
 *    durable ustm-ufo and ufo-hybrid, each checked for prefix
 *    consistency, post-recovery otable<->UFO lockstep, and recovery
 *    idempotence.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "dur/recovery.hh"
#include "mem/persist.hh"
#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "torture/torture.hh"

namespace utm {
namespace {

using torture::CrashTortureResult;
using torture::TortureConfig;
using torture::TortureResult;
using torture::TortureWorkload;

constexpr std::array<TxSystemKind, 6> kDurableBackends = {
    TxSystemKind::UnboundedHtm, TxSystemKind::UfoHybrid,
    TxSystemKind::HyTm,         TxSystemKind::PhTm,
    TxSystemKind::Ustm,         TxSystemKind::UstmStrong,
};

constexpr std::array<SchedPolicy, 5> kAllPolicies = {
    SchedPolicy::MinClock, SchedPolicy::MaxClock,
    SchedPolicy::RandomWalk, SchedPolicy::Pct, SchedPolicy::RoundRobin,
};

std::uint64_t
stat(const std::map<std::string, std::uint64_t> &stats,
     const std::string &name)
{
    auto it = stats.find(name);
    return it == stats.end() ? 0 : it->second;
}

// ---------------------------------------------------- Inert when off

TEST(DurabilityOff, DefaultPolicyEmitsNoDurCounters)
{
    TmPolicy p;
    EXPECT_FALSE(p.durable);

    TortureConfig cfg;
    cfg.kind = TxSystemKind::UfoHybrid;
    cfg.seed = 3;
    const TortureResult res = torture::runTorture(cfg);
    ASSERT_TRUE(res.ok()) << res.why;
    for (const auto &[name, value] : res.stats)
        EXPECT_NE(name.rfind("dur.", 0), 0u)
            << name << " = " << value
            << " emitted with durability off";
}

TEST(DurabilityOff, NonDurableBackendIgnoresRequest)
{
    TortureConfig cfg;
    cfg.kind = TxSystemKind::Tl2;
    cfg.seed = 3;
    cfg.policy.durable = true; // TL2 cannot honor this.
    setWarningsSuppressed(true);
    const TortureResult res = torture::runTorture(cfg);
    setWarningsSuppressed(false);
    ASSERT_TRUE(res.ok()) << res.why;
    EXPECT_EQ(stat(res.stats, "dur.active"), 0u);
}

// ------------------------------------------- Determinism + counters

TEST(Durable, DoubleRunByteIdentityEveryBackendAndPolicy)
{
    for (TxSystemKind kind : kDurableBackends) {
        for (SchedPolicy policy : kAllPolicies) {
            TortureConfig cfg;
            cfg.kind = kind;
            cfg.sched.policy = policy;
            cfg.policy.durable = true;
            cfg.opsPerThread = 30;
            cfg.seed = 5;
            const TortureResult a = torture::runTorture(cfg);
            const TortureResult b = torture::runTorture(cfg);
            const std::string tag =
                std::string(txSystemKindName(kind)) + "/" +
                schedPolicyName(policy);
            ASSERT_TRUE(a.ok()) << tag << ": " << a.oracle << ": "
                                << a.why;
            EXPECT_EQ(a.cycles, b.cycles) << tag;
            EXPECT_EQ(a.stats, b.stats) << tag;

            // The dur.* family invariants: one fence per logged
            // commit, at least one write-back per record, and the
            // domain was actually armed.
            EXPECT_EQ(stat(a.stats, "dur.active"), 1u) << tag;
            const std::uint64_t logged =
                stat(a.stats, "dur.commits.logged");
            EXPECT_GT(logged, 0u) << tag;
            EXPECT_EQ(stat(a.stats, "dur.log_records"), logged) << tag;
            EXPECT_EQ(stat(a.stats, "dur.sfence"), logged) << tag;
            EXPECT_GE(stat(a.stats, "dur.clwb.dirty") +
                          stat(a.stats, "dur.clwb.clean"),
                      logged)
                << tag;
            EXPECT_GE(stat(a.stats, "dur.log_bytes"), 56 * logged)
                << tag;
        }
    }
}

TEST(Durable, ShardedLogFamiliesSumToTotals)
{
    TortureConfig cfg;
    cfg.kind = TxSystemKind::Ustm;
    cfg.workload = TortureWorkload::Kv;
    cfg.kvShards = 4;
    cfg.policy.durable = true;
    cfg.seed = 9;
    const TortureResult res = torture::runTorture(cfg);
    ASSERT_TRUE(res.ok()) << res.why;

    std::uint64_t records = 0, bytes = 0;
    for (unsigned s = 0; s < 4; ++s) {
        records += stat(res.stats,
                        "dur.log_records." + std::to_string(s));
        bytes += stat(res.stats, "dur.log_bytes." + std::to_string(s));
    }
    EXPECT_EQ(records, stat(res.stats, "dur.log_records"));
    EXPECT_EQ(bytes, stat(res.stats, "dur.log_bytes"));
    EXPECT_GT(records, 0u);
}

// ------------------------------------------------------ Recovery

TEST(Recovery, FullLogRecoveryMatchesHistoryAndIsIdempotent)
{
    // A crash step past the end of the run: the machine completes,
    // every logged record is fenced, and recovery must rebuild the
    // complete committed history (the harness also recovers twice and
    // fails unless the second pass is byte-identical).
    TortureConfig cfg;
    cfg.kind = TxSystemKind::UstmStrong;
    cfg.workload = TortureWorkload::Kv;
    cfg.seed = 4;
    const CrashTortureResult res =
        torture::runCrashTorture(cfg, std::uint64_t(1) << 30);
    ASSERT_TRUE(res.ok) << res.why;
    EXPECT_EQ(res.recoveredTx, res.committedTx);
    EXPECT_EQ(res.fencedTx, res.committedTx);
    EXPECT_EQ(res.discardedRecords, 0u);
    EXPECT_NE(res.recoverJson.find("\"schema\":\"ufotm-recover\""),
              std::string::npos);
}

/** Serialize synthetic redo records into a PersistentImage, starting
 *  at shard 0's record base.  A corrupt spec flips a payload word
 *  after the checksum is taken (the torn-tail shape a crash between
 *  write-backs leaves behind). */
struct RecordSpec
{
    std::uint64_t txid, ts;
    std::vector<std::array<std::uint64_t, 3>> writes;
    bool corrupt = false;
};

PersistentImage
makeLogImage(const MachineConfig &mc,
             const std::vector<RecordSpec> &recs)
{
    std::vector<std::uint8_t> bytes;
    const auto pushWord = [&bytes](std::uint64_t w) {
        for (int b = 0; b < 8; ++b)
            bytes.push_back(static_cast<std::uint8_t>(w >> (8 * b)));
    };
    for (const RecordSpec &r : recs) {
        std::vector<std::uint64_t> words{r.txid, r.ts,
                                         r.writes.size()};
        for (const auto &t : r.writes) {
            words.push_back(t[0]);
            words.push_back(t[1]);
            words.push_back(t[2]);
        }
        const std::uint32_t ck =
            persistChecksum(words.data(), words.size());
        pushWord(8 * (1 + words.size()) |
                 (std::uint64_t(ck) << 32));
        if (r.corrupt)
            words[1] ^= 0xdead;
        for (std::uint64_t w : words)
            pushWord(w);
    }
    PersistentImage img;
    const Addr rec_base = mc.persist.logBase + kLineSize;
    for (std::size_t off = 0; off < bytes.size(); off += kLineSize) {
        PersistentImage::Line line;
        for (unsigned b = 0; b < kLineSize && off + b < bytes.size();
             ++b)
            line.data[b] = bytes[off + b];
        img.put(rec_base + Addr(off), line);
    }
    return img;
}

TEST(Recovery, TornTailChecksumTruncated)
{
    MachineConfig mc;
    mc.numCores = 1;
    const Addr a1 = mc.heapBase + 0x100;
    const Addr a2 = mc.heapBase + 0x200;
    const PersistentImage img = makeLogImage(
        mc, {{1, 10, {{{a1, 0x1111, 8}}}, false},
             {2, 11, {{{a2, 0x2222, 8}}}, true}});

    Machine m(mc);
    const dur::RecoveryReport rep = dur::recover(m, img);
    EXPECT_EQ(rep.recordsScanned, 2u);
    EXPECT_EQ(rep.recordsApplied, 1u);
    EXPECT_EQ(rep.recordsDiscarded, 1u);
    EXPECT_EQ(rep.writesApplied, 1u);
    EXPECT_EQ(rep.maxCommitTs, 10u);
    EXPECT_EQ(m.memory().read(a1, 8), 0x1111u);
    EXPECT_NE(m.memory().read(a2, 8), 0x2222u)
        << "write of the torn record leaked into recovered state";
}

TEST(Recovery, ZeroHeaderStopsScanCleanly)
{
    MachineConfig mc;
    mc.numCores = 1;
    const Addr a1 = mc.heapBase + 0x300;
    const PersistentImage img =
        makeLogImage(mc, {{7, 42, {{{a1, 0xabcd, 8}}}, false}});

    Machine m(mc);
    const dur::RecoveryReport rep = dur::recover(m, img);
    EXPECT_EQ(rep.recordsScanned, 1u);
    EXPECT_EQ(rep.recordsApplied, 1u);
    EXPECT_EQ(rep.recordsDiscarded, 0u);
    EXPECT_EQ(m.memory().read(a1, 8), 0xabcdu);
}

TEST(Recovery, InvalidLengthHeaderTruncated)
{
    MachineConfig mc;
    mc.numCores = 1;
    // A lone header whose length is not a multiple of 8: the torn
    // shape of a crash that persisted the header line only.
    PersistentImage img;
    PersistentImage::Line line;
    const std::uint64_t header = 61 | (std::uint64_t(0x1234) << 32);
    for (int b = 0; b < 8; ++b)
        line.data[std::size_t(b)] =
            static_cast<std::uint8_t>(header >> (8 * b));
    img.put(mc.persist.logBase + kLineSize, line);

    Machine m(mc);
    const dur::RecoveryReport rep = dur::recover(m, img);
    EXPECT_EQ(rep.recordsScanned, 1u);
    EXPECT_EQ(rep.recordsApplied, 0u);
    EXPECT_EQ(rep.recordsDiscarded, 1u);
}

TEST(Recovery, SurvivingUfoBitsScrubbed)
{
    MachineConfig mc;
    mc.numCores = 1;
    // An image line that crossed the persistence boundary while UFO
    // write-protected (a committer died mid-window): recovery must
    // scrub it, because the rebuilt-empty otable owns nothing.
    PersistentImage img;
    PersistentImage::Line line;
    line.ufo = kUfoBoth;
    img.put(mc.heapBase, line);

    Machine m(mc);
    const dur::RecoveryReport rep = dur::recover(m, img);
    EXPECT_EQ(rep.ufoLinesScrubbed, 1u);
    std::uint64_t left = 0;
    m.memory().forEachUfoLine([&](LineAddr, UfoBits) { ++left; });
    EXPECT_EQ(left, 0u);
}

// ------------------------------------------------- ScheduleTrace v2

TEST(ScheduleTraceV2, CrashFreeTraceKeepsV1ByteFormat)
{
    ScheduleTrace t;
    t.appendBlock(0, 3);
    t.appendBlock(1, 2);
    EXPECT_EQ(t.serialize(), "ufotm-sched v1 0x3 1x2");

    ScheduleTrace back;
    ASSERT_TRUE(ScheduleTrace::parse(t.serialize(), &back));
    EXPECT_EQ(back, t);
    EXPECT_EQ(back.crashStep(), 0u);
}

TEST(ScheduleTraceV2, CrashStepRoundTrips)
{
    ScheduleTrace t;
    t.appendBlock(2, 5);
    t.setCrashStep(123);
    EXPECT_EQ(t.serialize(), "ufotm-sched v2 crash=123 2x5");

    ScheduleTrace back;
    ASSERT_TRUE(ScheduleTrace::parse(t.serialize(), &back));
    EXPECT_EQ(back, t);
    EXPECT_EQ(back.crashStep(), 123u);

    // The crash step is part of trace identity.
    ScheduleTrace plain;
    plain.appendBlock(2, 5);
    EXPECT_FALSE(plain == t);
    t.clear();
    EXPECT_EQ(t.crashStep(), 0u);
}

TEST(ScheduleTraceV2, MalformedCrashFieldsRejected)
{
    ScheduleTrace out;
    EXPECT_FALSE(ScheduleTrace::parse("ufotm-sched v2 0x3", &out));
    EXPECT_FALSE(
        ScheduleTrace::parse("ufotm-sched v2 crash=0 0x3", &out));
    EXPECT_FALSE(
        ScheduleTrace::parse("ufotm-sched v2 crash=x 0x3", &out));
    EXPECT_FALSE(ScheduleTrace::parse("ufotm-sched v3 0x3", &out));
}

// -------------------------------------------- Crash record / replay

TEST(CrashReplay, RecordedScheduleReplaysBitIdentically)
{
    TortureConfig cfg;
    cfg.kind = TxSystemKind::UfoHybrid;
    cfg.workload = TortureWorkload::Kv;
    cfg.seed = 2;
    const CrashTortureResult a = torture::runCrashTorture(cfg);
    ASSERT_TRUE(a.ok) << a.why;
    ASSERT_GT(a.crashStep, 0u);
    EXPECT_EQ(a.schedule.crashStep(), a.crashStep)
        << "crash point must be part of the recorded schedule";
    EXPECT_EQ(a.schedule.serialize().rfind("ufotm-sched v2 crash=", 0),
              0u);

    // File round-trip, then replay the whole crash-recover-check
    // cycle from the parsed trace alone.
    const std::string path =
        testing::TempDir() + "/durability_crash.sched";
    ASSERT_TRUE(a.schedule.saveFile(path));
    ScheduleTrace trace;
    ASSERT_TRUE(ScheduleTrace::loadFile(path, &trace));
    EXPECT_EQ(trace, a.schedule);
    std::remove(path.c_str());

    TortureConfig rcfg = cfg;
    rcfg.replay = &trace;
    const CrashTortureResult b = torture::runCrashTorture(rcfg);
    ASSERT_TRUE(b.ok) << b.why;
    EXPECT_EQ(b.crashStep, a.crashStep);
    EXPECT_EQ(b.recoverJson, a.recoverJson);
    EXPECT_EQ(b.stats, a.stats);
    EXPECT_EQ(b.committedTx, a.committedTx);
    EXPECT_EQ(b.fencedTx, a.fencedTx);
}

// ------------------------------------------------ Crash-torture gate
//
// The acceptance gate: >= 64 (seed x policy) crash runs across the
// two strongly-atomic durable systems, every one recovered and
// checked for prefix consistency.  Split per (backend, policy) so
// ctest parallelizes the sweep.

void
crashGate(TxSystemKind kind, SchedPolicy policy, int seeds)
{
    for (int i = 0; i < seeds; ++i) {
        TortureConfig cfg;
        cfg.kind = kind;
        cfg.workload = TortureWorkload::Kv;
        cfg.sched.policy = policy;
        cfg.opsPerThread = 40;
        cfg.seed = 1 + std::uint64_t(i);
        const CrashTortureResult res = torture::runCrashTorture(cfg);
        EXPECT_TRUE(res.ok)
            << txSystemKindName(kind) << "/" << schedPolicyName(policy)
            << " seed " << cfg.seed << " crash@" << res.crashStep
            << ": " << res.why;
    }
}

TEST(CrashGate, UstmUfoMinClock)
{
    crashGate(TxSystemKind::UstmStrong, SchedPolicy::MinClock, 8);
}

TEST(CrashGate, UstmUfoMaxClock)
{
    crashGate(TxSystemKind::UstmStrong, SchedPolicy::MaxClock, 8);
}

TEST(CrashGate, UstmUfoRandomWalk)
{
    crashGate(TxSystemKind::UstmStrong, SchedPolicy::RandomWalk, 8);
}

TEST(CrashGate, UstmUfoPct)
{
    crashGate(TxSystemKind::UstmStrong, SchedPolicy::Pct, 8);
}

TEST(CrashGate, UfoHybridMinClock)
{
    crashGate(TxSystemKind::UfoHybrid, SchedPolicy::MinClock, 8);
}

TEST(CrashGate, UfoHybridMaxClock)
{
    crashGate(TxSystemKind::UfoHybrid, SchedPolicy::MaxClock, 8);
}

TEST(CrashGate, UfoHybridRandomWalk)
{
    crashGate(TxSystemKind::UfoHybrid, SchedPolicy::RandomWalk, 8);
}

TEST(CrashGate, UfoHybridPct)
{
    crashGate(TxSystemKind::UfoHybrid, SchedPolicy::Pct, 8);
}

} // namespace
} // namespace utm
