/**
 * @file
 * Unit tests for the hybrid layer: abort-handler decisions
 * (Algorithm 3), forced failover, HyTM barrier conflicts, PhTM phase
 * exclusion, and the UFO hybrid's zero-overhead hardware path.
 */

#include <gtest/gtest.h>

#include "btm/btm.hh"
#include "core/tx_system.hh"
#include "hybrid/abort_handler.hh"
#include "hybrid/hytm.hh"
#include "hybrid/phtm.hh"
#include "mem/memory_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"
#include "ustm/ustm.hh"

namespace utm {
namespace {

MachineConfig
quiet(int cores = 2)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

// ------------------------------------------------------ Abort handler

TEST(AbortHandler, DecisionTable)
{
    Machine m(quiet(1));
    TmPolicy policy;
    BtmAbortHandler handler(m, policy);
    AbortHandlerState st;
    m.addThread([&](ThreadContext &tc) {
        using D = BtmAbortHandler::Decision;
        auto decide = [&](AbortReason r) {
            return handler.onAbort(tc, st, BtmAbortException{r, 0});
        };
        // Hard failovers.
        EXPECT_EQ(decide(AbortReason::SetOverflow), D::FailToSoftware);
        EXPECT_EQ(decide(AbortReason::Syscall), D::FailToSoftware);
        EXPECT_EQ(decide(AbortReason::Io), D::FailToSoftware);
        EXPECT_EQ(decide(AbortReason::Exception), D::FailToSoftware);
        EXPECT_EQ(decide(AbortReason::NestingOverflow),
                  D::FailToSoftware);
        // Contention: never fails over by default.
        st.newTransaction();
        for (int i = 0; i < 50; ++i) {
            EXPECT_EQ(decide(AbortReason::Conflict), D::RetryHardware);
            EXPECT_EQ(decide(AbortReason::UfoFault), D::RetryHardware);
            EXPECT_EQ(decide(AbortReason::UfoBitSet),
                      D::RetryHardware);
        }
        // Interrupts: fail over *on* the Nth abort ("after this many
        // aborts, fail over"), so N-1 retries precede the failover.
        st.newTransaction();
        for (int i = 0; i + 1 < policy.interruptFailoverThreshold;
             ++i) {
            EXPECT_EQ(decide(AbortReason::Interrupt),
                      D::RetryHardware);
        }
        EXPECT_EQ(decide(AbortReason::Interrupt), D::FailToSoftware);
        // Page fault: resolved (page materialized), retried.
        st.newTransaction();
        EXPECT_EQ(handler.onAbort(
                      tc, st,
                      BtmAbortException{AbortReason::PageFault,
                                        0x12340000}),
                  D::RetryHardware);
        EXPECT_TRUE(m.memory().pageExists(0x12340000));
        // Forced software wins over everything.
        st.forcedSoftware = true;
        EXPECT_EQ(decide(AbortReason::Explicit), D::FailToSoftware);
    });
    m.run();
}

TEST(AbortHandlerPolicy, ConflictFailoverThreshold)
{
    Machine m(quiet(1));
    TmPolicy policy;
    policy.conflictFailoverThreshold = 3;
    BtmAbortHandler handler(m, policy);
    AbortHandlerState st;
    m.addThread([&](ThreadContext &tc) {
        using D = BtmAbortHandler::Decision;
        BtmAbortException e{AbortReason::Conflict, 0};
        EXPECT_EQ(handler.onAbort(tc, st, e), D::RetryHardware);
        EXPECT_EQ(handler.onAbort(tc, st, e), D::RetryHardware);
        EXPECT_EQ(handler.onAbort(tc, st, e), D::FailToSoftware);
    });
    m.run();
}

// Regression: with explicit_means_conflict (HyTM's barrier aborts),
// Explicit aborts must respect conflictFailoverThreshold exactly like
// Conflict aborts.  The old code counted them but never checked the
// threshold, so HyTM could spin in hardware forever.
TEST(AbortHandlerPolicy, ExplicitAsConflictRespectsThreshold)
{
    Machine m(quiet(1));
    TmPolicy policy;
    policy.conflictFailoverThreshold = 2;
    BtmAbortHandler handler(m, policy,
                            /*explicit_means_conflict=*/true);
    AbortHandlerState st;
    m.addThread([&](ThreadContext &tc) {
        using D = BtmAbortHandler::Decision;
        BtmAbortException e{AbortReason::Explicit, 0};
        EXPECT_EQ(handler.onAbort(tc, st, e), D::RetryHardware);
        EXPECT_EQ(handler.onAbort(tc, st, e), D::FailToSoftware);
        EXPECT_EQ(m.stats().get("tm.failovers.conflict"), 1u);
    });
    m.run();
}

// Regression: interruptFailoverThreshold means "fail over on the Nth
// interrupt abort", matching the conflict threshold's semantics.  The
// old code used '>' and failed over one abort late.
TEST(AbortHandlerPolicy, InterruptFailoverOnNthAbort)
{
    Machine m(quiet(1));
    TmPolicy policy;
    policy.interruptFailoverThreshold = 3;
    BtmAbortHandler handler(m, policy);
    AbortHandlerState st;
    m.addThread([&](ThreadContext &tc) {
        using D = BtmAbortHandler::Decision;
        BtmAbortException e{AbortReason::Interrupt, 0};
        EXPECT_EQ(handler.onAbort(tc, st, e), D::RetryHardware);
        EXPECT_EQ(handler.onAbort(tc, st, e), D::RetryHardware);
        EXPECT_EQ(handler.onAbort(tc, st, e), D::FailToSoftware);
        EXPECT_EQ(m.stats().get("tm.failovers.interrupt"), 1u);
    });
    m.run();
}

// Golden decision table: every abort reason, under each threshold and
// explicit-means-conflict configuration, checked against a literal
// retry/failover string for four consecutive aborts of that reason
// (fresh transaction state per reason).  'R' = RetryHardware,
// 'F' = FailToSoftware.
TEST(AbortHandlerPolicy, GoldenDecisionTable)
{
    struct Row {
        AbortReason reason;
        const char *thresh_off;     // conflictFailoverThreshold = 0
        const char *thresh_two;     // conflictFailoverThreshold = 2
    };
    // With interruptFailoverThreshold = 3 in both configurations.
    static const Row kRows[] = {
        {AbortReason::SetOverflow, "FFFF", "FFFF"},
        {AbortReason::Syscall, "FFFF", "FFFF"},
        {AbortReason::Io, "FFFF", "FFFF"},
        {AbortReason::Exception, "FFFF", "FFFF"},
        {AbortReason::Uncacheable, "FFFF", "FFFF"},
        {AbortReason::NestingOverflow, "FFFF", "FFFF"},
        {AbortReason::PageFault, "RRRR", "RRRR"},
        {AbortReason::Interrupt, "RRFF", "RRFF"},
        {AbortReason::Conflict, "RRRR", "RFFF"},
        {AbortReason::NonTConflict, "RRRR", "RFFF"},
        {AbortReason::UfoBitSet, "RRRR", "RFFF"},
        {AbortReason::UfoFault, "RRRR", "RFFF"},
        // Explicit depends on explicit_means_conflict (below).
    };
    for (bool explicit_conflict : {false, true}) {
        for (int thresh : {0, 2}) {
            Machine m(quiet(1));
            TmPolicy policy;
            policy.interruptFailoverThreshold = 3;
            policy.conflictFailoverThreshold = thresh;
            BtmAbortHandler handler(m, policy, explicit_conflict);
            m.addThread([&](ThreadContext &tc) {
                auto run = [&](AbortReason r, const char *want) {
                    AbortHandlerState st;
                    std::string got;
                    for (int i = 0; i < 4; ++i) {
                        auto d = handler.onAbort(
                            tc, st, BtmAbortException{r, 0});
                        got += d == BtmAbortHandler::Decision::
                                        RetryHardware
                                   ? 'R'
                                   : 'F';
                    }
                    EXPECT_EQ(got, want)
                        << "reason=" << abortReasonName(r)
                        << " thresh=" << thresh
                        << " explicit_conflict=" << explicit_conflict;
                };
                for (const Row &row : kRows)
                    run(row.reason,
                        thresh == 0 ? row.thresh_off : row.thresh_two);
                // Explicit: a conflict when the system says so,
                // otherwise a hard failover.
                if (explicit_conflict)
                    run(AbortReason::Explicit,
                        thresh == 0 ? "RRRR" : "RFFF");
                else
                    run(AbortReason::Explicit, "FFFF");
            });
            m.run();
        }
    }
}

TEST(AbortHandlerPolicy, BackoffGrowsWithAttempts)
{
    Machine m(quiet(1));
    TmPolicy policy;
    BtmAbortHandler handler(m, policy);
    AbortHandlerState st;
    m.addThread([&](ThreadContext &tc) {
        BtmAbortException e{AbortReason::Conflict, 0};
        Cycles t0 = tc.now();
        handler.onAbort(tc, st, e);
        Cycles first = tc.now() - t0;
        for (int i = 0; i < 6; ++i)
            handler.onAbort(tc, st, e);
        t0 = tc.now();
        handler.onAbort(tc, st, e);
        Cycles later = tc.now() - t0;
        EXPECT_GT(later, first * 4);
    });
    m.run();
}

// --------------------------------------------------------- UFO hybrid

TEST(UfoHybrid, HardwarePathHasNoInstrumentation)
{
    // A conflict-free transaction must not touch the otable at all on
    // the hardware path (pay-per-use).
    Machine m(quiet(1));
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    m.memory().materializePage(0x100);
    std::uint64_t barriers_before = 0;
    m.addThread([&](ThreadContext &tc) {
        barriers_before = m.stats().get("ustm.read_barriers") +
                          m.stats().get("ustm.write_barriers");
        sys->atomic(tc, [&](TxHandle &h) {
            EXPECT_EQ(h.path(), TxHandle::Path::Hardware);
            h.write(0x100, h.read(0x100, 8) + 1, 8);
        });
    });
    m.run();
    EXPECT_EQ(m.stats().get("ustm.read_barriers") +
                  m.stats().get("ustm.write_barriers"),
              barriers_before);
    EXPECT_EQ(m.stats().get("tm.commits.hw"), 1u);
}

TEST(UfoHybrid, OverflowFailsOverToSoftware)
{
    MachineConfig mc = quiet(1);
    Machine m(mc);
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    const Addr stride = std::uint64_t(mc.l1Sets) * kLineSize;
    for (unsigned i = 0; i <= mc.l1Ways + 1; ++i)
        m.memory().materializePage(0x200000 + i * stride);
    bool saw_software = false;
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            if (h.path() == TxHandle::Path::Software)
                saw_software = true;
            for (unsigned i = 0; i <= mc.l1Ways + 1; ++i)
                h.write(0x200000 + i * stride, i + 1, 8);
        });
    });
    m.run();
    EXPECT_TRUE(saw_software);
    EXPECT_EQ(m.stats().get("tm.commits.sw"), 1u);
    EXPECT_EQ(m.stats().get("tm.failovers.hard"), 1u);
    for (unsigned i = 0; i <= mc.l1Ways + 1; ++i)
        EXPECT_EQ(m.memory().read(0x200000 + i * stride, 8), i + 1);
}

TEST(UfoHybrid, RequireSoftwareForcesFailover)
{
    Machine m(quiet(1));
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    m.memory().materializePage(0x300);
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.requireSoftware();
            EXPECT_EQ(h.path(), TxHandle::Path::Software);
            h.write(0x300, 5, 8);
        });
    });
    m.run();
    EXPECT_EQ(m.stats().get("tm.failovers.forced"), 1u);
    EXPECT_EQ(m.memory().read(0x300, 8), 5u);
}

TEST(UfoHybrid, HwTxRetriesThroughStmConflict)
{
    // A hardware transaction hitting an STM-owned line takes a UFO
    // fault, aborts, backs off and retries in hardware -- and must
    // NOT fail over (contention never sends transactions to
    // software).
    Machine m(quiet(2));
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    m.memory().materializePage(0x400);
    m.addThread([&](ThreadContext &tc) {
        // Long software transaction owning the line.
        sys->atomic(tc, [&](TxHandle &h) {
            h.requireSoftware();
            h.write(0x400, 1, 8);
            h.ctx().advance(3000);
            h.write(0x400, 2, 8);
        });
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(500);
        sys->atomic(tc, [&](TxHandle &h) {
            std::uint64_t v = h.read(0x400, 8);
            EXPECT_TRUE(v == 0 || v == 2); // Never the intermediate 1.
            h.write(0x408, v, 8);
        });
    });
    m.run();
    EXPECT_GT(m.stats().get("btm.aborts.ufo_fault"), 0u);
    EXPECT_EQ(m.stats().get("tm.failovers.conflict"), 0u);
    EXPECT_EQ(m.stats().get("tm.commits.hw"), 1u);
    EXPECT_EQ(m.stats().get("tm.commits.sw"), 1u);
}

// --------------------------------------------------------------- HyTM

TEST(HyTm, BarrierDetectsStmOwnership)
{
    Machine m(quiet(2));
    auto sys = TxSystem::create(TxSystemKind::HyTm, m);
    sys->setup();
    m.memory().materializePage(0x500);
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.requireSoftware();
            h.write(0x500, 1, 8);
            h.ctx().advance(2000);
            h.write(0x500, 2, 8);
        });
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(300);
        sys->atomic(tc, [&](TxHandle &h) {
            std::uint64_t v = h.read(0x500, 8);
            EXPECT_TRUE(v == 0 || v == 2);
        });
    });
    m.run();
    // The hardware transaction found a conflicting otable record at
    // least once and explicitly aborted.
    EXPECT_GT(m.stats().get("hytm.barrier_conflicts") +
                  m.stats().get("btm.aborts.nont_conflict"),
              0u);
}

// --------------------------------------------------------------- PhTM

TEST(PhTm, SoftwarePhaseExcludesHardware)
{
    Machine m(quiet(2));
    auto sys = TxSystem::create(TxSystemKind::PhTm, m);
    sys->setup();
    m.memory().materializePage(0x600);
    std::vector<TxHandle::Path> t1_paths;
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.requireSoftware();
            h.write(0x600, 1, 8);
            h.ctx().advance(8000); // Long software phase.
        });
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(1000); // Arrive during the software phase.
        for (int i = 0; i < 3; ++i) {
            sys->atomic(tc, [&](TxHandle &h) {
                t1_paths.push_back(h.path());
                h.write(0x640 + i * 64, 1, 8);
            });
        }
    });
    m.run();
    // While the needs-STM transaction runs, arrivals go to software.
    ASSERT_FALSE(t1_paths.empty());
    EXPECT_EQ(t1_paths.front(), TxHandle::Path::Software);
}

TEST(PhTm, CountersReturnToZero)
{
    Machine m(quiet(2));
    auto sys = TxSystem::create(TxSystemKind::PhTm, m);
    sys->setup();
    m.memory().materializePage(0x700);
    for (int t = 0; t < 2; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            for (int i = 0; i < 5; ++i) {
                const bool force = (t == 0 && i % 2 == 0);
                sys->atomic(tc, [&](TxHandle &h) {
                    if (force)
                        h.requireSoftware();
                    Addr a = 0x700 + (t * 5 + i) * 64;
                    h.write(a, 1, 8);
                });
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(PhTm::kStmCountAddr, 8), 0u);
    EXPECT_EQ(m.memory().read(PhTm::kNeedStmAddr, 8), 0u);
}

// ---------------------------------------------------- Unbounded HTM

TEST(UnboundedHtm, LargeTransactionCommitsInHardware)
{
    MachineConfig mc = quiet(1);
    Machine m(mc);
    auto sys = TxSystem::create(TxSystemKind::UnboundedHtm, m);
    sys->setup();
    const Addr stride = std::uint64_t(mc.l1Sets) * kLineSize;
    for (unsigned i = 0; i < 2 * mc.l1Ways; ++i)
        m.memory().materializePage(0x300000 + i * stride);
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            for (unsigned i = 0; i < 2 * mc.l1Ways; ++i)
                h.write(0x300000 + i * stride, i, 8);
        });
    });
    m.run();
    EXPECT_EQ(m.stats().get("tm.commits.hw"), 1u);
    EXPECT_EQ(m.stats().get("btm.set_overflows"), 0u);
}

} // namespace
} // namespace utm
