/**
 * @file
 * Tests for Section 6 side-effect support: deferred (on-commit)
 * actions, compensation (on-abort) actions, and syscalls/IO failing
 * over to the software path.
 */

#include <gtest/gtest.h>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

MachineConfig
quiet(int cores)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

class Deferred : public ::testing::TestWithParam<TxSystemKind>
{
};

TEST_P(Deferred, CommitActionRunsExactlyOnce)
{
    Machine m(quiet(2));
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    const Addr x = heap.allocZeroed(m.initContext(), 8, true);

    int commit_actions = 0;
    int body_runs = 0;
    // Thread 1 creates contention so thread 0's transaction aborts
    // and re-executes at least sometimes.
    m.addThread([&](ThreadContext &tc) {
        for (int i = 0; i < 20; ++i) {
            sys->atomic(tc, [&](TxHandle &h) {
                ++body_runs;
                h.write(x, h.read(x, 8) + 1, 8);
                h.ctx().advance(100);
                h.onCommit([&](ThreadContext &) { ++commit_actions; });
            });
            tc.advance(20);
        }
    });
    m.addThread([&](ThreadContext &tc) {
        for (int i = 0; i < 20; ++i) {
            sys->atomic(tc, [&](TxHandle &h) {
                h.write(x, h.read(x, 8) + 1, 8);
                h.ctx().advance(100);
            });
            tc.advance(20);
        }
    });
    m.run();

    EXPECT_EQ(commit_actions, 20); // Once per committed transaction.
    EXPECT_GE(body_runs, 20);      // Possibly more (re-executions).
    EXPECT_EQ(m.memory().read(x, 8), 40u);
}

TEST_P(Deferred, AbortCompensationRunsPerFailedAttempt)
{
    Machine m(quiet(1));
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    const Addr x = heap.allocZeroed(m.initContext(), 8, true);

    int compensations = 0;
    int commits = 0;
    m.addThread([&](ThreadContext &tc) {
        int attempt = 0;
        sys->atomic(tc, [&](TxHandle &h) {
            h.onAbort([&](ThreadContext &) { ++compensations; });
            h.write(x, 7, 8);
            // Force exactly two extra attempts on systems with a
            // software path.
            if (attempt++ < 2 && h.path() == TxHandle::Path::Hardware)
                h.requireSoftware();
            h.onCommit([&](ThreadContext &) { ++commits; });
        });
    });
    m.run();

    EXPECT_EQ(commits, 1);
    if (GetParam() == TxSystemKind::UfoHybrid) {
        EXPECT_GE(compensations, 1); // The aborted hardware attempt.
    }
    EXPECT_EQ(m.memory().read(x, 8), 7u);
}

TEST_P(Deferred, ActionsOrdered)
{
    Machine m(quiet(1));
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    const Addr x = heap.allocZeroed(m.initContext(), 8, true);

    std::vector<int> order;
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            order.clear(); // Idempotent across re-execution.
            h.write(x, 1, 8);
            h.onCommit([&](ThreadContext &) { order.push_back(1); });
            h.onCommit([&](ThreadContext &) { order.push_back(2); });
        });
    });
    m.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

INSTANTIATE_TEST_SUITE_P(
    Systems, Deferred,
    ::testing::Values(TxSystemKind::UfoHybrid, TxSystemKind::PhTm,
                      TxSystemKind::UstmStrong, TxSystemKind::Tl2,
                      TxSystemKind::UnboundedHtm),
    [](const ::testing::TestParamInfo<TxSystemKind> &info) {
        std::string n = txSystemKindName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(SyscallInTx, FailsOverToSoftware)
{
    Machine m(quiet(1));
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    TxHeap heap(m);
    const Addr x = heap.allocZeroed(m.initContext(), 8, true);

    TxHandle::Path final_path = TxHandle::Path::Raw;
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.write(x, 5, 8);
            h.syscall(); // sbrk/gettimeofday-style idempotent call.
            final_path = h.path();
        });
    });
    m.run();
    EXPECT_EQ(final_path, TxHandle::Path::Software);
    EXPECT_EQ(m.stats().get("tm.failovers.hard"), 1u);
    EXPECT_EQ(m.memory().read(x, 8), 5u);
}

TEST(SyscallInTx, IoAlsoFailsOver)
{
    Machine m(quiet(1));
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    int io_done = 0;
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.io();
            // Deferred output: runs once, after the commit.
            h.onCommit([&](ThreadContext &) { ++io_done; });
        });
    });
    m.run();
    EXPECT_EQ(io_done, 1);
    EXPECT_EQ(m.stats().get("tm.commits.sw"), 1u);
}

} // namespace
} // namespace utm

namespace utm {
namespace {

class Nesting : public ::testing::TestWithParam<TxSystemKind>
{
};

TEST_P(Nesting, NestedAtomicFlattens)
{
    Machine m([] {
        MachineConfig mc;
        mc.numCores = 2;
        mc.timerQuantum = 0;
        return mc;
    }());
    auto sys = TxSystem::create(GetParam(), m);
    sys->setup();
    TxHeap heap(m);
    const Addr x = heap.allocZeroed(m.initContext(), 8, true);
    const Addr y = heap.allocZeroed(m.initContext(), 8, true);

    int outer_commit_actions = 0;
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.write(x, 1, 8);
            h.onCommit(
                [&](ThreadContext &) { ++outer_commit_actions; });
            // Nested transaction: flattens into the enclosing one.
            sys->atomic(tc, [&](TxHandle &inner) {
                inner.write(y, inner.read(x, 8) + 1, 8);
            });
            EXPECT_EQ(h.read(y, 8), 2u); // Inner writes visible.
        });
    });
    m.run();
    EXPECT_EQ(m.memory().read(x, 8), 1u);
    EXPECT_EQ(m.memory().read(y, 8), 2u);
    EXPECT_EQ(outer_commit_actions, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Systems, Nesting,
    ::testing::Values(TxSystemKind::UfoHybrid, TxSystemKind::HyTm,
                      TxSystemKind::PhTm, TxSystemKind::UstmStrong,
                      TxSystemKind::Tl2, TxSystemKind::UnboundedHtm,
                      TxSystemKind::NoTm),
    [](const ::testing::TestParamInfo<TxSystemKind> &info) {
        std::string n = txSystemKindName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace utm
