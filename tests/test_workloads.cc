/**
 * @file
 * Integration tests: each STAMP-like workload must validate (exact
 * serializability invariants) under every TM system and several
 * thread counts — exercising failover, otable chains, capacity
 * overflow, and phase switching end to end.
 */

#include <gtest/gtest.h>

#include "stamp/failover_ubench.hh"
#include "stamp/genome.hh"
#include "stamp/intruder.hh"
#include "stamp/kmeans.hh"
#include "stamp/labyrinth.hh"
#include "stamp/ssca2.hh"
#include "stamp/vacation.hh"
#include "stamp/workload.hh"

namespace utm {
namespace {

struct WlCase
{
    const char *workload;
    bool high;
    TxSystemKind kind;
    int threads;
};

std::unique_ptr<Workload>
makeWorkload(const WlCase &c)
{
    const std::string w = c.workload;
    if (w == "kmeans") {
        KmeansParams p = KmeansParams::contention(c.high);
        p.points = 256;
        p.iterations = 2;
        return std::make_unique<KmeansWorkload>(p);
    }
    if (w == "vacation") {
        VacationParams p = VacationParams::contention(c.high);
        p.itemsPerRelation = 128;
        p.totalTasks = 64;
        return std::make_unique<VacationWorkload>(p);
    }
    if (w == "genome") {
        GenomeParams p;
        p.segments = 256;
        p.uniquePool = 128;
        return std::make_unique<GenomeWorkload>(p);
    }
    if (w == "intruder") {
        IntruderParams p;
        p.flows = 24;
        return std::make_unique<IntruderWorkload>(p);
    }
    if (w == "labyrinth") {
        LabyrinthParams p;
        p.width = 12;
        p.height = 12;
        p.totalTasks = 12;
        return std::make_unique<LabyrinthWorkload>(p);
    }
    if (w == "ssca2") {
        Ssca2Params p;
        p.nodes = 64;
        p.edges = 256;
        return std::make_unique<Ssca2Workload>(p);
    }
    if (w == "ubench") {
        FailoverParams p;
        p.txPerThread = 64;
        p.failoverRate = 0.3;
        return std::make_unique<FailoverUbench>(p);
    }
    ADD_FAILURE() << "unknown workload " << w;
    return nullptr;
}

class WorkloadValidates : public ::testing::TestWithParam<WlCase>
{
};

TEST_P(WorkloadValidates, InvariantHolds)
{
    const WlCase c = GetParam();
    auto w = makeWorkload(c);
    ASSERT_NE(w, nullptr);

    RunConfig cfg;
    cfg.kind = c.kind;
    cfg.threads = c.threads;
    cfg.machine.seed = 42;
    RunResult res = runWorkload(*w, cfg);

    EXPECT_TRUE(res.valid)
        << c.workload << " on " << txSystemKindName(c.kind) << " with "
        << c.threads << " threads";
    EXPECT_GT(res.cycles, 0u);
}

std::vector<WlCase>
cases()
{
    std::vector<WlCase> out;
    const TxSystemKind kinds[] = {
        TxSystemKind::UnboundedHtm, TxSystemKind::UfoHybrid,
        TxSystemKind::HyTm,         TxSystemKind::PhTm,
        TxSystemKind::Ustm,         TxSystemKind::UstmStrong,
        TxSystemKind::Tl2,
    };
    for (TxSystemKind k : kinds) {
        for (int t : {1, 4}) {
            out.push_back({"kmeans", true, k, t});
            out.push_back({"kmeans", false, k, t});
            out.push_back({"vacation", true, k, t});
            out.push_back({"vacation", false, k, t});
            out.push_back({"genome", false, k, t});
            out.push_back({"labyrinth", false, k, t});
            out.push_back({"intruder", false, k, t});
            out.push_back({"ssca2", false, k, t});
            // The forced-failover knob needs a software path; skip it
            // for pure-HTM.
            if (k != TxSystemKind::UnboundedHtm)
                out.push_back({"ubench", false, k, t});
        }
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadValidates, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<WlCase> &info) {
        std::string name = info.param.workload;
        name += info.param.high ? "_hi_" : "_lo_";
        name += txSystemKindName(info.param.kind);
        name += "_t" + std::to_string(info.param.threads);
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace utm
