/**
 * @file
 * Tests for the sharded KV store and sharded tmserve configurations
 * (src/svc/sharded_store.hh, MachineConfig::otableShards):
 *
 *  - shardOfKey routing: stable, in-range, and non-degenerate (every
 *    shard owns keys) for the bench keyspaces;
 *  - ShardedKvStore round-trips under NoTm: per-shard routing,
 *    cross-shard scan counts, xfer value movement, structural check;
 *  - xfer conservation: the sum over all values is invariant under
 *    any sequence of transfers (the property the torture shadow
 *    oracle checks across aborts);
 *  - the sharded service runs valid on every TxSystemKind and its
 *    shard.* counter families sum to their aggregates;
 *  - double-run byte-identity of the exported stats-JSON for sharded
 *    configs across TxSystemKind x scheduler policy;
 *  - tmtorture kv with kvShards > 1: adversarial schedules against
 *    the partitioned store, with the backend-invariant oracle armed
 *    at every preemption point — a canonical-order violation would
 *    deadlock (hang) and an unbalanced undo log after a multi-shard
 *    RMW abort would fail the oracle.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/tx_system.hh"
#include "sim/machine.hh"
#include "sim/scheduler.hh"
#include "svc/service.hh"
#include "torture/torture.hh"

namespace utm {
namespace {

using svc::ShardedKvStore;
using svc::SvcParams;

constexpr TxSystemKind kAllKinds[] = {
    TxSystemKind::NoTm,       TxSystemKind::UnboundedHtm,
    TxSystemKind::UfoHybrid,  TxSystemKind::HyTm,
    TxSystemKind::PhTm,       TxSystemKind::Ustm,
    TxSystemKind::UstmStrong, TxSystemKind::Tl2,
};

std::string
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return {};
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/** Sharded service shape: xfer-heavy so cross-shard paths run. */
SvcParams
shardedParams(unsigned shards)
{
    SvcParams p;
    p.shards = shards;
    p.load.keyspace = 48;
    p.load.requestsPerClient = 12;
    p.load.seed = 3;
    p.load.mix.getPct = 30;
    p.load.mix.xferPct = 20;
    p.mapBuckets = 8;
    return p;
}

RunConfig
shardedRunConfig(TxSystemKind kind, int threads = 3)
{
    RunConfig cfg;
    cfg.kind = kind;
    cfg.threads = threads;
    cfg.machine.seed = 11;
    cfg.machine.timerQuantum = 0;
    return cfg;
}

// ----------------------------------------------------------- Routing

TEST(ShardRouting, StableInRangeAndNonDegenerate)
{
    for (unsigned shards : {2u, 4u, 8u}) {
        std::set<unsigned> seen;
        for (std::uint64_t key = 1; key <= 128; ++key) {
            const unsigned s = svc::shardOfKey(key, shards);
            EXPECT_LT(s, shards);
            EXPECT_EQ(s, svc::shardOfKey(key, shards)); // Stable.
            seen.insert(s);
        }
        // Non-degenerate partition: every shard owns keys, so a
        // "sharded" bench config cannot silently collapse to one.
        EXPECT_EQ(seen.size(), shards) << shards << " shards";
    }
    // shards <= 1 routes everything to shard 0.
    EXPECT_EQ(svc::shardOfKey(7, 1), 0u);
    EXPECT_EQ(svc::shardOfKey(7, 0), 0u);
}

// ---------------------------------------------------- ShardedKvStore

TEST(ShardedKvStore, RoundTripsAndRoutesUnderNoTm)
{
    constexpr unsigned kShards = 4;
    MachineConfig mc;
    mc.numCores = 1;
    mc.otableShards = kShards;
    Machine m(mc);
    auto sys = TxSystem::create(TxSystemKind::NoTm, m);
    sys->setup();

    const std::uint64_t keyspace = 32;
    ShardedKvStore store =
        ShardedKvStore::create(m.initContext(), 4, keyspace, kShards);
    store.populate(m.initContext());
    ASSERT_EQ(store.shards(), kShards);

    // populate() split the key set by the routing hash.
    std::size_t total = 0;
    for (unsigned s = 0; s < kShards; ++s) {
        for (std::uint64_t key : store.shardKeys(s))
            EXPECT_EQ(store.shardOf(key), s);
        total += store.shardKeys(s).size();
    }
    EXPECT_EQ(total, keyspace);

    sys->atomic(m.initContext(), [&](TxHandle &h) {
        std::uint64_t v = 0;
        EXPECT_TRUE(store.get(h, 5, &v));
        EXPECT_EQ(v, 500u); // populate() value: key * 100.
        EXPECT_FALSE(store.get(h, keyspace + 1, &v));

        EXPECT_TRUE(store.put(h, 5, 777));
        std::uint64_t nv = 0;
        EXPECT_TRUE(store.rmw(h, 5, 3, &nv));
        EXPECT_EQ(nv, 780u);

        // A full wrap-around scan sees every key exactly once, across
        // all shards.
        EXPECT_EQ(store.scan(h, 10, int(keyspace)), int(keyspace));

        std::uint64_t raw = 0;
        EXPECT_TRUE(store.rawGet(h.ctx(), 5, &raw));
        EXPECT_EQ(raw, 780u);
    });
    EXPECT_TRUE(store.check(m.initContext()));
}

TEST(ShardedKvStore, ScanParticipantsMatchesKeyOwnership)
{
    constexpr unsigned kShards = 4;
    MachineConfig mc;
    mc.numCores = 1;
    mc.otableShards = kShards;
    Machine m(mc);

    const std::uint64_t keyspace = 24;
    ShardedKvStore store =
        ShardedKvStore::create(m.initContext(), 4, keyspace, kShards);
    for (std::uint64_t start = 1; start <= keyspace; ++start) {
        for (int len : {1, 3, 8}) {
            std::set<unsigned> owners;
            for (int i = 0; i < len; ++i)
                owners.insert(
                    store.shardOf(1 + (start - 1 + i) % keyspace));
            EXPECT_EQ(store.scanParticipants(start, len), owners.size())
                << "start " << start << " len " << len;
        }
    }
}

TEST(ShardedKvStore, XferMovesValueAndConservesSum)
{
    constexpr unsigned kShards = 4;
    MachineConfig mc;
    mc.numCores = 1;
    mc.otableShards = kShards;
    Machine m(mc);
    auto sys = TxSystem::create(TxSystemKind::NoTm, m);
    sys->setup();

    const std::uint64_t keyspace = 16;
    ShardedKvStore store =
        ShardedKvStore::create(m.initContext(), 4, keyspace, kShards);
    store.populate(m.initContext());

    auto sumAll = [&] {
        std::uint64_t sum = 0;
        for (std::uint64_t key = 1; key <= keyspace; ++key) {
            std::uint64_t v = 0;
            EXPECT_TRUE(store.rawGet(m.initContext(), key, &v));
            sum += v;
        }
        return sum;
    };
    const std::uint64_t sum0 = sumAll();

    // Pick a cross-shard pair (the hash guarantees one exists for
    // this keyspace: both non-degenerate by ShardRouting above).
    std::uint64_t from = 1, to = 2;
    while (store.shardOf(from) == store.shardOf(to))
        ++to;

    sys->atomic(m.initContext(), [&](TxHandle &h) {
        std::uint64_t before_from = 0, before_to = 0;
        EXPECT_TRUE(store.get(h, from, &before_from));
        EXPECT_TRUE(store.get(h, to, &before_to));

        std::uint64_t new_from = 0, new_to = 0;
        EXPECT_TRUE(store.xfer(h, from, to, 25, &new_from, &new_to));
        EXPECT_EQ(new_from, before_from - 25);
        EXPECT_EQ(new_to, before_to + 25);

        // Either key absent: no partial effect.
        EXPECT_FALSE(store.xfer(h, from, keyspace + 1, 5));
        std::uint64_t v = 0;
        EXPECT_TRUE(store.get(h, from, &v));
        EXPECT_EQ(v, new_from);
    });

    // Transfers in both canonical directions, same-shard included.
    sys->atomic(m.initContext(), [&](TxHandle &h) {
        EXPECT_TRUE(store.xfer(h, to, from, 7));
        EXPECT_TRUE(store.xfer(h, from, to, 3));
    });
    EXPECT_EQ(sumAll(), sum0);
    EXPECT_TRUE(store.check(m.initContext()));
}

// ----------------------------------------------------------- Service

TEST(ShardedService, ServesEveryRequestOnEveryBackend)
{
    for (TxSystemKind kind : kAllKinds) {
        const SvcParams p = shardedParams(4);
        const RunResult res =
            svc::runService(p, shardedRunConfig(kind));
        ASSERT_TRUE(res.valid) << txSystemKindName(kind);
        const std::uint64_t expect =
            std::uint64_t(p.load.requestsPerClient) * 3;
        EXPECT_EQ(res.stat("svc.requests"), expect)
            << txSystemKindName(kind);
        EXPECT_EQ(res.stat("shard.requests"), expect)
            << txSystemKindName(kind);
        // Cross-shard traffic actually ran (xfers are 20% of load and
        // the hash spreads 48 keys over 4 shards).
        EXPECT_GT(res.stat("shard.cross.commits"), 0u)
            << txSystemKindName(kind);
    }
}

TEST(ShardedService, ShardCounterFamiliesSumToAggregates)
{
    constexpr unsigned kShards = 4;
    SvcParams p = shardedParams(kShards);
    p.load.requestsPerClient = 30;
    // UstmStrong: every transaction takes the software path, so the
    // ustm-level shard.acquires family is guaranteed non-empty.
    const RunResult res = svc::runService(
        p, shardedRunConfig(TxSystemKind::UstmStrong, 4));
    ASSERT_TRUE(res.valid);

    std::uint64_t per_shard = 0;
    for (unsigned s = 0; s < kShards; ++s)
        per_shard +=
            res.stat(std::string("shard.requests.") + std::to_string(s));
    EXPECT_EQ(per_shard, res.stat("shard.requests"));
    EXPECT_EQ(res.stat("shard.requests"), res.stat("svc.requests"));

    // Cross-shard attempt attribution: total attempts on cross-shard
    // requests = their commits + their aborts.
    EXPECT_EQ(res.stat("shard.cross"),
              res.stat("shard.cross.commits") +
                  res.stat("shard.cross.aborts"));
    // Every request has a participant sample; cross-shard requests
    // are exactly the multi-participant ones.
    EXPECT_EQ(res.hist("shard.participants").samples(),
              res.stat("svc.requests"));
    EXPECT_GE(res.hist("shard.participants").max(), 2u);

    // The USTM-level per-shard acquisition family.
    std::uint64_t acq = 0;
    for (unsigned s = 0; s < kShards; ++s)
        acq +=
            res.stat(std::string("shard.acquires.") + std::to_string(s));
    EXPECT_EQ(acq, res.stat("shard.acquires"));
    EXPECT_GT(acq, 0u);
}

TEST(ShardedService, OpenLoopShedsPerShard)
{
    SvcParams p = shardedParams(4);
    p.load.openLoop = true;
    p.load.meanInterarrival = 8;
    p.load.requestsPerClient = 60;
    p.maxQueueDepth = 2;
    const RunResult res =
        svc::runService(p, shardedRunConfig(TxSystemKind::Ustm, 4));
    ASSERT_TRUE(res.valid);
    ASSERT_GT(res.stat("shard.shed"), 0u);

    std::uint64_t per_shard = 0;
    for (unsigned s = 0; s < 4; ++s)
        per_shard +=
            res.stat(std::string("shard.shed.") + std::to_string(s));
    EXPECT_EQ(per_shard, res.stat("shard.shed"));
    EXPECT_EQ(res.stat("shard.shed"), res.stat("svc.shed"));
    EXPECT_EQ(res.stat("svc.requests") + res.stat("svc.shed"), 60u * 4);
}

TEST(ShardedService, DoubleRunStatsJsonByteIdentical)
{
    // The determinism contract extended to sharded configs: the
    // adversarial policies (the ones tmtorture drives) plus the
    // default, on every backend.
    constexpr SchedPolicy kPolicies[] = {
        SchedPolicy::MinClock, SchedPolicy::RandomWalk, SchedPolicy::Pct};
    for (TxSystemKind kind : kAllKinds) {
        for (SchedPolicy policy : kPolicies) {
            SvcParams p = shardedParams(4);
            p.load.requestsPerClient = 8;
            std::string text[2];
            for (int run = 0; run < 2; ++run) {
                RunConfig cfg = shardedRunConfig(kind);
                cfg.machine.sched.policy = policy;
                cfg.statsJsonPath = ::testing::TempDir() +
                                    "/utm_shard_det_" +
                                    std::to_string(run) + ".json";
                const RunResult res = svc::runService(p, cfg);
                ASSERT_TRUE(res.valid)
                    << txSystemKindName(kind) << "/"
                    << schedPolicyName(policy);
                text[run] = readWholeFile(cfg.statsJsonPath);
            }
            ASSERT_FALSE(text[0].empty());
            EXPECT_EQ(text[0], text[1])
                << "stats-JSON diverged across identical sharded runs: "
                << txSystemKindName(kind) << "/"
                << schedPolicyName(policy);
        }
    }
}

// ------------------------------------------------- sharded tmtorture

torture::TortureConfig
shardedKvTortureConfig(TxSystemKind kind, SchedPolicy policy,
                       std::uint64_t seed)
{
    torture::TortureConfig cfg;
    cfg.kind = kind;
    cfg.workload = torture::TortureWorkload::Kv;
    cfg.kvShards = 4;
    cfg.threads = 4;
    cfg.opsPerThread = 25;
    cfg.seed = seed;
    cfg.sched.policy = policy;
    cfg.sched.pctExpectedSteps = 1u << 11;
    return cfg;
}

TEST(ShardedKvTorture, CanonicalOrderSurvivesAdversarialSchedules)
{
    // Random-walk and PCT preempt inside cross-shard xfers at every
    // shared-memory step.  A canonical-order violation would deadlock
    // two xfers acquiring opposite shard orders; an unwind that left
    // one shard's undo log unbalanced after a multi-shard RMW abort
    // fails the backend-invariant oracle at the next preemption.
    for (TxSystemKind kind :
         {TxSystemKind::UfoHybrid, TxSystemKind::UstmStrong,
          TxSystemKind::Tl2}) {
        for (SchedPolicy policy :
             {SchedPolicy::RandomWalk, SchedPolicy::Pct}) {
            for (std::uint64_t seed : {1, 2, 3}) {
                const auto res = torture::runTorture(
                    shardedKvTortureConfig(kind, policy, seed));
                EXPECT_TRUE(res.ok())
                    << txSystemKindName(kind) << "/"
                    << schedPolicyName(policy) << " seed " << seed
                    << ": " << res.oracle << ": " << res.why;
            }
        }
    }
}

TEST(ShardedKvTorture, StronglyAtomicBackendsPassRawReadOracle)
{
    for (TxSystemKind kind :
         {TxSystemKind::UnboundedHtm, TxSystemKind::UfoHybrid,
          TxSystemKind::UstmStrong}) {
        const auto res = torture::runTorture(shardedKvTortureConfig(
            kind, SchedPolicy::RandomWalk, 7));
        EXPECT_TRUE(res.ok()) << txSystemKindName(kind) << ": "
                              << res.oracle << ": " << res.why;
        EXPECT_GT(res.rawReads, 0u) << txSystemKindName(kind);
    }
}

TEST(ShardedKvTorture, DeterministicAcrossIdenticalRuns)
{
    const auto cfg = shardedKvTortureConfig(TxSystemKind::UfoHybrid,
                                            SchedPolicy::Pct, 9);
    const auto a = torture::runTorture(cfg);
    const auto b = torture::runTorture(cfg);
    ASSERT_TRUE(a.ok()) << a.oracle << ": " << a.why;
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.stats, b.stats);
}

} // namespace
} // namespace utm
