/**
 * @file
 * Figure-shape regression tests: small-scale runs asserting the
 * *orderings* the paper's evaluation reports, so a change that breaks
 * a reproduced result fails CI rather than just bending a curve.
 */

#include <gtest/gtest.h>

#include "stamp/failover_ubench.hh"
#include "stamp/kmeans.hh"
#include "stamp/vacation.hh"
#include "stamp/workload.hh"

namespace utm {
namespace {

RunResult
runKind(Workload &w, TxSystemKind kind, int threads)
{
    RunConfig cfg;
    cfg.kind = kind;
    cfg.threads = threads;
    cfg.machine.seed = 42;
    RunResult r = runWorkload(w, cfg);
    EXPECT_TRUE(r.valid);
    return r;
}

template <typename Params, typename WorkloadT>
Cycles
cyclesFor(const Params &p, TxSystemKind kind, int threads)
{
    WorkloadT w(p);
    return runKind(w, kind, threads).cycles;
}

TEST(FigureShapes, KmeansHybridTracksUnboundedHtm)
{
    // Figure 5 kmeans: <1% gap between the UFO hybrid and the
    // unbounded HTM (almost everything commits in hardware).
    KmeansParams p = KmeansParams::contention(true);
    p.points = 512;
    const Cycles unbounded =
        cyclesFor<KmeansParams, KmeansWorkload>(
            p, TxSystemKind::UnboundedHtm, 8);
    const Cycles hybrid = cyclesFor<KmeansParams, KmeansWorkload>(
        p, TxSystemKind::UfoHybrid, 8);
    EXPECT_NEAR(double(hybrid) / double(unbounded), 1.0, 0.02);
}

TEST(FigureShapes, VacationLowHybridBeatsOtherHybrids)
{
    // Figure 5 vacation-low: the UFO hybrid outperforms HyTM and
    // PhTM (only the transactions that must fail over do).
    VacationParams p = VacationParams::contention(false);
    p.totalTasks = 128;
    VacationWorkload w1(p), w2(p), w3(p);
    const Cycles hybrid = runKind(w1, TxSystemKind::UfoHybrid, 8).cycles;
    const Cycles hytm = runKind(w2, TxSystemKind::HyTm, 8).cycles;
    const Cycles phtm = runKind(w3, TxSystemKind::PhTm, 8).cycles;
    EXPECT_LT(hybrid, hytm);
    EXPECT_LT(hybrid, phtm);
}

TEST(FigureShapes, VacationHighOverflowsLessThanLow)
{
    // Section 5.2: the hybrids perform better in high contention
    // because the low-contention configuration has more transactions
    // that overflow the cache.
    VacationParams lo = VacationParams::contention(false);
    VacationParams hi = VacationParams::contention(true);
    lo.totalTasks = hi.totalTasks = 128;
    VacationWorkload wlo(lo), whi(hi);
    const RunResult rlo = runKind(wlo, TxSystemKind::UfoHybrid, 8);
    const RunResult rhi = runKind(whi, TxSystemKind::UfoHybrid, 8);
    EXPECT_GT(rlo.stat("btm.aborts.set_overflow"),
              rhi.stat("btm.aborts.set_overflow"));
}

TEST(FigureShapes, UbenchZeroFailoverMatchesPureHtm)
{
    // Figure 7b at 0%: the UFO hybrid is equivalent to the pure HTM;
    // PhTM pays a small counter-check premium; HyTM pays barriers.
    FailoverParams p;
    p.txPerThread = 128;
    p.failoverRate = 0.0;
    FailoverUbench w1(p), w2(p), w3(p), w4(p);
    const Cycles pure =
        runKind(w1, TxSystemKind::UnboundedHtm, 8).cycles;
    const Cycles hybrid = runKind(w2, TxSystemKind::UfoHybrid, 8).cycles;
    const Cycles phtm = runKind(w3, TxSystemKind::PhTm, 8).cycles;
    const Cycles hytm = runKind(w4, TxSystemKind::HyTm, 8).cycles;
    EXPECT_NEAR(double(hybrid) / double(pure), 1.0, 0.02);
    EXPECT_GT(double(phtm) / double(pure), 1.0);
    EXPECT_LT(double(phtm) / double(pure), 1.3);
    EXPECT_GT(double(hytm) / double(pure), 1.2);
}

TEST(FigureShapes, UbenchPhtmCollapsesAtLowFailover)
{
    // Figure 7a: at a 10% failover rate PhTM is already STM-like,
    // while the UFO hybrid retains most of its hardware advantage.
    FailoverParams p;
    p.txPerThread = 128;
    p.failoverRate = 0.10;
    FailoverUbench w1(p), w2(p), w3(p);
    const Cycles hybrid = runKind(w1, TxSystemKind::UfoHybrid, 8).cycles;
    const Cycles phtm = runKind(w2, TxSystemKind::PhTm, 8).cycles;
    p.failoverRate = 0.0;
    FailoverUbench wstm(p);
    const Cycles stm =
        runKind(wstm, TxSystemKind::UstmStrong, 8).cycles;
    EXPECT_LT(hybrid, phtm);
    EXPECT_LT(double(phtm), 1.35 * double(stm)); // STM-like.
    EXPECT_LT(2 * hybrid, std::uint64_t(1.35 * double(stm)));
}

TEST(FigureShapes, RequesterWinsPolicyTanks)
{
    // Figure 8 bar 1: naive hardware CM costs a first-order factor in
    // a contended benchmark.
    KmeansParams p = KmeansParams::contention(true);
    p.points = 1024;
    KmeansWorkload w1(p), w2(p);
    RunConfig good;
    good.kind = TxSystemKind::UfoHybrid;
    good.threads = 8;
    good.machine.seed = 42;
    RunConfig naive = good;
    naive.policy.btm.cm = BtmPolicy::Cm::RequesterWins;
    naive.policy.conflictFailoverThreshold = 5;
    const Cycles g = runWorkload(w1, good).cycles;
    const Cycles n = runWorkload(w2, naive).cycles;
    EXPECT_GT(double(n), 2.0 * double(g));
}

} // namespace
} // namespace utm
