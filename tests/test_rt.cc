/**
 * @file
 * Unit + property tests for the simulated-memory runtime: heap,
 * sorted list, hash set, and chained map, including concurrent
 * property sweeps under the UFO hybrid.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "rt/tx_hashset.hh"
#include "rt/tx_list.hh"
#include "rt/tx_map.hh"
#include "rt/tx_queue.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

MachineConfig
quiet(int cores = 4)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

// ----------------------------------------------------------------- Heap

TEST(Heap, AllocationsDisjointAndAligned)
{
    Machine m(quiet(1));
    TxHeap heap(m);
    ThreadContext &tc = m.initContext();
    std::vector<std::pair<Addr, std::uint64_t>> blocks;
    for (std::uint64_t sz : {1u, 8u, 24u, 63u, 64u, 65u, 200u, 4096u}) {
        Addr a = heap.alloc(tc, sz);
        EXPECT_EQ(a % 8, 0u);
        if (sz <= kLineSize) {
            EXPECT_EQ(lineOf(a), lineOf(a + sz - 1))
                << "sub-line block straddles a line";
        } else {
            EXPECT_EQ(lineOffset(a), 0u);
        }
        for (auto &[b, bsz] : blocks)
            EXPECT_TRUE(a + sz <= b || b + bsz <= a);
        blocks.emplace_back(a, sz);
    }
}

TEST(Heap, FreeListReuse)
{
    Machine m(quiet(1));
    TxHeap heap(m);
    ThreadContext &tc = m.initContext();
    Addr a = heap.alloc(tc, 24, true);
    heap.free(tc, a, 24, true);
    Addr b = heap.alloc(tc, 24, true);
    EXPECT_EQ(a, b);
}

TEST(Heap, ZeroedAllocationClearsRecycledBlock)
{
    Machine m(quiet(1));
    TxHeap heap(m);
    ThreadContext &tc = m.initContext();
    Addr a = heap.alloc(tc, 64, true);
    tc.store(a, 0xffffffffffffffffull, 8);
    heap.free(tc, a, 64, true);
    Addr b = heap.allocZeroed(tc, 64, true);
    ASSERT_EQ(a, b);
    EXPECT_EQ(tc.load(b, 8), 0u);
}

TEST(Heap, BytesAccounting)
{
    Machine m(quiet(1));
    TxHeap heap(m);
    ThreadContext &tc = m.initContext();
    std::uint64_t before = heap.bytesInUse();
    Addr a = heap.alloc(tc, 100, true);
    EXPECT_GT(heap.bytesInUse(), before);
    heap.free(tc, a, 100, true);
    EXPECT_EQ(heap.bytesInUse(), before);
}

TEST(Heap, PagesPrefaulted)
{
    Machine m(quiet(1));
    TxHeap heap(m);
    ThreadContext &tc = m.initContext();
    Addr a = heap.alloc(tc, 8192, true);
    EXPECT_TRUE(m.memory().pageExists(a));
    EXPECT_TRUE(m.memory().pageExists(a + 8191));
}

// --------------------------------------------------------------- TxList

class RtFixture : public ::testing::Test
{
  protected:
    RtFixture() : machine_(quiet()), heap_(machine_)
    {
        sys_ = TxSystem::create(TxSystemKind::NoTm, machine_);
    }

    void
    raw(const std::function<void(TxHandle &)> &fn)
    {
        sys_->atomic(machine_.initContext(), fn);
    }

    Machine machine_;
    TxHeap heap_;
    std::unique_ptr<TxSystem> sys_;
};

TEST_F(RtFixture, ListInsertSortedLookup)
{
    TxList list = TxList::create(machine_.initContext(), heap_);
    raw([&](TxHandle &h) {
        EXPECT_TRUE(list.insert(h, 30, 300));
        EXPECT_TRUE(list.insert(h, 10, 100));
        EXPECT_TRUE(list.insert(h, 20, 200));
        EXPECT_FALSE(list.insert(h, 20, 999)); // Duplicate.
        EXPECT_EQ(list.size(h), 3u);
        EXPECT_EQ(list.keys(h),
                  (std::vector<std::uint64_t>{10, 20, 30}));
        std::uint64_t v = 0;
        EXPECT_TRUE(list.lookup(h, 20, &v));
        EXPECT_EQ(v, 200u);
        EXPECT_FALSE(list.lookup(h, 25));
    });
}

TEST_F(RtFixture, ListRemove)
{
    TxList list = TxList::create(machine_.initContext(), heap_);
    raw([&](TxHandle &h) {
        for (std::uint64_t k : {5, 1, 9, 3})
            list.insert(h, k, k * 10);
        EXPECT_TRUE(list.remove(h, 1));  // Head.
        EXPECT_TRUE(list.remove(h, 9));  // Tail.
        EXPECT_FALSE(list.remove(h, 7)); // Absent.
        EXPECT_EQ(list.keys(h), (std::vector<std::uint64_t>{3, 5}));
    });
}

// ------------------------------------------------------------ TxHashSet

TEST_F(RtFixture, HashSetInsertContains)
{
    TxHashSet set =
        TxHashSet::create(machine_.initContext(), heap_, 64);
    raw([&](TxHandle &h) {
        EXPECT_EQ(set.capacity(h), 64u);
        for (std::uint64_t k = 1; k <= 40; ++k)
            EXPECT_TRUE(set.insert(h, k));
        for (std::uint64_t k = 1; k <= 40; ++k) {
            EXPECT_FALSE(set.insert(h, k)); // Duplicates rejected.
            EXPECT_TRUE(set.contains(h, k));
        }
        EXPECT_FALSE(set.contains(h, 41));
        EXPECT_EQ(set.count(h), 40u);
    });
}

TEST_F(RtFixture, HashSetProbeWraparound)
{
    TxHashSet set = TxHashSet::create(machine_.initContext(), heap_, 4);
    raw([&](TxHandle &h) {
        // Fill all four slots: probing must wrap and terminate.
        for (std::uint64_t k = 1; k <= 4; ++k)
            EXPECT_TRUE(set.insert(h, k));
        EXPECT_TRUE(set.contains(h, 1));
        EXPECT_TRUE(set.contains(h, 4));
    });
}

// ---------------------------------------------------------------- TxMap

TEST_F(RtFixture, MapInsertLookupUpdateRemove)
{
    TxMap map = TxMap::create(machine_.initContext(), heap_, 4);
    raw([&](TxHandle &h) {
        for (std::uint64_t k = 1; k <= 32; ++k)
            EXPECT_TRUE(map.insert(h, k, k + 1000));
        EXPECT_EQ(map.size(h), 32u);
        std::uint64_t v = 0;
        EXPECT_TRUE(map.lookup(h, 17, &v));
        EXPECT_EQ(v, 1017u);
        EXPECT_TRUE(map.update(h, 17, 42));
        EXPECT_TRUE(map.lookup(h, 17, &v));
        EXPECT_EQ(v, 42u);
        EXPECT_FALSE(map.update(h, 99, 1));
        EXPECT_TRUE(map.remove(h, 17));
        EXPECT_FALSE(map.lookup(h, 17));
        EXPECT_EQ(map.size(h), 31u);
    });
}

TEST_F(RtFixture, MapValueAddrAllowsInPlaceRmw)
{
    TxMap map = TxMap::create(machine_.initContext(), heap_, 2);
    raw([&](TxHandle &h) {
        map.insert(h, 5, 10);
        Addr va = map.valueAddr(h, 5);
        ASSERT_NE(va, 0u);
        h.write(va, h.read(va, 8) + 1, 8);
        std::uint64_t v = 0;
        map.lookup(h, 5, &v);
        EXPECT_EQ(v, 11u);
        EXPECT_EQ(map.valueAddr(h, 6), 0u);
    });
}

// -------------------------------------------------------------- TxQueue

TEST_F(RtFixture, QueueFifoOrder)
{
    TxQueue q = TxQueue::create(machine_.initContext(), heap_);
    raw([&](TxHandle &h) {
        std::uint64_t v = 0;
        EXPECT_FALSE(q.dequeue(h, &v));
        for (std::uint64_t i = 1; i <= 5; ++i)
            q.enqueue(h, i * 11);
        EXPECT_EQ(q.size(h), 5u);
        for (std::uint64_t i = 1; i <= 5; ++i) {
            ASSERT_TRUE(q.dequeue(h, &v));
            EXPECT_EQ(v, i * 11);
        }
        EXPECT_FALSE(q.dequeue(h, &v));
        EXPECT_EQ(q.size(h), 0u);
    });
}

TEST_F(RtFixture, QueueInterleavedEnqueueDequeue)
{
    TxQueue q = TxQueue::create(machine_.initContext(), heap_);
    raw([&](TxHandle &h) {
        std::uint64_t v = 0;
        q.enqueue(h, 1);
        q.enqueue(h, 2);
        ASSERT_TRUE(q.dequeue(h, &v));
        EXPECT_EQ(v, 1u);
        q.enqueue(h, 3);
        ASSERT_TRUE(q.dequeue(h, &v));
        EXPECT_EQ(v, 2u);
        ASSERT_TRUE(q.dequeue(h, &v));
        EXPECT_EQ(v, 3u);
        // Drained to empty and reusable.
        q.enqueue(h, 4);
        ASSERT_TRUE(q.dequeue(h, &v));
        EXPECT_EQ(v, 4u);
    });
}

// ------------------------------------------- Concurrent property tests

struct ConcurrentParam
{
    TxSystemKind kind;
    int threads;
};

class ConcurrentStructures
    : public ::testing::TestWithParam<ConcurrentParam>
{
};

TEST_P(ConcurrentStructures, ListHoldsAllDisjointInserts)
{
    const auto p = GetParam();
    Machine m(quiet(p.threads));
    TxHeap heap(m);
    auto sys = TxSystem::create(p.kind, m);
    sys->setup();
    TxList list = TxList::create(m.initContext(), heap);
    constexpr int kPerThread = 24;
    for (int t = 0; t < p.threads; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            for (int i = 0; i < kPerThread; ++i) {
                const std::uint64_t key =
                    1 + std::uint64_t(i) * p.threads + t;
                sys->atomic(tc, [&](TxHandle &h) {
                    list.insert(h, key, key);
                });
            }
        });
    }
    m.run();
    auto no_tm = TxSystem::create(TxSystemKind::NoTm, m);
    no_tm->atomic(m.initContext(), [&](TxHandle &h) {
        auto keys = list.keys(h);
        EXPECT_EQ(keys.size(),
                  std::uint64_t(p.threads) * kPerThread);
        EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
        EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) ==
                    keys.end());
    });
}

TEST_P(ConcurrentStructures, HashSetExactlyOneWinnerPerKey)
{
    const auto p = GetParam();
    Machine m(quiet(p.threads));
    TxHeap heap(m);
    auto sys = TxSystem::create(p.kind, m);
    sys->setup();
    TxHashSet set = TxHashSet::create(m.initContext(), heap, 256);
    constexpr int kKeys = 60;
    std::atomic<int> wins{0};
    for (int t = 0; t < p.threads; ++t) {
        m.addThread([&](ThreadContext &tc) {
            // Every thread tries every key.
            for (std::uint64_t k = 1; k <= kKeys; ++k) {
                bool inserted = false;
                sys->atomic(tc, [&](TxHandle &h) {
                    inserted = set.insert(h, k);
                });
                if (inserted)
                    wins++;
            }
        });
    }
    m.run();
    EXPECT_EQ(wins.load(), kKeys);
    auto no_tm = TxSystem::create(TxSystemKind::NoTm, m);
    no_tm->atomic(m.initContext(), [&](TxHandle &h) {
        EXPECT_EQ(set.count(h), std::uint64_t(kKeys));
    });
}

TEST_P(ConcurrentStructures, QueueItemsConsumedExactlyOnce)
{
    const auto p = GetParam();
    Machine m(quiet(p.threads));
    TxHeap heap(m);
    auto sys = TxSystem::create(p.kind, m);
    sys->setup();
    TxQueue q = TxQueue::create(m.initContext(), heap);
    constexpr int kItems = 80;
    {
        auto no_tm = TxSystem::create(TxSystemKind::NoTm, m);
        no_tm->atomic(m.initContext(), [&](TxHandle &h) {
            for (std::uint64_t i = 1; i <= kItems; ++i)
                q.enqueue(h, i);
        });
    }
    std::vector<std::uint64_t> seen;
    for (int t = 0; t < p.threads; ++t) {
        m.addThread([&](ThreadContext &tc) {
            for (;;) {
                std::uint64_t v = 0;
                bool got = false;
                sys->atomic(tc, [&](TxHandle &h) {
                    got = q.dequeue(h, &v);
                });
                if (!got)
                    return;
                seen.push_back(v);
                tc.advance(40);
            }
        });
    }
    m.run();
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), std::size_t(kItems));
    for (int i = 0; i < kItems; ++i)
        EXPECT_EQ(seen[i], std::uint64_t(i + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Systems, ConcurrentStructures,
    ::testing::Values(ConcurrentParam{TxSystemKind::UfoHybrid, 4},
                      ConcurrentParam{TxSystemKind::UstmStrong, 4},
                      ConcurrentParam{TxSystemKind::UnboundedHtm, 4},
                      ConcurrentParam{TxSystemKind::UfoHybrid, 8}),
    [](const ::testing::TestParamInfo<ConcurrentParam> &info) {
        std::string n = txSystemKindName(info.param.kind);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n + "_t" + std::to_string(info.param.threads);
    });

} // namespace
} // namespace utm
