/**
 * @file
 * Tests for the tmserve KV request-serving subsystem (src/svc):
 *
 *  - KvStore round-trips (get/put/scan/rmw/rawGet) under NoTm;
 *  - load-generator determinism, per-client decorrelation, mix
 *    coverage, and open-loop arrival monotonicity;
 *  - the service runs valid on every TxSystemKind, serving exactly
 *    the generated request count, with latency samples matching;
 *  - double-run byte-identity of the exported stats-JSON for every
 *    TxSystemKind x scheduler policy (the determinism contract);
 *  - open-loop saturation sheds, closed loop never does;
 *  - the svc.* counter families sum to their aggregates;
 *  - the tmtorture kv workload: clean oracle runs with non-zero raw
 *    (non-transactional) GET traffic on strongly-atomic backends,
 *    shadow-oracle runs on weakly-atomic ones, determinism, and
 *    record/replay bit-identity.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"
#include "sim/scheduler.hh"
#include "svc/service.hh"
#include "torture/torture.hh"

namespace utm {
namespace {

using svc::KvServiceWorkload;
using svc::LoadGenConfig;
using svc::ReqType;
using svc::Request;
using svc::SvcParams;

constexpr TxSystemKind kAllKinds[] = {
    TxSystemKind::NoTm,       TxSystemKind::UnboundedHtm,
    TxSystemKind::UfoHybrid,  TxSystemKind::HyTm,
    TxSystemKind::PhTm,       TxSystemKind::Ustm,
    TxSystemKind::UstmStrong, TxSystemKind::Tl2,
};

constexpr SchedPolicy kAllPolicies[] = {
    SchedPolicy::MinClock, SchedPolicy::MaxClock,
    SchedPolicy::RandomWalk, SchedPolicy::Pct, SchedPolicy::RoundRobin,
};

std::string
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return {};
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/** A small service configuration that keeps each run fast. */
SvcParams
smallParams()
{
    SvcParams p;
    p.load.keyspace = 32;
    p.load.requestsPerClient = 12;
    p.load.seed = 3;
    p.mapBuckets = 8;
    return p;
}

RunConfig
runConfig(TxSystemKind kind, int threads = 3)
{
    RunConfig cfg;
    cfg.kind = kind;
    cfg.threads = threads;
    cfg.machine.seed = 11;
    cfg.machine.timerQuantum = 0;
    return cfg;
}

// ----------------------------------------------------------- KvStore

TEST(KvStore, RoundTripsUnderNoTm)
{
    MachineConfig mc;
    mc.numCores = 1;
    Machine m(mc);
    TxHeap heap(m);
    auto sys = TxSystem::create(TxSystemKind::NoTm, m);
    sys->setup();

    const std::uint64_t keyspace = 16;
    svc::KvStore store =
        svc::KvStore::create(m.initContext(), heap, 4, keyspace);
    store.populate(m.initContext(), keyspace);

    sys->atomic(m.initContext(), [&](TxHandle &h) {
        std::uint64_t v = 0;
        EXPECT_TRUE(store.get(h, 5, &v));
        EXPECT_EQ(v, 500u); // populate() value: key * 100.
        EXPECT_FALSE(store.get(h, keyspace + 1, &v));

        EXPECT_TRUE(store.put(h, 5, 777));
        EXPECT_TRUE(store.get(h, 5, &v));
        EXPECT_EQ(v, 777u);
        EXPECT_FALSE(store.put(h, keyspace + 2, 1));

        std::uint64_t nv = 0;
        EXPECT_TRUE(store.rmw(h, 5, 3, &nv));
        EXPECT_EQ(nv, 780u);

        // A wrapping scan touches each key exactly once.
        EXPECT_EQ(store.scan(h, 10, int(keyspace), keyspace),
                  int(keyspace));

        std::uint64_t raw = 0;
        EXPECT_TRUE(store.rawGet(h.ctx(), 5, &raw));
        EXPECT_EQ(raw, 780u);
        EXPECT_FALSE(store.rawGet(h.ctx(), keyspace + 3, &raw));
    });
    // check() is content-agnostic (the service mutates values); it
    // verifies key count and tx/raw agreement, so it passes after the
    // put/rmw above but fails for a wrong expected key count.
    EXPECT_TRUE(store.check(m.initContext(), keyspace));
    EXPECT_FALSE(store.check(m.initContext(), keyspace + 1));
}

// ----------------------------------------------------------- LoadGen

TEST(LoadGen, DeterministicAndPerClientDecorrelated)
{
    LoadGenConfig cfg;
    cfg.keyspace = 64;
    cfg.requestsPerClient = 40;
    cfg.zipfTheta = 0.7;
    const auto a1 = svc::generateClientStream(cfg, 0);
    const auto a2 = svc::generateClientStream(cfg, 0);
    const auto b = svc::generateClientStream(cfg, 1);

    ASSERT_EQ(a1.size(), a2.size());
    for (std::size_t i = 0; i < a1.size(); ++i) {
        EXPECT_EQ(a1[i].type, a2[i].type);
        EXPECT_EQ(a1[i].key, a2[i].key);
        EXPECT_EQ(a1[i].value, a2[i].value);
    }
    bool differs = false;
    for (std::size_t i = 0; i < b.size() && !differs; ++i)
        differs = b[i].key != a1[i].key || b[i].type != a1[i].type;
    EXPECT_TRUE(differs);
}

TEST(LoadGen, CoversEveryRequestTypeAndKeyBounds)
{
    LoadGenConfig cfg;
    cfg.keyspace = 16;
    cfg.requestsPerClient = 300;
    // The default mix has no transfers; shift 10% from gets so every
    // verb (including xfer) appears.
    cfg.mix.getPct = 40;
    cfg.mix.xferPct = 10;
    int seen[svc::kNumReqTypes] = {};
    for (const Request &r : svc::generateClientStream(cfg, 0)) {
        ++seen[int(r.type)];
        EXPECT_GE(r.key, 1u);
        EXPECT_LE(r.key, cfg.keyspace);
        if (r.type == ReqType::Xfer) {
            EXPECT_NE(r.key2, r.key);
            EXPECT_GE(r.key2, 1u);
            EXPECT_LE(r.key2, cfg.keyspace);
        }
    }
    for (int c : seen)
        EXPECT_GT(c, 0);
}

TEST(LoadGen, OpenLoopArrivalsStrictlyIncrease)
{
    LoadGenConfig cfg;
    cfg.openLoop = true;
    cfg.meanInterarrival = 100;
    cfg.requestsPerClient = 50;
    Cycles prev = 0;
    for (const Request &r : svc::generateClientStream(cfg, 2)) {
        EXPECT_GT(r.arrival, prev);
        prev = r.arrival;
    }
}

// ----------------------------------------------------------- Service

TEST(Service, ServesEveryRequestOnEveryBackend)
{
    for (TxSystemKind kind : kAllKinds) {
        const SvcParams p = smallParams();
        const RunResult res = svc::runService(p, runConfig(kind));
        ASSERT_TRUE(res.valid) << txSystemKindName(kind);
        const std::uint64_t expect =
            std::uint64_t(p.load.requestsPerClient) * 3;
        EXPECT_EQ(res.stat("svc.requests"), expect)
            << txSystemKindName(kind);
        EXPECT_EQ(res.hist("svc.latency").samples(), expect)
            << txSystemKindName(kind);
        EXPECT_EQ(res.stat("svc.shed"), 0u) << txSystemKindName(kind);
    }
}

TEST(Service, CounterFamiliesSumToAggregates)
{
    SvcParams p = smallParams();
    p.load.requestsPerClient = 30;
    const RunResult res =
        svc::runService(p, runConfig(TxSystemKind::UfoHybrid, 4));
    ASSERT_TRUE(res.valid);

    std::uint64_t per_type = 0, lat_samples = 0;
    for (const auto &[name, value] : res.stats)
        if (name.rfind("svc.requests.", 0) == 0)
            per_type += value;
    for (const auto &[name, h] : res.hists)
        if (name.rfind("svc.latency.", 0) == 0)
            lat_samples += h.samples();
    EXPECT_EQ(per_type, res.stat("svc.requests"));
    EXPECT_EQ(lat_samples, res.hist("svc.latency").samples());
    EXPECT_EQ(res.stat("svc.request_aborts.hw") +
                  res.stat("svc.request_aborts.sw"),
              res.stat("svc.request_aborts"));
    EXPECT_GT(res.stat("svc.requests.raw_get"), 0u);
}

TEST(Service, DoubleRunStatsJsonByteIdentical)
{
    for (TxSystemKind kind : kAllKinds) {
        for (SchedPolicy policy : kAllPolicies) {
            SvcParams p = smallParams();
            p.load.requestsPerClient = 8;
            std::string text[2];
            for (int run = 0; run < 2; ++run) {
                RunConfig cfg = runConfig(kind);
                cfg.machine.sched.policy = policy;
                cfg.statsJsonPath = ::testing::TempDir() +
                                    "/utm_svc_det_" +
                                    std::to_string(run) + ".json";
                const RunResult res = svc::runService(p, cfg);
                ASSERT_TRUE(res.valid)
                    << txSystemKindName(kind) << "/"
                    << schedPolicyName(policy);
                text[run] = readWholeFile(cfg.statsJsonPath);
            }
            ASSERT_FALSE(text[0].empty());
            EXPECT_EQ(text[0], text[1])
                << "stats-JSON diverged across identical runs: "
                << txSystemKindName(kind) << "/"
                << schedPolicyName(policy);
        }
    }
}

TEST(Service, BatchingServesEveryRequestWithCounterInvariants)
{
    SvcParams p = smallParams();
    p.load.requestsPerClient = 30;
    p.batch.enable = true;
    p.batch.maxBatch = 4;
    p.batch.growOnSwCommit = true;
    const RunResult res =
        svc::runService(p, runConfig(TxSystemKind::UfoHybrid, 4));
    ASSERT_TRUE(res.valid);

    // Coalescing must not change what is served, only how: every
    // request completes with a latency sample, exactly as unbatched.
    const std::uint64_t expect = 30u * 4;
    EXPECT_EQ(res.stat("svc.requests"), expect);
    EXPECT_EQ(res.hist("svc.latency").samples(), expect);

    // The batch.* family invariants (docs/OBSERVABILITY.md).
    EXPECT_GT(res.stat("batch.batches"), 0u);
    EXPECT_EQ(res.stat("batch.commits") + res.stat("batch.aborts"),
              res.stat("batch.batches"));
    EXPECT_EQ(res.hist("batch.k").samples(), res.stat("batch.batches"));
    EXPECT_LE(res.hist("batch.k").max(), p.batch.maxBatch);
    EXPECT_GE(res.stat("batch.members"), res.stat("batch.batches"));
    std::uint64_t per_type = 0;
    for (const auto &[name, value] : res.stats)
        if (name.rfind("batch.members.", 0) == 0)
            per_type += value;
    EXPECT_EQ(per_type, res.stat("batch.members"));
    EXPECT_LE(res.stat("batch.splits"), res.stat("batch.aborts"));
    // Only batchable verbs may appear as members.
    EXPECT_EQ(res.stat("batch.members.xfer"), 0u);
    EXPECT_EQ(res.stat("batch.members.raw_get"), 0u);
}

TEST(Service, BatchingOnDoubleRunStatsJsonByteIdentical)
{
    // The determinism contract must survive coalescing: with batching
    // on, two identical runs stay byte-identical for every backend x
    // scheduler policy (adaptive K is driven only by deterministic
    // commit/abort events).
    for (TxSystemKind kind : kAllKinds) {
        for (SchedPolicy policy : kAllPolicies) {
            SvcParams p = smallParams();
            p.load.requestsPerClient = 8;
            p.batch.enable = true;
            p.batch.maxBatch = 4;
            p.batch.growOnSwCommit = true;
            std::string text[2];
            for (int run = 0; run < 2; ++run) {
                RunConfig cfg = runConfig(kind);
                cfg.machine.sched.policy = policy;
                cfg.statsJsonPath = ::testing::TempDir() +
                                    "/utm_svc_batch_det_" +
                                    std::to_string(run) + ".json";
                const RunResult res = svc::runService(p, cfg);
                ASSERT_TRUE(res.valid)
                    << txSystemKindName(kind) << "/"
                    << schedPolicyName(policy);
                text[run] = readWholeFile(cfg.statsJsonPath);
            }
            ASSERT_FALSE(text[0].empty());
            EXPECT_EQ(text[0], text[1])
                << "stats-JSON diverged across identical batching "
                << "runs: " << txSystemKindName(kind) << "/"
                << schedPolicyName(policy);
        }
    }
}

TEST(Service, OpenLoopShedsAtSaturationClosedLoopNever)
{
    // Arrivals far faster than a software-path service rate: the
    // per-client backlog must exceed the admission bound and shed.
    SvcParams open = smallParams();
    open.load.openLoop = true;
    open.load.meanInterarrival = 8;
    open.load.requestsPerClient = 60;
    open.maxQueueDepth = 4;
    const RunResult r_open =
        svc::runService(open, runConfig(TxSystemKind::Ustm, 4));
    ASSERT_TRUE(r_open.valid);
    EXPECT_GT(r_open.stat("svc.shed"), 0u);
    EXPECT_EQ(r_open.stat("svc.requests") + r_open.stat("svc.shed"),
              60u * 4);

    // The same load shape closed-loop: every request is served.
    SvcParams closed = open;
    closed.load.openLoop = false;
    closed.load.meanThink = 8;
    const RunResult r_closed =
        svc::runService(closed, runConfig(TxSystemKind::Ustm, 4));
    ASSERT_TRUE(r_closed.valid);
    EXPECT_EQ(r_closed.stat("svc.shed"), 0u);
    EXPECT_EQ(r_closed.stat("svc.requests"), 60u * 4);
}

// ------------------------------------------------- tmtorture kv mode

torture::TortureConfig
kvTortureConfig(TxSystemKind kind, SchedPolicy policy,
                std::uint64_t seed)
{
    torture::TortureConfig cfg;
    cfg.kind = kind;
    cfg.workload = torture::TortureWorkload::Kv;
    cfg.threads = 4;
    cfg.opsPerThread = 25;
    cfg.seed = seed;
    cfg.sched.policy = policy;
    cfg.sched.pctExpectedSteps = 1u << 11;
    return cfg;
}

TEST(KvTorture, RawReadsPassOracleOnStronglyAtomicBackends)
{
    for (TxSystemKind kind :
         {TxSystemKind::UnboundedHtm, TxSystemKind::UfoHybrid,
          TxSystemKind::UstmStrong}) {
        for (std::uint64_t seed : {1, 2, 3}) {
            const auto res = torture::runTorture(
                kvTortureConfig(kind, SchedPolicy::RandomWalk, seed));
            EXPECT_TRUE(res.ok())
                << txSystemKindName(kind) << " seed " << seed << ": "
                << res.oracle << ": " << res.why;
            EXPECT_GT(res.rawReads, 0u) << txSystemKindName(kind);
        }
    }
}

TEST(KvTorture, ShadowOracleHoldsOnWeaklyAtomicBackends)
{
    // Raw-read value checking is disabled here (raw reads may
    // legitimately observe speculative state), but the commit-order
    // shadow and backend invariants still must hold.
    for (TxSystemKind kind : {TxSystemKind::HyTm, TxSystemKind::PhTm,
                              TxSystemKind::Ustm, TxSystemKind::Tl2}) {
        const auto res = torture::runTorture(
            kvTortureConfig(kind, SchedPolicy::Pct, 5));
        EXPECT_TRUE(res.ok()) << txSystemKindName(kind) << ": "
                              << res.oracle << ": " << res.why;
    }
}

TEST(KvTorture, DeterministicAcrossIdenticalRuns)
{
    const auto cfg =
        kvTortureConfig(TxSystemKind::UfoHybrid, SchedPolicy::Pct, 9);
    const auto a = torture::runTorture(cfg);
    const auto b = torture::runTorture(cfg);
    ASSERT_TRUE(a.ok()) << a.oracle << ": " << a.why;
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.rawReads, b.rawReads);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(KvTorture, RecordReplayBitIdentical)
{
    torture::TortureConfig cfg = kvTortureConfig(
        TxSystemKind::UfoHybrid, SchedPolicy::RandomWalk, 13);
    cfg.record = true;
    const auto rec = torture::runTorture(cfg);
    ASSERT_TRUE(rec.ok()) << rec.oracle << ": " << rec.why;
    ASSERT_GT(rec.schedule.steps(), 0u);

    torture::TortureConfig replay = cfg;
    replay.replay = &rec.schedule;
    const auto rep = torture::runTorture(replay);
    ASSERT_TRUE(rep.ok()) << rep.oracle << ": " << rep.why;
    EXPECT_EQ(rep.steps, rec.steps);
    EXPECT_EQ(rep.cycles, rec.cycles);
    EXPECT_EQ(rep.commits, rec.commits);
    EXPECT_EQ(rep.stats, rec.stats);
}

TEST(KvTorture, BatchedOraclesHoldAndFewerCommitsThanOps)
{
    // The coalesced kv loop under every oracle: strong atomicity
    // (raw reads), the commit-order shadow, and backend invariants
    // all hold while multi-member transactions commit.  Coalescing
    // must show up as fewer transactions than ops.
    for (TxSystemKind kind :
         {TxSystemKind::UfoHybrid, TxSystemKind::UstmStrong}) {
        torture::TortureConfig cfg =
            kvTortureConfig(kind, SchedPolicy::RandomWalk, 21);
        cfg.kvBatch = true;
        const auto batched = torture::runTorture(cfg);
        EXPECT_TRUE(batched.ok()) << txSystemKindName(kind) << ": "
                                  << batched.oracle << ": "
                                  << batched.why;
        EXPECT_GT(batched.rawReads, 0u) << txSystemKindName(kind);

        cfg.kvBatch = false;
        const auto single = torture::runTorture(cfg);
        ASSERT_TRUE(single.ok()) << txSystemKindName(kind);
        EXPECT_LT(batched.commits, single.commits)
            << txSystemKindName(kind)
            << ": coalescing never merged a transaction";
    }
}

TEST(KvTorture, BatchedRecordReplayBitIdentical)
{
    torture::TortureConfig cfg = kvTortureConfig(
        TxSystemKind::UfoHybrid, SchedPolicy::RandomWalk, 17);
    cfg.kvBatch = true;
    cfg.record = true;
    const auto rec = torture::runTorture(cfg);
    ASSERT_TRUE(rec.ok()) << rec.oracle << ": " << rec.why;
    ASSERT_GT(rec.schedule.steps(), 0u);

    torture::TortureConfig replay = cfg;
    replay.replay = &rec.schedule;
    const auto rep = torture::runTorture(replay);
    ASSERT_TRUE(rep.ok()) << rep.oracle << ": " << rep.why;
    EXPECT_EQ(rep.steps, rec.steps);
    EXPECT_EQ(rep.cycles, rec.cycles);
    EXPECT_EQ(rep.commits, rec.commits);
    EXPECT_EQ(rep.stats, rec.stats);
}

} // namespace
} // namespace utm
