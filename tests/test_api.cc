/**
 * @file
 * API-surface tests: factory/name round trips, typed handle accesses
 * at every width, abort-reason names, logging formatting, and the
 * stats dump format.
 */

#include <gtest/gtest.h>

#include <cstdarg>

#include "core/tx_system.hh"
#include "mem/memory_system.hh"
#include "rt/heap.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

TEST(Api, FactoryProducesEveryKindWithMatchingName)
{
    const std::pair<TxSystemKind, const char *> kinds[] = {
        {TxSystemKind::NoTm, "no-tm"},
        {TxSystemKind::UnboundedHtm, "unbounded-htm"},
        {TxSystemKind::UfoHybrid, "ufo-hybrid"},
        {TxSystemKind::HyTm, "hytm"},
        {TxSystemKind::PhTm, "phtm"},
        {TxSystemKind::Ustm, "ustm"},
        {TxSystemKind::UstmStrong, "ustm-ufo"},
        {TxSystemKind::Tl2, "tl2"},
    };
    for (auto &[kind, name] : kinds) {
        Machine m;
        auto sys = TxSystem::create(kind, m);
        ASSERT_NE(sys, nullptr);
        EXPECT_STREQ(sys->name(), name);
        EXPECT_STREQ(txSystemKindName(kind), name);
        EXPECT_EQ(sys->kind(), kind);
        sys->setup(); // Must be callable on every kind.
    }
}

TEST(Api, AbortReasonNamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (int i = 0; i < kNumAbortReasons; ++i) {
        const char *n = abortReasonName(static_cast<AbortReason>(i));
        ASSERT_NE(n, nullptr);
        EXPECT_GT(std::strlen(n), 0u);
        EXPECT_TRUE(names.insert(n).second) << "duplicate: " << n;
    }
}

class TypedAccess : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TypedAccess, RoundTripsAtEveryWidth)
{
    const unsigned size = GetParam();
    Machine m;
    TxHeap heap(m);
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, m);
    sys->setup();
    const Addr a = heap.allocZeroed(m.initContext(), 8, true);
    const std::uint64_t pattern =
        0x1122334455667788ull & ((size == 8) ? ~0ull
                                             : ((1ull << (8 * size)) - 1));
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.write(a, pattern, size);
            EXPECT_EQ(h.read(a, size), pattern);
        });
    });
    m.run();
    EXPECT_EQ(m.memory().read(a, size), pattern);
}

INSTANTIATE_TEST_SUITE_P(Widths, TypedAccess,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Api, TypedTemplatesPreserveValues)
{
    Machine m;
    TxHeap heap(m);
    auto sys = TxSystem::create(TxSystemKind::UstmStrong, m);
    sys->setup();
    const Addr a = heap.allocZeroed(m.initContext(), 64, true);
    m.addThread([&](ThreadContext &tc) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.write<std::uint8_t>(a, 0xab);
            h.write<std::uint16_t>(a + 8, 0xcdef);
            h.write<std::uint32_t>(a + 16, 0xdeadbeef);
            h.write<std::int32_t>(a + 24, -12345);
            EXPECT_EQ(h.read<std::uint8_t>(a), 0xab);
            EXPECT_EQ(h.read<std::uint16_t>(a + 8), 0xcdef);
            EXPECT_EQ(h.read<std::uint32_t>(a + 16), 0xdeadbeefu);
            EXPECT_EQ(h.read<std::int32_t>(a + 24), -12345);
        });
    });
    m.run();
}

TEST(Api, StatsDumpIsLinePerCounter)
{
    StatsRegistry s;
    s.inc("a.b", 3);
    s.inc("a.c", 1);
    std::string d = s.dump();
    EXPECT_NE(d.find("a.b 3\n"), std::string::npos);
    EXPECT_NE(d.find("a.c 1\n"), std::string::npos);
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    return s;
}

TEST(Api, LoggingFormatsLikePrintf)
{
    EXPECT_EQ(format("x=%d s=%s", 42, "hi"), "x=42 s=hi");
    EXPECT_EQ(format("%08llx", 0xabcdull), "0000abcd");
    EXPECT_EQ(format("plain"), "plain");
    // Long strings exceed any fixed buffer.
    std::string big(5000, 'z');
    EXPECT_EQ(format("%s", big.c_str()), big);
}

TEST(Api, FatalOnBadConfigIsUserError)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig mc;
    mc.numCores = kMaxThreads + 5;
    EXPECT_DEATH({ Machine m(mc); }, "assertion");
}

TEST(Api, LineHelpers)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 64u);
    EXPECT_EQ(lineOffset(0x1234), 0x34u % 64);
    EXPECT_EQ(kLineSize, 64u);
}

TEST(Api, PolicyDefaultsMatchPaperRecommendations)
{
    TmPolicy p;
    EXPECT_EQ(p.btm.cm, BtmPolicy::Cm::AgeOrdered);
    EXPECT_EQ(p.btm.ufoFaultResponse,
              BtmPolicy::UfoFaultResponse::Abort);
    EXPECT_FALSE(p.btm.ufoSetTrueConflictOracle);
    EXPECT_EQ(p.conflictFailoverThreshold, 0); // Never on contention.
    EXPECT_EQ(p.interruptFailoverThreshold, 7);
    EXPECT_EQ(p.ustm.nonTFault, UstmPolicy::NonTFault::Stall);
}

} // namespace
} // namespace utm
