/**
 * @file
 * Unit tests for USTM: otable protocol (fast paths, reader sharing,
 * upgrades, chains), age-based conflict resolution (kill / stall),
 * eager-versioning rollback, strong-atomicity UFO maintenance, and
 * the non-transactional fault handler policies.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"
#include "sim/machine.hh"
#include "ustm/otable.hh"
#include "ustm/ustm.hh"

namespace utm {
namespace {

MachineConfig
quietConfig(int cores = 2, unsigned buckets = 0)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    if (buckets)
        mc.otableBuckets = buckets;
    return mc;
}

// ----------------------------------------------------- Otable packing

TEST(Otable, PackUnpackRoundTrip)
{
    const std::uint64_t tag = Otable::tagOf(0x123456789c0);
    std::uint64_t w0 = Otable::pack(true, false, true, false, true, 37,
                                    tag);
    EXPECT_TRUE(Otable::used(w0));
    EXPECT_FALSE(Otable::locked(w0));
    EXPECT_TRUE(Otable::writeState(w0));
    EXPECT_FALSE(Otable::multi(w0));
    EXPECT_TRUE(Otable::hasChain(w0));
    EXPECT_EQ(Otable::owner(w0), 37);
    EXPECT_EQ(Otable::tag(w0), tag);
}

TEST(Otable, NodePoolAllocFree)
{
    Otable ot(16, 0x1000000, 4);
    EXPECT_EQ(ot.freeNodes(), 4u);
    Addr a = ot.allocNode();
    Addr b = ot.allocNode();
    EXPECT_NE(a, b);
    ot.freeNode(a);
    EXPECT_EQ(ot.freeNodes(), 3u);
    EXPECT_EQ(ot.allocNode(), a); // LIFO reuse.
    ot.freeNode(a);
    ot.freeNode(b);
}

TEST(Otable, BucketAddrWithinTable)
{
    Otable ot(64, 0x1000000);
    for (Addr line = 0; line < 0x100000; line += kLineSize) {
        Addr b = ot.bucketAddr(line);
        EXPECT_GE(b, 0x1000000u);
        EXPECT_LT(b, 0x1000000u + 64u * Otable::kEntryBytes);
        EXPECT_EQ((b - 0x1000000u) % Otable::kEntryBytes, 0u);
    }
}

// --------------------------------------------------------- Basic USTM

TEST(Ustm, CommitPublishesWrites)
{
    Machine m(quietConfig(1));
    ThreadContext &tc = m.initContext();
    Ustm ustm(m, /*strong_atomic=*/false);
    ustm.setup(tc);
    ustm.txBegin(tc);
    ustm.txWrite(tc, 0x100, 7, 8);
    EXPECT_EQ(ustm.txRead(tc, 0x100, 8), 7u);
    ustm.txEnd(tc);
    EXPECT_EQ(m.memory().read(0x100, 8), 7u);
}

TEST(Ustm, OtableEmptyAfterCommit)
{
    Machine m(quietConfig(1));
    ThreadContext &tc = m.initContext();
    Ustm ustm(m, false);
    ustm.setup(tc);
    ustm.txBegin(tc);
    for (int i = 0; i < 20; ++i)
        ustm.txWrite(tc, 0x1000 + i * 64, i, 8);
    for (int i = 0; i < 20; ++i)
        ustm.txRead(tc, 0x9000 + i * 64, 8);
    ustm.txEnd(tc);
    // Every bucket word must be free again (tombstones allowed).
    Otable &ot = ustm.otable();
    for (int i = 0; i < 20; ++i) {
        std::uint64_t w0 =
            m.memory().read(ot.bucketAddr(0x1000 + i * 64), 8);
        EXPECT_FALSE(Otable::used(w0));
        EXPECT_FALSE(Otable::locked(w0));
    }
}

TEST(Ustm, FlattenedNesting)
{
    Machine m(quietConfig(1));
    ThreadContext &tc = m.initContext();
    Ustm ustm(m, false);
    ustm.setup(tc);
    ustm.txBegin(tc);
    ustm.txBegin(tc);
    ustm.txWrite(tc, 0x200, 9, 8);
    ustm.txEnd(tc);
    EXPECT_TRUE(ustm.inTx(tc.id()));
    ustm.txEnd(tc);
    EXPECT_FALSE(ustm.inTx(tc.id()));
    EXPECT_EQ(m.memory().read(0x200, 8), 9u);
}

TEST(Ustm, MultipleReadersShareALine)
{
    Machine m(quietConfig(2));
    Ustm ustm(m, false);
    ustm.setup(m.initContext());
    int committed = 0;
    for (int t = 0; t < 2; ++t) {
        m.addThread([&](ThreadContext &tc) {
            ustm.txBegin(tc);
            EXPECT_EQ(ustm.txRead(tc, 0x300, 8), 0u);
            tc.advance(300); // Overlap the other reader.
            EXPECT_EQ(ustm.txRead(tc, 0x300, 8), 0u);
            ustm.txEnd(tc);
            ++committed;
        });
    }
    m.run();
    EXPECT_EQ(committed, 2);
    EXPECT_EQ(m.stats().get("ustm.kills"), 0u);
}

TEST(Ustm, WriterKillsYoungerReader)
{
    Machine m(quietConfig(2));
    Ustm ustm(m, false);
    ustm.setup(m.initContext());
    int aborts = 0;
    m.addThread([&](ThreadContext &tc) {
        // Older transaction; writes after the reader acquired.
        ustm.txBegin(tc);
        tc.advance(600);
        ustm.txWrite(tc, 0x400, 5, 8);
        ustm.txEnd(tc);
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(20);
        for (;;) {
            try {
                ustm.txBegin(tc); // Younger.
                ustm.txRead(tc, 0x400, 8);
                tc.advance(2000); // Hold read ownership.
                ustm.txRead(tc, 0x400, 8); // Poll point: sees kill.
                ustm.txEnd(tc);
                return;
            } catch (const UstmAbortException &) {
                ++aborts;
            }
        }
    });
    m.run();
    EXPECT_GE(aborts, 1);
    EXPECT_EQ(m.memory().read(0x400, 8), 5u);
}

TEST(Ustm, AbortRestoresUndoLog)
{
    Machine m(quietConfig(2));
    Ustm ustm(m, false);
    ustm.setup(m.initContext());
    m.memory().write(0x500, 111, 8);
    m.memory().write(0x540, 222, 8);
    bool observed_abort = false;
    m.addThread([&](ThreadContext &tc) {
        // Younger writer that will be killed mid-flight.  Yield so
        // the other thread's txBegin draws the older sequence number.
        tc.advance(20);
        tc.yield();
        try {
            ustm.txBegin(tc);
            ustm.txWrite(tc, 0x500, 999, 8);
            ustm.txWrite(tc, 0x540, 888, 8);
            tc.advance(4000);
            ustm.txRead(tc, 0x500, 8); // Observes the kill here.
            ustm.txEnd(tc);
        } catch (const UstmAbortException &) {
            observed_abort = true;
        }
    });
    m.addThread([&](ThreadContext &tc) {
        // Older transaction wants the same lines.
        ustm.txBegin(tc);
        tc.advance(1200);
        EXPECT_EQ(ustm.txRead(tc, 0x500, 8), 111u);
        EXPECT_EQ(ustm.txRead(tc, 0x540, 8), 222u);
        ustm.txEnd(tc);
    });
    m.run();
    EXPECT_TRUE(observed_abort);
    EXPECT_EQ(m.memory().read(0x500, 8), 111u);
    EXPECT_EQ(m.memory().read(0x540, 8), 222u);
}

TEST(Ustm, YoungerStallsForOlderWriter)
{
    Machine m(quietConfig(2));
    Ustm ustm(m, false);
    ustm.setup(m.initContext());
    std::vector<int> commit_order;
    m.addThread([&](ThreadContext &tc) {
        ustm.txBegin(tc); // Older.
        ustm.txWrite(tc, 0x600, 1, 8);
        tc.advance(2000);
        ustm.txEnd(tc);
        commit_order.push_back(0);
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(400); // After the older tx owns the line.
        for (;;) {
            try {
                ustm.txBegin(tc); // Younger: must stall, not kill.
                ustm.txWrite(tc, 0x600, 2, 8);
                ustm.txEnd(tc);
                commit_order.push_back(1);
                return;
            } catch (const UstmAbortException &) {
            }
        }
    });
    m.run();
    ASSERT_EQ(commit_order.size(), 2u);
    EXPECT_EQ(commit_order[0], 0); // Older committed first.
    EXPECT_EQ(m.memory().read(0x600, 8), 2u);
    // The younger either stalled on the active older transaction or
    // waited for its commit release; never killed it.
    EXPECT_GT(m.stats().get("ustm.conflicts"), 0u);
    EXPECT_EQ(m.stats().get("ustm.kills"), 0u);
}

TEST(Ustm, ChainedBucketsHandleAliases)
{
    // A 1-bucket otable forces every line into one chain.
    Machine m(quietConfig(1, /*buckets=*/1));
    ThreadContext &tc = m.initContext();
    Ustm ustm(m, false);
    ustm.setup(tc);
    ustm.txBegin(tc);
    for (int i = 0; i < 8; ++i)
        ustm.txWrite(tc, 0x7000 + i * 64, i + 1, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ustm.txRead(tc, 0x7000 + i * 64, 8),
                  std::uint64_t(i + 1));
    ustm.txEnd(tc);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(m.memory().read(0x7000 + i * 64, 8),
                  std::uint64_t(i + 1));
    EXPECT_GT(m.stats().get("ustm.chain_inserts"), 0u);
    // All chain nodes returned to the pool.
    EXPECT_EQ(ustm.otable().freeNodes(), 4096u);
}

TEST(Ustm, ChainedConflictDetected)
{
    Machine m(quietConfig(2, /*buckets=*/1));
    Ustm ustm(m, false);
    ustm.setup(m.initContext());
    int kills = 0;
    m.addThread([&](ThreadContext &tc) {
        ustm.txBegin(tc); // Older.
        ustm.txWrite(tc, 0x8000, 1, 8); // Head entry.
        tc.advance(200);
        ustm.txWrite(tc, 0x8040, 2, 8); // Chain node, conflicts.
        ustm.txEnd(tc);
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(20);
        for (;;) {
            try {
                ustm.txBegin(tc); // Younger.
                ustm.txWrite(tc, 0x8040, 9, 8);
                tc.advance(2000);
                ustm.txRead(tc, 0x8040, 8);
                ustm.txEnd(tc);
                return;
            } catch (const UstmAbortException &) {
                ++kills;
            }
        }
    });
    m.run();
    EXPECT_GE(kills, 1);
    EXPECT_EQ(m.memory().read(0x8000, 8), 1u);
}

// ------------------------------------------------- Strong atomicity

TEST(UstmStrong, UfoBitsTrackOwnership)
{
    Machine m(quietConfig(1));
    ThreadContext &tc = m.initContext();
    Ustm ustm(m, /*strong_atomic=*/true);
    ustm.setup(tc);
    ustm.txBegin(tc);
    ustm.readBarrier(tc, 0x900);
    EXPECT_EQ(m.memory().ufoBits(0x900), kUfoWriteOnly);
    ustm.writeBarrier(tc, 0x940);
    EXPECT_EQ(m.memory().ufoBits(0x940), kUfoBoth);
    ustm.writeBarrier(tc, 0x900); // Upgrade.
    EXPECT_EQ(m.memory().ufoBits(0x900), kUfoBoth);
    ustm.txEnd(tc);
    EXPECT_EQ(m.memory().ufoBits(0x900), kUfoNone);
    EXPECT_EQ(m.memory().ufoBits(0x940), kUfoNone);
}

TEST(UstmStrong, NonTReadStallsUntilCommit)
{
    Machine m(quietConfig(2));
    Ustm ustm(m, true);
    ustm.setup(m.initContext());
    std::uint64_t seen = 0;
    m.addThread([&](ThreadContext &tc) {
        ustm.txBegin(tc);
        ustm.txWrite(tc, 0xa00, 1, 8); // Intermediate value.
        tc.advance(3000);
        ustm.txWrite(tc, 0xa00, 2, 8); // Final value.
        ustm.txEnd(tc);
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(1000); // While the transaction owns the line.
        seen = tc.load(0xa00, 8); // Faults; stalls until commit.
    });
    m.run();
    // Strong atomicity: the nonT read never sees the intermediate 1.
    EXPECT_EQ(seen, 2u);
    EXPECT_GT(m.stats().get("ustm.nont_faults"), 0u);
}

TEST(UstmStrong, NonTFaultAbortTxPolicy)
{
    MachineConfig mc = quietConfig(2);
    Machine m(mc);
    UstmPolicy pol;
    pol.nonTFault = UstmPolicy::NonTFault::AbortTx;
    Ustm ustm(m, true, pol);
    ustm.setup(m.initContext());
    bool tx_killed = false;
    m.addThread([&](ThreadContext &tc) {
        try {
            ustm.txBegin(tc);
            ustm.txWrite(tc, 0xb00, 77, 8);
            tc.advance(4000);
            ustm.txRead(tc, 0xb00, 8); // Poll: observe the kill.
            ustm.txEnd(tc);
        } catch (const UstmAbortException &) {
            tx_killed = true;
        }
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(800); // While the transaction owns the line.
        EXPECT_EQ(tc.load(0xb00, 8), 0u); // NonT wins; sees pre-state.
    });
    m.run();
    EXPECT_TRUE(tx_killed);
    EXPECT_EQ(m.memory().read(0xb00, 8), 0u);
}

TEST(UstmStrong, KillerWaitsForVictimUnwind)
{
    // The blocking protocol: when an older tx kills a younger one, it
    // must observe the victim's released entries (and restored data)
    // before proceeding.
    Machine m(quietConfig(2));
    Ustm ustm(m, true);
    ustm.setup(m.initContext());
    m.memory().write(0xc00, 5, 8);
    std::uint64_t older_read = 99;
    m.addThread([&](ThreadContext &tc) {
        ustm.txBegin(tc); // Older.
        tc.advance(300);
        older_read = ustm.txRead(tc, 0xc00, 8); // Kills the younger.
        ustm.txEnd(tc);
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(10);
        try {
            ustm.txBegin(tc); // Younger.
            ustm.txWrite(tc, 0xc00, 42, 8);
            tc.advance(2000);
            ustm.txRead(tc, 0xc00, 8);
            ustm.txEnd(tc);
        } catch (const UstmAbortException &) {
        }
    });
    m.run();
    EXPECT_EQ(older_read, 5u); // Undo applied before the read.
}

} // namespace
} // namespace utm

namespace utm {
namespace {

MachineConfig
quiet2(int cores, unsigned buckets = 0)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    if (buckets)
        mc.otableBuckets = buckets;
    return mc;
}

TEST(Ustm, ThreeReadersReleaseInAnyOrder)
{
    // Three concurrent readers share one entry; releases peel the
    // owner set down and the last one clears the UFO bits.
    Machine m(quiet2(3));
    Ustm ustm(m, /*strong_atomic=*/true);
    ustm.setup(m.initContext());
    int committed = 0;
    for (int t = 0; t < 3; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            ustm.txBegin(tc);
            EXPECT_EQ(ustm.txRead(tc, 0xd00, 8), 0u);
            tc.advance(300 + t * 137); // Staggered release order.
            ustm.txEnd(tc);
            ++committed;
        });
    }
    m.run();
    EXPECT_EQ(committed, 3);
    EXPECT_EQ(m.memory().ufoBits(0xd00), kUfoNone);
    std::uint64_t w0 =
        m.memory().read(ustm.otable().bucketAddr(0xd00), 8);
    EXPECT_FALSE(Otable::used(w0));
}

TEST(Ustm, TombstonedHeadIsReclaimed)
{
    // With a 1-bucket otable: insert A (head) and B (chain); release
    // A (tombstone head, chain survives); a new line C must reclaim
    // the head slot rather than leak nodes.
    Machine m(quiet2(1, /*buckets=*/1));
    ThreadContext &tc = m.initContext();
    Ustm ustm(m, false);
    ustm.setup(tc);
    const std::size_t pool0 = ustm.otable().freeNodes();

    ustm.txBegin(tc);
    ustm.writeBarrier(tc, 0xe000); // Head entry.
    ustm.writeBarrier(tc, 0xe040); // Chain node.
    ustm.txEnd(tc);
    EXPECT_EQ(ustm.otable().freeNodes(), pool0); // All freed.

    ustm.txBegin(tc);
    ustm.writeBarrier(tc, 0xe080);
    ustm.writeBarrier(tc, 0xe0c0);
    ustm.writeBarrier(tc, 0xe100);
    // Head + two chain nodes in flight.
    EXPECT_EQ(ustm.otable().freeNodes(), pool0 - 2);
    ustm.txEnd(tc);
    EXPECT_EQ(ustm.otable().freeNodes(), pool0);
}

TEST(Ustm, PeekOwnersMatchesProtocolState)
{
    Machine m(quiet2(1));
    ThreadContext &tc = m.initContext();
    Ustm ustm(m, false);
    ustm.setup(tc);
    EXPECT_EQ(ustm.peekOwners(0xf000), 0u);
    ustm.txBegin(tc);
    ustm.writeBarrier(tc, 0xf000);
    ustm.readBarrier(tc, 0xf040);
    EXPECT_EQ(ustm.peekOwners(0xf000), 1ull << tc.id());
    EXPECT_EQ(ustm.peekOwners(0xf040), 1ull << tc.id());
    EXPECT_EQ(ustm.peekOwners(0xf080), 0u);
    ustm.txEnd(tc);
    EXPECT_EQ(ustm.peekOwners(0xf000), 0u);
}

TEST(Ustm, RepeatedBarriersAreIdempotent)
{
    Machine m(quiet2(1));
    ThreadContext &tc = m.initContext();
    Ustm ustm(m, true);
    ustm.setup(tc);
    ustm.txBegin(tc);
    for (int i = 0; i < 5; ++i)
        ustm.readBarrier(tc, 0x1100);
    for (int i = 0; i < 5; ++i)
        ustm.writeBarrier(tc, 0x1100); // Upgrade once, then no-ops.
    for (int i = 0; i < 5; ++i)
        ustm.writeBarrier(tc, 0x1140);
    EXPECT_EQ(m.memory().ufoBits(0x1100), kUfoBoth);
    ustm.txEnd(tc);
    EXPECT_EQ(m.memory().ufoBits(0x1100), kUfoNone);
    EXPECT_EQ(m.memory().ufoBits(0x1140), kUfoNone);
}

TEST(Ustm, UpgradeOnChainNode)
{
    Machine m(quiet2(1, /*buckets=*/1));
    ThreadContext &tc = m.initContext();
    Ustm ustm(m, true);
    ustm.setup(tc);
    m.memory().write(0x1200, 5, 8);
    ustm.txBegin(tc);
    ustm.writeBarrier(tc, 0x1180);  // Head.
    ustm.readBarrier(tc, 0x1200);   // Chain node, read state.
    EXPECT_EQ(m.memory().ufoBits(0x1200), kUfoWriteOnly);
    ustm.txWrite(tc, 0x1200, 9, 8); // Upgrade the chain node.
    EXPECT_EQ(m.memory().ufoBits(0x1200), kUfoBoth);
    ustm.txEnd(tc);
    EXPECT_EQ(m.memory().read(0x1200, 8), 9u);
    EXPECT_EQ(m.memory().ufoBits(0x1200), kUfoNone);
}

} // namespace
} // namespace utm
