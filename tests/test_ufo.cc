/**
 * @file
 * Unit tests for the UFO convenience layer and the Appendix A swap
 * model (UFO bits travel to and from the swap file).
 */

#include <gtest/gtest.h>

#include "mem/sim_memory.hh"
#include "sim/machine.hh"
#include "ufo/swap_model.hh"
#include "ufo/ufo.hh"

namespace utm {
namespace {

MachineConfig
quiet()
{
    MachineConfig mc;
    mc.numCores = 1;
    mc.timerQuantum = 0;
    return mc;
}

TEST(UfoRange, ProtectAndUnprotect)
{
    Machine m(quiet());
    ThreadContext &tc = m.initContext();
    ufoProtectRange(tc, 0x1010, 0x100, kUfoWriteOnly);
    // Lines 0x1000..0x1100 overlap [0x1010, 0x1110).
    EXPECT_EQ(m.memory().ufoBits(0x1000), kUfoWriteOnly);
    EXPECT_EQ(m.memory().ufoBits(0x1100), kUfoWriteOnly);
    EXPECT_EQ(m.memory().ufoBits(0x1140), kUfoNone);
    EXPECT_EQ(ufoCountProtectedLines(tc, 0x1000, 0x200), 5u);
    ufoUnprotectRange(tc, 0x1000, 0x200);
    EXPECT_EQ(ufoCountProtectedLines(tc, 0x1000, 0x200), 0u);
}

TEST(UfoRange, DisableGuardRestores)
{
    Machine m(quiet());
    ThreadContext &tc = m.initContext();
    EXPECT_TRUE(tc.ufoEnabled());
    {
        UfoDisableGuard g(tc);
        EXPECT_FALSE(tc.ufoEnabled());
        {
            UfoDisableGuard g2(tc); // Nested: stays disabled.
            EXPECT_FALSE(tc.ufoEnabled());
        }
        EXPECT_FALSE(tc.ufoEnabled());
    }
    EXPECT_TRUE(tc.ufoEnabled());
}

// ------------------------------------------------------------ SwapModel

class SwapTest : public ::testing::Test
{
  protected:
    SwapTest() : machine_(quiet()) {}

    SwapModel
    makeModel(std::uint64_t frames, bool ufo, bool all_clear)
    {
        SwapModel::Config cfg;
        cfg.physFrames = frames;
        cfg.ufoSwapSupport = ufo;
        cfg.allClearOptimization = all_clear;
        return SwapModel(machine_, cfg);
    }

    Machine machine_;
};

TEST_F(SwapTest, ResidencyAndLru)
{
    SwapModel swap = makeModel(2, true, true);
    ThreadContext &tc = machine_.initContext();
    swap.touchPage(tc, 1);
    swap.touchPage(tc, 2);
    EXPECT_TRUE(swap.resident(1));
    EXPECT_TRUE(swap.resident(2));
    swap.touchPage(tc, 1); // 2 becomes LRU.
    swap.touchPage(tc, 3); // Evicts 2.
    EXPECT_TRUE(swap.resident(1));
    EXPECT_FALSE(swap.resident(2));
    EXPECT_TRUE(swap.resident(3));
    EXPECT_EQ(swap.stats().swapOuts, 1u);
    EXPECT_EQ(swap.stats().swapIns, 3u);
}

TEST_F(SwapTest, AllClearOptimizationSkipsUnprotectedPages)
{
    SwapModel swap = makeModel(1, true, true);
    ThreadContext &tc = machine_.initContext();
    swap.touchPage(tc, 0); // No UFO bits on this page.
    swap.touchPage(tc, 1); // Evicts page 0: save skipped.
    EXPECT_EQ(swap.stats().ufoSaves, 0u);
    EXPECT_GT(swap.stats().ufoSkippedAllClear, 0u);
    swap.touchPage(tc, 0); // Re-fault: restore also skipped.
    EXPECT_EQ(swap.stats().ufoRestores, 0u);
}

TEST_F(SwapTest, ProtectedPagePaysSaveAndRestore)
{
    SwapModel swap = makeModel(1, true, true);
    ThreadContext &tc = machine_.initContext();
    machine_.memory().setUfoBits(0 * SimMemory::kPageSize + 0x40,
                                 kUfoBoth);
    swap.touchPage(tc, 0);
    swap.touchPage(tc, 1); // Evict page 0: UFO record saved.
    EXPECT_EQ(swap.stats().ufoSaves, 1u);
    swap.touchPage(tc, 0); // Restore pays too.
    EXPECT_EQ(swap.stats().ufoRestores, 1u);
    EXPECT_GT(swap.stats().ufoCycles, 0u);
}

TEST_F(SwapTest, NaiveModeAlwaysPays)
{
    SwapModel swap = makeModel(1, true, /*all_clear=*/false);
    ThreadContext &tc = machine_.initContext();
    swap.touchPage(tc, 0);
    swap.touchPage(tc, 1);
    swap.touchPage(tc, 0);
    EXPECT_EQ(swap.stats().ufoSaves, 2u); // Both evictions saved.
    EXPECT_GT(swap.stats().ufoRestores, 0u);
    EXPECT_EQ(swap.stats().ufoSkippedAllClear, 0u);
}

TEST_F(SwapTest, NoUfoSupportPaysNothing)
{
    SwapModel swap = makeModel(1, /*ufo=*/false, false);
    ThreadContext &tc = machine_.initContext();
    swap.touchPage(tc, 0);
    swap.touchPage(tc, 1);
    swap.touchPage(tc, 0);
    EXPECT_EQ(swap.stats().ufoCycles, 0u);
    EXPECT_GT(swap.stats().ioCycles, 0u);
}

TEST_F(SwapTest, ChargesSimulatedTime)
{
    SwapModel swap = makeModel(4, true, true);
    ThreadContext &tc = machine_.initContext();
    Cycles t0 = tc.now();
    swap.touchPage(tc, 0);
    EXPECT_GE(tc.now() - t0, swap.config().pageIoCost);
    t0 = tc.now();
    swap.touchPage(tc, 0); // Resident: free.
    EXPECT_EQ(tc.now(), t0);
}

} // namespace
} // namespace utm
