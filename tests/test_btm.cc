/**
 * @file
 * Unit tests for the BTM best-effort hardware TM: versioning,
 * conflicts, contention management, capacity, interrupts, and the
 * status-register interface.
 */

#include <gtest/gtest.h>

#include "btm/btm.hh"
#include "mem/memory_system.hh"
#include "sim/machine.hh"

namespace utm {
namespace {

MachineConfig
quietConfig(int cores = 2)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

/**
 * Map the pages these tests touch.  A transaction's first access to
 * an unmapped page raises a (recoverable) PageFault abort — the
 * hybrid's abort handler resolves those, but raw-BtmUnit tests want
 * to exercise other behaviours.
 */
void
prefault(Machine &m, std::initializer_list<Addr> addrs)
{
    for (Addr a : addrs)
        m.memory().materializePage(a);
}

TEST(Btm, CommitMakesWritesVisible)
{
    Machine m(quietConfig());
    ThreadContext &tc = m.initContext();
    prefault(m, {0x100});
    BtmUnit btm(tc);
    btm.txBegin();
    tc.store(0x100, 42, 8);
    EXPECT_EQ(tc.load(0x100, 8), 42u); // Own writes visible in-tx.
    btm.txEnd();
    EXPECT_EQ(tc.load(0x100, 8), 42u);
    EXPECT_EQ(btm.commits(), 1u);
}

TEST(Btm, ExplicitAbortRollsBack)
{
    Machine m(quietConfig());
    ThreadContext &tc = m.initContext();
    BtmUnit btm(tc);
    tc.store(0x100, 1, 8);
    tc.store(0x108, 2, 8);
    bool aborted = false;
    try {
        btm.txBegin();
        tc.store(0x100, 99, 8);
        tc.store(0x108, 98, 8);
        tc.store(0x100, 97, 8); // Same word twice.
        btm.txAbort();
    } catch (const BtmAbortException &e) {
        aborted = true;
        EXPECT_EQ(e.reason, AbortReason::Explicit);
    }
    EXPECT_TRUE(aborted);
    EXPECT_EQ(tc.load(0x100, 8), 1u);
    EXPECT_EQ(tc.load(0x108, 8), 2u);
    EXPECT_FALSE(btm.inTx());
    EXPECT_EQ(btm.lastAbortReason(), AbortReason::Explicit);
}

TEST(Btm, FlattenedNesting)
{
    Machine m(quietConfig());
    ThreadContext &tc = m.initContext();
    prefault(m, {0x200});
    BtmUnit btm(tc);
    btm.txBegin();
    btm.txBegin();
    EXPECT_EQ(btm.nestingDepth(), 2);
    tc.store(0x200, 5, 8);
    btm.txEnd();
    EXPECT_TRUE(btm.inTx()); // Inner end doesn't commit.
    btm.txEnd();
    EXPECT_FALSE(btm.inTx());
    EXPECT_EQ(tc.load(0x200, 8), 5u);
}

TEST(Btm, NestingOverflowAborts)
{
    Machine m(quietConfig());
    ThreadContext &tc = m.initContext();
    BtmUnit btm(tc);
    bool aborted = false;
    try {
        for (int i = 0; i <= BtmUnit::kMaxNestingDepth + 1; ++i)
            btm.txBegin();
    } catch (const BtmAbortException &e) {
        aborted = true;
        EXPECT_EQ(e.reason, AbortReason::NestingOverflow);
    }
    EXPECT_TRUE(aborted);
}

TEST(Btm, SetOverflowAborts)
{
    // Fill one L1 set (8 ways) with speculative lines; the 9th
    // same-set line must abort with SetOverflow.
    MachineConfig mc = quietConfig();
    Machine m(mc);
    ThreadContext &tc = m.initContext();
    prefault(m, {0x100000, 0x110000, 0x120000});
    BtmUnit btm(tc);
    const Addr set_stride = std::uint64_t(mc.l1Sets) * kLineSize;
    bool aborted = false;
    try {
        btm.txBegin();
        for (unsigned i = 0; i <= mc.l1Ways; ++i)
            tc.store(0x100000 + i * set_stride, i, 8);
        btm.txEnd();
    } catch (const BtmAbortException &e) {
        aborted = true;
        EXPECT_EQ(e.reason, AbortReason::SetOverflow);
    }
    EXPECT_TRUE(aborted);
    // All speculative stores rolled back.
    for (unsigned i = 0; i <= mc.l1Ways; ++i)
        EXPECT_EQ(m.memory().read(0x100000 + i * set_stride, 8), 0u);
}

TEST(Btm, UnboundedModeSurvivesOverflow)
{
    MachineConfig mc = quietConfig();
    Machine m(mc);
    ThreadContext &tc = m.initContext();
    prefault(m, {0x100000, 0x110000, 0x120000});
    BtmUnit btm(tc, /*is_unbounded=*/true);
    const Addr set_stride = std::uint64_t(mc.l1Sets) * kLineSize;
    btm.txBegin();
    for (unsigned i = 0; i < 2 * mc.l1Ways; ++i)
        tc.store(0x100000 + i * set_stride, i + 1, 8);
    btm.txEnd();
    for (unsigned i = 0; i < 2 * mc.l1Ways; ++i)
        EXPECT_EQ(m.memory().read(0x100000 + i * set_stride, 8), i + 1);
}

TEST(Btm, ConflictAgeOrderedOlderWins)
{
    // Thread 0 (older tx) writes a line thread 1 (younger tx) holds:
    // thread 1 is wounded.
    Machine m(quietConfig());
    AbortReason t1_reason = AbortReason::None;
    prefault(m, {0x5000});
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        btm.txBegin(); // Older (begins first at clock 0, id 0).
        tc.advance(100);
        tc.store(0x5000, 1, 8); // Conflict: wound the younger reader.
        btm.txEnd();
        tc.advance(500);
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(10);
        BtmUnit btm(tc);
        try {
            btm.txBegin(); // Younger.
            tc.load(0x5000, 8);
            tc.advance(400); // Hold the read set while t0 writes.
            tc.load(0x5000, 8);
            btm.txEnd();
        } catch (const BtmAbortException &e) {
            t1_reason = e.reason;
        }
        tc.advance(500);
    });
    m.run();
    EXPECT_EQ(t1_reason, AbortReason::Conflict);
}

TEST(Btm, ConflictAgeOrderedYoungerNacked)
{
    // Thread 1 (younger) wants a line the older tx wrote: it is
    // NACKed until the older commits, then succeeds; nobody aborts.
    Machine m(quietConfig());
    int aborts = 0;
    prefault(m, {0x6000});
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        btm.txBegin();
        tc.store(0x6000, 7, 8);
        tc.advance(600); // Hold the line for a while.
        btm.txEnd();
        tc.advance(100);
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(50);
        BtmUnit btm(tc);
        try {
            btm.txBegin();
            tc.store(0x6000, 8, 8); // NACKs until t0 commits.
            btm.txEnd();
        } catch (const BtmAbortException &) {
            ++aborts;
        }
    });
    m.run();
    EXPECT_EQ(aborts, 0);
    EXPECT_EQ(m.memory().read(0x6000, 8), 8u);
    EXPECT_GT(m.stats().get("btm.nacks"), 0u);
}

TEST(Btm, RequesterWinsPolicyWoundsOlder)
{
    MachineConfig mc = quietConfig();
    Machine m(mc);
    BtmPolicy pol;
    pol.cm = BtmPolicy::Cm::RequesterWins;
    m.memsys().setBtmPolicy(pol);
    AbortReason t0_reason = AbortReason::None;
    prefault(m, {0x7000});
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        try {
            btm.txBegin(); // Older.
            tc.store(0x7000, 1, 8);
            tc.advance(500);
            tc.load(0x7000, 8); // Observe own doom.
            btm.txEnd();
        } catch (const BtmAbortException &e) {
            t0_reason = e.reason;
        }
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(50);
        BtmUnit btm(tc);
        btm.txBegin(); // Younger requester, wins anyway.
        tc.store(0x7000, 2, 8);
        btm.txEnd();
        tc.advance(600);
    });
    m.run();
    EXPECT_EQ(t0_reason, AbortReason::Conflict);
}

TEST(Btm, NonTransactionalAccessWoundsTx)
{
    Machine m(quietConfig());
    AbortReason reason = AbortReason::None;
    prefault(m, {0x8000});
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        try {
            btm.txBegin();
            tc.store(0x8000, 1, 8);
            tc.advance(500);
            tc.load(0x8000, 8);
            btm.txEnd();
        } catch (const BtmAbortException &e) {
            reason = e.reason;
        }
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(100);
        tc.store(0x8000, 99, 8); // Plain store: strong atomicity.
    });
    m.run();
    EXPECT_EQ(reason, AbortReason::NonTConflict);
    EXPECT_EQ(m.memory().read(0x8000, 8), 99u);
}

TEST(Btm, TimerInterruptAborts)
{
    MachineConfig mc = quietConfig(1);
    mc.timerQuantum = 1000;
    Machine m(mc);
    AbortReason reason = AbortReason::None;
    prefault(m, {0x9000});
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        try {
            btm.txBegin();
            tc.store(0x9000, 1, 8);
            tc.advance(5000); // Cross the quantum.
            btm.txEnd();
        } catch (const BtmAbortException &e) {
            reason = e.reason;
        }
    });
    m.run();
    EXPECT_EQ(reason, AbortReason::Interrupt);
    EXPECT_EQ(m.memory().read(0x9000, 8), 0u);
}

TEST(Btm, SyscallAndIoAbort)
{
    Machine m(quietConfig(1));
    std::vector<AbortReason> reasons;
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        for (int k = 0; k < 2; ++k) {
            try {
                btm.txBegin();
                if (k == 0)
                    tc.syscallMarker();
                else
                    tc.ioMarker();
                btm.txEnd();
            } catch (const BtmAbortException &e) {
                reasons.push_back(e.reason);
            }
        }
    });
    m.run();
    ASSERT_EQ(reasons.size(), 2u);
    EXPECT_EQ(reasons[0], AbortReason::Syscall);
    EXPECT_EQ(reasons[1], AbortReason::Io);
}

TEST(Btm, PageFaultAbortReportsAddress)
{
    Machine m(quietConfig(1));
    Addr fault_addr = 0;
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        try {
            btm.txBegin();
            tc.load(0x77770000, 8); // Unmapped page.
            btm.txEnd();
        } catch (const BtmAbortException &e) {
            EXPECT_EQ(e.reason, AbortReason::PageFault);
            fault_addr = e.addr;
        }
    });
    m.run();
    EXPECT_EQ(fault_addr, 0x77770000u);
}

TEST(Btm, UfoFaultAbortPolicy)
{
    Machine m(quietConfig(1));
    AbortReason reason = AbortReason::None;
    m.memory().setUfoBits(0xa000, kUfoBoth);
    prefault(m, {0xa000});
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        try {
            btm.txBegin();
            tc.load(0xa000, 8);
            btm.txEnd();
        } catch (const BtmAbortException &e) {
            reason = e.reason;
        }
    });
    m.run();
    EXPECT_EQ(reason, AbortReason::UfoFault);
}

TEST(Btm, UfoFaultStallPolicyWaitsForClear)
{
    MachineConfig mc = quietConfig();
    Machine m(mc);
    BtmPolicy pol;
    pol.ufoFaultResponse = BtmPolicy::UfoFaultResponse::Stall;
    m.memsys().setBtmPolicy(pol);
    m.memory().setUfoBits(0xb000, kUfoBoth);
    prefault(m, {0xb000});
    bool committed = false;
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        btm.txBegin();
        EXPECT_EQ(tc.load(0xb000, 8), 55u); // Stalls until cleared.
        btm.txEnd();
        committed = true;
    });
    m.addThread([&](ThreadContext &tc) {
        tc.disableUfo();
        tc.store(0xb000, 55, 8);
        tc.advance(500);
        tc.setUfoBits(0xb000, kUfoNone);
    });
    m.run();
    EXPECT_TRUE(committed);
}

TEST(Btm, UfoBitSetKillsSpeculativeReader)
{
    Machine m(quietConfig());
    AbortReason reason = AbortReason::None;
    prefault(m, {0xc000});
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        try {
            btm.txBegin();
            tc.load(0xc000, 8);
            tc.advance(500);
            tc.load(0xc000, 8);
            btm.txEnd();
        } catch (const BtmAbortException &e) {
            reason = e.reason;
        }
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(100);
        tc.setUfoBits(0xc000, kUfoWriteOnly); // Needs exclusive perm.
    });
    m.run();
    EXPECT_EQ(reason, AbortReason::UfoBitSet);
}

TEST(Btm, UfoBitSetOracleSparesFalseConflicts)
{
    // With the true-conflict oracle, setting fault-on-write for a
    // line a transaction only READ must not kill it.
    MachineConfig mc = quietConfig();
    Machine m(mc);
    BtmPolicy pol;
    pol.ufoSetTrueConflictOracle = true;
    m.memsys().setBtmPolicy(pol);
    bool committed = false;
    prefault(m, {0xd000});
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        btm.txBegin();
        tc.load(0xd000, 8);
        tc.advance(500);
        btm.txEnd();
        committed = true;
    });
    m.addThread([&](ThreadContext &tc) {
        tc.advance(100);
        tc.setUfoBits(0xd000, kUfoWriteOnly); // Reader-vs-reader: false.
        tc.advance(50);
        tc.setUfoBits(0xd000, kUfoNone);
    });
    m.run();
    EXPECT_TRUE(committed);
    EXPECT_GT(m.stats().get("ufo.bit_set_false_spared"), 0u);
}

TEST(Btm, ReadSetAndWriteSetTracked)
{
    Machine m(quietConfig(1));
    prefault(m, {0x100, 0x180});
    m.addThread([&](ThreadContext &tc) {
        BtmUnit btm(tc);
        btm.txBegin();
        tc.load(0x100, 8);
        tc.load(0x140, 8);
        tc.store(0x180, 1, 8);
        tc.store(0x184, 2, 4); // Same line.
        EXPECT_EQ(btm.readSetLines(), 2u);
        EXPECT_EQ(btm.writeSetLines(), 1u);
        EXPECT_TRUE(btm.wroteLine(0x180));
        EXPECT_FALSE(btm.wroteLine(0x100));
        btm.txEnd();
    });
    m.run();
}

} // namespace
} // namespace utm
