/**
 * @file
 * Unit tests for the TL2 baseline STM: versioned locks, lazy
 * versioning, validation, and abort paths.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "tl2/tl2.hh"

namespace utm {
namespace {

MachineConfig
quiet(int cores = 2)
{
    MachineConfig mc;
    mc.numCores = cores;
    mc.timerQuantum = 0;
    return mc;
}

TEST(Tl2, CommitPublishesWrites)
{
    Machine m(quiet(1));
    ThreadContext &tc = m.initContext();
    Tl2 tl2(m);
    tl2.setup(tc);
    tl2.txBegin(tc);
    tl2.txWrite(tc, 0x100, 42, 8);
    EXPECT_EQ(tl2.txRead(tc, 0x100, 8), 42u); // Read own write.
    tl2.txEnd(tc);
    EXPECT_EQ(m.memory().read(0x100, 8), 42u);
}

TEST(Tl2, LazyVersioningHidesWritesUntilCommit)
{
    Machine m(quiet(1));
    ThreadContext &tc = m.initContext();
    Tl2 tl2(m);
    tl2.setup(tc);
    tl2.txBegin(tc);
    tl2.txWrite(tc, 0x200, 7, 8);
    // Memory unchanged until commit (write buffer only).
    EXPECT_EQ(m.memory().read(0x200, 8), 0u);
    tl2.txEnd(tc);
    EXPECT_EQ(m.memory().read(0x200, 8), 7u);
}

TEST(Tl2, ReadOnlyTxCommitsWithoutClockBump)
{
    Machine m(quiet(1));
    ThreadContext &tc = m.initContext();
    Tl2 tl2(m);
    tl2.setup(tc);
    std::uint64_t clock0 = m.memory().read(Tl2::kClockAddr, 8);
    tl2.txBegin(tc);
    tl2.txRead(tc, 0x300, 8);
    tl2.txEnd(tc);
    EXPECT_EQ(m.memory().read(Tl2::kClockAddr, 8), clock0);
}

TEST(Tl2, WriterBumpsClock)
{
    Machine m(quiet(1));
    ThreadContext &tc = m.initContext();
    Tl2 tl2(m);
    tl2.setup(tc);
    std::uint64_t clock0 = m.memory().read(Tl2::kClockAddr, 8);
    tl2.txBegin(tc);
    tl2.txWrite(tc, 0x300, 1, 8);
    tl2.txEnd(tc);
    EXPECT_GT(m.memory().read(Tl2::kClockAddr, 8), clock0);
}

TEST(Tl2, StaleReadAborts)
{
    // A transaction that snapshotted the clock before a concurrent
    // writer committed must abort when it later reads the line.
    Machine m(quiet(2));
    Tl2 tl2(m);
    tl2.setup(m.initContext());
    int aborts = 0;
    bool done = false;
    m.addThread([&](ThreadContext &tc) {
        tl2.txBegin(tc);
        tl2.txWrite(tc, 0x400, 9, 8);
        tl2.txEnd(tc); // Commits quickly; version advances.
    });
    m.addThread([&](ThreadContext &tc) {
        // Begin before the writer commits, read after.
        for (;;) {
            try {
                tl2.txBegin(tc);
                if (!done) {
                    tc.advance(2000); // Let the writer commit.
                    done = true;
                }
                tl2.txRead(tc, 0x400, 8);
                tl2.txEnd(tc);
                return;
            } catch (const Tl2AbortException &) {
                ++aborts;
            }
        }
    });
    m.run();
    EXPECT_GE(aborts, 1);
}

TEST(Tl2, ConflictingWritersSerialize)
{
    Machine m(quiet(4));
    Tl2 tl2(m);
    tl2.setup(m.initContext());
    for (int t = 0; t < 4; ++t) {
        m.addThread([&](ThreadContext &tc) {
            for (int i = 0; i < 50; ++i) {
                for (;;) {
                    try {
                        tl2.txBegin(tc);
                        std::uint64_t v = tl2.txRead(tc, 0x500, 8);
                        tl2.txWrite(tc, 0x500, v + 1, 8);
                        tl2.txEnd(tc);
                        break;
                    } catch (const Tl2AbortException &) {
                        tc.advance(30 + tc.rng().nextBounded(50));
                        tc.yield();
                    }
                }
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(0x500, 8), 200u);
}

TEST(Tl2, MultiLineTransactionAtomic)
{
    // Writers keep x == y; readers must never see them differ.
    Machine m(quiet(2));
    Tl2 tl2(m);
    tl2.setup(m.initContext());
    const Addr x = 0x600, y = 0x680;
    bool mismatch = false;
    m.addThread([&](ThreadContext &tc) {
        for (int i = 0; i < 40; ++i) {
            for (;;) {
                try {
                    tl2.txBegin(tc);
                    std::uint64_t v = tl2.txRead(tc, x, 8);
                    tl2.txWrite(tc, x, v + 1, 8);
                    tl2.txWrite(tc, y, v + 1, 8);
                    tl2.txEnd(tc);
                    break;
                } catch (const Tl2AbortException &) {
                    tc.advance(20);
                    tc.yield();
                }
            }
        }
    });
    m.addThread([&](ThreadContext &tc) {
        for (int i = 0; i < 40; ++i) {
            try {
                tl2.txBegin(tc);
                std::uint64_t a = tl2.txRead(tc, x, 8);
                std::uint64_t b = tl2.txRead(tc, y, 8);
                tl2.txEnd(tc);
                if (a != b)
                    mismatch = true;
            } catch (const Tl2AbortException &) {
                tc.advance(20);
                tc.yield();
            }
        }
    });
    m.run();
    EXPECT_FALSE(mismatch);
    EXPECT_EQ(m.memory().read(x, 8), m.memory().read(y, 8));
}

} // namespace
} // namespace utm
