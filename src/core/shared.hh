/**
 * @file
 * Typed views over simulated memory: Shared<T> and SharedArray<T>.
 *
 * Thin, zero-state wrappers that bind an address to a C++ type so
 * workload code reads naturally:
 *
 *   Shared<std::uint64_t> counter(heap.allocZeroed(init, 8, true));
 *   tm->atomic(tc, [&](TxHandle &h) {
 *       counter.set(h, counter.get(h) + 1);
 *   });
 *
 * Both transactional (TxHandle) and non-transactional (ThreadContext)
 * accessors are provided; under a strongly-atomic system the
 * non-transactional accessors are safe by construction (they fault on
 * transactionally-held lines).
 */

#ifndef UFOTM_CORE_SHARED_HH
#define UFOTM_CORE_SHARED_HH

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/logging.hh"
#include "sim/thread_context.hh"
#include "sim/types.hh"

namespace utm {

/** A typed cell in simulated memory. */
template <typename T>
class Shared
{
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "Shared<T> requires a <=8-byte trivially copyable T");

  public:
    Shared() = default;
    explicit Shared(Addr a) : addr_(a)
    {
        utm_assert(lineOf(a) == lineOf(a + sizeof(T) - 1));
    }

    Addr addr() const { return addr_; }

    /** @name Transactional access. @{ */
    T get(TxHandle &h) const { return h.read<T>(addr_); }
    void set(TxHandle &h, T v) const { h.write<T>(addr_, v); }

    /** Read-modify-write convenience. */
    template <typename Fn>
    T
    update(TxHandle &h, Fn &&fn) const
    {
        T v = fn(get(h));
        set(h, v);
        return v;
    }
    /** @} */

    /** @name Non-transactional access (strong atomicity applies). @{ */
    T load(ThreadContext &tc) const { return tc.loadT<T>(addr_); }
    void store(ThreadContext &tc, T v) const { tc.storeT<T>(addr_, v); }
    /** @} */

  private:
    Addr addr_ = 0;
};

/** A typed array in simulated memory, one element per @p stride. */
template <typename T>
class SharedArray
{
  public:
    SharedArray() = default;

    /**
     * @param base   First element's address.
     * @param count  Number of elements.
     * @param stride Bytes between elements; defaults to one cache
     *               line per element (conflict-free padding).
     */
    SharedArray(Addr base, std::size_t count,
                std::size_t stride = kLineSize)
        : base_(base), count_(count), stride_(stride)
    {
        utm_assert(stride >= sizeof(T));
    }

    /** Allocate a zeroed array (line-per-element by default). */
    static SharedArray
    create(ThreadContext &tc, TxHeap &heap, std::size_t count,
           std::size_t stride = kLineSize)
    {
        Addr base = heap.allocZeroed(tc, count * stride, true);
        return SharedArray(base, count, stride);
    }

    std::size_t size() const { return count_; }
    Addr addrOf(std::size_t i) const
    {
        utm_assert(i < count_);
        return base_ + i * stride_;
    }

    Shared<T> operator[](std::size_t i) const
    {
        return Shared<T>(addrOf(i));
    }

    T get(TxHandle &h, std::size_t i) const { return (*this)[i].get(h); }
    void
    set(TxHandle &h, std::size_t i, T v) const
    {
        (*this)[i].set(h, v);
    }

  private:
    Addr base_ = 0;
    std::size_t count_ = 0;
    std::size_t stride_ = kLineSize;
};

} // namespace utm

#endif // UFOTM_CORE_SHARED_HH
