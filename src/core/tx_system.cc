#include "core/tx_system.hh"

#include <algorithm>

#include "hybrid/hytm.hh"
#include "hybrid/phtm.hh"
#include "hybrid/ufo_hybrid.hh"
#include "hybrid/unbounded_htm.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "tl2/tl2.hh"
#include "ustm/ustm.hh"

namespace utm {

const char *
txSystemKindName(TxSystemKind k)
{
    switch (k) {
      case TxSystemKind::NoTm: return "no-tm";
      case TxSystemKind::UnboundedHtm: return "unbounded-htm";
      case TxSystemKind::UfoHybrid: return "ufo-hybrid";
      case TxSystemKind::HyTm: return "hytm";
      case TxSystemKind::PhTm: return "phtm";
      case TxSystemKind::Ustm: return "ustm";
      case TxSystemKind::UstmStrong: return "ustm-ufo";
      case TxSystemKind::Tl2: return "tl2";
    }
    return "unknown";
}

bool
txSystemKindStronglyAtomic(TxSystemKind k)
{
    switch (k) {
      case TxSystemKind::NoTm:
      case TxSystemKind::UnboundedHtm:
      case TxSystemKind::UfoHybrid:
      case TxSystemKind::UstmStrong:
        return true;
      case TxSystemKind::HyTm:
      case TxSystemKind::PhTm:
      case TxSystemKind::Ustm:
      case TxSystemKind::Tl2:
        return false;
    }
    return false;
}

bool
txSystemKindDurable(TxSystemKind k)
{
    switch (k) {
      case TxSystemKind::UnboundedHtm:
      case TxSystemKind::UfoHybrid:
      case TxSystemKind::HyTm:
      case TxSystemKind::PhTm:
      case TxSystemKind::Ustm:
      case TxSystemKind::UstmStrong:
        return true;
      case TxSystemKind::NoTm:
      case TxSystemKind::Tl2:
        return false;
    }
    return false;
}

// ---------------------------------------------------------------------
// TxHandle

std::uint64_t
TxHandle::read(Addr a, unsigned size)
{
    switch (path_) {
      case Path::Raw:
        return tc_->load(a, size);
      case Path::Hardware:
        return sys_->htmRead(*tc_, a, size);
      case Path::Software:
        return sys_->stmRead(*tc_, a, size);
    }
    utm_panic("bad TxHandle path");
}

void
TxHandle::write(Addr a, std::uint64_t v, unsigned size)
{
    switch (path_) {
      case Path::Raw:
        tc_->store(a, v, size);
        return;
      case Path::Hardware:
        sys_->htmWrite(*tc_, a, v, size);
        return;
      case Path::Software:
        sys_->stmWrite(*tc_, a, v, size);
        return;
    }
    utm_panic("bad TxHandle path");
}

void
TxHandle::requireSoftware()
{
    sys_->onRequireSoftware(*tc_, path_);
}

void
TxHandle::retryWait()
{
    sys_->onRetryWait(*tc_, path_);
    utm_panic("onRetryWait returned"); // Unreachable by contract.
}

void
TxHandle::onCommit(std::function<void(ThreadContext &)> action)
{
    sys_->deferred(*tc_).commit.push_back(std::move(action));
}

void
TxHandle::onAbort(std::function<void(ThreadContext &)> action)
{
    sys_->deferred(*tc_).abort.push_back(std::move(action));
}

// ---------------------------------------------------------------------
// TxSystem base

TxSystem::TxSystem(TxSystemKind kind, Machine &machine,
                   const TmPolicy &policy)
    : kind_(kind), machine_(machine), policy_(policy)
{
}

void
TxSystem::setup()
{
}

std::uint64_t
TxSystem::stmRead(ThreadContext &, Addr, unsigned)
{
    utm_panic("%s has no software path", name());
}

void
TxSystem::stmWrite(ThreadContext &, Addr, std::uint64_t, unsigned)
{
    utm_panic("%s has no software path", name());
}

void
TxSystem::onRequireSoftware(ThreadContext &, TxHandle::Path)
{
    // Systems with no (distinct) software path ignore the request.
}

bool
TxSystem::oracleInvariantsHold(std::string *) const
{
    return true;
}

bool
TxSystem::oracleLineBusy(LineAddr) const
{
    return false;
}

void
TxSystem::onRetryWait(ThreadContext &, TxHandle::Path)
{
    utm_panic("%s does not support transactional waiting", name());
}

TxSystem::DeferredActions &
TxSystem::deferred(ThreadContext &tc)
{
    return deferred_[tc.id()];
}

void
TxSystem::beginAttempt(ThreadContext &tc)
{
    deferred_[tc.id()].clear();
}

void
TxSystem::commitAttempt(ThreadContext &tc)
{
    DeferredActions &d = deferred_[tc.id()];
    for (auto &fn : d.commit)
        fn(tc);
    d.clear();
}

void
TxSystem::abortAttempt(ThreadContext &tc)
{
    machine_.telemetry().onAbort(tc.id());
    DeferredActions &d = deferred_[tc.id()];
    // Compensation runs newest-first (like scope unwinding).
    for (auto it = d.abort.rbegin(); it != d.abort.rend(); ++it)
        (*it)(tc);
    d.clear();
}

// ---------------------------------------------------------------------
// Simple systems: NoTm, pure USTM, TL2

namespace {

/** No concurrency control at all; sequential-baseline runs only. */
class NoTmSystem final : public TxSystem
{
  public:
    NoTmSystem(Machine &machine, const TmPolicy &policy)
        : TxSystem(TxSystemKind::NoTm, machine, policy)
    {
    }

    void
    atomicAt(ThreadContext &tc, TxSiteId, const Body &body) override
    {
        if (depth_[tc.id()] > 0) {
            // Flattened nesting: stay in the enclosing "transaction".
            TxHandle h = makeHandle(tc, TxHandle::Path::Raw);
            body(h);
            return;
        }
        ++depth_[tc.id()];
        beginAttempt(tc);
        TxHandle h = makeHandle(tc, TxHandle::Path::Raw);
        body(h);
        machine_.notifyCommitPoint(tc); // Trivial commit point.
        machine_.stats().inc("tm.commits.raw");
        commitAttempt(tc);
        --depth_[tc.id()];
    }

    const char *name() const override { return "no-tm"; }

    bool
    oracleLineBusy(LineAddr) const override
    {
        // Raw in-place writes: mid-body state is legitimately ahead
        // of any committed-state model while a body is running.
        for (int d : depth_)
            if (d > 0)
                return true;
        return false;
    }

  private:
    std::array<int, kMaxThreads> depth_{};
};

/** Pure software TM: USTM, optionally with UFO strong atomicity. */
class UstmSystem final : public TxSystem
{
  public:
    UstmSystem(TxSystemKind kind, Machine &machine,
               const TmPolicy &policy, bool strong)
        : TxSystem(kind, machine, policy),
          ustm_(machine, strong, policy.ustm)
    {
    }

    void setup() override { ustm_.setup(machine_.initContext()); }

    void
    atomicAt(ThreadContext &tc, TxSiteId, const Body &body) override
    {
        if (ustm_.inTx(tc.id())) {
            // Flattened nesting.
            ustm_.txBegin(tc);
            TxHandle h = makeHandle(tc, TxHandle::Path::Software);
            body(h);
            ustm_.txEnd(tc);
            return;
        }
        for (;;) {
            try {
                beginAttempt(tc);
                ustm_.txBegin(tc);
                TxHandle h = makeHandle(tc, TxHandle::Path::Software);
                body(h);
                ustm_.txEnd(tc);
                machine_.stats().inc("tm.commits.sw");
                commitAttempt(tc);
                return;
            } catch (const UstmAbortException &) {
                abortAttempt(tc);
                machine_.stats().inc("tm.sw_retries");
            }
        }
    }

    const char *
    name() const override
    {
        return kind_ == TxSystemKind::UstmStrong ? "ustm-ufo" : "ustm";
    }

    Ustm &ustm() { return ustm_; }

    [[noreturn]] void
    onRetryWait(ThreadContext &tc, TxHandle::Path) override
    {
        ustm_.txRetryWait(tc); // throws after wakeup
    }

    bool
    oracleInvariantsHold(std::string *why) const override
    {
        return ustm_.verifyOracleInvariants(why);
    }

    bool
    oracleLineBusy(LineAddr line) const override
    {
        return ustm_.lineBusy(line);
    }

    Ustm *ustmRuntime() override { return &ustm_; }

  protected:
    std::uint64_t
    stmRead(ThreadContext &tc, Addr a, unsigned size) override
    {
        return ustm_.txRead(tc, a, size);
    }

    void
    stmWrite(ThreadContext &tc, Addr a, std::uint64_t v,
             unsigned size) override
    {
        ustm_.txWrite(tc, a, v, size);
    }

  private:
    Ustm ustm_;
};

/** TL2 baseline. */
class Tl2System final : public TxSystem
{
  public:
    Tl2System(Machine &machine, const TmPolicy &policy)
        : TxSystem(TxSystemKind::Tl2, machine, policy), tl2_(machine)
    {
    }

    void setup() override { tl2_.setup(machine_.initContext()); }

    void
    atomicAt(ThreadContext &tc, TxSiteId, const Body &body) override
    {
        if (tl2_.inTx(tc.id())) {
            // Flattened nesting: run inside the enclosing attempt.
            TxHandle h = makeHandle(tc, TxHandle::Path::Software);
            body(h);
            return;
        }
        int attempts = 0;
        for (;;) {
            try {
                beginAttempt(tc);
                tl2_.txBegin(tc);
                TxHandle h = makeHandle(tc, TxHandle::Path::Software);
                body(h);
                tl2_.txEnd(tc);
                machine_.stats().inc("tm.commits.sw");
                commitAttempt(tc);
                return;
            } catch (const Tl2AbortException &) {
                abortAttempt(tc);
                machine_.stats().inc("tm.sw_retries");
                ++attempts;
                const int exp = std::min(attempts, policy_.backoffMaxExp);
                const Cycles base = policy_.backoffBase << exp;
                UTM_PROF_PHASE(machine_, tc, ProfComp::Tm,
                               ProfPhase::Backoff);
                tc.advance(base + tc.rng().nextBounded(base + 1));
                tc.yield();
            }
        }
    }

    const char *name() const override { return "tl2"; }

    bool
    oracleInvariantsHold(std::string *why) const override
    {
        return tl2_.verifyOracleInvariants(why);
    }

    bool
    oracleLineBusy(LineAddr line) const override
    {
        return tl2_.lineBusy(line);
    }

  protected:
    std::uint64_t
    stmRead(ThreadContext &tc, Addr a, unsigned size) override
    {
        return tl2_.txRead(tc, a, size);
    }

    void
    stmWrite(ThreadContext &tc, Addr a, std::uint64_t v,
             unsigned size) override
    {
        tl2_.txWrite(tc, a, v, size);
    }

  private:
    Tl2 tl2_;
};

} // namespace

// ---------------------------------------------------------------------
// Factory

std::unique_ptr<TxSystem>
TxSystem::create(TxSystemKind kind, Machine &machine,
                 const TmPolicy &policy)
{
    std::unique_ptr<TxSystem> sys;
    switch (kind) {
      case TxSystemKind::NoTm:
        sys = std::make_unique<NoTmSystem>(machine, policy);
        break;
      case TxSystemKind::UnboundedHtm:
        sys = std::make_unique<UnboundedHtm>(machine, policy);
        break;
      case TxSystemKind::UfoHybrid:
        sys = std::make_unique<UfoHybridTm>(machine, policy);
        break;
      case TxSystemKind::HyTm:
        sys = std::make_unique<HyTm>(machine, policy);
        break;
      case TxSystemKind::PhTm:
        sys = std::make_unique<PhTm>(machine, policy);
        break;
      case TxSystemKind::Ustm:
        sys = std::make_unique<UstmSystem>(TxSystemKind::Ustm, machine,
                                           policy, false);
        break;
      case TxSystemKind::UstmStrong:
        sys = std::make_unique<UstmSystem>(TxSystemKind::UstmStrong,
                                           machine, policy, true);
        break;
      case TxSystemKind::Tl2:
        sys = std::make_unique<Tl2System>(machine, policy);
        break;
    }
    if (!sys)
        utm_panic("bad TxSystemKind");
    if (policy.durable) {
        if (txSystemKindDurable(kind))
            machine.persist().activate();
        else
            utm_warn("backend %s cannot run durable commits; "
                     "TmPolicy::durable ignored",
                     txSystemKindName(kind));
    }
    return sys;
}

} // namespace utm
