/**
 * @file
 * Public transactional-memory API.
 *
 * A TxSystem wraps one of the paper's TM configurations around a
 * simulated Machine.  Workload code runs transactions with:
 *
 *   auto sys = TxSystem::create(TxSystemKind::UfoHybrid, machine);
 *   sys->setup();                       // once, before machine.run()
 *   ...inside a simulated thread...
 *   sys->atomic(tc, [&](TxHandle &h) {
 *       std::uint64_t v = h.read<std::uint64_t>(addr);
 *       h.write<std::uint64_t>(addr, v + 1);
 *   });
 *
 * The body may be re-executed after aborts, so it must only mutate
 * simulated memory through the handle (plus idempotent host-local
 * state).  TxHandle::read/write dispatch to the current execution
 * path: raw (no TM), hardware (BTM — zero instrumentation in the UFO
 * hybrid, otable-checking barriers in HyTM), or software (USTM/TL2
 * barriers).
 */

#ifndef UFOTM_CORE_TX_SYSTEM_HH
#define UFOTM_CORE_TX_SYSTEM_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hybrid/policy.hh"
#include "sim/thread_context.hh"
#include "sim/types.hh"

namespace utm {

class Machine;
class TxSystem;
class Ustm;

/** The TM configurations evaluated in the paper (Section 5). */
enum class TxSystemKind
{
    NoTm,         ///< No concurrency control (sequential baseline).
    UnboundedHtm, ///< Idealized HTM without the L1 capacity bound.
    UfoHybrid,    ///< The paper's proposal (BTM + strongly-atomic USTM).
    HyTm,         ///< Hybrid with otable-checking hardware barriers.
    PhTm,         ///< Phased TM (HTM/STM phases exclude each other).
    Ustm,         ///< Pure USTM, weakly atomic.
    UstmStrong,   ///< Pure USTM with UFO strong atomicity.
    Tl2,          ///< TL2 baseline STM.
};

const char *txSystemKindName(TxSystemKind k);

/**
 * Does this configuration guarantee strong atomicity — i.e. are plain
 * (non-transactional) accesses isolated from in-flight transactions?
 * True for the paper's UFO-protected systems and for HTM-only
 * configurations (hardware transactions are invisible until commit);
 * false wherever an uninstrumented read can observe speculative STM
 * state (HyTM, PhTM, plain USTM, TL2).
 */
bool txSystemKindStronglyAtomic(TxSystemKind k);

/**
 * Can this configuration run with durable (redo-log) commits
 * (TmPolicy::durable, mem/persist.hh)?  True for every real TM
 * backend — their commits funnel through Ustm::txEnd (software) or
 * BtmUnit::txEnd (hardware), which host the redo-log append.  False
 * for NoTm (no commit point to anchor a record to) and TL2 (lazy
 * version-clock commit; out of scope for the durability study).
 */
bool txSystemKindDurable(TxSystemKind k);

/** Handle passed to a transaction body; routes accesses per path. */
class TxHandle
{
  public:
    enum class Path { Raw, Hardware, Software };

    Path path() const { return path_; }
    ThreadContext &ctx() { return *tc_; }

    std::uint64_t read(Addr a, unsigned size);
    void write(Addr a, std::uint64_t v, unsigned size);

    template <typename T>
    T
    read(Addr a)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        std::uint64_t raw = read(a, sizeof(T));
        T v;
        std::memcpy(&v, &raw, sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(Addr a, T v)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        std::uint64_t raw = 0;
        std::memcpy(&raw, &v, sizeof(T));
        write(a, raw, sizeof(T));
    }

    /**
     * Force this transaction onto the software path (models
     * operations only the STM supports; also drives the Figure 7
     * forced-failover microbenchmark).  On systems with no software
     * path this is a no-op.
     */
    void requireSoftware();

    /**
     * Defer a side effect until this transaction commits (paper
     * Section 6: "deferring" is how most side-effecting operations —
     * output I/O, frees, notifications — become transaction-safe).
     * The action runs exactly once, after the commit, in registration
     * order; if the attempt aborts, the queue from that attempt is
     * discarded.
     */
    void onCommit(std::function<void(ThreadContext &)> action);

    /**
     * Register compensation to run if this transaction attempt
     * aborts (paper Section 6: "compensation code" for operations
     * that had to happen eagerly).  Discarded on commit.
     */
    void onAbort(std::function<void(ThreadContext &)> action);

    /**
     * Perform an (idempotent) system call inside the transaction
     * (paper Section 6: e.g. sbrk, gettimeofday).  Hardware
     * transactions cannot survive kernel entry, so on the hardware
     * path this aborts and the transaction fails over to software,
     * where the call is simply charged.
     */
    void
    syscall()
    {
        tc_->syscallMarker();
    }

    /** As syscall(), for I/O (deferred/compensated in the STM). */
    void
    io()
    {
        tc_->ioMarker();
    }

    /**
     * Transactional waiting (paper Section 6's `retry`): blocks until
     * another transaction writes something this transaction has read,
     * then re-executes the body from the start.  Never returns to the
     * caller.  On the hardware path this compiles to an explicit
     * abort that fails over to software, exactly as the paper
     * describes; only software (USTM-backed) systems support the wait
     * itself.
     */
    [[noreturn]] void retryWait();

  private:
    friend class TxSystem;
    TxHandle(TxSystem &sys, ThreadContext &tc, Path path)
        : sys_(&sys), tc_(&tc), path_(path)
    {
    }

    TxSystem *sys_;
    ThreadContext *tc_;
    Path path_;
};

/** Base class of every TM configuration. */
class TxSystem
{
  public:
    using Body = std::function<void(TxHandle &)>;

    /** Build a TM system of the given kind over @p machine. */
    static std::unique_ptr<TxSystem> create(TxSystemKind kind,
                                            Machine &machine,
                                            const TmPolicy &policy = {});

    virtual ~TxSystem() = default;

    /** One-time metadata setup (otable, counters); call before run(). */
    virtual void setup();

    /** Run @p body as one transaction on thread @p tc. */
    void
    atomic(ThreadContext &tc, const Body &body)
    {
        AtomicSiteGuard guard(tc, kTxSiteNone);
        atomicAt(tc, kTxSiteNone, body);
    }

    /**
     * As atomic(), tagged with a static transaction-site id
     * (sim/types.hh) for the adaptive path predictor
     * (src/hybrid/path_predictor.hh).  tmserve keys sites by request
     * verb (optionally by key-range bucket); systems without a
     * predictor — and any system with the predictor disabled, the
     * default — treat the site as inert metadata.
     */
    void
    atomic(ThreadContext &tc, TxSiteId site, const Body &body)
    {
        AtomicSiteGuard guard(tc, site);
        atomicAt(tc, site, body);
    }

    /** Implementation hook behind both atomic() overloads. */
    virtual void atomicAt(ThreadContext &tc, TxSiteId site,
                          const Body &body) = 0;

    virtual const char *name() const = 0;

    /**
     * Reason of the most recent hardware-path abort observed by
     * @p tc's BTM unit, or AbortReason::None on systems without a
     * hardware path.  Host-visible feedback for adaptive callers
     * (the tmserve coalescer shrinks its batch size on
     * conflict/capacity aborts); the value persists across the retry
     * that follows the abort, so a re-executed transaction body can
     * classify why its previous attempt died.
     */
    virtual AbortReason
    lastHwAbortReason(ThreadContext &tc) const
    {
        (void)tc;
        return AbortReason::None;
    }

    TxSystemKind kind() const { return kind_; }
    Machine &machine() { return machine_; }
    const TmPolicy &policy() const { return policy_; }

    /**
     * @name tmtorture oracle hooks (sim/oracle.hh).
     *
     * Functional machine-state predicates evaluated by the torture
     * harness at preemption points (no thread is mid-event).
     * @{
     */

    /** Backend-internal invariants (lockstep, undo balance, ...). */
    virtual bool oracleInvariantsHold(std::string *why) const;

    /**
     * May @p line legitimately differ from serially-committed state
     * right now (speculative writer, eager in-flight writes, commit
     * write-back, or abort unwinding touching the line)?
     */
    virtual bool oracleLineBusy(LineAddr line) const;

    /** The USTM runtime behind this system, if it has one. */
    virtual Ustm *ustmRuntime() { return nullptr; }
    /** @} */

  protected:
    TxSystem(TxSystemKind kind, Machine &machine,
             const TmPolicy &policy);

    friend class TxHandle;

    /**
     * Marks @p tc as inside an atomic section for its whole dynamic
     * extent (across every retry), labelled with the outermost site.
     * Exception-safe, so the telemetry bus (sim/telemetry.hh) can
     * attribute conflict edges and watchdog state by site even while
     * an abort unwinds.
     */
    struct AtomicSiteGuard
    {
        AtomicSiteGuard(ThreadContext &tc, TxSiteId site) : tc_(tc)
        {
            tc_.pushAtomicSite(site);
        }
        ~AtomicSiteGuard() { tc_.popAtomicSite(); }
        AtomicSiteGuard(const AtomicSiteGuard &) = delete;
        AtomicSiteGuard &operator=(const AtomicSiteGuard &) = delete;

      private:
        ThreadContext &tc_;
    };

    /** Per-attempt deferred/compensating actions (paper Section 6). */
    struct DeferredActions
    {
        std::vector<std::function<void(ThreadContext &)>> commit;
        std::vector<std::function<void(ThreadContext &)>> abort;

        void
        clear()
        {
            commit.clear();
            abort.clear();
        }
    };

    /** Reset the per-attempt queues (call when an attempt starts). */
    void beginAttempt(ThreadContext &tc);
    /** Run + clear commit actions (call after a commit). */
    void commitAttempt(ThreadContext &tc);
    /** Run + clear compensation (call after an attempt aborts). */
    void abortAttempt(ThreadContext &tc);

    DeferredActions &deferred(ThreadContext &tc);

    /** @name Per-path access hooks. @{ */
    virtual std::uint64_t
    htmRead(ThreadContext &tc, Addr a, unsigned size)
    {
        return tc.load(a, size); // Zero-overhead hardware access.
    }

    virtual void
    htmWrite(ThreadContext &tc, Addr a, std::uint64_t v, unsigned size)
    {
        tc.store(a, v, size);
    }

    virtual std::uint64_t stmRead(ThreadContext &tc, Addr a,
                                  unsigned size);
    virtual void stmWrite(ThreadContext &tc, Addr a, std::uint64_t v,
                          unsigned size);
    /** @} */

    /** requireSoftware() hook; default: ignore. */
    virtual void onRequireSoftware(ThreadContext &tc, TxHandle::Path p);

    /** retryWait() hook; default: unsupported (panics). */
    [[noreturn]] virtual void onRetryWait(ThreadContext &tc,
                                          TxHandle::Path p);

    TxHandle makeHandle(ThreadContext &tc, TxHandle::Path p)
    {
        return TxHandle(*this, tc, p);
    }

    TxSystemKind kind_;
    Machine &machine_;
    TmPolicy policy_;

  private:
    std::array<DeferredActions, kMaxThreads> deferred_;
};

} // namespace utm

#endif // UFOTM_CORE_TX_SYSTEM_HH
