#include "svc/load_gen.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace utm::svc {

const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::Get: return "get";
      case ReqType::Put: return "put";
      case ReqType::Scan: return "scan";
      case ReqType::Rmw: return "rmw";
      case ReqType::Xfer: return "xfer";
      case ReqType::RawGet: return "raw_get";
    }
    return "?";
}

namespace {

/** Per-client stream seed, decoupled from the machine seed stream. */
std::uint64_t
streamSeed(std::uint64_t seed, int client)
{
    return (seed + 1) * 0x9e3779b97f4a7c15ull +
           std::uint64_t(client) * 0xbf58476d1ce4e5b9ull;
}

ReqType
drawType(Rng &rng, const RequestMix &mix)
{
    const int p = int(rng.nextBounded(100));
    if (p < mix.getPct)
        return ReqType::Get;
    if (p < mix.getPct + mix.putPct)
        return ReqType::Put;
    if (p < mix.getPct + mix.putPct + mix.scanPct)
        return ReqType::Scan;
    if (p < mix.getPct + mix.putPct + mix.scanPct + mix.rmwPct)
        return ReqType::Rmw;
    if (p < mix.getPct + mix.putPct + mix.scanPct + mix.rmwPct +
                mix.xferPct)
        return ReqType::Xfer;
    return ReqType::RawGet;
}

/** Uniform in [mean/2, 3*mean/2] (never zero for mean >= 2). */
Cycles
drawGap(Rng &rng, Cycles mean)
{
    if (mean == 0)
        return 0;
    return mean / 2 + rng.nextBounded(mean + 1);
}

} // namespace

std::vector<Request>
generateClientStream(const LoadGenConfig &cfg, int client)
{
    utm_assert(cfg.keyspace >= 1);
    utm_assert(cfg.mix.getPct + cfg.mix.putPct + cfg.mix.scanPct +
                   cfg.mix.rmwPct + cfg.mix.xferPct +
                   cfg.mix.rawGetPct ==
               100);

    Rng rng(streamSeed(cfg.seed, client));
    const Zipfian zipf(cfg.keyspace,
                       cfg.zipfTheta > 0.0 ? cfg.zipfTheta : 0.0);

    std::vector<Request> stream;
    stream.reserve(cfg.requestsPerClient);
    Cycles arrival = 0;
    for (int i = 0; i < cfg.requestsPerClient; ++i) {
        Request r;
        r.type = drawType(rng, cfg.mix);
        // Keys are 1-based (TxHashSet reserves 0 as its empty
        // sentinel); rank 0 is the hottest key under skew.
        r.key = 1 + (cfg.zipfTheta > 0.0
                         ? zipf.sample(rng)
                         : rng.nextBounded(cfg.keyspace));
        if (r.type == ReqType::Xfer && cfg.keyspace >= 2) {
            // Destination key must differ from the source; nudge a
            // collision to the next key (keeps the draw count fixed).
            r.key2 = 1 + (cfg.zipfTheta > 0.0
                              ? zipf.sample(rng)
                              : rng.nextBounded(cfg.keyspace));
            if (r.key2 == r.key)
                r.key2 = 1 + r.key % cfg.keyspace;
        }
        r.value = rng.next() | 1;
        if (cfg.openLoop) {
            arrival += drawGap(rng, cfg.meanInterarrival);
            r.arrival = arrival;
        } else {
            r.think = drawGap(rng, cfg.meanThink);
        }
        stream.push_back(r);
    }
    return stream;
}

} // namespace utm::svc
