#include "svc/sharded_store.hh"

#include "rt/heap.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm::svc {

ShardedKvStore
ShardedKvStore::create(ThreadContext &init,
                       std::uint64_t buckets_per_shard,
                       std::uint64_t keyspace, unsigned shards)
{
    Machine &machine = init.machine();
    const MachineConfig &mc = machine.config();
    utm_assert(shards >= 1);
    // Heap striping and otable routing must be the same partition,
    // otherwise a shard's data would land in another shard's otable.
    utm_assert(shards == 1 || shards == mc.otableShards);

    ShardedKvStore st;
    st.keyspace_ = keyspace;
    st.shardKeys_.resize(shards);
    for (std::uint64_t k = 1; k <= keyspace; ++k)
        st.shardKeys_[shardOfKey(k, shards)].push_back(k);

    st.heaps_.reserve(shards);
    st.stores_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
        st.heaps_.push_back(std::make_unique<TxHeap>(
            machine, mc.shardHeapBase(s),
            shards == 1 ? mc.heapSize : mc.shardHeapSize()));
        // Size each shard's membership index for its actual key count
        // (never zero; TxHashSet needs a non-trivial capacity).
        const std::uint64_t shard_keys =
            st.shardKeys_[s].empty() ? 1 : st.shardKeys_[s].size();
        st.stores_.push_back(KvStore::create(
            init, *st.heaps_[s], buckets_per_shard, shard_keys));
    }
    return st;
}

void
ShardedKvStore::populate(ThreadContext &init)
{
    for (unsigned s = 0; s < shards(); ++s)
        stores_[s].populateKeys(init, shardKeys_[s]);
}

bool
ShardedKvStore::get(TxHandle &h, std::uint64_t key,
                    std::uint64_t *value_out)
{
    return stores_[shardOf(key)].get(h, key, value_out);
}

bool
ShardedKvStore::put(TxHandle &h, std::uint64_t key, std::uint64_t value)
{
    return stores_[shardOf(key)].put(h, key, value);
}

bool
ShardedKvStore::rmw(TxHandle &h, std::uint64_t key, std::uint64_t delta,
                    std::uint64_t *new_out)
{
    return stores_[shardOf(key)].rmw(h, key, delta, new_out);
}

bool
ShardedKvStore::rawGet(ThreadContext &tc, std::uint64_t key,
                       std::uint64_t *value_out)
{
    return stores_[shardOf(key)].rawGet(tc, key, value_out);
}

Addr
ShardedKvStore::valueAddr(TxHandle &h, std::uint64_t key)
{
    return stores_[shardOf(key)].valueAddr(h, key);
}

int
ShardedKvStore::scan(TxHandle &h, std::uint64_t start, int len)
{
    // Group the wrapped key run by owning shard, then visit shards in
    // canonical (ascending) index order — the cross-shard acquisition
    // order every multi-shard transaction follows.
    std::vector<std::vector<std::uint64_t>> by_shard(shards());
    for (int i = 0; i < len; ++i) {
        const std::uint64_t key = 1 + (start - 1 + i) % keyspace_;
        by_shard[shardOf(key)].push_back(key);
    }
    int found = 0;
    for (unsigned s = 0; s < shards(); ++s)
        for (const std::uint64_t key : by_shard[s])
            if (stores_[s].map().lookup(h, key))
                ++found;
    return found;
}

bool
ShardedKvStore::xfer(TxHandle &h, std::uint64_t from, std::uint64_t to,
                     std::uint64_t delta, std::uint64_t *new_from,
                     std::uint64_t *new_to)
{
    utm_assert(from != to);
    // Canonical-order acquisition: walk the lower (shard index, key)
    // side first.  The later reads/writes only touch lines already
    // owned by this transaction, so the *first* acquisition of every
    // line follows canonical order.
    const unsigned sf = shardOf(from), st = shardOf(to);
    const bool from_first = sf < st || (sf == st && from < to);
    const std::uint64_t k1 = from_first ? from : to;
    const std::uint64_t k2 = from_first ? to : from;
    const Addr a1 = valueAddr(h, k1);
    const Addr a2 = valueAddr(h, k2);
    if (a1 == 0 || a2 == 0)
        return false;
    const Addr a_from = from_first ? a1 : a2;
    const Addr a_to = from_first ? a2 : a1;
    const std::uint64_t nf = h.read(a_from, 8) - delta;
    const std::uint64_t nt = h.read(a_to, 8) + delta;
    h.write(a_from, nf, 8);
    h.write(a_to, nt, 8);
    if (new_from)
        *new_from = nf;
    if (new_to)
        *new_to = nt;
    return true;
}

bool
ShardedKvStore::check(ThreadContext &init)
{
    for (unsigned s = 0; s < shards(); ++s)
        if (!stores_[s].checkKeys(init, shardKeys_[s]))
            return false;
    return true;
}

unsigned
ShardedKvStore::scanParticipants(std::uint64_t start, int len) const
{
    std::uint64_t mask = 0;
    for (int i = 0; i < len; ++i) {
        const std::uint64_t key = 1 + (start - 1 + i) % keyspace_;
        mask |= 1ull << (shardOf(key) & 63);
    }
    unsigned n = 0;
    for (; mask != 0; mask &= mask - 1)
        ++n;
    return n;
}

} // namespace utm::svc
