/**
 * @file
 * Adaptive request coalescing for the tmserve hot path.
 *
 * Every served request pays the full per-transaction tax — BTM
 * begin/commit, UFO bit manipulation, otable acquisition/release —
 * even when a client's admission queue is deep with tiny compatible
 * requests.  The Coalescer amortizes that tax: a worker drains up to
 * K consecutive queued requests with the same home shard and a
 * compatible verb class (read-only GET/SCAN batches; update PUT/RMW
 * batches) and executes them inside a *single* atomic transaction.
 * Per-request arrival→completion latency and abort attribution are
 * preserved by the caller (service.cc): a batch abort attributes to
 * every member, and re-execution splits the batch back to one
 * request.
 *
 * K is adaptive per batch site — one site per (verb class, home
 * shard), allocated above the per-verb singleton sites so the path
 * predictor (src/hybrid/path_predictor.hh) tracks batched and
 * unbatched execution of the same verb separately:
 *
 *  - multiplicative shrink (halve, floor 1) when a batch aborts for
 *    a conflict- or capacity-class reason (or is killed on the
 *    software path) — a bigger footprint made the transaction a
 *    bigger target;
 *  - additive growth (+1, ceiling BatchParams::maxBatch) on a clean
 *    first-attempt hardware commit — the batch fit, try a bigger one;
 *  - software-path clean commits grow only when
 *    BatchParams::growOnSwCommit is set, so predicted-software sites
 *    keep small batches by default (the software path's conflict
 *    window grows with footprint much faster than its fixed
 *    begin/commit tax shrinks);
 *  - environmental aborts (interrupt, syscall, page fault) leave K
 *    alone: they say nothing about the batch's footprint.
 *
 * All knobs live in BatchParams (SvcParams::batch) and default *off*;
 * with batching disabled the serving path is byte-identical to the
 * unbatched baseline.
 */

#ifndef UFOTM_SVC_COALESCER_HH
#define UFOTM_SVC_COALESCER_HH

#include <map>

#include "mem/tm_iface.hh"
#include "sim/types.hh"
#include "svc/load_gen.hh"

namespace utm::svc {

/** Request-coalescing knobs (SvcParams::batch); default off. */
struct BatchParams
{
    /** Master switch: off keeps the serving path byte-identical. */
    bool enable = false;

    /** Batch-size ceiling (and the K histogram's upper bound). */
    unsigned maxBatch = 8;

    /** Starting K for a batch site that has not been seen yet. */
    unsigned initialK = 1;

    /** Let clean software-path commits grow K too (default: only
     *  hardware commits grow, so predicted-software sites stay
     *  small). */
    bool growOnSwCommit = false;
};

/** Verb classes that may share one coalesced transaction. */
enum class VerbClass
{
    ReadOnly, ///< GET and SCAN: no writes, footprints just add up.
    Update,   ///< PUT and RMW: single-key writers, no cross pairs.
};
constexpr int kNumVerbClasses = 2;

/**
 * Per-worker adaptive batch sizing.  Host-local state only (a
 * per-site K table), so it is legal to consult and update from
 * transaction-body callers; determinism follows from the schedule
 * determinism of the abort/commit events that drive it.
 */
class Coalescer
{
  public:
    /**
     * @param p           the knobs (SvcParams::batch);
     * @param verbSites   number of per-verb singleton sites already
     *                    allocated below the batch sites (the batch
     *                    site range starts at 1 + verbSites);
     * @param shards      store shard count (>= 1).
     */
    Coalescer(const BatchParams &p, TxSiteId verbSites, unsigned shards)
        : p_(p), base_(1 + verbSites), shards_(shards)
    {
    }

    /** Batchable verb class of @p t, or -1 (Xfer: multi-shard pairs
     *  break the same-home invariant; RawGet: not a transaction). */
    static int
    verbClassOf(ReqType t)
    {
        switch (t) {
          case ReqType::Get:
          case ReqType::Scan:
            return static_cast<int>(VerbClass::ReadOnly);
          case ReqType::Put:
          case ReqType::Rmw:
            return static_cast<int>(VerbClass::Update);
          default:
            return -1;
        }
    }

    /** Transaction-site id of (verb class, home shard) batches. */
    TxSiteId
    site(int verbClass, unsigned homeShard) const
    {
        return base_ + TxSiteId(verbClass) * TxSiteId(shards_) +
               TxSiteId(homeShard);
    }

    /** Current K for a batch site (>= 1, <= maxBatch). */
    unsigned
    k(TxSiteId site) const
    {
        const auto it = k_.find(site);
        return it == k_.end() ? clamp(p_.initialK) : it->second;
    }

    /** Clean (first-attempt) commit: additive growth, gated by path. */
    void
    onCleanCommit(TxSiteId site, bool softwarePath)
    {
        if (softwarePath && !p_.growOnSwCommit)
            return;
        unsigned &k = slot(site);
        if (k < clamp(p_.maxBatch))
            ++k;
    }

    /**
     * The batch aborted at least once; @p reason is the first abort's
     * hardware reason (AbortReason::None for a software-path kill).
     * Conflict- and capacity-class reasons halve K; environmental
     * reasons leave it alone.
     */
    void
    onBatchAbort(TxSiteId site, AbortReason reason, bool softwareKill)
    {
        if (!softwareKill && !shrinks(reason))
            return;
        unsigned &k = slot(site);
        k = k > 1 ? k / 2 : 1;
    }

    const BatchParams &params() const { return p_; }

  private:
    static bool
    shrinks(AbortReason r)
    {
        switch (r) {
          case AbortReason::Conflict:
          case AbortReason::SetOverflow:
          case AbortReason::NestingOverflow:
          case AbortReason::Explicit:
          case AbortReason::UfoFault:
          case AbortReason::UfoBitSet:
          case AbortReason::NonTConflict:
            return true;
          default:
            return false;
        }
    }

    unsigned
    clamp(unsigned k) const
    {
        if (k < 1)
            return 1;
        return k > p_.maxBatch ? p_.maxBatch : k;
    }

    unsigned &
    slot(TxSiteId site)
    {
        auto [it, fresh] = k_.try_emplace(site, clamp(p_.initialK));
        (void)fresh;
        return it->second;
    }

    BatchParams p_;
    TxSiteId base_;
    unsigned shards_;
    std::map<TxSiteId, unsigned> k_; ///< site -> current K.
};

} // namespace utm::svc

#endif // UFOTM_SVC_COALESCER_HH
