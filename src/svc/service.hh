/**
 * @file
 * tmserve: the transactional KV request-serving workload.
 *
 * A KvServiceWorkload drives a (possibly sharded) KV store
 * (src/svc/sharded_store.hh) with per-client request streams from the
 * load generator (src/svc/load_gen.hh), under any TxSystemKind,
 * through the standard Workload/runWorkload machinery — so stats-JSON
 * export, tracing, and scheduler-policy selection all apply
 * unchanged.
 *
 * What it measures (the `svc.*` family, docs/OBSERVABILITY.md):
 *  - per-request latency histograms, whole-service and per verb
 *    (`svc.latency`, `svc.latency.<type>`) — open-loop latency is
 *    measured from *arrival*, so queueing delay lands in the tail;
 *  - served/shed/queued request counts (`svc.requests[.<type>]`,
 *    `svc.shed[.<type>]`, `svc.queued`);
 *  - per-request abort attribution: how many hardware and software
 *    aborts each served request absorbed
 *    (`svc.request_aborts[.hw|.sw]`, `svc.aborts_per_request`);
 *  - open-loop admission-queue depth (`svc.queue_depth`, observed
 *    at both the admission and drain edges);
 *  - with batching enabled (`SvcParams::batch`), coalescing
 *    outcomes: batches formed, members per batch and per verb,
 *    splits, and batch-abort attribution (`batch.batches`,
 *    `batch.members[.<type>]`, `batch.commits`,
 *    `batch.aborts[.<reason>]`, `batch.splits`, `batch.k`);
 *  - with shards > 1, per-shard routing/queueing and cross-shard
 *    commit/abort attribution (`shard.requests[.<i>]`,
 *    `shard.shed[.<i>]`, `shard.queue_depth.<i>`,
 *    `shard.participants`, `shard.cross[.commits|.aborts]`).
 *
 * Raw (non-transactional) GET traffic rides in the same streams; it
 * is the service-shaped probe of the paper's headline property —
 * strong atomicity — and is checked against the sequential shadow
 * oracle by the tmtorture kv workload (src/torture).
 */

#ifndef UFOTM_SVC_SERVICE_HH
#define UFOTM_SVC_SERVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "stamp/workload.hh"
#include "svc/coalescer.hh"
#include "svc/load_gen.hh"
#include "svc/sharded_store.hh"

namespace utm::svc {

/** Service shape: store geometry, load model, admission control. */
struct SvcParams
{
    LoadGenConfig load;

    /** TxMap bucket count (power of two) — per shard when sharded;
     *  small values lengthen the chain walks, modelling a deeper
     *  index. */
    std::uint64_t mapBuckets = 64;

    /**
     * Store shards.  1 = the unsharded paper configuration.  N > 1
     * partitions the store across N per-shard heaps/otables
     * (svc/sharded_store.hh); runService() forces the machine's
     * otableShards to match.
     */
    unsigned shards = 1;

    /** Open-loop admission bound: a due request is shed when the
     *  client's backlog of already-due requests exceeds this.  When
     *  sharded, the backlog is counted per home shard — each client
     *  keeps one logical queue per shard, so a saturated shard sheds
     *  without starving traffic routed to idle shards. */
    std::uint64_t maxQueueDepth = 16;

    /** Cycles charged for rejecting (shedding) one request. */
    Cycles shedCost = 20;

    /**
     * Transaction-site granularity for the path predictor
     * (src/hybrid/path_predictor.hh).  Requests always carry a static
     * site id keyed by verb; with this set, the site is additionally
     * keyed by the primary key's shard-routing bucket, so a predictor
     * can separate hot and cold key ranges of the same verb.
     */
    bool siteByKeyRange = false;

    /**
     * Request coalescing (svc/coalescer.hh): drain up to K
     * consecutive compatible requests into one transaction, K
     * adaptive per (verb class, home shard) batch site.  Default off;
     * the disabled serving path is byte-identical to the unbatched
     * baseline.
     */
    BatchParams batch;
};

/** The request-serving workload; one simulated thread per client. */
class KvServiceWorkload final : public Workload
{
  public:
    explicit KvServiceWorkload(const SvcParams &p) : p_(p) {}

    const char *name() const override { return "kv-service"; }

    void setup(ThreadContext &init, TxHeap &heap, int nthreads) override;
    void threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                    int nthreads) override;
    bool validate(ThreadContext &init) override;

    const SvcParams &params() const { return p_; }

  private:
    struct Attempts;
    struct BatchMember;

    void serve(ThreadContext &tc, TxSystem &sys, const Request &r,
               Attempts *att);

    /** The coalesced serving loop (SvcParams::batch.enable). */
    void threadBodyBatched(ThreadContext &tc, TxSystem &sys, int tid);

    /** Apply one batch member's store operation inside the batch
     *  transaction (batchable verbs only). */
    void applyMember(TxHandle &h, const Request &r);

    /** Completion accounting shared by the single and batched paths:
     *  svc.requests/latency, per-request abort attribution, and the
     *  sharded counters. */
    void finishRequest(ThreadContext &tc, const Request &r, Cycles start,
                       std::uint64_t hwAborts, std::uint64_t swAborts,
                       bool sharded, unsigned home);

    /** Shed accounting for one open-loop rejection. */
    void shedOne(ThreadContext &tc, const Request &r, bool sharded,
                 unsigned home);

    /** This client's backlog: stream entries from @p from (inclusive)
     *  that are already due at @p now, filtered to @p home's logical
     *  queue when sharded. */
    std::uint64_t backlogDepth(const std::vector<Request> &stream,
                               std::size_t from, Cycles now, bool sharded,
                               unsigned home) const;

    /** Drain-edge queue-depth observation (open loop): the backlog
     *  left behind after a completed serve, so the depth histograms
     *  capture both edges, not just admission. */
    void observeDrainDepth(ThreadContext &tc,
                           const std::vector<Request> &stream,
                           std::size_t next, bool sharded, unsigned home);

    /** Home shard of a request (shard of its primary key). */
    unsigned homeShard(const Request &r) const;

    /** Distinct shards the request's transaction touches. */
    unsigned participants(const Request &r) const;

    /** Static transaction-site id for a request (predictor key). */
    TxSiteId txSite(const Request &r) const;

    SvcParams p_;
    std::unique_ptr<ShardedKvStore> store_;
    std::vector<std::vector<Request>> streams_; ///< One per client.
    /** Precomputed per-shard counter names (sharded configs only). @{ */
    std::vector<std::string> shardReqName_;
    std::vector<std::string> shardShedName_;
    std::vector<std::string> shardDepthName_;
    /** @} */
};

/** runWorkload() with a KvServiceWorkload built from @p params. */
RunResult runService(const SvcParams &params, const RunConfig &cfg);

} // namespace utm::svc

#endif // UFOTM_SVC_SERVICE_HH
