/**
 * @file
 * Deterministic request-stream generation for the transactional KV
 * service (src/svc/service.hh).
 *
 * Each simulated client gets its own pre-generated stream of typed
 * requests (GET/PUT/SCAN/RMW plus raw non-transactional GETs), with
 * keys drawn uniformly or Zipfian-skewed.  Streams are generated
 * host-side before the scheduler starts, from a seed derived only
 * from (config seed, client id) — so the offered load is identical
 * across TM backends and scheduler policies, and any difference in
 * the measured latencies is attributable to the TM system alone.
 *
 * Two load models:
 *  - closed-loop: a client issues a request, waits for completion,
 *    thinks for a drawn think time, repeats.  Offered load adapts to
 *    service rate; queueing never builds up and nothing is shed.
 *  - open-loop: each request carries an absolute arrival cycle
 *    (drawn interarrival gaps, accumulated).  A client serves its
 *    queue in arrival order; when the backlog of already-due
 *    requests exceeds the admission bound the due request is shed.
 *    Latency is measured from *arrival*, so queueing delay is part
 *    of the tail — the regime where TM contention costs surface.
 */

#ifndef UFOTM_SVC_LOAD_GEN_HH
#define UFOTM_SVC_LOAD_GEN_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace utm::svc {

/** Request verbs served by the KV service. */
enum class ReqType
{
    Get,    ///< Transactional point lookup.
    Put,    ///< Transactional overwrite of an existing key.
    Scan,   ///< Transactional lookup of a run of consecutive keys.
    Rmw,    ///< Transactional read-modify-write (in-place add).
    Xfer,   ///< Transactional transfer between two keys — the
            ///< cross-shard multi-shard RMW when the keys hash to
            ///< different shards (svc/sharded_store.hh).
    RawGet, ///< NON-transactional point lookup (strong-atomicity probe).
};
constexpr int kNumReqTypes = 6;

/** Stable snake_case name ("get", ..., "raw_get") for svc.* counters. */
const char *reqTypeName(ReqType t);

/** One request in a client's stream. */
struct Request
{
    ReqType type = ReqType::Get;
    std::uint64_t key = 1;   ///< In [1, keyspace].
    std::uint64_t key2 = 0;  ///< Xfer only: destination key (!= key).
    std::uint64_t value = 0; ///< Payload for Put, delta for Rmw/Xfer.
    Cycles arrival = 0;      ///< Open-loop: absolute arrival cycle.
    Cycles think = 0;        ///< Closed-loop: think time before issuing.
};

/** Request mix in percent of offered load; must sum to 100. */
struct RequestMix
{
    int getPct = 50;
    int putPct = 20;
    int scanPct = 10;
    int rmwPct = 10;
    int xferPct = 0; ///< Two-key transfers (cross-shard when sharded).
    int rawGetPct = 10; ///< Raw non-transactional reads.
};

/** Load-generation parameters (one stream per client). */
struct LoadGenConfig
{
    std::uint64_t keyspace = 256; ///< Keys 1..keyspace, pre-populated.
    double zipfTheta = 0.0;       ///< 0 = uniform; →1 = heavily skewed.
    RequestMix mix;
    int requestsPerClient = 64;
    int scanLen = 8; ///< Consecutive keys per Scan.

    bool openLoop = false;
    /** Open-loop: mean per-client interarrival gap (cycles); gaps are
     *  drawn uniformly from [mean/2, 3*mean/2]. */
    Cycles meanInterarrival = 2000;
    /** Closed-loop: mean think time (cycles), same drawn range. */
    Cycles meanThink = 200;

    std::uint64_t seed = 1;
};

/**
 * Generate client @p client's full request stream.  Depends only on
 * (cfg, client) — not on the machine, backend, or scheduler.
 */
std::vector<Request> generateClientStream(const LoadGenConfig &cfg,
                                          int client);

} // namespace utm::svc

#endif // UFOTM_SVC_LOAD_GEN_HH
