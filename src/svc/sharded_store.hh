/**
 * @file
 * Sharded transactional KV store: N per-shard KvStores, each over its
 * own heap address stripe — and therefore its own otable shard
 * (MachineConfig::shardOfAddr routes every line of stripe s to otable
 * shard s).  Keys are routed by a stable hash, so the per-key request
 * distribution spreads across shards regardless of key skew shape.
 *
 * Single-key requests (GET/PUT/RMW/raw GET) touch exactly one shard.
 * Two operations cross shards:
 *
 *  - SCAN of a consecutive key run: the run is grouped by owning
 *    shard and the groups are visited in canonical (ascending)
 *    shard-index order;
 *  - XFER (multi-shard read-modify-write): moves a delta between two
 *    keys, acquiring the lower-canonical (shard index, then key)
 *    side first.  Sum over all values is invariant, which is what the
 *    torture shadow oracle checks across abort/unwind.
 *
 * Canonical-order acquisition plus the USTM commit protocol (release
 * drains shard by shard in the same canonical order,
 * Ustm::releaseAll) keeps cross-shard transactions deadlock-free by
 * construction; the age-based kill/stall contention manager remains
 * the safety net for data conflicts.  With shards == 1 this class
 * degenerates exactly to a single KvStore over the whole heap.
 */

#ifndef UFOTM_SVC_SHARDED_STORE_HH
#define UFOTM_SVC_SHARDED_STORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "svc/kv_store.hh"

namespace utm {
class Machine;
class TxHeap;
} // namespace utm

namespace utm::svc {

/**
 * Key → shard routing hash (splitmix-style finalizer).  One stable
 * definition shared by the store, the service layer's per-shard
 * accounting, and the tests — all three must agree on key ownership.
 */
inline unsigned
shardOfKey(std::uint64_t key, unsigned shards)
{
    if (shards <= 1)
        return 0;
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return unsigned(x % shards);
}

/** N-shard partitioned KvStore with cross-shard SCAN/XFER. */
class ShardedKvStore
{
  public:
    /**
     * Build @p shards empty per-shard stores, each with
     * @p buckets_per_shard TxMap buckets, over per-shard heap stripes
     * of @p init's machine.  @p shards must match the machine's
     * otableShards (the heap striping and the otable routing are the
     * same partition).
     */
    static ShardedKvStore create(ThreadContext &init,
                                 std::uint64_t buckets_per_shard,
                                 std::uint64_t keyspace,
                                 unsigned shards);

    /** Insert keys 1..keyspace, each into its owning shard. */
    void populate(ThreadContext &init);

    /** @name Single-shard requests (route by key hash). @{ */
    bool get(TxHandle &h, std::uint64_t key,
             std::uint64_t *value_out = nullptr);
    bool put(TxHandle &h, std::uint64_t key, std::uint64_t value);
    bool rmw(TxHandle &h, std::uint64_t key, std::uint64_t delta,
             std::uint64_t *new_out = nullptr);
    bool rawGet(ThreadContext &tc, std::uint64_t key,
                std::uint64_t *value_out = nullptr);
    Addr valueAddr(TxHandle &h, std::uint64_t key);
    /** @} */

    /**
     * Read @p len consecutive keys starting at @p start (wrapping at
     * the keyspace), visiting the owning shards in canonical order;
     * returns how many keys were present.
     */
    int scan(TxHandle &h, std::uint64_t start, int len);

    /**
     * Multi-shard RMW: value[from] -= delta, value[to] += delta, with
     * canonical-order acquisition.  False if either key is absent;
     * on success optionally reports both written values.  @p from and
     * @p to must differ.
     */
    bool xfer(TxHandle &h, std::uint64_t from, std::uint64_t to,
              std::uint64_t delta, std::uint64_t *new_from = nullptr,
              std::uint64_t *new_to = nullptr);

    /** Post-run structural check of every shard (init context). */
    bool check(ThreadContext &init);

    /** @name Routing introspection (service accounting, tests). @{ */
    unsigned shards() const { return unsigned(stores_.size()); }
    std::uint64_t keyspace() const { return keyspace_; }

    unsigned
    shardOf(std::uint64_t key) const
    {
        return shardOfKey(key, shards());
    }

    /** Distinct shards a scan of @p len keys from @p start touches. */
    unsigned scanParticipants(std::uint64_t start, int len) const;

    KvStore &shard(unsigned s) { return stores_[s]; }
    const std::vector<std::uint64_t> &shardKeys(unsigned s) const
    {
        return shardKeys_[s];
    }
    /** @} */

  private:
    ShardedKvStore() = default;

    std::uint64_t keyspace_ = 0;
    std::vector<std::unique_ptr<TxHeap>> heaps_; ///< One per stripe.
    std::vector<KvStore> stores_;
    std::vector<std::vector<std::uint64_t>> shardKeys_;
};

} // namespace utm::svc

#endif // UFOTM_SVC_SHARDED_STORE_HH
