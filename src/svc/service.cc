#include "svc/service.hh"

#include <algorithm>
#include <string>

#include "rt/heap.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"

namespace utm::svc {

void
KvServiceWorkload::setup(ThreadContext &init, TxHeap &heap, int nthreads)
{
    store_ = std::make_unique<KvStore>(KvStore::create(
        init, heap, p_.mapBuckets, p_.load.keyspace));
    store_->populate(init, p_.load.keyspace);

    streams_.clear();
    for (int c = 0; c < nthreads; ++c)
        streams_.push_back(generateClientStream(p_.load, c));
}

/**
 * Per-request attempt accounting.  The transaction body re-executes
 * once per abort (and once more after a hardware→software failover),
 * so counting body entries per path — host-local, exactly the
 * re-execution-tolerant pattern the TxSystem contract allows — yields
 * the request's own abort count without touching global counters.
 */
struct KvServiceWorkload::Attempts
{
    std::uint64_t hw = 0; ///< Hardware (or raw) body executions.
    std::uint64_t sw = 0; ///< Software body executions.
    bool finalSw = false; ///< Path of the latest (committed) attempt.

    void
    note(TxHandle &h)
    {
        if (h.path() == TxHandle::Path::Software) {
            ++sw;
            finalSw = true;
        } else {
            ++hw;
            finalSw = false;
        }
    }

    /** Hardware attempts that aborted (incl. those that failed over). */
    std::uint64_t
    hwAborts() const
    {
        return hw - (hw && !finalSw ? 1 : 0);
    }

    /** Software attempts that aborted and re-ran. */
    std::uint64_t
    swAborts() const
    {
        return sw - (sw && finalSw ? 1 : 0);
    }
};

void
KvServiceWorkload::serve(ThreadContext &tc, TxSystem &sys,
                         const Request &r, Attempts *att)
{
    switch (r.type) {
      case ReqType::Get:
        sys.atomic(tc, [&](TxHandle &h) {
            att->note(h);
            std::uint64_t v = 0;
            const bool hit = store_->get(h, r.key, &v);
            utm_assert(hit);
        });
        break;
      case ReqType::Put:
        sys.atomic(tc, [&](TxHandle &h) {
            att->note(h);
            const bool hit = store_->put(h, r.key, r.value);
            utm_assert(hit);
        });
        break;
      case ReqType::Scan:
        sys.atomic(tc, [&](TxHandle &h) {
            att->note(h);
            store_->scan(h, r.key, p_.load.scanLen, p_.load.keyspace);
        });
        break;
      case ReqType::Rmw:
        sys.atomic(tc, [&](TxHandle &h) {
            att->note(h);
            const bool hit = store_->rmw(h, r.key, r.value);
            utm_assert(hit);
        });
        break;
      case ReqType::RawGet: {
        // Outside any transaction, on purpose: the strong-atomicity
        // probe.  The walk is structurally safe (fixed key set); the
        // value is meaningful only on strongly-atomic backends.
        std::uint64_t v = 0;
        const bool hit = store_->rawGet(tc, r.key, &v);
        utm_assert(hit);
        break;
      }
    }
}

void
KvServiceWorkload::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                              int nthreads)
{
    (void)nthreads;
    StatsRegistry &st = tc.stats();
    const std::vector<Request> &stream = streams_.at(tid);

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Request &r = stream[i];
        Cycles start;
        if (p_.load.openLoop) {
            // Wait for the request's arrival, in bounded slices so
            // other clients keep interleaving deterministically.
            while (tc.now() < r.arrival) {
                tc.advance(std::min<Cycles>(r.arrival - tc.now(), 64));
                tc.yield();
            }
            // Admission control over this client's backlog: every
            // stream request already due but not yet completed.
            std::uint64_t depth = 0;
            for (std::size_t j = i;
                 j < stream.size() && stream[j].arrival <= tc.now(); ++j)
                ++depth;
            st.observe("svc.queue_depth", depth);
            if (depth > p_.maxQueueDepth) {
                st.inc("svc.shed");
                st.inc(std::string("svc.shed.") + reqTypeName(r.type));
                tc.advance(p_.shedCost);
                continue;
            }
            if (tc.now() > r.arrival)
                st.inc("svc.queued");
            start = r.arrival; // Queueing delay counts toward latency.
        } else {
            tc.advance(r.think);
            start = tc.now();
        }

        Attempts att;
        serve(tc, sys, r, &att);
        const Cycles latency = tc.now() - start;

        st.inc("svc.requests");
        st.inc(std::string("svc.requests.") + reqTypeName(r.type));
        st.observe("svc.latency", latency);
        st.observe(std::string("svc.latency.") + reqTypeName(r.type),
                   latency);

        const std::uint64_t hw_aborts = att.hwAborts();
        const std::uint64_t sw_aborts = att.swAborts();
        if (hw_aborts)
            st.inc("svc.request_aborts.hw", hw_aborts);
        if (sw_aborts)
            st.inc("svc.request_aborts.sw", sw_aborts);
        if (hw_aborts + sw_aborts)
            st.inc("svc.request_aborts", hw_aborts + sw_aborts);
        st.observe("svc.aborts_per_request", hw_aborts + sw_aborts);
    }
}

bool
KvServiceWorkload::validate(ThreadContext &init)
{
    return store_->check(init, p_.load.keyspace);
}

RunResult
runService(const SvcParams &params, const RunConfig &cfg)
{
    KvServiceWorkload w(params);
    return runWorkload(w, cfg);
}

} // namespace utm::svc
