#include "svc/service.hh"

#include <algorithm>
#include <string>

#include "rt/heap.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"

namespace utm::svc {

void
KvServiceWorkload::setup(ThreadContext &init, TxHeap &heap, int nthreads)
{
    // The sharded store carves its own per-stripe heaps; the
    // workload-level allocator is deliberately unused (nothing else
    // allocates in this workload, so the address ranges stay
    // disjoint).
    (void)heap;
    store_ = std::make_unique<ShardedKvStore>(ShardedKvStore::create(
        init, p_.mapBuckets, p_.load.keyspace, p_.shards));
    store_->populate(init);

    shardReqName_.clear();
    shardShedName_.clear();
    shardDepthName_.clear();
    if (p_.shards > 1) {
        for (unsigned s = 0; s < p_.shards; ++s) {
            const std::string suffix = std::to_string(s);
            shardReqName_.push_back(
                std::string("shard.requests.") + suffix);
            shardShedName_.push_back(std::string("shard.shed.") + suffix);
            shardDepthName_.push_back(
                std::string("shard.queue_depth.") + suffix);
        }
    }

    streams_.clear();
    for (int c = 0; c < nthreads; ++c)
        streams_.push_back(generateClientStream(p_.load, c));
}

unsigned
KvServiceWorkload::homeShard(const Request &r) const
{
    return store_->shardOf(r.key);
}

unsigned
KvServiceWorkload::participants(const Request &r) const
{
    switch (r.type) {
      case ReqType::Scan:
        return store_->scanParticipants(r.key, p_.load.scanLen);
      case ReqType::Xfer:
        return store_->shardOf(r.key) == store_->shardOf(r.key2) ? 1
                                                                 : 2;
      default:
        return 1;
    }
}

/**
 * Per-request attempt accounting.  The transaction body re-executes
 * once per abort (and once more after a hardware→software failover),
 * so counting body entries per path — host-local, exactly the
 * re-execution-tolerant pattern the TxSystem contract allows — yields
 * the request's own abort count without touching global counters.
 */
struct KvServiceWorkload::Attempts
{
    std::uint64_t hw = 0; ///< Hardware (or raw) body executions.
    std::uint64_t sw = 0; ///< Software body executions.
    bool finalSw = false; ///< Path of the latest (committed) attempt.

    void
    note(TxHandle &h)
    {
        if (h.path() == TxHandle::Path::Software) {
            ++sw;
            finalSw = true;
        } else {
            ++hw;
            finalSw = false;
        }
    }

    /** Hardware attempts that aborted (incl. those that failed over). */
    std::uint64_t
    hwAborts() const
    {
        return hw - (hw && !finalSw ? 1 : 0);
    }

    /** Software attempts that aborted and re-ran. */
    std::uint64_t
    swAborts() const
    {
        return sw - (sw && finalSw ? 1 : 0);
    }
};

TxSiteId
KvServiceWorkload::txSite(const Request &r) const
{
    // Site 0 is kTxSiteNone; verbs start at 1.  With key-range sites,
    // each (verb, routing bucket) pair gets its own id so a predictor
    // can separate hot and cold ranges of the same verb.
    TxSiteId site = 1 + static_cast<TxSiteId>(r.type);
    if (p_.siteByKeyRange)
        site += kNumReqTypes * store_->shardOf(r.key);
    return site;
}

void
KvServiceWorkload::serve(ThreadContext &tc, TxSystem &sys,
                         const Request &r, Attempts *att)
{
    const TxSiteId site = txSite(r);
    switch (r.type) {
      case ReqType::Get:
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            std::uint64_t v = 0;
            const bool hit = store_->get(h, r.key, &v);
            utm_assert(hit);
        });
        break;
      case ReqType::Put:
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            const bool hit = store_->put(h, r.key, r.value);
            utm_assert(hit);
        });
        break;
      case ReqType::Scan:
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            store_->scan(h, r.key, p_.load.scanLen);
        });
        break;
      case ReqType::Rmw:
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            const bool hit = store_->rmw(h, r.key, r.value);
            utm_assert(hit);
        });
        break;
      case ReqType::Xfer:
        // The multi-shard RMW: moves `value` from key to key2 in one
        // transaction, acquiring shards in canonical order
        // (sharded_store.cc).
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            const bool hit = store_->xfer(h, r.key, r.key2, r.value);
            utm_assert(hit);
        });
        break;
      case ReqType::RawGet: {
        // Outside any transaction, on purpose: the strong-atomicity
        // probe.  The walk is structurally safe (fixed key set); the
        // value is meaningful only on strongly-atomic backends.
        std::uint64_t v = 0;
        const bool hit = store_->rawGet(tc, r.key, &v);
        utm_assert(hit);
        break;
      }
    }
}

std::uint64_t
KvServiceWorkload::backlogDepth(const std::vector<Request> &stream,
                                std::size_t from, Cycles now,
                                bool sharded, unsigned home) const
{
    std::uint64_t depth = 0;
    for (std::size_t j = from;
         j < stream.size() && stream[j].arrival <= now; ++j)
        if (!sharded || homeShard(stream[j]) == home)
            ++depth;
    return depth;
}

void
KvServiceWorkload::observeDrainDepth(ThreadContext &tc,
                                     const std::vector<Request> &stream,
                                     std::size_t next, bool sharded,
                                     unsigned home)
{
    if (!p_.load.openLoop)
        return;
    StatsRegistry &st = tc.stats();
    const std::uint64_t depth =
        backlogDepth(stream, next, tc.now(), sharded, home);
    st.observe("svc.queue_depth", depth);
    if (sharded)
        st.observe(shardDepthName_[home], depth);
}

void
KvServiceWorkload::shedOne(ThreadContext &tc, const Request &r,
                           bool sharded, unsigned home)
{
    StatsRegistry &st = tc.stats();
    st.inc("svc.shed");
    st.inc(std::string("svc.shed.") + reqTypeName(r.type));
    if (sharded) {
        st.inc("shard.shed");
        st.inc(shardShedName_[home]);
    }
}

void
KvServiceWorkload::finishRequest(ThreadContext &tc, const Request &r,
                                 Cycles start, std::uint64_t hw_aborts,
                                 std::uint64_t sw_aborts, bool sharded,
                                 unsigned home)
{
    StatsRegistry &st = tc.stats();
    const Cycles latency = tc.now() - start;

    st.inc("svc.requests");
    st.inc(std::string("svc.requests.") + reqTypeName(r.type));
    st.observe("svc.latency", latency);
    st.observe(std::string("svc.latency.") + reqTypeName(r.type),
               latency);

    if (hw_aborts)
        st.inc("svc.request_aborts.hw", hw_aborts);
    if (sw_aborts)
        st.inc("svc.request_aborts.sw", sw_aborts);
    if (hw_aborts + sw_aborts)
        st.inc("svc.request_aborts", hw_aborts + sw_aborts);
    st.observe("svc.aborts_per_request", hw_aborts + sw_aborts);

    if (sharded) {
        st.inc("shard.requests");
        st.inc(shardReqName_[home]);
        const unsigned parts = participants(r);
        st.observe("shard.participants", parts);
        if (parts > 1) {
            // Cross-shard attribution: one committed attempt plus
            // however many aborted attempts this request absorbed.
            st.inc("shard.cross", 1 + hw_aborts + sw_aborts);
            st.inc("shard.cross.commits");
            if (hw_aborts + sw_aborts)
                st.inc("shard.cross.aborts", hw_aborts + sw_aborts);
        }
    }
}

void
KvServiceWorkload::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                              int nthreads)
{
    (void)nthreads;
    if (p_.batch.enable) {
        threadBodyBatched(tc, sys, tid);
        return;
    }
    StatsRegistry &st = tc.stats();
    const std::vector<Request> &stream = streams_.at(tid);

    const bool sharded = p_.shards > 1;

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Request &r = stream[i];
        const unsigned home = sharded ? homeShard(r) : 0;
        Cycles start;
        if (p_.load.openLoop) {
            // Wait for the request's arrival, in bounded slices so
            // other clients keep interleaving deterministically.
            while (tc.now() < r.arrival) {
                tc.advance(std::min<Cycles>(r.arrival - tc.now(), 64));
                tc.yield();
            }
            // Admission control over this client's backlog: every
            // stream request already due but not yet completed.  When
            // sharded, each client keeps one logical queue per home
            // shard, so only backlog bound for the same shard counts.
            const std::uint64_t depth =
                backlogDepth(stream, i, tc.now(), sharded, home);
            st.observe("svc.queue_depth", depth);
            if (sharded)
                st.observe(shardDepthName_[home], depth);
            if (depth > p_.maxQueueDepth) {
                shedOne(tc, r, sharded, home);
                tc.advance(p_.shedCost);
                continue;
            }
            if (tc.now() > r.arrival)
                st.inc("svc.queued");
            start = r.arrival; // Queueing delay counts toward latency.
        } else {
            tc.advance(r.think);
            start = tc.now();
        }

        Attempts att;
        serve(tc, sys, r, &att);
        finishRequest(tc, r, start, att.hwAborts(), att.swAborts(),
                      sharded, home);
        observeDrainDepth(tc, stream, i + 1, sharded, home);
    }
}

/** One request inside a forming/executing batch. */
struct KvServiceWorkload::BatchMember
{
    const Request *req;       ///< Stream entry (owned by streams_).
    Cycles start;             ///< Admission time (latency origin).
    std::uint64_t debtHw = 0; ///< Hardware aborts attributed so far.
    std::uint64_t debtSw = 0; ///< Software aborts attributed so far.
};

void
KvServiceWorkload::applyMember(TxHandle &h, const Request &r)
{
    switch (r.type) {
      case ReqType::Get: {
        std::uint64_t v = 0;
        const bool hit = store_->get(h, r.key, &v);
        utm_assert(hit);
        break;
      }
      case ReqType::Put: {
        const bool hit = store_->put(h, r.key, r.value);
        utm_assert(hit);
        break;
      }
      case ReqType::Scan:
        store_->scan(h, r.key, p_.load.scanLen);
        break;
      case ReqType::Rmw: {
        const bool hit = store_->rmw(h, r.key, r.value);
        utm_assert(hit);
        break;
      }
      default:
        utm_panic("unbatchable verb inside a batch body");
    }
}

/**
 * The coalesced serving loop.  Differences from threadBody():
 *
 *  - after admitting a batchable request (the head), up to K-1
 *    consecutive compatible requests — same verb class, same home
 *    shard, and (open loop) already due — are admitted into the same
 *    batch, each through the standard admission accounting;
 *  - the batch executes as ONE transaction at its (verb class, home
 *    shard) batch site.  The first attempt serves every member; any
 *    re-execution (the previous attempt aborted) serves only the
 *    first member — the split — and the remainder re-batches under
 *    the (possibly shrunk) adaptive K;
 *  - a batch abort attributes to every member it was serving, so
 *    per-request abort accounting (svc.request_aborts,
 *    svc.aborts_per_request, shard.cross.aborts) is preserved
 *    exactly; latency keeps its arrival→completion definition.
 */
void
KvServiceWorkload::threadBodyBatched(ThreadContext &tc, TxSystem &sys,
                                     int tid)
{
    StatsRegistry &st = tc.stats();
    const std::vector<Request> &stream = streams_.at(tid);
    const bool sharded = p_.shards > 1;

    // Batch sites live above the per-verb singleton sites, so the
    // path predictor scores batched and unbatched execution of the
    // same verb separately (txSite() allocates kNumReqTypes sites per
    // routing bucket when siteByKeyRange is set, else one block).
    const TxSiteId verb_sites =
        kNumReqTypes * (p_.siteByKeyRange ? p_.shards : 1);
    Coalescer co(p_.batch, verb_sites, p_.shards);

    std::size_t i = 0;
    while (i < stream.size()) {
        const Request &head = stream[i];
        const unsigned home = sharded ? homeShard(head) : 0;

        // Head admission: identical to the unbatched path.
        Cycles start;
        if (p_.load.openLoop) {
            while (tc.now() < head.arrival) {
                tc.advance(std::min<Cycles>(head.arrival - tc.now(), 64));
                tc.yield();
            }
            const std::uint64_t depth =
                backlogDepth(stream, i, tc.now(), sharded, home);
            st.observe("svc.queue_depth", depth);
            if (sharded)
                st.observe(shardDepthName_[home], depth);
            if (depth > p_.maxQueueDepth) {
                shedOne(tc, head, sharded, home);
                tc.advance(p_.shedCost);
                ++i;
                continue;
            }
            if (tc.now() > head.arrival)
                st.inc("svc.queued");
            start = head.arrival;
        } else {
            tc.advance(head.think);
            start = tc.now();
        }

        const int vc = Coalescer::verbClassOf(head.type);
        if (vc < 0) {
            // Unbatchable verb (Xfer, RawGet): the single-request path.
            Attempts att;
            serve(tc, sys, head, &att);
            finishRequest(tc, head, start, att.hwAborts(),
                          att.swAborts(), sharded, home);
            ++i;
            observeDrainDepth(tc, stream, i, sharded, home);
            continue;
        }

        const TxSiteId bsite = co.site(vc, home);
        const unsigned k_now = co.k(bsite);

        // Form the batch: the head plus consecutive compatible
        // requests, each admitted exactly as the unbatched path
        // would admit it.  An open-loop candidate that has not
        // arrived yet closes the batch (coalescing never waits).
        std::vector<BatchMember> members;
        members.push_back({&head, start, 0, 0});
        std::size_t j = i + 1;
        while (members.size() < k_now && j < stream.size()) {
            const Request &cand = stream[j];
            if (Coalescer::verbClassOf(cand.type) != vc)
                break;
            if (sharded && homeShard(cand) != home)
                break;
            Cycles mstart;
            if (p_.load.openLoop) {
                if (cand.arrival > tc.now())
                    break;
                const std::uint64_t depth =
                    backlogDepth(stream, j, tc.now(), sharded, home);
                st.observe("svc.queue_depth", depth);
                if (sharded)
                    st.observe(shardDepthName_[home], depth);
                if (depth > p_.maxQueueDepth) {
                    shedOne(tc, cand, sharded, home);
                    tc.advance(p_.shedCost);
                    ++j;
                    continue;
                }
                if (tc.now() > cand.arrival)
                    st.inc("svc.queued");
                mstart = cand.arrival;
            } else {
                tc.advance(cand.think);
                mstart = tc.now();
            }
            members.push_back({&cand, mstart, 0, 0});
            ++j;
        }

        // Execute, splitting on abort: each loop iteration is one
        // batch transaction over the next `plan` pending members.
        std::size_t done = 0;
        while (done < members.size()) {
            const unsigned plan = unsigned(std::min<std::size_t>(
                members.size() - done, co.k(bsite)));
            st.inc("batch.batches");
            st.observe("batch.k", plan);

            unsigned attempts = 0;       // Body entries so far.
            unsigned served_count = plan; // Members the last attempt ran.
            bool prev_sw = false;        // Path of the last attempt.
            bool dirty = false;          // Any abort absorbed?
            bool first_sw_kill = false;
            AbortReason first_reason = AbortReason::None;
            Attempts att;
            sys.atomic(tc, bsite, [&](TxHandle &h) {
                att.note(h);
                if (attempts > 0) {
                    // Re-execution: the previous attempt aborted.
                    // Attribute that abort to every member it served.
                    const unsigned prev_served =
                        attempts == 1 ? plan : 1;
                    for (unsigned m = 0; m < prev_served; ++m) {
                        BatchMember &bm = members[done + m];
                        if (prev_sw)
                            ++bm.debtSw;
                        else
                            ++bm.debtHw;
                    }
                    if (!dirty) {
                        dirty = true;
                        first_sw_kill = prev_sw;
                        first_reason = prev_sw
                                           ? AbortReason::None
                                           : sys.lastHwAbortReason(tc);
                    }
                }
                ++attempts;
                prev_sw = h.path() == TxHandle::Path::Software;
                // Split on abort: re-executions serve only the first
                // pending member; the rest re-batch afterwards.
                served_count = attempts == 1 ? plan : 1;
                for (unsigned m = 0; m < served_count; ++m)
                    applyMember(h, *members[done + m].req);
            });

            if (!dirty) {
                st.inc("batch.commits");
                co.onCleanCommit(bsite, att.finalSw);
            } else {
                st.inc("batch.aborts");
                st.inc(std::string("batch.aborts.") +
                       (first_sw_kill ? "sw"
                                      : abortReasonName(first_reason)));
                if (plan > 1)
                    st.inc("batch.splits");
                co.onBatchAbort(bsite, first_reason, first_sw_kill);
            }

            for (unsigned m = 0; m < served_count; ++m) {
                const BatchMember &bm = members[done + m];
                st.inc("batch.members");
                st.inc(std::string("batch.members.") +
                       reqTypeName(bm.req->type));
                finishRequest(tc, *bm.req, bm.start, bm.debtHw,
                              bm.debtSw, sharded, home);
            }
            done += served_count;
        }

        i = j;
        observeDrainDepth(tc, stream, i, sharded, home);
    }
}

bool
KvServiceWorkload::validate(ThreadContext &init)
{
    return store_->check(init);
}

RunResult
runService(const SvcParams &params, const RunConfig &cfg)
{
    // The machine's otable partition must match the store's key
    // partition (sharded_store.cc asserts it).
    RunConfig shard_cfg = cfg;
    if (params.shards > 1)
        shard_cfg.machine.otableShards = params.shards;
    KvServiceWorkload w(params);
    return runWorkload(w, shard_cfg);
}

} // namespace utm::svc
