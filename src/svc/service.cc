#include "svc/service.hh"

#include <algorithm>
#include <string>

#include "rt/heap.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"

namespace utm::svc {

void
KvServiceWorkload::setup(ThreadContext &init, TxHeap &heap, int nthreads)
{
    // The sharded store carves its own per-stripe heaps; the
    // workload-level allocator is deliberately unused (nothing else
    // allocates in this workload, so the address ranges stay
    // disjoint).
    (void)heap;
    store_ = std::make_unique<ShardedKvStore>(ShardedKvStore::create(
        init, p_.mapBuckets, p_.load.keyspace, p_.shards));
    store_->populate(init);

    shardReqName_.clear();
    shardShedName_.clear();
    shardDepthName_.clear();
    if (p_.shards > 1) {
        for (unsigned s = 0; s < p_.shards; ++s) {
            const std::string suffix = std::to_string(s);
            shardReqName_.push_back(
                std::string("shard.requests.") + suffix);
            shardShedName_.push_back(std::string("shard.shed.") + suffix);
            shardDepthName_.push_back(
                std::string("shard.queue_depth.") + suffix);
        }
    }

    streams_.clear();
    for (int c = 0; c < nthreads; ++c)
        streams_.push_back(generateClientStream(p_.load, c));
}

unsigned
KvServiceWorkload::homeShard(const Request &r) const
{
    return store_->shardOf(r.key);
}

unsigned
KvServiceWorkload::participants(const Request &r) const
{
    switch (r.type) {
      case ReqType::Scan:
        return store_->scanParticipants(r.key, p_.load.scanLen);
      case ReqType::Xfer:
        return store_->shardOf(r.key) == store_->shardOf(r.key2) ? 1
                                                                 : 2;
      default:
        return 1;
    }
}

/**
 * Per-request attempt accounting.  The transaction body re-executes
 * once per abort (and once more after a hardware→software failover),
 * so counting body entries per path — host-local, exactly the
 * re-execution-tolerant pattern the TxSystem contract allows — yields
 * the request's own abort count without touching global counters.
 */
struct KvServiceWorkload::Attempts
{
    std::uint64_t hw = 0; ///< Hardware (or raw) body executions.
    std::uint64_t sw = 0; ///< Software body executions.
    bool finalSw = false; ///< Path of the latest (committed) attempt.

    void
    note(TxHandle &h)
    {
        if (h.path() == TxHandle::Path::Software) {
            ++sw;
            finalSw = true;
        } else {
            ++hw;
            finalSw = false;
        }
    }

    /** Hardware attempts that aborted (incl. those that failed over). */
    std::uint64_t
    hwAborts() const
    {
        return hw - (hw && !finalSw ? 1 : 0);
    }

    /** Software attempts that aborted and re-ran. */
    std::uint64_t
    swAborts() const
    {
        return sw - (sw && finalSw ? 1 : 0);
    }
};

TxSiteId
KvServiceWorkload::txSite(const Request &r) const
{
    // Site 0 is kTxSiteNone; verbs start at 1.  With key-range sites,
    // each (verb, routing bucket) pair gets its own id so a predictor
    // can separate hot and cold ranges of the same verb.
    TxSiteId site = 1 + static_cast<TxSiteId>(r.type);
    if (p_.siteByKeyRange)
        site += kNumReqTypes * store_->shardOf(r.key);
    return site;
}

void
KvServiceWorkload::serve(ThreadContext &tc, TxSystem &sys,
                         const Request &r, Attempts *att)
{
    const TxSiteId site = txSite(r);
    switch (r.type) {
      case ReqType::Get:
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            std::uint64_t v = 0;
            const bool hit = store_->get(h, r.key, &v);
            utm_assert(hit);
        });
        break;
      case ReqType::Put:
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            const bool hit = store_->put(h, r.key, r.value);
            utm_assert(hit);
        });
        break;
      case ReqType::Scan:
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            store_->scan(h, r.key, p_.load.scanLen);
        });
        break;
      case ReqType::Rmw:
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            const bool hit = store_->rmw(h, r.key, r.value);
            utm_assert(hit);
        });
        break;
      case ReqType::Xfer:
        // The multi-shard RMW: moves `value` from key to key2 in one
        // transaction, acquiring shards in canonical order
        // (sharded_store.cc).
        sys.atomic(tc, site, [&](TxHandle &h) {
            att->note(h);
            const bool hit = store_->xfer(h, r.key, r.key2, r.value);
            utm_assert(hit);
        });
        break;
      case ReqType::RawGet: {
        // Outside any transaction, on purpose: the strong-atomicity
        // probe.  The walk is structurally safe (fixed key set); the
        // value is meaningful only on strongly-atomic backends.
        std::uint64_t v = 0;
        const bool hit = store_->rawGet(tc, r.key, &v);
        utm_assert(hit);
        break;
      }
    }
}

void
KvServiceWorkload::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                              int nthreads)
{
    (void)nthreads;
    StatsRegistry &st = tc.stats();
    const std::vector<Request> &stream = streams_.at(tid);

    const bool sharded = p_.shards > 1;

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Request &r = stream[i];
        const unsigned home = sharded ? homeShard(r) : 0;
        Cycles start;
        if (p_.load.openLoop) {
            // Wait for the request's arrival, in bounded slices so
            // other clients keep interleaving deterministically.
            while (tc.now() < r.arrival) {
                tc.advance(std::min<Cycles>(r.arrival - tc.now(), 64));
                tc.yield();
            }
            // Admission control over this client's backlog: every
            // stream request already due but not yet completed.  When
            // sharded, each client keeps one logical queue per home
            // shard, so only backlog bound for the same shard counts.
            std::uint64_t depth = 0;
            for (std::size_t j = i;
                 j < stream.size() && stream[j].arrival <= tc.now(); ++j)
                if (!sharded || homeShard(stream[j]) == home)
                    ++depth;
            st.observe("svc.queue_depth", depth);
            if (sharded)
                st.observe(shardDepthName_[home], depth);
            if (depth > p_.maxQueueDepth) {
                st.inc("svc.shed");
                st.inc(std::string("svc.shed.") + reqTypeName(r.type));
                if (sharded) {
                    st.inc("shard.shed");
                    st.inc(shardShedName_[home]);
                }
                tc.advance(p_.shedCost);
                continue;
            }
            if (tc.now() > r.arrival)
                st.inc("svc.queued");
            start = r.arrival; // Queueing delay counts toward latency.
        } else {
            tc.advance(r.think);
            start = tc.now();
        }

        Attempts att;
        serve(tc, sys, r, &att);
        const Cycles latency = tc.now() - start;

        st.inc("svc.requests");
        st.inc(std::string("svc.requests.") + reqTypeName(r.type));
        st.observe("svc.latency", latency);
        st.observe(std::string("svc.latency.") + reqTypeName(r.type),
                   latency);

        const std::uint64_t hw_aborts = att.hwAborts();
        const std::uint64_t sw_aborts = att.swAborts();
        if (hw_aborts)
            st.inc("svc.request_aborts.hw", hw_aborts);
        if (sw_aborts)
            st.inc("svc.request_aborts.sw", sw_aborts);
        if (hw_aborts + sw_aborts)
            st.inc("svc.request_aborts", hw_aborts + sw_aborts);
        st.observe("svc.aborts_per_request", hw_aborts + sw_aborts);

        if (sharded) {
            st.inc("shard.requests");
            st.inc(shardReqName_[home]);
            const unsigned parts = participants(r);
            st.observe("shard.participants", parts);
            if (parts > 1) {
                // Cross-shard attribution: one committed attempt plus
                // however many aborted attempts this request absorbed.
                st.inc("shard.cross", 1 + hw_aborts + sw_aborts);
                st.inc("shard.cross.commits");
                if (hw_aborts + sw_aborts)
                    st.inc("shard.cross.aborts", hw_aborts + sw_aborts);
            }
        }
    }
}

bool
KvServiceWorkload::validate(ThreadContext &init)
{
    return store_->check(init);
}

RunResult
runService(const SvcParams &params, const RunConfig &cfg)
{
    // The machine's otable partition must match the store's key
    // partition (sharded_store.cc asserts it).
    RunConfig shard_cfg = cfg;
    if (params.shards > 1)
        shard_cfg.machine.otableShards = params.shards;
    KvServiceWorkload w(params);
    return runWorkload(w, shard_cfg);
}

} // namespace utm::svc
