#include "svc/kv_store.hh"

#include "rt/heap.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"

namespace utm::svc {

namespace {

/** Smallest power of two >= 2 * keyspace (linear-probe headroom). */
std::uint64_t
indexCapacity(std::uint64_t keyspace)
{
    std::uint64_t cap = 4;
    while (cap < 2 * keyspace)
        cap <<= 1;
    return cap;
}

} // namespace

KvStore
KvStore::create(ThreadContext &init, TxHeap &heap, std::uint64_t buckets,
                std::uint64_t keyspace)
{
    TxMap map = TxMap::create(init, heap, buckets);
    TxHashSet keys = TxHashSet::create(init, heap,
                                       indexCapacity(keyspace));
    return KvStore(map, keys);
}

void
KvStore::populate(ThreadContext &init, std::uint64_t keyspace)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(keyspace);
    for (std::uint64_t k = 1; k <= keyspace; ++k)
        keys.push_back(k);
    populateKeys(init, keys);
}

void
KvStore::populateKeys(ThreadContext &init,
                      const std::vector<std::uint64_t> &keys)
{
    auto no_tm = TxSystem::create(TxSystemKind::NoTm, init.machine());
    no_tm->atomic(init, [&](TxHandle &h) {
        for (const std::uint64_t k : keys) {
            const bool fresh_map = map_.insert(h, k, k * 100);
            const bool fresh_idx = keys_.insert(h, k);
            utm_assert(fresh_map && fresh_idx);
        }
    });
}

bool
KvStore::get(TxHandle &h, std::uint64_t key, std::uint64_t *value_out)
{
    if (!keys_.contains(h, key))
        return false;
    return map_.lookup(h, key, value_out);
}

bool
KvStore::put(TxHandle &h, std::uint64_t key, std::uint64_t value)
{
    if (!keys_.contains(h, key))
        return false;
    return map_.update(h, key, value);
}

int
KvStore::scan(TxHandle &h, std::uint64_t start, int len,
              std::uint64_t keyspace)
{
    int found = 0;
    for (int i = 0; i < len; ++i) {
        const std::uint64_t key = 1 + (start - 1 + i) % keyspace;
        if (map_.lookup(h, key))
            ++found;
    }
    return found;
}

bool
KvStore::rmw(TxHandle &h, std::uint64_t key, std::uint64_t delta,
             std::uint64_t *new_out)
{
    const Addr va = map_.valueAddr(h, key);
    if (va == 0)
        return false;
    const std::uint64_t nv = h.read(va, 8) + delta;
    h.write(va, nv, 8);
    if (new_out)
        *new_out = nv;
    return true;
}

bool
KvStore::rawGet(ThreadContext &tc, std::uint64_t key,
                std::uint64_t *value_out)
{
    return map_.rawLookup(tc, key, value_out);
}

Addr
KvStore::valueAddr(TxHandle &h, std::uint64_t key)
{
    return map_.valueAddr(h, key);
}

bool
KvStore::check(ThreadContext &init, std::uint64_t keyspace)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(keyspace);
    for (std::uint64_t k = 1; k <= keyspace; ++k)
        keys.push_back(k);
    return checkKeys(init, keys);
}

bool
KvStore::checkKeys(ThreadContext &init,
                   const std::vector<std::uint64_t> &keys)
{
    auto no_tm = TxSystem::create(TxSystemKind::NoTm, init.machine());
    bool ok = true;
    no_tm->atomic(init, [&](TxHandle &h) {
        if (keys_.count(h) != keys.size()) {
            ok = false;
            return;
        }
        for (const std::uint64_t k : keys) {
            std::uint64_t tx_v = 0, raw_v = 0;
            if (!get(h, k, &tx_v) || !rawGet(h.ctx(), k, &raw_v) ||
                tx_v != raw_v) {
                ok = false;
                return;
            }
        }
    });
    return ok;
}

} // namespace utm::svc
