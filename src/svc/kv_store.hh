/**
 * @file
 * The service's transactional key-value store: a TxMap (key → value)
 * paired with a TxHashSet membership index, both over simulated
 * memory, shared by every client thread and parameterized over every
 * TxSystemKind through the TxHandle it is driven with.
 *
 * The key space is fixed at populate() time (keys 1..keyspace); the
 * request mix only reads and overwrites, never inserts or removes.
 * That makes the chain *structure* immutable during serving, which is
 * what lets raw (non-transactional) GETs walk the chains safely on
 * every backend: only value words are concurrently written, so a raw
 * walk can at worst observe a speculative value — never a torn
 * pointer into freed memory.  Whether a speculative value can
 * actually be observed is the strong-atomicity property under test
 * (see docs/DESIGN.md §"The KV service model").
 */

#ifndef UFOTM_SVC_KV_STORE_HH
#define UFOTM_SVC_KV_STORE_HH

#include <cstdint>
#include <vector>

#include "core/tx_system.hh"
#include "rt/tx_hashset.hh"
#include "rt/tx_map.hh"

namespace utm {
class TxHeap;
} // namespace utm

namespace utm::svc {

/** Fixed-keyspace transactional KV store (TxMap + TxHashSet index). */
class KvStore
{
  public:
    /** Allocate an empty store: @p buckets power-of-two chains, with
     *  the membership index sized for @p keyspace keys. */
    static KvStore create(ThreadContext &init, TxHeap &heap,
                          std::uint64_t buckets, std::uint64_t keyspace);

    /** Insert keys 1..@p keyspace (init context, raw NoTm handle). */
    void populate(ThreadContext &init, std::uint64_t keyspace);

    /** Insert exactly @p keys (each with value key*100); used by the
     *  sharded store to give each shard its key subset. */
    void populateKeys(ThreadContext &init,
                      const std::vector<std::uint64_t> &keys);

    /** Point lookup via the membership index then the map. */
    bool get(TxHandle &h, std::uint64_t key,
             std::uint64_t *value_out = nullptr);

    /** Overwrite an existing key; false if absent. */
    bool put(TxHandle &h, std::uint64_t key, std::uint64_t value);

    /**
     * Read @p len consecutive keys starting at @p start (wrapping at
     * the keyspace); returns how many were present.
     */
    int scan(TxHandle &h, std::uint64_t start, int len,
             std::uint64_t keyspace);

    /** In-place read-modify-write: value += delta. False if absent;
     *  on success optionally reports the written value. */
    bool rmw(TxHandle &h, std::uint64_t key, std::uint64_t delta,
             std::uint64_t *new_out = nullptr);

    /**
     * NON-transactional point lookup (plain timed loads, no TM
     * instrumentation).  Safe structurally on every backend (see file
     * comment); value-correct only under strong atomicity.
     */
    bool rawGet(ThreadContext &tc, std::uint64_t key,
                std::uint64_t *value_out = nullptr);

    /** Value-word address of a present key; 0 if absent. */
    Addr valueAddr(TxHandle &h, std::uint64_t key);

    /**
     * Post-run structural check (init context): every key 1..keyspace
     * present in both the map and the index, the index holds exactly
     * keyspace keys, and rawGet agrees with the transactional lookup
     * (trivially true once the machine is quiescent).
     */
    bool check(ThreadContext &init, std::uint64_t keyspace);

    /** check() over an explicit key set (sharded stores hold a hashed
     *  subset of the keyspace rather than a 1..N prefix). */
    bool checkKeys(ThreadContext &init,
                   const std::vector<std::uint64_t> &keys);

    TxMap &map() { return map_; }

  private:
    KvStore(TxMap map, TxHashSet keys) : map_(map), keys_(keys) {}

    TxMap map_;
    TxHashSet keys_;
};

} // namespace utm::svc

#endif // UFOTM_SVC_KV_STORE_HH
