#include "stamp/labyrinth.hh"

#include <algorithm>
#include <deque>

#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace utm {

Addr
LabyrinthWorkload::cellAddr(int cell) const
{
    // One cell per cache line: the BFS read set is `cells` lines.
    return grid_ + std::uint64_t(cell) * kLineSize;
}

void
LabyrinthWorkload::setup(ThreadContext &init, TxHeap &heap,
                         int nthreads)
{
    (void)nthreads;
    grid_ = heap.allocZeroed(
        init, std::uint64_t(cells()) * kLineSize, true);

    Rng rng(p_.seed);
    tasks_.clear();
    for (int t = 0; t < p_.totalTasks; ++t) {
        int src = static_cast<int>(rng.nextBounded(cells()));
        int dst = static_cast<int>(rng.nextBounded(cells()));
        while (dst == src)
            dst = static_cast<int>(rng.nextBounded(cells()));
        tasks_.push_back({src, dst});
    }
    committed_.assign(tasks_.size(), {});
}

std::vector<int>
LabyrinthWorkload::route(TxHandle &h, int src, int dst) const
{
    const int w = p_.width;
    const int n = cells();
    std::vector<int> parent(n, -1);

    // STAMP-style grid snapshot: the whole occupancy map is read
    // transactionally up front (every cell is a distinct line, so the
    // read set always exceeds the L1 capacity bound), then the BFS
    // runs on the local copy.
    std::vector<char> occ(n);
    for (int c = 0; c < n; ++c)
        occ[c] = h.read(cellAddr(c), 8) != 0;
    auto occupied = [&](int c) { return occ[c] != 0; };
    if (occupied(src) || occupied(dst))
        return {};

    std::deque<int> frontier{src};
    parent[src] = src;
    while (!frontier.empty()) {
        const int c = frontier.front();
        frontier.pop_front();
        if (c == dst)
            break;
        const int x = c % w;
        const int neighbors[4] = {x > 0 ? c - 1 : -1,
                                  x + 1 < w ? c + 1 : -1, c - w,
                                  c + w};
        for (int nb : neighbors) {
            if (nb < 0 || nb >= n || parent[nb] >= 0)
                continue;
            h.ctx().advance(2);
            if (occupied(nb))
                continue;
            parent[nb] = c;
            frontier.push_back(nb);
        }
    }
    if (parent[dst] < 0)
        return {};
    std::vector<int> path;
    for (int c = dst; c != src; c = parent[c])
        path.push_back(c);
    path.push_back(src);
    std::reverse(path.begin(), path.end());
    return path;
}

void
LabyrinthWorkload::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                              int nthreads)
{
    for (int t = tid; t < int(tasks_.size()); t += nthreads) {
        const Task task = tasks_[t];
        std::vector<int> path;
        sys.atomic(tc, [&](TxHandle &h) {
            path = route(h, task.src, task.dst);
            // Claim the path (marker = task id + 1).
            for (int c : path)
                h.write(cellAddr(c), std::uint64_t(t) + 1, 8);
        });
        committed_[t] = path; // Final committed execution's path.
        tc.advance(200);
    }
}

bool
LabyrinthWorkload::validate(ThreadContext &init)
{
    SimMemory &mem = init.machine().memory();
    const int w = p_.width;

    std::vector<int> owner(cells(), 0);
    for (int c = 0; c < cells(); ++c)
        owner[c] = static_cast<int>(mem.read(cellAddr(c), 8));

    std::uint64_t marked =
        std::count_if(owner.begin(), owner.end(),
                      [](int o) { return o != 0; });
    std::uint64_t claimed = 0;

    for (int t = 0; t < int(tasks_.size()); ++t) {
        const auto &path = committed_[t];
        if (path.empty())
            continue;
        claimed += path.size();
        if (path.front() != tasks_[t].src ||
            path.back() != tasks_[t].dst) {
            utm_warn("labyrinth: path %d has wrong endpoints", t);
            return false;
        }
        for (std::size_t i = 0; i < path.size(); ++i) {
            if (owner[path[i]] != t + 1) {
                utm_warn("labyrinth: cell %d not owned by path %d",
                         path[i], t);
                return false;
            }
            if (i > 0) {
                const int a = path[i - 1], b = path[i];
                const int dist = std::abs(a % w - b % w) +
                                 std::abs(a / w - b / w);
                if (dist != 1) {
                    utm_warn("labyrinth: path %d not connected", t);
                    return false;
                }
            }
        }
    }
    if (marked != claimed) {
        utm_warn("labyrinth: %llu cells marked but %llu claimed",
                 static_cast<unsigned long long>(marked),
                 static_cast<unsigned long long>(claimed));
        return false;
    }
    return true;
}

} // namespace utm
