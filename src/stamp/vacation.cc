#include "stamp/vacation.hh"

#include <algorithm>

#include "mem/sim_memory.hh"
#include "rt/tx_list.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace utm {

namespace {

/** Item value word: low 32 bits = availability, high 32 = price. */
std::uint64_t
packItem(std::uint64_t avail, std::uint64_t price)
{
    return (price << 32) | (avail & 0xffffffffull);
}

std::uint64_t
availOf(std::uint64_t v)
{
    return v & 0xffffffffull;
}

/** Reservation key: encodes relation + item + a unique sequence. */
std::uint64_t
reservationKey(int relation, std::uint64_t item, std::uint64_t seq)
{
    return (seq << 16) | (item << 2) | std::uint64_t(relation);
}

int
relationOfKey(std::uint64_t key)
{
    return static_cast<int>(key & 3);
}

} // namespace

Addr
VacationWorkload::customerHeader(int customer) const
{
    return customers_ + std::uint64_t(customer) * kLineSize;
}

void
VacationWorkload::setup(ThreadContext &init, TxHeap &heap, int nthreads)
{
    (void)nthreads;
    heap_ = &heap;
    nCustomers_ = p_.totalTasks;

    relationBases_.clear();
    for (int r = 0; r < kRelations; ++r)
        relationBases_.push_back(
            TxMap::create(init, heap, p_.mapBuckets).base());

    // Populate through a raw (NoTm) handle on the init context.
    auto no_tm = TxSystem::create(TxSystemKind::NoTm, init.machine());
    for (int r = 0; r < kRelations; ++r) {
        TxMap map(heap, relationBases_[r]);
        no_tm->atomic(init, [&](TxHandle &h) {
            for (int i = 1; i <= p_.itemsPerRelation; ++i) {
                map.insert(h, std::uint64_t(i),
                           packItem(p_.initialAvail, 50 + i % 100));
            }
        });
    }

    // One list header line per customer.
    customers_ = heap.allocZeroed(
        init, std::uint64_t(nCustomers_) * kLineSize, true);
}

void
VacationWorkload::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                             int nthreads)
{
    const int range =
        std::max(1, p_.itemsPerRelation * p_.queryRangePct / 100);
    const int per = (p_.totalTasks + nthreads - 1) / nthreads;
    const int lo = tid * per;
    const int hi = std::min(p_.totalTasks, lo + per);

    for (int task = lo; task < hi; ++task) {
        const int customer = task;
        // Choose the task's query plan deterministically before the
        // transaction so re-executions replay identically.
        struct Query
        {
            int relation;
            std::uint64_t item;
            bool reserve;
        };
        const int nq = static_cast<int>(
            tc.rng().nextRange(p_.queriesMin, p_.queriesMax));
        std::vector<Query> plan(nq);
        for (auto &q : plan) {
            q.relation = static_cast<int>(tc.rng().nextBounded(
                kRelations));
            q.item = 1 + tc.rng().nextBounded(range);
            q.reserve = tc.rng().nextBool(p_.reservePct / 100.0);
        }

        sys.atomic(tc, [&](TxHandle &h) {
            TxList reservations(*heap_, customerHeader(customer));
            std::uint64_t seq = 1;
            for (const auto &q : plan) {
                TxMap map(*heap_, relationBases_[q.relation]);
                const Addr va = map.valueAddr(h, q.item);
                utm_assert(va != 0);
                const std::uint64_t v = h.read(va, 8);
                h.ctx().advance(20); // Client-side decision logic.
                if (q.reserve && availOf(v) > 0) {
                    h.write(va, v - 1, 8);
                    reservations.insert(
                        h, reservationKey(q.relation, q.item, seq++),
                        availOf(v) - 1);
                }
            }
        });
    }
}

bool
VacationWorkload::validate(ThreadContext &init)
{
    SimMemory &mem = init.machine().memory();
    auto no_tm = TxSystem::create(TxSystemKind::NoTm, init.machine());
    (void)mem;

    std::uint64_t consumed[kRelations] = {};
    std::uint64_t reserved[kRelations] = {};
    bool ok = true;

    no_tm->atomic(init, [&](TxHandle &h) {
        for (int r = 0; r < kRelations; ++r) {
            TxMap map(*heap_, relationBases_[r]);
            for (int i = 1; i <= p_.itemsPerRelation; ++i) {
                std::uint64_t v = 0;
                if (!map.lookup(h, std::uint64_t(i), &v)) {
                    ok = false;
                    return;
                }
                consumed[r] += p_.initialAvail - availOf(v);
            }
        }
        for (int c = 0; c < nCustomers_; ++c) {
            TxList list(*heap_, customerHeader(c));
            for (std::uint64_t key : list.keys(h))
                ++reserved[relationOfKey(key)];
        }
    });
    if (!ok) {
        utm_warn("vacation: missing item record");
        return false;
    }
    for (int r = 0; r < kRelations; ++r) {
        if (consumed[r] != reserved[r]) {
            utm_warn("vacation: relation %d consumed %llu but holds "
                     "%llu reservations",
                     r, static_cast<unsigned long long>(consumed[r]),
                     static_cast<unsigned long long>(reserved[r]));
            return false;
        }
    }
    return true;
}

} // namespace utm
