/**
 * @file
 * ssca2 — graph-construction kernel (extension beyond the paper's
 * three benchmarks; modelled on STAMP's ssca2 kernel 1).
 *
 * Threads insert a pre-generated edge list into shared adjacency
 * arrays.  Each insertion is a tiny read-modify-write transaction on
 * the target node's degree counter plus one adjacency slot; degree
 * counters are deliberately packed several per cache line, so the
 * line-granularity TM systems see false sharing even between
 * different nodes — the smallest-transaction extreme of the workload
 * spectrum (kmeans < ssca2 on work per transaction).
 *
 * Validation: every node's adjacency multiset equals the host-side
 * reference built from the same edge list.
 */

#ifndef UFOTM_STAMP_SSCA2_HH
#define UFOTM_STAMP_SSCA2_HH

#include <cstdint>
#include <vector>

#include "stamp/workload.hh"

namespace utm {

/** ssca2 parameters (scaled for simulation speed). */
struct Ssca2Params
{
    int nodes = 128;
    int edges = 768;
    int maxDegree = 24;
    std::uint64_t seed = 29;
};

/** The ssca2 workload. */
class Ssca2Workload final : public Workload
{
  public:
    explicit Ssca2Workload(const Ssca2Params &p) : p_(p) {}

    const char *name() const override { return "ssca2"; }
    void setup(ThreadContext &init, TxHeap &heap, int nthreads) override;
    void threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                    int nthreads) override;
    bool validate(ThreadContext &init) override;

  private:
    Addr degreeAddr(int node) const;
    Addr slotAddr(int node, int slot) const;

    Ssca2Params p_;
    Addr degrees_ = 0;   ///< Packed u64 degree counters (8 per line).
    Addr adjacency_ = 0; ///< nodes x maxDegree u64 slots.
    std::vector<std::pair<int, int>> edgeList_;
};

} // namespace utm

#endif // UFOTM_STAMP_SSCA2_HH
