#include "stamp/intruder.hh"

#include <algorithm>

#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace utm {

std::uint64_t
IntruderWorkload::packFragment(int flow, int index,
                               std::uint64_t payload)
{
    return (payload << 24) | (std::uint64_t(flow) << 8) |
           std::uint64_t(index);
}

int
IntruderWorkload::flowOf(std::uint64_t frag)
{
    return static_cast<int>((frag >> 8) & 0xffff);
}

int
IntruderWorkload::indexOf(std::uint64_t frag)
{
    return static_cast<int>(frag & 0xff);
}

std::uint64_t
IntruderWorkload::payloadOf(std::uint64_t frag)
{
    return frag >> 24;
}

void
IntruderWorkload::setup(ThreadContext &init, TxHeap &heap, int nthreads)
{
    (void)nthreads;
    heap_ = &heap;
    queueHeader_ = TxQueue::create(init, heap).header();
    assemblyBase_ = TxMap::create(init, heap, p_.mapBuckets).base();
    detectedBase_ = heap.allocZeroed(
        init, std::uint64_t(p_.flows) * kLineSize, true);

    // Generate fragments and a shuffled arrival order.
    Rng rng(p_.seed);
    expectedChecksum_.assign(p_.flows, 0);
    std::vector<std::uint64_t> arrivals;
    for (int f = 0; f < p_.flows; ++f) {
        for (int i = 0; i < p_.fragmentsPerFlow; ++i) {
            const std::uint64_t payload = rng.nextBounded(1u << 20);
            expectedChecksum_[f] += payload;
            arrivals.push_back(packFragment(f, i, payload));
        }
    }
    for (std::size_t i = arrivals.size(); i > 1; --i)
        std::swap(arrivals[i - 1], arrivals[rng.nextBounded(i)]);

    auto no_tm = TxSystem::create(TxSystemKind::NoTm, init.machine());
    no_tm->atomic(init, [&](TxHandle &h) {
        TxQueue q(*heap_, queueHeader_);
        for (std::uint64_t frag : arrivals)
            q.enqueue(h, frag);
    });
}

void
IntruderWorkload::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                             int nthreads)
{
    (void)tid;
    (void)nthreads;
    TxQueue q(*heap_, queueHeader_);
    TxMap assembly(*heap_, assemblyBase_);

    for (;;) {
        // Phase 1: grab the next fragment (hot queue header).
        std::uint64_t frag = 0;
        bool got = false;
        sys.atomic(tc,
                   [&](TxHandle &h) { got = q.dequeue(h, &frag); });
        if (!got)
            return;

        // Phase 2: fold it into the flow's reassembly record; the
        // completing fragment claims the flow for detection.
        const int flow = flowOf(frag);
        const std::uint64_t payload = payloadOf(frag);
        bool completed = false;
        std::uint64_t checksum = 0;
        sys.atomic(tc, [&](TxHandle &h) {
            completed = false;
            std::uint64_t rec = 0;
            if (!assembly.lookup(h, flow + 1, &rec)) {
                assembly.insert(h, flow + 1, (payload << 8) | 1);
                rec = (payload << 8) | 1;
            } else {
                rec = ((rec >> 8) + payload) << 8 | ((rec & 0xff) + 1);
                assembly.update(h, flow + 1, rec);
            }
            if (int(rec & 0xff) == p_.fragmentsPerFlow) {
                completed = true;
                checksum = rec >> 8;
                const Addr d =
                    detectedBase_ + std::uint64_t(flow) * kLineSize;
                h.write(d, h.read(d, 8) + checksum + 1, 8);
            }
        });

        // Phase 3: run the detector (non-transactional compute).
        if (completed)
            tc.advance(400 + (checksum & 0xff));
        tc.advance(60);
        (void)indexOf(frag);
    }
}

bool
IntruderWorkload::validate(ThreadContext &init)
{
    SimMemory &mem = init.machine().memory();
    bool ok = true;
    for (int f = 0; f < p_.flows; ++f) {
        const std::uint64_t d =
            mem.read(detectedBase_ + std::uint64_t(f) * kLineSize, 8);
        if (d != expectedChecksum_[f] + 1) {
            utm_warn("intruder: flow %d detected value %llu, expected "
                     "%llu (checksum+1, exactly once)",
                     f, static_cast<unsigned long long>(d),
                     static_cast<unsigned long long>(
                         expectedChecksum_[f] + 1));
            ok = false;
        }
    }
    auto no_tm = TxSystem::create(TxSystemKind::NoTm, init.machine());
    no_tm->atomic(init, [&](TxHandle &h) {
        TxQueue q(*heap_, queueHeader_);
        std::uint64_t v;
        if (q.dequeue(h, &v)) {
            utm_warn("intruder: fragments left in the queue");
            ok = false;
        }
    });
    return ok;
}

} // namespace utm
