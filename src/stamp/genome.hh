/**
 * @file
 * genome — gene-sequencing kernel (STAMP): a segment-deduplication
 * phase over a shared hash set, followed by the high-contention phase
 * the paper highlights — inserting elements in sorted order into
 * shared linked lists.  List walks give transactions long read chains
 * that periodically overflow the L1, and concurrent insertions into
 * the same region conflict heavily.
 *
 * Validation: the hash set holds exactly the unique segments; the
 * shard lists are sorted, duplicate-free, and contain every unique
 * segment exactly once.
 */

#ifndef UFOTM_STAMP_GENOME_HH
#define UFOTM_STAMP_GENOME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "rt/tx_hashset.hh"
#include "rt/tx_list.hh"
#include "stamp/workload.hh"

namespace utm {

/** genome parameters (scaled for simulation speed). */
struct GenomeParams
{
    int segments = 1536;      ///< Total segment stream (with dups).
    int uniquePool = 768;     ///< Distinct segment values.
    int shards = 8;           ///< Sorted lists sharded by key range.
    std::uint64_t hashsetCapacity = 2048;
    std::uint64_t seed = 13;
};

/** The genome workload. */
class GenomeWorkload final : public Workload
{
  public:
    explicit GenomeWorkload(const GenomeParams &p) : p_(p) {}

    const char *name() const override { return "genome"; }
    void setup(ThreadContext &init, TxHeap &heap, int nthreads) override;
    void threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                    int nthreads) override;
    bool validate(ThreadContext &init) override;

  private:
    int shardOf(std::uint64_t key) const;

    GenomeParams p_;
    TxHeap *heap_ = nullptr;
    Addr hashsetBase_ = 0;
    std::vector<Addr> shardHeaders_;
    std::vector<std::uint64_t> stream_;  ///< Segment stream (host).
    std::vector<std::uint64_t> uniques_; ///< Sorted unique values.
    std::unique_ptr<SimBarrier> barrier_;
};

} // namespace utm

#endif // UFOTM_STAMP_GENOME_HH
