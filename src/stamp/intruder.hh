/**
 * @file
 * intruder — network-intrusion-detection kernel (extension beyond
 * the paper's three benchmarks; modelled on STAMP's intruder).
 *
 * Packet fragments of many flows arrive in a shared queue in random
 * order.  Worker threads repeatedly: (1) transactionally dequeue a
 * fragment; (2) transactionally insert it into the shared reassembly
 * map keyed by flow; when the flow completes, claim it; (3) run the
 * detector over the reassembled payload (non-transactional compute).
 * Medium-sized transactions over a hot queue plus a cool map — a
 * different contention mix from kmeans/vacation/genome.
 *
 * Validation: every flow is detected exactly once and each flow's
 * reconstructed checksum matches the fragments generated for it.
 */

#ifndef UFOTM_STAMP_INTRUDER_HH
#define UFOTM_STAMP_INTRUDER_HH

#include <cstdint>
#include <vector>

#include "rt/tx_map.hh"
#include "rt/tx_queue.hh"
#include "stamp/workload.hh"

namespace utm {

/** intruder parameters (scaled for simulation speed). */
struct IntruderParams
{
    int flows = 48;
    int fragmentsPerFlow = 4;
    int mapBuckets = 32;
    std::uint64_t seed = 23;
};

/** The intruder workload. */
class IntruderWorkload final : public Workload
{
  public:
    explicit IntruderWorkload(const IntruderParams &p) : p_(p) {}

    const char *name() const override { return "intruder"; }
    void setup(ThreadContext &init, TxHeap &heap, int nthreads) override;
    void threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                    int nthreads) override;
    bool validate(ThreadContext &init) override;

  private:
    /** Fragment encoding: flow id + fragment index + payload. */
    static std::uint64_t packFragment(int flow, int index,
                                      std::uint64_t payload);
    static int flowOf(std::uint64_t frag);
    static int indexOf(std::uint64_t frag);
    static std::uint64_t payloadOf(std::uint64_t frag);

    IntruderParams p_;
    TxHeap *heap_ = nullptr;
    Addr queueHeader_ = 0;
    Addr assemblyBase_ = 0; ///< TxMap: flow -> {count, checksum} cell.
    Addr detectedBase_ = 0; ///< One line per flow: detection count.
    std::vector<std::uint64_t> expectedChecksum_;
};

} // namespace utm

#endif // UFOTM_STAMP_INTRUDER_HH
