/**
 * @file
 * Workload driver shared by the STAMP-like benchmarks (paper
 * Section 5.1) and the failover microbenchmark (Section 5.3).
 *
 * A Workload provides setup (run on the init context before the
 * scheduler starts), a per-thread body, and a validation pass that
 * checks a serializability invariant after the run.  runWorkload()
 * builds the machine + TM system, runs to completion, and reports
 * simulated cycles plus the interesting counters.
 */

#ifndef UFOTM_STAMP_WORKLOAD_HH
#define UFOTM_STAMP_WORKLOAD_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/config.hh"
#include "sim/machine.hh"

namespace utm {

/** Host-side barrier for phase synchronization inside workloads. */
class SimBarrier
{
  public:
    explicit SimBarrier(int total) : total_(total) {}

    /** Block (spinning simulated time) until all threads arrive. */
    void arrive(ThreadContext &tc);

  private:
    int total_;
    int count_ = 0;
    std::uint64_t gen_ = 0;
};

/** Abstract benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;
    virtual const char *name() const = 0;

    /** Build the data structures (init context, before run()). */
    virtual void setup(ThreadContext &init, TxHeap &heap,
                       int nthreads) = 0;

    /** Per-thread work; @p tid in [0, nthreads). */
    virtual void threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                            int nthreads) = 0;

    /** Check the post-run invariant (init context). */
    virtual bool validate(ThreadContext &init) = 0;
};

/** One benchmark run's configuration. */
struct RunConfig
{
    TxSystemKind kind = TxSystemKind::UfoHybrid;
    int threads = 4;
    MachineConfig machine;
    TmPolicy policy;

    /**
     * Problem-size multiplier already applied by the caller when
     * constructing the Workload; recorded in the stats-JSON
     * run_config for provenance only.
     */
    double scale = 1.0;

    /**
     * When non-empty, runWorkload() writes the full stats-JSON
     * document (docs/OBSERVABILITY.md schema) here before tearing the
     * machine down.  "-" writes to stdout.
     */
    std::string statsJsonPath;

    /** When non-empty, write a chrome://tracing trace here. */
    std::string tracePath;

    /**
     * When non-empty, enable the timeline telemetry bus
     * (machine.telemetry overrides apply) and write the
     * `ufotm-timeline` v1 document here.  "-" writes to stdout.
     */
    std::string timelinePath;
};

/** One benchmark run's outcome. */
struct RunResult
{
    Cycles cycles = 0;
    bool valid = false;
    std::uint64_t hwCommits = 0;
    std::uint64_t swCommits = 0;
    std::uint64_t failovers = 0;
    /** Full counter snapshot (abort reasons etc.). */
    std::map<std::string, std::uint64_t> stats;

    /** Full histogram snapshot (latency distributions etc.). */
    std::map<std::string, Histogram> hists;

    std::uint64_t
    stat(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0 : it->second;
    }

    /** Read a histogram by name; an empty one if never observed. */
    const Histogram &
    hist(const std::string &name) const
    {
        static const Histogram kEmpty;
        auto it = hists.find(name);
        return it == hists.end() ? kEmpty : it->second;
    }
};

/** Build machine + TM system, run @p w, validate, report. */
RunResult runWorkload(Workload &w, const RunConfig &cfg);

} // namespace utm

#endif // UFOTM_STAMP_WORKLOAD_HH
