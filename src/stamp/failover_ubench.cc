#include "stamp/failover_ubench.hh"

#include "mem/sim_memory.hh"
#include "sim/logging.hh"

namespace utm {

Addr
FailoverUbench::wordAddr(int tid, int tx_index, int word) const
{
    // Deterministic stride through the thread's private region; one
    // word per line so the transaction footprint is wordsPerTx lines.
    const std::uint64_t line =
        (std::uint64_t(tx_index) * p_.wordsPerTx + word) %
        p_.linesPerThread;
    return region_ +
           (std::uint64_t(tid) * p_.linesPerThread + line) * kLineSize;
}

void
FailoverUbench::setup(ThreadContext &init, TxHeap &heap, int nthreads)
{
    nthreads_ = nthreads;
    region_ = heap.allocZeroed(
        init,
        std::uint64_t(nthreads) * p_.linesPerThread * kLineSize, true);
}

void
FailoverUbench::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                           int nthreads)
{
    (void)nthreads;
    for (int i = 0; i < p_.txPerThread; ++i) {
        // Decide the forced failover before the transaction so the
        // body replays identically after aborts.
        const bool force = tc.rng().nextBool(p_.failoverRate);
        sys.atomic(tc, [&](TxHandle &h) {
            if (force)
                h.requireSoftware();
            for (int w = 0; w < p_.wordsPerTx; ++w) {
                const Addr a = wordAddr(tid, i, w);
                h.write(a, h.read(a, 8) + 1, 8);
            }
        });
        tc.advance(50); // Inter-transaction work.
    }
}

bool
FailoverUbench::validate(ThreadContext &init)
{
    SimMemory &mem = init.machine().memory();
    for (int t = 0; t < nthreads_; ++t) {
        std::vector<std::uint64_t> expect(p_.linesPerThread, 0);
        for (int i = 0; i < p_.txPerThread; ++i)
            for (int w = 0; w < p_.wordsPerTx; ++w) {
                expect[(std::uint64_t(i) * p_.wordsPerTx + w) %
                       p_.linesPerThread]++;
            }
        for (int l = 0; l < p_.linesPerThread; ++l) {
            const Addr a =
                region_ +
                (std::uint64_t(t) * p_.linesPerThread + l) * kLineSize;
            if (mem.read(a, 8) != expect[l]) {
                utm_warn("failover-ubench: thread %d line %d has %llu, "
                         "expected %llu",
                         t, l,
                         static_cast<unsigned long long>(mem.read(a, 8)),
                         static_cast<unsigned long long>(expect[l]));
                return false;
            }
        }
    }
    return true;
}

} // namespace utm
