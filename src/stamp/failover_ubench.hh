/**
 * @file
 * Software-failover microbenchmark (paper Section 5.3, Figure 7).
 *
 * Every transaction reads and increments a fixed number of words in
 * its own thread's disjoint region — zero conflicts by construction —
 * and is forced onto the software path with a prescribed probability
 * via TxHandle::requireSoftware().  Sweeping that probability isolates
 * how each hybrid's performance degrades from pure-HTM-like to
 * pure-STM-like.
 *
 * Validation: each word's final value equals the number of committed
 * increments targeted at it (deterministic access pattern).
 */

#ifndef UFOTM_STAMP_FAILOVER_UBENCH_HH
#define UFOTM_STAMP_FAILOVER_UBENCH_HH

#include <cstdint>
#include <vector>

#include "stamp/workload.hh"

namespace utm {

/** Microbenchmark parameters. */
struct FailoverParams
{
    int txPerThread = 256;
    int wordsPerTx = 8;
    int linesPerThread = 64; ///< Private region size.
    double failoverRate = 0.0;
    std::uint64_t seed = 17;
};

/** The forced-failover microbenchmark. */
class FailoverUbench final : public Workload
{
  public:
    explicit FailoverUbench(const FailoverParams &p) : p_(p) {}

    const char *name() const override { return "failover-ubench"; }
    void setup(ThreadContext &init, TxHeap &heap, int nthreads) override;
    void threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                    int nthreads) override;
    bool validate(ThreadContext &init) override;

  private:
    Addr wordAddr(int tid, int tx_index, int word) const;

    FailoverParams p_;
    Addr region_ = 0;
    int nthreads_ = 0;
};

} // namespace utm

#endif // UFOTM_STAMP_FAILOVER_UBENCH_HH
