/**
 * @file
 * vacation — travel-reservation system with large, long-running
 * transactions (STAMP).
 *
 * Three relations (cars, rooms, flights) are chained hash maps whose
 * deliberately long chains reproduce the deep index traversals of the
 * original benchmark; each client task runs one transaction that
 * queries several items and reserves some of them, appending
 * reservation records to the customer's list.  Large footprints make
 * these transactions periodically overflow the L1 and fail over to
 * software (paper Section 5.2).
 *
 * Validation invariant: per relation, the total capacity consumed
 * (initial availability minus current availability, summed over
 * items) equals the number of reservation records held by customers.
 */

#ifndef UFOTM_STAMP_VACATION_HH
#define UFOTM_STAMP_VACATION_HH

#include <cstdint>
#include <vector>

#include "rt/tx_map.hh"
#include "stamp/workload.hh"

namespace utm {

/** vacation parameters (scaled for simulation speed). */
struct VacationParams
{
    int itemsPerRelation = 1024;
    int totalTasks = 256;    ///< Fixed total work, split over threads.
    int queriesMin = 3;      ///< Per-task query count is uniform in
    int queriesMax = 14;     ///< [queriesMin, queriesMax].
    int queryRangePct = 100; ///< Portion of the table queried.
    int reservePct = 80;     ///< % of queries that try to reserve.
    int mapBuckets = 32;     ///< Few buckets -> long chain walks.
    std::uint64_t initialAvail = 100;
    std::uint64_t seed = 11;

    static VacationParams
    contention(bool high)
    {
        VacationParams p;
        if (high) {
            p.queriesMin = 2;     // Smaller transactions...
            p.queriesMax = 9;
            p.queryRangePct = 10; // ...hammering a hot subset.
        }
        return p;
    }
};

/** The vacation workload. */
class VacationWorkload final : public Workload
{
  public:
    static constexpr int kRelations = 3;

    explicit VacationWorkload(const VacationParams &p) : p_(p) {}

    const char *name() const override { return "vacation"; }
    void setup(ThreadContext &init, TxHeap &heap, int nthreads) override;
    void threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                    int nthreads) override;
    bool validate(ThreadContext &init) override;

  private:
    Addr customerHeader(int customer) const;

    VacationParams p_;
    TxHeap *heap_ = nullptr;
    std::vector<Addr> relationBases_; ///< TxMap base per relation.
    Addr customers_ = 0;              ///< Array of list headers.
    int nCustomers_ = 0;
};

} // namespace utm

#endif // UFOTM_STAMP_VACATION_HH
