#include "stamp/workload.hh"

#include "sim/logging.hh"
#include "sim/stats_json.hh"
#include "sim/trace.hh"

namespace utm {

void
SimBarrier::arrive(ThreadContext &tc)
{
    const std::uint64_t my_gen = gen_;
    if (++count_ == total_) {
        count_ = 0;
        ++gen_;
        return;
    }
    long spins = 0;
    while (gen_ == my_gen) {
        tc.advance(50);
        tc.yield();
        if (++spins > 100'000'000)
            utm_panic("SimBarrier wait did not terminate");
    }
}

RunResult
runWorkload(Workload &w, const RunConfig &cfg)
{
    MachineConfig mc = cfg.machine;
    mc.numCores = std::max(mc.numCores, cfg.threads);
    if (!cfg.timelinePath.empty())
        mc.telemetry.enabled = true;

    Machine machine(mc);
    TxHeap heap(machine);
    auto sys = TxSystem::create(cfg.kind, machine, cfg.policy);
    sys->setup();
    w.setup(machine.initContext(), heap, cfg.threads);
    // Durable runs snapshot the post-setup heap into the persistent
    // image; redo records replay on top of this base state.
    if (machine.persist().active())
        machine.persist().checkpointHeap();

    for (int t = 0; t < cfg.threads; ++t) {
        machine.addThread([&w, sys = sys.get(), t, n = cfg.threads](
                              ThreadContext &tc) {
            w.threadBody(tc, *sys, t, n);
        });
    }
    machine.run();

    RunResult res;
    res.cycles = machine.completionTime();
    res.valid = w.validate(machine.initContext());
    res.hwCommits = machine.stats().get("tm.commits.hw");
    res.swCommits = machine.stats().get("tm.commits.sw");
    res.failovers = machine.stats().get("tm.failovers");
    for (const auto &kv : machine.stats().withPrefix(""))
        res.stats[kv.first] = kv.second;
    res.hists = machine.stats().histograms();

    // Export before the machine (and its stats/tracer) is destroyed.
    if (!cfg.statsJsonPath.empty()) {
        stats::RunMeta meta;
        meta.workload = w.name();
        meta.system = txSystemKindName(cfg.kind);
        meta.threads = cfg.threads;
        meta.seed = mc.seed;
        meta.scale = cfg.scale;
        meta.valid = res.valid;
        meta.cycles = res.cycles;
        if (!stats::writeFile(cfg.statsJsonPath,
                              stats::dumpJson(machine, meta)))
            utm_panic("cannot write stats JSON to '%s'",
                      cfg.statsJsonPath.c_str());
    }
    if (!cfg.tracePath.empty()) {
        if (!stats::writeFile(cfg.tracePath,
                              machine.tracer().dumpChromeTrace()))
            utm_panic("cannot write trace to '%s'",
                      cfg.tracePath.c_str());
    }
    if (!cfg.timelinePath.empty()) {
        if (!stats::writeFile(cfg.timelinePath,
                              machine.telemetry().dumpJson()))
            utm_panic("cannot write timeline to '%s'",
                      cfg.timelinePath.c_str());
    }
    return res;
}

} // namespace utm
