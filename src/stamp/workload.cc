#include "stamp/workload.hh"

#include "sim/logging.hh"

namespace utm {

void
SimBarrier::arrive(ThreadContext &tc)
{
    const std::uint64_t my_gen = gen_;
    if (++count_ == total_) {
        count_ = 0;
        ++gen_;
        return;
    }
    long spins = 0;
    while (gen_ == my_gen) {
        tc.advance(50);
        tc.yield();
        if (++spins > 100'000'000)
            utm_panic("SimBarrier wait did not terminate");
    }
}

RunResult
runWorkload(Workload &w, const RunConfig &cfg)
{
    MachineConfig mc = cfg.machine;
    mc.numCores = std::max(mc.numCores, cfg.threads);

    Machine machine(mc);
    TxHeap heap(machine);
    auto sys = TxSystem::create(cfg.kind, machine, cfg.policy);
    sys->setup();
    w.setup(machine.initContext(), heap, cfg.threads);

    for (int t = 0; t < cfg.threads; ++t) {
        machine.addThread([&w, sys = sys.get(), t, n = cfg.threads](
                              ThreadContext &tc) {
            w.threadBody(tc, *sys, t, n);
        });
    }
    machine.run();

    RunResult res;
    res.cycles = machine.completionTime();
    res.valid = w.validate(machine.initContext());
    res.hwCommits = machine.stats().get("tm.commits.hw");
    res.swCommits = machine.stats().get("tm.commits.sw");
    res.failovers = machine.stats().get("tm.failovers");
    for (const auto &kv : machine.stats().withPrefix(""))
        res.stats[kv.first] = kv.second;
    return res;
}

} // namespace utm
