/**
 * @file
 * labyrinth — path router with huge transactions (extension beyond
 * the paper's three benchmarks; modelled on STAMP's labyrinth).
 *
 * Each task routes a path between two points of a shared grid inside
 * one transaction: a breadth-first search reads a large portion of
 * the grid (every cell sits on its own cache line, so the read set
 * far exceeds the L1 capacity bound) and the chosen path's cells are
 * written.  On the UFO hybrid virtually every transaction overflows
 * and fails over — the workload probes the hybrid's graceful
 * degradation floor (it should track the pure strongly-atomic STM,
 * paying only one doomed hardware attempt per transaction).
 *
 * Validation: committed paths are connected, start/end where
 * requested, and are pairwise cell-disjoint (every grid cell is owned
 * by at most one path).
 */

#ifndef UFOTM_STAMP_LABYRINTH_HH
#define UFOTM_STAMP_LABYRINTH_HH

#include <cstdint>
#include <vector>

#include "stamp/workload.hh"

namespace utm {

/** labyrinth parameters (scaled for simulation speed). */
struct LabyrinthParams
{
    int width = 24;
    int height = 24;
    int totalTasks = 24;
    std::uint64_t seed = 19;
};

/** The labyrinth workload. */
class LabyrinthWorkload final : public Workload
{
  public:
    explicit LabyrinthWorkload(const LabyrinthParams &p) : p_(p) {}

    const char *name() const override { return "labyrinth"; }
    void setup(ThreadContext &init, TxHeap &heap, int nthreads) override;
    void threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                    int nthreads) override;
    bool validate(ThreadContext &init) override;

  private:
    struct Task
    {
        int src;
        int dst;
    };

    Addr cellAddr(int cell) const;
    int cells() const { return p_.width * p_.height; }

    /**
     * Transactional BFS from src to dst over unoccupied cells;
     * returns the path (src..dst) or empty when unreachable.
     */
    std::vector<int> route(TxHandle &h, int src, int dst) const;

    LabyrinthParams p_;
    Addr grid_ = 0;
    std::vector<Task> tasks_;
    /** Committed paths, per task (host record for validation). */
    std::vector<std::vector<int>> committed_;
};

} // namespace utm

#endif // UFOTM_STAMP_LABYRINTH_HH
