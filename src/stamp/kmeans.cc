#include "stamp/kmeans.hh"

#include <algorithm>

#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace utm {

Addr
KmeansWorkload::pointAddr(int p, int d) const
{
    return points_ + (std::uint64_t(p) * p_.dims + d) * 4;
}

Addr
KmeansWorkload::centerCoordAddr(int c, int d) const
{
    return coords_ + (std::uint64_t(c) * p_.dims + d) * 4;
}

Addr
KmeansWorkload::accumBase(int c) const
{
    return accums_ + std::uint64_t(c) * accumStride_;
}

void
KmeansWorkload::setup(ThreadContext &init, TxHeap &heap, int nthreads)
{
    nthreads_ = nthreads;
    barrier_ = std::make_unique<SimBarrier>(nthreads);

    points_ = heap.allocZeroed(
        init, std::uint64_t(p_.points) * p_.dims * 4, true);
    coords_ = heap.allocZeroed(
        init, std::uint64_t(p_.clusters) * p_.dims * 4, true);
    accumStride_ =
        ((8 + std::uint64_t(p_.dims) * 8 + kLineSize - 1) / kLineSize) *
        kLineSize;
    accums_ = heap.allocZeroed(
        init, std::uint64_t(p_.clusters) * accumStride_, true);

    Rng rng(p_.seed);
    for (int p = 0; p < p_.points; ++p)
        for (int d = 0; d < p_.dims; ++d)
            init.store(pointAddr(p, d), rng.nextBounded(1000), 4);
    // Seed centers with the first `clusters` points.
    for (int c = 0; c < p_.clusters; ++c)
        for (int d = 0; d < p_.dims; ++d)
            init.store(centerCoordAddr(c, d),
                       init.load(pointAddr(c, d), 4), 4);
}

void
KmeansWorkload::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                           int nthreads)
{
    const int per = (p_.points + nthreads - 1) / nthreads;
    const int lo = tid * per;
    const int hi = std::min(p_.points, lo + per);

    std::vector<std::uint64_t> coord(p_.dims);

    for (int iter = 0; iter < p_.iterations; ++iter) {
        for (int p = lo; p < hi; ++p) {
            for (int d = 0; d < p_.dims; ++d)
                coord[d] = tc.load(pointAddr(p, d), 4);

            // Nearest center: non-transactional reads of the center
            // coordinates (recomputed only between iterations).
            std::uint64_t best_dist = ~0ull;
            int best = 0;
            for (int c = 0; c < p_.clusters; ++c) {
                std::uint64_t dist = 0;
                for (int d = 0; d < p_.dims; ++d) {
                    std::int64_t delta =
                        std::int64_t(coord[d]) -
                        std::int64_t(tc.load(centerCoordAddr(c, d), 4));
                    dist += std::uint64_t(delta * delta);
                    tc.advance(2);
                }
                if (dist < best_dist) {
                    best_dist = dist;
                    best = c;
                }
            }

            // Small transaction: fold the point into the accumulator.
            const Addr ab = accumBase(best);
            sys.atomic(tc, [&](TxHandle &h) {
                std::uint64_t cnt = h.read(ab, 8);
                h.write(ab, cnt + 1, 8);
                for (int d = 0; d < p_.dims; ++d) {
                    const Addr sa = ab + 8 + std::uint64_t(d) * 8;
                    std::uint64_t s = h.read(sa, 8);
                    h.write(sa, s + coord[d], 8);
                }
            });
        }

        barrier_->arrive(tc);
        if (tid == 0 && iter + 1 < p_.iterations) {
            // Recompute centers and reset accumulators (sequential
            // phase, non-transactional).
            for (int c = 0; c < p_.clusters; ++c) {
                const Addr ab = accumBase(c);
                std::uint64_t cnt = tc.load(ab, 8);
                for (int d = 0; d < p_.dims; ++d) {
                    const Addr sa = ab + 8 + std::uint64_t(d) * 8;
                    if (cnt != 0) {
                        tc.store(centerCoordAddr(c, d),
                                 tc.load(sa, 8) / cnt, 4);
                    }
                    tc.store(sa, 0, 8);
                }
                tc.store(ab, 0, 8);
            }
        }
        barrier_->arrive(tc);
    }
}

bool
KmeansWorkload::validate(ThreadContext &init)
{
    SimMemory &mem = init.machine().memory();
    std::uint64_t total = 0;
    std::vector<std::uint64_t> sums(p_.dims, 0);
    for (int c = 0; c < p_.clusters; ++c) {
        const Addr ab = accumBase(c);
        total += mem.read(ab, 8);
        for (int d = 0; d < p_.dims; ++d)
            sums[d] += mem.read(ab + 8 + std::uint64_t(d) * 8, 8);
    }
    if (total != std::uint64_t(p_.points)) {
        utm_warn("kmeans: count invariant broken (%llu != %d)",
                 static_cast<unsigned long long>(total), p_.points);
        return false;
    }
    for (int d = 0; d < p_.dims; ++d) {
        std::uint64_t expect = 0;
        for (int p = 0; p < p_.points; ++p)
            expect += mem.read(pointAddr(p, d), 4);
        if (sums[d] != expect) {
            utm_warn("kmeans: sum invariant broken in dim %d", d);
            return false;
        }
    }
    return true;
}

} // namespace utm
