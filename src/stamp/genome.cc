#include "stamp/genome.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace utm {

int
GenomeWorkload::shardOf(std::uint64_t key) const
{
    // Shard by key range so each shard list stays sorted globally.
    return static_cast<int>(key * p_.shards / (p_.uniquePool + 1));
}

void
GenomeWorkload::setup(ThreadContext &init, TxHeap &heap, int nthreads)
{
    heap_ = &heap;
    barrier_ = std::make_unique<SimBarrier>(nthreads);

    hashsetBase_ =
        TxHashSet::create(init, heap, p_.hashsetCapacity).base();
    shardHeaders_.clear();
    for (int s = 0; s < p_.shards; ++s)
        shardHeaders_.push_back(TxList::create(init, heap).header());

    // Segment stream: draws (with duplicates) from the unique pool.
    Rng rng(p_.seed);
    stream_.resize(p_.segments);
    std::set<std::uint64_t> seen;
    for (auto &s : stream_) {
        s = 1 + rng.nextBounded(p_.uniquePool); // Keys in [1, pool].
        seen.insert(s);
    }
    uniques_.assign(seen.begin(), seen.end());
}

void
GenomeWorkload::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                           int nthreads)
{
    // Phase 1: deduplicate segments through the shared hash set.
    TxHashSet set(hashsetBase_);
    const int per1 = (int(stream_.size()) + nthreads - 1) / nthreads;
    const int lo1 = tid * per1;
    const int hi1 = std::min<int>(int(stream_.size()), lo1 + per1);
    for (int i = lo1; i < hi1; ++i) {
        const std::uint64_t key = stream_[i];
        sys.atomic(tc, [&](TxHandle &h) { set.insert(h, key); });
        tc.advance(30); // Segment-processing work.
    }

    barrier_->arrive(tc);

    // Phase 2: sorted insertion of the unique segments into shared
    // shard lists (the paper's high-contention phase).  Keys are
    // assigned round-robin so every thread hits every shard and the
    // lists grow under contention.
    for (int i = tid; i < int(uniques_.size()); i += nthreads) {
        const std::uint64_t key = uniques_[i];
        TxList list(*heap_, shardHeaders_[shardOf(key)]);
        sys.atomic(tc, [&](TxHandle &h) { list.insert(h, key, i); });
        tc.advance(20);
    }
}

bool
GenomeWorkload::validate(ThreadContext &init)
{
    auto no_tm = TxSystem::create(TxSystemKind::NoTm, init.machine());
    bool ok = true;
    no_tm->atomic(init, [&](TxHandle &h) {
        TxHashSet set(hashsetBase_);
        if (set.count(h) != uniques_.size()) {
            utm_warn("genome: hashset holds %llu keys, expected %zu",
                     static_cast<unsigned long long>(set.count(h)),
                     uniques_.size());
            ok = false;
            return;
        }
        std::vector<std::uint64_t> all;
        for (int s = 0; s < p_.shards; ++s) {
            TxList list(*heap_, shardHeaders_[s]);
            auto keys = list.keys(h);
            if (!std::is_sorted(keys.begin(), keys.end())) {
                utm_warn("genome: shard %d not sorted", s);
                ok = false;
                return;
            }
            all.insert(all.end(), keys.begin(), keys.end());
        }
        std::sort(all.begin(), all.end());
        if (all != uniques_) {
            utm_warn("genome: shard lists do not match unique set "
                     "(%zu vs %zu keys)",
                     all.size(), uniques_.size());
            ok = false;
        }
    });
    return ok;
}

} // namespace utm
