#include "stamp/ssca2.hh"

#include <algorithm>

#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace utm {

Addr
Ssca2Workload::degreeAddr(int node) const
{
    // Packed: eight counters share one line (intentional false
    // sharing for line-granularity systems).
    return degrees_ + std::uint64_t(node) * 8;
}

Addr
Ssca2Workload::slotAddr(int node, int slot) const
{
    return adjacency_ +
           (std::uint64_t(node) * p_.maxDegree + slot) * 8;
}

void
Ssca2Workload::setup(ThreadContext &init, TxHeap &heap, int nthreads)
{
    (void)nthreads;
    degrees_ = heap.allocZeroed(init, std::uint64_t(p_.nodes) * 8,
                                true);
    adjacency_ = heap.allocZeroed(
        init, std::uint64_t(p_.nodes) * p_.maxDegree * 8, true);

    // Pre-generate the edge list with bounded in-degree.
    Rng rng(p_.seed);
    std::vector<int> degree(p_.nodes, 0);
    edgeList_.clear();
    while (int(edgeList_.size()) < p_.edges) {
        const int u = static_cast<int>(rng.nextBounded(p_.nodes));
        const int v = static_cast<int>(rng.nextBounded(p_.nodes));
        if (degree[u] >= p_.maxDegree)
            continue;
        ++degree[u];
        edgeList_.emplace_back(u, v);
    }
}

void
Ssca2Workload::threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                          int nthreads)
{
    for (int i = tid; i < int(edgeList_.size()); i += nthreads) {
        const auto [u, v] = edgeList_[i];
        sys.atomic(tc, [&](TxHandle &h) {
            const std::uint64_t deg = h.read(degreeAddr(u), 8);
            h.write(slotAddr(u, int(deg)), std::uint64_t(v) + 1, 8);
            h.write(degreeAddr(u), deg + 1, 8);
        });
        tc.advance(15);
    }
}

bool
Ssca2Workload::validate(ThreadContext &init)
{
    SimMemory &mem = init.machine().memory();
    std::vector<std::vector<std::uint64_t>> expect(p_.nodes);
    for (auto [u, v] : edgeList_)
        expect[u].push_back(std::uint64_t(v) + 1);

    for (int u = 0; u < p_.nodes; ++u) {
        const std::uint64_t deg = mem.read(degreeAddr(u), 8);
        if (deg != expect[u].size()) {
            utm_warn("ssca2: node %d degree %llu, expected %zu", u,
                     static_cast<unsigned long long>(deg),
                     expect[u].size());
            return false;
        }
        std::vector<std::uint64_t> got;
        for (std::uint64_t s = 0; s < deg; ++s)
            got.push_back(mem.read(slotAddr(u, int(s)), 8));
        std::sort(got.begin(), got.end());
        std::sort(expect[u].begin(), expect[u].end());
        if (got != expect[u]) {
            utm_warn("ssca2: node %d adjacency mismatch", u);
            return false;
        }
    }
    return true;
}

} // namespace utm
