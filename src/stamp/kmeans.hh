/**
 * @file
 * kmeans — clustering kernel with small transactions (STAMP).
 *
 * Each thread assigns its partition of points to the nearest center
 * (non-transactional distance computation) and transactionally folds
 * the point into that center's accumulator (count + per-dimension
 * sums).  The high-contention configuration uses few centers.
 *
 * Validation invariant (holds for every serialization): after the
 * final iteration, the accumulator counts sum to the number of points
 * and the per-dimension sums equal the column sums of the point
 * matrix.
 */

#ifndef UFOTM_STAMP_KMEANS_HH
#define UFOTM_STAMP_KMEANS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "stamp/workload.hh"

namespace utm {

/** kmeans parameters (scaled for simulation speed). */
struct KmeansParams
{
    int points = 1024;
    int dims = 4;
    int clusters = 4; ///< 4 = high contention, 24 = low (paper-style).
    int iterations = 3;
    std::uint64_t seed = 7;

    static KmeansParams
    contention(bool high)
    {
        KmeansParams p;
        p.clusters = high ? 4 : 24;
        return p;
    }
};

/** The kmeans workload. */
class KmeansWorkload final : public Workload
{
  public:
    explicit KmeansWorkload(const KmeansParams &p) : p_(p) {}

    const char *name() const override { return "kmeans"; }
    void setup(ThreadContext &init, TxHeap &heap,
               int nthreads) override;
    void threadBody(ThreadContext &tc, TxSystem &sys, int tid,
                    int nthreads) override;
    bool validate(ThreadContext &init) override;

  private:
    Addr pointAddr(int p, int d) const;
    Addr centerCoordAddr(int c, int d) const;
    Addr accumBase(int c) const; ///< {count, sums[dims]} block.

    KmeansParams p_;
    Addr points_ = 0;
    Addr coords_ = 0;
    Addr accums_ = 0;
    std::uint64_t accumStride_ = 0;
    std::unique_ptr<SimBarrier> barrier_;
    int nthreads_ = 0;
};

} // namespace utm

#endif // UFOTM_STAMP_KMEANS_HH
