/**
 * @file
 * Model of the paper's Appendix A kernel modification: the operating
 * system saves and restores per-line UFO bits when physical pages are
 * swapped to and from disk, keeping one 16-byte UFO record per
 * swap-file slot, plus a one-bit-per-page "all UFO bits clear" side
 * array that skips the save/restore entirely for unprotected pages.
 *
 * The model runs a configurable page-reference workload over a bounded
 * set of physical frames with LRU replacement and accounts the swap
 * I/O and UFO-bookkeeping costs separately, reproducing the Appendix A
 * observations: negligible overhead under normal swapping, a visible
 * (~8%) overhead when thrashing without the all-clear optimization,
 * and most of that recovered with it.
 */

#ifndef UFOTM_UFO_SWAP_MODEL_HH
#define UFOTM_UFO_SWAP_MODEL_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/types.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Swap-file UFO bookkeeping model. */
class SwapModel
{
  public:
    struct Config
    {
        /** Physical frames available before swapping starts. */
        std::uint64_t physFrames = 256;
        /** Save/restore UFO bits at all (the kernel modification). */
        bool ufoSwapSupport = true;
        /** Skip save/restore for pages with no UFO bits set. */
        bool allClearOptimization = true;
        /** Disk transfer cost for one page. */
        Cycles pageIoCost = 50000;
        /** Extra cost to save or restore one page's UFO record
         *  (induces extra swap traffic for the UFO-bit arrays). */
        Cycles ufoRecordCost = 4000;
    };

    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t pageFaults = 0;
        std::uint64_t swapOuts = 0;
        std::uint64_t swapIns = 0;
        std::uint64_t ufoSaves = 0;
        std::uint64_t ufoRestores = 0;
        std::uint64_t ufoSkippedAllClear = 0;
        Cycles ioCycles = 0;
        Cycles ufoCycles = 0;
    };

    SwapModel(Machine &machine, const Config &cfg);

    /**
     * Reference virtual page @p vpage (simulated base address
     * vpage * SimMemory page size).  Faults, evicts, and charges @p tc
     * as needed.
     */
    void touchPage(ThreadContext &tc, std::uint64_t vpage);

    /** Whether @p vpage is currently resident. */
    bool resident(std::uint64_t vpage) const;

    const Stats &stats() const { return stats_; }
    const Config &config() const { return cfg_; }

  private:
    /** Does the page currently carry any UFO bits? */
    bool pageHasUfo(std::uint64_t vpage) const;

    void evictOne(ThreadContext &tc);

    Machine &machine_;
    Config cfg_;
    Stats stats_;
    /** LRU list of resident vpages (front = most recent). */
    std::list<std::uint64_t> lru_;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        resident_;
    /** vpages whose UFO record is saved in the swap file. */
    std::unordered_map<std::uint64_t, bool> swappedUfo_;
};

} // namespace utm

#endif // UFOTM_UFO_SWAP_MODEL_HH
