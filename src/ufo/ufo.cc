#include "ufo/ufo.hh"

#include "mem/sim_memory.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

void
ufoProtectRange(ThreadContext &tc, Addr a, std::uint64_t len,
                UfoBits bits)
{
    for (LineAddr line = lineOf(a); line < a + len; line += kLineSize)
        tc.setUfoBits(line, bits);
}

void
ufoUnprotectRange(ThreadContext &tc, Addr a, std::uint64_t len)
{
    for (LineAddr line = lineOf(a); line < a + len; line += kLineSize)
        tc.setUfoBits(line, kUfoNone);
}

std::uint64_t
ufoCountProtectedLines(ThreadContext &tc, Addr a, std::uint64_t len)
{
    std::uint64_t n = 0;
    SimMemory &mem = tc.machine().memory();
    for (LineAddr line = lineOf(a); line < a + len; line += kLineSize)
        if (mem.ufoBits(line).any())
            ++n;
    return n;
}

UfoDisableGuard::UfoDisableGuard(ThreadContext &tc)
    : tc_(tc), wasEnabled_(tc.ufoEnabled())
{
    tc_.disableUfo();
}

UfoDisableGuard::~UfoDisableGuard()
{
    if (wasEnabled_)
        tc_.enableUfo();
}

} // namespace utm
