/**
 * @file
 * UFO convenience layer over the raw ISA operations (paper Table 2,
 * Section 3.2).
 *
 * The raw ISA lives on ThreadContext (set/add/readUfoBits,
 * enable/disableUfo); this header adds range helpers and RAII guards
 * used by tests, examples, and non-TM applications of the mechanism
 * (watchpoints, speculative optimizations, concurrent GC — the paper's
 * "multi-purpose primitive" argument).
 */

#ifndef UFOTM_UFO_UFO_HH
#define UFOTM_UFO_UFO_HH

#include "sim/types.hh"

namespace utm {

class ThreadContext;

/** Protect every line overlapping [a, a+len) with @p bits. */
void ufoProtectRange(ThreadContext &tc, Addr a, std::uint64_t len,
                     UfoBits bits);

/** Clear protection on every line overlapping [a, a+len). */
void ufoUnprotectRange(ThreadContext &tc, Addr a, std::uint64_t len);

/** Number of lines in [a, a+len) with any UFO bit set (untimed). */
std::uint64_t ufoCountProtectedLines(ThreadContext &tc, Addr a,
                                     std::uint64_t len);

/** RAII: disable UFO faults on this thread for a scope. */
class UfoDisableGuard
{
  public:
    explicit UfoDisableGuard(ThreadContext &tc);
    ~UfoDisableGuard();

    UfoDisableGuard(const UfoDisableGuard&) = delete;
    UfoDisableGuard& operator=(const UfoDisableGuard&) = delete;

  private:
    ThreadContext &tc_;
    bool wasEnabled_;
};

} // namespace utm

#endif // UFOTM_UFO_UFO_HH
