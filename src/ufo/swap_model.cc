#include "ufo/swap_model.hh"

#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

SwapModel::SwapModel(Machine &machine, const Config &cfg)
    : machine_(machine), cfg_(cfg)
{
    utm_assert(cfg.physFrames > 0);
}

bool
SwapModel::resident(std::uint64_t vpage) const
{
    return resident_.find(vpage) != resident_.end();
}

bool
SwapModel::pageHasUfo(std::uint64_t vpage) const
{
    return machine_.memory().pageHasUfoBits(vpage *
                                            SimMemory::kPageSize);
}

void
SwapModel::evictOne(ThreadContext &tc)
{
    utm_assert(!lru_.empty());
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);

    ++stats_.swapOuts;
    stats_.ioCycles += cfg_.pageIoCost;
    tc.advance(cfg_.pageIoCost);

    if (!cfg_.ufoSwapSupport)
        return;
    const bool has_ufo = pageHasUfo(victim);
    if (cfg_.allClearOptimization && !has_ufo) {
        ++stats_.ufoSkippedAllClear;
        swappedUfo_[victim] = false;
        return;
    }
    // Save the 16-byte-per-slot UFO record (touches the UFO-bit
    // storage array, inducing the extra swap traffic Appendix A
    // measured).
    ++stats_.ufoSaves;
    stats_.ufoCycles += cfg_.ufoRecordCost;
    tc.advance(cfg_.ufoRecordCost);
    swappedUfo_[victim] = has_ufo;
}

void
SwapModel::touchPage(ThreadContext &tc, std::uint64_t vpage)
{
    ++stats_.accesses;
    auto it = resident_.find(vpage);
    if (it != resident_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }

    ++stats_.pageFaults;
    if (lru_.size() >= cfg_.physFrames)
        evictOne(tc);

    ++stats_.swapIns;
    stats_.ioCycles += cfg_.pageIoCost;
    tc.advance(cfg_.pageIoCost);

    if (cfg_.ufoSwapSupport) {
        auto sit = swappedUfo_.find(vpage);
        const bool saved_ufo = sit != swappedUfo_.end() && sit->second;
        if (saved_ufo || !cfg_.allClearOptimization) {
            ++stats_.ufoRestores;
            stats_.ufoCycles += cfg_.ufoRecordCost;
            tc.advance(cfg_.ufoRecordCost);
        } else {
            ++stats_.ufoSkippedAllClear;
        }
    }

    lru_.push_front(vpage);
    resident_[vpage] = lru_.begin();
    machine_.memory().materializePage(vpage * SimMemory::kPageSize);
}

} // namespace utm
