#include "hybrid/unbounded_htm.hh"

#include <algorithm>

#include "mem/memory_system.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"

namespace utm {

UnboundedHtm::UnboundedHtm(Machine &machine, const TmPolicy &policy)
    : TxSystem(TxSystemKind::UnboundedHtm, machine, policy)
{
    machine.memsys().setBtmPolicy(policy.btm);
}

BtmUnit &
UnboundedHtm::btm(ThreadContext &tc)
{
    auto &slot = btms_[tc.id()];
    if (!slot)
        slot = std::make_unique<BtmUnit>(tc, /*is_unbounded=*/true);
    return *slot;
}

void
UnboundedHtm::atomicAt(ThreadContext &tc, TxSiteId, const Body &body)
{
    BtmUnit &unit = btm(tc);
    if (unit.inTx()) {
        // Flattened nesting.
        unit.txBegin();
        TxHandle h = makeHandle(tc, TxHandle::Path::Hardware);
        body(h);
        unit.txEnd();
        return;
    }
    int conflicts = 0;
    for (;;) {
        try {
            beginAttempt(tc);
            unit.txBegin();
            TxHandle h = makeHandle(tc, TxHandle::Path::Hardware);
            body(h);
            unit.txEnd();
            machine_.stats().inc("tm.commits.hw");
            commitAttempt(tc);
            return;
        } catch (const BtmAbortException &e) {
            abortAttempt(tc);
            switch (e.reason) {
              case AbortReason::PageFault:
                // Simplified handler: touch the page, retry.
                machine_.memory().materializePage(e.addr);
                continue;
              case AbortReason::Conflict:
              case AbortReason::NonTConflict:
              case AbortReason::Interrupt:
              case AbortReason::UfoBitSet:
              case AbortReason::UfoFault: {
                ++conflicts;
                const int exp =
                    std::min(conflicts, policy_.backoffMaxExp);
                const Cycles base = policy_.backoffBase << exp;
                UTM_PROF_PHASE(machine_, tc, ProfComp::Tm,
                               ProfPhase::Backoff);
                tc.advance(base + tc.rng().nextBounded(base + 1));
                tc.yield();
                continue;
              }
              default:
                utm_fatal("unbounded HTM cannot recover from '%s' "
                          "aborts (no software fallback)",
                          abortReasonName(e.reason));
            }
        }
    }
}

bool
UnboundedHtm::oracleInvariantsHold(std::string *why) const
{
    for (ThreadId t = 0; t < machine_.numThreads(); ++t) {
        if (btms_[t] && !btms_[t]->idleStateClean()) {
            *why = "thread " + std::to_string(t) +
                   " BTM unit idle with undrained speculative state";
            return false;
        }
    }
    return true;
}

bool
UnboundedHtm::oracleLineBusy(LineAddr line) const
{
    return machine_.memsys().lineHasSpecWriter(line);
}

} // namespace utm
