/**
 * @file
 * The hybrid TM policy matrix (paper Sections 4.3.1, 4.4, 5.4).
 *
 * Defaults encode the paper's recommended policies:
 *  - age-ordered hardware contention management,
 *  - contention NEVER causes failover to software,
 *  - exponential backoff before hardware retries,
 *  - UFO faults abort the hardware transaction (rather than stall),
 *  - STM transactions statically prioritized over HTM transactions.
 *
 * Figure 8's sensitivity study sweeps these knobs.
 */

#ifndef UFOTM_HYBRID_POLICY_HH
#define UFOTM_HYBRID_POLICY_HH

#include "mem/tm_iface.hh"
#include "sim/types.hh"
#include "ustm/ustm.hh"

namespace utm {

/** Every TM-system policy knob in one place. */
struct TmPolicy
{
    /** Hardware CM policy (lives in the memory system). */
    BtmPolicy btm;

    /** Software CM policy (USTM). */
    UstmPolicy ustm;

    /**
     * Fail a transaction over to software after this many
     * contention-induced hardware aborts; 0 means never (the paper's
     * recommendation — Figure 8 bar 2 shows why).
     */
    int conflictFailoverThreshold = 0;

    /** Fail over after this many interrupt-induced aborts. */
    int interruptFailoverThreshold = 7;

    /** Exponential-backoff base delay before hardware retries. */
    Cycles backoffBase = 20;

    /** Cap on the backoff exponent. */
    int backoffMaxExp = 8;
};

} // namespace utm

#endif // UFOTM_HYBRID_POLICY_HH
