/**
 * @file
 * The hybrid TM policy matrix (paper Sections 4.3.1, 4.4, 5.4).
 *
 * Defaults encode the paper's recommended policies:
 *  - age-ordered hardware contention management,
 *  - contention NEVER causes failover to software,
 *  - exponential backoff before hardware retries,
 *  - UFO faults abort the hardware transaction (rather than stall),
 *  - STM transactions statically prioritized over HTM transactions.
 *
 * Figure 8's sensitivity study sweeps these knobs.
 */

#ifndef UFOTM_HYBRID_POLICY_HH
#define UFOTM_HYBRID_POLICY_HH

#include "mem/tm_iface.hh"
#include "sim/types.hh"
#include "ustm/ustm.hh"

namespace utm {

/**
 * Adaptive path-prediction knobs (the abort handler's Algorithm 3
 * extension): a per-thread, per-transaction-site saturating counter,
 * fed by failover decisions, that starts predictably-failing sites
 * directly in software.  Default OFF — every committed baseline is
 * byte-identical with the predictor disabled.
 */
struct PredictorPolicy
{
    /** Master switch; when false the predictor is never consulted. */
    bool enable = false;

    /**
     * Start bias: a site whose score reaches this predicts a software
     * start.  Higher = more hardware attempts before conceding.
     */
    int startBias = 4;

    /**
     * Score added on a hard failover (SetOverflow, Syscall, ... —
     * reasons that deterministically repeat in hardware).
     */
    int hardWeight = 4;

    /**
     * Score added on a contention-induced failover (conflict or
     * interrupt threshold) — transient, so it weighs lightly.
     */
    int conflictWeight = 1;

    /** Saturation cap on a site's score. */
    int maxScore = 16;

    /**
     * Halve every site score of a thread after this many predicted
     * transactions started on that thread (0 = never decay).  Decay
     * is what lets a mispredicted site drift back to hardware.
     */
    std::uint64_t decayInterval = 64;
};

/** Every TM-system policy knob in one place. */
struct TmPolicy
{
    /** Hardware CM policy (lives in the memory system). */
    BtmPolicy btm;

    /** Software CM policy (USTM). */
    UstmPolicy ustm;

    /**
     * Fail a transaction over to software after this many
     * contention-induced hardware aborts; 0 means never (the paper's
     * recommendation — Figure 8 bar 2 shows why).
     */
    int conflictFailoverThreshold = 0;

    /** Fail over after this many interrupt-induced aborts. */
    int interruptFailoverThreshold = 7;

    /** Adaptive path prediction (off by default). */
    PredictorPolicy predictor;

    /**
     * Durable (redo-log) commits: every committed write set is
     * appended to the persistence domain's per-shard redo log,
     * written back (`clwb`) and fenced (`sfence`) before the commit
     * is reported durable (mem/persist.hh, dur/recovery.hh).  Only
     * meaningful for backends txSystemKindDurable() accepts; ignored
     * (with a warning) otherwise.  Default OFF — every committed
     * baseline is byte-identical with durability disabled.
     */
    bool durable = false;

    /** Exponential-backoff base delay before hardware retries. */
    Cycles backoffBase = 20;

    /** Cap on the backoff exponent. */
    int backoffMaxExp = 8;
};

} // namespace utm

#endif // UFOTM_HYBRID_POLICY_HH
