/**
 * @file
 * HyTM (Damron et al., ASPLOS 2006), as modelled in paper Section 5.
 *
 * Hardware transactions carry read/write barriers that inspect the
 * STM's otable for conflicting records; if one is present the hardware
 * transaction explicitly aborts and retries.  The otable words are
 * read *transactionally*, which inflates the hardware footprint
 * (extra set overflows) and exposes the transaction to aborts when
 * unrelated software transactions touch aliasing otable rows (the
 * extra nonT conflicts of Figure 6c).
 */

#ifndef UFOTM_HYBRID_HYTM_HH
#define UFOTM_HYBRID_HYTM_HH

#include <array>
#include <unordered_map>

#include "hybrid/hybrid_base.hh"

namespace utm {

/** Hybrid TM with otable-checking hardware barriers. */
class HyTm : public HybridTmBase
{
  public:
    HyTm(Machine &machine, const TmPolicy &policy);

    void atomicAt(ThreadContext &tc, TxSiteId site,
                  const Body &body) override;
    const char *name() const override { return "hytm"; }

  protected:
    std::uint64_t htmRead(ThreadContext &tc, Addr a,
                          unsigned size) override;
    void htmWrite(ThreadContext &tc, Addr a, std::uint64_t v,
                  unsigned size) override;

  private:
    /** Transactional otable inspection; aborts on a conflicting
     *  record. */
    void hwBarrier(ThreadContext &tc, LineAddr line, bool is_write);

    /**
     * Per-transaction barrier memo: redundant checks for a line
     * already checked this transaction are compiled away (a read
     * check is subsumed by a previous write check).  Values: 1 = read
     * checked, 2 = write checked.
     */
    std::array<std::unordered_map<LineAddr, int>, kMaxThreads> checked_;
};

} // namespace utm

#endif // UFOTM_HYBRID_HYTM_HH
