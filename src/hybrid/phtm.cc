#include "hybrid/phtm.hh"

#include "sim/machine.hh"

namespace utm {

namespace {
constexpr Cycles kPhasePoll = 40;
} // namespace

PhTm::PhTm(Machine &machine, const TmPolicy &policy)
    : HybridTmBase(TxSystemKind::PhTm, machine, policy,
                   /*strong_atomic_stm=*/false,
                   /*explicit_means_conflict=*/false)
{
}

void
PhTm::setup()
{
    HybridTmBase::setup();
    machine_.memory().materializePage(kStmCountAddr);
}

void
PhTm::atomicAt(ThreadContext &tc, TxSiteId site, const Body &body)
{
    if (runNestedInline(tc, body))
        return;
    AbortHandlerState &st = handlerState(tc);
    st.newTransaction(site);
    bool i_need_stm = predictedSoftwareStart(tc, st);

    for (;;) {
        if (i_need_stm) {
            runSoftwarePhase(tc, body, /*needs_stm=*/true);
            return;
        }
        // While some transaction *requires* the STM, everyone runs in
        // software (without bumping the need counter).
        if (tc.load(kNeedStmAddr, 8) != 0) {
            runSoftwarePhase(tc, body, /*needs_stm=*/false);
            return;
        }

        BtmUnit &unit = btm(tc);
        try {
            beginAttempt(tc);
            unit.txBegin();
            // Transactional read of the STM counter: any software
            // transaction arriving mid-flight aborts us.
            if (tc.load(kStmCountAddr, 8) != 0)
                unit.txAbort();
            TxHandle h = makeHandle(tc, TxHandle::Path::Hardware);
            body(h);
            unit.txEnd();
            ++hwCommits_;
            machine_.stats().inc("tm.commits.hw");
            commitAttempt(tc);
            predictor_.onHardwareCommit(tc, st.site, st.prediction);
            return;
        } catch (const BtmAbortException &e) {
            abortAttempt(tc);
            // Phase-induced aborts (explicit counter check, or a nonT
            // hit on the counter/our data from an STM thread): shift
            // back to hardware by *stalling* until the last software
            // transaction finishes, rather than starting in software.
            if (!st.forcedSoftware &&
                (e.reason == AbortReason::Explicit ||
                 e.reason == AbortReason::NonTConflict)) {
                machine_.stats().inc("phtm.phase_aborts");
                UTM_PROF_PHASE(machine_, tc, ProfComp::PhTm,
                               ProfPhase::Stall);
                while (tc.load(kNeedStmAddr, 8) == 0 &&
                       tc.load(kStmCountAddr, 8) != 0) {
                    machine_.stats().inc("phtm.phase_stalls");
                    tc.advance(kPhasePoll);
                    tc.yield();
                }
                continue;
            }
            BtmAbortHandler::Decision d =
                abortHandler_.onAbort(tc, st, e);
            if (d == BtmAbortHandler::Decision::RetryHardware)
                continue;
            i_need_stm = true;
        }
    }
}

void
PhTm::runSoftwarePhase(ThreadContext &tc, const Body &body,
                       bool needs_stm)
{
    if (needs_stm)
        tc.fetchAdd(kNeedStmAddr, 8, 1);
    // Bumping the STM counter aborts every in-flight hardware
    // transaction (they read it transactionally).
    tc.fetchAdd(kStmCountAddr, 8, 1);
    runSoftware(tc, body);
    if (needs_stm)
        tc.fetchAdd(kNeedStmAddr, 8, std::uint64_t(-1));
    tc.fetchAdd(kStmCountAddr, 8, std::uint64_t(-1));
}

} // namespace utm
