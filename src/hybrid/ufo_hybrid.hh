/**
 * @file
 * The UFO hybrid TM — the paper's proposal (Section 4.3).
 *
 * Transactions first run in BTM with zero instrumentation; the
 * strongly-atomic USTM's UFO protection keeps concurrent hardware
 * transactions (and plain code) from violating software-transaction
 * atomicity.  The Figure 4 control flow with the Algorithm 3 abort
 * handler decides hardware retry vs software failover.
 */

#ifndef UFOTM_HYBRID_UFO_HYBRID_HH
#define UFOTM_HYBRID_UFO_HYBRID_HH

#include "hybrid/hybrid_base.hh"

namespace utm {

/** The paper's hybrid: zero-overhead BTM + strongly-atomic USTM. */
class UfoHybridTm : public HybridTmBase
{
  public:
    UfoHybridTm(Machine &machine, const TmPolicy &policy);

    void atomicAt(ThreadContext &tc, TxSiteId site,
                  const Body &body) override;
    const char *name() const override { return "ufo-hybrid"; }
};

} // namespace utm

#endif // UFOTM_HYBRID_UFO_HYBRID_HH
