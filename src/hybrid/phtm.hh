/**
 * @file
 * PhTM — Phased Transactional Memory (Lev et al.), as modelled in
 * paper Section 5.
 *
 * Hardware and software transactions never run concurrently.  A
 * counter of in-flight software transactions is read transactionally
 * at the start of each hardware transaction, so an arriving software
 * transaction aborts every concurrent hardware transaction (the nonT
 * conflicts of Figure 6).  A second counter of transactions that
 * *must* run in software keeps the system in the STM phase while any
 * such transaction exists; once it drains, new transactions stall
 * until the last software transaction finishes and then resume in
 * hardware.
 */

#ifndef UFOTM_HYBRID_PHTM_HH
#define UFOTM_HYBRID_PHTM_HH

#include "hybrid/hybrid_base.hh"

namespace utm {

/** Phase-based hybrid TM. */
class PhTm : public HybridTmBase
{
  public:
    /** Simulated addresses of the phase counters (separate lines). */
    static constexpr Addr kStmCountAddr = 0x0d000000;
    static constexpr Addr kNeedStmAddr = 0x0d000080;

    PhTm(Machine &machine, const TmPolicy &policy);

    void setup() override;
    void atomicAt(ThreadContext &tc, TxSiteId site,
                  const Body &body) override;
    const char *name() const override { return "phtm"; }

  private:
    /** Run the body in the STM phase, managing both counters. */
    void runSoftwarePhase(ThreadContext &tc, const Body &body,
                          bool needs_stm);
};

} // namespace utm

#endif // UFOTM_HYBRID_PHTM_HH
