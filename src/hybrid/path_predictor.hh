/**
 * @file
 * Adaptive path prediction for the hybrid abort handler.
 *
 * The paper's Algorithm 3 is static: every transaction starts in BTM
 * and re-discovers, per execution, that it will overflow or conflict
 * its way to software.  For serving workloads that re-run the same
 * transaction shapes millions of times (a SCAN over a hot range
 * overflows the L1 read set every time), that re-discovery is pure
 * wasted work that lands on the tail latency.
 *
 * The predictor keeps a saturating score per (thread, transaction
 * site).  Failover decisions feed it: hard reasons (SetOverflow,
 * Syscall, ... — deterministic repeats) weigh heavily, contention
 * lightly.  A site whose score reaches the start bias predicts a
 * software start, taken through the same runSoftware() path as
 * `TxHandle::requireSoftware()`.  Hardware commits decrement the
 * score and periodic decay halves it, so mispredictions self-correct
 * and a site can drift back to hardware.
 *
 * State is host-side, per-thread, and updated only at deterministic
 * points of the simulation (transaction starts and abort-handler
 * decisions), so runs stay bit-reproducible and schedule record /
 * replay is unaffected.  Everything is gated on
 * PredictorPolicy::enable (default off): disabled, the predictor does
 * no work and emits no counters.
 *
 * Counters (`pred.*`, docs/OBSERVABILITY.md): predictions (split
 * `.hw`/`.sw`), hits (hardware-predicted transactions that committed
 * in hardware), mispredicts (hardware-predicted transactions that
 * failed over), decays, and sites (tracking entries created).
 */

#ifndef UFOTM_HYBRID_PATH_PREDICTOR_HH
#define UFOTM_HYBRID_PATH_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <map>

#include "hybrid/policy.hh"
#include "sim/types.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Per-thread, per-site hardware/software start predictor. */
class PathPredictor
{
  public:
    /** What the predictor said when a transaction started. */
    enum class Prediction
    {
        None,     ///< Not consulted (disabled, no site, or nested).
        Hardware, ///< Start in hardware (the default path).
        Software, ///< Start directly in software.
    };

    PathPredictor(Machine &machine, const PredictorPolicy &policy);

    bool enabled() const { return policy_.enable; }

    /**
     * Consult the predictor for a transaction starting at @p site.
     * Returns None (and does no work) when disabled or @p site is
     * kTxSiteNone; otherwise counts the prediction and applies
     * periodic decay.
     */
    Prediction predict(ThreadContext &tc, TxSiteId site);

    /**
     * The transaction predicted by @p prediction committed on the
     * hardware path: count the hit and walk the site's score back
     * toward hardware.
     */
    void onHardwareCommit(ThreadContext &tc, TxSiteId site,
                          Prediction prediction);

    /**
     * The abort handler decided to fail the transaction over.
     * @p hard distinguishes deterministic reasons (capacity,
     * syscall, forced software — weighted policy.hardWeight) from
     * contention-induced failovers (weighted policy.conflictWeight).
     */
    void onFailover(ThreadContext &tc, TxSiteId site,
                    Prediction prediction, bool hard);

    /** Current score of (thread, site); 0 when untracked (tests). */
    int score(ThreadId tid, TxSiteId site) const;

  private:
    struct ThreadState
    {
        /** Ordered map: decay iterates it deterministically. */
        std::map<TxSiteId, int> scores;
        std::uint64_t sincePredictions = 0; ///< Predictions since decay.
    };

    void maybeDecay(ThreadContext &tc, ThreadState &ts);
    int &scoreSlot(ThreadContext &tc, ThreadState &ts, TxSiteId site);

    Machine &machine_;
    const PredictorPolicy &policy_;
    std::array<ThreadState, kMaxThreads> threads_;
};

} // namespace utm

#endif // UFOTM_HYBRID_PATH_PREDICTOR_HH
