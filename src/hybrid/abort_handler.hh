/**
 * @file
 * The BTM abort handler (paper Algorithm 3).
 *
 * After a hardware transaction aborts, the handler classifies the
 * abort reason into: conditions that all but guarantee another
 * hardware failure (fail over to software immediately); conditions
 * unlikely to repeat (retry in hardware, with exponential backoff for
 * contention); and conditions resolvable by a software action (page
 * faults: touch the page, then retry in hardware).
 */

#ifndef UFOTM_HYBRID_ABORT_HANDLER_HH
#define UFOTM_HYBRID_ABORT_HANDLER_HH

#include "btm/btm.hh"
#include "hybrid/policy.hh"
#include "mem/tm_iface.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Per-thread, per-transaction abort-handler bookkeeping. */
struct AbortHandlerState
{
    int conflictAborts = 0;
    int interruptAborts = 0;
    bool forcedSoftware = false; ///< TxHandle::requireSoftware().

    void
    newTransaction()
    {
        conflictAborts = 0;
        interruptAborts = 0;
        forcedSoftware = false;
    }
};

/** Decides, per abort, between hardware retry and software failover. */
class BtmAbortHandler
{
  public:
    enum class Decision { RetryHardware, FailToSoftware };

    /**
     * @param explicit_means_conflict HyTM's barriers signal conflicts
     *        with btm_abort; treat Explicit as contention (retry in
     *        hardware) instead of as failover.
     */
    BtmAbortHandler(Machine &machine, const TmPolicy &policy,
                    bool explicit_means_conflict = false);

    Decision onAbort(ThreadContext &tc, AbortHandlerState &st,
                     const BtmAbortException &e);

  private:
    void backoff(ThreadContext &tc, int attempt);

    Machine &machine_;
    const TmPolicy &policy_;
    bool explicitMeansConflict_;
};

} // namespace utm

#endif // UFOTM_HYBRID_ABORT_HANDLER_HH
