/**
 * @file
 * The BTM abort handler (paper Algorithm 3).
 *
 * After a hardware transaction aborts, the handler classifies the
 * abort reason into: conditions that all but guarantee another
 * hardware failure (fail over to software immediately); conditions
 * unlikely to repeat (retry in hardware, with exponential backoff for
 * contention); and conditions resolvable by a software action (page
 * faults: touch the page, then retry in hardware).
 */

#ifndef UFOTM_HYBRID_ABORT_HANDLER_HH
#define UFOTM_HYBRID_ABORT_HANDLER_HH

#include "btm/btm.hh"
#include "hybrid/path_predictor.hh"
#include "hybrid/policy.hh"
#include "mem/tm_iface.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Per-thread, per-transaction abort-handler bookkeeping. */
struct AbortHandlerState
{
    int conflictAborts = 0;
    int interruptAborts = 0;
    bool forcedSoftware = false; ///< TxHandle::requireSoftware().
    TxSiteId site = kTxSiteNone; ///< Static site of this transaction.
    /** What the path predictor said at transaction start. */
    PathPredictor::Prediction prediction = PathPredictor::Prediction::None;

    void
    newTransaction(TxSiteId s = kTxSiteNone)
    {
        conflictAborts = 0;
        interruptAborts = 0;
        forcedSoftware = false;
        site = s;
        prediction = PathPredictor::Prediction::None;
    }
};

/** Decides, per abort, between hardware retry and software failover. */
class BtmAbortHandler
{
  public:
    enum class Decision { RetryHardware, FailToSoftware };

    /**
     * @param explicit_means_conflict HyTM's barriers signal conflicts
     *        with btm_abort; treat Explicit as contention (retry in
     *        hardware, subject to the same conflict-failover
     *        threshold) instead of as failover.
     * @param predictor When non-null, failover decisions feed the
     *        adaptive path predictor.
     */
    BtmAbortHandler(Machine &machine, const TmPolicy &policy,
                    bool explicit_means_conflict = false,
                    PathPredictor *predictor = nullptr);

    Decision onAbort(ThreadContext &tc, AbortHandlerState &st,
                     const BtmAbortException &e);

  private:
    void backoff(ThreadContext &tc, int attempt);

    /** Shared contention handling (Conflict family and HyTM's
     *  Explicit): threshold check, then backoff + hardware retry. */
    Decision onContention(ThreadContext &tc, AbortHandlerState &st);

    /** A FailToSoftware decision: feed the predictor, then return. */
    Decision failover(ThreadContext &tc, AbortHandlerState &st,
                      bool hard);

    Machine &machine_;
    const TmPolicy &policy_;
    bool explicitMeansConflict_;
    PathPredictor *predictor_;
};

} // namespace utm

#endif // UFOTM_HYBRID_ABORT_HANDLER_HH
