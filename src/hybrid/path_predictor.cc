#include "hybrid/path_predictor.hh"

#include <algorithm>

#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

PathPredictor::PathPredictor(Machine &machine,
                             const PredictorPolicy &policy)
    : machine_(machine), policy_(policy)
{
}

int &
PathPredictor::scoreSlot(ThreadContext &tc, ThreadState &ts,
                         TxSiteId site)
{
    auto [it, created] = ts.scores.try_emplace(site, 0);
    if (created)
        machine_.stats().inc("pred.sites");
    (void)tc;
    return it->second;
}

void
PathPredictor::maybeDecay(ThreadContext &tc, ThreadState &ts)
{
    if (policy_.decayInterval == 0 ||
        ts.sincePredictions < policy_.decayInterval)
        return;
    ts.sincePredictions = 0;
    machine_.stats().inc("pred.decays");
    (void)tc;
    for (auto &[site, score] : ts.scores)
        score /= 2;
}

PathPredictor::Prediction
PathPredictor::predict(ThreadContext &tc, TxSiteId site)
{
    if (!policy_.enable || site == kTxSiteNone)
        return Prediction::None;
    ThreadState &ts = threads_[tc.id()];
    ++ts.sincePredictions;
    maybeDecay(tc, ts);
    const int score = scoreSlot(tc, ts, site);
    StatsRegistry &stats = machine_.stats();
    stats.inc("pred.predictions");
    if (score >= policy_.startBias) {
        stats.inc("pred.predictions.sw");
        return Prediction::Software;
    }
    stats.inc("pred.predictions.hw");
    return Prediction::Hardware;
}

void
PathPredictor::onHardwareCommit(ThreadContext &tc, TxSiteId site,
                                Prediction prediction)
{
    if (prediction == Prediction::None)
        return;
    machine_.stats().inc("pred.hits");
    int &score = scoreSlot(tc, threads_[tc.id()], site);
    score = std::max(0, score - 1);
}

void
PathPredictor::onFailover(ThreadContext &tc, TxSiteId site,
                          Prediction prediction, bool hard)
{
    if (!policy_.enable || site == kTxSiteNone)
        return;
    if (prediction == Prediction::Hardware)
        machine_.stats().inc("pred.mispredicts");
    int &score = scoreSlot(tc, threads_[tc.id()], site);
    score = std::min(policy_.maxScore,
                     score + (hard ? policy_.hardWeight
                                   : policy_.conflictWeight));
}

int
PathPredictor::score(ThreadId tid, TxSiteId site) const
{
    const auto &scores = threads_[std::size_t(tid)].scores;
    auto it = scores.find(site);
    return it == scores.end() ? 0 : it->second;
}

} // namespace utm
