#include "hybrid/hybrid_base.hh"

#include "mem/memory_system.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"

namespace utm {

HybridTmBase::HybridTmBase(TxSystemKind kind, Machine &machine,
                           const TmPolicy &policy,
                           bool strong_atomic_stm,
                           bool explicit_means_conflict)
    : TxSystem(kind, machine, policy),
      ustm_(std::make_unique<Ustm>(machine, strong_atomic_stm,
                                   policy.ustm)),
      predictor_(machine, policy_.predictor),
      abortHandler_(machine, policy_, explicit_means_conflict,
                    &predictor_)
{
    machine.memsys().setBtmPolicy(policy.btm);
}

void
HybridTmBase::setup()
{
    ustm_->setup(machine_.initContext());
}

BtmUnit &
HybridTmBase::btm(ThreadContext &tc)
{
    auto &slot = btms_[tc.id()];
    if (!slot)
        slot = std::make_unique<BtmUnit>(tc);
    return *slot;
}

AbortHandlerState &
HybridTmBase::handlerState(ThreadContext &tc)
{
    return handlerState_[tc.id()];
}

bool
HybridTmBase::runNestedInline(ThreadContext &tc, const Body &body)
{
    BtmUnit &unit = btm(tc);
    if (unit.inTx()) {
        unit.txBegin(); // Bump the flattened-nesting depth.
        TxHandle h = makeHandle(tc, TxHandle::Path::Hardware);
        body(h);
        unit.txEnd();
        return true;
    }
    if (ustm_->inTx(tc.id())) {
        ustm_->txBegin(tc);
        TxHandle h = makeHandle(tc, TxHandle::Path::Software);
        body(h);
        ustm_->txEnd(tc);
        return true;
    }
    return false;
}

bool
HybridTmBase::predictedSoftwareStart(ThreadContext &tc,
                                     AbortHandlerState &st)
{
    st.prediction = predictor_.predict(tc, st.site);
    if (st.prediction != PathPredictor::Prediction::Software)
        return false;
    // Counted alongside the abort-handler failover reasons: a
    // predicted start is a failover taken before the first hardware
    // attempt (runSoftware() bumps the tm.failovers aggregate).
    machine_.stats().inc("tm.failovers.predicted");
    return true;
}

bool
HybridTmBase::tryHardware(ThreadContext &tc, const Body &body,
                          BtmAbortHandler::Decision *decision)
{
    BtmUnit &unit = btm(tc);
    try {
        beginAttempt(tc);
        unit.txBegin();
        TxHandle h = makeHandle(tc, TxHandle::Path::Hardware);
        body(h);
        unit.txEnd();
        ++hwCommits_;
        machine_.stats().inc("tm.commits.hw");
        commitAttempt(tc);
        AbortHandlerState &st = handlerState(tc);
        predictor_.onHardwareCommit(tc, st.site, st.prediction);
        return true;
    } catch (const BtmAbortException &e) {
        abortAttempt(tc);
        *decision = abortHandler_.onAbort(tc, handlerState(tc), e);
        return false;
    }
}

void
HybridTmBase::runSoftware(ThreadContext &tc, const Body &body)
{
    machine_.stats().inc("tm.failovers");
    UTM_TRACE_EVENT(machine_, tc, TraceEvent::Failover,
                    TracePath::Software, AbortReason::None);
    for (;;) {
        try {
            beginAttempt(tc);
            ustm_->txBegin(tc);
            TxHandle h = makeHandle(tc, TxHandle::Path::Software);
            body(h);
            ustm_->txEnd(tc);
            ++swCommits_;
            machine_.stats().inc("tm.commits.sw");
            commitAttempt(tc);
            return;
        } catch (const UstmAbortException &) {
            // Killed: the killer-retire wait happens in txBegin.
            abortAttempt(tc);
            machine_.stats().inc("tm.sw_retries");
        }
    }
}

std::uint64_t
HybridTmBase::stmRead(ThreadContext &tc, Addr a, unsigned size)
{
    return ustm_->txRead(tc, a, size);
}

void
HybridTmBase::stmWrite(ThreadContext &tc, Addr a, std::uint64_t v,
                       unsigned size)
{
    ustm_->txWrite(tc, a, v, size);
}

void
HybridTmBase::onRequireSoftware(ThreadContext &tc, TxHandle::Path p)
{
    if (p != TxHandle::Path::Hardware)
        return;
    handlerState(tc).forcedSoftware = true;
    btm(tc).txAbort(); // throws; the abort handler sees forcedSoftware
}

void
HybridTmBase::onRetryWait(ThreadContext &tc, TxHandle::Path p)
{
    if (p == TxHandle::Path::Hardware) {
        // Paper Section 6: the compiler translates `retry` in the
        // hardware version into an explicit abort, failing the
        // transaction over to software where waiting is supported.
        handlerState(tc).forcedSoftware = true;
        btm(tc).txAbort(); // throws
    }
    ustm_->txRetryWait(tc); // throws after wakeup
}

bool
HybridTmBase::oracleInvariantsHold(std::string *why) const
{
    if (!ustm_->verifyOracleInvariants(why))
        return false;
    for (ThreadId t = 0; t < machine_.numThreads(); ++t) {
        if (btms_[t] && !btms_[t]->idleStateClean()) {
            *why = "thread " + std::to_string(t) +
                   " BTM unit idle with undrained speculative state";
            return false;
        }
    }
    return true;
}

bool
HybridTmBase::oracleLineBusy(LineAddr line) const
{
    return machine_.memsys().lineHasSpecWriter(line) ||
           ustm_->lineBusy(line);
}

} // namespace utm
