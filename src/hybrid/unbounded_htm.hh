/**
 * @file
 * Idealized unbounded HTM (paper Section 5): BTM semantics without the
 * L1 capacity bound.  Used as the performance ceiling the hybrids are
 * measured against; deliberately optimistic with respect to real
 * unbounded-HTM proposals (flash abort, no software rollback).
 */

#ifndef UFOTM_HYBRID_UNBOUNDED_HTM_HH
#define UFOTM_HYBRID_UNBOUNDED_HTM_HH

#include <array>
#include <memory>

#include "btm/btm.hh"
#include "core/tx_system.hh"

namespace utm {

/** Pure-hardware TM without capacity bounds. */
class UnboundedHtm : public TxSystem
{
  public:
    UnboundedHtm(Machine &machine, const TmPolicy &policy);

    void atomicAt(ThreadContext &tc, TxSiteId site,
                  const Body &body) override;
    const char *name() const override { return "unbounded-htm"; }

    /** @name tmtorture oracle hooks. @{ */
    bool oracleInvariantsHold(std::string *why) const override;
    bool oracleLineBusy(LineAddr line) const override;
    /** @} */

    AbortReason
    lastHwAbortReason(ThreadContext &tc) const override
    {
        const auto &unit = btms_[tc.id()];
        return unit ? unit->lastAbortReason() : AbortReason::None;
    }

  private:
    BtmUnit &btm(ThreadContext &tc);

    std::array<std::unique_ptr<BtmUnit>, kMaxThreads> btms_;
};

} // namespace utm

#endif // UFOTM_HYBRID_UNBOUNDED_HTM_HH
