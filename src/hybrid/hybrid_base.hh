/**
 * @file
 * Shared plumbing for the hybrid TM systems (UFO hybrid, HyTM, PhTM):
 * per-thread BTM units and abort-handler state, a USTM software side,
 * and the software-path transaction loop.
 */

#ifndef UFOTM_HYBRID_HYBRID_BASE_HH
#define UFOTM_HYBRID_HYBRID_BASE_HH

#include <array>
#include <memory>

#include "btm/btm.hh"
#include "core/tx_system.hh"
#include "hybrid/abort_handler.hh"
#include "hybrid/path_predictor.hh"
#include "ustm/ustm.hh"

namespace utm {

/** Common base of the three hybrid TM systems. */
class HybridTmBase : public TxSystem
{
  public:
    /** Cumulative per-system counters (also mirrored in stats). */
    std::uint64_t hwCommits() const { return hwCommits_; }
    std::uint64_t swCommits() const { return swCommits_; }

    Ustm &ustm() { return *ustm_; }

    /** @name tmtorture oracle hooks. @{ */
    bool oracleInvariantsHold(std::string *why) const override;
    bool oracleLineBusy(LineAddr line) const override;
    Ustm *ustmRuntime() override { return ustm_.get(); }
    /** @} */

    AbortReason
    lastHwAbortReason(ThreadContext &tc) const override
    {
        const auto &unit = btms_[tc.id()];
        return unit ? unit->lastAbortReason() : AbortReason::None;
    }

  protected:
    HybridTmBase(TxSystemKind kind, Machine &machine,
                 const TmPolicy &policy, bool strong_atomic_stm,
                 bool explicit_means_conflict);

    void setup() override;

    /** Lazily create this thread's BTM unit. */
    BtmUnit &btm(ThreadContext &tc);
    AbortHandlerState &handlerState(ThreadContext &tc);

    /**
     * Consult the path predictor for the transaction just started in
     * @p st (records the prediction there).  True when the site is
     * predicted to fail over — the caller should skip hardware and
     * call runSoftware() directly.
     */
    bool predictedSoftwareStart(ThreadContext &tc,
                                AbortHandlerState &st);

    /** Run @p body to commit on the software path. */
    void runSoftware(ThreadContext &tc, const Body &body);

    /** One hardware attempt; true on commit, false -> consult abort
     *  decision in @p decision. */
    bool tryHardware(ThreadContext &tc, const Body &body,
                     BtmAbortHandler::Decision *decision);

    /**
     * Flattened nesting: when atomic() is called from inside an
     * enclosing transaction, run the body inline on the enclosing
     * path (the paper's BTM and USTM both flatten).  Returns true
     * when the nested case was handled.
     */
    bool runNestedInline(ThreadContext &tc, const Body &body);

    std::uint64_t stmRead(ThreadContext &tc, Addr a,
                          unsigned size) override;
    void stmWrite(ThreadContext &tc, Addr a, std::uint64_t v,
                  unsigned size) override;
    void onRequireSoftware(ThreadContext &tc,
                           TxHandle::Path p) override;
    [[noreturn]] void onRetryWait(ThreadContext &tc,
                                  TxHandle::Path p) override;

    std::unique_ptr<Ustm> ustm_;
    PathPredictor predictor_; ///< Before abortHandler_ (it refers here).
    BtmAbortHandler abortHandler_;
    std::array<std::unique_ptr<BtmUnit>, kMaxThreads> btms_;
    std::array<AbortHandlerState, kMaxThreads> handlerState_;
    std::uint64_t hwCommits_ = 0;
    std::uint64_t swCommits_ = 0;
};

} // namespace utm

#endif // UFOTM_HYBRID_HYBRID_BASE_HH
