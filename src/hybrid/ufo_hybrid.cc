#include "hybrid/ufo_hybrid.hh"

namespace utm {

UfoHybridTm::UfoHybridTm(Machine &machine, const TmPolicy &policy)
    : HybridTmBase(TxSystemKind::UfoHybrid, machine, policy,
                   /*strong_atomic_stm=*/true,
                   /*explicit_means_conflict=*/false)
{
}

void
UfoHybridTm::atomicAt(ThreadContext &tc, TxSiteId site, const Body &body)
{
    if (runNestedInline(tc, body))
        return;
    AbortHandlerState &st = handlerState(tc);
    st.newTransaction(site);
    if (predictedSoftwareStart(tc, st)) {
        runSoftware(tc, body);
        return;
    }
    for (;;) {
        BtmAbortHandler::Decision d;
        if (tryHardware(tc, body, &d))
            return;
        if (d == BtmAbortHandler::Decision::RetryHardware)
            continue;
        runSoftware(tc, body);
        return;
    }
}

} // namespace utm
