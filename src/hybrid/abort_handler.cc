#include "hybrid/abort_handler.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

BtmAbortHandler::BtmAbortHandler(Machine &machine, const TmPolicy &policy,
                                 bool explicit_means_conflict,
                                 PathPredictor *predictor)
    : machine_(machine), policy_(policy),
      explicitMeansConflict_(explicit_means_conflict),
      predictor_(predictor)
{
}

void
BtmAbortHandler::backoff(ThreadContext &tc, int attempt)
{
    const int exp = std::min(attempt, policy_.backoffMaxExp);
    const Cycles base = policy_.backoffBase << exp;
    const Cycles jitter = tc.rng().nextBounded(base + 1);
    UTM_PROF_PHASE(machine_, tc, ProfComp::Tm, ProfPhase::Backoff);
    tc.advance(base + jitter);
    tc.yield();
}

BtmAbortHandler::Decision
BtmAbortHandler::failover(ThreadContext &tc, AbortHandlerState &st,
                          bool hard)
{
    if (predictor_)
        predictor_->onFailover(tc, st.site, st.prediction, hard);
    return Decision::FailToSoftware;
}

BtmAbortHandler::Decision
BtmAbortHandler::onContention(ThreadContext &tc, AbortHandlerState &st)
{
    ++st.conflictAborts;
    if (policy_.conflictFailoverThreshold > 0 &&
        st.conflictAborts >= policy_.conflictFailoverThreshold) {
        machine_.stats().inc("tm.failovers.conflict");
        return failover(tc, st, /*hard=*/false);
    }
    machine_.stats().inc("tm.retries.conflict");
    backoff(tc, st.conflictAborts);
    return Decision::RetryHardware;
}

BtmAbortHandler::Decision
BtmAbortHandler::onAbort(ThreadContext &tc, AbortHandlerState &st,
                         const BtmAbortException &e)
{
    StatsRegistry &stats = machine_.stats();
    if (st.forcedSoftware) {
        stats.inc("tm.failovers.forced");
        return failover(tc, st, /*hard=*/true);
    }

    switch (e.reason) {
      // Nearly guaranteed to fail again in hardware: go to software.
      case AbortReason::SetOverflow:
      case AbortReason::Syscall:
      case AbortReason::Io:
      case AbortReason::Exception:
      case AbortReason::Uncacheable:
      case AbortReason::NestingOverflow:
        stats.inc("tm.failovers.hard");
        stats.inc(std::string("tm.failovers.hard.") +
                  abortReasonName(e.reason));
        return failover(tc, st, /*hard=*/true);

      // Resolvable in software, then retry in hardware.
      case AbortReason::PageFault:
        machine_.memory().materializePage(e.addr);
        stats.inc("tm.retries.page_fault");
        return Decision::RetryHardware;

      // Unlikely to repeat: retry in hardware, failing over ON the
      // Nth abort ("after this many aborts", policy.hh) — same
      // comparison as the conflict threshold below.
      case AbortReason::Interrupt:
        ++st.interruptAborts;
        if (st.interruptAborts >= policy_.interruptFailoverThreshold) {
            stats.inc("tm.failovers.interrupt");
            return failover(tc, st, /*hard=*/false);
        }
        stats.inc("tm.retries.interrupt");
        return Decision::RetryHardware;

      // Contention: back off and retry in hardware. The paper is
      // emphatic that contention must NOT push transactions to
      // software (the STM's longer occupancy makes contention worse);
      // the threshold (0 = never, the default) exists for Figure 8.
      case AbortReason::Conflict:
      case AbortReason::UfoBitSet:
      case AbortReason::UfoFault:
      case AbortReason::NonTConflict:
        return onContention(tc, st);

      case AbortReason::Explicit:
        if (explicitMeansConflict_)
            return onContention(tc, st);
        stats.inc("tm.failovers.explicit");
        return failover(tc, st, /*hard=*/true);

      case AbortReason::None:
        break;
    }
    utm_panic("abort handler saw reason %d",
              static_cast<int>(e.reason));
}

} // namespace utm
