#include "hybrid/abort_handler.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

BtmAbortHandler::BtmAbortHandler(Machine &machine, const TmPolicy &policy,
                                 bool explicit_means_conflict)
    : machine_(machine), policy_(policy),
      explicitMeansConflict_(explicit_means_conflict)
{
}

void
BtmAbortHandler::backoff(ThreadContext &tc, int attempt)
{
    const int exp = std::min(attempt, policy_.backoffMaxExp);
    const Cycles base = policy_.backoffBase << exp;
    const Cycles jitter = tc.rng().nextBounded(base + 1);
    UTM_PROF_PHASE(machine_, tc, ProfComp::Tm, ProfPhase::Backoff);
    tc.advance(base + jitter);
    tc.yield();
}

BtmAbortHandler::Decision
BtmAbortHandler::onAbort(ThreadContext &tc, AbortHandlerState &st,
                         const BtmAbortException &e)
{
    StatsRegistry &stats = machine_.stats();
    if (st.forcedSoftware) {
        stats.inc("tm.failovers.forced");
        return Decision::FailToSoftware;
    }

    switch (e.reason) {
      // Nearly guaranteed to fail again in hardware: go to software.
      case AbortReason::SetOverflow:
      case AbortReason::Syscall:
      case AbortReason::Io:
      case AbortReason::Exception:
      case AbortReason::Uncacheable:
      case AbortReason::NestingOverflow:
        stats.inc("tm.failovers.hard");
        stats.inc(std::string("tm.failovers.hard.") +
                  abortReasonName(e.reason));
        return Decision::FailToSoftware;

      // Resolvable in software, then retry in hardware.
      case AbortReason::PageFault:
        machine_.memory().materializePage(e.addr);
        stats.inc("tm.retries.page_fault");
        return Decision::RetryHardware;

      // Unlikely to repeat: retry in hardware.
      case AbortReason::Interrupt:
        ++st.interruptAborts;
        if (st.interruptAborts > policy_.interruptFailoverThreshold) {
            stats.inc("tm.failovers.interrupt");
            return Decision::FailToSoftware;
        }
        stats.inc("tm.retries.interrupt");
        return Decision::RetryHardware;

      // Contention: back off and retry in hardware. The paper is
      // emphatic that contention must NOT push transactions to
      // software (the STM's longer occupancy makes contention worse).
      case AbortReason::Conflict:
      case AbortReason::UfoBitSet:
      case AbortReason::UfoFault:
      case AbortReason::NonTConflict:
        ++st.conflictAborts;
        if (policy_.conflictFailoverThreshold > 0 &&
            st.conflictAborts >= policy_.conflictFailoverThreshold) {
            stats.inc("tm.failovers.conflict");
            return Decision::FailToSoftware;
        }
        stats.inc("tm.retries.conflict");
        backoff(tc, st.conflictAborts);
        return Decision::RetryHardware;

      case AbortReason::Explicit:
        if (explicitMeansConflict_) {
            ++st.conflictAborts;
            stats.inc("tm.retries.conflict");
            backoff(tc, st.conflictAborts);
            return Decision::RetryHardware;
        }
        stats.inc("tm.failovers.explicit");
        return Decision::FailToSoftware;

      case AbortReason::None:
        break;
    }
    utm_panic("abort handler saw reason %d",
              static_cast<int>(e.reason));
}

} // namespace utm
