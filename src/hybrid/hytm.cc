#include "hybrid/hytm.hh"

#include "sim/machine.hh"

namespace utm {

HyTm::HyTm(Machine &machine, const TmPolicy &policy)
    : HybridTmBase(TxSystemKind::HyTm, machine, policy,
                   /*strong_atomic_stm=*/false,
                   /*explicit_means_conflict=*/true)
{
}

void
HyTm::atomicAt(ThreadContext &tc, TxSiteId site, const Body &body)
{
    if (runNestedInline(tc, body))
        return;
    AbortHandlerState &st = handlerState(tc);
    st.newTransaction(site);
    if (predictedSoftwareStart(tc, st)) {
        runSoftware(tc, body);
        return;
    }
    for (;;) {
        BtmAbortHandler::Decision d;
        checked_[tc.id()].clear();
        if (tryHardware(tc, body, &d))
            return;
        if (d == BtmAbortHandler::Decision::RetryHardware)
            continue;
        runSoftware(tc, body);
        return;
    }
}

void
HyTm::hwBarrier(ThreadContext &tc, LineAddr line, bool is_write)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::HyTm,
                   ProfPhase::OtableWalk);
    auto &memo = checked_[tc.id()];
    const int need = is_write ? 2 : 1;
    auto mit = memo.find(line);
    if (mit != memo.end() && mit->second >= need)
        return; // Redundant barrier eliminated.

    Otable &ot = ustm_->otableFor(line);
    const Addr head = ot.bucketAddr(line);
    const std::uint64_t tag = Otable::tagOf(line);

    // Transactional read: the otable word joins this hardware
    // transaction's read set.
    std::uint64_t w0 = tc.load(head, 8);
    bool conflict = false;
    if (Otable::locked(w0)) {
        conflict = true; // Mutation in flight: be conservative.
    } else if (Otable::used(w0) && Otable::tag(w0) == tag) {
        conflict = is_write || Otable::writeState(w0);
    } else if (Otable::hasChain(w0)) {
        Addr node = tc.load(head + 16, 8);
        while (node != 0) {
            std::uint64_t nw0 = tc.load(node, 8);
            if (Otable::used(nw0) && Otable::tag(nw0) == tag) {
                conflict = is_write || Otable::writeState(nw0);
                break;
            }
            node = tc.load(node + 16, 8);
        }
    }
    if (conflict) {
        machine_.stats().inc("hytm.barrier_conflicts");
        btm(tc).txAbort(); // throws Explicit; handler retries in HW
    }
    memo[line] = need;
}

std::uint64_t
HyTm::htmRead(ThreadContext &tc, Addr a, unsigned size)
{
    hwBarrier(tc, lineOf(a), /*is_write=*/false);
    return tc.load(a, size);
}

void
HyTm::htmWrite(ThreadContext &tc, Addr a, std::uint64_t v, unsigned size)
{
    hwBarrier(tc, lineOf(a), /*is_write=*/true);
    tc.store(a, v, size);
}

} // namespace utm
