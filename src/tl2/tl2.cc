#include "tl2/tl2.hh"

#include <algorithm>

#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

namespace {

constexpr Cycles kBeginCost = 10;
constexpr Cycles kAbortPenalty = 40;
constexpr Cycles kWriteBufCost = 4; ///< Hash + append into the redo log.

} // namespace

Tl2::Tl2(Machine &machine) : machine_(machine)
{
}

void
Tl2::setup(ThreadContext &init)
{
    SimMemory &mem = machine_.memory();
    mem.materializePage(kClockAddr);
    const Addr end = kLockTableBase + std::uint64_t(kLockTableSlots) * 8;
    for (Addr a = kLockTableBase; a < end; a += SimMemory::kPageSize)
        mem.materializePage(a);
    mem.materializePage(end - 1);
    (void)init;
}

Addr
Tl2::slotAddr(LineAddr line) const
{
    std::uint64_t x = line >> kLineBits;
    x ^= x >> 33;
    x *= 0xc2b2ae3d27d4eb4full;
    x ^= x >> 29;
    return kLockTableBase + (x & (kLockTableSlots - 1)) * 8;
}

void
Tl2::txBegin(ThreadContext &tc)
{
    TxDesc &tx = txs_[tc.id()];
    utm_assert(!tx.active);
    UTM_PROF_PHASE(machine_, tc, ProfComp::Tl2, ProfPhase::Begin);
    tx.active = true;
    tx.rv = tc.load(kClockAddr, 8);
    tx.readSet.clear();
    tx.writeBuf.clear();
    tx.writeOrder.clear();
    machine_.stats().inc("tl2.begins");
    UTM_TRACE_EVENT(machine_, tc, TraceEvent::TxBegin,
                    TracePath::Software, AbortReason::None);
    tc.advance(kBeginCost);
}

void
Tl2::abortTx(ThreadContext &tc, const std::vector<Addr> &held,
             const char *why)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Tl2,
                   ProfPhase::AbortUnwind);
    TxDesc &tx = txs_[tc.id()];
    // Release any commit-time locks we already hold (restore their
    // pre-lock version).
    for (Addr slot : held) {
        std::uint64_t vl = tc.load(slot, 8);
        utm_assert(locked(vl));
        tc.store(slot, vl & ~1ull, 8);
    }
    tx.active = false;
    machine_.stats().inc("tl2.aborts");
    machine_.stats().inc(std::string("tl2.aborts.") + why);
    UTM_TRACE_EVENT(machine_, tc, TraceEvent::TxAbort,
                    TracePath::Software, AbortReason::Conflict);
    tc.advance(kAbortPenalty);
    throw Tl2AbortException{};
}

std::uint64_t
Tl2::txRead(ThreadContext &tc, Addr a, unsigned size)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Tl2,
                   ProfPhase::BarrierRead);
    TxDesc &tx = txs_[tc.id()];
    utm_assert(tx.active);

    auto wit = tx.writeBuf.find(a);
    if (wit != tx.writeBuf.end()) {
        utm_assert(wit->second.size == size);
        tc.advance(2);
        return wit->second.value;
    }

    const Addr slot = slotAddr(lineOf(a));
    std::uint64_t vl = tc.load(slot, 8);
    if (locked(vl) || version(vl) > tx.rv)
        abortTx(tc, {}, "read_validation");
    std::uint64_t v = tc.load(a, size);
    std::uint64_t vl2 = tc.load(slot, 8);
    if (vl2 != vl)
        abortTx(tc, {}, "read_validation");
    tx.readSet.emplace_back(slot, vl);
    return v;
}

void
Tl2::txWrite(ThreadContext &tc, Addr a, std::uint64_t v, unsigned size)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Tl2,
                   ProfPhase::BarrierWrite);
    TxDesc &tx = txs_[tc.id()];
    utm_assert(tx.active);
    auto [it, fresh] = tx.writeBuf.insert_or_assign(a, WriteRec{v, size});
    (void)it;
    if (fresh)
        tx.writeOrder.push_back(a);
    tc.advance(kWriteBufCost);
}

void
Tl2::txEnd(ThreadContext &tc)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Tl2, ProfPhase::Commit);
    TxDesc &tx = txs_[tc.id()];
    utm_assert(tx.active);

    if (tx.writeBuf.empty()) {
        // Read-only transactions commit immediately under TL2.
        machine_.notifyCommitPoint(tc);
        tx.active = false;
        machine_.stats().inc("tl2.commits");
        UTM_TRACE_EVENT(machine_, tc, TraceEvent::TxCommit,
                        TracePath::Software, AbortReason::None);
        tc.advance(2);
        return;
    }

    // Acquire write locks in address order (deadlock avoidance).
    std::vector<Addr> slots;
    slots.reserve(tx.writeOrder.size());
    for (Addr a : tx.writeOrder)
        slots.push_back(slotAddr(lineOf(a)));
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());

    std::vector<Addr> held;
    held.reserve(slots.size());
    for (Addr slot : slots) {
        std::uint64_t vl = tc.load(slot, 8);
        if (locked(vl) || version(vl) > tx.rv)
            abortTx(tc, held, "lock_busy");
        if (!tc.cas(slot, 8, vl, vl | 1))
            abortTx(tc, held, "lock_busy");
        held.push_back(slot);
    }

    const std::uint64_t wv = tc.fetchAdd(kClockAddr, 8, 1) + 1;

    // Validate the read set (skip slots we hold ourselves).
    for (const auto &[slot, vl] : tx.readSet) {
        std::uint64_t cur = tc.load(slot, 8);
        const bool held_by_me =
            std::binary_search(slots.begin(), slots.end(), slot);
        if (held_by_me) {
            if ((cur & ~1ull) != (vl & ~1ull))
                abortTx(tc, held, "commit_validation");
        } else if (cur != vl) {
            abortTx(tc, held, "commit_validation");
        }
    }

    // Commit linearization point: validation passed while holding
    // every write lock, so the transaction is now irrevocable.
    tx.committing = true;
    machine_.notifyCommitPoint(tc);

    // Write back and release with the new version.
    for (Addr a : tx.writeOrder) {
        const WriteRec &w = tx.writeBuf.at(a);
        tc.store(a, w.value, w.size);
    }
    for (Addr slot : held)
        tc.store(slot, wv << 1, 8);

    tx.committing = false;
    tx.active = false;
    machine_.stats().inc("tl2.commits");
    UTM_TRACE_EVENT(machine_, tc, TraceEvent::TxCommit,
                    TracePath::Software, AbortReason::None);
}

bool
Tl2::verifyOracleInvariants(std::string *why) const
{
    for (ThreadId t = 0; t < machine_.numThreads(); ++t) {
        const TxDesc &tx = txs_[t];
        if (!tx.active && tx.committing) {
            *why = "thread " + std::to_string(t) +
                   " committing while not active";
            return false;
        }
        if (tx.writeBuf.size() != tx.writeOrder.size()) {
            *why = "thread " + std::to_string(t) +
                   " writeBuf/writeOrder size mismatch";
            return false;
        }
    }
    return true;
}

bool
Tl2::lineBusy(LineAddr line) const
{
    for (ThreadId t = 0; t < machine_.numThreads(); ++t) {
        const TxDesc &tx = txs_[t];
        if (!tx.committing)
            continue;
        for (Addr a : tx.writeOrder)
            if (lineOf(a) == line)
                return true;
    }
    return false;
}

} // namespace utm
