/**
 * @file
 * TL2-style software TM baseline (Dice, Shalev, Shavit, DISC 2006),
 * used by the paper to link USTM's performance to published results.
 *
 * Lazy versioning with a global version clock and per-stripe versioned
 * write-locks (one stripe per cache line, hashed into a lock table in
 * simulated memory).  Weakly atomic; standalone use only.
 */

#ifndef UFOTM_TL2_TL2_HH
#define UFOTM_TL2_TL2_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Thrown when a TL2 transaction must be retried. */
struct Tl2AbortException
{
};

/** TL2 runtime shared by all threads of one machine. */
class Tl2
{
  public:
    static constexpr Addr kClockAddr = 0x0c000000;
    static constexpr Addr kLockTableBase = 0x0c010000;
    static constexpr unsigned kLockTableSlots = 1u << 16;

    explicit Tl2(Machine &machine);

    /** Materialize the clock and lock table. Call once. */
    void setup(ThreadContext &init);

    void txBegin(ThreadContext &tc);

    /** Commit; throws Tl2AbortException if validation fails. */
    void txEnd(ThreadContext &tc);

    std::uint64_t txRead(ThreadContext &tc, Addr a, unsigned size);
    void txWrite(ThreadContext &tc, Addr a, std::uint64_t v,
                 unsigned size);

    bool inTx(ThreadId t) const { return txs_[t].active; }

    /** @name tmtorture oracle hooks (sim/oracle.hh). @{ */

    /** Descriptor sanity at preemption points (quiescent ⇒ clean). */
    bool verifyOracleInvariants(std::string *why) const;

    /**
     * Is @p line in the redo log of a transaction past its commit
     * point (validation passed, write-back in flight)?  Lazy
     * versioning keeps memory clean at all other times.
     */
    bool lineBusy(LineAddr line) const;
    /** @} */

  private:
    struct WriteRec
    {
        std::uint64_t value;
        unsigned size;
    };

    struct TxDesc
    {
        bool active = false;
        bool committing = false; ///< Past validation, writing back.
        std::uint64_t rv = 0; ///< Read version (clock snapshot).
        std::vector<std::pair<Addr, std::uint64_t>> readSet; ///< slot,ver
        std::unordered_map<Addr, WriteRec> writeBuf;
        std::vector<Addr> writeOrder;
    };

    Addr slotAddr(LineAddr line) const;

    /** version-lock word: bit0 = locked, bits 1.. = version. */
    static bool locked(std::uint64_t vl) { return vl & 1; }
    static std::uint64_t version(std::uint64_t vl) { return vl >> 1; }

    /**
     * Abort, releasing @p held commit-time locks.  @p why names the
     * failure mode for the tl2.aborts.&lt;why&gt; attribution counter:
     * "read_validation", "lock_busy", or "commit_validation".
     */
    [[noreturn]] void abortTx(ThreadContext &tc,
                              const std::vector<Addr> &held,
                              const char *why);

    Machine &machine_;
    std::array<TxDesc, kMaxThreads> txs_;
};

} // namespace utm

#endif // UFOTM_TL2_TL2_HH
