/**
 * @file
 * Functional backing store for the simulated physical address space.
 *
 * Data and the per-line UFO protection bits live side by side, exactly
 * as the paper's Appendix A describes (UFO bits travel with the data
 * through the whole hierarchy).  Storage is allocated lazily in 64 KiB
 * pages so tests and workloads can use a sparse address space.
 */

#ifndef UFOTM_MEM_SIM_MEMORY_HH
#define UFOTM_MEM_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/types.hh"

namespace utm {

/** Sparse, paged, functional memory with per-line UFO bits. */
class SimMemory
{
  public:
    static constexpr unsigned kPageBits = 16;
    static constexpr std::uint64_t kPageSize = 1ull << kPageBits;
    static constexpr unsigned kLinesPerPage = kPageSize / kLineSize;

    /**
     * Read @p size bytes (1, 2, 4, or 8) at @p a, zero-extended.
     * The access must not cross a cache-line boundary.
     */
    std::uint64_t read(Addr a, unsigned size) const;

    /** Write the low @p size bytes of @p v at @p a. */
    void write(Addr a, std::uint64_t v, unsigned size);

    /** @name UFO protection bits, per cache line. @{ */
    UfoBits ufoBits(LineAddr line) const;
    void setUfoBits(LineAddr line, UfoBits bits);
    void addUfoBits(LineAddr line, UfoBits bits);
    /** @} */

    /** True if any UFO bit is set anywhere in the page holding @p a.
     *  Used by the swap model's all-clear-page optimization. */
    bool pageHasUfoBits(Addr a) const;

    /** Has the page holding @p a been materialized (page-fault model)? */
    bool pageExists(Addr a) const;

    /** Materialize the page holding @p a (resolve a page fault). */
    void materializePage(Addr a);

    /** Number of pages materialized so far. */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Invoke @p fn for every line with any UFO bit set.  Page
     * enumeration order is unspecified (hash-map order) — callers that
     * need deterministic output must aggregate, not early-exit.
     */
    void forEachUfoLine(
        const std::function<void(LineAddr, UfoBits)> &fn) const;

    /**
     * Invoke @p fn with the base address of every materialized page.
     * Enumeration order is unspecified (hash-map order) — callers
     * that need deterministic output must aggregate, not early-exit.
     */
    void forEachPage(const std::function<void(Addr)> &fn) const;

  private:
    struct Page
    {
        std::array<std::uint8_t, kPageSize> data{};
        /** Two bits per line: bit0 = fault-on-read, bit1 = f-o-write. */
        std::array<std::uint8_t, kLinesPerPage> ufo{};
        unsigned ufoSetCount = 0;
    };

    Page &pageFor(Addr a);
    const Page *pageForConst(Addr a) const;

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace utm

#endif // UFOTM_MEM_SIM_MEMORY_HH
