#include "mem/directory.hh"

#include "sim/logging.hh"

namespace utm {

const Directory::Entry *
Directory::find(LineAddr line) const
{
    auto it = entries_.find(line);
    return it == entries_.end() ? nullptr : &it->second;
}

void
Directory::addSharer(LineAddr line, ThreadId core)
{
    utm_assert(core >= 0 && core < kMaxThreads);
    entries_[line].sharers |= 1ull << core;
}

void
Directory::setOwner(LineAddr line, ThreadId core)
{
    utm_assert(core >= 0 && core < kMaxThreads);
    Entry &e = entries_[line];
    e.sharers |= 1ull << core;
    e.owner = core;
}

void
Directory::clearOwner(LineAddr line)
{
    auto it = entries_.find(line);
    if (it != entries_.end())
        it->second.owner = -1;
}

void
Directory::removeSharer(LineAddr line, ThreadId core)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        return;
    Entry &e = it->second;
    e.sharers &= ~(1ull << core);
    if (e.owner == core)
        e.owner = -1;
    if (e.sharers == 0)
        entries_.erase(it);
}

std::uint64_t
Directory::othersMask(LineAddr line, ThreadId core) const
{
    const Entry *e = find(line);
    if (!e)
        return 0;
    return e->sharers & ~(1ull << core);
}

} // namespace utm
