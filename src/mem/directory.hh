/**
 * @file
 * Directory-style sharer tracking for the coherence model.
 *
 * Tracks, per line, which cores hold a copy and which (if any) holds
 * it exclusively/dirty.  Used for invalidation fan-out and transfer
 * latency decisions; the functional data always lives in SimMemory.
 */

#ifndef UFOTM_MEM_DIRECTORY_HH
#define UFOTM_MEM_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace utm {

/** Per-line coherence residency directory. */
class Directory
{
  public:
    struct Entry
    {
        std::uint64_t sharers = 0; ///< Bitmask of cores with a copy.
        ThreadId owner = -1;       ///< Core with exclusive/dirty copy.
    };

    /** Look up (never materializes) the entry for @p line. */
    const Entry *find(LineAddr line) const;

    /** Record that @p core now holds @p line (shared). */
    void addSharer(LineAddr line, ThreadId core);

    /** Record that @p core holds @p line exclusively. */
    void setOwner(LineAddr line, ThreadId core);

    /** Downgrade the exclusive owner (it keeps a shared copy). */
    void clearOwner(LineAddr line);

    /** Remove @p core's copy (eviction or invalidation). */
    void removeSharer(LineAddr line, ThreadId core);

    /** Sharer mask excluding @p core. */
    std::uint64_t othersMask(LineAddr line, ThreadId core) const;

    std::size_t trackedLines() const { return entries_.size(); }

  private:
    std::unordered_map<LineAddr, Entry> entries_;
};

} // namespace utm

#endif // UFOTM_MEM_DIRECTORY_HH
