#include "mem/memory_system.hh"

#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

const char *
abortReasonName(AbortReason r)
{
    switch (r) {
      case AbortReason::None: return "none";
      case AbortReason::Conflict: return "conflict";
      case AbortReason::SetOverflow: return "set_overflow";
      case AbortReason::Explicit: return "explicit";
      case AbortReason::Interrupt: return "interrupt";
      case AbortReason::Exception: return "exception";
      case AbortReason::Syscall: return "syscall";
      case AbortReason::Io: return "io";
      case AbortReason::Uncacheable: return "uncacheable";
      case AbortReason::PageFault: return "page_fault";
      case AbortReason::NestingOverflow: return "nesting_overflow";
      case AbortReason::UfoFault: return "ufo_fault";
      case AbortReason::UfoBitSet: return "ufo_bit_set";
      case AbortReason::NonTConflict: return "nont_conflict";
    }
    return "unknown";
}

MemorySystem::MemorySystem(Machine &machine, const MachineConfig &cfg)
    : machine_(machine), cfg_(cfg), mem_(machine.memory())
{
    // One L1 per possible thread id: worker cores plus the reserved
    // init-context slot, so every ThreadContext has a cache.
    l1_.reserve(kMaxThreads);
    for (int i = 0; i < kMaxThreads; ++i)
        l1_.push_back(std::make_unique<Cache>(cfg.l1Sets, cfg.l1Ways));
    l2_ = std::make_unique<Cache>(cfg.l2Sets, cfg.l2Ways);
}

void
MemorySystem::setBtmClient(ThreadId t, BtmClient *c)
{
    utm_assert(t >= 0 && t < kMaxThreads);
    btm_[t] = c;
}

BtmClient *
MemorySystem::btmClient(ThreadId t) const
{
    utm_assert(t >= 0 && t < kMaxThreads);
    return btm_[t];
}

void
MemorySystem::setUfoFaultHandler(UfoFaultHandler h)
{
    ufoHandler_ = std::move(h);
}

void
MemorySystem::setRetryWakeupHooks(RetryWakeupHooks h)
{
    retryHooks_ = std::move(h);
}

std::uint64_t
MemorySystem::read(ThreadContext &tc, Addr a, unsigned size)
{
    return accessImpl(tc, a, AccessType::Read, size, 0, RmwKind::None, 0,
                      nullptr);
}

void
MemorySystem::write(ThreadContext &tc, Addr a, std::uint64_t v,
                    unsigned size)
{
    accessImpl(tc, a, AccessType::Write, size, v, RmwKind::None, 0,
               nullptr);
}

bool
MemorySystem::cas(ThreadContext &tc, Addr a, unsigned size,
                  std::uint64_t expect, std::uint64_t desired,
                  std::uint64_t *old_out)
{
    bool ok = false;
    std::uint64_t old = accessImpl(tc, a, AccessType::Write, size,
                                   desired, RmwKind::Cas, expect, &ok);
    if (old_out)
        *old_out = old;
    return ok;
}

std::uint64_t
MemorySystem::fetchAdd(ThreadContext &tc, Addr a, unsigned size,
                       std::uint64_t delta)
{
    return accessImpl(tc, a, AccessType::Write, size, delta,
                      RmwKind::FetchAdd, 0, nullptr);
}

std::uint64_t
MemorySystem::accessImpl(ThreadContext &tc, Addr a, AccessType t,
                         unsigned size, std::uint64_t wval, RmwKind rmw,
                         std::uint64_t rmw_expect, bool *rmw_success)
{
    const LineAddr line = lineOf(a);
    BtmClient *me = btm_[tc.id()];

    // Reschedule point BEFORE the event: lower-clock threads run
    // first, so events complete in simulated-timestamp order.
    tc.yield();

    for (;;) {
        // A durably-committing transaction is past its linearization
        // point: its redo-log accesses are non-speculative, cannot be
        // doomed, and must not page-fault (the domain pre-materializes
        // the log), so it is treated as non-transactional here.
        const bool in_tx = me && me->inTx() && !me->committing();
        if (in_tx) {
            if (me->doomed())
                me->takePendingAbort(); // throws
            if (!mem_.pageExists(a))
                me->onPageFault(a); // throws
        }
        // UFO protection check. In hardware this is performed at
        // retirement alongside the tag check; checking it before
        // coherence keeps contention management clean and changes no
        // observable TM behaviour (the access never completes either
        // way).
        if (tc.ufoEnabled()) {
            UfoBits bits = mem_.ufoBits(line);
            if (bits.faults(t)) {
                machine_.stats().inc("ufo.faults");
                if (in_tx) {
                    me->onUfoFault(a, t); // throws or stalls
                    continue;
                }
                if (!ufoHandler_) {
                    utm_panic("UFO fault at %#lx with no handler "
                              "registered",
                              static_cast<unsigned long>(a));
                }
                machine_.stats().inc("ufo.faults.nont");
                ufoHandler_(tc, a, t);
                continue;
            }
        }
        if (!resolveSpecConflicts(tc, line, t)) {
            machine_.stats().inc("btm.nacks");
            tc.advance(cfg_.nackRetryDelay);
            tc.yield();
            continue;
        }
        break;
    }

    chargeAccess(tc, line, t); // may throw (overflow, timer)

    if (me && me->inTx() && !me->committing())
        me->onTxAccess(a, size, t); // undo log + read/write sets

    // Functional completion: one atomic event.
    std::uint64_t result;
    switch (rmw) {
      case RmwKind::None:
        if (t == AccessType::Read) {
            result = mem_.read(a, size);
        } else {
            mem_.write(a, wval, size);
            result = wval;
        }
        break;
      case RmwKind::Cas: {
        std::uint64_t old = mem_.read(a, size);
        result = old;
        if (old == rmw_expect) {
            mem_.write(a, wval, size);
            *rmw_success = true;
        } else {
            *rmw_success = false;
        }
        break;
      }
      case RmwKind::FetchAdd: {
        std::uint64_t old = mem_.read(a, size);
        mem_.write(a, old + wval, size);
        result = old;
        break;
      }
      default:
        utm_panic("bad rmw kind");
    }
    if (t == AccessType::Write &&
        (rmw != RmwKind::Cas || *rmw_success))
        machine_.persist().markDirty(line);
    return result;
}

bool
MemorySystem::resolveSpecConflicts(ThreadContext &tc, LineAddr line,
                                   AccessType t)
{
    auto it = spec_.find(line);
    if (it == spec_.end())
        return true;

    const ThreadId self = tc.id();
    const std::uint64_t self_bit = 1ull << self;
    std::uint64_t victims = 0;
    if (t == AccessType::Write) {
        victims = it->second.readers;
        if (it->second.writer >= 0)
            victims |= 1ull << it->second.writer;
    } else if (it->second.writer >= 0) {
        victims = 1ull << it->second.writer;
    }
    victims &= ~self_bit;
    if (!victims)
        return true;

    BtmClient *me = btm_[self];
    const bool me_tx = me && me->inTx() && !me->committing();

    // Don't hold the iterator across wound() calls: wounding erases
    // spec-table entries.
    for (int v = 0; victims != 0; ++v, victims >>= 1) {
        if (!(victims & 1))
            continue;
        BtmClient *vc = btm_[v];
        utm_assert(vc && vc->inTx());
        // Durable-commit shield: a victim inside its redo-log fence
        // window is logically committed — wounding it would roll back
        // final writes.  NACK the requester; the window is short.
        if (vc->committing()) {
            machine_.stats().inc("dur.commit_shield_nacks");
            return false;
        }
        bool requester_wins;
        AbortReason reason;
        if (!me_tx) {
            // Non-transactional (or STM) requesters always win:
            // strong atomicity of the hardware TM.
            requester_wins = true;
            reason = AbortReason::NonTConflict;
        } else if (policy_.cm == BtmPolicy::Cm::RequesterWins) {
            requester_wins = true;
            reason = AbortReason::Conflict;
        } else {
            requester_wins = me->txAge() < vc->txAge();
            reason = AbortReason::Conflict;
        }
        if (requester_wins) {
            if (!vc->doomed())
                machine_.contention().btmHotLines().observe(line);
            vc->wound(reason, self, line);
        } else {
            return false; // NACKed; retry after the delay.
        }
    }
    return true;
}

void
MemorySystem::invalidateOthers(LineAddr line, ThreadId self)
{
    std::uint64_t others = dir_.othersMask(line, self);
    for (int c = 0; others != 0; ++c, others >>= 1) {
        if (!(others & 1))
            continue;
        l1_[c]->invalidate(line);
        dir_.removeSharer(line, c);
    }
}

void
MemorySystem::chargeAccess(ThreadContext &tc, LineAddr line,
                           AccessType t)
{
    const ThreadId self = tc.id();
    Cache &l1 = *l1_[self];
    BtmClient *me = btm_[self];
    // Committing (fence-window) accesses are non-speculative: they may
    // evict speculative lines and never count toward the L1 bound.
    const bool in_tx = me && me->inTx() && !me->committing();
    StatsRegistry &stats = machine_.stats();

    Cycles lat = cfg_.l1HitLatency;
    Cache::Line *ln = l1.find(line);

    if (ln) {
        stats.inc("mem.l1_hits");
        if (t == AccessType::Write && !ln->excl) {
            // Upgrade: invalidate remote copies.
            if (dir_.othersMask(line, self) != 0)
                lat += cfg_.transferLatency / 2;
            invalidateOthers(line, self);
            ln->excl = true;
            dir_.setOwner(line, self);
        }
    } else {
        stats.inc("mem.l1_misses");
        // Fetch: dirty-remote transfer beats going to the L2.
        const Directory::Entry *de = dir_.find(line);
        const bool remote_dirty =
            de && de->owner >= 0 && de->owner != self;
        if (remote_dirty) {
            lat += cfg_.transferLatency;
            dir_.clearOwner(line);
            stats.inc("mem.cache_transfers");
            l2_->insert(line, true); // Writeback reaches the L2.
        } else if (l2_->find(line)) {
            lat += cfg_.l2HitLatency;
            l2_->touch(l2_->find(line));
            stats.inc("mem.l2_hits");
        } else {
            lat += cfg_.memLatency;
            stats.inc("mem.l2_misses");
            l2_->insert(line, true);
        }
        if (t == AccessType::Write)
            invalidateOthers(line, self);

        const bool allow_spec_evict = !in_tx || me->unbounded();
        Cache::InsertResult ins = l1.insert(line, allow_spec_evict);
        if (ins.overflowed) {
            utm_assert(in_tx);
            tc.advance(lat);
            me->onCapacityOverflow(line); // throws
        }
        if (ins.evicted) {
            dir_.removeSharer(ins.evictedAddr, self);
            if (ins.evictedDirty)
                l2_->insert(ins.evictedAddr, true);
        }
        ln = ins.line;
        if (t == AccessType::Write)
            dir_.setOwner(line, self);
        else
            dir_.addSharer(line, self);
    }

    if (t == AccessType::Write) {
        ln->excl = true;
        ln->dirty = true;
        dir_.setOwner(line, self);
    }
    if (in_tx)
        ln->spec = true;
    l1.touch(ln);
    tc.advance(lat); // may throw on a timer interrupt
}

void
MemorySystem::ufoSet(ThreadContext &tc, LineAddr line, UfoBits bits)
{
    utm_assert(lineOffset(line) == 0);
    BtmClient *me = btm_[tc.id()];
    utm_assert(!me || !me->inTx());
    machine_.stats().inc("ufo.bit_sets");
    tc.yield();

    // Durable-commit shield: a speculative owner inside its redo-log
    // fence window is logically committed and cannot be killed; wait
    // for its window to close (it only does bounded stores/clwbs, so
    // this terminates) before resolving the bit-set against it.
    for (;;) {
        bool commit_wait = false;
        auto sit = spec_.find(line);
        if (sit != spec_.end()) {
            std::uint64_t vmask = sit->second.readers;
            if (sit->second.writer >= 0)
                vmask |= 1ull << sit->second.writer;
            vmask &= ~(1ull << tc.id());
            for (int v = 0; vmask != 0; ++v, vmask >>= 1)
                if ((vmask & 1) && btm_[v] && btm_[v]->committing()) {
                    commit_wait = true;
                    break;
                }
        }
        if (!commit_wait)
            break;
        machine_.stats().inc("dur.commit_shield_waits");
        tc.advance(cfg_.nackRetryDelay);
        tc.yield();
    }

    // Exclusive coherence permission is required to keep the bits
    // coherent, so remote speculative copies are killed -- the
    // BTM/UFO false-sharing interaction of paper Section 4.3.
    auto it = spec_.find(line);
    if (it != spec_.end()) {
        std::uint64_t victims = it->second.readers;
        if (it->second.writer >= 0)
            victims |= 1ull << it->second.writer;
        victims &= ~(1ull << tc.id());
        for (int v = 0; victims != 0; ++v, victims >>= 1) {
            if (!(victims & 1))
                continue;
            BtmClient *vc = btm_[v];
            utm_assert(vc && vc->inTx());
            if (policy_.ufoSetTrueConflictOracle) {
                // Limit study: only kill on a true conflict. A reader
                // of the line conflicts only if the new bits fault
                // reads (i.e. an STM writer); a transactional writer
                // always conflicts. Clearing bits never conflicts.
                const bool true_conflict =
                    vc->wroteLine(line) ? bits.any() : bits.faultOnRead;
                if (!true_conflict) {
                    machine_.stats().inc("ufo.bit_set_false_spared");
                    continue;
                }
            }
            if (!vc->doomed())
                machine_.contention().btmHotLines().observe(line);
            vc->wound(AbortReason::UfoBitSet, tc.id(), line);
        }
    }

    chargeAccess(tc, line, AccessType::Write);
    mem_.setUfoBits(line, bits);
}

void
MemorySystem::ufoAdd(ThreadContext &tc, LineAddr line, UfoBits bits)
{
    UfoBits merged = mem_.ufoBits(line);
    merged.faultOnRead |= bits.faultOnRead;
    merged.faultOnWrite |= bits.faultOnWrite;
    ufoSet(tc, line, merged);
}

UfoBits
MemorySystem::ufoRead(ThreadContext &tc, LineAddr line)
{
    tc.yield();
    chargeAccess(tc, line, AccessType::Read);
    return mem_.ufoBits(line);
}

void
MemorySystem::addSpecRead(ThreadId t, LineAddr line)
{
    spec_[line].readers |= 1ull << t;
}

void
MemorySystem::addSpecWrite(ThreadId t, LineAddr line)
{
    SpecEntry &e = spec_[line];
    utm_assert(e.writer < 0 || e.writer == t);
    e.writer = t;
    e.readers |= 1ull << t;
}

void
MemorySystem::clearSpec(ThreadId t, const std::vector<LineAddr> &reads,
                        const std::vector<LineAddr> &writes,
                        bool invalidate_writes)
{
    auto drop = [&](LineAddr line, bool wrote) {
        auto it = spec_.find(line);
        if (it == spec_.end())
            return;
        SpecEntry &e = it->second;
        e.readers &= ~(1ull << t);
        if (wrote && e.writer == t)
            e.writer = -1;
        if (e.readers == 0 && e.writer < 0)
            spec_.erase(it);
    };
    for (LineAddr line : reads)
        drop(line, false);
    for (LineAddr line : writes) {
        drop(line, true);
        if (invalidate_writes) {
            // The L1 copy held speculative data; discard it.
            l1_[t]->invalidate(line);
            dir_.removeSharer(line, t);
        }
    }
    l1_[t]->clearAllSpec();
}

bool
MemorySystem::lineHasSpecWriter(LineAddr line) const
{
    auto it = spec_.find(line);
    return it != spec_.end() && it->second.writer >= 0;
}

std::uint64_t
MemorySystem::specReaders(LineAddr line) const
{
    auto it = spec_.find(line);
    return it == spec_.end() ? 0 : it->second.readers;
}

} // namespace utm
