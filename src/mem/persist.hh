/**
 * @file
 * Modeled persistence domain: dirty-line tracking, `clwb`/`sfence`
 * analogues with simulated-cycle costs, and the per-shard redo log
 * that durable commits append to.
 *
 * The domain models a system whose caches are volatile and whose
 * memory sits behind a persistence boundary: a store becomes durable
 * only once its line has been explicitly written back (`clwb`) and a
 * subsequent fence (`sfence`) has drained the write-back queue.  The
 * host-side PersistentImage is the authoritative "what survived"
 * state: `clwb` copies the line's current data *and UFO bits* into
 * the image, and nothing else ever reaches it — so a crash at an
 * arbitrary scheduling step leaves exactly the clwb'd lines behind,
 * organically producing empty, torn, and complete redo-record tails
 * for recovery (dur/recovery.hh) to sort out.
 *
 * Redo-log geometry: shard s's log occupies
 * [logBase + s*stride, logBase + (s+1)*stride).  The first line holds
 * the shard's append lock (a simulated spin lock, CAS-acquired);
 * records start at +kLineSize.  Appends are serialized per shard by
 * the lock, so a torn record is always the *last* record in its shard
 * log and scan-stop-at-first-invalid truncation is sound.
 *
 * The domain is inert (active() == false, every hook a single branch)
 * unless a durable TxSystem activates it, keeping all non-durable
 * baselines byte-identical.
 */

#ifndef UFOTM_MEM_PERSIST_HH
#define UFOTM_MEM_PERSIST_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace utm {

class Machine;
class ThreadContext;

/** FNV-1a over the payload words of a redo record, folded to 32 bits
 *  and never zero (so valid headers differ from unwritten log space).
 *  Shared by the append path and recovery's torn-tail truncation. */
std::uint32_t persistChecksum(const std::uint64_t *words,
                              std::size_t n);

/**
 * Host-side snapshot of everything that crossed the persistence
 * boundary: per-line data plus the line's UFO protection bits (the
 * bits travel with the data through the hierarchy, so a write-back
 * persists both — which is what lets recovery rebuild the otable↔UFO
 * lockstep invariant).
 */
class PersistentImage
{
  public:
    struct Line
    {
        std::array<std::uint8_t, kLineSize> data{};
        UfoBits ufo;
    };

    void
    put(LineAddr line, const Line &l)
    {
        lines_[line] = l;
    }

    const Line *find(LineAddr line) const
    {
        auto it = lines_.find(line);
        return it == lines_.end() ? nullptr : &it->second;
    }

    /** Lines in ascending address order (std::map), for replay. */
    const std::map<LineAddr, Line> &lines() const { return lines_; }

    std::size_t size() const { return lines_.size(); }

  private:
    std::map<LineAddr, Line> lines_;
};

/**
 * The persistence domain of one Machine.  Owned by the Machine;
 * activated by TxSystem::create when the policy requests durability
 * and the backend supports it (core/tx_system.hh:txSystemKindDurable).
 */
class PersistDomain
{
  public:
    /** One write of a durable commit's redo record.  The domain reads
     *  the committed value and the line's UFO bits from simulated
     *  memory at append time (the caller's eager writes are final by
     *  the commit linearization point). */
    struct RedoWrite
    {
        Addr addr;
        unsigned size;
    };

    /** Fixed payload words before the per-write triples. */
    static constexpr std::uint64_t kRecordFixedWords = 3;
    /** 8-byte words per redo write (addr, value, size|ufo). */
    static constexpr std::uint64_t kRecordWordsPerWrite = 3;

    explicit PersistDomain(Machine &machine) : machine_(machine) {}

    PersistDomain(const PersistDomain &) = delete;
    PersistDomain &operator=(const PersistDomain &) = delete;

    /** Arm the domain; idempotent.  Materializes each shard's lock
     *  line so the append spin lock never page-faults. */
    void activate();

    bool active() const { return active_; }

    /** Dirty-line tracking, called on every simulated write.  A
     *  single branch when the domain is inert. */
    void
    markDirty(LineAddr line)
    {
        if (active_)
            dirty_.insert(line);
    }

    /**
     * @name Commit timestamps.
     *
     * A dense counter, separate from Machine::nextTxSeq so durability
     * never perturbs age-based contention management.  Assigned inside
     * Machine::notifyCommitPoint — before the commit-publish hook
     * runs, so harnesses can read lastCommitTs() from the hook.
     * @{
     */
    std::uint64_t
    assignCommitTs(ThreadId t)
    {
        return lastTs_[t] = ++tsCounter_;
    }

    std::uint64_t lastCommitTs(ThreadId t) const { return lastTs_[t]; }
    /** @} */

    /**
     * Append one durable commit's redo record to the shard log owning
     * the first written address, fence it, and mark the committer's
     * commit timestamp fence-complete.  Runs on the committer's fiber
     * with simulated stores/clwbs/sfence — every one a scheduling (and
     * crash) point.  @p writes must be non-empty.
     */
    void appendCommitRecord(ThreadContext &tc, std::uint64_t txid,
                            const std::vector<RedoWrite> &writes);

    /** Account a durable commit with an empty write set (nothing to
     *  log or fence). */
    void noteReadOnlyCommit();

    /**
     * Snapshot every materialized heap-range page (data + UFO bits)
     * into the image: the base state redo records replay over.  Called
     * once after workload setup, before threads run.  The otable and
     * log regions are deliberately excluded — recovery must rebuild
     * ownership empty, not restore a stale table.
     */
    void checkpointHeap();

    /** @name Log geometry (shared with dur/recovery.cc). @{ */
    unsigned numShards() const;
    Addr shardLogBase(unsigned shard) const;
    /** First record address (the lock occupies the first line). */
    Addr shardRecordBase(unsigned shard) const
    {
        return shardLogBase(shard) + kLineSize;
    }
    std::uint64_t shardRecordCapacity() const;
    /** @} */

    /** The surviving persistent state (crash-harness harvest). */
    const PersistentImage &image() const { return image_; }

    /** Commit timestamps whose sfence completed: the set of commits a
     *  crash is *guaranteed* not to lose (prefix-consistency oracle
     *  lower bound).  Read-only commits never appear (no record, no
     *  fence). */
    const std::set<std::uint64_t> &fenceCompletedTs() const
    {
        return fenceCompleted_;
    }

  private:
    /** Write @p line's current memory state through to the image. */
    void writeBackLine(LineAddr line);

    /** One clwb: eager write-back + cost + pending-fence accounting. */
    void clwb(ThreadContext &tc, LineAddr line);

    /** One sfence: drain cost + fence-completion marking. */
    void sfence(ThreadContext &tc, std::uint64_t commit_ts);

    Machine &machine_;
    bool active_ = false;
    std::set<LineAddr> dirty_;
    PersistentImage image_;
    std::set<std::uint64_t> fenceCompleted_;
    std::array<std::uint64_t, kMaxThreads> lastTs_{};
    std::array<unsigned, kMaxThreads> pendingClwb_{};
    std::vector<std::uint64_t> tail_; ///< Per-shard append offset.
    std::uint64_t tsCounter_ = 0;
};

} // namespace utm

#endif // UFOTM_MEM_PERSIST_HH
