#include "mem/persist.hh"

#include <string>

#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

std::uint32_t
persistChecksum(const std::uint64_t *words, std::size_t n)
{
    // FNV-1a over the little-endian bytes of the payload words, folded
    // to 32 bits.  Never zero, so a valid record's header can always
    // be told apart from never-written (all-zero) log space.
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < n; ++i) {
        for (int b = 0; b < 8; ++b) {
            h ^= static_cast<std::uint8_t>(words[i] >> (8 * b));
            h *= 1099511628211ull;
        }
    }
    std::uint32_t folded =
        static_cast<std::uint32_t>(h ^ (h >> 32));
    return folded ? folded : 1;
}

void
PersistDomain::activate()
{
    if (active_)
        return;
    const MachineConfig &mc = machine_.config();
    utm_assert(mc.persist.logBase >= mc.heapBase + mc.heapSize);
    active_ = true;
    tail_.assign(numShards(), 0);
    // The lock lines must exist up front: the append spin lock is
    // CAS'd from commit paths that must never page-fault.
    for (unsigned s = 0; s < numShards(); ++s)
        machine_.memory().materializePage(shardLogBase(s));
    machine_.stats().set("dur.active", 1);
}

unsigned
PersistDomain::numShards() const
{
    const unsigned s = machine_.config().otableShards;
    return s ? s : 1;
}

Addr
PersistDomain::shardLogBase(unsigned shard) const
{
    const PersistConfig &pc = machine_.config().persist;
    return pc.logBase + Addr(shard) * pc.logShardStride;
}

std::uint64_t
PersistDomain::shardRecordCapacity() const
{
    return machine_.config().persist.logShardStride - kLineSize;
}

void
PersistDomain::writeBackLine(LineAddr line)
{
    SimMemory &mem = machine_.memory();
    PersistentImage::Line img;
    for (unsigned off = 0; off < kLineSize; off += 8) {
        const std::uint64_t w = mem.read(line + off, 8);
        for (int b = 0; b < 8; ++b)
            img.data[off + b] =
                static_cast<std::uint8_t>(w >> (8 * b));
    }
    img.ufo = mem.ufoBits(line);
    image_.put(line, img);
}

void
PersistDomain::clwb(ThreadContext &tc, LineAddr line)
{
    // A write-back is its own ordered event (and crash point).
    tc.yield();
    const PersistConfig &pc = machine_.config().persist;
    const bool was_dirty = dirty_.erase(line) > 0;
    writeBackLine(line);
    ++pendingClwb_[tc.id()];
    machine_.stats().inc(was_dirty ? "dur.clwb.dirty"
                                   : "dur.clwb.clean");
    tc.advance(was_dirty ? pc.clwbCost : pc.clwbCleanCost);
}

void
PersistDomain::sfence(ThreadContext &tc, std::uint64_t commit_ts)
{
    // The crash point sits BEFORE the drain: if the machine dies here
    // the record's lines are already in the image (it will be applied)
    // but the fence never completed (it is not *guaranteed* durable) —
    // exactly the window the prefix-consistency oracle allows.
    tc.yield();
    const PersistConfig &pc = machine_.config().persist;
    unsigned &pending = pendingClwb_[tc.id()];
    tc.advance(pc.sfenceBase + Cycles(pending) * pc.sfencePerLine);
    pending = 0;
    machine_.stats().inc("dur.sfence");
    fenceCompleted_.insert(commit_ts);
}

void
PersistDomain::noteReadOnlyCommit()
{
    machine_.stats().inc("dur.commits.readonly");
}

void
PersistDomain::appendCommitRecord(ThreadContext &tc, std::uint64_t txid,
                                  const std::vector<RedoWrite> &writes)
{
    utm_assert(active_ && !writes.empty());
    const PersistConfig &pc = machine_.config().persist;
    SimMemory &mem = machine_.memory();
    StatsRegistry &st = machine_.stats();

    const unsigned shard =
        machine_.config().shardOfAddr(writes.front().addr);
    const Addr lock = shardLogBase(shard);

    // Serialize appends per shard: a record only begins once its
    // predecessor is fully written back and fenced, so a torn record
    // is provably the last one in its shard log.
    while (!tc.cas(lock, 8, 0, std::uint64_t(tc.id()) + 1)) {
        st.inc("dur.log_lock_spins");
        tc.advance(pc.lockRetryDelay);
    }

    const std::uint64_t nwords =
        kRecordFixedWords + kRecordWordsPerWrite * writes.size();
    const std::uint64_t len = 8 * (1 + nwords);
    if (tail_[shard] + len > shardRecordCapacity())
        utm_fatal("durable redo log shard %u overflow (%llu + %llu "
                  "bytes); raise persist.logShardStride",
                  shard,
                  static_cast<unsigned long long>(tail_[shard]),
                  static_cast<unsigned long long>(len));
    const Addr rec = shardRecordBase(shard) + tail_[shard];

    // Payload: the committed values, read functionally — past the
    // commit linearization point the eager writes are final.  UFO
    // bits ride along so the record preserves the protection state
    // the committer published.
    const std::uint64_t commit_ts = lastTs_[tc.id()];
    std::vector<std::uint64_t> words;
    words.reserve(nwords);
    words.push_back(txid);
    words.push_back(commit_ts);
    words.push_back(writes.size());
    for (const RedoWrite &w : writes) {
        utm_assert(w.size >= 1 && w.size <= 8);
        const UfoBits ub = mem.ufoBits(lineOf(w.addr));
        words.push_back(w.addr);
        words.push_back(mem.read(w.addr, w.size));
        words.push_back(std::uint64_t(w.size) |
                        (std::uint64_t(ub.faultOnRead) << 8) |
                        (std::uint64_t(ub.faultOnWrite) << 9));
    }
    const std::uint32_t cksum =
        persistChecksum(words.data(), words.size());
    const std::uint64_t header = len | (std::uint64_t(cksum) << 32);

    // The record's pages must exist before the first store: the
    // committing window must never page-fault.
    for (Addr a = rec & ~(SimMemory::kPageSize - 1); a < rec + len;
         a += SimMemory::kPageSize)
        mem.materializePage(a);

    // Timed stores, header first (lowest address).  Header-first plus
    // address-ordered write-back makes both torn-tail shapes
    // organically reachable: a crash before any write-back leaves a
    // zero header (clean stop), a crash between the header line and a
    // later payload line leaves a checksum mismatch (truncation).
    tc.store(rec, header, 8);
    for (std::size_t i = 0; i < words.size(); ++i)
        tc.store(rec + 8 * (i + 1), words[i], 8);

    for (LineAddr line = lineOf(rec); line < rec + len;
         line += kLineSize)
        clwb(tc, line);
    sfence(tc, commit_ts);

    tail_[shard] += len;
    st.inc("dur.commits.logged");
    st.inc("dur.log_records");
    st.inc("dur.log_bytes", len);
    st.inc("dur.log_records." + std::to_string(shard));
    st.inc("dur.log_bytes." + std::to_string(shard), len);

    tc.store(lock, 0, 8);
}

void
PersistDomain::checkpointHeap()
{
    utm_assert(active_);
    const MachineConfig &mc = machine_.config();
    std::uint64_t pages = 0;
    machine_.memory().forEachPage([&](Addr base) {
        if (base < mc.heapBase || base >= mc.heapBase + mc.heapSize)
            return;
        ++pages;
        for (Addr line = base; line < base + SimMemory::kPageSize;
             line += kLineSize)
            writeBackLine(line);
    });
    machine_.stats().set("dur.checkpoint_pages", pages);
    machine_.stats().set("dur.checkpoint_lines",
                         pages * SimMemory::kLinesPerPage);
}

} // namespace utm
