/**
 * @file
 * Set-associative tag store used for the per-core L1s and the shared
 * L2.
 *
 * Data is functional (it lives in SimMemory); the caches model timing,
 * coherence residency, and — crucially for BTM — the speculative-line
 * pinning that bounds hardware transactions by cache geometry.
 */

#ifndef UFOTM_MEM_CACHE_HH
#define UFOTM_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace utm {

/** A set-associative tag store with LRU replacement. */
class Cache
{
  public:
    /** Per-line metadata. */
    struct Line
    {
        LineAddr addr = 0;
        bool valid = false;
        bool dirty = false;
        bool excl = false; ///< Held with exclusive (write) permission.
        bool spec = false; ///< Belongs to an in-flight BTM transaction.
        std::uint64_t lru = 0;
    };

    /** Result of a line allocation. */
    struct InsertResult
    {
        Line *line = nullptr;  ///< Null if the set overflowed.
        bool overflowed = false;
        bool evicted = false;
        LineAddr evictedAddr = 0;
        bool evictedDirty = false;
        bool evictedSpec = false;
    };

    Cache(unsigned sets, unsigned ways);

    /** Look up @p line; null if absent. */
    Line *find(LineAddr line);
    const Line *find(LineAddr line) const;

    /**
     * Allocate a way for @p line, evicting the LRU non-speculative
     * line if necessary.  If every way in the set is speculative and
     * @p allow_spec_eviction is false, the allocation overflows (the
     * caller aborts the transaction).  With @p allow_spec_eviction
     * (unbounded-HTM mode) a speculative line may be silently evicted;
     * conflict tracking is unaffected because the spec table, not the
     * cache, is authoritative.
     */
    InsertResult insert(LineAddr line, bool allow_spec_eviction);

    /** Drop @p line if present (remote invalidation). */
    void invalidate(LineAddr line);

    /** Mark a line most-recently-used. */
    void touch(Line *line);

    /** Flash-clear every speculative flag (BTM commit/abort). */
    void clearAllSpec();

    /** Number of valid lines with the spec flag set. */
    unsigned specLineCount() const;

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

  private:
    unsigned setIndex(LineAddr line) const;

    unsigned sets_;
    unsigned ways_;
    std::uint64_t lruClock_ = 0;
    std::vector<Line> lines_; ///< sets_ * ways_, set-major.
};

} // namespace utm

#endif // UFOTM_MEM_CACHE_HH
