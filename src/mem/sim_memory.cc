#include "mem/sim_memory.hh"

#include <cstring>

#include "sim/logging.hh"

namespace utm {

SimMemory::Page &
SimMemory::pageFor(Addr a)
{
    const std::uint64_t idx = a >> kPageBits;
    auto it = pages_.find(idx);
    if (it == pages_.end())
        it = pages_.emplace(idx, std::make_unique<Page>()).first;
    return *it->second;
}

const SimMemory::Page *
SimMemory::pageForConst(Addr a) const
{
    auto it = pages_.find(a >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t
SimMemory::read(Addr a, unsigned size) const
{
    utm_assert(size == 1 || size == 2 || size == 4 || size == 8);
    utm_assert(lineOf(a) == lineOf(a + size - 1));
    const Page *p = pageForConst(a);
    if (!p)
        return 0;
    std::uint64_t v = 0;
    std::memcpy(&v, p->data.data() + (a & (kPageSize - 1)), size);
    return v;
}

void
SimMemory::write(Addr a, std::uint64_t v, unsigned size)
{
    utm_assert(size == 1 || size == 2 || size == 4 || size == 8);
    utm_assert(lineOf(a) == lineOf(a + size - 1));
    Page &p = pageFor(a);
    std::memcpy(p.data.data() + (a & (kPageSize - 1)), &v, size);
}

UfoBits
SimMemory::ufoBits(LineAddr line) const
{
    const Page *p = pageForConst(line);
    if (!p)
        return kUfoNone;
    std::uint8_t raw =
        p->ufo[(line & (kPageSize - 1)) >> kLineBits];
    return UfoBits{(raw & 1) != 0, (raw & 2) != 0};
}

void
SimMemory::setUfoBits(LineAddr line, UfoBits bits)
{
    utm_assert(lineOffset(line) == 0);
    Page &p = pageFor(line);
    std::uint8_t &slot = p.ufo[(line & (kPageSize - 1)) >> kLineBits];
    const bool was = slot != 0;
    slot = static_cast<std::uint8_t>((bits.faultOnRead ? 1 : 0) |
                                     (bits.faultOnWrite ? 2 : 0));
    const bool now = slot != 0;
    if (was && !now)
        p.ufoSetCount--;
    else if (!was && now)
        p.ufoSetCount++;
}

void
SimMemory::addUfoBits(LineAddr line, UfoBits bits)
{
    UfoBits cur = ufoBits(line);
    setUfoBits(line, UfoBits{cur.faultOnRead || bits.faultOnRead,
                             cur.faultOnWrite || bits.faultOnWrite});
}

bool
SimMemory::pageExists(Addr a) const
{
    return pages_.find(a >> kPageBits) != pages_.end();
}

void
SimMemory::materializePage(Addr a)
{
    pageFor(a);
}

void
SimMemory::forEachUfoLine(
    const std::function<void(LineAddr, UfoBits)> &fn) const
{
    for (const auto &[idx, page] : pages_) {
        if (page->ufoSetCount == 0)
            continue;
        for (unsigned i = 0; i < kLinesPerPage; ++i) {
            std::uint8_t raw = page->ufo[i];
            if (!raw)
                continue;
            LineAddr line = (idx << kPageBits) +
                            (std::uint64_t(i) << kLineBits);
            fn(line, UfoBits{(raw & 1) != 0, (raw & 2) != 0});
        }
    }
}

void
SimMemory::forEachPage(const std::function<void(Addr)> &fn) const
{
    for (const auto &[idx, page] : pages_)
        fn(idx << kPageBits);
}

bool
SimMemory::pageHasUfoBits(Addr a) const
{
    const Page *p = pageForConst(a);
    return p && p->ufoSetCount > 0;
}

} // namespace utm
