/**
 * @file
 * Interfaces between the memory system and the TM hardware models.
 *
 * The memory system detects conflicts and faults; the BTM unit (and the
 * software layers above it) decide what to do about them.  This header
 * defines the abort-reason vocabulary (paper Section 3.1), the
 * BTM-client callback interface, the hardware contention-management
 * policy knobs (Sections 4.4 and 5.4), and the UFO fault-handler hook
 * (Section 3.2).
 */

#ifndef UFOTM_MEM_TM_IFACE_HH
#define UFOTM_MEM_TM_IFACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace utm {

class ThreadContext;

/**
 * Why a BTM transaction aborted.  Mirrors the status-register reasons
 * listed in paper Section 3.1, plus the UFO-specific reasons the hybrid
 * needs (killed by a remote set_ufo_bits; faulted on UFO bits) and the
 * non-transactional-conflict reason used by Figure 6.
 */
enum class AbortReason
{
    None,
    Conflict,        ///< Lost a transaction-vs-transaction conflict.
    SetOverflow,     ///< Speculative lines overflowed an L1 set.
    Explicit,        ///< btm_abort executed.
    Interrupt,       ///< Timer interrupt arrived mid-transaction.
    Exception,       ///< Non-page-fault exception.
    Syscall,         ///< System call attempted inside the transaction.
    Io,              ///< I/O attempted inside the transaction.
    Uncacheable,     ///< Uncacheable access attempted.
    PageFault,       ///< Page fault (recoverable: touch and retry).
    NestingOverflow, ///< Hardware nesting depth exceeded.
    UfoFault,        ///< Access hit a UFO-protected line (STM conflict).
    UfoBitSet,       ///< Remote set_ufo_bits killed a speculative line.
    NonTConflict,    ///< Non-transactional access won a conflict.
};

/** Human-readable abort-reason name (for stats and Figure 6 rows). */
const char *abortReasonName(AbortReason r);

/** Number of AbortReason values, for iteration. */
constexpr int kNumAbortReasons = 14;

/**
 * Hardware contention-management policy (paper Sections 4.4, 5.4).
 */
struct BtmPolicy
{
    /** Who wins a BTM-vs-BTM conflict. */
    enum class Cm
    {
        AgeOrdered,    ///< Older wins; younger requester NACKs (paper).
        RequesterWins, ///< Naive policy (Figure 8, first bar).
    };

    /** How a BTM transaction responds to a UFO fault (STM conflict). */
    enum class UfoFaultResponse
    {
        Abort, ///< Vector to the abort handler (default).
        Stall, ///< Stall until the protection clears (Figure 8, bar 3).
    };

    Cm cm = Cm::AgeOrdered;
    UfoFaultResponse ufoFaultResponse = UfoFaultResponse::Abort;

    /**
     * Limit study (Figure 8, bar 4): set_ufo_bits only kills BTM
     * transactions whose access mode truly conflicts with the new
     * bits, instead of every speculative copy of the line.
     */
    bool ufoSetTrueConflictOracle = false;
};

/**
 * Callback interface the BTM hardware model implements so the memory
 * system can interrogate and wound in-flight transactions.
 *
 * All methods that report a fatal condition for the current
 * transaction (onUfoFault with Abort policy, onCapacityOverflow,
 * onPageFault, takePendingAbort) throw BtmAbortException; the
 * transaction-retry loop above catches it.
 */
class BtmClient
{
  public:
    virtual ~BtmClient() = default;

    /** Is a hardware transaction currently executing on this core? */
    virtual bool inTx() const = 0;

    /**
     * Is this transaction inside its durable-commit fence window —
     * past the commit linearization point, appending its redo record
     * (mem/persist.hh)?  A committing transaction can no longer fail:
     * the memory system treats its accesses as non-speculative and
     * shields it from wounds (conflicting requesters are NACKed, UFO
     * bit-set kills wait).  Always false without durability.
     */
    virtual bool committing() const { return false; }

    /** Is this transaction already wounded but not yet unwound? */
    virtual bool doomed() const = 0;

    /** Throw the pending abort (called when doomed() is observed). */
    [[noreturn]] virtual void takePendingAbort() = 0;

    /** Transaction begin sequence number; smaller means older. */
    virtual std::uint64_t txAge() const = 0;

    /** Is the L1 capacity bound lifted (unbounded-HTM mode)? */
    virtual bool unbounded() const = 0;

    /** Did this transaction speculatively write @p line ? */
    virtual bool wroteLine(LineAddr line) const = 0;

    /**
     * Synchronously abort this transaction from another thread's
     * action: restore the undo log, release speculative state, record
     * the reason.  @p line is the conflicting cache line (telemetry
     * conflict-edge attribution).  The victim's fiber observes the
     * doom at its next simulation event and unwinds via
     * takePendingAbort().
     */
    virtual void wound(AbortReason r, ThreadId killer, LineAddr line) = 0;

    /** A UFO fault hit a transactional access: abort or stall. */
    virtual void onUfoFault(Addr a, AccessType t) = 0;

    /** Track a committed transactional access (sets, undo log). */
    virtual void onTxAccess(Addr a, unsigned size, AccessType t) = 0;

    /** A speculative line could not be kept in the L1. */
    [[noreturn]] virtual void onCapacityOverflow(LineAddr line) = 0;

    /** The transaction touched an unmapped page. */
    [[noreturn]] virtual void onPageFault(Addr a) = 0;

    /** Syscall/IO/exception attempted inside the transaction. */
    [[noreturn]] virtual void onForbiddenOp(AbortReason r) = 0;

    /** The core's timer quantum expired mid-transaction. */
    [[noreturn]] virtual void onTimerInterrupt() = 0;
};

/**
 * User-registered UFO fault handler (paper Section 3.2), invoked when
 * a non-transactional access faults.  The handler must make progress
 * (stall the access until protection clears, or abort the owning
 * software transaction); the faulting access retries afterwards.
 */
using UfoFaultHandler =
    std::function<void(ThreadContext &, Addr, AccessType)>;

/**
 * Section 6 `retry` wakeup protocol, from the hardware side.
 *
 * When a BTM transaction's access faults on UFO protection, the
 * user-mode fault handler (running inside the hardware transaction)
 * inspects the otable.  If the line is owned only by *parked*
 * retrying transactions, the handler records their identities, the
 * hardware transaction speculatively clears the UFO bits (the clear
 * becomes visible at commit and is discarded on abort), and the
 * recorded transactions are woken after the commit — so they observe
 * the committed update when they re-execute.
 */
struct RetryWakeupHooks
{
    /** Opaque wakeup token: (thread id, transaction age). */
    using Token = std::pair<ThreadId, std::uint64_t>;

    /**
     * Inspect the otable for @p line.  Returns true iff the line's
     * protection is held only by parked retrying transactions (or is
     * mid-release); fills @p tokens with the retryers to wake at
     * commit.  Returns false on a live STM conflict.
     */
    std::function<bool(ThreadContext &, LineAddr,
                       std::vector<Token> *tokens)>
        inspect;

    /** Wake the recorded transactions (called after BTM commit). */
    std::function<void(const std::vector<Token> &tokens)> wake;
};

} // namespace utm

#endif // UFOTM_MEM_TM_IFACE_HH
