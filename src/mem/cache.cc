#include "mem/cache.hh"

#include "sim/logging.hh"

namespace utm {

Cache::Cache(unsigned sets, unsigned ways)
    : sets_(sets), ways_(ways), lines_(sets * ways)
{
    utm_assert(sets > 0 && (sets & (sets - 1)) == 0);
    utm_assert(ways > 0);
}

unsigned
Cache::setIndex(LineAddr line) const
{
    return static_cast<unsigned>((line >> kLineBits) & (sets_ - 1));
}

Cache::Line *
Cache::find(LineAddr line)
{
    Line *base = &lines_[setIndex(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].addr == line)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(LineAddr line) const
{
    return const_cast<Cache *>(this)->find(line);
}

Cache::InsertResult
Cache::insert(LineAddr line, bool allow_spec_eviction)
{
    utm_assert(lineOffset(line) == 0);
    InsertResult res;
    Line *base = &lines_[setIndex(line) * ways_];

    Line *victim = nullptr;
    // Prefer an invalid way; otherwise the LRU non-speculative way;
    // speculative ways are pinned unless eviction is allowed.
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    if (!victim) {
        for (unsigned w = 0; w < ways_; ++w) {
            if (base[w].spec)
                continue;
            if (!victim || base[w].lru < victim->lru)
                victim = &base[w];
        }
    }
    if (!victim && allow_spec_eviction) {
        for (unsigned w = 0; w < ways_; ++w) {
            if (!victim || base[w].lru < victim->lru)
                victim = &base[w];
        }
    }
    if (!victim) {
        res.overflowed = true;
        return res;
    }

    if (victim->valid) {
        res.evicted = true;
        res.evictedAddr = victim->addr;
        res.evictedDirty = victim->dirty;
        res.evictedSpec = victim->spec;
    }
    *victim = Line{};
    victim->addr = line;
    victim->valid = true;
    victim->lru = ++lruClock_;
    res.line = victim;
    return res;
}

void
Cache::invalidate(LineAddr line)
{
    if (Line *l = find(line))
        *l = Line{};
}

void
Cache::touch(Line *line)
{
    line->lru = ++lruClock_;
}

void
Cache::clearAllSpec()
{
    for (auto &l : lines_)
        l.spec = false;
}

unsigned
Cache::specLineCount() const
{
    unsigned n = 0;
    for (const auto &l : lines_)
        if (l.valid && l.spec)
            ++n;
    return n;
}

} // namespace utm
