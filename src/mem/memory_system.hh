/**
 * @file
 * The simulated memory system: timing, coherence, UFO protection
 * checks, and BTM conflict detection/resolution.
 *
 * Every simulated memory access is a single atomic simulation event
 * that performs, in order:
 *
 *   1. pending-abort / page-fault checks for the issuing transaction;
 *   2. the UFO protection check (skipped when the thread has UFO
 *      faults disabled) — non-transactional faults vector to the
 *      registered handler, transactional faults abort or stall the
 *      hardware transaction per policy;
 *   3. speculative-conflict resolution against in-flight BTM
 *      transactions (wound the owner or NACK the requester, per the
 *      hardware contention-management policy);
 *   4. timing (L1/L2/memory/transfer latencies, capacity overflow);
 *   5. speculative bookkeeping (read/write sets, undo logging);
 *   6. the functional read or write against SimMemory.
 *
 * The "spec table" — a map from line to the set of transactional
 * readers and the transactional writer — is the authoritative conflict
 * structure; per-cache spec flags only implement the L1 capacity bound.
 */

#ifndef UFOTM_MEM_MEMORY_SYSTEM_HH
#define UFOTM_MEM_MEMORY_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/sim_memory.hh"
#include "mem/tm_iface.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Timing + coherence + protection model over SimMemory. */
class MemorySystem
{
  public:
    MemorySystem(Machine &machine, const MachineConfig &cfg);

    /** @name TM hardware wiring. @{ */
    void setBtmClient(ThreadId t, BtmClient *c);
    BtmClient *btmClient(ThreadId t) const;
    void setUfoFaultHandler(UfoFaultHandler h);
    bool hasUfoFaultHandler() const { return bool(ufoHandler_); }
    void setRetryWakeupHooks(RetryWakeupHooks h);
    const RetryWakeupHooks &retryWakeupHooks() const
    {
        return retryHooks_;
    }
    void setBtmPolicy(const BtmPolicy &p) { policy_ = p; }
    const BtmPolicy &btmPolicy() const { return policy_; }
    /** @} */

    /** @name Data path (issued by ThreadContext). @{ */
    std::uint64_t read(ThreadContext &tc, Addr a, unsigned size);
    void write(ThreadContext &tc, Addr a, std::uint64_t v, unsigned size);

    /** Atomic compare-and-swap; one simulation event. */
    bool cas(ThreadContext &tc, Addr a, unsigned size,
             std::uint64_t expect, std::uint64_t desired,
             std::uint64_t *old_out = nullptr);

    /** Atomic fetch-and-add; returns the old value. */
    std::uint64_t fetchAdd(ThreadContext &tc, Addr a, unsigned size,
                           std::uint64_t delta);
    /** @} */

    /** @name UFO ISA operations (paper Table 2). @{ */
    void ufoSet(ThreadContext &tc, LineAddr line, UfoBits bits);
    void ufoAdd(ThreadContext &tc, LineAddr line, UfoBits bits);
    UfoBits ufoRead(ThreadContext &tc, LineAddr line);
    /** @} */

    /** @name BTM speculative bookkeeping. @{ */
    void addSpecRead(ThreadId t, LineAddr line);
    void addSpecWrite(ThreadId t, LineAddr line);

    /**
     * Drop @p t's speculative state for the given lines (commit or
     * abort).  Written lines are invalidated in the L1 on abort (the
     * cache held speculative data); on commit they stay.
     */
    void clearSpec(ThreadId t, const std::vector<LineAddr> &reads,
                   const std::vector<LineAddr> &writes,
                   bool invalidate_writes);
    /** @} */

    /** @name Introspection for tests. @{ */
    bool lineHasSpecWriter(LineAddr line) const;
    std::uint64_t specReaders(LineAddr line) const;
    Cache &l1(ThreadId t) { return *l1_[t]; }
    Directory &directory() { return dir_; }
    /** @} */

    SimMemory &backing() { return mem_; }

  private:
    struct SpecEntry
    {
        std::uint64_t readers = 0;
        ThreadId writer = -1;
    };

    enum class RmwKind { None, Cas, FetchAdd };

    std::uint64_t accessImpl(ThreadContext &tc, Addr a, AccessType t,
                             unsigned size, std::uint64_t wval,
                             RmwKind rmw, std::uint64_t rmw_expect,
                             bool *rmw_success);

    /**
     * Resolve conflicts between this access and remote speculative
     * lines.  Returns false if the requester was NACKed (retry after
     * the NACK delay).
     */
    bool resolveSpecConflicts(ThreadContext &tc, LineAddr line,
                              AccessType t);

    /** Charge latency; may abort the requester's transaction. */
    void chargeAccess(ThreadContext &tc, LineAddr line, AccessType t);

    /** Invalidate all remote L1 copies of @p line. */
    void invalidateOthers(LineAddr line, ThreadId self);

    Machine &machine_;
    const MachineConfig &cfg_;
    SimMemory &mem_;
    BtmPolicy policy_;
    std::array<BtmClient *, kMaxThreads> btm_{};
    UfoFaultHandler ufoHandler_;
    RetryWakeupHooks retryHooks_;
    std::unordered_map<LineAddr, SpecEntry> spec_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::unique_ptr<Cache> l2_;
    Directory dir_;
};

} // namespace utm

#endif // UFOTM_MEM_MEMORY_SYSTEM_HH
