/**
 * @file
 * tmtorture: schedule-exploration torture harness.
 *
 * One torture run builds a Machine with a chosen SchedulerPolicy,
 * spins up a randomized multi-threaded workload — either over a small
 * array of contended cells, or over the tmserve KV store (skewed
 * GET/PUT/RMW/SCAN plus raw non-transactional GETs; src/svc) — and
 * checks invariant oracles at every preemption point:
 *
 *  - "shadow-memory": strong atomicity against a sequential shadow.
 *    Each transaction records the (cell, value) pairs it writes; the
 *    Machine commit-publication hook flushes them into a host-side
 *    shadow array at the backend's commit linearization point, i.e.
 *    in commit order.  At every preemption point each cell must equal
 *    its shadow value unless the backend declares the line busy
 *    (speculative writer, eager in-flight writes, commit write-back,
 *    abort unwind) via TxSystem::oracleLineBusy().
 *  - "backend-invariants": TxSystem::oracleInvariantsHold() — the
 *    USTM otable<->UFO-bit lockstep invariant, undo-log balance, BTM
 *    idle-state cleanliness, TL2 write-set consistency.
 *  - "raw-read" (Kv workload, strongly-atomic backends only): every
 *    raw GET must return a value that was committed for that key at
 *    some point — a non-transactional read observing a speculative
 *    (never-committed) value is exactly a strong-atomicity hole.
 *
 * A failing run throws OracleViolation out of Machine::run(); the
 * recorded ScheduleTrace replays it bit-identically, and
 * minimizeSchedule() greedily shrinks it while preserving the failure.
 */

#ifndef UFOTM_TORTURE_TORTURE_HH
#define UFOTM_TORTURE_TORTURE_HH

#include <cstdint>
#include <map>
#include <string>

#include "core/tx_system.hh"
#include "sim/scheduler.hh"
#include "sim/types.hh"

namespace utm::torture {

/** Which data structure + op mix the torture run drives. */
enum class TortureWorkload
{
    Cells, ///< Randomized ops over a contended cell array (default).
    Kv,    ///< The tmserve KV store: skewed GET/PUT/RMW/SCAN + raw GETs.
};

const char *tortureWorkloadName(TortureWorkload w);

/** Parameters of one torture run. */
struct TortureConfig
{
    TxSystemKind kind = TxSystemKind::UfoHybrid;
    TortureWorkload workload = TortureWorkload::Cells;

    /**
     * TM policy for the backend under test.  Defaults preserve the
     * historical torture behaviour; enable policy.predictor to torture
     * the adaptive path predictor under adversarial schedules (ops
     * carry per-op-class transaction sites).
     */
    TmPolicy policy;
    int threads = 4;      ///< Forced to 1 for NoTm (no concurrency control).
    int opsPerThread = 60;
    int cells = 48;       ///< 8-byte cells, line-aligned base: ~6 hot lines.
    std::uint64_t seed = 1;

    /** @name Kv-workload shape (ignored for Cells). @{ */
    std::uint64_t kvKeyspace = 24; ///< Keys 1..keyspace, fixed at setup.
    std::uint64_t kvBuckets = 8;   ///< TxMap buckets: short, shared chains.
    double kvTheta = 0.6;          ///< Zipfian skew of key choice.
    int kvRawPct = 20;             ///< Percent of ops that are raw GETs.
    /**
     * Store shards (also forced onto the machine's otableShards).
     * With > 1 the op mix adds two-key transfers — the cross-shard
     * transactions whose canonical-order acquisition the sharded
     * commit protocol relies on — while every oracle (shadow,
     * backend invariants incl. per-shard otable<->UFO lockstep and
     * undo-log balance, raw reads) stays armed.
     */
    unsigned kvShards = 1;
    /**
     * Coalesce consecutive batchable ops (single-key GET/SCAN and
     * PUT/RMW runs with the same verb class and home shard) into one
     * transaction via svc::Coalescer, the tmserve request-coalescing
     * machinery — multi-member footprints, split-on-abort
     * re-execution, and adaptive K all under adversarial schedules,
     * with every oracle still armed.  Raw GETs, forced-software ops,
     * and transfers stay unbatched.
     */
    bool kvBatch = false;
    unsigned kvBatchMax = 4; ///< Batch-size ceiling when kvBatch is set.
    /** @} */

    /**
     * Otable buckets for the machine.  Deliberately tiny (vs. the
     * 65536 default) so distinct hot lines collide in buckets and the
     * USTM chain-insert / tombstone-reclaim paths get exercised under
     * adversarial schedules.
     */
    unsigned otableBuckets = 4;

    /** Scheduling policy + knobs (ignored when @p replay is set). */
    SchedulerConfig sched;

    /** Record the schedule (always on when @p replay is set). */
    bool record = false;

    /** Replay this trace instead of running @p sched. Borrowed. */
    const ScheduleTrace *replay = nullptr;

    /**
     * Durable crash injection: abandon the run after this many
     * scheduling steps (Machine::setCrashStep), leaving only the
     * persistent image behind.  0 = no crash.  Meaningful only with
     * policy.durable on a durable-capable backend; use
     * runCrashTorture() for the full crash-recover-check cycle.
     */
    std::uint64_t crashStep = 0;

    std::uint64_t oracleInterval = 1;
    bool oraclesEnabled = true;

    /**
     * Mutation self-test: disable Ustm::installUfo via the test-only
     * hook, deliberately breaking otable<->UFO lockstep.  Only
     * meaningful for systems with a strongly-atomic USTM (ufo-hybrid,
     * ustm-ufo); the harness must then report a
     * "backend-invariants" violation.
     */
    bool injectLockstepBug = false;

    /** @name Timeline telemetry + stall watchdog (sim/telemetry.hh).
     * @{ */
    /** Enable the telemetry bus and return its `ufotm-timeline`
     *  document in TortureResult::timeline (captured even when the run
     *  is cut short by an oracle violation). */
    bool timeline = false;
    /** Window width in cycles; 0 = TelemetryConfig default. */
    Cycles timelineWindow = 0;
    /** Arm the "stall-watchdog" oracle: the run is reported violated
     *  when the telemetry watchdog flags a livelock/starvation
     *  episode.  Implies the telemetry bus (not timeline export). */
    bool watchdog = false;
    /** Watchdog threshold in consecutive commitless windows;
     *  0 = TelemetryConfig default. */
    unsigned watchdogWindows = 0;
    /** @} */
};

/** Outcome of one torture run. */
struct TortureResult
{
    bool violated = false; ///< An oracle threw during the run.
    std::string oracle;    ///< Failed oracle name (when violated).
    std::string why;       ///< Violation description.
    std::uint64_t violationStep = 0;

    bool crashed = false;  ///< The injected crash step was reached.
    bool validated = false; ///< End-of-run shadow equality (when !violated).
    std::uint64_t steps = 0;
    Cycles cycles = 0;
    std::uint64_t commits = 0;  ///< Total committed transactions.
    std::uint64_t rawReads = 0; ///< Non-transactional GETs issued (Kv).

    ScheduleTrace schedule; ///< Recorded schedule (when recording).
    std::map<std::string, std::uint64_t> stats; ///< Final counter map.
    std::string timeline; ///< ufotm-timeline doc (cfg.timeline only).

    bool ok() const { return !violated && validated; }
};

/** Run one torture configuration to completion (or first violation). */
TortureResult runTorture(const TortureConfig &cfg);

/**
 * Outcome of one crash-torture cycle: crash run, recovery, and the
 * prefix-consistency oracles.
 */
struct CrashTortureResult
{
    bool ok = false;       ///< Every crash-recovery oracle held.
    std::string why;       ///< First failed oracle (when !ok).

    std::uint64_t crashStep = 0;  ///< Injected crash step (in schedule).
    std::uint64_t probeSteps = 0; ///< Crash-free probe length (0: pinned).
    std::uint64_t crashSteps = 0; ///< Steps the crash run executed.

    std::uint64_t committedTx = 0; ///< Durable-write commits at crash.
    std::uint64_t fencedTx = 0;    ///< ... whose commit fence completed.
    std::uint64_t recoveredTx = 0; ///< Redo records recovery replayed.
    std::uint64_t discardedRecords = 0; ///< Torn tails truncated.

    std::string recoverJson; ///< The `ufotm-recover` report.
    ScheduleTrace schedule;  ///< Recorded schedule, crash step included.
    std::map<std::string, std::uint64_t> stats; ///< Crash-run counters.
    std::string timeline; ///< Crash-run ufotm-timeline (cfg.timeline).
};

/**
 * One full crash-torture cycle on a durable backend:
 *
 *  1. Probe: run the configuration crash-free (all oracles armed) and
 *     derive a crash step from the seed, uniform over the schedule —
 *     unless @p crash_step pins one (or cfg.replay carries one).
 *  2. Crash: re-run with the crash injected; the machine is abandoned
 *     at that scheduling step and only the persistent image survives.
 *     The commit-publish hook records the committed history (commit
 *     timestamp + writes) and the fence-completed timestamp set.
 *  3. Recover: build a fresh machine, deterministically re-create the
 *     store layout, and dur::recover() from the surviving image.
 *  4. Check prefix consistency: fence-completed ⊆ recovered ⊆
 *     committed; per-key recovered writes form a prefix of that key's
 *     committed write sequence; the recovered state equals a replay of
 *     exactly the recovered subset; no UFO protection bit survives and
 *     the backend's otable↔UFO lockstep invariant holds on the
 *     recovered machine; recovering twice is byte-identical to once.
 *
 * Forces policy.durable and schedule recording; cfg.kind must be
 * durable-capable (core/tx_system.hh:txSystemKindDurable).
 */
CrashTortureResult runCrashTorture(const TortureConfig &cfg,
                                   std::uint64_t crash_step = 0);

/** Outcome of minimizeSchedule(). */
struct MinimizeResult
{
    ScheduleTrace schedule; ///< Smallest schedule still failing.
    bool reproduced = false;///< Original failure replayed at all.
    int runs = 0;           ///< Replay runs spent.
};

/**
 * Greedily shrink @p failing while the replay still violates oracle
 * @p oracle: first truncate everything after @p violation_step, then
 * repeatedly try dropping whole RLE blocks (back to front), keeping
 * each removal that preserves the failure.  Spends at most @p budget
 * replay runs.
 */
MinimizeResult minimizeSchedule(const TortureConfig &cfg,
                                const ScheduleTrace &failing,
                                const std::string &oracle,
                                std::uint64_t violation_step,
                                int budget = 200);

} // namespace utm::torture

#endif // UFOTM_TORTURE_TORTURE_HH
