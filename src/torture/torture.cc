#include "torture/torture.hh"

#include <memory>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dur/recovery.hh"
#include "mem/persist.hh"
#include "mem/sim_memory.hh"
#include "rt/heap.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/oracle.hh"
#include "sim/rng.hh"
#include "svc/coalescer.hh"
#include "svc/sharded_store.hh"
#include "ustm/ustm.hh"

namespace utm::torture {

const char *
tortureWorkloadName(TortureWorkload w)
{
    switch (w) {
      case TortureWorkload::Cells: return "cells";
      case TortureWorkload::Kv: return "kv";
    }
    return "?";
}

namespace {

/** Per-thread workload RNG seed (decoupled from the machine seed
 *  stream so the op sequence is identical across policies). */
std::uint64_t
workloadSeed(std::uint64_t seed, int tid)
{
    return (seed + 1) * 0x9e3779b97f4a7c15ull + std::uint64_t(tid) * 0xbf58476d1ce4e5b9ull;
}

/**
 * Strong atomicity against the sequential shadow.  Watches one 8-byte
 * word per shadow slot; the slots need not be contiguous (the Kv
 * workload watches the map's scattered value words).
 */
class ShadowOracle final : public InvariantOracle
{
  public:
    ShadowOracle(Machine &machine, TxSystem &sys,
                 const std::vector<Addr> &addrs,
                 const std::vector<std::uint64_t> &shadow)
        : machine_(machine), sys_(sys), addrs_(addrs), shadow_(shadow)
    {
    }

    const char *name() const override { return "shadow-memory"; }

    bool
    check(std::string *why) override
    {
        for (std::size_t i = 0; i < shadow_.size(); ++i) {
            const Addr a = addrs_[i];
            const std::uint64_t got = machine_.memory().read(a, 8);
            if (got == shadow_[i])
                continue;
            if (sys_.oracleLineBusy(lineOf(a)))
                continue; // Legitimate in-flight speculative state.
            *why = "cell " + std::to_string(i) + " = " +
                   std::to_string(got) + ", shadow = " +
                   std::to_string(shadow_[i]) +
                   " (line not busy: committed state diverged "
                   "from serial replay)";
            return false;
        }
        return true;
    }

  private:
    Machine &machine_;
    TxSystem &sys_;
    const std::vector<Addr> &addrs_;
    const std::vector<std::uint64_t> &shadow_;
};

/**
 * Reports a violation a workload fiber detected host-side.  Fibers
 * must never throw OracleViolation themselves (it would unwind across
 * the fiber boundary); they set the flag and the scheduler-side check
 * at the next preemption point raises it.
 */
class HostFlagOracle final : public InvariantOracle
{
  public:
    HostFlagOracle(const char *name, const std::string &flag)
        : name_(name), flag_(flag)
    {
    }

    const char *name() const override { return name_; }

    bool
    check(std::string *why) override
    {
        if (flag_.empty())
            return true;
        *why = flag_;
        return false;
    }

  private:
    const char *name_;
    const std::string &flag_;
};

/** Backend-internal invariants (lockstep, undo balance, ...). */
class BackendOracle final : public InvariantOracle
{
  public:
    explicit BackendOracle(TxSystem &sys) : sys_(sys) {}

    const char *name() const override { return "backend-invariants"; }

    bool check(std::string *why) override
    {
        return sys_.oracleInvariantsHold(why);
    }

  private:
    TxSystem &sys_;
};

/** Surfaces the telemetry stall watchdog (sim/telemetry.hh) as a
 *  torture oracle: the run is violated as soon as the watchdog flags
 *  a livelock/starvation episode. */
class StallWatchdogOracle final : public InvariantOracle
{
  public:
    explicit StallWatchdogOracle(Machine &m) : m_(m) {}

    const char *name() const override { return "stall-watchdog"; }

    bool check(std::string *why) override
    {
        if (!m_.telemetry().stallFlagged())
            return true;
        if (why)
            *why = m_.telemetry().stallWhy();
        return false;
    }

  private:
    Machine &m_;
};

/** One committed transaction, as the commit-publish hook saw it
 *  (crash-torture harvest). */
struct CommittedTx
{
    std::uint64_t ts; ///< PersistDomain commit timestamp.
    std::vector<std::pair<int, std::uint64_t>> writes;
};

/** What a crash run leaves behind for the recovery phase. */
struct CrashHarvest
{
    PersistentImage image;
    std::set<std::uint64_t> fenceTs;
    std::vector<CommittedTx> history; ///< In commit order (ts ascending).
};

MachineConfig
makeTortureMachineConfig(const TortureConfig &cfg, int threads)
{
    MachineConfig mc;
    mc.numCores = threads;
    mc.timerQuantum = 0;
    mc.seed = cfg.seed;
    mc.sched = cfg.sched;
    mc.otableBuckets = cfg.otableBuckets;
    if (cfg.timeline || cfg.watchdog) {
        mc.telemetry.enabled = true;
        if (cfg.timelineWindow)
            mc.telemetry.windowCycles = cfg.timelineWindow;
        if (cfg.watchdogWindows)
            mc.telemetry.watchdogWindows = cfg.watchdogWindows;
    }
    if (cfg.workload == TortureWorkload::Kv && cfg.kvShards > 1)
        mc.otableShards = cfg.kvShards;
    return mc;
}

/**
 * The watched 8-byte words, their initial values, and (for Kv) the
 * store that owns them.  Deterministic: a fresh machine with the same
 * TortureConfig produces the identical layout, which is what lets the
 * crash harness re-create the store on a recovery machine.
 */
struct WatchedLayout
{
    std::unique_ptr<svc::ShardedKvStore> store;
    std::vector<Addr> addrs;
    std::vector<std::uint64_t> initial;
};

WatchedLayout
setupWatchedLayout(const TortureConfig &cfg, Machine &m, TxHeap &heap)
{
    WatchedLayout lay;
    if (cfg.workload != TortureWorkload::Kv) {
        const Addr base = heap.allocZeroed(
            m.initContext(), std::uint64_t(cfg.cells) * 8,
            /*line_aligned=*/true);
        for (int i = 0; i < cfg.cells; ++i)
            lay.addrs.push_back(base + Addr(i) * 8);
        lay.initial.assign(std::size_t(cfg.cells), 0);
        return lay;
    }
    // The sharded store carves its own per-stripe heaps (with one
    // shard it spans the whole heap, bit-identical to the old direct
    // KvStore); the caller's `heap` stays unused for Kv.
    lay.store = std::make_unique<svc::ShardedKvStore>(
        svc::ShardedKvStore::create(m.initContext(), cfg.kvBuckets,
                                    cfg.kvKeyspace, cfg.kvShards));
    lay.store->populate(m.initContext());
    auto no_tm = TxSystem::create(TxSystemKind::NoTm, m);
    no_tm->atomic(m.initContext(), [&](TxHandle &h) {
        for (std::uint64_t k = 1; k <= cfg.kvKeyspace; ++k) {
            const Addr va = lay.store->valueAddr(h, k);
            utm_assert(va != 0);
            lay.addrs.push_back(va);
            lay.initial.push_back(k * 100); // populate() value.
        }
    });
    return lay;
}

TortureResult
runTortureImpl(const TortureConfig &cfg, CrashHarvest *harvest)
{
    // NoTm has no concurrency control; racing it is not a TM bug.
    const int threads = cfg.kind == TxSystemKind::NoTm ? 1 : cfg.threads;
    // h.syscall() in a hardware transaction aborts it; the unbounded
    // HTM has no software fallback for Syscall aborts, by design.
    const bool syscalls = cfg.kind != TxSystemKind::UnboundedHtm;

    const MachineConfig mc = makeTortureMachineConfig(cfg, threads);

    auto machine = std::make_unique<Machine>(mc);
    Machine &m = *machine;
    if (cfg.crashStep)
        m.setCrashStep(cfg.crashStep);
    TxHeap heap(m);
    auto sys = TxSystem::create(cfg.kind, m, cfg.policy);
    sys->setup();
    if (cfg.injectLockstepBug)
        if (Ustm *ustm = sys->ustmRuntime())
            ustm->testOnlyBreakUfoLockstep(true);

    const bool kv = cfg.workload == TortureWorkload::Kv;
    const int cells = cfg.cells;

    // The watched 8-byte words and their sequential shadow.  For
    // Cells these are the contended array; for Kv, the map's value
    // words (the chain structure is fixed after populate, so only the
    // value words change during the run).
    WatchedLayout lay = setupWatchedLayout(cfg, m, heap);
    std::vector<Addr> addrs = std::move(lay.addrs);
    std::vector<std::uint64_t> shadow = std::move(lay.initial);
    std::unique_ptr<svc::ShardedKvStore> store = std::move(lay.store);
    // Every value ever committed per watched word (raw-read oracle).
    std::vector<std::unordered_set<std::uint64_t>> history;
    // Durable runs snapshot the post-setup state into the persistent
    // image; redo records replay on top of this base state.
    if (m.persist().active())
        m.persist().checkpointHeap();
    history.resize(shadow.size());
    for (std::size_t i = 0; i < shadow.size(); ++i)
        history[i].insert(shadow[i]);
    const auto cellAddr = [&addrs](int i) { return addrs[std::size_t(i)]; };

    // Per-thread per-attempt pending writes, published into the
    // shadow (and the per-word commit history) in commit order.
    std::vector<std::vector<std::pair<int, std::uint64_t>>> pending(
        threads);
    std::uint64_t commits = 0;
    m.setCommitPublishHook([&](ThreadContext &tc) {
        ++commits;
        auto &mine = pending[tc.id()];
        // Crash harvest: the committed history in commit order, tagged
        // with the durable commit timestamp (assigned just before this
        // hook runs).  The prefix-consistency oracles replay it.
        if (harvest)
            harvest->history.push_back(
                {m.persist().lastCommitTs(tc.id()), mine});
        for (const auto &[cell, value] : mine) {
            shadow[cell] = value;
            history[cell].insert(value);
        }
        mine.clear();
    });

    // Raw-read strong-atomicity flag: set host-side by Kv fibers,
    // raised by the oracle at the next preemption point (fibers must
    // never throw OracleViolation across the fiber boundary).
    std::string rawFlag;
    std::uint64_t rawReads = 0;
    const bool checkRaw = kv && txSystemKindStronglyAtomic(cfg.kind);

    BackendOracle backendOracle(*sys);
    ShadowOracle shadowOracle(m, *sys, addrs, shadow);
    HostFlagOracle rawOracle("raw-read", rawFlag);
    StallWatchdogOracle stallOracle(m);
    if (cfg.oraclesEnabled) {
        m.addOracle(&backendOracle);
        m.addOracle(&shadowOracle);
        if (kv)
            m.addOracle(&rawOracle);
    }
    if (cfg.watchdog)
        m.addOracle(&stallOracle);
    if (cfg.oraclesEnabled || cfg.watchdog)
        m.setOracleInterval(cfg.oracleInterval);

    if (cfg.replay)
        m.setSchedulerPolicy(
            std::make_unique<ReplayScheduler>(*cfg.replay));
    m.recordSchedule(cfg.record || cfg.replay);

    // Batched kv variant (cfg.kvBatch): the tmserve coalescer under
    // adversarial schedules.  Ops are pre-drawn (the batcher looks
    // ahead, so draws cannot interleave with execution as in the
    // unbatched loop), then consecutive batchable single-key ops with
    // the same verb class and home shard run inside one transaction,
    // with split-on-abort re-execution and adaptive K — every oracle
    // still armed, shadow publication still per-member in op order.
    for (int t = 0; t < threads && kv && cfg.kvBatch; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            Rng rng(workloadSeed(cfg.seed, t));
            const Zipfian zipf(cfg.kvKeyspace, cfg.kvTheta);
            const bool sharded = cfg.kvShards > 1;

            struct KvOp
            {
                int mix;
                std::uint64_t key, key2, fresh, delta;
                Cycles adv; ///< Post-op advance (pre-drawn).
            };
            std::vector<KvOp> ops;
            ops.reserve(std::size_t(cfg.opsPerThread));
            for (int op = 0; op < cfg.opsPerThread; ++op) {
                KvOp o;
                o.mix = int(rng.nextBounded(100));
                o.key = 1 + zipf.sample(rng);
                o.key2 = 1 + zipf.sample(rng);
                o.fresh = rng.next() | 1;
                o.delta = rng.nextBounded(1000);
                o.adv = o.mix < cfg.kvRawPct
                            ? 5 + rng.nextBounded(20)
                            : 10 + rng.nextBounded(40);
                ops.push_back(o);
            }

            // Batchable verb class (same single-key thresholds as the
            // unbatched mix): 0 = read-only GET/SCAN, 1 = update
            // PUT/RMW, -1 = unbatchable (forced-software op, xfer).
            const auto classOf = [sharded](const KvOp &o) -> int {
                if (o.mix < 45)
                    return 0; // get
                if (o.mix < (sharded ? 60 : 65))
                    return 1; // put
                if (o.mix < (sharded ? 72 : 80))
                    return 1; // rmw
                if (o.mix < (sharded ? 82 : 90))
                    return 0; // scan
                return -1;
            };

            auto &mine = pending[t];
            // One batch member's store op + shadow-pending writes.
            const auto applyOp = [&](TxHandle &h, const KvOp &o) {
                const int idx = int(o.key) - 1;
                if (o.mix < 45) {
                    std::uint64_t v = 0;
                    (void)store->get(h, o.key, &v);
                } else if (o.mix < (sharded ? 60 : 65)) {
                    store->put(h, o.key, o.fresh);
                    mine.emplace_back(idx, o.fresh);
                } else if (o.mix < (sharded ? 72 : 80)) {
                    std::uint64_t nv = 0;
                    if (store->rmw(h, o.key, o.delta, &nv))
                        mine.emplace_back(idx, nv);
                } else {
                    store->scan(h, o.key, 4);
                }
            };

            // Unbatchable tail ops keep their unbatched form and
            // per-op-class sites (5 = forced-sw rmw / xfer, 6 =
            // forced-sw xfer when sharded).
            const auto runSingle = [&](ThreadContext &tcx,
                                       const KvOp &o) {
                if (!sharded) {
                    sys->atomic(tcx, TxSiteId(5), [&](TxHandle &h) {
                        mine.clear();
                        h.requireSoftware();
                        std::uint64_t nv = 0;
                        if (store->rmw(h, o.key2, o.delta, &nv))
                            mine.emplace_back(int(o.key2) - 1, nv);
                    });
                    return;
                }
                const std::uint64_t xkey =
                    o.key2 == o.key ? 1 + o.key % cfg.kvKeyspace
                                    : o.key2;
                sys->atomic(
                    tcx, o.mix < 92 ? TxSiteId(5) : TxSiteId(6),
                    [&](TxHandle &h) {
                        mine.clear();
                        if (o.mix >= 92)
                            h.requireSoftware();
                        std::uint64_t nf = 0, nt = 0;
                        if (store->xfer(h, o.key, xkey, o.delta, &nf,
                                        &nt)) {
                            mine.emplace_back(int(o.key) - 1, nf);
                            mine.emplace_back(int(xkey) - 1, nt);
                        }
                    });
            };

            // Batch sites live above the per-op-class sites 1..5/6.
            svc::BatchParams bp;
            bp.enable = true;
            bp.maxBatch = cfg.kvBatchMax;
            bp.growOnSwCommit = true; // Torture every growth path.
            svc::Coalescer co(bp, sharded ? TxSiteId(6) : TxSiteId(5),
                              cfg.kvShards);

            std::size_t i = 0;
            while (i < ops.size()) {
                const KvOp &head = ops[i];
                if (head.mix < cfg.kvRawPct) {
                    // Raw GET: identical probe to the unbatched loop.
                    std::uint64_t v = 0;
                    const bool hit = store->rawGet(tc, head.key, &v);
                    ++rawReads;
                    if (checkRaw && rawFlag.empty()) {
                        if (!hit)
                            rawFlag = "raw GET missed key " +
                                      std::to_string(head.key) +
                                      " (fixed keyspace: chain "
                                      "structure damaged)";
                        else if (!history[int(head.key) - 1].count(v))
                            rawFlag =
                                "raw GET of key " +
                                std::to_string(head.key) +
                                " returned " + std::to_string(v) +
                                ", never committed for that key "
                                "(speculative state leaked to a "
                                "non-transactional read)";
                    }
                    tc.advance(head.adv);
                    ++i;
                    continue;
                }
                const int vc = classOf(head);
                if (vc < 0) {
                    runSingle(tc, head);
                    tc.advance(head.adv);
                    ++i;
                    continue;
                }
                const unsigned home =
                    sharded ? store->shardOf(head.key) : 0;
                const TxSiteId bsite = co.site(vc, home);

                // Form the batch: consecutive batchable ops of the
                // same class and home shard (raw GETs close it).
                std::size_t j = i + 1;
                while (j - i < co.k(bsite) && j < ops.size()) {
                    const KvOp &cand = ops[j];
                    if (cand.mix < cfg.kvRawPct || classOf(cand) != vc)
                        break;
                    if (sharded && store->shardOf(cand.key) != home)
                        break;
                    ++j;
                }

                // Execute, splitting on abort: re-executions serve
                // only the first pending member, the rest re-batch.
                std::size_t done = i;
                while (done < j) {
                    const unsigned plan = unsigned(
                        std::min<std::size_t>(j - done, co.k(bsite)));
                    unsigned attempts = 0;
                    unsigned served = plan;
                    bool prev_sw = false, dirty = false;
                    bool first_sw = false, final_sw = false;
                    AbortReason first_reason = AbortReason::None;
                    sys->atomic(tc, bsite, [&](TxHandle &h) {
                        if (attempts > 0 && !dirty) {
                            dirty = true;
                            first_sw = prev_sw;
                            first_reason =
                                prev_sw ? AbortReason::None
                                        : sys->lastHwAbortReason(tc);
                        }
                        ++attempts;
                        prev_sw =
                            h.path() == TxHandle::Path::Software;
                        final_sw = prev_sw;
                        served = attempts == 1 ? plan : 1;
                        mine.clear(); // Idempotent across re-execution.
                        for (unsigned b = 0; b < served; ++b)
                            applyOp(h, ops[done + b]);
                    });
                    if (!dirty)
                        co.onCleanCommit(bsite, final_sw);
                    else
                        co.onBatchAbort(bsite, first_reason, first_sw);
                    for (unsigned b = 0; b < served; ++b)
                        tc.advance(ops[done + b].adv);
                    done += served;
                }
                i = j;
            }
        });
    }

    for (int t = 0; t < threads && kv && !cfg.kvBatch; ++t) {
        m.addThread([&, t](ThreadContext &tc) {
            Rng rng(workloadSeed(cfg.seed, t));
            const Zipfian zipf(cfg.kvKeyspace, cfg.kvTheta);
            for (int op = 0; op < cfg.opsPerThread; ++op) {
                // Draw every parameter BEFORE atomic(): the body is
                // re-executed on abort and must behave identically.
                const int mix = int(rng.nextBounded(100));
                const std::uint64_t key = 1 + zipf.sample(rng);
                const std::uint64_t key2 = 1 + zipf.sample(rng);
                const std::uint64_t fresh = rng.next() | 1;
                const std::uint64_t delta = rng.nextBounded(1000);
                const int idx = int(key) - 1;

                if (mix < cfg.kvRawPct) {
                    // Raw (non-transactional) GET: the strong-atomicity
                    // probe.  Every observed value must have been
                    // committed for that key at some point.
                    std::uint64_t v = 0;
                    const bool hit = store->rawGet(tc, key, &v);
                    ++rawReads;
                    if (checkRaw && rawFlag.empty()) {
                        if (!hit)
                            rawFlag = "raw GET missed key " +
                                      std::to_string(key) +
                                      " (fixed keyspace: chain "
                                      "structure damaged)";
                        else if (!history[idx].count(v))
                            rawFlag =
                                "raw GET of key " + std::to_string(key) +
                                " returned " + std::to_string(v) +
                                ", never committed for that key "
                                "(speculative state leaked to a "
                                "non-transactional read)";
                    }
                    tc.advance(5 + rng.nextBounded(20));
                    continue;
                }

                // Per-op-class transaction site (mirrors the mix
                // thresholds below): the predictor keys on it, and
                // every class has a stable id across runs.
                const TxSiteId site =
                    cfg.kvShards <= 1
                        ? (mix < 45   ? TxSiteId(1)
                           : mix < 65 ? TxSiteId(2)
                           : mix < 80 ? TxSiteId(3)
                           : mix < 90 ? TxSiteId(4)
                                      : TxSiteId(5))
                        : (mix < 45   ? TxSiteId(1)
                           : mix < 60 ? TxSiteId(2)
                           : mix < 72 ? TxSiteId(3)
                           : mix < 82 ? TxSiteId(4)
                           : mix < 92 ? TxSiteId(5)
                                      : TxSiteId(6));
                auto &mine = pending[t];
                sys->atomic(tc, site, [&](TxHandle &h) {
                    mine.clear(); // Idempotent across re-execution.
                    if (cfg.kvShards <= 1) {
                        if (mix < 45) {
                            std::uint64_t v = 0;
                            (void)store->get(h, key, &v);
                        } else if (mix < 65) {
                            store->put(h, key, fresh);
                            mine.emplace_back(idx, fresh);
                        } else if (mix < 80) {
                            std::uint64_t nv = 0;
                            if (store->rmw(h, key, delta, &nv))
                                mine.emplace_back(idx, nv);
                        } else if (mix < 90) {
                            store->scan(h, key, 4);
                        } else {
                            // Forced software path against key2:
                            // stresses mixed hardware/software
                            // raw-read windows.
                            h.requireSoftware();
                            std::uint64_t nv = 0;
                            if (store->rmw(h, key2, delta, &nv))
                                mine.emplace_back(int(key2) - 1, nv);
                        }
                        return;
                    }
                    // Sharded mix: same single-key ops plus two-key
                    // transfers, which become multi-shard commits when
                    // key and xkey hash to different shards.  xkey
                    // differs from key so xfer's canonical (shard,
                    // key) acquisition order is always well-defined.
                    const std::uint64_t xkey =
                        key2 == key ? 1 + key % cfg.kvKeyspace : key2;
                    if (mix < 45) {
                        std::uint64_t v = 0;
                        (void)store->get(h, key, &v);
                    } else if (mix < 60) {
                        store->put(h, key, fresh);
                        mine.emplace_back(idx, fresh);
                    } else if (mix < 72) {
                        std::uint64_t nv = 0;
                        if (store->rmw(h, key, delta, &nv))
                            mine.emplace_back(idx, nv);
                    } else if (mix < 82) {
                        store->scan(h, key, 4);
                    } else if (mix < 92) {
                        std::uint64_t nf = 0, nt = 0;
                        if (store->xfer(h, key, xkey, delta, &nf, &nt)) {
                            mine.emplace_back(idx, nf);
                            mine.emplace_back(int(xkey) - 1, nt);
                        }
                    } else {
                        // Forced-software cross-shard transfer: the
                        // multi-shard commit drains shard otables in
                        // canonical order on the software path too.
                        h.requireSoftware();
                        std::uint64_t nf = 0, nt = 0;
                        if (store->xfer(h, key, xkey, delta, &nf, &nt)) {
                            mine.emplace_back(idx, nf);
                            mine.emplace_back(int(xkey) - 1, nt);
                        }
                    }
                });
                tc.advance(10 + rng.nextBounded(40));
            }
        });
    }

    for (int t = 0; t < threads && !kv; ++t) {
        m.addThread([&, t, cells, syscalls](ThreadContext &tc) {
            Rng rng(workloadSeed(cfg.seed, t));
            for (int op = 0; op < cfg.opsPerThread; ++op) {
                // Draw every parameter BEFORE atomic(): the body is
                // re-executed on abort and must behave identically.
                const unsigned mix = unsigned(rng.nextBounded(100));
                const int i = int(rng.nextBounded(cells));
                int j = int(rng.nextBounded(cells));
                if (j == i)
                    j = (j + 1) % cells;
                const std::uint64_t amount = rng.nextBounded(1000);
                const std::uint64_t fresh = rng.next() | 1;

                // Per-op-class transaction site (mirrors the mix
                // thresholds below).
                const TxSiteId site = mix < 40   ? TxSiteId(1)
                                      : mix < 65 ? TxSiteId(2)
                                      : mix < 80 ? TxSiteId(3)
                                      : mix < 90 ? TxSiteId(4)
                                      : mix < 95 ? TxSiteId(5)
                                                 : TxSiteId(6);
                auto &mine = pending[t];
                sys->atomic(tc, site, [&](TxHandle &h) {
                    mine.clear(); // Idempotent across re-execution.
                    if (mix < 40) {
                        // Transfer: moves `amount` from cell i to j.
                        const std::uint64_t vi = h.read(cellAddr(i), 8);
                        const std::uint64_t vj = h.read(cellAddr(j), 8);
                        h.write(cellAddr(i), vi - amount, 8);
                        h.write(cellAddr(j), vj + amount, 8);
                        mine.emplace_back(i, vi - amount);
                        mine.emplace_back(j, vj + amount);
                    } else if (mix < 65) {
                        const std::uint64_t v =
                            h.read(cellAddr(i), 8) + 1;
                        h.write(cellAddr(i), v, 8);
                        mine.emplace_back(i, v);
                    } else if (mix < 80) {
                        h.write(cellAddr(i), fresh, 8);
                        mine.emplace_back(i, fresh);
                    } else if (mix < 90) {
                        // Read-only scan of a short cell stripe.
                        for (int k = 0; k < 4; ++k)
                            (void)h.read(cellAddr((i + k) % cells), 8);
                    } else if (mix < 95) {
                        // Forced software path (no-op where there is
                        // no distinct software path).
                        h.requireSoftware();
                        const std::uint64_t v =
                            h.read(cellAddr(j), 8) + 1;
                        h.write(cellAddr(j), v, 8);
                        mine.emplace_back(j, v);
                    } else {
                        if (syscalls)
                            h.syscall();
                        const std::uint64_t v =
                            h.read(cellAddr(i), 8) ^ amount;
                        h.write(cellAddr(i), v, 8);
                        mine.emplace_back(i, v);
                    }
                });
                tc.advance(10 + rng.nextBounded(40));
            }
        });
    }

    TortureResult res;
    try {
        m.run();
    } catch (const OracleViolation &v) {
        res.violated = true;
        res.oracle = v.oracle;
        res.why = v.why;
        res.violationStep = v.step;
    }
    res.crashed = m.crashed();

    // Harvest the surviving persistent state before the machine dies:
    // after a crash the image IS the machine, as far as recovery is
    // concerned.
    if (harvest) {
        harvest->image = m.persist().image();
        harvest->fenceTs = m.persist().fenceCompletedTs();
    }

    // run() finalizes the telemetry bus on a clean exit; after a
    // violation unwound run(), finalize here (idempotent, no-op when
    // telemetry is off) so the timeline and the conflict./watchdog.
    // counters cover the abandoned partial run too.
    m.telemetry().finalize();
    if (cfg.timeline)
        res.timeline = m.telemetry().dumpJson();

    res.steps = m.schedSteps();
    res.cycles = m.completionTime();
    res.commits = commits;
    res.rawReads = rawReads;
    res.schedule = m.recordedSchedule();
    if (res.crashed)
        res.schedule.setCrashStep(cfg.crashStep);
    res.stats = m.stats().counters();

    if (!res.violated && !res.crashed) {
        res.validated = true;
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            if (m.memory().read(addrs[i], 8) != shadow[i]) {
                res.validated = false;
                res.oracle = "final-state";
                res.why = "cell " + std::to_string(i) +
                          " diverged from shadow after completion";
                break;
            }
        }
    } else {
        // Abandoned mid-run (oracle violation or injected crash):
        // unfinished fibers and in-flight BTM transactions are
        // expected, not suspicious.
        setWarningsSuppressed(true);
        sys.reset();
        machine.reset();
        setWarningsSuppressed(false);
    }
    return res;
}

} // namespace

TortureResult
runTorture(const TortureConfig &cfg)
{
    return runTortureImpl(cfg, nullptr);
}

namespace {

/** Replay @p trace under @p base; true if the same oracle fails. */
bool
failsSame(const TortureConfig &base, const ScheduleTrace &trace,
          const std::string &oracle)
{
    TortureConfig cfg = base;
    cfg.replay = &trace;
    cfg.record = false;
    TortureResult r = runTorture(cfg);
    return r.violated && r.oracle == oracle;
}

/** The first @p steps scheduling steps of @p trace. */
ScheduleTrace
truncateTrace(const ScheduleTrace &trace, std::uint64_t steps)
{
    ScheduleTrace out;
    std::uint64_t left = steps;
    for (const auto &b : trace.blocks()) {
        if (left == 0)
            break;
        const std::uint64_t take = std::min(b.count, left);
        out.appendBlock(b.tid, take);
        left -= take;
    }
    return out;
}

} // namespace

MinimizeResult
minimizeSchedule(const TortureConfig &cfg, const ScheduleTrace &failing,
                 const std::string &oracle,
                 std::uint64_t violation_step, int budget)
{
    MinimizeResult res;
    res.schedule = failing;

    // Everything after the violation step was never consumed.
    ScheduleTrace best = truncateTrace(failing, violation_step);
    ++res.runs;
    if (!failsSame(cfg, best, oracle)) {
        // Try the untruncated trace as a sanity fallback.
        ++res.runs;
        if (!failsSame(cfg, failing, oracle))
            return res; // Not reproducible; keep the original.
        best = failing;
    }
    res.reproduced = true;

    // Greedy single pass, back to front: drop whole RLE blocks while
    // the replay (with divergence fallback) still fails identically.
    for (int i = int(best.blocks().size()) - 1;
         i >= 0 && res.runs < budget; --i) {
        std::vector<ScheduleTrace::Block> blocks = best.blocks();
        blocks.erase(blocks.begin() + i);
        ScheduleTrace candidate = ScheduleTrace::fromBlocks(blocks);
        ++res.runs;
        if (failsSame(cfg, candidate, oracle))
            best = std::move(candidate);
    }

    res.schedule = std::move(best);
    return res;
}

CrashTortureResult
runCrashTorture(const TortureConfig &base, std::uint64_t crash_step)
{
    CrashTortureResult out;
    TortureConfig cfg = base;
    cfg.policy.durable = true;
    cfg.record = true;
    if (!txSystemKindDurable(cfg.kind)) {
        out.why = std::string("backend ") + txSystemKindName(cfg.kind) +
                  " cannot run durable commits";
        return out;
    }

    // A replayed crash trace carries its own crash step; otherwise an
    // explicit step pins it, and failing both, a crash-free probe run
    // measures the schedule so the seed can pick a step uniformly over
    // the whole run.
    if (crash_step == 0 && cfg.replay)
        crash_step = cfg.replay->crashStep();
    if (crash_step == 0) {
        TortureConfig probe = cfg;
        probe.record = false;
        probe.crashStep = 0;
        const TortureResult pr = runTortureImpl(probe, nullptr);
        if (!pr.ok()) {
            out.why = "crash-free probe failed oracle " + pr.oracle +
                      ": " + pr.why;
            return out;
        }
        out.probeSteps = pr.steps;
        std::uint64_t h =
            (cfg.seed + 0x9e3779b97f4a7c15ull) * 0xbf58476d1ce4e5b9ull;
        h ^= h >> 31;
        crash_step = 1 + h % pr.steps;
    }
    out.crashStep = crash_step;
    cfg.crashStep = crash_step;

    // Crash run: deterministic, so it retraces the probe's schedule
    // until the machine dies at the injected step.  All oracles stay
    // armed up to the crash.
    CrashHarvest hv;
    const TortureResult cr = runTortureImpl(cfg, &hv);
    out.schedule = cr.schedule;
    out.stats = cr.stats;
    out.crashSteps = cr.steps;
    out.timeline = cr.timeline;
    if (cr.violated) {
        out.why = "oracle " + cr.oracle +
                  " violated before the crash: " + cr.why;
        return out;
    }

    // The committed history keyed by durable commit timestamp.
    // Read-only commits log nothing and never fence; they are exempt
    // from every durability obligation.
    std::map<std::uint64_t, const CommittedTx *> committed;
    for (const CommittedTx &c : hv.history)
        if (!c.writes.empty())
            committed[c.ts] = &c;
    out.committedTx = committed.size();
    out.fencedTx = hv.fenceTs.size();

    // Recovery machine: identical geometry, deterministically
    // re-created store layout, empty ownership state.
    const int threads =
        cfg.kind == TxSystemKind::NoTm ? 1 : cfg.threads;
    Machine rm(makeTortureMachineConfig(cfg, threads));
    TxHeap rheap(rm);
    auto rsys = TxSystem::create(cfg.kind, rm, cfg.policy);
    rsys->setup();
    const WatchedLayout lay = setupWatchedLayout(cfg, rm, rheap);

    const dur::RecoveryReport rep = dur::recover(rm, hv.image);
    out.recoverJson = rep.toJson();
    out.recoveredTx = rep.recordsApplied;
    out.discardedRecords = rep.recordsDiscarded;
    const std::set<std::uint64_t> applied(rep.appliedTs.begin(),
                                          rep.appliedTs.end());

    // Oracle: every fence-completed commit survived.
    for (std::uint64_t ts : hv.fenceTs) {
        if (!applied.count(ts)) {
            out.why = "fence-completed commit ts=" +
                      std::to_string(ts) + " lost by recovery";
            return out;
        }
    }
    // Oracle: nothing that never committed was recovered.
    for (std::uint64_t ts : rep.appliedTs) {
        if (!committed.count(ts)) {
            out.why = "recovered record ts=" + std::to_string(ts) +
                      " was never committed";
            return out;
        }
    }
    // Oracle: per-key prefix consistency.  Once one committed write
    // to a key is missing, every later write to that key must be
    // missing too — a recovered successor would expose a state no
    // prefix of the key's history ever had.
    std::vector<char> keyGap(lay.addrs.size(), 0);
    for (const auto &[ts, c] : committed) {
        const bool ap = applied.count(ts) != 0;
        for (const auto &[cell, value] : c->writes) {
            (void)value;
            if (ap && keyGap[std::size_t(cell)]) {
                out.why = "non-prefix recovery: key " +
                          std::to_string(cell) + " write of ts=" +
                          std::to_string(ts) +
                          " recovered after an earlier lost write";
                return out;
            }
            if (!ap)
                keyGap[std::size_t(cell)] = 1;
        }
    }
    // Oracle: the recovered store equals a host-side replay of exactly
    // the recovered subset of the committed history.
    std::vector<std::uint64_t> expected = lay.initial;
    for (const auto &[ts, c] : committed) {
        if (!applied.count(ts))
            continue;
        for (const auto &[cell, value] : c->writes)
            expected[std::size_t(cell)] = value;
    }
    for (std::size_t i = 0; i < lay.addrs.size(); ++i) {
        const std::uint64_t got = rm.memory().read(lay.addrs[i], 8);
        if (got != expected[i]) {
            out.why = "recovered key " + std::to_string(i) + " = " +
                      std::to_string(got) + ", expected " +
                      std::to_string(expected[i]) +
                      " (replay of the recovered commit subset)";
            return out;
        }
    }
    // Oracle: no UFO protection bit survives recovery, and the
    // backend's otable↔UFO lockstep invariant holds on the recovered
    // machine (empty ownership ↔ all-clear protection).
    std::uint64_t ufoLeft = 0;
    rm.memory().forEachUfoLine(
        [&](LineAddr, UfoBits) { ++ufoLeft; });
    if (ufoLeft) {
        out.why = std::to_string(ufoLeft) +
                  " UFO-protected lines survived recovery";
        return out;
    }
    std::string why;
    if (!rsys->oracleInvariantsHold(&why)) {
        out.why = "post-recovery backend invariants: " + why;
        return out;
    }
    // Oracle: recovery is idempotent — a second pass over the same
    // image reports and rebuilds exactly the same thing.
    const dur::RecoveryReport rep2 = dur::recover(rm, hv.image);
    if (rep2.toJson() != out.recoverJson) {
        out.why = "recovery not idempotent: second pass reported " +
                  rep2.toJson();
        return out;
    }
    for (std::size_t i = 0; i < lay.addrs.size(); ++i) {
        if (rm.memory().read(lay.addrs[i], 8) != expected[i]) {
            out.why = "recovery not idempotent: key " +
                      std::to_string(i) +
                      " changed on the second pass";
            return out;
        }
    }

    out.ok = true;
    return out;
}

} // namespace utm::torture
