#include "sim/stats.hh"

#include <bit>
#include <sstream>

namespace utm {

void
Histogram::observe(std::uint64_t value)
{
    const int bucket =
        value == 0 ? 0 : std::bit_width(value); // [2^(b-1), 2^b)
    buckets_[bucket < kBuckets ? bucket : kBuckets - 1]++;
    ++samples_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0
                         : double(sum_) / double(samples_);
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (samples_ == 0)
        return 0;
    const std::uint64_t target =
        std::uint64_t(q * double(samples_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += buckets_[b];
        if (seen >= target)
            return b == 0 ? 0 : (std::uint64_t(1) << b) - 1;
    }
    return max_;
}

std::uint64_t
Histogram::countAbove(std::uint64_t threshold) const
{
    // Exact only at bucket boundaries; callers use powers of two.
    std::uint64_t n = 0;
    for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t upper =
            b == 0 ? 0 : (std::uint64_t(1) << b) - 1;
        if (upper > threshold)
            n += buckets_[b];
    }
    return n;
}

void
StatsRegistry::inc(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatsRegistry::observe(const std::string &name, std::uint64_t value)
{
    histograms_[name].observe(value);
}

const Histogram &
StatsRegistry::histogram(const std::string &name) const
{
    static const Histogram empty;
    auto it = histograms_.find(name);
    return it == histograms_.end() ? empty : it->second;
}

void
StatsRegistry::set(const std::string &name, std::uint64_t value)
{
    counters_[name] = value;
}

std::uint64_t
StatsRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatsRegistry::withPrefix(const std::string &prefix) const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (auto it = counters_.lower_bound(prefix);
         it != counters_.end() && it->first.compare(0, prefix.size(),
                                                    prefix) == 0;
         ++it) {
        out.emplace_back(it->first, it->second);
    }
    return out;
}

std::uint64_t
StatsRegistry::sumWithPrefix(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters_.lower_bound(prefix);
         it != counters_.end() && it->first.compare(0, prefix.size(),
                                                    prefix) == 0;
         ++it) {
        sum += it->second;
    }
    return sum;
}

void
StatsRegistry::clear()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatsRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << kv.first << ' ' << kv.second << '\n';
    return os.str();
}

} // namespace utm
