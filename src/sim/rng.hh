/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Each simulated thread owns an independently-seeded Rng so that the
 * interleaving chosen by the scheduler is bit-reproducible across runs.
 */

#ifndef UFOTM_SIM_RNG_HH
#define UFOTM_SIM_RNG_HH

#include <cstdint>

namespace utm {

/** xoshiro256** generator with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipfian(θ) rank sampler over [0, n) (Gray et al., "Quickly
 * Generating Billion-Record Synthetic Databases", SIGMOD '94 — the
 * YCSB generator).  Rank 0 is the hottest item; θ = 0 degenerates to
 * uniform, θ → 1 concentrates mass on the head of the distribution.
 *
 * Construction precomputes the harmonic normalizers in O(n); the
 * sample path is allocation-free and draws exactly one uniform
 * variate from the caller's Rng, so interleavings stay reproducible.
 */
class Zipfian
{
  public:
    /** @p n items, skew @p theta in [0, 1). */
    Zipfian(std::uint64_t n, double theta);

    /** Draw a rank in [0, n); hotter ranks are smaller. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t range() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_; ///< 1 / (1 - θ).
    double zetan_; ///< ζ(n, θ).
    double eta_;
};

} // namespace utm

#endif // UFOTM_SIM_RNG_HH
