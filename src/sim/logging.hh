/**
 * @file
 * Error and status reporting, following the gem5 discipline:
 *
 *  - panic():  an internal simulator bug; should never happen. Aborts.
 *  - fatal():  a user/configuration error; exits with an error code.
 *  - warn():   something suspicious that the simulation survives.
 *  - inform(): plain status output.
 */

#ifndef UFOTM_SIM_LOGGING_HH
#define UFOTM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace utm {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Globally suppress warn() output.  Used by the torture harness while
 * tearing down a machine abandoned mid-run after an oracle violation,
 * where "destroying a fiber that has not finished" warnings are
 * expected and would drown the report.
 */
void setWarningsSuppressed(bool on);

/** Format a printf-style message into a std::string. */
std::string vformatString(const char *fmt, va_list ap);

} // namespace utm

#define utm_panic(...) ::utm::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define utm_fatal(...) ::utm::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define utm_warn(...) ::utm::warnImpl(__VA_ARGS__)
#define utm_inform(...) ::utm::informImpl(__VA_ARGS__)

/** Invariant check that survives NDEBUG builds; panics on failure. */
#define utm_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::utm::panicImpl(__FILE__, __LINE__,                            \
                             "assertion failed: %s", #cond);                \
        }                                                                   \
    } while (0)

#endif // UFOTM_SIM_LOGGING_HH
