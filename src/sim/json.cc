#include "sim/json.hh"

#include <cmath>
#include <cstdio>

namespace utm::json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
number(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Trim to the shortest form that still round-trips visually well.
    double parsed;
    std::snprintf(buf, sizeof buf, "%.15g", v);
    std::sscanf(buf, "%lf", &parsed);
    if (parsed != v)
        std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
Writer::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // Comma (if any) was written with the key.
    }
    if (!stack_.empty() && stack_.back()++ > 0)
        out_ += ',';
}

Writer &
Writer::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back(0);
    return *this;
}

Writer &
Writer::endObject()
{
    stack_.pop_back();
    out_ += '}';
    return *this;
}

Writer &
Writer::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back(0);
    return *this;
}

Writer &
Writer::endArray()
{
    stack_.pop_back();
    out_ += ']';
    return *this;
}

Writer &
Writer::key(const std::string &k)
{
    if (!stack_.empty() && stack_.back()++ > 0)
        out_ += ',';
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

Writer &
Writer::value(std::uint64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

Writer &
Writer::value(std::int64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

Writer &
Writer::value(double v)
{
    beforeValue();
    out_ += number(v);
    return *this;
}

Writer &
Writer::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

Writer &
Writer::value(const char *v)
{
    beforeValue();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

Writer &
Writer::value(const std::string &v)
{
    beforeValue();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

Writer &
Writer::raw(const std::string &json)
{
    beforeValue();
    out_ += json;
    return *this;
}

} // namespace utm::json
