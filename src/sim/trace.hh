/**
 * @file
 * Per-thread transaction event tracer.
 *
 * Every TM backend records begin/commit/abort-with-reason/retry/
 * failover/UFO-fault events here, cycle-stamped from the simulator
 * clock, through the UTM_TRACE_EVENT macro.  Each thread owns a
 * fixed-capacity ring buffer (oldest events are overwritten on wrap;
 * the drop count is kept), plus per-event-type counters that never
 * wrap — the counters feed the stats JSON `per_thread` section, the
 * rings feed the chrome://tracing exporter.
 *
 * Building with -DUTM_TRACING=0 compiles every UTM_TRACE_EVENT call
 * site away entirely (zero cost); the default build keeps tracing on
 * (one branch + array stores per transaction event).
 */

#ifndef UFOTM_SIM_TRACE_HH
#define UFOTM_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/tm_iface.hh"
#include "sim/types.hh"

#ifndef UTM_TRACING
#define UTM_TRACING 1
#endif

namespace utm {

/** The transaction lifecycle events the backends report. */
enum class TraceEvent : std::uint8_t
{
    TxBegin,  ///< Outermost attempt started (hardware or software).
    TxCommit, ///< Outermost attempt committed.
    TxAbort,  ///< Attempt aborted; `reason` says why.
    TxRetry,  ///< Transaction parked in retryWait.
    Failover, ///< Transaction moved to the software path.
    UfoFault, ///< A transactional access hit UFO protection.
};

constexpr int kNumTraceEvents = 6;

/** Stable snake_case event name (stats JSON / chrome trace). */
const char *traceEventName(TraceEvent e);

/** Which execution path the event happened on. */
enum class TracePath : std::uint8_t
{
    None,     ///< Not path-specific.
    Hardware, ///< BTM attempt.
    Software, ///< USTM/TL2 attempt.
};

const char *tracePathName(TracePath p);

/** One recorded event. */
struct TraceRecord
{
    Cycles cycle;
    TraceEvent event;
    TracePath path;
    AbortReason reason;
};

/** The machine-wide tracer (one ring per thread). */
class TxTracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    /** Per-thread ring capacity; 0 disables recording entirely.
     *  Existing rings are discarded. */
    void setCapacity(std::size_t n);
    std::size_t capacity() const { return capacity_; }

    void record(ThreadId t, Cycles cycle, TraceEvent e,
                TracePath path = TracePath::None,
                AbortReason reason = AbortReason::None);

    /** Retained events of thread @p t, oldest first. */
    std::vector<TraceRecord> snapshot(ThreadId t) const;
    /** Number of retained (not overwritten) events for @p t. */
    std::size_t size(ThreadId t) const;
    /** Events lost to ring wraparound for @p t. */
    std::uint64_t dropped(ThreadId t) const;

    /** @name Per-event-type counters (never wrap). @{ */
    std::uint64_t count(ThreadId t, TraceEvent e) const;
    std::uint64_t total(TraceEvent e) const;
    /** @} */

    /** Discard all recorded events and counters. */
    void clear();

    /**
     * Render every retained event as a chrome://tracing document
     * (JSON object format; load via chrome://tracing or Perfetto).
     * Begin/commit become duration slices, aborts close the slice and
     * add an instant marker, everything else is an instant event.
     */
    std::string dumpChromeTrace() const;

  private:
    struct PerThread
    {
        std::vector<TraceRecord> ring;
        std::size_t head = 0; ///< Next write index once full.
        std::uint64_t recorded = 0;
        std::array<std::uint64_t, kNumTraceEvents> counts{};
    };

    std::array<PerThread, kMaxThreads> threads_;
    std::size_t capacity_ = kDefaultCapacity;
};

} // namespace utm

/**
 * Record a transaction event on @p machine's tracer, stamped with
 * @p tc's local clock.  Compiles to nothing when UTM_TRACING == 0.
 */
#if UTM_TRACING
#define UTM_TRACE_EVENT(machine, tc, ...)                              \
    ((machine).tracer().record((tc).id(), (tc).now(), __VA_ARGS__))
#else
#define UTM_TRACE_EVENT(machine, tc, ...) ((void)0)
#endif

#endif // UFOTM_SIM_TRACE_HH
