/**
 * @file
 * Fundamental simulator types shared by every module.
 *
 * The simulated machine exposes a flat 64-bit physical address space.
 * All TM mechanisms in this repository (BTM speculative bits, UFO
 * protection bits, the USTM ownership table) operate at cache-line
 * granularity, mirroring the paper.
 */

#ifndef UFOTM_SIM_TYPES_HH
#define UFOTM_SIM_TYPES_HH

#include <cstdint>

namespace utm {

/** Simulated physical address. */
using Addr = std::uint64_t;

/** Simulated time, in processor cycles. */
using Cycles = std::uint64_t;

/** Simulated thread identifier; one thread per core in this model. */
using ThreadId = int;

/**
 * Static transaction-site identifier: a stable label for an atomic()
 * call site (tmserve keys it by request verb, optionally by key-range
 * bucket).  The adaptive path predictor
 * (src/hybrid/path_predictor.hh) keeps one outcome counter per
 * (thread, site).  Site 0 means "no site": such transactions are
 * never predicted.
 */
using TxSiteId = std::uint32_t;
constexpr TxSiteId kTxSiteNone = 0;

/** Log2 of the cache-line size; 64-byte lines as in the paper. */
constexpr unsigned kLineBits = 6;

/** Cache-line size in bytes. */
constexpr unsigned kLineSize = 1u << kLineBits;

/** Maximum number of simulated threads (otable owner sets are 64-bit). */
constexpr int kMaxThreads = 64;

/** A line-aligned address (low kLineBits bits are zero). */
using LineAddr = Addr;

/** Round an address down to its cache line. */
constexpr LineAddr
lineOf(Addr a)
{
    return a & ~static_cast<Addr>(kLineSize - 1);
}

/** Byte offset of an address within its cache line. */
constexpr unsigned
lineOffset(Addr a)
{
    return static_cast<unsigned>(a & (kLineSize - 1));
}

/** Kind of memory access, used by coherence, UFO and TM layers. */
enum class AccessType { Read, Write };

/**
 * UFO protection bits for one cache line (paper Section 3.2).
 *
 * faultOnRead/faultOnWrite raise a user-level fault when a thread with
 * UFO faults enabled performs the corresponding access.
 */
struct UfoBits
{
    bool faultOnRead = false;
    bool faultOnWrite = false;

    constexpr bool any() const { return faultOnRead || faultOnWrite; }

    /** Would an access of type @p t fault under these bits? */
    constexpr bool
    faults(AccessType t) const
    {
        return t == AccessType::Read ? faultOnRead : faultOnWrite;
    }

    constexpr bool operator==(const UfoBits&) const = default;
};

/** Both UFO bits set: full isolation of a line. */
constexpr UfoBits kUfoBoth{true, true};
/** Only fault-on-write: readers tolerated, writers fault. */
constexpr UfoBits kUfoWriteOnly{false, true};
/** No protection. */
constexpr UfoBits kUfoNone{false, false};

} // namespace utm

#endif // UFOTM_SIM_TYPES_HH
