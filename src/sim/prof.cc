/**
 * @file
 * Cycle-accounting profiler implementation (see prof.hh).
 */

#include "sim/prof.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

const char *
profCompName(ProfComp c)
{
    switch (c) {
    case ProfComp::Ustm: return "ustm";
    case ProfComp::Btm: return "btm";
    case ProfComp::Tl2: return "tl2";
    case ProfComp::HyTm: return "hytm";
    case ProfComp::PhTm: return "phtm";
    case ProfComp::Sle: return "sle";
    case ProfComp::Tm: return "tm";
    }
    return "?";
}

const char *
profPhaseName(ProfPhase p)
{
    switch (p) {
    case ProfPhase::Begin: return "begin";
    case ProfPhase::BarrierRead: return "barrier_read";
    case ProfPhase::BarrierWrite: return "barrier_write";
    case ProfPhase::Commit: return "commit";
    case ProfPhase::AbortUnwind: return "abort_unwind";
    case ProfPhase::Stall: return "stall";
    case ProfPhase::Backoff: return "backoff";
    case ProfPhase::RetryWait: return "retry_wait";
    case ProfPhase::UfoHandler: return "ufo_handler";
    case ProfPhase::OtableWalk: return "otable_walk";
    case ProfPhase::NonTx: return "nontx";
    case ProfPhase::Persist: return "persist";
    }
    return "?";
}

std::string
profSlotName(int slot)
{
    const auto c = static_cast<ProfComp>(slot / kNumProfPhases);
    const auto p = static_cast<ProfPhase>(slot % kNumProfPhases);
    return std::string(profCompName(c)) + "." + profPhaseName(p);
}

void
CycleProfiler::flushTo(PerThread &pt, Cycles now)
{
    utm_assert(now >= pt.lastMark,
               "profiler: thread clock moved backwards");
    const Cycles d = now - pt.lastMark;
    if (d != 0) {
        if (pt.depth > 0)
            pt.cycles[pt.stack[pt.depth - 1]] += d;
        else
            pt.app += d;
    }
    pt.lastMark = now;
}

void
CycleProfiler::push(ThreadId t, Cycles now, ProfComp c, ProfPhase p)
{
    PerThread &pt = threads_[t];
    flushTo(pt, now);
    utm_assert(pt.depth < kMaxDepth, "profiler: phase stack overflow");
    pt.stack[pt.depth++] = static_cast<std::int8_t>(slot(c, p));
}

void
CycleProfiler::pop(ThreadId t, Cycles now)
{
    PerThread &pt = threads_[t];
    flushTo(pt, now);
    utm_assert(pt.depth > 0, "profiler: phase stack underflow");
    --pt.depth;
}

CycleProfiler::Snapshot
CycleProfiler::snapshot(ThreadId t, Cycles now) const
{
    const PerThread &pt = threads_[t];
    Snapshot s{pt.cycles, pt.app};
    if (now >= pt.lastMark) {
        const Cycles d = now - pt.lastMark;
        if (pt.depth > 0)
            s.cycles[pt.stack[pt.depth - 1]] += d;
        else
            s.app += d;
    }
    return s;
}

void
CycleProfiler::finalize(Machine &machine)
{
#if UTM_PROFILING
    std::array<Cycles, kNumSlots> agg{};
    Cycles app = 0;
    for (int t = 0; t < machine.numThreads(); ++t) {
        PerThread &pt = threads_[t];
        utm_assert(pt.depth == 0,
                   "profiler: phase scope still open at run end");
        flushTo(pt, machine.thread(t).now());
        for (int s = 0; s < kNumSlots; ++s)
            agg[s] += pt.cycles[s];
        app += pt.app;
    }
    StatsRegistry &stats = machine.stats();
    for (int s = 0; s < kNumSlots; ++s)
        if (agg[s] != 0)
            stats.set(std::string("prof.cycles.") + profSlotName(s),
                      agg[s]);
    if (app != 0)
        stats.set(std::string("prof.cycles.") + "app", app);
#else
    (void)machine;
#endif
}

ProfScope::ProfScope(Machine &machine, ThreadContext &tc, ProfComp c,
                     ProfPhase p)
    : prof_(machine.profiler()), tc_(tc)
{
    prof_.push(tc.id(), tc.now(), c, p);
}

ProfScope::~ProfScope()
{
    prof_.pop(tc_.id(), tc_.now());
}

void
HotLineTable::observe(LineAddr line)
{
    ++observed_;
    auto it = counts_.find(line);
    if (it != counts_.end()) {
        ++it->second;
        return;
    }
    if (static_cast<int>(counts_.size()) < k_) {
        counts_.emplace(line, 1);
        return;
    }
    // Misra–Gries decrement step: no free slot, so every candidate
    // pays one count and exhausted candidates are evicted.
    for (auto c = counts_.begin(); c != counts_.end();) {
        if (--c->second == 0)
            c = counts_.erase(c);
        else
            ++c;
    }
}

std::vector<HotLineTable::Entry>
HotLineTable::top() const
{
    std::vector<Entry> out;
    out.reserve(counts_.size());
    for (const auto &[line, count] : counts_)
        out.push_back({line, count});
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.line < b.line;
              });
    return out;
}

} // namespace utm
