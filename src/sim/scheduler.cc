#include "sim/scheduler.hh"

#include <algorithm>
#include <array>
#include <charconv>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace utm {

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::MinClock: return "minclock";
      case SchedPolicy::MaxClock: return "maxclock";
      case SchedPolicy::RandomWalk: return "random";
      case SchedPolicy::Pct: return "pct";
      case SchedPolicy::RoundRobin: return "roundrobin";
    }
    return "?";
}

bool
parseSchedPolicy(const std::string &name, SchedPolicy *out)
{
    if (name == "minclock") *out = SchedPolicy::MinClock;
    else if (name == "maxclock") *out = SchedPolicy::MaxClock;
    else if (name == "random" || name == "randomwalk")
        *out = SchedPolicy::RandomWalk;
    else if (name == "pct") *out = SchedPolicy::Pct;
    else if (name == "roundrobin" || name == "rr")
        *out = SchedPolicy::RoundRobin;
    else
        return false;
    return true;
}

void
SchedulerPolicy::onRunEnd(StatsRegistry &)
{
}

namespace {

/** Smallest clock, ties to lowest id: the seed repo's original rule. */
ThreadId
minClockPick(const SchedulerView &view)
{
    const SchedulerView::Runnable *best = &view.runnable[0];
    for (int i = 1; i < view.n; ++i)
        if (view.runnable[i].clock < best->clock)
            best = &view.runnable[i];
    return best->id;
}

class MinClockScheduler final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "minclock"; }

    ThreadId
    pick(const SchedulerView &view) override
    {
        return minClockPick(view);
    }
};

/**
 * Adversarial MaxClock: the thread that is furthest ahead in simulated
 * time runs again, so slower threads observe its state changes as
 * abruptly as the memory model allows.  The starvation bound keeps
 * blocking spin-waits (which never advance other threads' clocks past
 * the leader) from running forever.
 */
class MaxClockScheduler final : public SchedulerPolicy
{
  public:
    explicit MaxClockScheduler(const SchedulerConfig &cfg)
        : bound_(cfg.starvationBound ? cfg.starvationBound : 1)
    {
    }

    const char *name() const override { return "maxclock"; }

    ThreadId
    pick(const SchedulerView &view) override
    {
        ThreadId choice;
        if (view.n > 1 && last_ >= 0 && streak_ >= bound_) {
            // Fairness escape: let the laggard run one slice.
            choice = minClockPick(view);
            fairness_++;
        } else {
            const SchedulerView::Runnable *best = &view.runnable[0];
            for (int i = 1; i < view.n; ++i)
                if (view.runnable[i].clock > best->clock)
                    best = &view.runnable[i];
            choice = best->id;
        }
        streak_ = choice == last_ ? streak_ + 1 : 1;
        last_ = choice;
        return choice;
    }

    void
    onRunEnd(StatsRegistry &stats) override
    {
        stats.set("sched.fairness_picks", fairness_);
    }

  private:
    unsigned bound_;
    ThreadId last_ = -1;
    unsigned streak_ = 0;
    std::uint64_t fairness_ = 0;
};

class RandomWalkScheduler final : public SchedulerPolicy
{
  public:
    explicit RandomWalkScheduler(std::uint64_t seed) : rng_(seed) {}

    const char *name() const override { return "random"; }

    ThreadId
    pick(const SchedulerView &view) override
    {
        return view.runnable[rng_.nextBounded(view.n)].id;
    }

  private:
    Rng rng_;
};

/**
 * PCT-style priority scheduling.  Threads get distinct random
 * priorities; the highest-priority runnable thread always runs.  At
 * `pctChangePoints` pre-sampled step numbers the currently-running
 * thread drops to the lowest priority, forcing exactly the kind of
 * untimely preemption PCT's probabilistic bug-depth guarantee relies
 * on.  Deviation from the paper: a starvation bound also demotes a
 * thread stuck in a blocking spin-wait, since our STM slow paths
 * contain waits PCT's preemptive model does not have.
 *
 * The starvation bound is re-drawn (from the policy's own seeded RNG)
 * after every demotion it triggers.  A *fixed* demotion cadence can
 * phase-lock with a fixed-event-length lock-retry loop: priority
 * scheduling ignores clocks, so a thread whose probe cycle has a
 * constant event count is demoted at the same loop phase every time —
 * if that phase is inside its row-lock critical section, every lower
 * priority thread then burns its whole scheduling window against a
 * lock whose holder is parked, forever (found by tmtorture,
 * ustm-ufo/pct seed 12 with the batched kv workload; the cycle-jitter
 * fix for the analogous minclock phase-lock — ReleaseStarvation —
 * cannot help here because PCT never consults clocks).  An aperiodic
 * bound drifts the demotion phase across the loop, so the holder
 * eventually gets demoted outside the critical section and the
 * waiters' windows find the lock free.
 */
class PctScheduler final : public SchedulerPolicy
{
  public:
    PctScheduler(const SchedulerConfig &cfg, std::uint64_t seed)
        : rng_(seed),
          bound_(cfg.starvationBound ? cfg.starvationBound : 1),
          curBound_(bound_),
          fixedBound_(cfg.testOnlyFixedPctBound)
    {
        for (int t = 0; t < kMaxThreads; ++t)
            order_[t] = static_cast<ThreadId>(t);
        // Fisher-Yates: order_[0] is the highest priority.
        for (int t = kMaxThreads - 1; t > 0; --t)
            std::swap(order_[t], order_[rng_.nextBounded(t + 1)]);
        unsigned points = cfg.pctChangePoints;
        std::uint64_t horizon =
            cfg.pctExpectedSteps ? cfg.pctExpectedSteps : 1;
        for (unsigned i = 0; i < points; ++i)
            changePoints_.push_back(1 + rng_.nextBounded(horizon));
        std::sort(changePoints_.begin(), changePoints_.end());
    }

    const char *name() const override { return "pct"; }

    ThreadId
    pick(const SchedulerView &view) override
    {
        while (nextPoint_ < changePoints_.size() &&
               changePoints_[nextPoint_] <= view.step) {
            ++nextPoint_;
            if (last_ >= 0) {
                demote(last_);
                ++changePointsHit_;
            }
        }
        if (view.n > 1 && last_ >= 0 && streak_ >= curBound_) {
            demote(last_);
            ++demotions_;
            if (!fixedBound_)
                curBound_ = bound_ + rng_.nextBounded(bound_);
        }
        ThreadId choice = -1;
        for (int t = 0; t < kMaxThreads && choice < 0; ++t)
            for (int i = 0; i < view.n; ++i)
                if (view.runnable[i].id == order_[t]) {
                    choice = order_[t];
                    break;
                }
        streak_ = choice == last_ ? streak_ + 1 : 1;
        last_ = choice;
        return choice;
    }

    void
    onRunEnd(StatsRegistry &stats) override
    {
        stats.set("sched.pct_change_points", changePointsHit_);
        stats.set("sched.pct_demotions", demotions_);
    }

  private:
    void
    demote(ThreadId tid)
    {
        auto it = std::find(order_.begin(), order_.end(), tid);
        std::rotate(it, it + 1, order_.end());
        streak_ = 0;
    }

    Rng rng_;
    unsigned bound_;
    unsigned curBound_;
    bool fixedBound_;
    std::array<ThreadId, kMaxThreads> order_;
    std::vector<std::uint64_t> changePoints_;
    std::size_t nextPoint_ = 0;
    ThreadId last_ = -1;
    unsigned streak_ = 0;
    std::uint64_t changePointsHit_ = 0;
    std::uint64_t demotions_ = 0;
};

class RoundRobinScheduler final : public SchedulerPolicy
{
  public:
    explicit RoundRobinScheduler(const SchedulerConfig &cfg)
        : quantum_(cfg.quantum ? cfg.quantum : 1)
    {
    }

    const char *name() const override { return "roundrobin"; }

    ThreadId
    pick(const SchedulerView &view) override
    {
        // Keep the current thread until its quantum of shared-memory
        // events expires, then rotate to the next runnable id.
        if (used_ < quantum_)
            for (int i = 0; i < view.n; ++i)
                if (view.runnable[i].id == current_) {
                    ++used_;
                    return current_;
                }
        for (int i = 0; i < view.n; ++i)
            if (view.runnable[i].id > current_) {
                current_ = view.runnable[i].id;
                used_ = 1;
                return current_;
            }
        current_ = view.runnable[0].id;
        used_ = 1;
        return current_;
    }

  private:
    unsigned quantum_;
    ThreadId current_ = -1;
    unsigned used_ = 0;
};

} // namespace

std::unique_ptr<SchedulerPolicy>
makeSchedulerPolicy(const SchedulerConfig &cfg, std::uint64_t machine_seed)
{
    std::uint64_t seed = cfg.seed
        ? cfg.seed
        : machine_seed * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull;
    switch (cfg.policy) {
      case SchedPolicy::MinClock:
        return std::make_unique<MinClockScheduler>();
      case SchedPolicy::MaxClock:
        return std::make_unique<MaxClockScheduler>(cfg);
      case SchedPolicy::RandomWalk:
        return std::make_unique<RandomWalkScheduler>(seed);
      case SchedPolicy::Pct:
        return std::make_unique<PctScheduler>(cfg, seed);
      case SchedPolicy::RoundRobin:
        return std::make_unique<RoundRobinScheduler>(cfg);
    }
    utm_fatal("unknown scheduler policy %d", static_cast<int>(cfg.policy));
}

void
ScheduleTrace::appendBlock(ThreadId tid, std::uint64_t count)
{
    if (!count)
        return;
    if (!blocks_.empty() && blocks_.back().tid == tid)
        blocks_.back().count += count;
    else
        blocks_.push_back({tid, count});
    steps_ += count;
}

void
ScheduleTrace::clear()
{
    blocks_.clear();
    steps_ = 0;
    crashStep_ = 0;
}

ScheduleTrace
ScheduleTrace::fromBlocks(const std::vector<Block> &blocks)
{
    ScheduleTrace t;
    for (const Block &b : blocks)
        t.appendBlock(b.tid, b.count);
    return t;
}

std::string
ScheduleTrace::serialize() const
{
    std::ostringstream os;
    // Crash-free traces keep the v1 rendering byte-identical so every
    // pre-existing trace file and pinned regression string round-trips.
    if (crashStep_ == 0)
        os << "ufotm-sched v1";
    else
        os << "ufotm-sched v2 crash=" << crashStep_;
    for (const Block &b : blocks_)
        os << ' ' << b.tid << 'x' << b.count;
    return os.str();
}

bool
ScheduleTrace::parse(const std::string &text, ScheduleTrace *out)
{
    std::istringstream is(text);
    std::string magic, version;
    if (!(is >> magic >> version) || magic != "ufotm-sched" ||
        (version != "v1" && version != "v2"))
        return false;
    ScheduleTrace t;
    std::string tok;
    if (version == "v2") {
        if (!(is >> tok) || tok.rfind("crash=", 0) != 0)
            return false;
        std::uint64_t crash = 0;
        auto r = std::from_chars(tok.data() + 6,
                                 tok.data() + tok.size(), crash);
        if (r.ec != std::errc{} || r.ptr != tok.data() + tok.size() ||
            crash == 0)
            return false;
        t.setCrashStep(crash);
    }
    while (is >> tok) {
        std::size_t x = tok.find('x');
        if (x == std::string::npos)
            return false;
        int tid = 0;
        std::uint64_t count = 0;
        auto r1 = std::from_chars(tok.data(), tok.data() + x, tid);
        auto r2 = std::from_chars(tok.data() + x + 1,
                                  tok.data() + tok.size(), count);
        if (r1.ec != std::errc{} || r1.ptr != tok.data() + x ||
            r2.ec != std::errc{} ||
            r2.ptr != tok.data() + tok.size() ||
            tid < 0 || tid >= kMaxThreads || count == 0)
            return false;
        t.appendBlock(static_cast<ThreadId>(tid), count);
    }
    *out = std::move(t);
    return true;
}

bool
ScheduleTrace::saveFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << serialize() << '\n';
    return bool(os);
}

bool
ScheduleTrace::loadFile(const std::string &path, ScheduleTrace *out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return parse(text, out);
}

ReplayScheduler::ReplayScheduler(ScheduleTrace trace)
    : trace_(std::move(trace))
{
}

ThreadId
ReplayScheduler::pick(const SchedulerView &view)
{
    const auto &blocks = trace_.blocks();
    while (block_ < blocks.size()) {
        ThreadId want = blocks[block_].tid;
        for (int i = 0; i < view.n; ++i)
            if (view.runnable[i].id == want) {
                if (++used_ >= blocks[block_].count) {
                    ++block_;
                    used_ = 0;
                }
                return want;
            }
        // The recorded thread finished earlier than in the original
        // run (the trace was minimized or hand-edited); skip the rest
        // of its block.
        ++divergences_;
        ++block_;
        used_ = 0;
    }
    return minClockPick(view);
}

void
ReplayScheduler::onRunEnd(StatsRegistry &stats)
{
    // Only report on divergence: a faithful replay must produce a
    // counter map byte-identical to the recorded run's.
    if (divergences_)
        stats.set("sched.replay_divergences", divergences_);
}

} // namespace utm
