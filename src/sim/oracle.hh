/**
 * @file
 * Invariant oracles for the tmtorture schedule-exploration harness.
 *
 * An oracle is a predicate over the whole simulated machine state that
 * must hold at every preemption point (i.e. between any two scheduling
 * steps, when no thread is mid-shared-memory-event).  Machine::run()
 * evaluates the registered oracles after each resume; a violation
 * aborts the run by throwing OracleViolation from the scheduler stack
 * (never across a fiber boundary), leaving the recorded schedule
 * available for replay and minimization.
 *
 * The oracles themselves live next to what they check: backends expose
 * TxSystem::oracleInvariantsHold() / oracleLineBusy(), and the
 * torture harness (src/torture) builds the shadow-memory
 * strong-atomicity oracle on top of Machine's commit-publication hook.
 */

#ifndef UFOTM_SIM_ORACLE_HH
#define UFOTM_SIM_ORACLE_HH

#include <cstdint>
#include <string>

namespace utm {

/** A machine-state invariant checked at preemption points. */
class InvariantOracle
{
  public:
    virtual ~InvariantOracle() = default;

    /** Stable identifier, e.g. "ustm-lockstep"; used in reports. */
    virtual const char *name() const = 0;

    /**
     * @return true if the invariant holds; on failure fill @p why
     * with a one-line deterministic description of the violation.
     */
    virtual bool check(std::string *why) = 0;
};

/**
 * Thrown by Machine::run() when an oracle check fails.  Deliberately
 * not a std::exception subclass: backend code catches those (e.g.
 * UstmAbortException handling) and must never swallow a violation.
 */
struct OracleViolation
{
    std::string oracle; ///< InvariantOracle::name() of the failed check.
    std::string why;    ///< Human-readable description.
    std::uint64_t step; ///< Scheduling step at which the check failed.
};

} // namespace utm

#endif // UFOTM_SIM_ORACLE_HH
