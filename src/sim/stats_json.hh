/**
 * @file
 * Structured stats export: serialize a StatsRegistry (or a whole
 * Machine plus run metadata) as schema-stable JSON.
 *
 * The full document layout — `run_config`, `totals`, `counters`,
 * `histograms`, `per_backend`, `per_thread` — is documented in
 * docs/OBSERVABILITY.md and validated by tools/check_stats_json.py;
 * keep the three in sync when changing any of them.
 */

#ifndef UFOTM_SIM_STATS_JSON_HH
#define UFOTM_SIM_STATS_JSON_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace utm {
class Machine;
class StatsRegistry;
} // namespace utm

namespace utm::stats {

/**
 * Current value of the top-level "schema_version" field.  v2 added
 * the `profile` and `contention` sections and
 * `per_thread[].phase_cycles` (docs/OBSERVABILITY.md).
 */
constexpr int kSchemaVersion = 2;

/** Caller-supplied identification of one run (the run_config core). */
struct RunMeta
{
    std::string workload; ///< e.g. "vacation-low"; empty = unknown.
    std::string system;   ///< txSystemKindName(); empty = unknown.
    int threads = 0;
    std::uint64_t seed = 0;
    double scale = 1.0;
    bool valid = true;    ///< Workload validation outcome.
    Cycles cycles = 0;    ///< Completion time.
};

/**
 * Serialize just the registry: {"counters":{...},"histograms":{...}}.
 * Counters are sorted by name; histograms carry samples/min/max/mean,
 * the p50/p90/p99 bucketed quantiles, and the non-empty buckets.
 */
std::string dumpJson(const StatsRegistry &reg);

/**
 * Serialize the full documented schema for @p machine: run_config
 * (meta + machine parameters), totals (cycles, commits, aborts,
 * failovers), the flat counter map, histograms, counters re-grouped
 * per backend prefix, and the per-thread clock/event table.
 */
std::string dumpJson(Machine &machine, const RunMeta &meta);

/** Write @p text to @p path ("-" = stdout). Returns success. */
bool writeFile(const std::string &path, const std::string &text);

} // namespace utm::stats

#endif // UFOTM_SIM_STATS_JSON_HH
