/**
 * @file
 * Deterministic cycle-accounting profiler and contention attribution.
 *
 * The stats layer counts *events*; the paper's Section 5 claims are
 * about *cycles* — barrier overhead, commit cost, stall time.  The
 * profiler charges every simulated cycle of every worker thread to a
 * phase via scoped annotations (UTM_PROF_PHASE) placed in the TM
 * backends.  Attribution is exclusive: a cycle is charged to the
 * innermost open phase scope, and cycles outside any scope accrue to
 * the `app` residual, so for each thread
 *
 *     sum over phases(cycles) + app == thread total cycles
 *
 * holds exactly.  Aggregates are exported as
 * `prof.cycles.<component>.<phase>` counters and surfaced in the
 * stats-JSON `profile` section; per-thread breakdowns appear as
 * `per_thread[].phase_cycles`.
 *
 * The profiler is purely observational — it never advances simulated
 * time — so enabling it cannot perturb an execution.  Configuring
 * with -DUFOTM_PROFILING=OFF defines UTM_PROFILING=0 and compiles
 * every UTM_PROF_PHASE site away, mirroring UFOTM_TRACING.
 *
 * This header also hosts the contention-attribution helpers: a
 * Misra–Gries top-K hot-line table (space-capped heavy hitters over
 * conflicting cache lines) and the otable chain-length /
 * row-lock-wait histograms, surfaced as the stats-JSON `contention`
 * section.  These are always compiled in (they are plain observation
 * calls, not scopes) so the schema does not vary across builds.
 */

#ifndef UFOTM_SIM_PROF_HH
#define UFOTM_SIM_PROF_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

#ifndef UTM_PROFILING
#define UTM_PROFILING 1
#endif

namespace utm {

class Machine;
class ThreadContext;

/** Which TM layer a phase scope belongs to. */
enum class ProfComp : std::uint8_t {
    Ustm,
    Btm,
    Tl2,
    HyTm,
    PhTm,
    Sle,
    Tm, ///< The hybrid dispatch layer (failover, retry backoff).
};
constexpr int kNumProfComps = 7;

/** What the thread is doing inside the scope. */
enum class ProfPhase : std::uint8_t {
    Begin,
    BarrierRead,
    BarrierWrite,
    Commit,
    AbortUnwind,
    Stall,
    Backoff,
    RetryWait,
    UfoHandler,
    OtableWalk,
    NonTx,
    Persist, ///< Durable-commit redo-log append + clwb/sfence drain.
};
constexpr int kNumProfPhases = 12;

const char *profCompName(ProfComp c);
const char *profPhaseName(ProfPhase p);

/** "<component>.<phase>" for a flattened slot index. */
std::string profSlotName(int slot);

/**
 * Per-thread phase-cycle accounting.
 *
 * Each thread carries a stack of open phase scopes and a low-water
 * mark (the thread-local cycle count at the last attribution event).
 * Every push/pop flushes the cycles since the mark to the scope that
 * was on top — or to the `app` residual when the stack is empty —
 * which makes attribution exclusive and the per-thread sum exact by
 * construction.
 */
class CycleProfiler
{
  public:
    static constexpr int kNumSlots = kNumProfComps * kNumProfPhases;
    static constexpr int kMaxDepth = 16;

    static constexpr int
    slot(ProfComp c, ProfPhase p)
    {
        return static_cast<int>(c) * kNumProfPhases +
               static_cast<int>(p);
    }

    /** Open a phase scope for thread @p t at thread-local time @p now. */
    void push(ThreadId t, Cycles now, ProfComp c, ProfPhase p);

    /** Close the innermost scope for thread @p t. */
    void pop(ThreadId t, Cycles now);

    /**
     * A thread's attribution with the pending span (cycles since the
     * last push/pop) charged, without mutating profiler state.  Safe
     * to call at any point; at @p now == the thread's final clock the
     * invariant sum(cycles) + app == total holds.
     */
    struct Snapshot
    {
        std::array<Cycles, kNumSlots> cycles{};
        Cycles app = 0;
    };
    Snapshot snapshot(ThreadId t, Cycles now) const;

    /**
     * Flush every worker thread at its final clock and export the
     * aggregate `prof.cycles.<component>.<phase>` (+ `prof.cycles.app`)
     * counters.  Called once by Machine::run() after the scheduler
     * loop drains.  No-op when compiled with UTM_PROFILING=0.
     */
    void finalize(Machine &machine);

  private:
    struct PerThread
    {
        std::array<Cycles, kNumSlots> cycles{};
        Cycles app = 0;
        Cycles lastMark = 0;
        std::array<std::int8_t, kMaxDepth> stack{};
        int depth = 0;
    };

    /** Charge [lastMark, now) to the innermost scope (or app). */
    void flushTo(PerThread &pt, Cycles now);

    std::array<PerThread, kMaxThreads> threads_{};
};

/**
 * RAII phase scope; create via UTM_PROF_PHASE.  Exception-safe: TM
 * abort paths throw through these, and stack unwinding closes the
 * scopes in LIFO order, keeping attribution consistent.
 */
class ProfScope
{
  public:
    ProfScope(Machine &machine, ThreadContext &tc, ProfComp c,
              ProfPhase p);
    ~ProfScope();

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    CycleProfiler &prof_;
    ThreadContext &tc_;
};

#if UTM_PROFILING
#define UTM_PROF_CONCAT2(a, b) a##b
#define UTM_PROF_CONCAT(a, b) UTM_PROF_CONCAT2(a, b)
#define UTM_PROF_PHASE(machine, tc, comp, phase)                        \
    ::utm::ProfScope UTM_PROF_CONCAT(utm_prof_scope_, __LINE__)(        \
        (machine), (tc), (comp), (phase))
#else
#define UTM_PROF_PHASE(machine, tc, comp, phase) ((void)0)
#endif

/**
 * Misra–Gries heavy-hitters table over cache-line addresses: at most
 * @p k candidate lines are tracked regardless of how many distinct
 * lines conflict.  Guarantees sum(stored counts) <= observed(), and
 * any line with true frequency > observed()/(k+1) is present — which
 * is exactly the "which lines are hot" question with bounded space.
 */
class HotLineTable
{
  public:
    static constexpr int kDefaultK = 16;

    explicit HotLineTable(int k = kDefaultK) : k_(k) {}

    void observe(LineAddr line);

    struct Entry
    {
        LineAddr line;
        std::uint64_t count;
    };

    /** Tracked lines, count-descending (ties by ascending line). */
    std::vector<Entry> top() const;

    std::uint64_t observed() const { return observed_; }

  private:
    int k_;
    std::uint64_t observed_ = 0;
    std::unordered_map<LineAddr, std::uint64_t> counts_;
};

/**
 * Contention attribution owned by the Machine: per-backend hot-line
 * tables plus otable shape/wait histograms, exported as the
 * stats-JSON `contention` section.
 */
class ContentionTracker
{
  public:
    /** Lines observed at USTM conflict resolution (<= ustm.conflicts). */
    HotLineTable &ustmHotLines() { return ustm_; }
    const HotLineTable &ustmHotLines() const { return ustm_; }

    /** Lines observed at BTM spec-conflict wounds (<= btm.wounds). */
    HotLineTable &btmHotLines() { return btm_; }
    const HotLineTable &btmHotLines() const { return btm_; }

    /** Otable chain length after each chain insert (aliasing depth). */
    Histogram &chainLen() { return chainLen_; }
    const Histogram &chainLen() const { return chainLen_; }

    /** Cycles spent waiting on contended otable rows per barrier. */
    Histogram &rowLockWait() { return rowLockWait_; }
    const Histogram &rowLockWait() const { return rowLockWait_; }

  private:
    HotLineTable ustm_;
    HotLineTable btm_;
    Histogram chainLen_;
    Histogram rowLockWait_;
};

} // namespace utm

#endif // UFOTM_SIM_PROF_HH
