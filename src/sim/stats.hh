/**
 * @file
 * Lightweight named-counter statistics registry.
 *
 * Components bump counters by name ("btm.aborts.set_overflow", ...); bench
 * harnesses read them back to print the paper's tables.  Counters are
 * created on first use.
 */

#ifndef UFOTM_SIM_STATS_HH
#define UFOTM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace utm {

/** Power-of-two-bucketed histogram of 64-bit samples. */
class Histogram
{
  public:
    static constexpr int kBuckets = 33; ///< bucket i: [2^(i-1), 2^i).

    void observe(std::uint64_t value);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return samples_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /** Count in bucket @p i (i in [0, kBuckets)). */
    std::uint64_t
    bucketCount(int i) const
    {
        return buckets_[i];
    }

    /** Upper bound (inclusive) of bucket @p i's value range. */
    static std::uint64_t
    bucketUpperBound(int i)
    {
        return i == 0 ? 0 : (std::uint64_t(1) << i) - 1;
    }

    /** Lower bound (inclusive) of bucket @p i's value range. */
    static std::uint64_t
    bucketLowerBound(int i)
    {
        return i == 0 ? 0 : std::uint64_t(1) << (i - 1);
    }

    /** Bucketed quantile (upper bound of the bucket holding @p q). */
    std::uint64_t quantile(double q) const;

    /** Samples strictly greater than @p threshold. */
    std::uint64_t countAbove(std::uint64_t threshold) const;

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/** A registry of named 64-bit counters. */
class StatsRegistry
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if new. */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Record a sample in the named histogram. */
    void observe(const std::string &name, std::uint64_t value);

    /** Read a histogram; an empty one if never observed. */
    const Histogram &histogram(const std::string &name) const;

    /** Set counter @p name to @p value. */
    void set(const std::string &name, std::uint64_t value);

    /** Read counter @p name; zero if it was never touched. */
    std::uint64_t get(const std::string &name) const;

    /** All counters whose names start with @p prefix, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>>
    withPrefix(const std::string &prefix) const;

    /** Reset every counter to zero (names are retained). */
    void clear();

    /** Render all counters, one "name value" line each. */
    std::string dump() const;

    /** @name Whole-registry views (JSON export). @{ */
    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }

    const std::map<std::string, Histogram> &
    histograms() const
    {
        return histograms_;
    }
    /** @} */

    /** Sum of every counter whose name starts with @p prefix. */
    std::uint64_t sumWithPrefix(const std::string &prefix) const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace utm

#endif // UFOTM_SIM_STATS_HH
