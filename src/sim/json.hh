/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Shared by the stats exporter (sim/stats_json), the trace exporter
 * (sim/trace), and the bench harness (bench/bench_util).  No external
 * dependency; emits UTF-8 with escaped control characters and
 * caller-controlled key order, so output is byte-stable for a given
 * call sequence.
 */

#ifndef UFOTM_SIM_JSON_HH
#define UFOTM_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace utm::json {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string escape(const std::string &s);

/** Render a double as a JSON number (finite; else "0"). */
std::string number(double v);

/**
 * Streaming writer with automatic comma placement.
 *
 *   Writer w;
 *   w.beginObject();
 *   w.kv("a", 1).key("b").beginArray().value("x").endArray();
 *   w.endObject();
 *   w.str();  // {"a":1,"b":["x"]}
 */
class Writer
{
  public:
    Writer &beginObject();
    Writer &endObject();
    Writer &beginArray();
    Writer &endArray();

    /** Emit an object key; must be followed by a value/container. */
    Writer &key(const std::string &k);

    /** @name Values (position-checked by the container stack). @{ */
    Writer &value(std::uint64_t v);
    Writer &value(std::int64_t v);
    Writer &value(int v) { return value(std::int64_t(v)); }
    Writer &value(unsigned v) { return value(std::uint64_t(v)); }
    Writer &value(double v);
    Writer &value(bool v);
    Writer &value(const char *v);
    Writer &value(const std::string &v);
    /** Splice a pre-rendered JSON fragment as one value. */
    Writer &raw(const std::string &json);
    /** @} */

    /** key(k) + value(v) in one call. */
    template <typename T>
    Writer &
    kv(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** The document rendered so far. */
    const std::string &str() const { return out_; }

  private:
    void beforeValue();

    std::string out_;
    /** One entry per open container: element count written so far. */
    std::vector<int> stack_;
    bool pendingKey_ = false;
};

} // namespace utm::json

#endif // UFOTM_SIM_JSON_HH
