#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace utm {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    utm_assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    utm_assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

namespace {

/** ζ(n, θ) = Σ_{i=1..n} i^-θ. */
double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += std::pow(1.0 / double(i), theta);
    return sum;
}

} // namespace

Zipfian::Zipfian(std::uint64_t n, double theta) : n_(n), theta_(theta)
{
    utm_assert(n >= 1);
    utm_assert(theta >= 0.0 && theta < 1.0);
    alpha_ = 1.0 / (1.0 - theta);
    zetan_ = zeta(n, theta);
    eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
           (1.0 - zeta(2, theta) / zetan_);
}

std::uint64_t
Zipfian::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (n_ >= 2 && uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto rank = std::uint64_t(
        double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank; // Clamp FP rounding at the tail.
}

} // namespace utm
