/**
 * @file
 * Pluggable scheduling policies for the deterministic fiber scheduler.
 *
 * Machine::run() resumes one thread at a time; a thread runs until its
 * next shared-memory event (every simulated access yields first), so
 * one "scheduling step" is exactly one shared-memory-event-granular
 * slice.  The policy decides which runnable thread takes the next
 * slice.  All policies are deterministic functions of their seed and
 * the observed sequence of runnable sets, which keeps every run
 * bit-reproducible and replayable.
 *
 * Policies:
 *   MinClock   - resume the unfinished thread with the smallest local
 *                clock (ties: lowest id).  The default; preserves the
 *                seed repository's bit-exact behaviour, and is the only
 *                policy under which events complete in
 *                simulated-timestamp order.
 *   MaxClock   - adversarial inversion of MinClock: always run the
 *                thread that is furthest ahead, maximizing timestamp
 *                disorder.  A starvation bound forces one MinClock pick
 *                after `starvationBound` consecutive slices of the same
 *                thread so blocking waits still terminate.
 *   RandomWalk - uniformly random runnable thread each step.
 *   Pct        - PCT-style priority scheduling (Burckhardt et al.,
 *                ASPLOS 2010): random distinct priorities, highest
 *                runnable priority runs; at `pctChangePoints` seeded
 *                step numbers the running thread's priority drops to
 *                lowest.  The same starvation bound as MaxClock demotes
 *                a thread that spins too long, so blocking STM waits
 *                cannot livelock the schedule.
 *   RoundRobin - cycle through runnable threads by id, preempting the
 *                current thread every `quantum` shared-memory events.
 *
 * Record/replay: Machine can record the picked-thread sequence as a
 * run-length-encoded ScheduleTrace; ReplayScheduler re-issues a trace
 * verbatim (falling back to MinClock past its end or across removed
 * blocks), which makes any recorded run -- in particular a failing
 * torture run -- bit-identical on replay.
 */

#ifndef UFOTM_SIM_SCHEDULER_HH
#define UFOTM_SIM_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace utm {

class StatsRegistry;

/** Which SchedulerPolicy Machine::run() uses. */
enum class SchedPolicy
{
    MinClock,
    MaxClock,
    RandomWalk,
    Pct,
    RoundRobin,
};

const char *schedPolicyName(SchedPolicy p);

/** Parse a policy name ("minclock", "random", ...); false if unknown. */
bool parseSchedPolicy(const std::string &name, SchedPolicy *out);

/** Scheduler selection + knobs; part of MachineConfig. */
struct SchedulerConfig
{
    SchedPolicy policy = SchedPolicy::MinClock;

    /** Policy RNG seed; 0 derives one from MachineConfig::seed. */
    std::uint64_t seed = 0;

    /** RoundRobin: shared-memory events per slice before preempting. */
    unsigned quantum = 8;

    /** Pct: number of seeded priority change points. */
    unsigned pctChangePoints = 8;

    /** Pct: change points are sampled uniformly in [1, this]. */
    std::uint64_t pctExpectedSteps = 1u << 18;

    /**
     * MaxClock/Pct: after this many consecutive slices of one thread
     * while others are runnable, force a fairness pick so blocking
     * waits (stall polls, victim-unwind loops) still terminate.
     */
    unsigned starvationBound = 256;

    /**
     * Test-only: keep the PCT starvation bound fixed instead of
     * re-drawing it after each demotion, re-creating the phase-locked
     * demotion livelock tmtorture pinned (PctDemotionPhaseLock) so
     * the stall watchdog can be proven against it.
     */
    bool testOnlyFixedPctBound = false;
};

/** What a policy sees when asked for the next thread. */
struct SchedulerView
{
    struct Runnable
    {
        ThreadId id;
        Cycles clock;
    };

    const Runnable *runnable; ///< In ascending id order.
    int n;                    ///< Always >= 1.
    std::uint64_t step;       ///< Global scheduling step number.
};

/** Abstract scheduling policy. */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    virtual const char *name() const = 0;

    /** Pick the id of one of view.runnable. */
    virtual ThreadId pick(const SchedulerView &view) = 0;

    /** End-of-run hook for policy-specific counters. */
    virtual void onRunEnd(StatsRegistry &stats);
};

/** Build a policy from config; @p machine_seed feeds derived seeding. */
std::unique_ptr<SchedulerPolicy>
makeSchedulerPolicy(const SchedulerConfig &cfg,
                    std::uint64_t machine_seed);

/**
 * A recorded schedule: the sequence of thread ids picked by the
 * scheduler, run-length encoded.  Compact, diffable, and serializable
 * ("ufotm-sched v1" text format) for failure reports and replay files.
 *
 * A crash-torture run additionally records its injected crash step
 * (Machine::setCrashStep) so the whole failure — schedule AND crash
 * point — replays from one artifact.  A trace with a crash step
 * serializes as "ufotm-sched v2 crash=<K> ..."; a trace without one
 * stays byte-identical to the v1 format, so every pre-existing trace
 * file and pinned regression string round-trips unchanged.
 */
class ScheduleTrace
{
  public:
    struct Block
    {
        ThreadId tid;
        std::uint64_t count;

        bool operator==(const Block &) const = default;
    };

    void
    append(ThreadId tid)
    {
        if (!blocks_.empty() && blocks_.back().tid == tid)
            ++blocks_.back().count;
        else
            blocks_.push_back({tid, 1});
        ++steps_;
    }

    void appendBlock(ThreadId tid, std::uint64_t count);

    std::uint64_t steps() const { return steps_; }
    bool empty() const { return blocks_.empty(); }
    const std::vector<Block> &blocks() const { return blocks_; }

    /** Injected crash step of a crash-torture run; 0 = no crash. */
    std::uint64_t crashStep() const { return crashStep_; }
    void setCrashStep(std::uint64_t step) { crashStep_ = step; }

    void clear();

    /** Rebuild from a block list (normalizes adjacent same-tid runs). */
    static ScheduleTrace fromBlocks(const std::vector<Block> &blocks);

    /** One-line "ufotm-sched v1 <tid>x<count> ..." rendering (v2 with
     *  a leading "crash=<K>" field when a crash step is set). */
    std::string serialize() const;
    static bool parse(const std::string &text, ScheduleTrace *out);

    bool saveFile(const std::string &path) const;
    static bool loadFile(const std::string &path, ScheduleTrace *out);

    bool operator==(const ScheduleTrace &) const = default;

  private:
    std::vector<Block> blocks_;
    std::uint64_t steps_ = 0;
    std::uint64_t crashStep_ = 0;
};

/**
 * Replays a recorded ScheduleTrace.  Each step resumes the next
 * recorded thread; a recorded thread that is no longer runnable (a
 * minimization removed the block that would have kept it alive, or the
 * trace came from a divergent run) has its remaining block skipped and
 * counted as a divergence.  Past the end of the trace the policy
 * degrades to MinClock, so truncated traces remain executable.
 */
class ReplayScheduler final : public SchedulerPolicy
{
  public:
    explicit ReplayScheduler(ScheduleTrace trace);

    const char *name() const override { return "replay"; }
    ThreadId pick(const SchedulerView &view) override;
    void onRunEnd(StatsRegistry &stats) override;

    std::uint64_t divergences() const { return divergences_; }

  private:
    ScheduleTrace trace_;
    std::size_t block_ = 0;
    std::uint64_t used_ = 0; ///< Steps consumed from current block.
    std::uint64_t divergences_ = 0;
};

} // namespace utm

#endif // UFOTM_SIM_SCHEDULER_HH
