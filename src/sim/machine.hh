/**
 * @file
 * The top-level simulated machine: memory hierarchy, cores/threads,
 * and the deterministic cooperative scheduler.
 *
 * Scheduling is delegated to a pluggable SchedulerPolicy
 * (sim/scheduler.hh).  The default, MinClock, always resumes the
 * unfinished thread with the smallest local clock (ties broken by
 * thread id); combined with the rule that every shared-memory access
 * is a single atomic event, this makes runs bit-reproducible for a
 * given seed.  Alternative policies (random-walk, PCT, max-clock,
 * round-robin) deliberately explore other interleavings — equally
 * deterministically — for the tmtorture harness, which also uses the
 * schedule record/replay and invariant-oracle hooks here.
 */

#ifndef UFOTM_SIM_MACHINE_HH
#define UFOTM_SIM_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/persist.hh"
#include "mem/sim_memory.hh"
#include "sim/config.hh"
#include "sim/prof.hh"
#include "sim/scheduler.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"
#include "sim/thread_context.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace utm {

class InvariantOracle;
class MemorySystem;

/** A simulated multicore machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg = MachineConfig{});
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    /**
     * Add a simulated thread; ids are assigned 0, 1, ... in call
     * order. All threads must be added before run().
     */
    ThreadContext &addThread(ThreadContext::Fn fn);

    /** Run the scheduler until every thread's entry fn returns. */
    void run();

    /**
     * Override the scheduling policy (default: built from
     * config().sched).  Must be called before run().
     */
    void setSchedulerPolicy(std::unique_ptr<SchedulerPolicy> policy);

    /** @name Schedule recording (tmtorture record/replay). @{ */
    void recordSchedule(bool on) { recording_ = on; }
    const ScheduleTrace &recordedSchedule() const { return schedule_; }
    /** @} */

    /**
     * @name Invariant oracles (sim/oracle.hh).
     *
     * Registered oracles are evaluated every @p interval scheduling
     * steps, at preemption points only; a failed check throws
     * OracleViolation out of run().  Oracles are borrowed, not owned.
     * @{
     */
    void addOracle(InvariantOracle *oracle) { oracles_.push_back(oracle); }
    void clearOracles() { oracles_.clear(); }
    void setOracleInterval(std::uint64_t interval)
    {
        oracleInterval_ = interval ? interval : 1;
    }
    /** @} */

    /**
     * @name Commit-publication hook.
     *
     * Every backend calls notifyCommitPoint() at its commit
     * linearization point — the moment an attempt's writes become
     * logically final (USTM: status ➔ Committing; BTM: past the doom
     * check, before clearing speculative state; TL2: after read-set
     * validation passes).  The torture harness uses this to publish
     * the attempt's pending writes into its shadow memory in commit
     * order.  No-op unless a hook is installed.
     * @{
     */
    void setCommitPublishHook(std::function<void(ThreadContext &)> fn)
    {
        commitPublish_ = std::move(fn);
    }

    void
    notifyCommitPoint(ThreadContext &tc)
    {
        // Durable runs stamp the commit timestamp first, so the
        // publish hook can read persist().lastCommitTs().
        if (persist_.active())
            persist_.assignCommitTs(tc.id());
        telemetry_.onCommit(tc.id());
        if (commitPublish_)
            commitPublish_(tc);
    }
    /** @} */

    /**
     * @name Crash injection (crash-torture harness).
     *
     * When armed, run() stops abruptly after the given scheduling
     * step: fibers are abandoned where they stand, no end-of-run
     * finalization happens, and crashed() reports true.  The only
     * state the harness may then trust is host-side — the recorded
     * schedule and the persistence domain's image.
     * @{
     */
    void setCrashStep(std::uint64_t step) { crashStep_ = step; }
    std::uint64_t crashStep() const { return crashStep_; }
    bool crashed() const { return crashed_; }
    /** @} */

    /** Scheduling steps taken so far (== shared-memory-event slices). */
    std::uint64_t schedSteps() const { return steps_; }

    /**
     * A context for untimed-ish setup/verification performed outside
     * the scheduler (tests, workload result checking).  It shares the
     * machine's memory system but never yields.
     */
    ThreadContext &initContext();

    /** Global transaction begin-sequence counter (age-based CM). */
    std::uint64_t nextTxSeq() { return txSeq_++; }

    const MachineConfig &config() const { return cfg_; }
    SimMemory &memory() { return mem_; }
    MemorySystem &memsys() { return *msys_; }
    PersistDomain &persist() { return persist_; }
    const PersistDomain &persist() const { return persist_; }
    StatsRegistry &stats() { return stats_; }
    TxTracer &tracer() { return tracer_; }
    CycleProfiler &profiler() { return prof_; }
    ContentionTracker &contention() { return contention_; }
    TelemetryBus &telemetry() { return telemetry_; }

    int numThreads() const { return static_cast<int>(threads_.size()); }
    ThreadContext &thread(ThreadId t) { return *threads_.at(t); }

    /** Completion time: max final clock across worker threads. */
    Cycles completionTime() const;

  private:
    void runOracles();

    MachineConfig cfg_;
    SimMemory mem_;
    StatsRegistry stats_;
    TxTracer tracer_;
    CycleProfiler prof_;
    ContentionTracker contention_;
    TelemetryBus telemetry_;
    PersistDomain persist_;
    std::unique_ptr<MemorySystem> msys_;
    std::vector<std::unique_ptr<ThreadContext>> threads_;
    std::unique_ptr<ThreadContext> initCtx_;
    std::unique_ptr<SchedulerPolicy> sched_;
    ScheduleTrace schedule_;
    std::vector<InvariantOracle *> oracles_;
    std::function<void(ThreadContext &)> commitPublish_;
    std::uint64_t oracleInterval_ = 1;
    std::uint64_t oracleChecks_ = 0;
    std::uint64_t steps_ = 0;
    std::uint64_t preemptions_ = 0;
    ThreadId lastPick_ = -1;
    std::uint64_t txSeq_ = 1;
    std::uint64_t crashStep_ = 0;
    bool crashed_ = false;
    bool recording_ = false;
    bool running_ = false;
};

} // namespace utm

#endif // UFOTM_SIM_MACHINE_HH
