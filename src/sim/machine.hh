/**
 * @file
 * The top-level simulated machine: memory hierarchy, cores/threads,
 * and the deterministic cooperative scheduler.
 *
 * Scheduling rule: always resume the unfinished thread with the
 * smallest local clock (ties broken by thread id).  Combined with the
 * rule that every shared-memory access is a single atomic event, this
 * makes runs bit-reproducible for a given seed.
 */

#ifndef UFOTM_SIM_MACHINE_HH
#define UFOTM_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/sim_memory.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/thread_context.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace utm {

class MemorySystem;

/** A simulated multicore machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg = MachineConfig{});
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    /**
     * Add a simulated thread; ids are assigned 0, 1, ... in call
     * order. All threads must be added before run().
     */
    ThreadContext &addThread(ThreadContext::Fn fn);

    /** Run the scheduler until every thread's entry fn returns. */
    void run();

    /**
     * A context for untimed-ish setup/verification performed outside
     * the scheduler (tests, workload result checking).  It shares the
     * machine's memory system but never yields.
     */
    ThreadContext &initContext();

    /** Global transaction begin-sequence counter (age-based CM). */
    std::uint64_t nextTxSeq() { return txSeq_++; }

    const MachineConfig &config() const { return cfg_; }
    SimMemory &memory() { return mem_; }
    MemorySystem &memsys() { return *msys_; }
    StatsRegistry &stats() { return stats_; }
    TxTracer &tracer() { return tracer_; }

    int numThreads() const { return static_cast<int>(threads_.size()); }
    ThreadContext &thread(ThreadId t) { return *threads_.at(t); }

    /** Completion time: max final clock across worker threads. */
    Cycles completionTime() const;

  private:
    MachineConfig cfg_;
    SimMemory mem_;
    StatsRegistry stats_;
    TxTracer tracer_;
    std::unique_ptr<MemorySystem> msys_;
    std::vector<std::unique_ptr<ThreadContext>> threads_;
    std::unique_ptr<ThreadContext> initCtx_;
    std::uint64_t txSeq_ = 1;
    bool running_ = false;
};

} // namespace utm

#endif // UFOTM_SIM_MACHINE_HH
