#include "sim/telemetry.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "sim/json.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

namespace {

/**
 * Quantile over a delta bucket array, replicating
 * Histogram::quantile() exactly (rank-based bucket upper bound) so a
 * whole-run window reports the same value the end-of-run histogram
 * does.
 */
std::uint64_t
bucketQuantile(const std::uint64_t *buckets, std::uint64_t samples,
               double q)
{
    if (samples == 0)
        return 0;
    const std::uint64_t target =
        std::uint64_t(q * double(samples - 1)) + 1;
    std::uint64_t seen = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        seen += buckets[b];
        if (seen >= target)
            return Histogram::bucketUpperBound(b);
    }
    return Histogram::bucketUpperBound(Histogram::kBuckets - 1);
}

} // namespace

void
TopKTable::observe(std::uint64_t key)
{
    ++observed_;
    for (Entry &e : slots_) {
        if (e.key == key) {
            ++e.count;
            return;
        }
    }
    if (static_cast<int>(slots_.size()) < k_) {
        slots_.push_back({key, 1});
        return;
    }
    // Misra–Gries miss on a full table: decrement every slot and drop
    // the ones that reach zero (the arriving key is not stored).
    for (Entry &e : slots_)
        --e.count;
    slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                                [](const Entry &e) {
                                    return e.count == 0;
                                }),
                 slots_.end());
}

std::vector<TopKTable::Entry>
TopKTable::top() const
{
    std::vector<Entry> out = slots_;
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) {
                  return a.count != b.count ? a.count > b.count
                                            : a.key < b.key;
              });
    return out;
}

void
TopKTable::clear()
{
    slots_.clear();
    observed_ = 0;
}

void
TelemetryBus::configure(Machine &machine, const TelemetryConfig &cfg)
{
    machine_ = &machine;
    cfg_ = cfg;
    enabled_ = cfg.enabled && cfg.windowCycles > 0;
    hotLines_ = TopKTable(cfg.topK);
    sitePairs_ = TopKTable(cfg.topK);
}

void
TelemetryBus::step(ThreadId tid, Cycles clock)
{
    if (tid >= 0 && tid < kMaxThreads)
        ++threadWindow_[tid].steps;
    // The window clock follows the frontier (max thread clock seen):
    // events are attributed to the window open when they happen, and
    // the window rolls when the running thread's clock crosses the
    // next boundary.  A laggard's events land in the frontier window.
    const std::uint64_t wid = clock / cfg_.windowCycles;
    if (wid > curWindow_) {
        closeWindow();
        curWindow_ = wid;
    }
}

void
TelemetryBus::recordConflictEdge(const char *backend,
                                 const ConflictEdge &e)
{
    if (!enabled_)
        return;
    ++winEdges_;
    if (backend[0] == 'b') {
        ++winEdgesBtm_;
        ++edgesBtm_;
    } else {
        ++winEdgesUstm_;
        ++edgesUstm_;
    }
    hotLines_.observe(e.line);
    sitePairs_.observe((std::uint64_t(e.aggressorSite) << 32) |
                       std::uint64_t(e.victimSite));
}

void
TelemetryBus::onUfoTrapEdge(ThreadContext &victim, LineAddr line)
{
    if (!enabled_ || !ownerResolver_)
        return;
    std::uint64_t owners = ownerResolver_(victim, line);
    owners &= ~(std::uint64_t(1) << victim.id());
    if (owners == 0)
        return;
    const int agg = std::countr_zero(owners);
    if (agg >= machine_->numThreads())
        return;
    ConflictEdge e;
    e.aggressor = static_cast<ThreadId>(agg);
    e.aggressorSite = machine_->thread(e.aggressor).currentSite();
    e.victim = victim.id();
    e.victimSite = victim.currentSite();
    e.line = line;
    recordConflictEdge("btm", e);
}

void
TelemetryBus::evalWatchdog(WindowRecord *rec)
{
    const int n = machine_->numThreads();
    std::uint64_t totalSteps = 0;
    std::uint64_t totalCommits = 0;
    bool anyInAtomic = false;
    for (int t = 0; t < n; ++t) {
        totalSteps += threadWindow_[t].steps;
        totalCommits += threadWindow_[t].commits;
        anyInAtomic = anyInAtomic || machine_->thread(t).inAtomic();
    }
    for (int t = 0; t < n; ++t) {
        const ThreadWindow &tw = threadWindow_[t];
        if (tw.steps == 0)
            continue; // Not scheduled this window: streak unchanged.
        // Per-thread starvation: aborting without ever committing,
        // in windows where *nothing on the machine* commits.  A
        // thread aborting while others make progress is not stall
        // evidence — priority schedulers (PCT) starve low-priority
        // threads that way by design for many consecutive windows in
        // perfectly healthy runs.  Gating on machine-wide progress
        // keeps the watchdog silent there while still naming the
        // aborting culprits when the system as a whole seizes up.
        if (tw.commits == 0 && tw.aborts > 0 && totalCommits == 0) {
            if (++starveStreak_[t] >= cfg_.watchdogWindows) {
                rec->starvedThreads.push_back(t);
                episodes_.push_back({curWindow_, t});
                starveStreak_[t] = 0;
                if (!stalled_) {
                    stalled_ = true;
                    std::ostringstream os;
                    os << "thread " << t << " aborted through "
                       << cfg_.watchdogWindows
                       << " consecutive commit-free windows, "
                          "ending at window " << curWindow_;
                    stallWhy_ = os.str();
                }
            }
        } else {
            starveStreak_[t] = 0;
        }
    }
    if (totalSteps > 0 && totalCommits == 0 && anyInAtomic) {
        if (++globalStreak_ >= cfg_.watchdogWindows) {
            rec->globalStall = true;
            episodes_.push_back({curWindow_, -1});
            globalStreak_ = 0;
            if (!stalled_) {
                stalled_ = true;
                std::ostringstream os;
                os << "no thread committed in " << cfg_.watchdogWindows
                   << " consecutive windows while at least one was "
                      "inside atomic, ending at window " << curWindow_;
                stallWhy_ = os.str();
            }
        }
    } else {
        globalStreak_ = 0;
    }
}

void
TelemetryBus::captureWindow(WindowRecord *rec)
{
    const StatsRegistry &reg = machine_->stats();

    for (const auto &[name, value] : reg.counters()) {
        const auto it = counterSnap_.find(name);
        const std::uint64_t last =
            it == counterSnap_.end() ? 0 : it->second;
        if (value > last)
            rec->counters[name] = value - last;
    }
    counterSnap_ = reg.counters();

    for (const auto &[name, h] : reg.histograms()) {
        HistSnapshot &snap = histSnap_[name];
        const std::uint64_t deltaSamples = h.samples() - snap.samples;
        if (deltaSamples > 0) {
            std::uint64_t delta[Histogram::kBuckets];
            for (int b = 0; b < Histogram::kBuckets; ++b)
                delta[b] = h.bucketCount(b) - snap.buckets[b];
            HistDelta d;
            d.samples = deltaSamples;
            d.sum = h.sum() - snap.sum;
            d.p50 = bucketQuantile(delta, deltaSamples, 0.50);
            d.p90 = bucketQuantile(delta, deltaSamples, 0.90);
            d.p99 = bucketQuantile(delta, deltaSamples, 0.99);
            rec->hists[name] = d;
        }
        for (int b = 0; b < Histogram::kBuckets; ++b)
            snap.buckets[b] = h.bucketCount(b);
        snap.samples = h.samples();
        snap.sum = h.sum();
    }

    const int n = machine_->numThreads();
    for (int t = 0; t < n; ++t) {
        ThreadWindow &tw = threadWindow_[t];
        if (tw.steps || tw.commits || tw.aborts)
            rec->threads.emplace_back(t, tw);
        tw = ThreadWindow{};
    }

    rec->edges = winEdges_;
    rec->edgesBtm = winEdgesBtm_;
    rec->edgesUstm = winEdgesUstm_;
    rec->hotLines = hotLines_.top();
    rec->sitePairs = sitePairs_.top();
    winEdges_ = winEdgesBtm_ = winEdgesUstm_ = 0;
    hotLines_.clear();
    sitePairs_.clear();
}

void
TelemetryBus::closeWindow()
{
    WindowRecord rec;
    rec.id = curWindow_;
    evalWatchdog(&rec);
    captureWindow(&rec);
    windows_.push_back(std::move(rec));
}

void
TelemetryBus::finalize()
{
    if (!enabled_ || finalized_)
        return;
    finalized_ = true;

    WindowRecord rec;
    rec.id = curWindow_;
    // Watchdog first, so a final-window episode is reflected in the
    // watchdog.* counters below ...
    evalWatchdog(&rec);

    std::uint64_t epThread = 0;
    std::uint64_t epGlobal = 0;
    for (const Episode &ep : episodes_)
        (ep.thread < 0 ? epGlobal : epThread)++;
    StatsRegistry &stats = machine_->stats();
    stats.set("conflict.edges", edgesBtm_ + edgesUstm_);
    stats.set("conflict.edges.btm", edgesBtm_);
    stats.set("conflict.edges.ustm", edgesUstm_);
    stats.set("watchdog.episodes", epThread + epGlobal);
    stats.set("watchdog.episodes.thread", epThread);
    stats.set("watchdog.episodes.global", epGlobal);

    // ... and delta capture last, so the exported counters (and the
    // run-end sched.*/prof.* sets) land in the final window — keeping
    // the invariant that per-window deltas sum exactly to totals.
    captureWindow(&rec);
    if (!rec.counters.empty() || !rec.hists.empty() ||
        !rec.threads.empty() || rec.edges || !rec.starvedThreads.empty() ||
        rec.globalStall) {
        windows_.push_back(std::move(rec));
    }
    totals_ = stats.counters();
}

std::string
TelemetryBus::dumpJson() const
{
    json::Writer w;
    w.beginObject();
    w.kv("schema", "ufotm-timeline");
    w.kv("schema_version", 1);
    w.kv("window_cycles", cfg_.windowCycles);

    w.key("windows").beginArray();
    for (const WindowRecord &rec : windows_) {
        w.beginObject();
        w.kv("window", rec.id);
        w.kv("start_cycle", rec.id * cfg_.windowCycles);
        w.kv("end_cycle", (rec.id + 1) * cfg_.windowCycles - 1);

        w.key("counters").beginObject();
        for (const auto &[name, delta] : rec.counters)
            w.kv(name, delta);
        w.endObject();

        w.key("histograms").beginObject();
        for (const auto &[name, d] : rec.hists) {
            w.key(name).beginObject();
            w.kv("samples", d.samples);
            w.kv("sum", d.sum);
            w.kv("p50", d.p50);
            w.kv("p90", d.p90);
            w.kv("p99", d.p99);
            w.endObject();
        }
        w.endObject();

        w.key("threads").beginArray();
        for (const auto &[tid, tw] : rec.threads) {
            w.beginObject();
            w.kv("id", tid);
            w.kv("steps", tw.steps);
            w.kv("commits", tw.commits);
            w.kv("aborts", tw.aborts);
            w.endObject();
        }
        w.endArray();

        w.key("conflicts").beginObject();
        w.kv("edges", rec.edges);
        w.kv("edges_btm", rec.edgesBtm);
        w.kv("edges_ustm", rec.edgesUstm);
        w.key("hot_lines").beginArray();
        for (const auto &e : rec.hotLines) {
            w.beginObject();
            w.kv("line", e.key);
            w.kv("count", e.count);
            w.endObject();
        }
        w.endArray();
        w.key("sites").beginArray();
        for (const auto &e : rec.sitePairs) {
            w.beginObject();
            w.kv("aggressor_site",
                 std::uint64_t(e.key >> 32));
            w.kv("victim_site",
                 std::uint64_t(e.key & 0xffffffffu));
            w.kv("count", e.count);
            w.endObject();
        }
        w.endArray();
        w.endObject();

        if (!rec.starvedThreads.empty() || rec.globalStall) {
            w.key("watchdog").beginObject();
            w.key("starved_threads").beginArray();
            for (int t : rec.starvedThreads)
                w.value(t);
            w.endArray();
            w.kv("global_stall", rec.globalStall);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();

    w.key("totals").beginObject();
    for (const auto &[name, value] : totals_)
        w.kv(name, value);
    w.endObject();

    w.key("watchdog").beginObject();
    w.kv("threshold_windows", std::uint64_t(cfg_.watchdogWindows));
    w.kv("stalled", stalled_);
    w.kv("why", stallWhy_);
    w.key("episodes").beginArray();
    for (const Episode &ep : episodes_) {
        w.beginObject();
        w.kv("window", ep.window);
        w.kv("thread", ep.thread);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
    return w.str();
}

} // namespace utm
