#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace utm {

std::string
vformatString(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

namespace {
bool warningsSuppressed = false;
} // namespace

void
setWarningsSuppressed(bool on)
{
    warningsSuppressed = on;
}

void
warnImpl(const char *fmt, ...)
{
    if (warningsSuppressed)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace utm
