/**
 * @file
 * Machine configuration (the paper's Table 4).
 *
 * Latencies follow the paper's simulated system where stated; where the
 * scanned table is incomplete we use representative 2008-era values and
 * document them in DESIGN.md.  Every knob here can be swept by the
 * bench harnesses.
 */

#ifndef UFOTM_SIM_CONFIG_HH
#define UFOTM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/scheduler.hh"
#include "sim/telemetry.hh"
#include "sim/types.hh"

namespace utm {

/**
 * Modeled persistence domain (mem/persist.hh): geometry of the
 * per-shard redo-log region and the cycle costs of the persist
 * primitives (`clwb`/`sfence` analogues).  The domain is inert unless
 * a durable TxSystem activates it (TmPolicy::durable), so these knobs
 * never perturb a non-durable run.
 */
struct PersistConfig
{
    /** Base of the redo-log region; must sit above the heap. */
    Addr logBase = 0x40000000;

    /** Per-shard log stride (lock line + record area). */
    std::uint64_t logShardStride = 8ull << 20;

    /** @name Persist-primitive costs, in cycles. @{ */
    /** Write-back of a dirty line to the persistence domain. */
    Cycles clwbCost = 40;
    /** clwb of a line that is already clean (no write-back needed). */
    Cycles clwbCleanCost = 8;
    /** Fixed drain cost of an sfence. */
    Cycles sfenceBase = 20;
    /** Per-pending-clwb drain cost of an sfence. */
    Cycles sfencePerLine = 10;
    /** Retry delay when the per-shard log lock is contended. */
    Cycles lockRetryDelay = 20;
    /** @} */

    /** @name Modeled recovery costs (charged to the report only). @{ */
    Cycles recoverLoadPerLine = 4;
    Cycles recoverScanPerRecord = 30;
    Cycles recoverApplyPerWrite = 12;
    /** @} */
};

/** Full description of the simulated machine. */
struct MachineConfig
{
    /** Number of cores == maximum number of simulated threads. */
    int numCores = 8;

    /** @name L1 data cache geometry (per core, write-back).
     *  32 KiB, 8-way, 64 B lines: 64 sets. BTM transactions are bounded
     *  by this geometry (a set whose ways are all speculative
     *  overflows). @{ */
    unsigned l1Sets = 64;
    unsigned l1Ways = 8;
    /** @} */

    /** @name Shared L2 geometry (unified, inclusive). 4 MiB, 16-way. @{ */
    unsigned l2Sets = 4096;
    unsigned l2Ways = 16;
    /** @} */

    /** @name Access latencies, in cycles. @{ */
    Cycles l1HitLatency = 3;
    Cycles l2HitLatency = 16;
    Cycles memLatency = 220;
    /** Extra cost of a dirty remote-to-local cache transfer. */
    Cycles transferLatency = 40;
    /** NACKed coherence requests retry after this delay (paper: 20). */
    Cycles nackRetryDelay = 20;
    /** @} */

    /** Cost charged for a non-memory "work" unit in workload kernels. */
    Cycles aluOpLatency = 1;

    /** Timer-interrupt quantum per core; aborts in-flight BTM
     *  transactions with AbortReason::Interrupt. 0 disables timers. */
    Cycles timerQuantum = 200000;

    /** Global RNG seed; every per-thread Rng derives from it. */
    std::uint64_t seed = 1;

    /** Scheduling policy (sim/scheduler.hh); MinClock by default. */
    SchedulerConfig sched;

    /** Windowed timeline telemetry (sim/telemetry.hh); off by
     *  default, in which case every hook is a single branch and all
     *  outputs are byte-identical to a pre-telemetry build. */
    TelemetryConfig telemetry;

    /** USTM ownership-table bucket count (paper: 65536).  With
     *  sharding this is the bucket count of *each* shard's otable. */
    unsigned otableBuckets = 65536;

    /**
     * Number of otable shards.  1 (the default) reproduces the
     * paper's single process-global table.  With N > 1 the heap is
     * partitioned into N equal address stripes and each stripe gets
     * its own otable (own head array and chain-node pool), so otable
     * row-lock and CAS traffic for independent stripes never collides.
     * Cross-stripe transactions still work: ownership spans shards
     * through the per-transaction descriptor; commit releases drain
     * shard by shard in canonical (ascending) shard-index order.
     */
    unsigned otableShards = 1;

    /** Simulated-heap base address and size. */
    Addr heapBase = 0x10000000;
    std::uint64_t heapSize = 512ull << 20;

    /** Persistence-domain geometry and costs (mem/persist.hh). */
    PersistConfig persist;

    /** @name Heap-stripe → otable-shard routing.
     *  Shared by the USTM runtime (per-line otable selection) and the
     *  svc layer (per-shard heap placement), so both always agree on
     *  which shard owns an address. @{ */
    std::uint64_t shardHeapSize() const { return heapSize / otableShards; }

    Addr
    shardHeapBase(unsigned shard) const
    {
        return heapBase + std::uint64_t(shard) * shardHeapSize();
    }

    /** Shard owning @p a; addresses outside the heap map to shard 0. */
    unsigned
    shardOfAddr(Addr a) const
    {
        if (otableShards <= 1 || a < heapBase)
            return 0;
        const std::uint64_t off = a - heapBase;
        const std::uint64_t stripe = off / shardHeapSize();
        return stripe >= otableShards ? otableShards - 1
                                      : unsigned(stripe);
    }
    /** @} */

    /**
     * A config scaled to @p cores cores (16/32/64-core scaling runs):
     * the shared L2 grows with the core count so per-core L2 share
     * stays at the 8-core baseline, leaving otable/data contention —
     * not capacity — as the variable under test.
     */
    static MachineConfig withCores(int cores);

    /** Render as the Table 4 parameter dump. */
    std::string describe() const;

    /** L1 capacity in bytes. */
    std::uint64_t l1Bytes() const
    {
        return std::uint64_t(l1Sets) * l1Ways * kLineSize;
    }
};

} // namespace utm

#endif // UFOTM_SIM_CONFIG_HH
