#include "sim/trace.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace utm {

const char *
traceEventName(TraceEvent e)
{
    switch (e) {
      case TraceEvent::TxBegin: return "tx_begin";
      case TraceEvent::TxCommit: return "tx_commit";
      case TraceEvent::TxAbort: return "tx_abort";
      case TraceEvent::TxRetry: return "tx_retry";
      case TraceEvent::Failover: return "failover";
      case TraceEvent::UfoFault: return "ufo_fault";
    }
    return "unknown";
}

const char *
tracePathName(TracePath p)
{
    switch (p) {
      case TracePath::None: return "none";
      case TracePath::Hardware: return "hw";
      case TracePath::Software: return "sw";
    }
    return "unknown";
}

void
TxTracer::setCapacity(std::size_t n)
{
    capacity_ = n;
    for (auto &t : threads_) {
        t.ring.clear();
        t.ring.shrink_to_fit();
        t.head = 0;
    }
}

void
TxTracer::record(ThreadId t, Cycles cycle, TraceEvent e, TracePath path,
                 AbortReason reason)
{
    utm_assert(t >= 0 && t < kMaxThreads);
    PerThread &pt = threads_[t];
    ++pt.counts[static_cast<int>(e)];
    ++pt.recorded;
    if (capacity_ == 0)
        return;
    const TraceRecord rec{cycle, e, path, reason};
    if (pt.ring.size() < capacity_) {
        pt.ring.push_back(rec);
    } else {
        pt.ring[pt.head] = rec;
        pt.head = (pt.head + 1) % capacity_;
    }
}

std::vector<TraceRecord>
TxTracer::snapshot(ThreadId t) const
{
    const PerThread &pt = threads_[t];
    std::vector<TraceRecord> out;
    out.reserve(pt.ring.size());
    // head is the oldest element once the ring has wrapped.
    for (std::size_t i = 0; i < pt.ring.size(); ++i)
        out.push_back(pt.ring[(pt.head + i) % pt.ring.size()]);
    return out;
}

std::size_t
TxTracer::size(ThreadId t) const
{
    return threads_[t].ring.size();
}

std::uint64_t
TxTracer::dropped(ThreadId t) const
{
    return threads_[t].recorded - threads_[t].ring.size();
}

std::uint64_t
TxTracer::count(ThreadId t, TraceEvent e) const
{
    return threads_[t].counts[static_cast<int>(e)];
}

std::uint64_t
TxTracer::total(TraceEvent e) const
{
    std::uint64_t n = 0;
    for (const auto &t : threads_)
        n += t.counts[static_cast<int>(e)];
    return n;
}

void
TxTracer::clear()
{
    for (auto &t : threads_) {
        t.ring.clear();
        t.head = 0;
        t.recorded = 0;
        t.counts.fill(0);
    }
}

std::string
TxTracer::dumpChromeTrace() const
{
    json::Writer w;
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.key("otherData").beginObject();
    w.kv("generator", "ufotm");
    w.kv("time_unit", "simulated cycles (reported as us)");
    w.endObject();
    w.key("traceEvents").beginArray();

    auto common = [&](const TraceRecord &r, int tid) {
        w.kv("ts", r.cycle);
        w.kv("pid", 0);
        w.kv("tid", tid);
    };

    for (int tid = 0; tid < kMaxThreads; ++tid) {
        if (threads_[tid].ring.empty())
            continue;
        // A ring that wrapped may start mid-transaction; skip leading
        // events until the first TxBegin so B/E slices stay balanced.
        bool open = false;
        for (const TraceRecord &r : snapshot(static_cast<ThreadId>(tid))) {
            switch (r.event) {
              case TraceEvent::TxBegin:
                w.beginObject();
                w.kv("name", std::string("tx(") +
                                 tracePathName(r.path) + ")");
                w.kv("cat", "tx");
                w.kv("ph", "B");
                common(r, tid);
                w.endObject();
                open = true;
                break;
              case TraceEvent::TxCommit:
                if (!open)
                    break;
                w.beginObject();
                w.kv("name", std::string("tx(") +
                                 tracePathName(r.path) + ")");
                w.kv("cat", "tx");
                w.kv("ph", "E");
                common(r, tid);
                w.endObject();
                open = false;
                break;
              case TraceEvent::TxAbort:
                if (open) {
                    w.beginObject();
                    w.kv("name", std::string("tx(") +
                                     tracePathName(r.path) + ")");
                    w.kv("cat", "tx");
                    w.kv("ph", "E");
                    common(r, tid);
                    w.endObject();
                    open = false;
                }
                w.beginObject();
                w.kv("name", std::string("abort:") +
                                 abortReasonName(r.reason));
                w.kv("cat", "abort");
                w.kv("ph", "i");
                w.kv("s", "t");
                common(r, tid);
                w.endObject();
                break;
              case TraceEvent::TxRetry:
              case TraceEvent::Failover:
              case TraceEvent::UfoFault:
                w.beginObject();
                w.kv("name", traceEventName(r.event));
                w.kv("cat", "tx");
                w.kv("ph", "i");
                w.kv("s", "t");
                common(r, tid);
                w.endObject();
                break;
            }
        }
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace utm
