#include "sim/stats_json.hh"

#include <cstdio>
#include <map>

#include "sim/json.hh"
#include "sim/machine.hh"
#include "sim/prof.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace utm::stats {

namespace {

void
emitHistogram(json::Writer &w, const Histogram &h)
{
    w.beginObject();
    w.kv("samples", h.samples());
    w.kv("sum", h.sum());
    w.kv("min", h.min());
    w.kv("max", h.max());
    w.kv("mean", h.mean());
    w.kv("p50", h.quantile(0.50));
    w.kv("p90", h.quantile(0.90));
    w.kv("p99", h.quantile(0.99));
    // Power-of-two buckets; only the non-empty ones are emitted.
    // "lo"/"le" are the inclusive lower/upper bounds of the bucket's
    // value range — without "lo" a sparse bucket list is ambiguous
    // (consumers had to re-derive the geometry from the "le" chain).
    w.key("buckets").beginArray();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        if (h.bucketCount(b) == 0)
            continue;
        w.beginObject();
        w.kv("lo", Histogram::bucketLowerBound(b));
        w.kv("le", Histogram::bucketUpperBound(b));
        w.kv("count", h.bucketCount(b));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
emitCounters(json::Writer &w, const StatsRegistry &reg)
{
    w.key("counters").beginObject();
    for (const auto &[name, value] : reg.counters())
        w.kv(name, value);
    w.endObject();
}

void
emitHistograms(json::Writer &w, const StatsRegistry &reg)
{
    w.key("histograms").beginObject();
    for (const auto &[name, h] : reg.histograms()) {
        w.key(name);
        emitHistogram(w, h);
    }
    w.endObject();
}

} // namespace

std::string
dumpJson(const StatsRegistry &reg)
{
    json::Writer w;
    w.beginObject();
    emitCounters(w, reg);
    emitHistograms(w, reg);
    w.endObject();
    return w.str();
}

std::string
dumpJson(Machine &machine, const RunMeta &meta)
{
    const StatsRegistry &reg = machine.stats();
    const MachineConfig &mc = machine.config();

    json::Writer w;
    w.beginObject();
    w.kv("schema", "ufotm-stats");
    w.kv("schema_version", kSchemaVersion);

    w.key("run_config").beginObject();
    w.kv("workload", meta.workload);
    w.kv("system", meta.system);
    w.kv("threads", meta.threads);
    w.kv("seed", meta.seed);
    w.kv("scale", meta.scale);
    w.key("machine").beginObject();
    w.kv("num_cores", mc.numCores);
    w.kv("l1_sets", mc.l1Sets);
    w.kv("l1_ways", mc.l1Ways);
    w.kv("l1_bytes", mc.l1Bytes());
    w.kv("l2_sets", mc.l2Sets);
    w.kv("l2_ways", mc.l2Ways);
    w.kv("l1_hit_latency", mc.l1HitLatency);
    w.kv("l2_hit_latency", mc.l2HitLatency);
    w.kv("mem_latency", mc.memLatency);
    w.kv("timer_quantum", mc.timerQuantum);
    w.kv("otable_buckets", mc.otableBuckets);
    w.kv("otable_shards", mc.otableShards);
    w.kv("seed", mc.seed);
    w.endObject();
    w.endObject();

    // Derived roll-ups.  aborts_hw is the sum of the per-reason
    // btm.aborts.* attribution counters (there is no separate total,
    // so the sum IS the total by construction); aborts_sw likewise
    // sums the software backends' totals.
    w.key("totals").beginObject();
    w.kv("cycles", meta.cycles);
    w.kv("valid", meta.valid);
    w.kv("commits_hw", reg.get("tm.commits.hw"));
    w.kv("commits_sw", reg.get("tm.commits.sw"));
    w.kv("commits_raw", reg.get("tm.commits.raw"));
    w.kv("failovers", reg.get("tm.failovers"));
    w.kv("aborts_hw", reg.sumWithPrefix("btm.aborts."));
    w.kv("aborts_sw", reg.get("ustm.aborts") + reg.get("tl2.aborts"));
    w.endObject();

    emitCounters(w, reg);
    emitHistograms(w, reg);

    // Schema v2: the profiler's aggregate phase-cycle breakdown,
    // mirrored from the prof.cycles.* counters (so the two can never
    // disagree).  Empty when compiled with UTM_PROFILING=0.
    w.key("profile").beginObject();
    {
        const std::string prefix = "prof.cycles.";
        for (const auto &[name, value] : reg.counters())
            if (name.compare(0, prefix.size(), prefix) == 0)
                w.kv(name.substr(prefix.size()), value);
    }
    w.endObject();

    // Schema v2: contention attribution — per-backend hot-line tables
    // (Misra–Gries top-K; count sums are a lower bound on the owning
    // backend's conflict counter) and the otable shape/wait
    // histograms.
    w.key("contention").beginObject();
    {
        const ContentionTracker &ct = machine.contention();
        w.key("hot_lines").beginObject();
        const std::pair<const char *, const HotLineTable *> tables[] = {
            {"ustm", &ct.ustmHotLines()},
            {"btm", &ct.btmHotLines()},
        };
        for (const auto &[backend, table] : tables) {
            w.key(backend).beginArray();
            for (const auto &e : table->top()) {
                w.beginObject();
                w.kv("line", e.line);
                w.kv("count", e.count);
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
        w.key("otable").beginObject();
        w.key("chain_len");
        emitHistogram(w, ct.chainLen());
        w.key("row_lock_wait");
        emitHistogram(w, ct.rowLockWait());
        w.endObject();
    }
    w.endObject();

    // The same counters, re-grouped by backend prefix (the text
    // before the first '.'), with the prefix stripped.
    w.key("per_backend").beginObject();
    std::map<std::string, std::map<std::string, std::uint64_t>> groups;
    for (const auto &[name, value] : reg.counters()) {
        const auto dot = name.find('.');
        if (dot == std::string::npos || dot == 0)
            continue;
        groups[name.substr(0, dot)][name.substr(dot + 1)] = value;
    }
    for (const auto &[backend, counters] : groups) {
        w.key(backend).beginObject();
        for (const auto &[name, value] : counters)
            w.kv(name, value);
        w.endObject();
    }
    w.endObject();

    // Per-thread final clocks plus (when tracing is compiled in) the
    // tracer's per-thread event counts.
    w.key("per_thread").beginArray();
    for (int t = 0; t < machine.numThreads(); ++t) {
        const Cycles cycles =
            machine.thread(static_cast<ThreadId>(t)).now();
        w.beginObject();
        w.kv("id", t);
        w.kv("cycles", cycles);
        w.key("events").beginObject();
#if UTM_TRACING
        const TxTracer &tracer = machine.tracer();
        for (int e = 0; e < kNumTraceEvents; ++e) {
            const auto ev = static_cast<TraceEvent>(e);
            const std::uint64_t n =
                tracer.count(static_cast<ThreadId>(t), ev);
            if (n != 0)
                w.kv(traceEventName(ev), n);
        }
#endif
        w.endObject();
        // Schema v2: per-thread phase cycles.  The `app` residual is
        // always present so the values sum to `cycles` exactly; empty
        // when compiled with UTM_PROFILING=0.
        w.key("phase_cycles").beginObject();
#if UTM_PROFILING
        {
            const CycleProfiler::Snapshot snap =
                machine.profiler().snapshot(static_cast<ThreadId>(t),
                                            cycles);
            for (int s = 0; s < CycleProfiler::kNumSlots; ++s)
                if (snap.cycles[s] != 0)
                    w.kv(profSlotName(s), snap.cycles[s]);
            w.kv("app", snap.app);
        }
#endif
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.str();
}

bool
writeFile(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        std::fputc('\n', stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                    text.size();
    std::fputc('\n', f);
    std::fclose(f);
    return ok;
}

} // namespace utm::stats
