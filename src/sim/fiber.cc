#include "sim/fiber.hh"

#include <cstdint>
#include <exception>

#include "sim/logging.hh"

namespace utm {

Fiber::Fiber(std::size_t stack_size) : stack_(stack_size)
{
}

Fiber::~Fiber()
{
    if (started_ && !finished_)
        utm_warn("destroying a fiber that has not finished");
}

void
Fiber::reset(Fn fn)
{
    utm_assert(!running_);
    fn_ = std::move(fn);
    started_ = false;
    finished_ = false;
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto *self = reinterpret_cast<Fiber *>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    self->run();
    // run() never returns here; it jumps back with finished_ set.
}

void
Fiber::run()
{
    try {
        fn_();
    } catch (const std::exception &e) {
        utm_panic("uncaught exception escaped fiber: %s", e.what());
    } catch (...) {
        utm_panic("uncaught non-std exception escaped fiber");
    }
    finished_ = true;
    running_ = false;
    _longjmp(callerJb_, 1);
}

void
Fiber::resume()
{
    utm_assert(!finished_);
    utm_assert(!running_);
    running_ = true;
    if (!started_) {
        // First entry: build the fiber's stack with ucontext, then
        // never use swapcontext again (it makes a sigprocmask syscall
        // per switch; _setjmp/_longjmp switching is ~30x faster).
        started_ = true;
        if (getcontext(&own_) != 0)
            utm_panic("getcontext failed");
        own_.uc_stack.ss_sp = stack_.data();
        own_.uc_stack.ss_size = stack_.size();
        own_.uc_link = nullptr;
        auto ptr = reinterpret_cast<std::uintptr_t>(this);
        makecontext(&own_, reinterpret_cast<void (*)()>(&trampoline), 2,
                    static_cast<unsigned>(ptr >> 32),
                    static_cast<unsigned>(ptr & 0xffffffffu));
        if (_setjmp(callerJb_) == 0)
            swapcontext(&callerCtx_, &own_);
    } else {
        if (_setjmp(callerJb_) == 0)
            _longjmp(ownJb_, 1);
    }
}

void
Fiber::yield()
{
    utm_assert(running_);
    running_ = false;
    if (_setjmp(ownJb_) == 0)
        _longjmp(callerJb_, 1);
    running_ = true;
}

} // namespace utm
