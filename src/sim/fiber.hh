/**
 * @file
 * Cooperative user-level fibers built on POSIX ucontext.
 *
 * Every simulated thread runs on a fiber.  The scheduler resumes one
 * fiber at a time; a fiber returns control by calling yield() (done
 * implicitly by every simulated memory access).  This makes the whole
 * simulation single-host-threaded and deterministic.
 */

#ifndef UFOTM_SIM_FIBER_HH
#define UFOTM_SIM_FIBER_HH

#include <setjmp.h>
#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace utm {

/** One cooperative fiber with its own stack. */
class Fiber
{
  public:
    using Fn = std::function<void()>;

    explicit Fiber(std::size_t stack_size = 256 * 1024);
    ~Fiber();

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /** Arm the fiber with an entry function; it runs on first resume. */
    void reset(Fn fn);

    /**
     * Switch into the fiber.  Returns when the fiber yields or its
     * entry function returns.  Must not be called from inside the
     * fiber itself.
     */
    void resume();

    /** Switch back to whoever called resume().  Call inside the fiber. */
    void yield();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

    /** True while execution is inside this fiber. */
    bool running() const { return running_; }

  private:
    static void trampoline(unsigned hi, unsigned lo);
    void run();

    ucontext_t own_;
    ucontext_t callerCtx_;
    jmp_buf ownJb_;
    jmp_buf callerJb_;
    std::vector<char> stack_;
    Fn fn_;
    bool started_ = false;
    bool finished_ = true;
    bool running_ = false;
};

} // namespace utm

#endif // UFOTM_SIM_FIBER_HH
