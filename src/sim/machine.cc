#include "sim/machine.hh"

#include <array>

#include "mem/memory_system.hh"
#include "sim/logging.hh"
#include "sim/oracle.hh"

namespace utm {

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), persist_(*this)
{
    utm_assert(cfg_.numCores >= 1 && cfg_.numCores < kMaxThreads);
    telemetry_.configure(*this, cfg_.telemetry);
    msys_ = std::make_unique<MemorySystem>(*this, cfg_);
}

Machine::~Machine() = default;

ThreadContext &
Machine::addThread(ThreadContext::Fn fn)
{
    utm_assert(!running_);
    if (static_cast<int>(threads_.size()) >= cfg_.numCores)
        utm_fatal("more threads (%zu) than cores (%d)",
                  threads_.size() + 1, cfg_.numCores);
    ThreadId id = static_cast<ThreadId>(threads_.size());
    threads_.push_back(
        std::make_unique<ThreadContext>(*this, id, std::move(fn)));
    return *threads_.back();
}

ThreadContext &
Machine::initContext()
{
    if (!initCtx_) {
        // The init context gets the last thread id so it never
        // collides with worker cores; it has its own L1 slot.
        initCtx_ = std::make_unique<ThreadContext>(
            *this, kMaxThreads - 1, nullptr);
    }
    return *initCtx_;
}

void
Machine::setSchedulerPolicy(std::unique_ptr<SchedulerPolicy> policy)
{
    utm_assert(!running_);
    sched_ = std::move(policy);
}

void
Machine::run()
{
    running_ = true;
    if (!sched_)
        sched_ = makeSchedulerPolicy(cfg_.sched, cfg_.seed);
    std::array<SchedulerView::Runnable, kMaxThreads> runnable;
    // On an oracle violation, leave the machine in a state the harness
    // can still inspect (recorded schedule, stats) before rethrowing.
    try {
        for (;;) {
            int n = 0;
            for (auto &t : threads_)
                if (!t->done())
                    runnable[n++] = {t->id(), t->now()};
            if (n == 0)
                break;
            ThreadId pick =
                sched_->pick(SchedulerView{runnable.data(), n, steps_});
            bool valid = false;
            for (int i = 0; i < n && !valid; ++i)
                valid = runnable[i].id == pick;
            if (!valid)
                utm_fatal("scheduler '%s' picked non-runnable thread %d",
                          sched_->name(), pick);
            if (recording_)
                schedule_.append(pick);
            if (lastPick_ >= 0 && pick != lastPick_)
                ++preemptions_;
            lastPick_ = pick;
            ++steps_;
            threads_[pick]->resume();
            telemetry_.onStep(pick, threads_[pick]->now());
            // A crash is abrupt: no oracle pass, no finalization.
            // Suspended fibers stay where they are; only host-side
            // state (recorded schedule, persistent image) survives.
            if (crashStep_ != 0 && steps_ >= crashStep_) {
                crashed_ = true;
                break;
            }
            if (!oracles_.empty() && steps_ % oracleInterval_ == 0)
                runOracles();
        }
    } catch (...) {
        running_ = false;
        throw;
    }
    if (crashed_) {
        running_ = false;
        return;
    }
    sched_->onRunEnd(stats_);
    prof_.finalize(*this);
    // Hot-path scheduler counters are accumulated in plain members and
    // exported once here, keeping the per-step cost to integer adds.
    stats_.set("sched.steps", steps_);
    stats_.set("sched.preemptions", preemptions_);
    if (oracleChecks_)
        stats_.set("torture.oracle_checks", oracleChecks_);
    telemetry_.finalize();
    running_ = false;
}

void
Machine::runOracles()
{
    for (InvariantOracle *oracle : oracles_) {
        ++oracleChecks_;
        std::string why;
        if (!oracle->check(&why)) {
            stats_.inc("torture.oracle_violations");
            throw OracleViolation{oracle->name(), why, steps_};
        }
    }
}

Cycles
Machine::completionTime() const
{
    Cycles max = 0;
    for (const auto &t : threads_)
        max = std::max(max, t->now());
    return max;
}

} // namespace utm
