#include "sim/machine.hh"

#include "mem/memory_system.hh"
#include "sim/logging.hh"

namespace utm {

Machine::Machine(const MachineConfig &cfg) : cfg_(cfg)
{
    utm_assert(cfg_.numCores >= 1 && cfg_.numCores < kMaxThreads);
    msys_ = std::make_unique<MemorySystem>(*this, cfg_);
}

Machine::~Machine() = default;

ThreadContext &
Machine::addThread(ThreadContext::Fn fn)
{
    utm_assert(!running_);
    if (static_cast<int>(threads_.size()) >= cfg_.numCores)
        utm_fatal("more threads (%zu) than cores (%d)",
                  threads_.size() + 1, cfg_.numCores);
    ThreadId id = static_cast<ThreadId>(threads_.size());
    threads_.push_back(
        std::make_unique<ThreadContext>(*this, id, std::move(fn)));
    return *threads_.back();
}

ThreadContext &
Machine::initContext()
{
    if (!initCtx_) {
        // The init context gets the last thread id so it never
        // collides with worker cores; it has its own L1 slot.
        initCtx_ = std::make_unique<ThreadContext>(
            *this, kMaxThreads - 1, nullptr);
    }
    return *initCtx_;
}

void
Machine::run()
{
    running_ = true;
    for (;;) {
        ThreadContext *next = nullptr;
        for (auto &t : threads_) {
            if (t->done())
                continue;
            if (!next || t->now() < next->now())
                next = t.get();
        }
        if (!next)
            break;
        next->resume();
    }
    running_ = false;
}

Cycles
Machine::completionTime() const
{
    Cycles max = 0;
    for (const auto &t : threads_)
        max = std::max(max, t->now());
    return max;
}

} // namespace utm
