#include "sim/thread_context.hh"

#include "mem/memory_system.hh"
#include "mem/tm_iface.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"

namespace utm {

ThreadContext::ThreadContext(Machine &machine, ThreadId id, Fn fn)
    : machine_(machine), id_(id), fn_(std::move(fn)),
      rng_(machine.config().seed * 0x9e3779b97f4a7c15ull +
           static_cast<std::uint64_t>(id) + 1)
{
    const Cycles q = machine_.config().timerQuantum;
    nextTimer_ = q == 0 ? ~Cycles(0) : q;
    if (fn_)
        fiber_ = std::make_unique<Fiber>();
    else
        done_ = true; // Init context: never scheduled.
}

MemorySystem &
ThreadContext::memsys()
{
    return machine_.memsys();
}

StatsRegistry &
ThreadContext::stats()
{
    return machine_.stats();
}

void
ThreadContext::resume()
{
    utm_assert(fiber_ && !done_);
    if (!startedFiber_) {
        startedFiber_ = true;
        fiber_->reset([this] { fn_(*this); });
    }
    fiber_->resume();
    if (fiber_->finished())
        done_ = true;
}

void
ThreadContext::advance(Cycles n)
{
    clock_ += n;
    if (clock_ >= nextTimer_) {
        const Cycles q = machine_.config().timerQuantum;
        nextTimer_ = ((clock_ / q) + 1) * q;
        stats().inc("machine.timer_interrupts");
        // A durably-committing transaction is past its linearization
        // point; the interrupt is taken after the fence window closes.
        if (btm_ && btm_->inTx() && !btm_->committing())
            btm_->onTimerInterrupt(); // throws BtmAbortException
    }
}

void
ThreadContext::yield()
{
    if (fiber_ && fiber_->running())
        fiber_->yield();
}

std::uint64_t
ThreadContext::load(Addr a, unsigned size)
{
    return memsys().read(*this, a, size);
}

void
ThreadContext::store(Addr a, std::uint64_t v, unsigned size)
{
    memsys().write(*this, a, v, size);
}

bool
ThreadContext::cas(Addr a, unsigned size, std::uint64_t expect,
                   std::uint64_t desired, std::uint64_t *old_out)
{
    return memsys().cas(*this, a, size, expect, desired, old_out);
}

std::uint64_t
ThreadContext::fetchAdd(Addr a, unsigned size, std::uint64_t delta)
{
    return memsys().fetchAdd(*this, a, size, delta);
}

void
ThreadContext::setUfoBits(Addr a, UfoBits bits)
{
    memsys().ufoSet(*this, lineOf(a), bits);
}

void
ThreadContext::addUfoBits(Addr a, UfoBits bits)
{
    memsys().ufoAdd(*this, lineOf(a), bits);
}

UfoBits
ThreadContext::readUfoBits(Addr a)
{
    return memsys().ufoRead(*this, lineOf(a));
}

void
ThreadContext::syscallMarker()
{
    advance(100); // Kernel entry/exit cost.
    if (btm_ && btm_->inTx())
        btm_->onForbiddenOp(AbortReason::Syscall);
}

void
ThreadContext::ioMarker()
{
    advance(500);
    if (btm_ && btm_->inTx())
        btm_->onForbiddenOp(AbortReason::Io);
}

} // namespace utm
