/**
 * @file
 * Windowed timeline telemetry bus + causal conflict forensics.
 *
 * The bus divides a run into fixed simulated-cycle windows and, at
 * every window boundary, snapshots the *delta* of every counter and
 * histogram in the machine's StatsRegistry against the previous
 * boundary — turning the end-of-run aggregates every other
 * observability surface reports into a time series (exported as the
 * `ufotm-timeline` v1 JSON document, docs/OBSERVABILITY.md).  On top
 * of the window clock it aggregates *conflict edges*: every conflict
 * detection point in ustm/btm/hybrid reports an aggressor→victim edge
 * carrying both transaction sites and the conflicting line, folded
 * into per-window Misra–Gries top-K hot-line and site×site matrices
 * (bounded memory, deterministic).  A stall watchdog rides the same
 * windows: N consecutive windows in which the whole machine commits
 * nothing — while some scheduled thread keeps aborting, or while
 * some thread sits parked inside atomic() — flag a livelock or
 * starvation episode, sticky for the rest of the run; the tmtorture
 * harness surfaces it as the "stall-watchdog" oracle.
 *
 * Everything here is host-side bookkeeping: no simulated cycles are
 * charged, no RNG is drawn, and with `TelemetryConfig::enabled` off
 * (the default) every hook is a single branch, so all existing
 * baselines stay byte-identical.
 */

#ifndef UFOTM_SIM_TELEMETRY_HH
#define UFOTM_SIM_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Timeline telemetry knobs (MachineConfig::telemetry). */
struct TelemetryConfig
{
    /** Master switch; off = every hook is a single branch. */
    bool enabled = false;

    /** Window width in simulated cycles. */
    Cycles windowCycles = 100000;

    /** Stall-watchdog threshold: consecutive commitless windows (per
     *  thread or machine-wide) before an episode is flagged.  The
     *  default is calibrated against the adversarial torture sweeps:
     *  under PCT a healthy run can spend >16 windows commit-free
     *  (backoff loops burn simulated cycles fast while a parked
     *  lock-holder waits for the next priority-change point), so the
     *  default sits at ~2-3x that worst observed healthy streak.
     *  Genuine livelocks are unbounded and hit any threshold. */
    unsigned watchdogWindows = 48;

    /** Misra–Gries slots for the per-window hot-line and site×site
     *  conflict tables. */
    int topK = 8;
};

/**
 * Deterministic bounded-memory top-K frequency sketch (Misra–Gries)
 * over opaque 64-bit keys.  Guarantee: any key responsible for more
 * than observed/(k+1) of the observations is present, and stored
 * counts are lower bounds on true frequencies.
 */
class TopKTable
{
  public:
    struct Entry
    {
        std::uint64_t key;
        std::uint64_t count;
    };

    explicit TopKTable(int k = 8) : k_(k) {}

    void observe(std::uint64_t key);

    /** Entries sorted count-descending, key-ascending on ties. */
    std::vector<Entry> top() const;

    std::uint64_t observed() const { return observed_; }
    bool empty() const { return slots_.empty(); }
    void clear();

  private:
    int k_;
    std::uint64_t observed_ = 0;
    std::vector<Entry> slots_;
};

/** One aborter→victim conflict edge (see recordConflictEdge()). */
struct ConflictEdge
{
    ThreadId aggressor = -1;
    TxSiteId aggressorSite = kTxSiteNone;
    ThreadId victim = -1;
    TxSiteId victimSite = kTxSiteNone;
    LineAddr line = 0;
};

/** The windowed telemetry sampler; one per Machine. */
class TelemetryBus
{
  public:
    /** Wire the bus to its machine; called once from the Machine
     *  constructor.  All hooks stay no-ops unless cfg.enabled. */
    void configure(Machine &machine, const TelemetryConfig &cfg);

    bool enabled() const { return enabled_; }

    /** @name Machine::run() hooks (hot path: one branch when off). @{ */
    void
    onStep(ThreadId tid, Cycles clock)
    {
        if (enabled_)
            step(tid, clock);
    }

    void
    onCommit(ThreadId tid)
    {
        if (enabled_ && tid >= 0 && tid < kMaxThreads)
            ++threadWindow_[tid].commits;
    }

    void
    onAbort(ThreadId tid)
    {
        if (enabled_ && tid >= 0 && tid < kMaxThreads)
            ++threadWindow_[tid].aborts;
    }
    /** @} */

    /**
     * Record one conflict edge from @p backend ("btm" or "ustm").
     * Called at the backend's conflict-detection point, on whichever
     * thread detects the conflict.
     */
    void recordConflictEdge(const char *backend, const ConflictEdge &e);

    /**
     * Record the hybrid's UFO-bit-trap edge: @p victim took a UFO
     * fault on @p line inside a hardware transaction and is aborting.
     * The aggressor — the software transaction owning the line — is
     * resolved through the owner-resolver hook; without a resolver (or
     * with no current owner) no edge is recorded, keeping edge counts
     * a lower bound on abort counts.
     */
    void onUfoTrapEdge(ThreadContext &victim, LineAddr line);

    /** @name Owner resolution (registered by Ustm::setup). @{ */
    using OwnerResolver =
        std::function<std::uint64_t(ThreadContext &, LineAddr)>;
    void setOwnerResolver(OwnerResolver fn) { ownerResolver_ = std::move(fn); }
    /** @} */

    /**
     * Close the final (partial) window, export the conflict./watchdog.
     * counters into the machine's StatsRegistry, and snapshot the
     * end-of-run totals.  Called at the end of Machine::run(); also
     * safe to call directly after an OracleViolation unwound run()
     * (the torture harness does, to capture the timeline of a failing
     * run).  Idempotent.
     */
    void finalize();

    /** @name Stall watchdog (sticky once flagged). @{ */
    bool stallFlagged() const { return stalled_; }
    const std::string &stallWhy() const { return stallWhy_; }
    /** @} */

    /** Render the `ufotm-timeline` v1 document. */
    std::string dumpJson() const;

  private:
    struct ThreadWindow
    {
        std::uint64_t steps = 0;
        std::uint64_t commits = 0;
        std::uint64_t aborts = 0;
    };

    struct HistSnapshot
    {
        std::uint64_t buckets[Histogram::kBuckets] = {};
        std::uint64_t samples = 0;
        std::uint64_t sum = 0;
    };

    struct HistDelta
    {
        std::uint64_t samples = 0;
        std::uint64_t sum = 0;
        std::uint64_t p50 = 0;
        std::uint64_t p90 = 0;
        std::uint64_t p99 = 0;
    };

    struct WindowRecord
    {
        std::uint64_t id = 0;
        std::map<std::string, std::uint64_t> counters; ///< deltas > 0
        std::map<std::string, HistDelta> hists; ///< delta samples > 0
        std::vector<std::pair<int, ThreadWindow>> threads;
        std::uint64_t edges = 0;
        std::uint64_t edgesBtm = 0;
        std::uint64_t edgesUstm = 0;
        std::vector<TopKTable::Entry> hotLines;
        std::vector<TopKTable::Entry> sitePairs;
        std::vector<int> starvedThreads; ///< streak hit threshold here
        bool globalStall = false;
    };

    void step(ThreadId tid, Cycles clock);
    /** Watchdog pass over the open window; fills the episode lists. */
    void evalWatchdog(WindowRecord *rec);
    /** Capture counter/histogram deltas and reset per-window state. */
    void captureWindow(WindowRecord *rec);
    void closeWindow();

    Machine *machine_ = nullptr;
    bool enabled_ = false;
    bool finalized_ = false;
    TelemetryConfig cfg_;

    std::uint64_t curWindow_ = 0;
    std::vector<WindowRecord> windows_;

    /** Full-counter snapshot at the last window boundary. */
    std::map<std::string, std::uint64_t> counterSnap_;
    std::map<std::string, HistSnapshot> histSnap_;
    std::map<std::string, std::uint64_t> totals_;

    ThreadWindow threadWindow_[kMaxThreads];
    unsigned starveStreak_[kMaxThreads] = {};
    unsigned globalStreak_ = 0;

    /** Open-window conflict state. */
    std::uint64_t winEdges_ = 0;
    std::uint64_t winEdgesBtm_ = 0;
    std::uint64_t winEdgesUstm_ = 0;
    TopKTable hotLines_;
    TopKTable sitePairs_;

    /** Run-cumulative edge totals (exported as conflict.*). */
    std::uint64_t edgesBtm_ = 0;
    std::uint64_t edgesUstm_ = 0;

    struct Episode
    {
        std::uint64_t window;
        int thread; ///< -1 for a machine-wide stall
    };
    std::vector<Episode> episodes_;
    bool stalled_ = false;
    std::string stallWhy_;

    OwnerResolver ownerResolver_;
};

} // namespace utm

#endif // UFOTM_SIM_TELEMETRY_HH
