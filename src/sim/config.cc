#include "sim/config.hh"

#include <sstream>

namespace utm {

std::string
MachineConfig::describe() const
{
    std::ostringstream os;
    os << "cores                 " << numCores << "\n"
       << "L1 data cache         " << (l1Bytes() >> 10) << " KiB, "
       << l1Ways << "-way, " << kLineSize << " B lines, "
       << l1HitLatency << "-cycle hit\n"
       << "L2 unified cache      "
       << ((std::uint64_t(l2Sets) * l2Ways * kLineSize) >> 20)
       << " MiB, " << l2Ways << "-way, " << l2HitLatency
       << "-cycle hit\n"
       << "memory latency        " << memLatency << " cycles\n"
       << "cache-cache transfer  " << transferLatency << " cycles\n"
       << "NACK retry delay      " << nackRetryDelay << " cycles\n"
       << "timer quantum         " << timerQuantum << " cycles\n"
       << "USTM otable buckets   " << otableBuckets << "\n"
       << "rng seed              " << seed << "\n";
    return os.str();
}

} // namespace utm
