#include "sim/config.hh"

#include <sstream>

namespace utm {

std::string
MachineConfig::describe() const
{
    std::ostringstream os;
    os << "cores                 " << numCores << "\n"
       << "L1 data cache         " << (l1Bytes() >> 10) << " KiB, "
       << l1Ways << "-way, " << kLineSize << " B lines, "
       << l1HitLatency << "-cycle hit\n"
       << "L2 unified cache      "
       << ((std::uint64_t(l2Sets) * l2Ways * kLineSize) >> 20)
       << " MiB, " << l2Ways << "-way, " << l2HitLatency
       << "-cycle hit\n"
       << "memory latency        " << memLatency << " cycles\n"
       << "cache-cache transfer  " << transferLatency << " cycles\n"
       << "NACK retry delay      " << nackRetryDelay << " cycles\n"
       << "timer quantum         " << timerQuantum << " cycles\n"
       << "USTM otable buckets   " << otableBuckets
       << (otableShards > 1
               ? " x " + std::to_string(otableShards) + " shards"
               : "")
       << "\n"
       << "rng seed              " << seed << "\n";
    return os.str();
}

MachineConfig
MachineConfig::withCores(int cores)
{
    MachineConfig mc;
    mc.numCores = cores;
    // Scale the shared L2 set count with the core count (8 cores ->
    // the 4 MiB baseline), rounded up to the power of two the cache
    // indexing requires, keeping associativity and latency fixed.
    if (cores > 8) {
        const unsigned scaled = mc.l2Sets * unsigned(cores) / 8;
        unsigned sets = mc.l2Sets;
        while (sets < scaled)
            sets <<= 1;
        mc.l2Sets = sets;
    }
    return mc;
}

} // namespace utm
