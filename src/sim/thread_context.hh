/**
 * @file
 * Per-thread execution context of the simulated machine.
 *
 * A ThreadContext is the handle workload code and TM runtimes use for
 * everything: timed memory accesses, UFO ISA operations, cycle
 * accounting, and the per-thread RNG.  One thread per core; thread 0's
 * entry function typically performs workload setup.
 */

#ifndef UFOTM_SIM_THREAD_CONTEXT_HH
#define UFOTM_SIM_THREAD_CONTEXT_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>

#include "sim/fiber.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace utm {

class BtmClient;
class Machine;
class MemorySystem;
class StatsRegistry;

/** One simulated hardware thread (== core in this model). */
class ThreadContext
{
  public:
    using Fn = std::function<void(ThreadContext &)>;

    /**
     * @param machine  Owning machine.
     * @param id       Thread/core id.
     * @param fn       Entry function; null for the init context, which
     *                 runs on the host stack outside the scheduler.
     */
    ThreadContext(Machine &machine, ThreadId id, Fn fn);

    /** @name Time. @{ */
    Cycles now() const { return clock_; }

    /**
     * Charge @p n cycles of local work.  Fires the core's timer
     * interrupt when the quantum boundary is crossed, which aborts an
     * in-flight BTM transaction.
     */
    void advance(Cycles n);

    /** Cooperative reschedule point. No-op on the init context. */
    void yield();
    /** @} */

    /** @name Timed shared-memory accesses. @{ */
    std::uint64_t load(Addr a, unsigned size);
    void store(Addr a, std::uint64_t v, unsigned size);
    bool cas(Addr a, unsigned size, std::uint64_t expect,
             std::uint64_t desired, std::uint64_t *old_out = nullptr);
    std::uint64_t fetchAdd(Addr a, unsigned size, std::uint64_t delta);

    template <typename T>
    T
    loadT(Addr a)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        std::uint64_t raw = load(a, sizeof(T));
        T v;
        std::memcpy(&v, &raw, sizeof(T));
        return v;
    }

    template <typename T>
    void
    storeT(Addr a, T v)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        std::uint64_t raw = 0;
        std::memcpy(&raw, &v, sizeof(T));
        store(a, raw, sizeof(T));
    }
    /** @} */

    /** @name UFO ISA (paper Table 2). @{ */
    void setUfoBits(Addr a, UfoBits bits);
    void addUfoBits(Addr a, UfoBits bits);
    UfoBits readUfoBits(Addr a);
    void enableUfo() { ufoEnabled_ = true; }
    void disableUfo() { ufoEnabled_ = false; }
    bool ufoEnabled() const { return ufoEnabled_; }
    /** @} */

    /** @name Transaction-hostile events (syscall/IO markers). @{ */
    void syscallMarker();
    void ioMarker();
    /** @} */

    /** @name Plumbing. @{ */
    ThreadId id() const { return id_; }
    Machine &machine() { return machine_; }
    MemorySystem &memsys();
    StatsRegistry &stats();
    Rng &rng() { return rng_; }
    BtmClient *btmClient() { return btm_; }
    void setBtmClient(BtmClient *c) { btm_ = c; }
    bool done() const { return done_; }
    bool isInitContext() const { return !fiber_; }
    Fiber *fiber() { return fiber_.get(); }
    /** Scheduler entry: run/resume this thread's fiber. */
    void resume();
    /** @} */

    /** @name Atomic-section bookkeeping (telemetry attribution).
     *  Maintained by the RAII guard in TxSystem::atomic(): the
     *  outermost atomic section's site labels the whole nest. @{ */
    bool inAtomic() const { return atomicDepth_ > 0; }
    TxSiteId currentSite() const
    {
        return atomicDepth_ > 0 ? currentSite_ : kTxSiteNone;
    }
    void
    pushAtomicSite(TxSiteId site)
    {
        if (atomicDepth_++ == 0)
            currentSite_ = site;
    }
    void
    popAtomicSite()
    {
        if (--atomicDepth_ == 0)
            currentSite_ = kTxSiteNone;
    }
    /** @} */

  private:
    Machine &machine_;
    ThreadId id_;
    Cycles clock_ = 0;
    Cycles nextTimer_;
    bool ufoEnabled_ = true;
    bool done_ = false;
    bool startedFiber_ = false;
    Fn fn_;
    std::unique_ptr<Fiber> fiber_;
    Rng rng_;
    BtmClient *btm_ = nullptr;
    int atomicDepth_ = 0;
    TxSiteId currentSite_ = kTxSiteNone;
};

} // namespace utm

#endif // UFOTM_SIM_THREAD_CONTEXT_HH
