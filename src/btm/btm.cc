#include "btm/btm.hh"

#include "mem/memory_system.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

namespace {

/** Cost of taking/discarding the register checkpoint. */
constexpr Cycles kBeginCost = 3;
constexpr Cycles kCommitCost = 3;
/** Pipeline-flush cost charged when an abort is taken. */
constexpr Cycles kAbortPenalty = 40;
/** Poll interval while stalled on a UFO fault (Stall policy). */
constexpr Cycles kUfoStallPoll = 20;

} // namespace

BtmUnit::BtmUnit(ThreadContext &tc, bool is_unbounded)
    : tc_(tc), machine_(tc.machine()), unbounded_(is_unbounded)
{
    utm_assert(tc_.btmClient() == nullptr);
    tc_.setBtmClient(this);
    machine_.memsys().setBtmClient(tc_.id(), this);
}

BtmUnit::~BtmUnit()
{
    if (inTx_)
        utm_warn("destroying BtmUnit with a transaction in flight");
    tc_.setBtmClient(nullptr);
    machine_.memsys().setBtmClient(tc_.id(), nullptr);
}

void
BtmUnit::resetTxState()
{
    undo_.clear();
    specUfoClears_.clear();
    pendingWakeups_.clear();
    readLines_.clear();
    writeLines_.clear();
    readSet_.clear();
    writeSet_.clear();
    doomed_ = false;
    doomReason_ = AbortReason::None;
    doomAddr_ = 0;
}

void
BtmUnit::txBegin()
{
    if (inTx_) {
        // Flattened nesting: inner transactions just bump the depth.
        if (depth_ >= kMaxNestingDepth)
            onForbiddenOp(AbortReason::NestingOverflow);
        ++depth_;
        return;
    }
    UTM_PROF_PHASE(machine_, tc_, ProfComp::Btm, ProfPhase::Begin);
    tc_.yield(); // Ordered event: begins interleave by timestamp.
    resetTxState();
    inTx_ = true;
    depth_ = 1;
    age_ = machine_.nextTxSeq();
    machine_.stats().inc("btm.begins");
    UTM_TRACE_EVENT(machine_, tc_, TraceEvent::TxBegin,
                    TracePath::Hardware, AbortReason::None);
    tc_.advance(kBeginCost);
}

void
BtmUnit::txEnd()
{
    utm_assert(inTx_);
    if (depth_ > 1) {
        --depth_;
        return;
    }
    UTM_PROF_PHASE(machine_, tc_, ProfComp::Btm, ProfPhase::Commit);
    // Commit is a coherence event (flash clear): let lower-clock
    // threads act first -- they may still wound us.
    tc_.yield();
    if (doomed_)
        takePendingAbort(); // throws
    // Commit linearization point: past the doom check nothing can
    // fail, so the speculative writes are final.
    machine_.notifyCommitPoint(tc_);
    // Durable mode: fence the redo record BEFORE the flash clear.
    // The committing() shield keeps the still-speculative write set
    // safe for the window (conflictors NACK, timer aborts defer), so
    // the writes become visible only after the fence completes.
    if (machine_.persist().active())
        persistCommit();
    // Commit: flash-clear SR/SW, discard the checkpoint. Speculative
    // data becomes architectural (it already sits in SimMemory).
    machine_.memsys().clearSpec(tc_.id(), readLines_, writeLines_,
                                /*invalidate_writes=*/false);
    inTx_ = false;
    depth_ = 0;
    ++commits_;
    machine_.stats().inc("btm.commits");
    machine_.stats().observe("btm.tx_lines",
                             readSet_.size() + writeSet_.size());
    UTM_TRACE_EVENT(machine_, tc_, TraceEvent::TxCommit,
                    TracePath::Hardware, AbortReason::None);
    // Section 6: wake the retrying transactions whose protection we
    // speculatively cleared, now that our update is committed.
    if (!pendingWakeups_.empty()) {
        const auto &hooks = machine_.memsys().retryWakeupHooks();
        utm_assert(hooks.wake);
        hooks.wake(pendingWakeups_);
    }
    resetTxState();
    tc_.advance(kCommitCost);
}

void
BtmUnit::persistCommit()
{
    UTM_PROF_PHASE(machine_, tc_, ProfComp::Btm, ProfPhase::Persist);
    committing_ = true;
    if (undo_.empty()) {
        machine_.persist().noteReadOnlyCommit();
    } else {
        std::vector<PersistDomain::RedoWrite> writes;
        writes.reserve(undo_.size());
        for (const UndoRec &u : undo_)
            writes.push_back({u.addr, u.size});
        machine_.persist().appendCommitRecord(tc_, age_, writes);
    }
    committing_ = false;
}

void
BtmUnit::txAbort()
{
    utm_assert(inTx_);
    raiseAbort(AbortReason::Explicit, 0);
}

bool
BtmUnit::wroteLine(LineAddr line) const
{
    return writeSet_.count(line) != 0;
}

void
BtmUnit::rollback(bool invalidate_writes)
{
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it)
        machine_.memory().write(it->addr, it->old, it->size);
    // Discard speculative UFO clears — unless another owner has since
    // re-protected the line (then the new bits are authoritative).
    for (auto it = specUfoClears_.rbegin(); it != specUfoClears_.rend();
         ++it) {
        if (machine_.memory().ufoBits(it->line) == kUfoNone)
            machine_.memory().setUfoBits(it->line, it->oldBits);
    }
    specUfoClears_.clear();
    pendingWakeups_.clear();
    machine_.memsys().clearSpec(tc_.id(), readLines_, writeLines_,
                                invalidate_writes);
    undo_.clear();
    readLines_.clear();
    writeLines_.clear();
    readSet_.clear();
    writeSet_.clear();
}

void
BtmUnit::wound(AbortReason r, ThreadId killer, LineAddr line)
{
    utm_assert(inTx_);
    // The memory system's durable-commit shield NACKs (or waits out)
    // every conflictor while the fence window is open.
    utm_assert(!committing_);
    if (doomed_)
        return; // Already rolled back; keep the first reason.
    // The coherence action undoes the speculative state synchronously
    // (flash invalidation of SW lines); the victim's fiber observes
    // the doom at its next simulation event.
    rollback(/*invalidate_writes=*/true);
    doomed_ = true;
    doomReason_ = r;
    doomAddr_ = 0;
    machine_.stats().inc("btm.wounds");
    if (machine_.telemetry().enabled()) {
        ConflictEdge e;
        e.aggressor = killer;
        if (killer >= 0 && killer < machine_.numThreads())
            e.aggressorSite = machine_.thread(killer).currentSite();
        e.victim = tc_.id();
        e.victimSite = tc_.currentSite();
        e.line = line;
        machine_.telemetry().recordConflictEdge("btm", e);
    }
}

void
BtmUnit::takePendingAbort()
{
    UTM_PROF_PHASE(machine_, tc_, ProfComp::Btm,
                   ProfPhase::AbortUnwind);
    utm_assert(inTx_ && doomed_);
    AbortReason r = doomReason_;
    Addr a = doomAddr_;
    doomed_ = false;
    inTx_ = false;
    depth_ = 0;
    lastReason_ = r;
    lastAddr_ = a;
    ++aborts_;
    machine_.stats().inc(std::string("btm.aborts.") + abortReasonName(r));
    UTM_TRACE_EVENT(machine_, tc_, TraceEvent::TxAbort,
                    TracePath::Hardware, r);
    tc_.advance(kAbortPenalty);
    throw BtmAbortException{r, a};
}

void
BtmUnit::raiseAbort(AbortReason r, Addr a)
{
    UTM_PROF_PHASE(machine_, tc_, ProfComp::Btm,
                   ProfPhase::AbortUnwind);
    utm_assert(inTx_);
    if (!doomed_)
        rollback(/*invalidate_writes=*/true);
    doomed_ = false;
    inTx_ = false;
    depth_ = 0;
    lastReason_ = r;
    lastAddr_ = a;
    ++aborts_;
    machine_.stats().inc(std::string("btm.aborts.") + abortReasonName(r));
    UTM_TRACE_EVENT(machine_, tc_, TraceEvent::TxAbort,
                    TracePath::Hardware, r);
    tc_.advance(kAbortPenalty);
    throw BtmAbortException{r, a};
}

void
BtmUnit::onUfoFault(Addr a, AccessType t)
{
    UTM_PROF_PHASE(machine_, tc_, ProfComp::Btm,
                   ProfPhase::UfoHandler);
    utm_assert(inTx_);
    machine_.stats().inc("btm.ufo_faults");
    UTM_TRACE_EVENT(machine_, tc_, TraceEvent::UfoFault,
                    TracePath::Hardware, AbortReason::UfoFault);
    const LineAddr line = lineOf(a);

    // Section 6 hook: the user-mode fault handler (running inside the
    // hardware transaction) inspects the otable.  If the protection
    // belongs only to parked `retry` transactions, record them for a
    // post-commit wakeup and speculatively clear the bits (restored
    // if we abort); the access then retries without faulting.
    const auto &hooks = machine_.memsys().retryWakeupHooks();
    if (hooks.inspect) {
        std::vector<RetryWakeupHooks::Token> tokens;
        if (hooks.inspect(tc_, line, &tokens)) {
            machine_.stats().inc("btm.retry_spec_clears");
            specUfoClears_.push_back(
                {line, machine_.memory().ufoBits(line)});
            machine_.memory().setUfoBits(line, kUfoNone);
            pendingWakeups_.insert(pendingWakeups_.end(),
                                   tokens.begin(), tokens.end());
            return; // Retry the access; no fault now.
        }
    }

    const auto &policy = machine_.memsys().btmPolicy();
    if (policy.ufoFaultResponse == BtmPolicy::UfoFaultResponse::Abort) {
        // Causal edge: the software transaction whose UFO protection
        // trapped us is the aggressor (resolved via the otable).
        machine_.telemetry().onUfoTrapEdge(tc_, line);
        raiseAbort(AbortReason::UfoFault, a);
    }

    // Stall policy (Figure 8, bar 3): hold the access until the STM
    // clears the protection, aborting only if wounded meanwhile.
    machine_.stats().inc("btm.ufo_stalls");
    UTM_PROF_PHASE(machine_, tc_, ProfComp::Btm, ProfPhase::Stall);
    for (;;) {
        if (doomed_)
            takePendingAbort();
        tc_.advance(kUfoStallPoll);
        tc_.yield();
        if (!machine_.memory().ufoBits(line).faults(t))
            return; // Retry the access.
    }
}

void
BtmUnit::onTxAccess(Addr a, unsigned size, AccessType t)
{
    utm_assert(inTx_);
    const LineAddr line = lineOf(a);
    if (t == AccessType::Write) {
        if (writeSet_.insert(line).second) {
            writeLines_.push_back(line);
            machine_.memsys().addSpecWrite(tc_.id(), line);
        }
        undo_.push_back({a, size, machine_.memory().read(a, size)});
    } else {
        if (!writeSet_.count(line) && readSet_.insert(line).second) {
            readLines_.push_back(line);
            machine_.memsys().addSpecRead(tc_.id(), line);
        }
    }
}

void
BtmUnit::onCapacityOverflow(LineAddr line)
{
    machine_.stats().inc("btm.set_overflows");
    raiseAbort(AbortReason::SetOverflow, line);
}

void
BtmUnit::onPageFault(Addr a)
{
    raiseAbort(AbortReason::PageFault, a);
}

void
BtmUnit::onForbiddenOp(AbortReason r)
{
    raiseAbort(r, 0);
}

void
BtmUnit::onTimerInterrupt()
{
    raiseAbort(AbortReason::Interrupt, 0);
}

} // namespace utm
