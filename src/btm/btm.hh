/**
 * @file
 * BTM: the "best-effort" hardware transactional memory (paper
 * Section 3.1).
 *
 * BTM extends the write-back L1 with speculatively-read (SR) and
 * speculatively-written (SW) line state; conflicts are detected through
 * coherence; a transaction aborts when a speculative line overflows its
 * L1 set, on timer interrupts, syscalls, I/O, exceptions, and page
 * faults.  Contention management is age-ordered: an older requester
 * wounds the current owner; a younger requester is NACKed and retries
 * after a fixed delay (handled in MemorySystem).
 *
 * The Table 1 ISA maps to:
 *   btm_begin  -> BtmUnit::txBegin()   (abort PC == the C++ catch site)
 *   btm_end    -> BtmUnit::txEnd()
 *   btm_abort  -> BtmUnit::txAbort()
 *   btm_mov    -> the status accessors (lastAbortReason/Addr, depth)
 *
 * Register-checkpoint restoration is modelled by throwing
 * BtmAbortException, which the transaction-retry loop catches and
 * re-executes the transaction body — the software-visible effect of
 * vectoring to the abort PC with restored registers.
 */

#ifndef UFOTM_BTM_BTM_HH
#define UFOTM_BTM_BTM_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "mem/tm_iface.hh"
#include "sim/types.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Thrown when a hardware transaction aborts; caught by retry loops. */
struct BtmAbortException
{
    AbortReason reason;
    Addr addr; ///< Associated address, when the event has one.
};

/** Per-core BTM hardware model; implements the BtmClient hooks. */
class BtmUnit : public BtmClient
{
  public:
    /** Flattened-nesting depth limit (status register geometry). */
    static constexpr int kMaxNestingDepth = 8;

    /**
     * @param tc         The core this unit belongs to.
     * @param unbounded  Lift the L1 capacity bound (idealized
     *                   unbounded-HTM mode used as the paper's
     *                   performance ceiling).
     */
    explicit BtmUnit(ThreadContext &tc, bool is_unbounded = false);
    ~BtmUnit() override;

    BtmUnit(const BtmUnit&) = delete;
    BtmUnit& operator=(const BtmUnit&) = delete;

    /** @name Table 1 ISA. @{ */
    void txBegin();
    void txEnd();
    [[noreturn]] void txAbort();
    /** @} */

    /** @name Status registers (btm_mov). @{ */
    AbortReason lastAbortReason() const { return lastReason_; }
    Addr lastAbortAddr() const { return lastAddr_; }
    int nestingDepth() const { return depth_; }
    /** @} */

    /** @name BtmClient interface (memory-system callbacks). @{ */
    bool inTx() const override { return inTx_; }
    bool committing() const override { return committing_; }
    bool doomed() const override { return doomed_; }
    [[noreturn]] void takePendingAbort() override;
    std::uint64_t txAge() const override { return age_; }
    bool unbounded() const override { return unbounded_; }
    bool wroteLine(LineAddr line) const override;
    void wound(AbortReason r, ThreadId killer, LineAddr line) override;
    void onUfoFault(Addr a, AccessType t) override;
    void onTxAccess(Addr a, unsigned size, AccessType t) override;
    [[noreturn]] void onCapacityOverflow(LineAddr line) override;
    [[noreturn]] void onPageFault(Addr a) override;
    [[noreturn]] void onForbiddenOp(AbortReason r) override;
    [[noreturn]] void onTimerInterrupt() override;
    /** @} */

    /**
     * tmtorture oracle hook: outside a transaction, every piece of
     * speculative state (undo log, spec sets, UFO clears, wakeup
     * tokens, doom flag) must have been drained — the hardware
     * analogue of USTM's undo-log balance invariant.
     */
    bool
    idleStateClean() const
    {
        return inTx_ ||
               (undo_.empty() && specUfoClears_.empty() &&
                pendingWakeups_.empty() && readLines_.empty() &&
                writeLines_.empty() && readSet_.empty() &&
                writeSet_.empty() && !doomed_ && depth_ == 0);
    }

    /** @name Lifetime statistics. @{ */
    std::uint64_t commits() const { return commits_; }
    std::uint64_t aborts() const { return aborts_; }
    std::size_t readSetLines() const { return readSet_.size(); }
    std::size_t writeSetLines() const { return writeSet_.size(); }
    /** @} */

  private:
    /** Undo one speculative store (L1-held data, clean copy below). */
    struct UndoRec
    {
        Addr addr;
        unsigned size;
        std::uint64_t old;
    };

    /** Roll back speculative stores and release speculative state. */
    void rollback(bool invalidate_writes);

    /** Durable mode: append + fence the redo record inside the
     *  committing() window (shielded from wounds and timer aborts)
     *  before the speculative state is flash-cleared. */
    void persistCommit();

    /** Complete an abort on this core's own fiber and unwind. */
    [[noreturn]] void raiseAbort(AbortReason r, Addr a);

    void resetTxState();

    ThreadContext &tc_;
    Machine &machine_;
    bool unbounded_;

    bool inTx_ = false;
    bool committing_ = false;
    int depth_ = 0;
    std::uint64_t age_ = 0;
    bool doomed_ = false;
    AbortReason doomReason_ = AbortReason::None;
    Addr doomAddr_ = 0;

    AbortReason lastReason_ = AbortReason::None;
    Addr lastAddr_ = 0;

    /** UFO bits speculatively cleared by the Section 6 retry hook;
     *  restored on abort, made architectural on commit. */
    struct SpecUfoClear
    {
        LineAddr line;
        UfoBits oldBits;
    };

    std::vector<UndoRec> undo_;
    std::vector<SpecUfoClear> specUfoClears_;
    std::vector<RetryWakeupHooks::Token> pendingWakeups_;
    std::vector<LineAddr> readLines_;
    std::vector<LineAddr> writeLines_;
    std::unordered_set<LineAddr> readSet_;
    std::unordered_set<LineAddr> writeSet_;

    std::uint64_t commits_ = 0;
    std::uint64_t aborts_ = 0;
};

} // namespace utm

#endif // UFOTM_BTM_BTM_HH
