/**
 * @file
 * Speculative lock elision over BTM (paper Section 3.1: "The same
 * hardware can be used for implementing speculative lock elision").
 *
 * A critical section runs as a hardware transaction that only READS
 * the lock word: uncontended sections execute fully in parallel, and
 * coherence aborts the speculation if any thread actually acquires
 * the lock (or touches conflicting data).  After a bounded number of
 * failed speculations the section falls back to really taking the
 * lock, preserving exact lock semantics.
 */

#ifndef UFOTM_BTM_SLE_HH
#define UFOTM_BTM_SLE_HH

#include "btm/btm.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"
#include "sim/types.hh"

namespace utm {

/** Test-and-test-and-set spinlock in simulated memory. */
class SimSpinLock
{
  public:
    explicit SimSpinLock(Addr word) : word_(word) {}

    void
    acquire(ThreadContext &tc)
    {
        for (;;) {
            while (tc.load(word_, 8) != 0) {
                tc.advance(20);
                tc.yield();
            }
            if (tc.cas(word_, 8, 0, 1))
                return;
        }
    }

    void release(ThreadContext &tc) { tc.store(word_, 0, 8); }

    bool heldNow(ThreadContext &tc) { return tc.load(word_, 8) != 0; }

    Addr word() const { return word_; }

  private:
    Addr word_;
};

/**
 * Run @p body as an elided critical section of @p lock.
 *
 * @param max_attempts  Speculation attempts before falling back to a
 *                      real acquisition.
 * @return true when the section was elided, false when the lock was
 *         actually taken.
 */
template <typename Fn>
bool
elideLock(ThreadContext &tc, BtmUnit &btm, SimSpinLock &lock, Fn &&body,
          int max_attempts = 3)
{
    Machine &m = tc.machine();
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        try {
            btm.txBegin();
            // Reading (not writing) the lock word puts it in the
            // speculative read set: a real acquisition by another
            // thread aborts us through coherence.
            if (tc.load(lock.word(), 8) != 0)
                btm.txAbort();
            body();
            btm.txEnd();
            m.stats().inc("sle.elided");
            return true;
        } catch (const BtmAbortException &) {
            m.stats().inc("sle.speculation_failed");
            UTM_PROF_PHASE(m, tc, ProfComp::Sle, ProfPhase::Backoff);
            tc.advance(Cycles(40) << attempt);
            tc.yield();
        }
    }
    m.stats().inc("sle.acquired");
    lock.acquire(tc);
    body();
    lock.release(tc);
    return false;
}

} // namespace utm

#endif // UFOTM_BTM_SLE_HH
