/**
 * @file
 * USTM: the eager-versioning, eager-conflict-detection, cache-line
 * granularity software TM of paper Section 4.1, with the optional
 * UFO-based strong-atomicity extension of Section 4.2.
 *
 * The Table 3 API maps to:
 *   ustm_begin         -> Ustm::txBegin()
 *   ustm_end           -> Ustm::txEnd()
 *   ustm_abort         -> observed kill -> UstmAbortException
 *   ustm_read_barrier  -> Ustm::readBarrier()
 *   ustm_write_barrier -> Ustm::writeBarrier()
 *
 * Conflict resolution is age-based and blocking: a transaction that
 * conflicts with an older transaction stalls; one that conflicts only
 * with younger transactions kills them and waits for each victim to
 * unwind itself (restore its undo log and release its otable entries)
 * before proceeding.  A freshly-aborted transaction waits until its
 * killer retires before reissuing (livelock avoidance, Section 4.1).
 *
 * In strong-atomic mode, read ownership installs fault-on-write UFO
 * protection and write ownership installs fault-on-read+write, in
 * lockstep with otable insertion under the row lock (Algorithm 2); the
 * registered non-transactional fault handler implements the
 * software-defined contention policy (stall the access, or abort the
 * owning transaction).
 */

#ifndef UFOTM_USTM_USTM_HH
#define UFOTM_USTM_USTM_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/tm_iface.hh"
#include "sim/types.hh"
#include "ustm/otable.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Thrown when a software transaction observes that it was killed. */
struct UstmAbortException
{
};

/** Software contention-management knobs. */
struct UstmPolicy
{
    /** How the UFO fault handler treats a faulting nonT access. */
    enum class NonTFault
    {
        Stall,   ///< Stall the access until protection clears (default;
                 ///< STM transactions are statically prioritized).
        AbortTx, ///< Kill the owning software transaction(s).
    };

    NonTFault nonTFault = NonTFault::Stall;
    Cycles stallPoll = 20;   ///< Poll interval while stalled.
    Cycles lockBackoff = 10; ///< Backoff after losing an otable race.

    /**
     * Test-only stall injection: releaseEntry() behaves as if its
     * row-lock acquisition always loses — the steady state the
     * historic ReleaseStarvation livelock converged to (acquirers'
     * fixed-cadence probes phase-locked over the releaser's
     * load-to-CAS window, so the releaser never won the row lock; see
     * tests/test_tmtorture.cc).  The releasing thread spins forever,
     * its killers park in the victim-unwind wait, and no thread
     * commits again — exactly the signature the stall watchdog
     * (sim/telemetry.hh) must flag.
     */
    bool testOnlyStarveReleaseEntry = false;
};

/** The USTM runtime shared by all threads of one machine. */
class Ustm
{
  public:
    /** Default simulated address of the otable region. */
    static constexpr Addr kDefaultOtableBase = 0x08000000;

    /**
     * @param machine       Owning machine.
     * @param strong_atomic Install UFO protection with ownership.
     * @param policy        Software CM knobs.
     */
    Ustm(Machine &machine, bool strong_atomic,
         const UstmPolicy &policy = UstmPolicy{});

    /**
     * Materialize the otable and (in strong mode) register the UFO
     * fault handler.  Call once, before threads run.
     */
    void setup(ThreadContext &init);

    /** @name Transaction lifecycle (Table 3). @{ */
    void txBegin(ThreadContext &tc);
    void txEnd(ThreadContext &tc);

    /**
     * Transactional waiting — the `retry` primitive of paper
     * Section 6.  Undoes the transaction's speculative writes,
     * downgrades its write ownership to read ownership, and parks the
     * transaction in Retrying state.  Any transaction that later
     * acquires one of the watched lines for writing wakes it (the
     * wound doubles as the wakeup); the woken transaction unwinds and
     * UstmAbortException propagates to the retry loop, which re-runs
     * the body.  Eager conflict detection wakes at the writer's
     * *acquire* (not its commit, as in a lazy STM) — at worst one
     * spurious re-check, never a lost wakeup.
     */
    [[noreturn]] void txRetryWait(ThreadContext &tc);

    /** Barrier + data access helpers used by the TxHandle layer. */
    std::uint64_t txRead(ThreadContext &tc, Addr a, unsigned size);
    void txWrite(ThreadContext &tc, Addr a, std::uint64_t v,
                 unsigned size);

    void readBarrier(ThreadContext &tc, Addr a);
    void writeBarrier(ThreadContext &tc, Addr a);
    /** @} */

    /**
     * Poll point: if this transaction has been killed, unwind (restore
     * the undo log, release ownership) and throw UstmAbortException.
     */
    void checkKill(ThreadContext &tc);

    /** Is thread @p t inside a software transaction? */
    bool inTx(ThreadId t) const;

    bool strongAtomic() const { return strong_; }

    /**
     * @name Per-shard ownership tables.
     *
     * The otable is no longer a process-global singleton: the runtime
     * holds one Otable per MachineConfig::otableShards, laid out at
     * staggered simulated base addresses below the heap, and every
     * barrier routes its line to the shard owning the line's heap
     * stripe (MachineConfig::shardOfAddr).  With one shard (the
     * default) this degenerates to the paper's single global table.
     * @{
     */
    Otable &otableFor(LineAddr line) { return otables_[shardOf(line)]; }

    const Otable &
    otableFor(LineAddr line) const
    {
        return otables_[shardOf(line)];
    }

    unsigned
    shardOf(LineAddr line) const
    {
        return shardOfAddr_(line);
    }

    unsigned numShards() const { return unsigned(otables_.size()); }

    /** The first shard's table (tests; single-shard configs). */
    Otable &otable() { return otables_[0]; }
    /** @} */

    const UstmPolicy &policy() const { return policy_; }

    /** Transaction age of thread @p t (0 when inactive). */
    std::uint64_t txAgeOf(ThreadId t) const;

    /** Functional (untimed) owner-set lookup for @p line; used by the
     *  Section 6 hooks and by tests. */
    std::uint64_t peekOwners(LineAddr line) const;

    /**
     * @name tmtorture oracle hooks (sim/oracle.hh).
     *
     * Functional machine-state predicates evaluated at preemption
     * points only (no thread is mid-shared-memory-event, but a thread
     * may hold an otable row lock — transient windows under a held
     * row lock are skipped).
     * @{
     */

    /**
     * Check the otable↔UFO-bit lockstep invariant of Algorithm 2
     * (every unlocked owned entry has matching protection bits and
     * vice versa; lines whose owner set includes a parked Retrying
     * transaction are exempt, since a BTM Section 6 inspect may have
     * speculatively cleared their bits) and undo-log balance (a
     * quiescent descriptor holds no undo records and no ownership).
     */
    bool verifyOracleInvariants(std::string *why) const;

    /** Is @p line owned by, or in the undo log of, any live tx? */
    bool lineBusy(LineAddr line) const;

    /**
     * Test-only mutation hook: skip the UFO-bit install that
     * Algorithm 2 couples to otable insertion, so the lockstep oracle
     * can prove it still detects the breakage (harness self-test).
     */
    void testOnlyBreakUfoLockstep(bool on) { breakUfoLockstep_ = on; }
    /** @} */

  private:
    struct TxDesc
    {
        enum class Status
        {
            Inactive,
            Active,
            Aborting,
            Committing,
            Retrying, ///< Parked in txRetryWait; killable by anyone.
        };

        struct Owned
        {
            LineAddr line;
            Addr entry;
            bool write;
        };

        struct UndoRec
        {
            Addr addr;
            unsigned size;
            std::uint64_t old;
        };

        Status status = Status::Inactive;
        int depth = 0;
        std::uint64_t age = 0;
        std::uint64_t killedAge = 0; ///< == age means: die.
        ThreadId killerTid = -1;
        std::uint64_t killerAge = 0;
        /** @name Telemetry conflict-edge stash, written by the killer
         *  in killOwners() and consumed victim-side in unwindAbort()
         *  when the kill is taken. @{ */
        TxSiteId aggrSite = kTxSiteNone;
        LineAddr aggrLine = 0;
        /** @} */
        std::vector<Owned> owned;
        std::unordered_map<LineAddr, std::size_t> ownedIndex;
        std::vector<UndoRec> undo;
    };

    /** Outcome of one pass over the otable entry for a line. */
    struct AcquireStep
    {
        enum class Kind { Done, Retry, Conflict } kind;
        std::uint64_t conflictOwners = 0;
    };

    void acquire(ThreadContext &tc, TxDesc &tx, LineAddr line,
                 bool want_write);
    AcquireStep acquireStep(ThreadContext &tc, TxDesc &tx,
                            LineAddr line, bool want_write);
    AcquireStep lockedAcquire(ThreadContext &tc, TxDesc &tx,
                              LineAddr line, bool want_write, Addr head,
                              std::uint64_t w0_locked);

    /** Read an entry's owner set (loads word1 when multi). */
    std::uint64_t ownersOf(ThreadContext &tc, Addr entry,
                           std::uint64_t w0);

    void resolveConflict(ThreadContext &tc, TxDesc &tx,
                         std::uint64_t owners, LineAddr line);

    /** Kill every active transaction in @p owners younger than
     *  @p my_age (~0 for non-transactional requesters) and wait for
     *  each victim to unwind. @p line is the conflicting line
     *  (telemetry edge attribution). Returns false if some victim was
     *  older (caller must stall instead). */
    bool killOwners(ThreadContext &tc, std::uint64_t owners,
                    std::uint64_t my_age, TxDesc *me, LineAddr line);

    void record(TxDesc &tx, LineAddr line, Addr entry, bool write);

    void releaseAll(ThreadContext &tc, TxDesc &tx);
    void releaseEntry(ThreadContext &tc, TxDesc &tx,
                      const TxDesc::Owned &o);

    /** Durable mode: append + fence the commit's redo record while
     *  still Committing (unkillable) and holding ownership, so the
     *  fence completes before the writes become visible. */
    void persistCommit(ThreadContext &tc, TxDesc &tx);

    /** Downgrade a held write entry to read ownership (for retry). */
    void downgradeEntry(ThreadContext &tc, TxDesc::Owned &o);

    /**
     * Undo + release + throw.  @p why names the abort cause for the
     * ustm.aborts.&lt;why&gt; attribution counter: "killed" (lost a
     * conflict to another transaction) or "retry_wakeup" (parked in
     * txRetryWait and woken by a writer).
     */
    [[noreturn]] void unwindAbort(ThreadContext &tc, TxDesc &tx,
                                  const char *why);

    void installUfo(ThreadContext &tc, LineAddr line, bool write);
    void clearUfo(ThreadContext &tc, LineAddr line);

    void nonTFaultHandler(ThreadContext &tc, Addr a, AccessType t);

    /**
     * Section 6 inspect hook, run inside a BTM transaction's UFO
     * fault handler: true iff @p line is protected only by parked
     * Retrying transactions (collected into @p tokens for a
     * post-commit wakeup).  Uses a functional otable peek, modelling
     * the paper's non-transactional loads from the in-BTM handler.
     */
    bool inspectForRetryers(ThreadContext &tc, LineAddr line,
                            std::vector<RetryWakeupHooks::Token>
                                *tokens);

    /** Section 6 wake hook: called after the BTM commit. */
    void wakeRetryers(const std::vector<RetryWakeupHooks::Token> &t);

    /** Lock the row; returns the locked w0 or 0 on failure. */
    bool lockRow(ThreadContext &tc, Addr head, std::uint64_t w0);

    /** Functional (untimed) otable entry lookup for the oracles. */
    struct PeekedEntry
    {
        bool found = false;
        bool write = false;
        std::uint64_t owners = 0;
    };
    PeekedEntry peekEntry(LineAddr line) const;
    bool rowLocked(LineAddr line) const;
    bool anyOwnerRetrying(std::uint64_t owners) const;

    /** shardOfAddr for the owning machine's config (avoids a
     *  Machine include in the hot inline router above). */
    unsigned shardOfAddr_(Addr a) const;

    Machine &machine_;
    bool strong_;
    UstmPolicy policy_;
    std::vector<Otable> otables_; ///< One per otable shard.
    bool sharded_ = false;        ///< otables_.size() > 1.
    /** @name Precomputed per-shard stat names (hot-path friendly);
     *  populated by setup(), only in sharded configs. @{ */
    std::vector<std::string> shardAcquiresName_;
    std::vector<std::string> shardChainInsertsName_;
    std::vector<std::string> shardChainLenName_;
    std::vector<std::string> shardRowLockWaitName_;
    /** @} */
    std::array<TxDesc, kMaxThreads> txs_;
    bool breakUfoLockstep_ = false;
};

} // namespace utm

#endif // UFOTM_USTM_USTM_HH
