#include "ustm/ustm.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "mem/memory_system.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

namespace {

constexpr Cycles kBeginCost = 20;   ///< Checkpoint + sequence number.
constexpr Cycles kCommitCost = 10;  ///< Descriptor cleanup.
constexpr Cycles kAbortPenalty = 40;
constexpr Cycles kUndoLogCost = 2;  ///< Per-word log append.
/** Stall poll attempts before retrying the whole barrier. */
constexpr int kStallPolls = 25;
/** Safety bound for wait loops (simulator bug detector). */
constexpr long kWaitSanityBound = 50'000'000;

} // namespace

Ustm::Ustm(Machine &machine, bool strong_atomic, const UstmPolicy &policy)
    : machine_(machine), strong_(strong_atomic), policy_(policy)
{
    const MachineConfig &mc = machine.config();
    const unsigned shards = mc.otableShards ? mc.otableShards : 1;
    sharded_ = shards > 1;
    // Stagger the per-shard tables (head array + chain-node pool) at
    // page-aligned bases below the heap.  Otable's layout puts the
    // pool right after the head array, so one table spans
    // (buckets + pool) * kEntryBytes.
    const std::uint64_t span =
        (std::uint64_t(mc.otableBuckets) + 4096) * Otable::kEntryBytes;
    const std::uint64_t stride = (span + 0xfff) & ~0xfffull;
    otables_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        otables_.emplace_back(mc.otableBuckets,
                              kDefaultOtableBase + Addr(s) * stride);
    if (otables_.back().end() > mc.heapBase)
        utm_fatal("otable shards (%u x %u buckets) overflow the "
                  "pre-heap window; shrink otableBuckets",
                  shards, mc.otableBuckets);
}

unsigned
Ustm::shardOfAddr_(Addr a) const
{
    return sharded_ ? machine_.config().shardOfAddr(a) : 0;
}

void
Ustm::setup(ThreadContext &init)
{
    for (Otable &ot : otables_)
        ot.initialize(init);
    if (sharded_) {
        for (unsigned s = 0; s < otables_.size(); ++s) {
            const std::string suffix = std::to_string(s);
            shardAcquiresName_.push_back(
                std::string("shard.acquires.") + suffix);
            shardChainInsertsName_.push_back(
                std::string("shard.chain_inserts.") + suffix);
            shardChainLenName_.push_back(
                std::string("shard.chain_len.") + suffix);
            shardRowLockWaitName_.push_back(
                std::string("shard.row_lock_wait.") + suffix);
        }
    }
    if (strong_) {
        machine_.memsys().setUfoFaultHandler(
            [this](ThreadContext &tc, Addr a, AccessType t) {
                nonTFaultHandler(tc, a, t);
            });
        RetryWakeupHooks hooks;
        hooks.inspect = [this](ThreadContext &tc, LineAddr line,
                               std::vector<RetryWakeupHooks::Token>
                                   *tokens) {
            return inspectForRetryers(tc, line, tokens);
        };
        hooks.wake =
            [this](const std::vector<RetryWakeupHooks::Token> &tokens) {
                wakeRetryers(tokens);
            };
        machine_.memsys().setRetryWakeupHooks(std::move(hooks));
    }
    // Telemetry: resolve which software transactions own a line when
    // a hardware transaction traps on its UFO protection (the
    // aggressor side of the hybrid's UFO-trap conflict edge).
    if (machine_.telemetry().enabled()) {
        machine_.telemetry().setOwnerResolver(
            [this](ThreadContext &, LineAddr line) {
                return peekOwners(line);
            });
    }
}

bool
Ustm::inTx(ThreadId t) const
{
    return txs_[t].status == TxDesc::Status::Active ||
           txs_[t].status == TxDesc::Status::Committing;
}

std::uint64_t
Ustm::txAgeOf(ThreadId t) const
{
    return txs_[t].status == TxDesc::Status::Inactive ? 0 : txs_[t].age;
}

void
Ustm::txBegin(ThreadContext &tc)
{
    TxDesc &tx = txs_[tc.id()];
    if (tx.depth > 0) {
        ++tx.depth; // Flattened nesting.
        return;
    }
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm, ProfPhase::Begin);
    // Livelock avoidance: wait until the transaction that killed us
    // has retired before reissuing (Section 4.1).
    if (tx.killerTid >= 0) {
        UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm, ProfPhase::Stall);
        TxDesc &k = txs_[tx.killerTid];
        long spins = 0;
        while (k.status == TxDesc::Status::Active &&
               k.age == tx.killerAge) {
            tc.advance(policy_.stallPoll);
            tc.yield();
            if (++spins > kWaitSanityBound)
                utm_panic("killer-retire wait did not terminate");
        }
        tx.killerTid = -1;
    }
    tx.status = TxDesc::Status::Active;
    tx.depth = 1;
    tx.killedAge = 0;
    tx.age = machine_.nextTxSeq();
    tx.owned.clear();
    tx.ownedIndex.clear();
    tx.undo.clear();
    if (strong_)
        tc.disableUfo();
    machine_.stats().inc("ustm.begins");
    UTM_TRACE_EVENT(machine_, tc, TraceEvent::TxBegin,
                    TracePath::Software, AbortReason::None);
    tc.advance(kBeginCost);
}

void
Ustm::txEnd(ThreadContext &tc)
{
    TxDesc &tx = txs_[tc.id()];
    utm_assert(tx.status == TxDesc::Status::Active);
    if (tx.depth > 1) {
        --tx.depth;
        return;
    }
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm, ProfPhase::Commit);
    checkKill(tc); // Last chance to observe a kill.
    tx.status = TxDesc::Status::Committing;
    // Commit linearization point: past the final kill check, before
    // ownership release, the eager writes are final.
    machine_.notifyCommitPoint(tc);
    // Durable mode: the redo record is appended and fenced BEFORE the
    // release — conflictors wait out a Committing owner (killOwners),
    // so any dependent transaction commits strictly after this fence
    // and the durable record set stays conflict-closed downward.
    if (machine_.persist().active())
        persistCommit(tc, tx);
    releaseAll(tc, tx);
    tx.status = TxDesc::Status::Inactive;
    tx.depth = 0;
    tx.killedAge = 0;
    tx.undo.clear();
    if (strong_)
        tc.enableUfo();
    machine_.stats().inc("ustm.commits");
    UTM_TRACE_EVENT(machine_, tc, TraceEvent::TxCommit,
                    TracePath::Software, AbortReason::None);
    tc.advance(kCommitCost);
}

void
Ustm::persistCommit(ThreadContext &tc, TxDesc &tx)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm, ProfPhase::Persist);
    if (tx.undo.empty()) {
        machine_.persist().noteReadOnlyCommit();
        return;
    }
    std::vector<PersistDomain::RedoWrite> writes;
    writes.reserve(tx.undo.size());
    for (const TxDesc::UndoRec &u : tx.undo)
        writes.push_back({u.addr, u.size});
    machine_.persist().appendCommitRecord(tc, tx.age, writes);
}

std::uint64_t
Ustm::txRead(ThreadContext &tc, Addr a, unsigned size)
{
    readBarrier(tc, a);
    return tc.load(a, size);
}

void
Ustm::txWrite(ThreadContext &tc, Addr a, std::uint64_t v, unsigned size)
{
    writeBarrier(tc, a);
    TxDesc &tx = txs_[tc.id()];
    tx.undo.push_back({a, size, machine_.memory().read(a, size)});
    tc.advance(kUndoLogCost);
    tc.store(a, v, size);
}

void
Ustm::readBarrier(ThreadContext &tc, Addr a)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm,
                   ProfPhase::BarrierRead);
    machine_.stats().inc("ustm.read_barriers");
    acquire(tc, txs_[tc.id()], lineOf(a), /*want_write=*/false);
}

void
Ustm::writeBarrier(ThreadContext &tc, Addr a)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm,
                   ProfPhase::BarrierWrite);
    machine_.stats().inc("ustm.write_barriers");
    acquire(tc, txs_[tc.id()], lineOf(a), /*want_write=*/true);
}

void
Ustm::checkKill(ThreadContext &tc)
{
    TxDesc &tx = txs_[tc.id()];
    if (tx.status == TxDesc::Status::Active && tx.killedAge != 0 &&
        tx.killedAge == tx.age) {
        unwindAbort(tc, tx, "killed");
    }
}

void
Ustm::record(TxDesc &tx, LineAddr line, Addr entry, bool write)
{
    auto it = tx.ownedIndex.find(line);
    if (it != tx.ownedIndex.end()) {
        utm_assert(tx.owned[it->second].entry == entry);
        tx.owned[it->second].write |= write;
        return;
    }
    tx.ownedIndex.emplace(line, tx.owned.size());
    tx.owned.push_back({line, entry, write});
}

void
Ustm::installUfo(ThreadContext &tc, LineAddr line, bool write)
{
    if (!strong_ || breakUfoLockstep_)
        return;
    tc.setUfoBits(line, write ? kUfoBoth : kUfoWriteOnly);
}

void
Ustm::clearUfo(ThreadContext &tc, LineAddr line)
{
    if (!strong_)
        return;
    tc.setUfoBits(line, kUfoNone);
}

std::uint64_t
Ustm::ownersOf(ThreadContext &tc, Addr entry, std::uint64_t w0)
{
    if (Otable::multi(w0))
        return tc.load(entry + 8, 8);
    return 1ull << Otable::owner(w0);
}

bool
Ustm::lockRow(ThreadContext &tc, Addr head, std::uint64_t w0)
{
    utm_assert(!Otable::locked(w0));
    return tc.cas(head, 8, w0, w0 | Otable::kLock);
}

void
Ustm::acquire(ThreadContext &tc, TxDesc &tx, LineAddr line,
              bool want_write)
{
    utm_assert(tx.status == TxDesc::Status::Active);
    // Jittered backoff between probes of the same row.  A fixed
    // re-probe cadence can phase-lock with the fixed-cadence lock poll
    // of an Aborting/Committing thread's releaseEntry() under a
    // deterministic schedule: every probe (or its lockedAcquire
    // critical section) lands exactly inside the releaser's
    // load-to-CAS window, the releaser never wins the row lock, and
    // the transaction waiting for that victim to unwind spins forever
    // (found by tmtorture, ustm/minclock seed 4; see
    // tests/test_tmtorture.cc ReleaseStarvation).  A pseudo-random
    // probe gap makes the cadence aperiodic, so the releaser's
    // load-to-CAS window eventually lands with no competing probe in
    // it.  The mean gap stays at ~1.5x lockBackoff, so overall
    // contention timing is barely perturbed (same idiom as the TL2
    // retry backoff).
    bool waited = false;
    Cycles wait_start = 0;
    for (;;) {
        checkKill(tc); // throws if this transaction was killed
        AcquireStep step = acquireStep(tc, tx, line, want_write);
        switch (step.kind) {
          case AcquireStep::Kind::Done:
            if (waited) {
                machine_.contention().rowLockWait().observe(
                    tc.now() - wait_start);
                if (sharded_)
                    machine_.stats().observe(
                        shardRowLockWaitName_[shardOf(line)],
                        tc.now() - wait_start);
            }
            if (sharded_) {
                machine_.stats().inc("shard.acquires");
                machine_.stats().inc(shardAcquiresName_[shardOf(line)]);
            }
            return;
          case AcquireStep::Kind::Retry:
          case AcquireStep::Kind::Conflict:
            if (!waited) {
                waited = true;
                wait_start = tc.now();
            }
            if (step.kind == AcquireStep::Kind::Conflict)
                resolveConflict(tc, tx, step.conflictOwners, line);
            {
                UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm,
                               ProfPhase::Backoff);
                tc.advance(policy_.lockBackoff +
                           tc.rng().nextBounded(policy_.lockBackoff +
                                                1));
                tc.yield();
            }
            break;
        }
    }
}

Ustm::AcquireStep
Ustm::acquireStep(ThreadContext &tc, TxDesc &tx, LineAddr line,
                  bool want_write)
{
    const ThreadId self = tc.id();
    const std::uint64_t my_bit = 1ull << self;
    const std::uint64_t tag = Otable::tagOf(line);
    const Addr head = otableFor(line).bucketAddr(line);

    std::uint64_t w0 = tc.load(head, 8);
    if (Otable::locked(w0))
        return {AcquireStep::Kind::Retry, 0};

    // Fast path: empty bucket, no chain -- single CAS insert (locked
    // insert in strong mode to couple the UFO bit set, Algorithm 2).
    if (!Otable::used(w0) && !Otable::hasChain(w0)) {
        std::uint64_t neww0 = Otable::pack(true, strong_, want_write,
                                           false, false, self, tag);
        if (!tc.cas(head, 8, w0, neww0))
            return {AcquireStep::Kind::Retry, 0};
        if (strong_) {
            installUfo(tc, line, want_write);
            tc.store(head, neww0 & ~Otable::kLock, 8);
        }
        record(tx, line, head, want_write);
        return {AcquireStep::Kind::Done, 0};
    }

    if (Otable::used(w0) && Otable::tag(w0) == tag) {
        if (Otable::writeState(w0)) {
            if (Otable::owner(w0) == self)
                return {AcquireStep::Kind::Done, 0};
            return {AcquireStep::Kind::Conflict,
                    1ull << Otable::owner(w0)};
        }
        // Read-state head entry. Loading word1 (multi representation)
        // can race with a release/reclaim of the entry, so revalidate
        // word0 afterwards before trusting the owner set.
        std::uint64_t owners = ownersOf(tc, head, w0);
        if (Otable::multi(w0) && tc.load(head, 8) != w0)
            return {AcquireStep::Kind::Retry, 0};
        if (!want_write) {
            if (owners & my_bit)
                return {AcquireStep::Kind::Done, 0};
            // Need the row lock to join the reader set.
            if (!lockRow(tc, head, w0))
                return {AcquireStep::Kind::Retry, 0};
            return lockedAcquire(tc, tx, line, want_write, head,
                                 w0 | Otable::kLock);
        }
        if (!Otable::multi(w0) && Otable::owner(w0) == self) {
            // Sole-reader (single-owner representation) upgrade: the
            // CAS fails if any reader joined, because joining takes
            // the row lock and perturbs word0.
            std::uint64_t neww0 =
                w0 | Otable::kWrite | (strong_ ? Otable::kLock : 0);
            if (!tc.cas(head, 8, w0, neww0))
                return {AcquireStep::Kind::Retry, 0};
            if (strong_) {
                installUfo(tc, line, true);
                tc.store(head, neww0 & ~Otable::kLock, 8);
            }
            record(tx, line, head, true);
            return {AcquireStep::Kind::Done, 0};
        }
        if (owners == my_bit) {
            // Multi representation with only us: upgrade under lock.
            if (!lockRow(tc, head, w0))
                return {AcquireStep::Kind::Retry, 0};
            return lockedAcquire(tc, tx, line, want_write, head,
                                 w0 | Otable::kLock);
        }
        return {AcquireStep::Kind::Conflict, owners & ~my_bit};
    }

    // Tag mismatch or tombstoned head with a chain: locked slow path.
    if (!lockRow(tc, head, w0))
        return {AcquireStep::Kind::Retry, 0};
    return lockedAcquire(tc, tx, line, want_write, head,
                         w0 | Otable::kLock);
}

Ustm::AcquireStep
Ustm::lockedAcquire(ThreadContext &tc, TxDesc &tx, LineAddr line,
                    bool want_write, Addr head, std::uint64_t w0_locked)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm,
                   ProfPhase::OtableWalk);
    const ThreadId self = tc.id();
    const std::uint64_t my_bit = 1ull << self;
    const std::uint64_t tag = Otable::tagOf(line);
    const std::uint64_t w0 = w0_locked & ~Otable::kLock;

    auto unlock = [&](std::uint64_t final_w0) {
        tc.store(head, final_w0 & ~Otable::kLock, 8);
    };

    // Case 1: head entry matches our line (we needed the lock to join
    // the reader set or to serialize with chain updates).
    if (Otable::used(w0) && Otable::tag(w0) == tag) {
        if (Otable::writeState(w0)) {
            ThreadId o = Otable::owner(w0);
            unlock(w0);
            if (o == self)
                return {AcquireStep::Kind::Done, 0};
            return {AcquireStep::Kind::Conflict, 1ull << o};
        }
        std::uint64_t owners = ownersOf(tc, head, w0);
        if (!want_write) {
            if (owners & my_bit) {
                unlock(w0);
                return {AcquireStep::Kind::Done, 0};
            }
            tc.store(head + 8, owners | my_bit, 8);
            unlock(w0 | Otable::kMulti);
            record(tx, line, head, false);
            return {AcquireStep::Kind::Done, 0};
        }
        if (owners == my_bit) {
            // Upgrade; normalize back to the single-owner form.
            std::uint64_t neww0 =
                (w0 & ~(Otable::kMulti | Otable::kOwnerMask)) |
                Otable::kWrite |
                (static_cast<std::uint64_t>(self)
                 << Otable::kOwnerShift);
            installUfo(tc, line, true);
            unlock(neww0);
            record(tx, line, head, true);
            return {AcquireStep::Kind::Done, 0};
        }
        unlock(w0);
        return {AcquireStep::Kind::Conflict, owners & ~my_bit};
    }

    // Case 2: walk the chain for a node matching our line.
    Addr node = tc.load(head + 16, 8);
    int chain_len = 0;
    while (node != 0) {
        ++chain_len;
        std::uint64_t nw0 = tc.load(node, 8);
        if (Otable::used(nw0) && Otable::tag(nw0) == tag) {
            if (Otable::writeState(nw0)) {
                ThreadId o = Otable::owner(nw0);
                unlock(w0);
                if (o == self)
                    return {AcquireStep::Kind::Done, 0};
                return {AcquireStep::Kind::Conflict, 1ull << o};
            }
            std::uint64_t owners = ownersOf(tc, node, nw0);
            if (!want_write) {
                if (owners & my_bit) {
                    unlock(w0);
                    return {AcquireStep::Kind::Done, 0};
                }
                tc.store(node + 8, owners | my_bit, 8);
                if (!Otable::multi(nw0))
                    tc.store(node, nw0 | Otable::kMulti, 8);
                unlock(w0);
                record(tx, line, node, false);
                return {AcquireStep::Kind::Done, 0};
            }
            if (owners == my_bit) {
                std::uint64_t new_nw0 =
                    (nw0 & ~(Otable::kMulti | Otable::kOwnerMask)) |
                    Otable::kWrite |
                    (static_cast<std::uint64_t>(self)
                     << Otable::kOwnerShift);
                tc.store(node, new_nw0, 8);
                installUfo(tc, line, true);
                unlock(w0);
                record(tx, line, node, true);
                return {AcquireStep::Kind::Done, 0};
            }
            unlock(w0);
            return {AcquireStep::Kind::Conflict, owners & ~my_bit};
        }
        node = tc.load(node + 16, 8);
    }

    // Case 3: no entry for our line anywhere in this bucket.
    if (!Otable::used(w0)) {
        // Reclaim the tombstoned head slot.
        std::uint64_t neww0 =
            Otable::pack(true, false, want_write, false,
                         Otable::hasChain(w0), self, tag);
        installUfo(tc, line, want_write);
        unlock(neww0);
        record(tx, line, head, want_write);
        return {AcquireStep::Kind::Done, 0};
    }
    Addr n = otableFor(line).allocNode();
    tc.store(n, Otable::pack(true, false, want_write, false, false,
                             self, tag),
             8);
    Addr old_next = tc.load(head + 16, 8);
    tc.store(n + 16, old_next, 8);
    tc.store(head + 16, n, 8);
    installUfo(tc, line, want_write);
    unlock(w0 | Otable::kHasChain);
    record(tx, line, n, want_write);
    machine_.stats().inc("ustm.chain_inserts");
    machine_.contention().chainLen().observe(chain_len + 1);
    if (sharded_) {
        machine_.stats().inc("shard.chain_inserts");
        machine_.stats().inc(shardChainInsertsName_[shardOf(line)]);
        machine_.stats().observe(shardChainLenName_[shardOf(line)],
                                 chain_len + 1);
    }
    return {AcquireStep::Kind::Done, 0};
}

void
Ustm::resolveConflict(ThreadContext &tc, TxDesc &tx,
                      std::uint64_t owners, LineAddr line)
{
    machine_.stats().inc("ustm.conflicts");
    machine_.contention().ustmHotLines().observe(line);
    if (killOwners(tc, owners, tx.age, &tx, line))
        return; // All younger conflictors were killed; retry.

    // Some conflictor is older: stall until the entry changes (or
    // give up after a bounded spin and retry the barrier anyway).
    machine_.stats().inc("ustm.stalls");
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm, ProfPhase::Stall);
    const Addr head = otableFor(line).bucketAddr(line);
    std::uint64_t w0 = tc.load(head, 8);
    for (int i = 0; i < kStallPolls; ++i) {
        checkKill(tc);
        tc.advance(policy_.stallPoll);
        tc.yield();
        if (tc.load(head, 8) != w0)
            return;
    }
}

bool
Ustm::killOwners(ThreadContext &tc, std::uint64_t owners,
                 std::uint64_t my_age, TxDesc *me, LineAddr line)
{
    const ThreadId self = tc.id();

    struct Victim
    {
        ThreadId tid;
        std::uint64_t age;
    };
    Victim victims[kMaxThreads];
    int n_victims = 0;

    // Decide and mark atomically (no timed operations in between).
    std::uint64_t mask = owners;
    for (int o = 0; mask != 0; ++o, mask >>= 1) {
        if (!(mask & 1) || o == self)
            continue;
        TxDesc &ot = txs_[o];
        if (ot.status == TxDesc::Status::Active && my_age != 0 &&
            ot.age < my_age) {
            return false; // Older conflictor: the caller stalls.
        }
    }
    mask = owners;
    for (int o = 0; mask != 0; ++o, mask >>= 1) {
        if (!(mask & 1) || o == self)
            continue;
        TxDesc &ot = txs_[o];
        if (ot.status == TxDesc::Status::Active ||
            ot.status == TxDesc::Status::Retrying) {
            // A Retrying transaction is killable by anyone regardless
            // of age: the kill doubles as its wakeup (Section 6).
            ot.killedAge = ot.age;
            ot.killerTid = me ? self : -1;
            ot.killerAge = me ? me->age : 0;
            ot.aggrSite = tc.currentSite();
            ot.aggrLine = line;
            victims[n_victims++] = {static_cast<ThreadId>(o), ot.age};
            machine_.stats().inc(
                ot.status == TxDesc::Status::Retrying
                    ? "ustm.retry_wakeups"
                    : "ustm.kills");
        } else if (ot.status == TxDesc::Status::Aborting ||
                   ot.status == TxDesc::Status::Committing) {
            victims[n_victims++] = {static_cast<ThreadId>(o), ot.age};
        }
    }

    // Blocking STM: wait for each victim to unwind itself before
    // touching the otable again (Section 4.1).
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm, ProfPhase::Stall);
    for (int i = 0; i < n_victims; ++i) {
        TxDesc &ot = txs_[victims[i].tid];
        long spins = 0;
        while (ot.age == victims[i].age &&
               ot.status != TxDesc::Status::Inactive) {
            if (me)
                checkKill(tc); // We may be killed while waiting.
            tc.advance(policy_.stallPoll);
            tc.yield();
            if (++spins > kWaitSanityBound)
                utm_panic("victim-unwind wait did not terminate");
        }
    }
    return true;
}

void
Ustm::releaseAll(ThreadContext &tc, TxDesc &tx)
{
    // Cross-shard commit/abort protocol: drain ownership shard by
    // shard in canonical (ascending) shard-index order, preserving
    // acquisition order within a shard.  Together with the svc
    // layer's canonical-order acquisition this keeps cross-shard
    // lock/release traffic deadlock-free, and the otable↔UFO lockstep
    // invariant holds per shard throughout the drain (each entry is
    // released under its own row lock, exactly as in the single-shard
    // protocol).  Host-side sort: costs no simulated cycles, and is a
    // no-op for single-shard configs.
    if (sharded_) {
        std::stable_sort(tx.owned.begin(), tx.owned.end(),
                         [this](const TxDesc::Owned &a,
                                const TxDesc::Owned &b) {
                             return shardOf(a.line) < shardOf(b.line);
                         });
    }
    for (const auto &o : tx.owned)
        releaseEntry(tc, tx, o);
    tx.owned.clear();
    tx.ownedIndex.clear();
}

void
Ustm::releaseEntry(ThreadContext &tc, TxDesc &tx,
                   const TxDesc::Owned &o)
{
    (void)tx;
    const ThreadId self = tc.id();
    const std::uint64_t my_bit = 1ull << self;
    Otable &ot = otableFor(o.line);
    const Addr head = ot.bucketAddr(o.line);

    bool waited = false;
    Cycles wait_start = 0;
    for (;;) {
        std::uint64_t w0 = tc.load(head, 8);
        // Stall-injection hook: pretend the row lock is perpetually
        // contended, reproducing the ReleaseStarvation livelock's
        // steady state (see UstmPolicy::testOnlyStarveReleaseEntry).
        if (policy_.testOnlyStarveReleaseEntry || Otable::locked(w0) ||
            !lockRow(tc, head, w0)) {
            if (!waited) {
                waited = true;
                wait_start = tc.now();
            }
            UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm,
                           ProfPhase::Backoff);
            tc.advance(policy_.lockBackoff);
            tc.yield();
            continue;
        }
        if (waited) {
            machine_.contention().rowLockWait().observe(tc.now() -
                                                        wait_start);
            if (sharded_)
                machine_.stats().observe(
                    shardRowLockWaitName_[shardOf(o.line)],
                    tc.now() - wait_start);
        }

        if (o.entry == head) {
            utm_assert(Otable::used(w0) &&
                       Otable::tag(w0) == Otable::tagOf(o.line));
            std::uint64_t owners = ownersOf(tc, head, w0) & ~my_bit;
            if (owners == 0) {
                clearUfo(tc, o.line);
                tc.store(head,
                         Otable::hasChain(w0) ? Otable::kHasChain : 0,
                         8);
            } else {
                utm_assert(!Otable::writeState(w0));
                tc.store(head + 8, owners, 8);
                tc.store(head, (w0 | Otable::kMulti) & ~Otable::kLock,
                         8);
            }
            return;
        }

        // Chain node: find its predecessor pointer.
        Addr prev_ptr = head + 16;
        Addr node = tc.load(prev_ptr, 8);
        while (node != 0 && node != o.entry) {
            prev_ptr = node + 16;
            node = tc.load(prev_ptr, 8);
        }
        utm_assert(node == o.entry);
        std::uint64_t nw0 = tc.load(node, 8);
        std::uint64_t owners = ownersOf(tc, node, nw0) & ~my_bit;
        if (owners == 0) {
            clearUfo(tc, o.line);
            Addr next = tc.load(node + 16, 8);
            tc.store(prev_ptr, next, 8);
            ot.freeNode(node);
            Addr first = tc.load(head + 16, 8);
            std::uint64_t neww0 = w0;
            if (first == 0)
                neww0 &= ~Otable::kHasChain;
            tc.store(head, neww0 & ~Otable::kLock, 8);
        } else {
            utm_assert(!Otable::writeState(nw0));
            tc.store(node + 8, owners, 8);
            if (!Otable::multi(nw0))
                tc.store(node, nw0 | Otable::kMulti, 8);
            tc.store(head, w0 & ~Otable::kLock, 8);
        }
        return;
    }
}

void
Ustm::downgradeEntry(ThreadContext &tc, TxDesc::Owned &o)
{
    utm_assert(o.write);
    const Addr head = otableFor(o.line).bucketAddr(o.line);
    bool waited = false;
    Cycles wait_start = 0;
    for (;;) {
        std::uint64_t w0 = tc.load(head, 8);
        if (Otable::locked(w0) || !lockRow(tc, head, w0)) {
            if (!waited) {
                waited = true;
                wait_start = tc.now();
            }
            UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm,
                           ProfPhase::Backoff);
            tc.advance(policy_.lockBackoff);
            tc.yield();
            continue;
        }
        if (waited) {
            machine_.contention().rowLockWait().observe(tc.now() -
                                                        wait_start);
            if (sharded_)
                machine_.stats().observe(
                    shardRowLockWaitName_[shardOf(o.line)],
                    tc.now() - wait_start);
        }
        if (o.entry == head) {
            utm_assert(Otable::writeState(w0));
            if (strong_)
                tc.setUfoBits(o.line, kUfoWriteOnly);
            tc.store(head, w0 & ~(Otable::kWrite | Otable::kLock), 8);
        } else {
            std::uint64_t nw0 = tc.load(o.entry, 8);
            utm_assert(Otable::writeState(nw0));
            tc.store(o.entry, nw0 & ~Otable::kWrite, 8);
            if (strong_)
                tc.setUfoBits(o.line, kUfoWriteOnly);
            tc.store(head, w0 & ~Otable::kLock, 8);
        }
        o.write = false;
        return;
    }
}

void
Ustm::txRetryWait(ThreadContext &tc)
{
    TxDesc &tx = txs_[tc.id()];
    utm_assert(tx.status == TxDesc::Status::Active);
    utm_assert(tx.depth == 1); // retry composes via flattening only
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm,
                   ProfPhase::RetryWait);
    machine_.stats().inc("ustm.retries");
    UTM_TRACE_EVENT(machine_, tc, TraceEvent::TxRetry,
                    TracePath::Software, AbortReason::None);

    // Undo speculative writes, then convert write ownership to read
    // ownership so future writers conflict with (and thereby wake)
    // us.
    for (auto it = tx.undo.rbegin(); it != tx.undo.rend(); ++it)
        tc.store(it->addr, it->old, it->size);
    tx.undo.clear();
    for (auto &o : tx.owned) {
        if (o.write)
            downgradeEntry(tc, o);
    }

    tx.status = TxDesc::Status::Retrying;
    long spins = 0;
    while (tx.killedAge == 0 || tx.killedAge != tx.age) {
        tc.advance(policy_.stallPoll);
        tc.yield();
        if (++spins > kWaitSanityBound)
            utm_panic("txRetryWait never woken (lost wakeup?)");
    }
    // Woken: unwind (releases remaining read ownership) and let the
    // retry loop re-execute the body.
    tx.status = TxDesc::Status::Active;
    unwindAbort(tc, tx, "retry_wakeup");
}

void
Ustm::unwindAbort(ThreadContext &tc, TxDesc &tx, const char *why)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm,
                   ProfPhase::AbortUnwind);
    tx.status = TxDesc::Status::Aborting;
    machine_.stats().inc("ustm.aborts");
    machine_.stats().inc(std::string("ustm.aborts.") + why);
    // Telemetry edge, victim-side, for genuine conflict kills only
    // (retry_wakeup is a cooperative wakeup, not a conflict) — keeps
    // conflict.edges.ustm a lower bound on ustm.aborts.
    if (machine_.telemetry().enabled() &&
        std::strcmp(why, "killed") == 0) {
        ConflictEdge e;
        e.aggressor = tx.killerTid;
        e.aggressorSite = tx.aggrSite;
        e.victim = tc.id();
        e.victimSite = tc.currentSite();
        e.line = tx.aggrLine;
        machine_.telemetry().recordConflictEdge("ustm", e);
    }
    UTM_TRACE_EVENT(machine_, tc, TraceEvent::TxAbort,
                    TracePath::Software, AbortReason::Conflict);
    // Eager versioning: restore logged values, newest first, before
    // releasing write ownership.
    for (auto it = tx.undo.rbegin(); it != tx.undo.rend(); ++it)
        tc.store(it->addr, it->old, it->size);
    releaseAll(tc, tx);
    tx.undo.clear();
    tx.status = TxDesc::Status::Inactive;
    tx.depth = 0;
    tx.killedAge = 0;
    if (strong_)
        tc.enableUfo();
    tc.advance(kAbortPenalty);
    throw UstmAbortException{};
}

std::uint64_t
Ustm::peekOwners(LineAddr line) const
{
    const SimMemory &mem = machine_.memory();
    const std::uint64_t tag = Otable::tagOf(line);
    const Addr head = otableFor(line).bucketAddr(line);
    std::uint64_t w0 = mem.read(head, 8);
    if (Otable::used(w0) && Otable::tag(w0) == tag) {
        return Otable::multi(w0) ? mem.read(head + 8, 8)
                                 : 1ull << Otable::owner(w0);
    }
    if (Otable::hasChain(w0)) {
        Addr node = mem.read(head + 16, 8);
        while (node != 0) {
            std::uint64_t nw0 = mem.read(node, 8);
            if (Otable::used(nw0) && Otable::tag(nw0) == tag) {
                return Otable::multi(nw0) ? mem.read(node + 8, 8)
                                          : 1ull << Otable::owner(nw0);
            }
            node = mem.read(node + 16, 8);
        }
    }
    return 0;
}

Ustm::PeekedEntry
Ustm::peekEntry(LineAddr line) const
{
    const SimMemory &mem = machine_.memory();
    const std::uint64_t tag = Otable::tagOf(line);
    const Addr head = otableFor(line).bucketAddr(line);
    std::uint64_t w0 = mem.read(head, 8);
    if (Otable::used(w0) && Otable::tag(w0) == tag) {
        return {true, Otable::writeState(w0),
                Otable::multi(w0) ? mem.read(head + 8, 8)
                                  : 1ull << Otable::owner(w0)};
    }
    if (Otable::hasChain(w0)) {
        Addr node = mem.read(head + 16, 8);
        while (node != 0) {
            std::uint64_t nw0 = mem.read(node, 8);
            if (Otable::used(nw0) && Otable::tag(nw0) == tag) {
                return {true, Otable::writeState(nw0),
                        Otable::multi(nw0)
                            ? mem.read(node + 8, 8)
                            : 1ull << Otable::owner(nw0)};
            }
            node = mem.read(node + 16, 8);
        }
    }
    return {};
}

bool
Ustm::rowLocked(LineAddr line) const
{
    return Otable::locked(
        machine_.memory().read(otableFor(line).bucketAddr(line), 8));
}

bool
Ustm::anyOwnerRetrying(std::uint64_t owners) const
{
    for (int o = 0; owners != 0; ++o, owners >>= 1)
        if ((owners & 1) &&
            txs_[o].status == TxDesc::Status::Retrying)
            return true;
    return false;
}

bool
Ustm::verifyOracleInvariants(std::string *why) const
{
    std::ostringstream os;

    // Undo-log balance: outside a transaction (and while parked in
    // txRetryWait, which restores before parking) the undo log must
    // be empty, and a quiescent descriptor must hold no ownership.
    for (ThreadId t = 0; t < machine_.numThreads(); ++t) {
        const TxDesc &tx = txs_[t];
        if (tx.status == TxDesc::Status::Inactive &&
            (!tx.undo.empty() || !tx.owned.empty() || tx.depth != 0)) {
            os << "thread " << t << " inactive but undo="
               << tx.undo.size() << " owned=" << tx.owned.size()
               << " depth=" << tx.depth;
            *why = os.str();
            return false;
        }
        if (tx.status == TxDesc::Status::Retrying && !tx.undo.empty()) {
            os << "thread " << t << " parked in retry with "
               << tx.undo.size() << " unrestored undo records";
            *why = os.str();
            return false;
        }
    }

    if (!strong_)
        return true;

    const SimMemory &mem = machine_.memory();

    // Lockstep, direction 1: every owned, published (row unlocked)
    // otable entry has the protection bits Algorithm 2 installed with
    // it — fault-on-read+write for write ownership, fault-on-write
    // for read ownership.
    for (ThreadId t = 0; t < machine_.numThreads(); ++t) {
        const TxDesc &tx = txs_[t];
        if (tx.status == TxDesc::Status::Inactive)
            continue;
        for (const auto &o : tx.owned) {
            if (rowLocked(o.line))
                continue; // Mid-update under the Algorithm 2 row lock.
            PeekedEntry e = peekEntry(o.line);
            if (!e.found || !(e.owners & (1ull << t)))
                continue; // Already released (mid-releaseAll).
            if (anyOwnerRetrying(e.owners))
                continue; // BTM Section 6 may have spec-cleared bits.
            UfoBits expect = e.write ? kUfoBoth : kUfoWriteOnly;
            UfoBits got = mem.ufoBits(o.line);
            if (!(got == expect)) {
                os << "line 0x" << std::hex << o.line << std::dec
                   << ": otable " << (e.write ? "write" : "read")
                   << "-owned (thread " << t << ") but UFO bits are"
                   << " {r=" << got.faultOnRead
                   << ",w=" << got.faultOnWrite << "}";
                *why = os.str();
                return false;
            }
        }
    }

    // Lockstep, direction 2: every line with UFO protection has a
    // matching published otable entry.  forEachUfoLine enumerates in
    // hash order, so aggregate to the lowest violating line to keep
    // the report deterministic.
    bool bad = false;
    LineAddr bad_line = 0;
    UfoBits bad_bits = kUfoNone;
    const char *bad_what = nullptr;
    mem.forEachUfoLine([&](LineAddr line, UfoBits bits) {
        if (rowLocked(line))
            return;
        PeekedEntry e = peekEntry(line);
        const char *what = nullptr;
        if (!e.found || e.owners == 0) {
            what = "no otable owner";
        } else if (!anyOwnerRetrying(e.owners)) {
            UfoBits expect = e.write ? kUfoBoth : kUfoWriteOnly;
            if (!(bits == expect))
                what = "an otable entry of the other ownership kind";
        }
        if (what && (!bad || line < bad_line)) {
            bad = true;
            bad_line = line;
            bad_bits = bits;
            bad_what = what;
        }
    });
    if (bad) {
        os << "line 0x" << std::hex << bad_line << std::dec
           << ": UFO bits {r=" << bad_bits.faultOnRead
           << ",w=" << bad_bits.faultOnWrite << "} but " << bad_what;
        *why = os.str();
        return false;
    }
    return true;
}

bool
Ustm::lineBusy(LineAddr line) const
{
    for (ThreadId t = 0; t < machine_.numThreads(); ++t) {
        const TxDesc &tx = txs_[t];
        if (tx.status == TxDesc::Status::Inactive)
            continue;
        if (tx.ownedIndex.count(line))
            return true;
        for (const auto &u : tx.undo)
            if (lineOf(u.addr) == line)
                return true;
    }
    return false;
}

bool
Ustm::inspectForRetryers(ThreadContext &tc, LineAddr line,
                         std::vector<RetryWakeupHooks::Token> *tokens)
{
    tc.advance(30); // In-BTM handler execution cost.
    // A locked row is mid-update and must not be trusted: the
    // chain-insert and tombstone-reclaim paths of lockedAcquire()
    // install UFO protection *before* publishing the entry at unlock,
    // so "no owner" here may really be an about-to-be-published Active
    // owner.  Clearing the bits in that window would leave a published
    // entry unprotected (found by tmtorture; see
    // tests/test_tmtorture.cc InspectRowLockWindow).
    if (rowLocked(line))
        return false;
    std::uint64_t owners = peekOwners(line);
    if (owners == 0)
        return true; // Bits mid-release: safe to clear.
    for (int o = 0; owners != 0; ++o, owners >>= 1) {
        if (!(owners & 1))
            continue;
        TxDesc &ot = txs_[o];
        if (ot.status == TxDesc::Status::Retrying)
            tokens->emplace_back(static_cast<ThreadId>(o), ot.age);
        else if (ot.status != TxDesc::Status::Inactive)
            return false; // Live STM owner: a real conflict.
    }
    return true;
}

void
Ustm::wakeRetryers(const std::vector<RetryWakeupHooks::Token> &tokens)
{
    for (const auto &[tid, age] : tokens) {
        TxDesc &ot = txs_[tid];
        if (ot.status == TxDesc::Status::Retrying && ot.age == age) {
            ot.killedAge = ot.age;
            ot.killerTid = -1;
            machine_.stats().inc("ustm.retry_wakeups");
        }
    }
}

void
Ustm::nonTFaultHandler(ThreadContext &tc, Addr a, AccessType t)
{
    UTM_PROF_PHASE(machine_, tc, ProfComp::Ustm, ProfPhase::NonTx);
    const LineAddr line = lineOf(a);
    machine_.stats().inc("ustm.nont_faults");

    // Parked `retry` transactions never release on their own: wake
    // them first so the stall below terminates.
    std::uint64_t parked = peekOwners(line);
    for (int o = 0; parked != 0; ++o, parked >>= 1) {
        if ((parked & 1) &&
            txs_[o].status == TxDesc::Status::Retrying) {
            txs_[o].killedAge = txs_[o].age;
            txs_[o].killerTid = -1;
            machine_.stats().inc("ustm.retry_wakeups");
        }
    }

    if (policy_.nonTFault == UstmPolicy::NonTFault::Stall) {
        long spins = 0;
        for (;;) {
            tc.advance(policy_.stallPoll);
            tc.yield();
            if (!machine_.memory().ufoBits(line).faults(t))
                return;
            if (++spins > kWaitSanityBound)
                utm_panic("nonT UFO stall did not terminate");
        }
    }

    // AbortTx policy: look up the owners and kill them.
    const std::uint64_t tag = Otable::tagOf(line);
    const Addr head = otableFor(line).bucketAddr(line);
    std::uint64_t w0 = tc.load(head, 8);
    std::uint64_t owners = 0;
    if (Otable::used(w0) && Otable::tag(w0) == tag) {
        owners = ownersOf(tc, head, w0);
    } else if (Otable::hasChain(w0)) {
        Addr node = tc.load(head + 16, 8);
        while (node != 0) {
            std::uint64_t nw0 = tc.load(node, 8);
            if (Otable::used(nw0) && Otable::tag(nw0) == tag) {
                owners = ownersOf(tc, node, nw0);
                break;
            }
            node = tc.load(node + 16, 8);
        }
    }
    if (owners == 0) {
        // Protection is mid-flight (insert or release in progress);
        // let the access retry.
        tc.advance(policy_.stallPoll);
        tc.yield();
        return;
    }
    killOwners(tc, owners, /*my_age=*/0, /*me=*/nullptr, line);
}

} // namespace utm
