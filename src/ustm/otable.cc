#include "ustm/otable.hh"

#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

Otable::Otable(unsigned buckets, Addr base, unsigned pool_nodes)
    : buckets_(buckets), base_(base),
      poolBase_(base + std::uint64_t(buckets) * kEntryBytes),
      poolNodes_(pool_nodes)
{
    utm_assert(buckets > 0 && (buckets & (buckets - 1)) == 0);
    utm_assert(lineOffset(base) == 0);
    freeList_.reserve(pool_nodes);
    // LIFO free list; push in reverse so low addresses pop first.
    for (unsigned i = pool_nodes; i-- > 0;)
        freeList_.push_back(poolBase_ + std::uint64_t(i) * kEntryBytes);
}

void
Otable::initialize(ThreadContext &init)
{
    SimMemory &mem = init.machine().memory();
    for (Addr a = base_; a < end(); a += SimMemory::kPageSize)
        mem.materializePage(a);
    mem.materializePage(end() - 1);
}

unsigned
Otable::bucketIndex(LineAddr line) const
{
    // Mix the line number so strided workloads spread across buckets.
    std::uint64_t x = line >> kLineBits;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<unsigned>(x & (buckets_ - 1));
}

Addr
Otable::bucketAddr(LineAddr line) const
{
    return base_ + std::uint64_t(bucketIndex(line)) * kEntryBytes;
}

Addr
Otable::allocNode()
{
    if (freeList_.empty())
        utm_fatal("otable chain-node pool exhausted");
    Addr n = freeList_.back();
    freeList_.pop_back();
    return n;
}

void
Otable::freeNode(Addr node)
{
    utm_assert(node >= poolBase_ && node < end());
    freeList_.push_back(node);
}

} // namespace utm
