/**
 * @file
 * Layout of the USTM ownership table (paper Figure 3).
 *
 * The otable lives in *simulated* memory so that every lookup is a
 * timed, coherent access — this is what makes HyTM's transactional
 * otable reads inflate hardware-transaction footprints (paper
 * Section 5) and gives USTM its honest barrier cost.
 *
 * Each entry is 32 bytes:
 *   word0: packed { used, lock, write-state, multi, hasChain,
 *                   owner id (6 bits), tag (line >> 6) }
 *   word1: owner bitmask (valid when the multi bit is set)
 *   word2: simulated address of the next chain node (0 = none)
 *   word3: padding
 *
 * Head entries form a direct-mapped array; aliasing lines chain
 * through nodes drawn from a per-thread pool.  All chain mutations
 * happen under the head entry's lock bit; the single-owner fast path
 * is a lone compare-and-swap on word0, as in the paper's Algorithm 1.
 */

#ifndef UFOTM_USTM_OTABLE_HH
#define UFOTM_USTM_OTABLE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Ownership-table layout helper and chain-node pool. */
class Otable
{
  public:
    static constexpr unsigned kEntryBytes = 32;

    /** @name word0 bit fields. @{ */
    static constexpr std::uint64_t kUsed = 1ull << 0;
    static constexpr std::uint64_t kLock = 1ull << 1;
    static constexpr std::uint64_t kWrite = 1ull << 2;
    static constexpr std::uint64_t kMulti = 1ull << 3;
    static constexpr std::uint64_t kHasChain = 1ull << 4;
    static constexpr unsigned kOwnerShift = 5;
    static constexpr std::uint64_t kOwnerMask = 0x3full << kOwnerShift;
    static constexpr unsigned kTagShift = 11;
    /** @} */

    /**
     * @param buckets    Number of head entries (power of two).
     * @param base       Simulated base address of the head array.
     * @param pool_nodes Chain-node pool size.
     */
    Otable(unsigned buckets, Addr base, unsigned pool_nodes = 4096);

    /** Materialize the table's pages (avoids page-fault noise). */
    void initialize(ThreadContext &init);

    /** @name Address computation. @{ */
    Addr bucketAddr(LineAddr line) const;
    unsigned bucketIndex(LineAddr line) const;
    Addr base() const { return base_; }
    unsigned buckets() const { return buckets_; }
    Addr end() const { return poolBase_ + poolNodes_ * kEntryBytes; }
    /** @} */

    /** @name word0 packing. @{ */
    static std::uint64_t tagOf(LineAddr line) { return line >> kLineBits; }

    static std::uint64_t
    pack(bool used, bool lock, bool write, bool multi, bool has_chain,
         ThreadId owner, std::uint64_t tag)
    {
        return (used ? kUsed : 0) | (lock ? kLock : 0) |
               (write ? kWrite : 0) | (multi ? kMulti : 0) |
               (has_chain ? kHasChain : 0) |
               (static_cast<std::uint64_t>(owner) << kOwnerShift) |
               (tag << kTagShift);
    }

    static bool used(std::uint64_t w0) { return w0 & kUsed; }
    static bool locked(std::uint64_t w0) { return w0 & kLock; }
    static bool writeState(std::uint64_t w0) { return w0 & kWrite; }
    static bool multi(std::uint64_t w0) { return w0 & kMulti; }
    static bool hasChain(std::uint64_t w0) { return w0 & kHasChain; }

    static ThreadId
    owner(std::uint64_t w0)
    {
        return static_cast<ThreadId>((w0 & kOwnerMask) >> kOwnerShift);
    }

    static std::uint64_t tag(std::uint64_t w0) { return w0 >> kTagShift; }
    /** @} */

    /** @name Chain-node pool (host-side free list). @{ */
    Addr allocNode();
    void freeNode(Addr node);
    std::size_t freeNodes() const { return freeList_.size(); }
    /** @} */

  private:
    unsigned buckets_;
    Addr base_;
    Addr poolBase_;
    unsigned poolNodes_;
    std::vector<Addr> freeList_;
};

} // namespace utm

#endif // UFOTM_USTM_OTABLE_HH
