#include "rt/tx_queue.hh"

namespace utm {

namespace {
constexpr unsigned kValOff = 0;
constexpr unsigned kNextOff = 8;
constexpr unsigned kNodeBytes = 16;
} // namespace

TxQueue
TxQueue::create(ThreadContext &tc, TxHeap &heap)
{
    return TxQueue(heap, heap.allocZeroed(tc, 16, true));
}

void
TxQueue::enqueue(TxHandle &h, std::uint64_t value)
{
    Addr node = heap_->alloc(h.ctx(), kNodeBytes, /*line_aligned=*/true);
    h.write(node + kValOff, value, 8);
    h.write(node + kNextOff, 0, 8);
    const Addr tail = h.read(header_ + 8, 8);
    if (tail == 0)
        h.write(header_, node, 8); // Empty: head = node.
    else
        h.write(tail + kNextOff, node, 8);
    h.write(header_ + 8, node, 8);
}

bool
TxQueue::dequeue(TxHandle &h, std::uint64_t *value_out)
{
    const Addr head = h.read(header_, 8);
    if (head == 0)
        return false;
    *value_out = h.read(head + kValOff, 8);
    const Addr next = h.read(head + kNextOff, 8);
    h.write(header_, next, 8);
    if (next == 0)
        h.write(header_ + 8, 0, 8);
    return true;
}

std::uint64_t
TxQueue::size(TxHandle &h)
{
    std::uint64_t n = 0;
    Addr node = h.read(header_, 8);
    while (node != 0) {
        ++n;
        node = h.read(node + kNextOff, 8);
    }
    return n;
}

} // namespace utm
