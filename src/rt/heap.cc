#include "rt/heap.hh"

#include "mem/sim_memory.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"
#include "sim/thread_context.hh"

namespace utm {

namespace {
constexpr Cycles kAllocCost = 30;
constexpr Cycles kFreeCost = 15;
} // namespace

TxHeap::TxHeap(Machine &machine)
    : machine_(machine), base_(machine.config().heapBase),
      limit_(base_ + machine.config().heapSize), bump_(base_)
{
}

TxHeap::TxHeap(Machine &machine, Addr base, std::uint64_t size)
    : machine_(machine), base_(base), limit_(base + size), bump_(base)
{
    utm_assert(base >= machine.config().heapBase &&
               limit_ <= machine.config().heapBase +
                             machine.config().heapSize);
}

int
TxHeap::classOf(std::uint64_t bytes, bool line_aligned)
{
    utm_assert(bytes > 0);
    if (line_aligned || bytes > kLineSize) {
        // Line-aligned classes: 64, 128, 256, ... (classes 8..15).
        std::uint64_t sz = kLineSize;
        for (int c = 8; c < kNumClasses; ++c, sz <<= 1)
            if (bytes <= sz)
                return c;
        utm_fatal("allocation of %llu bytes exceeds max size class",
                  static_cast<unsigned long long>(bytes));
    }
    // Small classes: 8, 16, 24, 32, 40, 48, 56, 64 (classes 0..7).
    return static_cast<int>((bytes + 7) / 8) - 1;
}

std::uint64_t
TxHeap::classSize(int cls)
{
    if (cls < 8)
        return std::uint64_t(cls + 1) * 8;
    return std::uint64_t(kLineSize) << (cls - 8);
}

Addr
TxHeap::carve(ThreadContext &tc, std::uint64_t size, bool line_align)
{
    if (line_align && lineOffset(bump_) != 0) {
        bump_ = lineOf(bump_) + kLineSize;
    } else if (size <= kLineSize &&
               lineOf(bump_) != lineOf(bump_ + size - 1)) {
        // Keep sub-line blocks from straddling lines.
        bump_ = lineOf(bump_) + kLineSize;
    }
    if (bump_ + size > limit_)
        utm_fatal("simulated heap exhausted (%llu bytes in use)",
                  static_cast<unsigned long long>(bytesInUse_));
    Addr a = bump_;
    bump_ += size;
    // Pre-faulted arena: materialize pages as they are first carved.
    SimMemory &mem = machine_.memory();
    for (Addr p = a; p < a + size; p += SimMemory::kPageSize)
        mem.materializePage(p);
    mem.materializePage(a + size - 1);
    (void)tc;
    return a;
}

Addr
TxHeap::alloc(ThreadContext &tc, std::uint64_t bytes, bool line_aligned)
{
    tc.advance(kAllocCost);
    const int cls = classOf(bytes, line_aligned);
    auto &fl = freeLists_[cls];
    Addr a;
    if (!fl.empty()) {
        a = fl.back();
        fl.pop_back();
    } else {
        a = carve(tc, classSize(cls), cls >= 8);
    }
    bytesInUse_ += classSize(cls);
    return a;
}

Addr
TxHeap::allocZeroed(ThreadContext &tc, std::uint64_t bytes,
                    bool line_aligned)
{
    Addr a = alloc(tc, bytes, line_aligned);
    // Functional zeroing (blocks from the free list may be dirty).
    SimMemory &mem = machine_.memory();
    const std::uint64_t size = classSize(classOf(bytes, line_aligned));
    for (std::uint64_t off = 0; off < size; off += 8)
        mem.write(a + off, 0, 8);
    return a;
}

void
TxHeap::free(ThreadContext &tc, Addr a, std::uint64_t bytes,
             bool line_aligned)
{
    tc.advance(kFreeCost);
    const int cls = classOf(bytes, line_aligned);
    freeLists_[cls].push_back(a);
    utm_assert(bytesInUse_ >= classSize(cls));
    bytesInUse_ -= classSize(cls);
}

} // namespace utm
