/**
 * @file
 * Sorted singly-linked list in simulated memory, accessed through a
 * TxHandle so the active TM system mediates every read and write.
 *
 * Node layout (one line-aligned 24-byte block per node):
 *   +0  key    (u64)
 *   +8  value  (u64)
 *   +16 next   (u64, simulated address; 0 = end)
 *
 * The list header is a single word holding the head pointer.  This is
 * the structure behind genome's high-contention insertion phase.
 */

#ifndef UFOTM_RT_TX_LIST_HH
#define UFOTM_RT_TX_LIST_HH

#include <cstdint>
#include <vector>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/types.hh"

namespace utm {

/** Sorted key/value linked list over simulated memory. */
class TxList
{
  public:
    /** Wrap an existing header word at @p header. */
    TxList(TxHeap &heap, Addr header) : heap_(&heap), header_(header) {}

    /** Allocate a fresh (empty) list. */
    static TxList create(ThreadContext &tc, TxHeap &heap);

    /**
     * Insert (key, value) keeping the list sorted by key.
     * @return false if the key was already present.
     */
    bool insert(TxHandle &h, std::uint64_t key, std::uint64_t value);

    /** Look up @p key; true and *value_out set if present. */
    bool lookup(TxHandle &h, std::uint64_t key,
                std::uint64_t *value_out = nullptr);

    /** Remove @p key; true if it was present (node is freed). */
    bool remove(TxHandle &h, std::uint64_t key);

    /** Walk the whole list; returns the number of nodes. */
    std::uint64_t size(TxHandle &h);

    /** Collect all keys in order (verification helper). */
    std::vector<std::uint64_t> keys(TxHandle &h);

    Addr header() const { return header_; }

  private:
    TxHeap *heap_;
    Addr header_;
};

} // namespace utm

#endif // UFOTM_RT_TX_LIST_HH
