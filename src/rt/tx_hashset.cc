#include "rt/tx_hashset.hh"

#include "sim/logging.hh"

namespace utm {

namespace {
constexpr unsigned kCapOff = 0;
constexpr unsigned kCountOff = 8;
constexpr unsigned kSlotsOff = kLineSize; ///< Slots on their own lines.
} // namespace

TxHashSet
TxHashSet::create(ThreadContext &tc, TxHeap &heap,
                  std::uint64_t capacity)
{
    utm_assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    Addr base = heap.allocZeroed(tc, kSlotsOff + capacity * 8,
                                 /*line_aligned=*/true);
    tc.store(base + kCapOff, capacity, 8);
    return TxHashSet(base);
}

std::uint64_t
TxHashSet::hashKey(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key;
}

Addr
TxHashSet::slotAddr(std::uint64_t cap, std::uint64_t idx) const
{
    return base_ + kSlotsOff + (idx & (cap - 1)) * 8;
}

bool
TxHashSet::insert(TxHandle &h, std::uint64_t key)
{
    utm_assert(key != 0);
    const std::uint64_t cap = h.read(base_ + kCapOff, 8);
    std::uint64_t idx = hashKey(key);
    for (std::uint64_t probe = 0; probe < cap; ++probe, ++idx) {
        const Addr slot = slotAddr(cap, idx);
        const std::uint64_t cur = h.read(slot, 8);
        if (cur == key)
            return false;
        if (cur == 0) {
            // Note: no shared count field is maintained -- it would
            // serialize every insert on one hot line.
            h.write(slot, key, 8);
            return true;
        }
    }
    utm_fatal("TxHashSet full (capacity %llu)",
              static_cast<unsigned long long>(cap));
}

bool
TxHashSet::contains(TxHandle &h, std::uint64_t key)
{
    utm_assert(key != 0);
    const std::uint64_t cap = h.read(base_ + kCapOff, 8);
    std::uint64_t idx = hashKey(key);
    for (std::uint64_t probe = 0; probe < cap; ++probe, ++idx) {
        const std::uint64_t cur = h.read(slotAddr(cap, idx), 8);
        if (cur == key)
            return true;
        if (cur == 0)
            return false;
    }
    return false;
}

std::uint64_t
TxHashSet::count(TxHandle &h)
{
    const std::uint64_t cap = h.read(base_ + kCapOff, 8);
    std::uint64_t n = 0;
    for (std::uint64_t i = 0; i < cap; ++i)
        if (h.read(slotAddr(cap, i), 8) != 0)
            ++n;
    return n;
}

std::uint64_t
TxHashSet::capacity(TxHandle &h)
{
    return h.read(base_ + kCapOff, 8);
}

} // namespace utm
