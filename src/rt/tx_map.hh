/**
 * @file
 * Chained hash map over simulated memory: a bucket array of sorted
 * TxList-style chains.  With a deliberately small bucket count the
 * chain walks produce the deep-traversal read footprints of STAMP
 * vacation's tree indices.
 *
 * Layout: header { buckets (u64) } then one head-pointer word per
 * bucket (each on its own line to avoid false sharing between
 * buckets); chain nodes are TxList nodes {key, value, next}.
 */

#ifndef UFOTM_RT_TX_MAP_HH
#define UFOTM_RT_TX_MAP_HH

#include <cstdint>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/types.hh"

namespace utm {

/** Chained hash map of u64 -> u64 over simulated memory. */
class TxMap
{
  public:
    explicit TxMap(TxHeap &heap, Addr base) : heap_(&heap), base_(base)
    {
    }

    /** Allocate a map with @p buckets chains (power of two). */
    static TxMap create(ThreadContext &tc, TxHeap &heap,
                        std::uint64_t buckets);

    /** Insert; false if the key exists. */
    bool insert(TxHandle &h, std::uint64_t key, std::uint64_t value);

    /** Look up; true and *value_out set when present. */
    bool lookup(TxHandle &h, std::uint64_t key,
                std::uint64_t *value_out = nullptr);

    /** Overwrite an existing key's value; false if absent. */
    bool update(TxHandle &h, std::uint64_t key, std::uint64_t value);

    /** Remove; false if absent (node leaked, not freed — see
     *  TxList::remove). */
    bool remove(TxHandle &h, std::uint64_t key);

    /** Address of the value word for in-place RMW on present keys;
     *  0 when absent.  The chain walk is transactional. */
    Addr valueAddr(TxHandle &h, std::uint64_t key);

    /**
     * Non-transactional lookup: walks the chain with plain timed
     * loads, outside any transaction.  On strongly-atomic backends
     * such reads serialize against in-flight transactions (UFO
     * faults / coherence); on weakly-atomic ones they may observe
     * speculative values — which is exactly what the svc raw-GET
     * traffic exists to exercise.  The walk is bounded by
     * @p max_hops so a torn next pointer can never loop it forever.
     */
    bool rawLookup(ThreadContext &tc, std::uint64_t key,
                   std::uint64_t *value_out = nullptr,
                   int max_hops = 128);

    /** Total entries (verification helper; walks everything). */
    std::uint64_t size(TxHandle &h);

    Addr base() const { return base_; }

  private:
    Addr bucketHead(std::uint64_t buckets, std::uint64_t key) const;

    TxHeap *heap_;
    Addr base_;
};

} // namespace utm

#endif // UFOTM_RT_TX_MAP_HH
