/**
 * @file
 * Simulated-memory heap allocator.
 *
 * Carves the machine's heap region into size-class chunks.  Metadata
 * is host-side (the allocator itself is not under test), but the cost
 * of allocation is charged and freshly carved pages are materialized
 * eagerly — modelling a pre-faulted malloc arena, so that transactional
 * allocations do not page-fault (see DESIGN.md).
 *
 * Allocations never straddle a cache line unless they are larger than
 * one line, in which case they are line-aligned; this keeps the
 * line-granularity TM systems honest about false sharing.
 */

#ifndef UFOTM_RT_HEAP_HH
#define UFOTM_RT_HEAP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace utm {

class Machine;
class ThreadContext;

/** Shared allocator over the machine's simulated heap region. */
class TxHeap
{
  public:
    explicit TxHeap(Machine &machine);

    /**
     * Allocator over the sub-region [@p base, @p base + @p size) of
     * the machine's heap; used by the sharded KV store to give each
     * shard its own address stripe (and thereby its own otable shard,
     * MachineConfig::shardOfAddr).  Regions must not overlap another
     * live allocator — including the whole-heap one runWorkload()
     * hands to Workload::setup.
     */
    TxHeap(Machine &machine, Addr base, std::uint64_t size);

    /**
     * Allocate @p bytes (rounded to a size class).  Line-aligned when
     * @p line_aligned or when the size exceeds one line.
     */
    Addr alloc(ThreadContext &tc, std::uint64_t bytes,
               bool line_aligned = false);

    /** Return a block to its size-class free list; @p line_aligned
     *  must match the allocation. */
    void free(ThreadContext &tc, Addr a, std::uint64_t bytes,
              bool line_aligned = false);

    /** Allocate and zero. */
    Addr allocZeroed(ThreadContext &tc, std::uint64_t bytes,
                     bool line_aligned = false);

    std::uint64_t bytesInUse() const { return bytesInUse_; }
    std::uint64_t bytesCarved() const { return bump_ - base_; }

  private:
    static constexpr int kNumClasses = 24;

    static int classOf(std::uint64_t bytes, bool line_aligned);
    static std::uint64_t classSize(int cls);

    Addr carve(ThreadContext &tc, std::uint64_t size, bool line_align);

    Machine &machine_;
    Addr base_;
    Addr limit_;
    Addr bump_;
    std::array<std::vector<Addr>, kNumClasses> freeLists_;
    std::uint64_t bytesInUse_ = 0;
};

} // namespace utm

#endif // UFOTM_RT_HEAP_HH
