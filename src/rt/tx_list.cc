#include "rt/tx_list.hh"

#include "sim/logging.hh"

namespace utm {

namespace {
constexpr unsigned kNodeBytes = 24;
constexpr unsigned kKeyOff = 0;
constexpr unsigned kValOff = 8;
constexpr unsigned kNextOff = 16;
} // namespace

TxList
TxList::create(ThreadContext &tc, TxHeap &heap)
{
    Addr header = heap.allocZeroed(tc, 8);
    return TxList(heap, header);
}

bool
TxList::insert(TxHandle &h, std::uint64_t key, std::uint64_t value)
{
    // Find the insertion point: prev_ptr is the address of the
    // pointer cell to rewrite (header or a node's next field).
    Addr prev_ptr = header_;
    Addr node = h.read(prev_ptr, 8);
    while (node != 0) {
        std::uint64_t nkey = h.read(node + kKeyOff, 8);
        if (nkey == key)
            return false;
        if (nkey > key)
            break;
        prev_ptr = node + kNextOff;
        node = h.read(prev_ptr, 8);
    }
    Addr fresh = heap_->alloc(h.ctx(), kNodeBytes, /*line_aligned=*/true);
    h.write(fresh + kKeyOff, key, 8);
    h.write(fresh + kValOff, value, 8);
    h.write(fresh + kNextOff, node, 8);
    h.write(prev_ptr, fresh, 8);
    return true;
}

bool
TxList::lookup(TxHandle &h, std::uint64_t key, std::uint64_t *value_out)
{
    Addr node = h.read(header_, 8);
    while (node != 0) {
        std::uint64_t nkey = h.read(node + kKeyOff, 8);
        if (nkey == key) {
            if (value_out)
                *value_out = h.read(node + kValOff, 8);
            return true;
        }
        if (nkey > key)
            return false;
        node = h.read(node + kNextOff, 8);
    }
    return false;
}

bool
TxList::remove(TxHandle &h, std::uint64_t key)
{
    Addr prev_ptr = header_;
    Addr node = h.read(prev_ptr, 8);
    while (node != 0) {
        std::uint64_t nkey = h.read(node + kKeyOff, 8);
        if (nkey == key) {
            Addr next = h.read(node + kNextOff, 8);
            h.write(prev_ptr, next, 8);
            // The node is leaked, not freed: heap metadata is host
            // state and is not rolled back on abort, so freeing
            // inside a (re-executable) transaction could hand the
            // block out while the old list still links it.
            return true;
        }
        if (nkey > key)
            return false;
        prev_ptr = node + kNextOff;
        node = h.read(prev_ptr, 8);
    }
    return false;
}

std::uint64_t
TxList::size(TxHandle &h)
{
    std::uint64_t n = 0;
    Addr node = h.read(header_, 8);
    while (node != 0) {
        ++n;
        node = h.read(node + kNextOff, 8);
    }
    return n;
}

std::vector<std::uint64_t>
TxList::keys(TxHandle &h)
{
    std::vector<std::uint64_t> out;
    Addr node = h.read(header_, 8);
    while (node != 0) {
        out.push_back(h.read(node + kKeyOff, 8));
        node = h.read(node + kNextOff, 8);
    }
    return out;
}

} // namespace utm
