/**
 * @file
 * FIFO queue over simulated memory, accessed through a TxHandle.
 *
 * Layout: one header line holding {head, tail} pointers; nodes are
 * line-aligned {value, next} pairs.  The shared header makes the
 * queue a natural contention point, as in STAMP's intruder.
 * Dequeued nodes are leaked, not freed (heap metadata is host state
 * and is not rolled back on abort — see TxList::remove).
 */

#ifndef UFOTM_RT_TX_QUEUE_HH
#define UFOTM_RT_TX_QUEUE_HH

#include <cstdint>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/types.hh"

namespace utm {

/** Transactional FIFO of u64 values. */
class TxQueue
{
  public:
    TxQueue(TxHeap &heap, Addr header) : heap_(&heap), header_(header)
    {
    }

    /** Allocate an empty queue. */
    static TxQueue create(ThreadContext &tc, TxHeap &heap);

    void enqueue(TxHandle &h, std::uint64_t value);

    /** Pop the oldest value; false when empty. */
    bool dequeue(TxHandle &h, std::uint64_t *value_out);

    /** Walk the queue (verification helper). */
    std::uint64_t size(TxHandle &h);

    Addr header() const { return header_; }

  private:
    TxHeap *heap_;
    Addr header_; ///< +0 head ptr, +8 tail ptr.
};

} // namespace utm

#endif // UFOTM_RT_TX_QUEUE_HH
