#include "rt/tx_map.hh"

#include "sim/logging.hh"

namespace utm {

namespace {
constexpr unsigned kNodeBytes = 24;
constexpr unsigned kKeyOff = 0;
constexpr unsigned kValOff = 8;
constexpr unsigned kNextOff = 16;

std::uint64_t
mixKey(std::uint64_t key)
{
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    return key;
}

} // namespace

TxMap
TxMap::create(ThreadContext &tc, TxHeap &heap, std::uint64_t buckets)
{
    utm_assert(buckets >= 1 && (buckets & (buckets - 1)) == 0);
    // Header line + one line per bucket head.
    Addr base = heap.allocZeroed(
        tc, kLineSize + buckets * kLineSize, /*line_aligned=*/true);
    tc.store(base, buckets, 8);
    return TxMap(heap, base);
}

Addr
TxMap::bucketHead(std::uint64_t buckets, std::uint64_t key) const
{
    const std::uint64_t b = mixKey(key) & (buckets - 1);
    return base_ + kLineSize + b * kLineSize;
}

bool
TxMap::insert(TxHandle &h, std::uint64_t key, std::uint64_t value)
{
    const std::uint64_t buckets = h.read(base_, 8);
    Addr prev_ptr = bucketHead(buckets, key);
    Addr node = h.read(prev_ptr, 8);
    while (node != 0) {
        std::uint64_t nkey = h.read(node + kKeyOff, 8);
        if (nkey == key)
            return false;
        if (nkey > key)
            break;
        prev_ptr = node + kNextOff;
        node = h.read(prev_ptr, 8);
    }
    Addr fresh = heap_->alloc(h.ctx(), kNodeBytes, /*line_aligned=*/true);
    h.write(fresh + kKeyOff, key, 8);
    h.write(fresh + kValOff, value, 8);
    h.write(fresh + kNextOff, node, 8);
    h.write(prev_ptr, fresh, 8);
    return true;
}

Addr
TxMap::valueAddr(TxHandle &h, std::uint64_t key)
{
    const std::uint64_t buckets = h.read(base_, 8);
    Addr node = h.read(bucketHead(buckets, key), 8);
    while (node != 0) {
        std::uint64_t nkey = h.read(node + kKeyOff, 8);
        if (nkey == key)
            return node + kValOff;
        if (nkey > key)
            return 0;
        node = h.read(node + kNextOff, 8);
    }
    return 0;
}

bool
TxMap::rawLookup(ThreadContext &tc, std::uint64_t key,
                 std::uint64_t *value_out, int max_hops)
{
    const std::uint64_t buckets = tc.load(base_, 8);
    Addr node = tc.load(bucketHead(buckets, key), 8);
    for (int hops = 0; node != 0 && hops < max_hops; ++hops) {
        const std::uint64_t nkey = tc.load(node + kKeyOff, 8);
        if (nkey == key) {
            const std::uint64_t v = tc.load(node + kValOff, 8);
            if (value_out)
                *value_out = v;
            return true;
        }
        if (nkey > key)
            return false;
        node = tc.load(node + kNextOff, 8);
    }
    return false;
}

bool
TxMap::lookup(TxHandle &h, std::uint64_t key, std::uint64_t *value_out)
{
    Addr va = valueAddr(h, key);
    if (va == 0)
        return false;
    if (value_out)
        *value_out = h.read(va, 8);
    return true;
}

bool
TxMap::update(TxHandle &h, std::uint64_t key, std::uint64_t value)
{
    Addr va = valueAddr(h, key);
    if (va == 0)
        return false;
    h.write(va, value, 8);
    return true;
}

bool
TxMap::remove(TxHandle &h, std::uint64_t key)
{
    const std::uint64_t buckets = h.read(base_, 8);
    Addr prev_ptr = bucketHead(buckets, key);
    Addr node = h.read(prev_ptr, 8);
    while (node != 0) {
        std::uint64_t nkey = h.read(node + kKeyOff, 8);
        if (nkey == key) {
            Addr next = h.read(node + kNextOff, 8);
            h.write(prev_ptr, next, 8);
            return true;
        }
        if (nkey > key)
            return false;
        prev_ptr = node + kNextOff;
        node = h.read(prev_ptr, 8);
    }
    return false;
}

std::uint64_t
TxMap::size(TxHandle &h)
{
    const std::uint64_t buckets = h.read(base_, 8);
    std::uint64_t n = 0;
    for (std::uint64_t b = 0; b < buckets; ++b) {
        Addr node = h.read(base_ + kLineSize + b * kLineSize, 8);
        while (node != 0) {
            ++n;
            node = h.read(node + kNextOff, 8);
        }
    }
    return n;
}

} // namespace utm
