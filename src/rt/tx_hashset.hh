/**
 * @file
 * Fixed-capacity open-addressing hash set over simulated memory
 * (linear probing; key 0 is the empty sentinel).  Used by genome's
 * segment-deduplication phase.
 *
 * Layout: header { capacity (u64), count (u64) } followed by the
 * line-aligned slot array.
 */

#ifndef UFOTM_RT_TX_HASHSET_HH
#define UFOTM_RT_TX_HASHSET_HH

#include <cstdint>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/types.hh"

namespace utm {

/** Open-addressing hash set of non-zero u64 keys. */
class TxHashSet
{
  public:
    /** Wrap an existing set at @p base. */
    explicit TxHashSet(Addr base) : base_(base) {}

    /** Allocate a set with @p capacity slots (power of two). */
    static TxHashSet create(ThreadContext &tc, TxHeap &heap,
                            std::uint64_t capacity);

    /**
     * Insert @p key (must be non-zero).
     * @return false if already present.
     */
    bool insert(TxHandle &h, std::uint64_t key);

    bool contains(TxHandle &h, std::uint64_t key);

    /** Number of keys (full scan; verification helper). */
    std::uint64_t count(TxHandle &h);

    std::uint64_t capacity(TxHandle &h);

    Addr base() const { return base_; }

  private:
    static std::uint64_t hashKey(std::uint64_t key);

    Addr slotAddr(std::uint64_t cap, std::uint64_t idx) const;

    Addr base_;
};

} // namespace utm

#endif // UFOTM_RT_TX_HASHSET_HH
