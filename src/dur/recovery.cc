#include "dur/recovery.hh"

#include <algorithm>

#include "mem/persist.hh"
#include "mem/sim_memory.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/machine.hh"

namespace utm {
namespace dur {

namespace {

/**
 * Scan one shard log for valid records.  Stops at the first zero
 * header (unwritten space) or invalid record (torn tail: the crash
 * hit mid-write-back).  Per-shard append serialization guarantees a
 * torn record is the last one, so stopping is truncation.
 */
void
scanShard(Machine &machine, unsigned shard, RecoveryReport *rep,
          std::vector<RecoveredRecord> *out)
{
    const PersistConfig &pc = machine.config().persist;
    SimMemory &mem = machine.memory();
    const Addr base =
        pc.logBase + Addr(shard) * pc.logShardStride + kLineSize;
    const std::uint64_t capacity = pc.logShardStride - kLineSize;
    constexpr std::uint64_t kMinLen =
        8 * (1 + PersistDomain::kRecordFixedWords +
             PersistDomain::kRecordWordsPerWrite);

    ++rep->shardsScanned;
    std::uint64_t off = 0;
    while (off + 8 <= capacity) {
        const std::uint64_t header = mem.read(base + off, 8);
        if (header == 0)
            break; // Unwritten space: the log ends here.
        const std::uint64_t len = header & 0xffffffffull;
        const std::uint32_t cksum =
            static_cast<std::uint32_t>(header >> 32);
        ++rep->recordsScanned;
        rep->cycles += pc.recoverScanPerRecord;
        if (len < kMinLen || len % 8 != 0 || off + len > capacity) {
            ++rep->recordsDiscarded; // Torn header: truncate.
            break;
        }
        const std::uint64_t nwords = len / 8 - 1;
        std::vector<std::uint64_t> words(nwords);
        for (std::uint64_t i = 0; i < nwords; ++i)
            words[i] = mem.read(base + off + 8 * (i + 1), 8);
        const std::uint64_t nwrites = words[2];
        const bool shape_ok =
            nwords == PersistDomain::kRecordFixedWords +
                          PersistDomain::kRecordWordsPerWrite * nwrites;
        if (!shape_ok ||
            persistChecksum(words.data(), words.size()) != cksum) {
            ++rep->recordsDiscarded; // Torn payload: truncate.
            break;
        }
        rep->bytesScanned += len;
        RecoveredRecord rec;
        rec.txid = words[0];
        rec.commitTs = words[1];
        rec.shard = shard;
        rec.writes.reserve(nwrites);
        for (std::uint64_t w = 0; w < nwrites; ++w) {
            const std::uint64_t *t =
                &words[PersistDomain::kRecordFixedWords +
                       PersistDomain::kRecordWordsPerWrite * w];
            RecoveredWrite rw;
            rw.addr = t[0];
            rw.value = t[1];
            rw.size = static_cast<unsigned>(t[2] & 0xff);
            rw.ufo = UfoBits{(t[2] & 0x100) != 0, (t[2] & 0x200) != 0};
            rec.writes.push_back(rw);
        }
        out->push_back(std::move(rec));
        off += len;
    }
}

} // namespace

RecoveryReport
recover(Machine &machine, const PersistentImage &image)
{
    const PersistConfig &pc = machine.config().persist;
    SimMemory &mem = machine.memory();
    RecoveryReport rep;

    // 1. Overlay the surviving lines: data and UFO bits, exactly as
    // they crossed the persistence boundary.
    for (const auto &[line, img] : image.lines()) {
        mem.materializePage(line);
        for (unsigned o = 0; o < kLineSize; o += 8) {
            std::uint64_t w = 0;
            for (int b = 0; b < 8; ++b)
                w |= std::uint64_t(img.data[o + b]) << (8 * b);
            mem.write(line + o, w, 8);
        }
        mem.setUfoBits(line, img.ufo);
        ++rep.linesLoaded;
        rep.cycles += pc.recoverLoadPerLine;
    }

    // 2. Scan every shard log, truncating torn tails.
    const unsigned shards = std::max(1u, machine.config().otableShards);
    std::vector<RecoveredRecord> records;
    for (unsigned s = 0; s < shards; ++s)
        scanShard(machine, s, &rep, &records);

    // 3. Replay across shards in commit-timestamp order.  Timestamps
    // are globally unique (a dense machine-wide counter), so the
    // order is total.
    std::sort(records.begin(), records.end(),
              [](const RecoveredRecord &a, const RecoveredRecord &b) {
                  return a.commitTs < b.commitTs;
              });
    rep.appliedTs.reserve(records.size());
    for (const RecoveredRecord &rec : records) {
        for (const RecoveredWrite &w : rec.writes) {
            utm_assert(w.size >= 1 && w.size <= 8);
            mem.materializePage(w.addr);
            mem.write(w.addr, w.value, w.size);
            ++rep.writesApplied;
            rep.cycles += pc.recoverApplyPerWrite;
        }
        ++rep.recordsApplied;
        rep.appliedTs.push_back(rec.commitTs);
        rep.maxCommitTs = std::max(rep.maxCommitTs, rec.commitTs);
    }

    // 4. Scrub surviving protection bits: no transaction is live, the
    // ownership table rebuilds empty, and the otable↔UFO lockstep
    // invariant therefore requires an all-clear protection map.
    std::vector<LineAddr> protectedLines;
    mem.forEachUfoLine([&](LineAddr line, UfoBits) {
        protectedLines.push_back(line);
    });
    std::sort(protectedLines.begin(), protectedLines.end());
    for (LineAddr line : protectedLines)
        mem.setUfoBits(line, kUfoNone);
    rep.ufoLinesScrubbed = protectedLines.size();

    StatsRegistry &st = machine.stats();
    st.set("rec.shards_scanned", rep.shardsScanned);
    st.set("rec.lines_loaded", rep.linesLoaded);
    st.set("rec.records.scanned", rep.recordsScanned);
    st.set("rec.records.applied", rep.recordsApplied);
    st.set("rec.records.discarded", rep.recordsDiscarded);
    st.set("rec.writes_applied", rep.writesApplied);
    st.set("rec.bytes_scanned", rep.bytesScanned);
    st.set("rec.ufo_lines_scrubbed", rep.ufoLinesScrubbed);
    st.set("rec.max_commit_ts", rep.maxCommitTs);
    st.set("rec.cycles", rep.cycles);
    return rep;
}

std::string
RecoveryReport::toJson() const
{
    json::Writer w;
    w.beginObject();
    w.kv("schema", "ufotm-recover");
    w.kv("version", std::uint64_t(1));
    w.kv("shards_scanned", shardsScanned);
    w.kv("lines_loaded", linesLoaded);
    w.key("records").beginObject();
    w.kv("scanned", recordsScanned);
    w.kv("applied", recordsApplied);
    w.kv("discarded", recordsDiscarded);
    w.endObject();
    w.kv("writes_applied", writesApplied);
    w.kv("bytes_scanned", bytesScanned);
    w.kv("ufo_lines_scrubbed", ufoLinesScrubbed);
    w.kv("max_commit_ts", maxCommitTs);
    w.kv("recovery_cycles", cycles);
    w.endObject();
    return w.str();
}

} // namespace dur
} // namespace utm
