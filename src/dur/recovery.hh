/**
 * @file
 * Crash recovery for durable UFO-TM (mem/persist.hh).
 *
 * Recovery is a pure function of the persistent image: it loads the
 * surviving lines into a freshly-constructed machine, scans each
 * shard's redo log, truncates the (at most one, provably last) torn
 * record per shard by checksum, replays the valid records across all
 * shards in commit-timestamp order, and scrubs every surviving UFO
 * protection bit — no transaction is live after a crash, so the
 * otable↔UFO lockstep invariant demands an all-clear protection map
 * to match the rebuilt-empty ownership table.
 *
 * Because nothing host-side from the crashed machine is consulted and
 * the image is never mutated, recovering twice is identical to
 * recovering once (idempotence), and the same image always recovers
 * to the same state.
 *
 * The caller is responsible for deterministically re-creating the
 * store layout (heap allocations) on the target machine before
 * calling recover() — the image overlay then restores the checkpoint
 * bytes and the replay applies every durable commit on top.
 */

#ifndef UFOTM_DUR_RECOVERY_HH
#define UFOTM_DUR_RECOVERY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace utm {

class Machine;
class PersistentImage;

namespace dur {

/** One replayed redo write. */
struct RecoveredWrite
{
    Addr addr;
    std::uint64_t value;
    unsigned size;
    UfoBits ufo; ///< Protection bits the committer had published.
};

/** One valid redo record, parsed from a shard log. */
struct RecoveredRecord
{
    std::uint64_t txid;
    std::uint64_t commitTs;
    unsigned shard;
    std::vector<RecoveredWrite> writes;
};

/**
 * What recovery did; rendered as the `ufotm-recover` JSON report and
 * exported as the target machine's `rec.*` counters.
 */
struct RecoveryReport
{
    std::uint64_t shardsScanned = 0;
    std::uint64_t linesLoaded = 0;
    std::uint64_t recordsScanned = 0;   ///< applied + discarded
    std::uint64_t recordsApplied = 0;
    std::uint64_t recordsDiscarded = 0; ///< torn tails truncated
    std::uint64_t writesApplied = 0;
    std::uint64_t bytesScanned = 0;
    std::uint64_t ufoLinesScrubbed = 0;
    std::uint64_t maxCommitTs = 0;      ///< 0 when nothing applied
    Cycles cycles = 0;                  ///< modeled recovery cost

    /** Commit timestamps applied, ascending (prefix-consistency
     *  oracle input; not part of the JSON report). */
    std::vector<std::uint64_t> appliedTs;

    /** The `ufotm-recover` JSON document. */
    std::string toJson() const;
};

/**
 * Recover @p machine from @p image: overlay the surviving lines,
 * scan + truncate + replay the redo logs, scrub UFO bits, and set
 * the machine's `rec.*` counters.  The machine must have the same
 * configuration (heap/otable/persist geometry) as the crashed one.
 */
RecoveryReport recover(Machine &machine, const PersistentImage &image);

} // namespace dur
} // namespace utm

#endif // UFOTM_DUR_RECOVERY_HH
