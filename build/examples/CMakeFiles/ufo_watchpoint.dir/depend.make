# Empty dependencies file for ufo_watchpoint.
# This may be replaced when dependencies are built.
