file(REMOVE_RECURSE
  "CMakeFiles/ufo_watchpoint.dir/ufo_watchpoint.cpp.o"
  "CMakeFiles/ufo_watchpoint.dir/ufo_watchpoint.cpp.o.d"
  "ufo_watchpoint"
  "ufo_watchpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ufo_watchpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
