# Empty compiler generated dependencies file for tmsim.
# This may be replaced when dependencies are built.
