file(REMOVE_RECURSE
  "CMakeFiles/tmsim.dir/tmsim.cpp.o"
  "CMakeFiles/tmsim.dir/tmsim.cpp.o.d"
  "tmsim"
  "tmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
