# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank "/root/repo/build/examples/bank")
set_tests_properties(example_bank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_phtm "/root/repo/build/examples/bank" "phtm")
set_tests_properties(example_bank_phtm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_watchpoint "/root/repo/build/examples/ufo_watchpoint")
set_tests_properties(example_watchpoint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lock_elision "/root/repo/build/examples/lock_elision")
set_tests_properties(example_lock_elision PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_producer_consumer "/root/repo/build/examples/producer_consumer")
set_tests_properties(example_producer_consumer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tmsim "/root/repo/build/examples/tmsim" "-w" "intruder" "-s" "ufo-hybrid" "-t" "4" "--stats" "btm.aborts")
set_tests_properties(example_tmsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tmsim_labyrinth "/root/repo/build/examples/tmsim" "-w" "labyrinth" "-s" "tl2" "-t" "2" "--scale" "0.5")
set_tests_properties(example_tmsim_labyrinth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
