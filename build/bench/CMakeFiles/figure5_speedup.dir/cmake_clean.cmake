file(REMOVE_RECURSE
  "CMakeFiles/figure5_speedup.dir/figure5_speedup.cc.o"
  "CMakeFiles/figure5_speedup.dir/figure5_speedup.cc.o.d"
  "figure5_speedup"
  "figure5_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
