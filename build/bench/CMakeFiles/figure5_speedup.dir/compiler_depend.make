# Empty compiler generated dependencies file for figure5_speedup.
# This may be replaced when dependencies are built.
