# Empty compiler generated dependencies file for extension_labyrinth.
# This may be replaced when dependencies are built.
