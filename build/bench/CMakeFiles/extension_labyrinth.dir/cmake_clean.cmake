file(REMOVE_RECURSE
  "CMakeFiles/extension_labyrinth.dir/extension_labyrinth.cc.o"
  "CMakeFiles/extension_labyrinth.dir/extension_labyrinth.cc.o.d"
  "extension_labyrinth"
  "extension_labyrinth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_labyrinth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
