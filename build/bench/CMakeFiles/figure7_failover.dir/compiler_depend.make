# Empty compiler generated dependencies file for figure7_failover.
# This may be replaced when dependencies are built.
