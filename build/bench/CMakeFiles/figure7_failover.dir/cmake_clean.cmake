file(REMOVE_RECURSE
  "CMakeFiles/figure7_failover.dir/figure7_failover.cc.o"
  "CMakeFiles/figure7_failover.dir/figure7_failover.cc.o.d"
  "figure7_failover"
  "figure7_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
