# Empty dependencies file for ablation_l1_capacity.
# This may be replaced when dependencies are built.
