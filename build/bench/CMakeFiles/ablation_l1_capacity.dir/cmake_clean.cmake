file(REMOVE_RECURSE
  "CMakeFiles/ablation_l1_capacity.dir/ablation_l1_capacity.cc.o"
  "CMakeFiles/ablation_l1_capacity.dir/ablation_l1_capacity.cc.o.d"
  "ablation_l1_capacity"
  "ablation_l1_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l1_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
