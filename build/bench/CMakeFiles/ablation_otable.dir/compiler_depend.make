# Empty compiler generated dependencies file for ablation_otable.
# This may be replaced when dependencies are built.
