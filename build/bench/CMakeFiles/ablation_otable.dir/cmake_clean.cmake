file(REMOVE_RECURSE
  "CMakeFiles/ablation_otable.dir/ablation_otable.cc.o"
  "CMakeFiles/ablation_otable.dir/ablation_otable.cc.o.d"
  "ablation_otable"
  "ablation_otable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_otable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
