file(REMOVE_RECURSE
  "CMakeFiles/figure6_aborts.dir/figure6_aborts.cc.o"
  "CMakeFiles/figure6_aborts.dir/figure6_aborts.cc.o.d"
  "figure6_aborts"
  "figure6_aborts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
