# Empty dependencies file for figure6_aborts.
# This may be replaced when dependencies are built.
