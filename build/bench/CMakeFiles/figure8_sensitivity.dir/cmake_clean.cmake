file(REMOVE_RECURSE
  "CMakeFiles/figure8_sensitivity.dir/figure8_sensitivity.cc.o"
  "CMakeFiles/figure8_sensitivity.dir/figure8_sensitivity.cc.o.d"
  "figure8_sensitivity"
  "figure8_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure8_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
