# Empty compiler generated dependencies file for figure8_sensitivity.
# This may be replaced when dependencies are built.
