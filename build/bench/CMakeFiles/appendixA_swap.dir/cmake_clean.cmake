file(REMOVE_RECURSE
  "CMakeFiles/appendixA_swap.dir/appendixA_swap.cc.o"
  "CMakeFiles/appendixA_swap.dir/appendixA_swap.cc.o.d"
  "appendixA_swap"
  "appendixA_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixA_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
