# Empty compiler generated dependencies file for appendixA_swap.
# This may be replaced when dependencies are built.
