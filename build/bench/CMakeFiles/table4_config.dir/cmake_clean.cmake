file(REMOVE_RECURSE
  "CMakeFiles/table4_config.dir/table4_config.cc.o"
  "CMakeFiles/table4_config.dir/table4_config.cc.o.d"
  "table4_config"
  "table4_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
