file(REMOVE_RECURSE
  "CMakeFiles/txsize_profile.dir/txsize_profile.cc.o"
  "CMakeFiles/txsize_profile.dir/txsize_profile.cc.o.d"
  "txsize_profile"
  "txsize_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txsize_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
