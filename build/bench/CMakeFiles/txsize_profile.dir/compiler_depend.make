# Empty compiler generated dependencies file for txsize_profile.
# This may be replaced when dependencies are built.
