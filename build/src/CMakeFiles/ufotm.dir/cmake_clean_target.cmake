file(REMOVE_RECURSE
  "libufotm.a"
)
