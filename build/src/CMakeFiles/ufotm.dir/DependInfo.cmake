
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btm/btm.cc" "src/CMakeFiles/ufotm.dir/btm/btm.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/btm/btm.cc.o.d"
  "/root/repo/src/core/tx_system.cc" "src/CMakeFiles/ufotm.dir/core/tx_system.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/core/tx_system.cc.o.d"
  "/root/repo/src/hybrid/abort_handler.cc" "src/CMakeFiles/ufotm.dir/hybrid/abort_handler.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/hybrid/abort_handler.cc.o.d"
  "/root/repo/src/hybrid/hybrid_base.cc" "src/CMakeFiles/ufotm.dir/hybrid/hybrid_base.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/hybrid/hybrid_base.cc.o.d"
  "/root/repo/src/hybrid/hytm.cc" "src/CMakeFiles/ufotm.dir/hybrid/hytm.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/hybrid/hytm.cc.o.d"
  "/root/repo/src/hybrid/phtm.cc" "src/CMakeFiles/ufotm.dir/hybrid/phtm.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/hybrid/phtm.cc.o.d"
  "/root/repo/src/hybrid/ufo_hybrid.cc" "src/CMakeFiles/ufotm.dir/hybrid/ufo_hybrid.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/hybrid/ufo_hybrid.cc.o.d"
  "/root/repo/src/hybrid/unbounded_htm.cc" "src/CMakeFiles/ufotm.dir/hybrid/unbounded_htm.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/hybrid/unbounded_htm.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/ufotm.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/directory.cc" "src/CMakeFiles/ufotm.dir/mem/directory.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/mem/directory.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/ufotm.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/mem/sim_memory.cc" "src/CMakeFiles/ufotm.dir/mem/sim_memory.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/mem/sim_memory.cc.o.d"
  "/root/repo/src/rt/heap.cc" "src/CMakeFiles/ufotm.dir/rt/heap.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/rt/heap.cc.o.d"
  "/root/repo/src/rt/tx_hashset.cc" "src/CMakeFiles/ufotm.dir/rt/tx_hashset.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/rt/tx_hashset.cc.o.d"
  "/root/repo/src/rt/tx_list.cc" "src/CMakeFiles/ufotm.dir/rt/tx_list.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/rt/tx_list.cc.o.d"
  "/root/repo/src/rt/tx_map.cc" "src/CMakeFiles/ufotm.dir/rt/tx_map.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/rt/tx_map.cc.o.d"
  "/root/repo/src/rt/tx_queue.cc" "src/CMakeFiles/ufotm.dir/rt/tx_queue.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/rt/tx_queue.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/ufotm.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/fiber.cc" "src/CMakeFiles/ufotm.dir/sim/fiber.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/sim/fiber.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/ufotm.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/ufotm.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/ufotm.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/ufotm.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/thread_context.cc" "src/CMakeFiles/ufotm.dir/sim/thread_context.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/sim/thread_context.cc.o.d"
  "/root/repo/src/stamp/failover_ubench.cc" "src/CMakeFiles/ufotm.dir/stamp/failover_ubench.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/stamp/failover_ubench.cc.o.d"
  "/root/repo/src/stamp/genome.cc" "src/CMakeFiles/ufotm.dir/stamp/genome.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/stamp/genome.cc.o.d"
  "/root/repo/src/stamp/intruder.cc" "src/CMakeFiles/ufotm.dir/stamp/intruder.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/stamp/intruder.cc.o.d"
  "/root/repo/src/stamp/kmeans.cc" "src/CMakeFiles/ufotm.dir/stamp/kmeans.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/stamp/kmeans.cc.o.d"
  "/root/repo/src/stamp/labyrinth.cc" "src/CMakeFiles/ufotm.dir/stamp/labyrinth.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/stamp/labyrinth.cc.o.d"
  "/root/repo/src/stamp/ssca2.cc" "src/CMakeFiles/ufotm.dir/stamp/ssca2.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/stamp/ssca2.cc.o.d"
  "/root/repo/src/stamp/vacation.cc" "src/CMakeFiles/ufotm.dir/stamp/vacation.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/stamp/vacation.cc.o.d"
  "/root/repo/src/stamp/workload.cc" "src/CMakeFiles/ufotm.dir/stamp/workload.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/stamp/workload.cc.o.d"
  "/root/repo/src/tl2/tl2.cc" "src/CMakeFiles/ufotm.dir/tl2/tl2.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/tl2/tl2.cc.o.d"
  "/root/repo/src/ufo/swap_model.cc" "src/CMakeFiles/ufotm.dir/ufo/swap_model.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/ufo/swap_model.cc.o.d"
  "/root/repo/src/ufo/ufo.cc" "src/CMakeFiles/ufotm.dir/ufo/ufo.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/ufo/ufo.cc.o.d"
  "/root/repo/src/ustm/otable.cc" "src/CMakeFiles/ufotm.dir/ustm/otable.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/ustm/otable.cc.o.d"
  "/root/repo/src/ustm/ustm.cc" "src/CMakeFiles/ufotm.dir/ustm/ustm.cc.o" "gcc" "src/CMakeFiles/ufotm.dir/ustm/ustm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
