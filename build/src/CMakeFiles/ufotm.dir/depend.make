# Empty dependencies file for ufotm.
# This may be replaced when dependencies are built.
