file(REMOVE_RECURSE
  "CMakeFiles/test_rt.dir/test_rt.cc.o"
  "CMakeFiles/test_rt.dir/test_rt.cc.o.d"
  "test_rt"
  "test_rt.pdb"
  "test_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
