file(REMOVE_RECURSE
  "CMakeFiles/test_shared.dir/test_shared.cc.o"
  "CMakeFiles/test_shared.dir/test_shared.cc.o.d"
  "test_shared"
  "test_shared.pdb"
  "test_shared[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
