# Empty compiler generated dependencies file for test_shared.
# This may be replaced when dependencies are built.
