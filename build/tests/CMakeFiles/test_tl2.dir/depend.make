# Empty dependencies file for test_tl2.
# This may be replaced when dependencies are built.
