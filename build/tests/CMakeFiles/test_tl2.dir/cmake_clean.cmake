file(REMOVE_RECURSE
  "CMakeFiles/test_tl2.dir/test_tl2.cc.o"
  "CMakeFiles/test_tl2.dir/test_tl2.cc.o.d"
  "test_tl2"
  "test_tl2.pdb"
  "test_tl2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tl2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
