file(REMOVE_RECURSE
  "CMakeFiles/test_strong_atomicity.dir/test_strong_atomicity.cc.o"
  "CMakeFiles/test_strong_atomicity.dir/test_strong_atomicity.cc.o.d"
  "test_strong_atomicity"
  "test_strong_atomicity.pdb"
  "test_strong_atomicity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strong_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
