# Empty compiler generated dependencies file for test_strong_atomicity.
# This may be replaced when dependencies are built.
