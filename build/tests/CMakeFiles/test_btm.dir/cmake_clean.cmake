file(REMOVE_RECURSE
  "CMakeFiles/test_btm.dir/test_btm.cc.o"
  "CMakeFiles/test_btm.dir/test_btm.cc.o.d"
  "test_btm"
  "test_btm.pdb"
  "test_btm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
