# Empty dependencies file for test_btm.
# This may be replaced when dependencies are built.
