# Empty dependencies file for test_ustm.
# This may be replaced when dependencies are built.
