file(REMOVE_RECURSE
  "CMakeFiles/test_ustm.dir/test_ustm.cc.o"
  "CMakeFiles/test_ustm.dir/test_ustm.cc.o.d"
  "test_ustm"
  "test_ustm.pdb"
  "test_ustm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ustm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
