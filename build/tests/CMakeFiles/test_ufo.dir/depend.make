# Empty dependencies file for test_ufo.
# This may be replaced when dependencies are built.
