file(REMOVE_RECURSE
  "CMakeFiles/test_ufo.dir/test_ufo.cc.o"
  "CMakeFiles/test_ufo.dir/test_ufo.cc.o.d"
  "test_ufo"
  "test_ufo.pdb"
  "test_ufo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ufo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
