# Empty compiler generated dependencies file for test_sle.
# This may be replaced when dependencies are built.
