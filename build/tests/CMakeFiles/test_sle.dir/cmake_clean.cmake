file(REMOVE_RECURSE
  "CMakeFiles/test_sle.dir/test_sle.cc.o"
  "CMakeFiles/test_sle.dir/test_sle.cc.o.d"
  "test_sle"
  "test_sle.pdb"
  "test_sle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
