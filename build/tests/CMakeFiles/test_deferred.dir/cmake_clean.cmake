file(REMOVE_RECURSE
  "CMakeFiles/test_deferred.dir/test_deferred.cc.o"
  "CMakeFiles/test_deferred.dir/test_deferred.cc.o.d"
  "test_deferred"
  "test_deferred.pdb"
  "test_deferred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deferred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
