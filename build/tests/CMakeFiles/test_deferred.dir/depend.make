# Empty dependencies file for test_deferred.
# This may be replaced when dependencies are built.
