# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_btm[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_ustm[1]_include.cmake")
include("/root/repo/build/tests/test_tl2[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_ufo[1]_include.cmake")
include("/root/repo/build/tests/test_strong_atomicity[1]_include.cmake")
include("/root/repo/build/tests/test_retry[1]_include.cmake")
include("/root/repo/build/tests/test_torture[1]_include.cmake")
include("/root/repo/build/tests/test_figures[1]_include.cmake")
include("/root/repo/build/tests/test_deferred[1]_include.cmake")
include("/root/repo/build/tests/test_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
include("/root/repo/build/tests/test_config_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_shared[1]_include.cmake")
include("/root/repo/build/tests/test_sle[1]_include.cmake")
