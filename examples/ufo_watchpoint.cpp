/**
 * @file
 * UFO beyond TM: fine-grained memory protection as a debugging
 * watchpoint facility (the iWatcher use case, paper Section 3.2).
 *
 * The paper's hardware philosophy is "primitives, not solutions":
 * BTM and UFO are useful independently of transactional memory.  This
 * example arms fault-on-write UFO protection over a buffer that one
 * thread is supposed to treat as read-only, and catches the rogue
 * writer the moment it stores — with zero overhead on every access
 * that doesn't fault.
 */

#include <cstdio>
#include <vector>

#include "mem/memory_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"
#include "ufo/ufo.hh"

using namespace utm;

int
main()
{
    MachineConfig cfg;
    cfg.numCores = 2;
    Machine machine(cfg);
    TxHeap heap(machine);

    ThreadContext &init = machine.initContext();
    constexpr std::uint64_t kBufBytes = 16 * kLineSize;
    const Addr buffer = heap.allocZeroed(init, kBufBytes, true);
    const Addr scratch = heap.allocZeroed(init, kBufBytes, true);

    // Arm the watchpoint: any write to `buffer` faults.
    ufoProtectRange(init, buffer, kBufBytes, kUfoWriteOnly);

    struct Hit
    {
        ThreadId thread;
        Addr addr;
    };
    std::vector<Hit> hits;

    // The debugger's fault handler: record the offender, then open
    // the line so execution can continue (a real debugger might trap
    // to the user instead).
    machine.memsys().setUfoFaultHandler(
        [&](ThreadContext &tc, Addr a, AccessType t) {
            if (t == AccessType::Write)
                hits.push_back({tc.id(), a});
            tc.setUfoBits(lineOf(a), kUfoNone);
        });

    // Thread 0: well-behaved. Reads the buffer, writes scratch.
    machine.addThread([&](ThreadContext &tc) {
        std::uint64_t sum = 0;
        for (Addr a = buffer; a < buffer + kBufBytes; a += kLineSize)
            sum += tc.load(a, 8); // Reads never fault: zero overhead.
        tc.store(scratch, sum, 8);
    });

    // Thread 1: buggy. Mostly writes scratch, but one stray store
    // lands in the protected buffer.
    machine.addThread([&](ThreadContext &tc) {
        tc.advance(100);
        for (int i = 0; i < 8; ++i)
            tc.store(scratch + 8 + i * kLineSize, i, 8);
        tc.store(buffer + 5 * kLineSize + 16, 0xbad, 8); // Caught!
    });

    machine.run();

    std::printf("watchpoint hits: %zu\n", hits.size());
    for (const Hit &h : hits) {
        std::printf("  thread %d wrote %#llx (buffer offset %llu)\n",
                    h.thread, static_cast<unsigned long long>(h.addr),
                    static_cast<unsigned long long>(h.addr - buffer));
    }
    std::printf("ufo faults taken: %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("ufo.faults")));

    const bool ok = hits.size() == 1 && hits[0].thread == 1 &&
                    lineOf(hits[0].addr) == buffer + 5 * kLineSize;
    std::printf("%s\n", ok ? "rogue writer identified" : "MISSED!");
    return ok ? 0 : 1;
}
