/**
 * @file
 * tmsim — command-line driver for the simulator: run any workload on
 * any TM system with any machine configuration and inspect the
 * statistics.
 *
 *   $ ./tmsim --workload vacation-low --system ufo-hybrid --threads 8
 *   $ ./tmsim -w genome -s phtm -t 16 --seed 7 --stats btm.aborts
 *   $ ./tmsim -w ubench -s hytm --failover-rate 0.2
 *   $ ./tmsim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "stamp/failover_ubench.hh"
#include "stamp/genome.hh"
#include "stamp/intruder.hh"
#include "stamp/kmeans.hh"
#include "stamp/labyrinth.hh"
#include "stamp/ssca2.hh"
#include "stamp/vacation.hh"
#include "stamp/workload.hh"
#include "svc/service.hh"

using namespace utm;

namespace {

struct Options
{
    std::string workload = "kmeans-high";
    std::string system = "ufo-hybrid";
    int threads = 8;
    std::uint64_t seed = 42;
    double scale = 1.0;
    double failoverRate = 0.0;
    bool batch = false; // Request coalescing (kv-service only).
    bool durable = false; // Redo-log commits (durable backends only).
    unsigned l1Sets = 0;   // 0 = default
    Cycles quantum = ~Cycles(0); // ~0 = default
    std::string statsPrefix;
    std::string statsJsonPath;
    std::string tracePath;
    std::string timelinePath;
    Cycles timelineWindow = 0; // 0 = TelemetryConfig default
    bool listAndExit = false;
};

const char *kWorkloads[] = {
    "kmeans-high", "kmeans-low",   "vacation-high", "vacation-low",
    "genome",      "labyrinth",    "intruder",      "ssca2",
    "ubench",      "kv-service",   "kv-service-open",
};

const std::pair<const char *, TxSystemKind> kSystems[] = {
    {"no-tm", TxSystemKind::NoTm},
    {"unbounded-htm", TxSystemKind::UnboundedHtm},
    {"ufo-hybrid", TxSystemKind::UfoHybrid},
    {"hytm", TxSystemKind::HyTm},
    {"phtm", TxSystemKind::PhTm},
    {"ustm", TxSystemKind::Ustm},
    {"ustm-ufo", TxSystemKind::UstmStrong},
    {"tl2", TxSystemKind::Tl2},
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  -w, --workload NAME    workload (see --list)\n"
        "  -s, --system NAME      TM system (see --list)\n"
        "  -t, --threads N        simulated threads (default 8)\n"
        "      --seed N           RNG seed (default 42)\n"
        "      --scale F          problem-size multiplier\n"
        "      --failover-rate F  forced failover rate (ubench only)\n"
        "      --batch            request coalescing (kv-service\n"
        "                         only; emits the batch.* counters)\n"
        "      --durable          redo-log commits (durable\n"
        "                         backends only; emits the dur.*\n"
        "                         counters and the persist profile\n"
        "                         phase)\n"
        "      --l1-sets N        L1 set count (default 64 = 32 KiB)\n"
        "      --quantum N        timer quantum in cycles (0 = off)\n"
        "      --stats PREFIX     dump counters matching PREFIX\n"
        "      --stats-json PATH  write the stats-JSON document\n"
        "                         (docs/OBSERVABILITY.md; - = stdout)\n"
        "      --trace PATH       write a chrome://tracing trace\n"
        "      --timeline PATH    write the ufotm-timeline document\n"
        "                         (docs/OBSERVABILITY.md; - = stdout)\n"
        "      --timeline-window N  timeline window width in cycles\n"
        "      --list             list workloads and systems\n",
        argv0);
    std::exit(code);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0], 1);
            }
            return argv[++i];
        };
        const char *a = argv[i];
        if (!std::strcmp(a, "-w") || !std::strcmp(a, "--workload"))
            o.workload = need(a);
        else if (!std::strcmp(a, "-s") || !std::strcmp(a, "--system"))
            o.system = need(a);
        else if (!std::strcmp(a, "-t") || !std::strcmp(a, "--threads"))
            o.threads = std::atoi(need(a));
        else if (!std::strcmp(a, "--seed"))
            o.seed = std::strtoull(need(a), nullptr, 0);
        else if (!std::strcmp(a, "--scale"))
            o.scale = std::atof(need(a));
        else if (!std::strcmp(a, "--failover-rate"))
            o.failoverRate = std::atof(need(a));
        else if (!std::strcmp(a, "--batch"))
            o.batch = true;
        else if (!std::strcmp(a, "--durable"))
            o.durable = true;
        else if (!std::strcmp(a, "--l1-sets"))
            o.l1Sets = unsigned(std::atoi(need(a)));
        else if (!std::strcmp(a, "--quantum"))
            o.quantum = std::strtoull(need(a), nullptr, 0);
        else if (!std::strcmp(a, "--stats"))
            o.statsPrefix = need(a);
        else if (!std::strcmp(a, "--stats-json"))
            o.statsJsonPath = need(a);
        else if (!std::strncmp(a, "--stats-json=", 13))
            o.statsJsonPath = a + 13;
        else if (!std::strcmp(a, "--trace"))
            o.tracePath = need(a);
        else if (!std::strncmp(a, "--trace=", 8))
            o.tracePath = a + 8;
        else if (!std::strcmp(a, "--timeline"))
            o.timelinePath = need(a);
        else if (!std::strncmp(a, "--timeline=", 11))
            o.timelinePath = a + 11;
        else if (!std::strcmp(a, "--timeline-window"))
            o.timelineWindow = std::strtoull(need(a), nullptr, 0);
        else if (!std::strcmp(a, "--list"))
            o.listAndExit = true;
        else if (!std::strcmp(a, "-h") || !std::strcmp(a, "--help"))
            usage(argv[0], 0);
        else {
            std::fprintf(stderr, "unknown option %s\n", a);
            usage(argv[0], 1);
        }
    }
    if (o.threads < 1) {
        std::fprintf(stderr, "thread count must be >= 1\n");
        std::exit(1);
    }
    return o;
}

std::unique_ptr<Workload>
makeWorkload(const Options &o)
{
    const std::string &w = o.workload;
    auto scaled = [&](int v) {
        return std::max(1, static_cast<int>(v * o.scale));
    };
    if (w == "kmeans-high" || w == "kmeans-low") {
        KmeansParams p = KmeansParams::contention(w == "kmeans-high");
        p.points = scaled(p.points);
        p.seed = o.seed;
        return std::make_unique<KmeansWorkload>(p);
    }
    if (w == "vacation-high" || w == "vacation-low") {
        VacationParams p =
            VacationParams::contention(w == "vacation-high");
        p.totalTasks = scaled(p.totalTasks);
        p.seed = o.seed;
        return std::make_unique<VacationWorkload>(p);
    }
    if (w == "genome") {
        GenomeParams p;
        p.segments = scaled(p.segments);
        p.uniquePool = scaled(p.uniquePool);
        p.seed = o.seed;
        return std::make_unique<GenomeWorkload>(p);
    }
    if (w == "labyrinth") {
        LabyrinthParams p;
        p.totalTasks = scaled(p.totalTasks);
        p.seed = o.seed;
        return std::make_unique<LabyrinthWorkload>(p);
    }
    if (w == "intruder") {
        IntruderParams p;
        p.flows = scaled(p.flows);
        p.seed = o.seed;
        return std::make_unique<IntruderWorkload>(p);
    }
    if (w == "ssca2") {
        Ssca2Params p;
        p.edges = scaled(p.edges);
        p.seed = o.seed;
        return std::make_unique<Ssca2Workload>(p);
    }
    if (w == "ubench") {
        FailoverParams p;
        p.txPerThread = scaled(p.txPerThread);
        p.failoverRate = o.failoverRate;
        p.seed = o.seed;
        return std::make_unique<FailoverUbench>(p);
    }
    if (w == "kv-service" || w == "kv-service-open") {
        svc::SvcParams p;
        p.load.openLoop = (w == "kv-service-open");
        p.load.zipfTheta = 0.8;
        p.load.requestsPerClient = scaled(p.load.requestsPerClient);
        p.load.seed = o.seed;
        p.batch.enable = o.batch;
        p.batch.growOnSwCommit = true;
        return std::make_unique<svc::KvServiceWorkload>(p);
    }
    std::fprintf(stderr, "unknown workload '%s'\n", w.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    if (o.listAndExit) {
        std::printf("workloads:");
        for (const char *w : kWorkloads)
            std::printf(" %s", w);
        std::printf("\nsystems:  ");
        for (auto &[n, k] : kSystems)
            std::printf(" %s", n);
        std::printf("\n");
        return 0;
    }

    TxSystemKind kind = TxSystemKind::UfoHybrid;
    bool found = false;
    for (auto &[n, k] : kSystems) {
        if (o.system == n) {
            kind = k;
            found = true;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown system '%s'\n",
                     o.system.c_str());
        return 1;
    }

    auto w = makeWorkload(o);
    RunConfig cfg;
    cfg.kind = kind;
    cfg.threads = o.threads;
    cfg.machine.seed = o.seed;
    if (o.l1Sets)
        cfg.machine.l1Sets = o.l1Sets;
    if (o.quantum != ~Cycles(0))
        cfg.machine.timerQuantum = o.quantum;
    cfg.scale = o.scale;
    cfg.policy.durable = o.durable;
    cfg.statsJsonPath = o.statsJsonPath;
    cfg.tracePath = o.tracePath;
    cfg.timelinePath = o.timelinePath;
    if (o.timelineWindow)
        cfg.machine.telemetry.windowCycles = o.timelineWindow;

    RunResult r = runWorkload(*w, cfg);

    // With --stats-json=- or --timeline=- the document owns stdout.
    if (o.statsJsonPath == "-" || o.timelinePath == "-")
        return r.valid ? 0 : 1;

    std::printf("workload      : %s\n", o.workload.c_str());
    std::printf("system        : %s\n", txSystemKindName(kind));
    std::printf("threads       : %d\n", o.threads);
    std::printf("cycles        : %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("validated     : %s\n", r.valid ? "yes" : "NO");
    std::printf("hw/sw commits : %llu / %llu\n",
                static_cast<unsigned long long>(r.hwCommits),
                static_cast<unsigned long long>(r.swCommits));
    std::printf("failovers     : %llu\n",
                static_cast<unsigned long long>(r.failovers));
    if (!o.statsPrefix.empty()) {
        std::printf("-- stats matching '%s' --\n",
                    o.statsPrefix.c_str());
        for (const auto &[name, value] : r.stats) {
            if (name.compare(0, o.statsPrefix.size(),
                             o.statsPrefix) == 0) {
                std::printf("%-36s %llu\n", name.c_str(),
                            static_cast<unsigned long long>(value));
            }
        }
    }
    return r.valid ? 0 : 1;
}
