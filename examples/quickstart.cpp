/**
 * @file
 * Quickstart: build a simulated machine, wrap it in the UFO hybrid
 * TM, and run concurrent transactions through the public API.
 *
 *   $ ./quickstart
 *
 * Demonstrates:
 *  - TxSystem::create / setup / atomic,
 *  - the handle's typed read/write,
 *  - that most transactions commit in zero-overhead hardware, and
 *  - the stats registry.
 */

#include <cstdio>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

using namespace utm;

int
main()
{
    // 1. A simulated 8-core machine (paper Table 4 geometry).
    MachineConfig cfg;
    cfg.numCores = 8;
    Machine machine(cfg);
    TxHeap heap(machine);

    // 2. The paper's TM system: BTM hardware transactions backed by a
    //    strongly-atomic USTM.
    auto tm = TxSystem::create(TxSystemKind::UfoHybrid, machine);
    tm->setup();

    // 3. Shared state: a counter and a small histogram.
    ThreadContext &init = machine.initContext();
    const Addr counter = heap.allocZeroed(init, 8, true);
    const Addr histogram = heap.allocZeroed(init, 8 * 16, true);

    // 4. Eight threads, each folding values into shared state
    //    transactionally.
    constexpr int kPerThread = 500;
    for (int t = 0; t < 8; ++t) {
        machine.addThread([&, t](ThreadContext &tc) {
            for (int i = 0; i < kPerThread; ++i) {
                const std::uint64_t bucket =
                    tc.rng().nextBounded(16);
                tm->atomic(tc, [&](TxHandle &h) {
                    h.write<std::uint64_t>(
                        counter, h.read<std::uint64_t>(counter) + 1);
                    const Addr slot = histogram + bucket * 8;
                    h.write<std::uint64_t>(
                        slot, h.read<std::uint64_t>(slot) + 1);
                });
                tc.advance(50); // Non-transactional work.
            }
            (void)t;
        });
    }
    machine.run();

    // 5. Results.
    const std::uint64_t total = machine.memory().read(counter, 8);
    std::uint64_t hist_total = 0;
    for (int b = 0; b < 16; ++b)
        hist_total += machine.memory().read(histogram + b * 8, 8);

    std::printf("counter          : %llu (expected %d)\n",
                static_cast<unsigned long long>(total), 8 * kPerThread);
    std::printf("histogram total  : %llu\n",
                static_cast<unsigned long long>(hist_total));
    std::printf("simulated cycles : %llu\n",
                static_cast<unsigned long long>(
                    machine.completionTime()));
    std::printf("hw commits       : %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("tm.commits.hw")));
    std::printf("sw commits       : %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("tm.commits.sw")));
    std::printf("hw conflicts     : %llu (retried in hardware)\n",
                static_cast<unsigned long long>(
                    machine.stats().get("btm.aborts.conflict")));
    return total == std::uint64_t(8 * kPerThread) ? 0 : 1;
}
