/**
 * @file
 * BTM beyond TM: speculative lock elision (paper Section 3.1), using
 * the library facility in btm/sle.hh.
 *
 * A shared counter array is guarded by one big lock; elided critical
 * sections run concurrently whenever their data accesses don't
 * collide, falling back to real acquisition only when speculation
 * keeps failing.
 */

#include <cstdio>

#include "btm/sle.hh"
#include "mem/memory_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

using namespace utm;

int
main()
{
    MachineConfig cfg;
    cfg.numCores = 8;
    Machine machine(cfg);
    TxHeap heap(machine);

    ThreadContext &init = machine.initContext();
    const Addr lock_word = heap.allocZeroed(init, 8, true);
    constexpr int kSlots = 64;
    const Addr slots = heap.allocZeroed(init, kSlots * kLineSize, true);
    SimSpinLock lock(lock_word);

    constexpr int kPerThread = 400;
    for (int t = 0; t < 8; ++t) {
        machine.addThread([&, t](ThreadContext &tc) {
            BtmUnit btm(tc);
            for (int i = 0; i < kPerThread; ++i) {
                // Mostly-disjoint slots: elision wins; occasional
                // same-slot collisions exercise the fallback.
                const int slot = (t * 8 + int(tc.rng().nextBounded(10)))
                                 % kSlots;
                const Addr a = slots + Addr(slot) * kLineSize;
                elideLock(tc, btm, lock, [&] {
                    tc.store(a, tc.load(a, 8) + 1, 8);
                });
                tc.advance(60);
            }
        });
    }
    machine.run();

    std::uint64_t total = 0;
    for (int s = 0; s < kSlots; ++s)
        total += machine.memory().read(slots + Addr(s) * kLineSize, 8);

    const std::uint64_t expected = 8ull * kPerThread;
    std::printf("increments        : %llu (expected %llu)\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(expected));
    std::printf("elided sections   : %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("sle.elided")));
    std::printf("fallback acquires : %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("sle.acquired")));
    std::printf("failed speculation: %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("sle.speculation_failed")));
    std::printf("simulated cycles  : %llu\n",
                static_cast<unsigned long long>(
                    machine.completionTime()));
    return total == expected ? 0 : 1;
}
