/**
 * @file
 * Bank example: the classic TM motivation scenario.
 *
 * N accounts; worker threads transfer random amounts between random
 * account pairs while an auditor thread transactionally sums every
 * balance.  Conservation of money is checked continuously (audits)
 * and at the end.  Run with different TM systems to compare:
 *
 *   $ ./bank                 # UFO hybrid (default)
 *   $ ./bank ustm-ufo        # pure strongly-atomic STM
 *   $ ./bank unbounded-htm   # idealized HTM
 *
 * The audit transaction reads every account (a large footprint), so
 * on the hybrid it periodically overflows the L1 and fails over to
 * software — while the small transfer transactions keep committing in
 * hardware around it.  That concurrency is exactly what the paper's
 * design enables and PhTM forbids.
 */

#include <cstdio>
#include <cstring>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

using namespace utm;

namespace {

constexpr int kAccounts = 1024;
constexpr std::uint64_t kInitialBalance = 1000;
constexpr int kTransfersPerThread = 200;
constexpr int kAudits = 10;

TxSystemKind
parseKind(const char *name)
{
    const std::pair<const char *, TxSystemKind> table[] = {
        {"ufo-hybrid", TxSystemKind::UfoHybrid},
        {"hytm", TxSystemKind::HyTm},
        {"phtm", TxSystemKind::PhTm},
        {"unbounded-htm", TxSystemKind::UnboundedHtm},
        {"ustm", TxSystemKind::Ustm},
        {"ustm-ufo", TxSystemKind::UstmStrong},
        {"tl2", TxSystemKind::Tl2},
    };
    for (auto &[n, k] : table)
        if (!std::strcmp(name, n))
            return k;
    std::fprintf(stderr, "unknown TM system '%s'\n", name);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const TxSystemKind kind =
        argc > 1 ? parseKind(argv[1]) : TxSystemKind::UfoHybrid;

    MachineConfig cfg;
    cfg.numCores = 8;
    Machine machine(cfg);
    TxHeap heap(machine);
    auto tm = TxSystem::create(kind, machine);
    tm->setup();

    ThreadContext &init = machine.initContext();
    // One account balance per cache line (realistic padding).
    const Addr accounts =
        heap.allocZeroed(init, kAccounts * kLineSize, true);
    auto account = [&](int i) { return accounts + Addr(i) * kLineSize; };
    for (int i = 0; i < kAccounts; ++i)
        init.store(account(i), kInitialBalance, 8);

    // Seven transfer threads.
    for (int t = 0; t < 7; ++t) {
        machine.addThread([&](ThreadContext &tc) {
            for (int i = 0; i < kTransfersPerThread; ++i) {
                const int from =
                    static_cast<int>(tc.rng().nextBounded(kAccounts));
                int to =
                    static_cast<int>(tc.rng().nextBounded(kAccounts));
                if (to == from)
                    to = (to + 1) % kAccounts;
                const std::uint64_t amount =
                    1 + tc.rng().nextBounded(50);
                tm->atomic(tc, [&](TxHandle &h) {
                    std::uint64_t f =
                        h.read<std::uint64_t>(account(from));
                    if (f < amount)
                        return; // Insufficient funds: no-op.
                    h.write<std::uint64_t>(account(from), f - amount);
                    std::uint64_t g =
                        h.read<std::uint64_t>(account(to));
                    h.write<std::uint64_t>(account(to), g + amount);
                });
                tc.advance(80);
            }
        });
    }

    // One auditor thread: whole-bank sums, transactionally.
    std::uint64_t bad_audits = 0;
    machine.addThread([&](ThreadContext &tc) {
        for (int a = 0; a < kAudits; ++a) {
            std::uint64_t sum = 0;
            tm->atomic(tc, [&](TxHandle &h) {
                sum = 0;
                for (int i = 0; i < kAccounts; ++i)
                    sum += h.read<std::uint64_t>(account(i));
            });
            if (sum != std::uint64_t(kAccounts) * kInitialBalance)
                ++bad_audits;
            tc.advance(500);
        }
    });

    machine.run();

    std::uint64_t final_sum = 0;
    for (int i = 0; i < kAccounts; ++i)
        final_sum += machine.memory().read(account(i), 8);

    std::printf("system            : %s\n", tm->name());
    std::printf("final balance sum : %llu (expected %llu)\n",
                static_cast<unsigned long long>(final_sum),
                static_cast<unsigned long long>(
                    std::uint64_t(kAccounts) * kInitialBalance));
    std::printf("inconsistent audits: %llu (must be 0)\n",
                static_cast<unsigned long long>(bad_audits));
    std::printf("simulated cycles  : %llu\n",
                static_cast<unsigned long long>(
                    machine.completionTime()));
    std::printf("hw/sw commits     : %llu / %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("tm.commits.hw")),
                static_cast<unsigned long long>(
                    machine.stats().get("tm.commits.sw")));
    std::printf("set overflows     : %llu (audits going software)\n",
                static_cast<unsigned long long>(
                    machine.stats().get("btm.set_overflows")));

    const bool ok =
        final_sum == std::uint64_t(kAccounts) * kInitialBalance &&
        bad_audits == 0;
    return ok ? 0 : 1;
}
