/**
 * @file
 * Transactional waiting (paper Section 6): a bounded ring buffer with
 * no locks and no condition variables.  Consumers block with
 * TxHandle::retryWait() when the buffer is empty, producers when it
 * is full; a conflicting commit wakes the waiter — the `retry`
 * primitive eliminates lost-wakeup bugs by construction.
 *
 * On the UFO hybrid, transactions that don't need to wait run in
 * zero-overhead hardware; retryWait() compiles to an explicit abort
 * that fails the transaction over to the STM, where waiting is
 * implemented (exactly the paper's division of labour).
 */

#include <cstdio>
#include <vector>

#include "core/tx_system.hh"
#include "rt/heap.hh"
#include "sim/machine.hh"

using namespace utm;

namespace {

/** Ring buffer layout in simulated memory. */
struct Ring
{
    Addr head;  ///< Next slot to pop.
    Addr tail;  ///< Next slot to push.
    Addr slots; ///< kSlots line-aligned value cells.
    static constexpr std::uint64_t kSlots = 4;

    static Ring
    create(ThreadContext &tc, TxHeap &heap)
    {
        Ring r;
        r.head = heap.allocZeroed(tc, 8, true);
        r.tail = heap.allocZeroed(tc, 8, true);
        r.slots = heap.allocZeroed(tc, kSlots * kLineSize, true);
        return r;
    }

    Addr slot(std::uint64_t i) const
    {
        return slots + (i % kSlots) * kLineSize;
    }

    void
    push(TxHandle &h, std::uint64_t v) const
    {
        const std::uint64_t hd = h.read<std::uint64_t>(head);
        const std::uint64_t tl = h.read<std::uint64_t>(tail);
        if (tl - hd == kSlots)
            h.retryWait(); // Full: park until a pop commits.
        h.write<std::uint64_t>(slot(tl), v);
        h.write<std::uint64_t>(tail, tl + 1);
    }

    std::uint64_t
    pop(TxHandle &h) const
    {
        const std::uint64_t hd = h.read<std::uint64_t>(head);
        const std::uint64_t tl = h.read<std::uint64_t>(tail);
        if (tl == hd)
            h.retryWait(); // Empty: park until a push commits.
        const std::uint64_t v = h.read<std::uint64_t>(slot(hd));
        h.write<std::uint64_t>(head, hd + 1);
        return v;
    }
};

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.numCores = 4;
    Machine machine(cfg);
    TxHeap heap(machine);
    auto tm = TxSystem::create(TxSystemKind::UfoHybrid, machine);
    tm->setup();

    Ring ring = Ring::create(machine.initContext(), heap);
    constexpr int kItems = 64;

    // One bursty producer...
    machine.addThread([&](ThreadContext &tc) {
        for (int i = 1; i <= kItems; ++i) {
            tm->atomic(tc,
                       [&](TxHandle &h) { ring.push(h, i * 10); });
            if (i % 8 == 0)
                tc.advance(4000); // Burst gap: consumers must wait.
        }
    });
    // ...and two consumers splitting the stream.
    std::vector<std::uint64_t> got[2];
    for (int c = 0; c < 2; ++c) {
        machine.addThread([&, c](ThreadContext &tc) {
            for (int i = 0; i < kItems / 2; ++i) {
                std::uint64_t v = 0;
                tm->atomic(tc, [&](TxHandle &h) { v = ring.pop(h); });
                got[c].push_back(v);
                tc.advance(150);
            }
        });
    }
    machine.run();

    std::uint64_t sum = 0;
    for (int c = 0; c < 2; ++c)
        for (std::uint64_t v : got[c])
            sum += v;
    std::uint64_t expect = 0;
    for (int i = 1; i <= kItems; ++i)
        expect += std::uint64_t(i) * 10;

    std::printf("items consumed : %zu + %zu (expected %d)\n",
                got[0].size(), got[1].size(), kItems);
    std::printf("checksum       : %llu (expected %llu)\n",
                static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(expect));
    std::printf("retry parks    : %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("ustm.retries")));
    std::printf("retry wakeups  : %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("ustm.retry_wakeups")));
    std::printf("hw/sw commits  : %llu / %llu\n",
                static_cast<unsigned long long>(
                    machine.stats().get("tm.commits.hw")),
                static_cast<unsigned long long>(
                    machine.stats().get("tm.commits.sw")));
    return sum == expect ? 0 : 1;
}
