/**
 * @file
 * Figure 5: speedup over sequential execution for every TM system on
 * the STAMP-like benchmarks, as the thread count scales.
 *
 * Expected shape (paper Section 5.2):
 *  - kmeans: all hybrids track the unbounded HTM (few failovers);
 *    HyTM lags 10-20% from barrier overhead; STMs far below.
 *  - vacation: large transactions overflow the L1; the UFO hybrid
 *    stays closest to unbounded HTM, PhTM degrades with threads
 *    (one software transaction serializes the rest), HyTM suffers
 *    extra overflows/nonT conflicts.
 *  - genome: contention-heavy insertion phase; robust CM keeps the
 *    UFO hybrid and PhTM near the unbounded HTM.
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"

using namespace utm;
using namespace utm::bench;

int
main(int argc, char **argv)
{
    double scale = 1.0;
    std::vector<int> threads = {1, 2, 4, 8, 16};
    JsonReport report("figure5_speedup", argc, argv);
    parseSchedArgs(argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            scale = 0.5;
            threads = {1, 4, 8};
        }
    }

    std::printf("Figure 5: speedup vs sequential execution\n");
    std::printf("(simulated cycles; speedup = seq_cycles / cycles)\n\n");

    for (const BenchSpec &spec : stampBenchmarks()) {
        const Cycles seq = sequentialBaseline(spec, scale);
        std::printf("== %s (sequential: %llu cycles) ==\n",
                    spec.id.c_str(),
                    static_cast<unsigned long long>(seq));
        std::printf("%-8s", "threads");
        for (TxSystemKind k : figure5Systems())
            std::printf("%14s", txSystemKindName(k));
        std::printf("\n");
        for (int t : threads) {
            std::printf("%-8d", t);
            for (TxSystemKind k : figure5Systems()) {
                RunResult r = runOnce(spec, k, t, scale);
                std::printf("%14.2f", double(seq) / double(r.cycles));
                if (report.enabled()) {
                    json::Writer w;
                    w.beginObject();
                    w.kv("benchmark", spec.id);
                    w.kv("system", txSystemKindName(k));
                    w.kv("threads", t);
                    w.kv("seq_cycles", seq);
                    w.kv("speedup", double(seq) / double(r.cycles));
                    emitRunResult(w, r);
                    w.endObject();
                    report.row(w);
                }
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    return report.write() ? 0 : 1;
}
