/**
 * @file
 * Figure 6: why hardware transactions aborted, per benchmark and TM
 * system (8 threads).
 *
 * Expected shape (paper Section 5.2): kmeans aborts are almost all
 * contention/recoverable; vacation-low shows the UFO hybrid's
 * UFO-bit-set kills (retried in hardware), HyTM's extra set overflows
 * and nonT conflicts on otable rows, and PhTM's explicit aborts +
 * nonT conflicts on the phase counter; genome is contention-heavy.
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"

using namespace utm;
using namespace utm::bench;

namespace {

const char *kReasons[] = {
    "conflict",   "set_overflow", "interrupt",     "ufo_bit_set",
    "ufo_fault",  "nont_conflict", "explicit",     "page_fault",
};

} // namespace

int
main(int argc, char **argv)
{
    double scale = 1.0;
    int threads = 8;
    JsonReport report("figure6_aborts", argc, argv);
    parseSchedArgs(argc, argv);
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--quick"))
            scale = 0.5;

    std::printf("Figure 6: hardware-transaction abort reasons "
                "(%d threads)\n", threads);
    std::printf("(counts; 'commits hw/sw' give scale)\n\n");

    const TxSystemKind systems[] = {
        TxSystemKind::UnboundedHtm,
        TxSystemKind::UfoHybrid,
        TxSystemKind::HyTm,
        TxSystemKind::PhTm,
    };

    for (const BenchSpec &spec : stampBenchmarks()) {
        std::printf("== %s ==\n", spec.id.c_str());
        std::printf("%-14s %10s %10s", "system", "hw_commit",
                    "sw_commit");
        for (const char *r : kReasons)
            std::printf(" %13s", r);
        std::printf("\n");
        for (TxSystemKind k : systems) {
            RunResult r = runOnce(spec, k, threads, scale);
            std::printf("%-14s %10llu %10llu", txSystemKindName(k),
                        static_cast<unsigned long long>(r.hwCommits),
                        static_cast<unsigned long long>(r.swCommits));
            for (const char *reason : kReasons) {
                std::printf(" %13llu",
                            static_cast<unsigned long long>(r.stat(
                                std::string("btm.aborts.") + reason)));
            }
            std::printf("\n");
            if (report.enabled()) {
                // The full per-reason map (every btm.aborts.* counter
                // the run emitted, not just the printed columns) plus
                // its sum, so aborts_total is verifiable by
                // construction.
                json::Writer w;
                w.beginObject();
                w.kv("benchmark", spec.id);
                w.kv("system", txSystemKindName(k));
                w.kv("threads", threads);
                std::uint64_t total = 0;
                w.key("aborts").beginObject();
                for (const auto &[name, value] : r.stats) {
                    if (name.rfind("btm.aborts.", 0) == 0) {
                        w.kv(name.substr(11), value);
                        total += value;
                    }
                }
                w.endObject();
                w.kv("aborts_total", total);
                emitRunResult(w, r);
                w.endObject();
                report.row(w);
            }
        }
        std::printf("\n");
    }
    return report.write() ? 0 : 1;
}
