/**
 * @file
 * Table 4: the simulated-machine parameters used for every experiment
 * in this reproduction (the substitute for the paper's
 * Simics/PTLsim/Ruby configuration).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/config.hh"

int
main(int argc, char **argv)
{
    utm::MachineConfig cfg;
    utm::bench::JsonReport report("table4_config", argc, argv);
    if (report.enabled()) {
        utm::json::Writer w;
        w.beginObject();
        w.kv("num_cores", cfg.numCores);
        w.kv("l1_sets", cfg.l1Sets);
        w.kv("l1_ways", cfg.l1Ways);
        w.kv("l1_bytes", cfg.l1Bytes());
        w.kv("l2_sets", cfg.l2Sets);
        w.kv("l2_ways", cfg.l2Ways);
        w.kv("l1_hit_latency", cfg.l1HitLatency);
        w.kv("l2_hit_latency", cfg.l2HitLatency);
        w.kv("mem_latency", cfg.memLatency);
        w.kv("timer_quantum", cfg.timerQuantum);
        w.kv("otable_buckets", cfg.otableBuckets);
        w.kv("seed", cfg.seed);
        w.endObject();
        report.row(w);
    }
    std::printf("Table 4: simulation parameters\n\n%s",
                cfg.describe().c_str());
    std::printf("\nPaper's testbed: 16-core x86 full-system OoO "
                "simulator (Simics + PTLsim + Ruby MOESI directory), "
                "32 KiB L1 D-cache, modified Linux 2.6.23.9 kernel for "
                "UFO swap support, USTM otable of 65536 entries.\n");
    return report.write() ? 0 : 1;
}
