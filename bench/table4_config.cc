/**
 * @file
 * Table 4: the simulated-machine parameters used for every experiment
 * in this reproduction (the substitute for the paper's
 * Simics/PTLsim/Ruby configuration).
 */

#include <cstdio>

#include "sim/config.hh"

int
main()
{
    utm::MachineConfig cfg;
    std::printf("Table 4: simulation parameters\n\n%s",
                cfg.describe().c_str());
    std::printf("\nPaper's testbed: 16-core x86 full-system OoO "
                "simulator (Simics + PTLsim + Ruby MOESI directory), "
                "32 KiB L1 D-cache, modified Linux 2.6.23.9 kernel for "
                "UFO swap support, USTM otable of 65536 entries.\n");
    return 0;
}
