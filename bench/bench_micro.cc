/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * host-time cost of fiber switches, simulated accesses, and the TM
 * fast paths.  These guard the simulator's own performance (the
 * figure benches run hundreds of full-machine simulations).
 */

#include <benchmark/benchmark.h>

#include "btm/btm.hh"
#include "core/tx_system.hh"
#include "mem/memory_system.hh"
#include "rt/heap.hh"
#include "sim/fiber.hh"
#include "sim/machine.hh"
#include "sim/rng.hh"
#include "ustm/ustm.hh"

namespace {

using namespace utm;

void
BM_FiberRoundTrip(benchmark::State &state)
{
    Fiber f;
    bool stop = false;
    f.reset([&] {
        while (!stop)
            f.yield();
    });
    for (auto _ : state)
        f.resume();
    stop = true;
    f.resume();
}
BENCHMARK(BM_FiberRoundTrip);

void
BM_Rng(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Rng);

void
BM_SimLoadL1Hit(benchmark::State &state)
{
    MachineConfig mc;
    mc.timerQuantum = 0;
    Machine machine(mc);
    ThreadContext &tc = machine.initContext();
    machine.memory().write(0x1000, 42, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(tc.load(0x1000, 8));
}
BENCHMARK(BM_SimLoadL1Hit);

void
BM_SimStoreSpread(benchmark::State &state)
{
    MachineConfig mc;
    mc.timerQuantum = 0;
    Machine machine(mc);
    ThreadContext &tc = machine.initContext();
    Addr a = 0x1000;
    for (auto _ : state) {
        tc.store(a, 1, 8);
        a = 0x1000 + ((a + kLineSize) & 0xffff);
    }
}
BENCHMARK(BM_SimStoreSpread);

void
BM_BtmTxBeginCommit(benchmark::State &state)
{
    MachineConfig mc;
    mc.timerQuantum = 0;
    Machine machine(mc);
    ThreadContext &tc = machine.initContext();
    machine.memory().materializePage(0x2000);
    BtmUnit btm(tc);
    for (auto _ : state) {
        btm.txBegin();
        tc.store(0x2000, 7, 8);
        btm.txEnd();
    }
}
BENCHMARK(BM_BtmTxBeginCommit);

void
BM_UstmTx(benchmark::State &state)
{
    MachineConfig mc;
    mc.timerQuantum = 0;
    Machine machine(mc);
    ThreadContext &tc = machine.initContext();
    Ustm ustm(machine, /*strong_atomic=*/false);
    ustm.setup(tc);
    for (auto _ : state) {
        ustm.txBegin(tc);
        ustm.txWrite(tc, 0x3000, 9, 8);
        ustm.txEnd(tc);
    }
}
BENCHMARK(BM_UstmTx);

void
BM_UstmStrongTx(benchmark::State &state)
{
    MachineConfig mc;
    mc.timerQuantum = 0;
    Machine machine(mc);
    ThreadContext &tc = machine.initContext();
    Ustm ustm(machine, /*strong_atomic=*/true);
    ustm.setup(tc);
    for (auto _ : state) {
        ustm.txBegin(tc);
        ustm.txWrite(tc, 0x3000, 9, 8);
        ustm.txEnd(tc);
    }
}
BENCHMARK(BM_UstmStrongTx);

void
BM_FullCounterTx(benchmark::State &state)
{
    // Whole-stack cost: one hybrid transaction end to end.
    MachineConfig mc;
    mc.timerQuantum = 0;
    Machine machine(mc);
    auto sys = TxSystem::create(TxSystemKind::UfoHybrid, machine);
    sys->setup();
    ThreadContext &tc = machine.initContext();
    machine.memory().materializePage(0x4000);
    for (auto _ : state) {
        sys->atomic(tc, [&](TxHandle &h) {
            h.write(0x4000, h.read(0x4000, 8) + 1, 8);
        });
    }
}
BENCHMARK(BM_FullCounterTx);

} // namespace

BENCHMARK_MAIN();
