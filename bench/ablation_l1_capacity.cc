/**
 * @file
 * Ablation: BTM capacity (L1 size) vs. hybrid performance.
 *
 * Paper Section 5.2: "when the transactional cache is made
 * sufficiently large to hold all vacation-low's transactions, the
 * hybrids perform (relative to the unbounded HTM) almost exactly as
 * they do for vacation high [contention]".  This bench sweeps the L1
 * set count and reports the UFO hybrid's failover rate and its
 * performance relative to the unbounded HTM.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace utm;
using namespace utm::bench;

int
main(int argc, char **argv)
{
    JsonReport report("ablation_l1_capacity", argc, argv);
    parseSchedArgs(argc, argv);
    std::printf("Ablation: vacation-low vs. L1 capacity "
                "(8 threads; UFO hybrid relative to unbounded HTM)\n\n");
    std::printf("%-10s %12s %14s %16s %18s\n", "L1-KiB", "sets",
                "failovers", "hybrid-speedup", "rel-to-unbounded");

    const BenchSpec spec{"vacation-low", "vacation", false};

    for (unsigned sets : {32u, 64u, 128u, 256u, 512u}) {
        auto run = [&](TxSystemKind kind) {
            auto w = makeStampWorkload(spec);
            RunConfig cfg = baseRunConfig();
            cfg.kind = kind;
            cfg.threads = 8;
            cfg.machine.seed = 42;
            cfg.machine.l1Sets = sets;
            RunResult r = runWorkload(*w, cfg);
            if (!r.valid)
                std::abort();
            return r;
        };
        const Cycles seq = [&] {
            auto w = makeStampWorkload(spec);
            RunConfig cfg = baseRunConfig();
            cfg.kind = TxSystemKind::NoTm;
            cfg.threads = 1;
            cfg.machine.seed = 42;
            cfg.machine.l1Sets = sets;
            return runWorkload(*w, cfg).cycles;
        }();
        RunResult hybrid = run(TxSystemKind::UfoHybrid);
        RunResult unbounded = run(TxSystemKind::UnboundedHtm);
        std::printf("%-10u %12u %14llu %16.2f %18.2f\n",
                    sets * 8 * kLineSize / 1024, sets,
                    static_cast<unsigned long long>(hybrid.failovers),
                    double(seq) / double(hybrid.cycles),
                    double(unbounded.cycles) / double(hybrid.cycles));
        if (report.enabled()) {
            json::Writer w;
            w.beginObject();
            w.kv("benchmark", spec.id);
            w.kv("l1_sets", sets);
            w.kv("l1_kib", sets * 8 * kLineSize / 1024);
            w.kv("seq_cycles", seq);
            w.kv("hybrid_speedup",
                 double(seq) / double(hybrid.cycles));
            w.kv("rel_to_unbounded",
                 double(unbounded.cycles) / double(hybrid.cycles));
            emitRunResult(w, hybrid);
            w.endObject();
            report.row(w);
        }
    }
    std::printf("\n(expected: failovers shrink to ~0 as capacity "
                "grows; the hybrid converges to the unbounded HTM)\n");
    return report.write() ? 0 : 1;
}
