/**
 * @file
 * Ablation: timer-interrupt quantum vs. hardware-transaction success.
 *
 * BTM transactions cannot survive interrupts (paper Section 3.1), so
 * the scheduling quantum bounds how long a hardware transaction can
 * run.  Algorithm 3 retries interrupt-aborted transactions in
 * hardware up to a threshold before failing over.  Sweeping the
 * quantum on vacation-low shows interrupt aborts (and eventually
 * interrupt-driven failovers) appear as the quantum approaches the
 * transaction length.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace utm;
using namespace utm::bench;

int
main(int argc, char **argv)
{
    JsonReport report("ablation_quantum", argc, argv);
    parseSchedArgs(argc, argv);
    std::printf("Ablation: timer quantum vs. interrupt aborts "
                "(vacation-low, 8 threads, UFO hybrid)\n\n");
    std::printf("%-14s %16s %18s %14s\n", "quantum", "intr-aborts",
                "intr-failovers", "speedup");

    const BenchSpec spec{"vacation-low", "vacation", false};

    auto seq = [&](Cycles q) {
        auto w = makeStampWorkload(spec);
        RunConfig cfg = baseRunConfig();
        cfg.kind = TxSystemKind::NoTm;
        cfg.threads = 1;
        cfg.machine.seed = 42;
        cfg.machine.timerQuantum = q;
        return runWorkload(*w, cfg).cycles;
    };

    for (Cycles q : {Cycles(0), Cycles(200000), Cycles(50000),
                     Cycles(10000), Cycles(2000)}) {
        auto w = makeStampWorkload(spec);
        RunConfig cfg = baseRunConfig();
        cfg.kind = TxSystemKind::UfoHybrid;
        cfg.threads = 8;
        cfg.machine.seed = 42;
        cfg.machine.timerQuantum = q;
        RunResult r = runWorkload(*w, cfg);
        if (!r.valid)
            std::abort();
        char label[32];
        if (q == 0)
            std::snprintf(label, sizeof label, "off");
        else
            std::snprintf(label, sizeof label, "%llu",
                          static_cast<unsigned long long>(q));
        const double speedup = double(seq(q)) / double(r.cycles);
        std::printf("%-14s %16llu %18llu %14.2f\n", label,
                    static_cast<unsigned long long>(
                        r.stat("btm.aborts.interrupt")),
                    static_cast<unsigned long long>(
                        r.stat("tm.failovers.interrupt")),
                    speedup);
        if (report.enabled()) {
            json::Writer w;
            w.beginObject();
            w.kv("benchmark", spec.id);
            w.kv("timer_quantum", q);
            w.kv("interrupt_aborts",
                 r.stat("btm.aborts.interrupt"));
            w.kv("interrupt_failovers",
                 r.stat("tm.failovers.interrupt"));
            w.kv("speedup", speedup);
            emitRunResult(w, r);
            w.endObject();
            report.row(w);
        }
    }
    std::printf("\n(expected: interrupt aborts grow as the quantum "
                "shrinks toward the transaction length; tiny quanta "
                "push long transactions to software through the "
                "interrupt-failover threshold)\n");
    return report.write() ? 0 : 1;
}
